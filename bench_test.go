// Benchmarks: one testing.B target per table and figure of the paper's
// evaluation, plus the ablations listed in DESIGN.md. Each bench runs a
// reduced-scale version of the corresponding experiment; the full-scale
// tables are produced by cmd/vscale-experiments. Reported custom metrics
// carry the experiment's headline number (e.g. normalized execution
// time, reply rate) so regressions in the reproduced *shape* show up in
// benchmark diffs, not just in wall time.
package vscale

import (
	"testing"

	"vscale/internal/cluster"
	"vscale/internal/experiments"
	"vscale/internal/runner"
	"vscale/internal/scenario"
	"vscale/internal/sim"
)

// serial runs every benchmarked experiment on one worker so the bench
// numbers measure the simulation, not the pool.
var serial = runner.Options{Workers: 1}

func BenchmarkFigure1Motivation(b *testing.B) {
	var waste float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Motivation(serial, 3*sim.Second)
		if err != nil {
			b.Fatal(err)
		}
		waste = r.SpinWasteFrac["Xen/Linux"] - r.SpinWasteFrac["dedicated"]
	}
	b.ReportMetric(waste*100, "spinwaste%")
}

func BenchmarkTable1ChannelRead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(100)
		if err != nil {
			b.Fatal(err)
		}
		if r.Total != 910*sim.Nanosecond {
			b.Fatal("channel read cost drifted")
		}
	}
}

func BenchmarkFigure4Libxl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure4([]int{1, 25, 50}, 300)
		if r.Stats[2][50][1] < 5 {
			b.Fatal("net-I/O monitoring cost implausibly low")
		}
	}
}

func BenchmarkTable2InterruptQuiescence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if r.After.TimerPerSec[3] > 1 {
			b.Fatal("frozen vCPU not quiescent")
		}
	}
}

func BenchmarkTable3FreezeCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table3()
		if r.MeasuredMaster != 2100*sim.Nanosecond {
			b.Fatal("freeze cost drifted")
		}
	}
}

func BenchmarkFigure5Hotplug(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure5(60)
		if err != nil {
			b.Fatal(err)
		}
		if r.Remove["v-2.6.32"].Quantile(0.5) < 5 {
			b.Fatal("hotplug latency drifted")
		}
	}
}

// npbBenchPair runs one app under baseline and vScale and reports the
// normalized execution time as a custom metric.
func npbBenchPair(b *testing.B, app string, spin uint64, vcpus int) {
	b.Helper()
	var norm float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.NPBSweep(serial, vcpus, []string{app},
			[]scenario.Mode{scenario.Baseline, scenario.VScale}, []uint64{spin})
		if err != nil {
			b.Fatal(err)
		}
		norm = r.Normalized(app, scenario.VScale, spin)
	}
	b.ReportMetric(norm, "normexec")
}

func BenchmarkFigure6NPB4(b *testing.B) { npbBenchPair(b, "cg", 30_000_000_000, 4) }
func BenchmarkFigure7NPB8(b *testing.B) { npbBenchPair(b, "cg", 30_000_000_000, 8) }

func BenchmarkFigure8Trace(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure8(serial, 5*sim.Second)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		sum := 0
		for _, p := range r.Traces[4] {
			sum += p.Active
			n++
		}
		avg = float64(sum) / float64(n)
	}
	b.ReportMetric(avg, "avgactive")
}

func BenchmarkFigure9WaitingTime(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.NPBSweep(serial, 4, []string{"sp"},
			[]scenario.Mode{scenario.Baseline, scenario.VScale}, []uint64{30_000_000_000})
		if err != nil {
			b.Fatal(err)
		}
		base := r.Runs["sp"][scenario.Baseline][30_000_000_000]
		vs := r.Runs["sp"][scenario.VScale][30_000_000_000]
		bw := float64(base.Wait) / float64(base.Exec)
		vw := float64(vs.Wait) / float64(vs.Exec)
		reduction = (1 - vw/bw) * 100
	}
	b.ReportMetric(reduction, "wait%cut")
}

func BenchmarkFigure10NPBIPI(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.NPBSweep(serial, 4, []string{"sp"},
			[]scenario.Mode{scenario.Baseline}, []uint64{0})
		if err != nil {
			b.Fatal(err)
		}
		rate = r.Runs["sp"][scenario.Baseline][0].IPIRate
	}
	b.ReportMetric(rate, "ipis/vcpu/s")
}

func parsecBenchPair(b *testing.B, app string, vcpus int) {
	b.Helper()
	var norm float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.ParsecSweep(serial, vcpus, []string{app},
			[]scenario.Mode{scenario.Baseline, scenario.VScale})
		if err != nil {
			b.Fatal(err)
		}
		norm = r.Normalized(app, scenario.VScale)
	}
	b.ReportMetric(norm, "normexec")
}

func BenchmarkFigure11Parsec4(b *testing.B) { parsecBenchPair(b, "dedup", 4) }
func BenchmarkFigure12Parsec8(b *testing.B) { parsecBenchPair(b, "dedup", 8) }

func BenchmarkFigure13ParsecIPI(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.ParsecSweep(serial, 4, []string{"dedup"},
			[]scenario.Mode{scenario.Baseline})
		if err != nil {
			b.Fatal(err)
		}
		rate = r.Runs["dedup"][scenario.Baseline].IPIRate
	}
	b.ReportMetric(rate, "ipis/vcpu/s")
}

func BenchmarkFigure14Apache(b *testing.B) {
	var peakGain float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Apache(serial, []float64{6, 8}, 6*sim.Second,
			[]scenario.Mode{scenario.Baseline, scenario.VScale})
		if err != nil {
			b.Fatal(err)
		}
		peakGain = r.PeakReply(scenario.VScale) - r.PeakReply(scenario.Baseline)
	}
	b.ReportMetric(peakGain, "peakK+")
}

func BenchmarkAblationWeightOnly(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationWeightOnly(serial, "cg")
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(r.Exec[1]) / float64(r.Exec[0]) // VCPU-Bal / vScale
	}
	b.ReportMetric(ratio, "vcpubal/vscale")
}

func BenchmarkAblationHotplugPath(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationHotplugPath(serial, "cg")
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(r.Exec[1]) / float64(r.Exec[0]) // hotplug / balancer
	}
	b.ReportMetric(ratio, "hotplug/balancer")
}

func BenchmarkAblationDaemonPeriod(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationDaemonPeriod(serial, "cg",
			[]sim.Time{10 * sim.Millisecond, sim.Second})
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(r.Exec[1]) / float64(r.Exec[0]) // slow / fast daemon
	}
	b.ReportMetric(ratio, "1s/10ms")
}

func BenchmarkAblationPerVMWeight(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationPerVMWeight(serial, "cg")
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(r.Exec[1]) / float64(r.Exec[0]) // per-vCPU / per-VM
	}
	b.ReportMetric(ratio, "pervcpu/pervm")
}

func BenchmarkAblationCeilMargin(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationCeilMargin(serial, "cg")
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(r.Exec[1]) / float64(r.Exec[0]) // pure ceil / margin
	}
	b.ReportMetric(ratio, "pureceil/margin")
}

func BenchmarkAblationSchedulerGenerality(b *testing.B) {
	var vrtSpeedup float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationSchedulerGenerality(serial, "cg")
		if err != nil {
			b.Fatal(err)
		}
		vrtSpeedup = float64(r.Exec[2]) / float64(r.Exec[3])
	}
	b.ReportMetric(vrtSpeedup, "vrtspeedup")
}

func BenchmarkExtensionAdaptiveTeam(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtensionAdaptiveTeam(serial, "cg")
		if err != nil {
			b.Fatal(err)
		}
		speedup = float64(r.FixedExec) / float64(r.Adapted)
	}
	b.ReportMetric(speedup, "adaptspeedup")
}

// BenchmarkRunFleet measures the bounded-lag fleet executor end to end:
// a 64-host fleet under light churn, one worker, placement recording
// off. This is the control-plane overhead signal — allocs/op catches
// regressions in the aggregation and telemetry scratch reuse.
func BenchmarkRunFleet(b *testing.B) {
	const hosts = 64
	horizon := 2 * sim.Second
	tcfg := cluster.DefaultTraceConfig(horizon)
	tcfg.InitialVMs = hosts
	tcfg.ArrivalEvery = horizon / sim.Time(2*hosts)
	tcfg.RateChoices = []float64{50, 100, 200}
	seed := runner.DeriveSeed(7, hosts)
	events := cluster.GenTrace(tcfg, seed)
	recordOff := false
	var att float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cluster.RunFleet(cluster.FleetConfig{
			Hosts:            hosts,
			PCPUsPerHost:     4,
			Policy:           "vscale",
			Seed:             seed,
			Horizon:          horizon,
			SLO:              50 * sim.Millisecond,
			Workers:          1,
			RecordPlacements: &recordOff,
		}, events)
		if err != nil {
			b.Fatal(err)
		}
		att = res.Attainment
	}
	b.ReportMetric(att*100, "slo%")
}

// BenchmarkCheckpointRestore measures the checkpoint/restore layer on
// the same 64-host fleet BenchmarkRunFleet drives: capture the warm
// prefix once outside the timed loop, then time one encode + decode +
// restored measured window per iteration — the marginal cost of adding
// one more policy variant to a warm-forked scoreboard. The snapshot
// size lands as a custom metric so format growth is tracked alongside
// wall time.
func BenchmarkCheckpointRestore(b *testing.B) {
	const hosts = 64
	horizon := 2 * sim.Second
	tcfg := cluster.DefaultTraceConfig(horizon)
	tcfg.InitialVMs = hosts
	tcfg.ArrivalEvery = horizon / sim.Time(2*hosts)
	tcfg.RateChoices = []float64{50, 100, 200}
	seed := runner.DeriveSeed(7, hosts)
	events := cluster.GenTrace(tcfg, seed)
	recordOff := false
	cfg := cluster.FleetConfig{
		Hosts:            hosts,
		PCPUsPerHost:     4,
		Policy:           "vscale",
		Seed:             seed,
		Horizon:          horizon,
		SLO:              50 * sim.Millisecond,
		Workers:          1,
		WarmEpochs:       2,
		RecordPlacements: &recordOff,
	}
	cp, err := cluster.CaptureWarmPrefix(cfg, events)
	if err != nil {
		b.Fatal(err)
	}
	data, err := cp.Encode()
	if err != nil {
		b.Fatal(err)
	}
	var att float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cp.Encode(); err != nil {
			b.Fatal(err)
		}
		loaded, err := cluster.DecodeCheckpoint(data)
		if err != nil {
			b.Fatal(err)
		}
		res, err := cluster.RunFleetFork(cfg, events, loaded)
		if err != nil {
			b.Fatal(err)
		}
		att = res.Attainment
	}
	b.ReportMetric(att*100, "slo%")
	b.ReportMetric(float64(len(data)), "snapshot-bytes")
}

// BenchmarkEngineThroughput measures the raw simulator event rate — the
// substrate's own performance, useful when profiling the harness.
func BenchmarkEngineThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(1)
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < 100000 {
				eng.After(sim.Microsecond, "tick", tick)
			}
		}
		eng.After(0, "start", tick)
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
