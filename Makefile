# Tier-1 verification gate (see ROADMAP.md). `make check` must pass
# before every commit.

GOFILES := $(shell find . -name '*.go' -not -path './.git/*')

.PHONY: check fmt vet build test race bench bench-sim bench-cluster

check: fmt vet build race

fmt:
	@out="$$(gofmt -l $(GOFILES))"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Quick experiment pass with run accounting: wall/CPU/speedup per
# experiment, written to BENCH_experiments.json (schema vscale-bench/v1)
# — -benchworkers re-runs the whole selection at several worker counts,
# asserts the passes print identical bytes, and records the wall-clock
# series under "parallel". bench-cluster runs the cluster fleet
# shoot-out, the fleetscale executor sweep (hosts × workers, wall
# seconds and speedups in each entry's "metrics" map) and the warmfork
# amortization series (straight vs warm-once-fork-per-policy walls and
# the resulting speedup) into BENCH_cluster.json, whose
# cost_vcpu_seconds and attainment per scaling policy track the
# cost-vs-attainment frontier over time, plus the elasticity bake-off
# (vertical vs horizontal vs hybrid arms, each with cost, attainment,
# migration and replica counts under "bakeoff/<arm>/..."). bench-sim records the
# event-core microbenchmarks plus the end-to-end fleet-executor and
# checkpoint/restore benchmarks as ns/op + allocs/op in BENCH_sim.json
# (schema vscale-simbench/v1).
bench: bench-cluster bench-sim
	go run ./cmd/vscale-experiments -quick -benchworkers 1,2,4 -benchjson BENCH_experiments.json >/dev/null

bench-cluster:
	go run ./cmd/vscale-experiments -experiment cluster,fleetscale,warmfork,bakeoff -quick -benchjson BENCH_cluster.json >/dev/null

bench-sim:
	{ go test -run='^$$' -bench=. -benchmem ./internal/sim/... ; \
	  go test -run='^$$' -bench='^Benchmark(RunFleet|CheckpointRestore)$$' -benchmem . ; } | go run ./cmd/vscale-simbench -o BENCH_sim.json
