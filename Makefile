# Tier-1 verification gate (see ROADMAP.md). `make check` must pass
# before every commit.

GOFILES := $(shell find . -name '*.go' -not -path './.git/*')

.PHONY: check fmt vet build test race bench

check: fmt vet build race

fmt:
	@out="$$(gofmt -l $(GOFILES))"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Quick experiment pass with run accounting: wall/CPU/speedup per
# experiment, written to BENCH_experiments.json (schema vscale-bench/v1),
# plus the event-core microbenchmarks recorded as ns/op + allocs/op in
# BENCH_sim.json (schema vscale-simbench/v1), plus the cluster fleet
# experiment on its own in BENCH_cluster.json (its per-epoch host
# fan-out accounting is the multi-engine scaling signal, and its
# "metrics" map records cost_vcpu_seconds and attainment per scaling
# policy so the cost-vs-attainment frontier is tracked over time).
bench:
	go run ./cmd/vscale-experiments -quick -benchjson BENCH_experiments.json >/dev/null
	go run ./cmd/vscale-experiments -experiment cluster -quick -benchjson BENCH_cluster.json >/dev/null
	go test -run='^$$' -bench=. -benchmem ./internal/sim/... | go run ./cmd/vscale-simbench -o BENCH_sim.json
