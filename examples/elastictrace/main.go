// Elastictrace example: watch a VM breathe. Runs bt under vScale on 4-
// and 8-vCPU VMs and prints the active-vCPU traces — the paper's
// Figure 8. The VM sheds vCPUs whenever the background desktops decode a
// picture and grows back within a daemon period once they idle.
package main

import (
	"fmt"
	"strings"

	"vscale"
	"vscale/internal/guest"
	"vscale/internal/workload"
	"vscale/internal/workload/npb"
)

func main() {
	fmt.Println("Active vCPUs over time: bt under vScale (paper Figure 8)")
	for _, vcpus := range []int{4, 8} {
		setup := vscale.DefaultSetup()
		setup.Mode = vscale.VScale
		setup.VMVCPUs = vcpus
		sc := vscale.NewScenario(setup)
		sc.K.StartTrace(200 * vscale.Millisecond)

		profile, err := npb.ProfileFor("bt")
		if err != nil {
			panic(err)
		}
		res, err := sc.RunApp(func(k *guest.Kernel) *workload.App {
			return npb.Launch(k, profile, vcpus, vscale.SpinBudgetFromCount(300_000))
		}, 10*vscale.Second)
		if err != nil {
			panic(err)
		}

		fmt.Printf("\n%d-vCPU VM (avg active %.2f):\n", vcpus, res.AvgActiveVCPUs)
		for _, p := range sc.K.Trace() {
			fmt.Printf("  t=%5.1fs |%-8s| %d\n", p.At.Seconds(),
				strings.Repeat("#", p.Active), p.Active)
		}
		reads, decisions := sc.K.DaemonStats()
		fmt.Printf("  daemon: %d channel reads, %d scaling decisions, %d freezes, %d unfreezes\n",
			reads, decisions, sc.K.FreezeOps, sc.K.UnfreezeOps)
	}
}
