// Webserver example: drive the Apache-style server across request rates
// with and without vScale, on a consolidated host — the paper's Figure
// 14 workload. Connection time shows the I/O-interrupt delay; the reply
// rate shows where each configuration saturates.
package main

import (
	"fmt"

	"vscale"
	"vscale/internal/sim"
	"vscale/internal/workload/httpd"
)

func main() {
	fmt.Println("Apache-style server, 16KB file over a shared 1GbE link (4-vCPU VM, 2:1 host)")
	fmt.Printf("%-8s | %-28s | %-28s\n", "", "Xen/Linux", "vScale")
	fmt.Printf("%-8s | %8s %9s %8s | %8s %9s %8s\n",
		"offered", "replies", "conn(ms)", "resp(ms)", "replies", "conn(ms)", "resp(ms)")

	const window = 15 * vscale.Second
	for _, rateK := range []float64{1, 3, 5, 7, 9} {
		row := fmt.Sprintf("%5.1fK/s |", rateK)
		for _, mode := range []vscale.Mode{vscale.Baseline, vscale.VScale} {
			setup := vscale.DefaultSetup()
			setup.Mode = mode
			sc := vscale.NewScenario(setup)

			cfg := httpd.DefaultConfig()
			link := httpd.NewLink(sc.Eng, cfg.LinkBps)
			srv, err := httpd.NewServer(sc.K, link, cfg)
			if err != nil {
				panic(err)
			}
			client := httpd.NewClient(srv, sim.NewRand(7))

			warm := 2 * vscale.Second
			if err := sc.Eng.RunUntil(warm); err != nil {
				panic(err)
			}
			client.Run(rateK*1000, window)
			if err := sc.Eng.RunUntil(warm + window + 2*vscale.Second); err != nil {
				panic(err)
			}
			r := srv.Result(rateK*1000, window)
			row += fmt.Sprintf(" %6.2fK %9.2f %8.1f |", r.ReplyRate/1000, r.AvgConnMs, r.AvgRespMs)
		}
		fmt.Println(row)
	}
	fmt.Println("\nPast ~5K req/s the baseline's interrupt delays push it into the TCP slow")
	fmt.Println("path and its reply rate collapses; vScale keeps the interrupt-bound vCPU")
	fmt.Println("scheduled and saturates close to the link rate.")
}
