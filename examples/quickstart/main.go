// Quickstart: build a consolidated host, run the same barrier-heavy job
// with and without vScale, and print the paper's headline effect — the
// VM's scheduling delay collapses and the job finishes sooner.
package main

import (
	"fmt"

	"vscale"
	"vscale/internal/guest"
	"vscale/internal/workload"
	"vscale/internal/workload/npb"
)

func main() {
	fmt.Println("vScale quickstart: cg (NPB) on a 2:1 consolidated host")
	fmt.Println("------------------------------------------------------")

	run := func(mode vscale.Mode) vscale.AppResult {
		setup := vscale.DefaultSetup() // 8 pCPUs, 4-vCPU VM, slideshow desktops
		setup.Mode = mode
		sc := vscale.NewScenario(setup)
		profile, err := npb.ProfileFor("cg")
		if err != nil {
			panic(err)
		}
		res, err := sc.RunApp(func(k *guest.Kernel) *workload.App {
			// OMP_WAIT_POLICY=ACTIVE: threads spin at barriers.
			return npb.Launch(k, profile, setup.VMVCPUs, vscale.SpinBudgetFromCount(30_000_000_000))
		}, 600*vscale.Second)
		if err != nil {
			panic(err)
		}
		return res
	}

	base := run(vscale.Baseline)
	vs := run(vscale.VScale)

	fmt.Printf("%-22s %14s %14s %12s\n", "configuration", "execution", "VM wait", "avg vCPUs")
	fmt.Printf("%-22s %14v %14v %12.2f\n", "Xen/Linux (baseline)", base.ExecTime, base.WaitTime, base.AvgActiveVCPUs)
	fmt.Printf("%-22s %14v %14v %12.2f\n", "vScale", vs.ExecTime, vs.WaitTime, vs.AvgActiveVCPUs)

	speedup := float64(base.ExecTime) / float64(vs.ExecTime)
	waitCut := (1 - (float64(vs.WaitTime)/float64(vs.ExecTime))/
		(float64(base.WaitTime)/float64(base.ExecTime))) * 100
	fmt.Printf("\nvScale: %.2fx faster, %.0f%% less time in the hypervisor's runqueues.\n", speedup, waitCut)
	fmt.Println("The VM shed vCPUs whenever the desktops burst, and grew back when they idled.")
}
