// HPC example: sweep the three OpenMP wait policies (ACTIVE, default,
// PASSIVE) over a synchronization-heavy NPB job under all four
// configurations, reproducing the structure of the paper's Figure 6 for
// one application.
package main

import (
	"fmt"

	"vscale"
	"vscale/internal/guest"
	"vscale/internal/workload"
	"vscale/internal/workload/npb"
)

func main() {
	const app = "sp"
	fmt.Printf("NPB %s under the three GOMP_SPINCOUNT policies (4-vCPU VM, 2:1 host)\n\n", app)

	policies := []struct {
		label string
		count uint64
	}{
		{"ACTIVE (30B spins)", 30_000_000_000},
		{"default (300K)", 300_000},
		{"PASSIVE (futex)", 0},
	}
	modes := []vscale.Mode{vscale.Baseline, vscale.PVLock, vscale.VScale, vscale.VScalePVLock}

	for _, pol := range policies {
		fmt.Printf("== %s ==\n", pol.label)
		var baseline float64
		for _, mode := range modes {
			setup := vscale.DefaultSetup()
			setup.Mode = mode
			sc := vscale.NewScenario(setup)
			profile, err := npb.ProfileFor(app)
			if err != nil {
				panic(err)
			}
			res, err := sc.RunApp(func(k *guest.Kernel) *workload.App {
				return npb.Launch(k, profile, setup.VMVCPUs, vscale.SpinBudgetFromCount(pol.count))
			}, 600*vscale.Second)
			if err != nil {
				panic(err)
			}
			if mode == vscale.Baseline {
				baseline = float64(res.ExecTime)
			}
			fmt.Printf("  %-20v exec=%-14v normalized=%.2f  IPIs/vCPU/s=%.0f\n",
				mode, res.ExecTime, float64(res.ExecTime)/baseline, res.IPIsPerVCPUSec)
		}
		fmt.Println()
	}
	fmt.Println("Note how pv-spinlocks only matter once threads sleep in the kernel,")
	fmt.Println("while vScale helps at every policy — and they compose.")
}
