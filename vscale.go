// Package vscale is the public facade of the vScale reproduction: a
// discrete-event simulation of the full system described in "vScale:
// Automatic and Efficient Processor Scaling for SMP Virtual Machines"
// (Cheng, Rao, Lau — EuroSys 2016), together with the pure library form
// of the paper's algorithms.
//
// Three levels of API are exposed:
//
//   - The pure algorithms: ComputeExtendability (Algorithm 1), the
//     freeze protocol plan (Algorithm 2) and the scaling Governor, all
//     usable outside the simulator.
//   - Scenario building: assemble a host with an SMP-VM under test and
//     bursty background desktops under one of the paper's four
//     configurations, then run workloads on it.
//   - Experiments: regenerate every table and figure of the paper's
//     evaluation (see vscale/internal/experiments via cmd/vscale-experiments).
//
// Everything runs in virtual time, deterministically, with no external
// dependencies.
package vscale

import (
	"vscale/internal/core"
	"vscale/internal/guest"
	"vscale/internal/runner"
	"vscale/internal/scenario"
	"vscale/internal/sim"
	"vscale/internal/trace"
	"vscale/internal/workload"
)

// Time is virtual time in nanoseconds (see internal/sim).
type Time = sim.Time

// Re-exported virtual-time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// VMStat describes one VM's period consumption for the extendability
// calculation (Algorithm 1).
type VMStat = core.VMStat

// Extendability is the per-VM output of Algorithm 1.
type Extendability = core.Extendability

// ComputeExtendability runs Algorithm 1 of the paper: given per-VM
// weights and consumptions over one period t on a pool of P pCPUs, it
// returns each VM's fair share, maximum achievable allocation and
// optimal vCPU count.
func ComputeExtendability(vms []VMStat, pCPUs int, t Time) []Extendability {
	return core.ComputeExtendability(vms, pCPUs, t)
}

// FreezePlan quantifies one vCPU freeze/unfreeze (Algorithm 2): the
// fixed 2.1 µs master-side protocol plus per-thread and per-IRQ
// migration work on the target.
type FreezePlan = core.FreezePlan

// Governor converts optimal-vCPU readings into scaling decisions with
// down-scaling hysteresis.
type Governor = core.Governor

// NewGovernor creates a governor bounded to [min, max] vCPUs, currently
// at cur, scaling down only after downHysteresis+1 consecutive
// below-current readings.
func NewGovernor(min, max, cur, downHysteresis int) *Governor {
	return core.NewGovernor(min, max, cur, downHysteresis)
}

// Mode selects one of the paper's four configurations.
type Mode = scenario.Mode

// The four configurations compared throughout the paper's §5.2.
const (
	Baseline     = scenario.Baseline
	PVLock       = scenario.PVLock
	VScale       = scenario.VScale
	VScalePVLock = scenario.VScalePVLock
)

// Setup describes a simulated host: pool size, the VM under test,
// background desktops and the configuration under test.
type Setup = scenario.Setup

// Scenario is an assembled host ready to run workloads.
type Scenario = scenario.Built

// AppResult carries the per-run metrics the paper reports: execution
// time, VM scheduling delay, IPI rate and the average active-vCPU count.
type AppResult = scenario.AppResult

// DefaultSetup returns the paper-like host: an 8-pCPU pool, a 4-vCPU VM
// and 2:1 vCPU:pCPU consolidation via slideshow desktops.
func DefaultSetup() Setup { return scenario.DefaultSetup() }

// NewScenario assembles the host described by s (guests booted,
// scheduler running).
func NewScenario(s Setup) *Scenario { return scenario.Build(s) }

// Kernel is the simulated guest Linux kernel of a VM.
type Kernel = guest.Kernel

// App groups the threads of one multithreaded application and records
// its execution time.
type App = workload.App

// SpinBudgetFromCount converts a GOMP_SPINCOUNT value into the CPU-time
// spin budget used by the simulated OpenMP barriers.
func SpinBudgetFromCount(count uint64) Time {
	return guest.SpinBudgetFromCount(count)
}

// Tracer records simulator scheduling events for Chrome-trace export and
// schedstats (see internal/trace). Scenarios record only when a Tracer
// is set explicitly on the Setup.
//
// Migration note: the package-level scenario.DefaultTracer fallback is
// gone. Code that relied on every scenario sharing one implicit tracer
// should set Setup.Tracer per run — SweepOptions{Trace: true} does this
// for sweep runs — and stitch the per-run timelines with MergeTraces.
type Tracer = trace.Tracer

// SweepOptions configures a RunSweep fan-out: worker count, base seed,
// per-run tracers and the optional accounting report.
type SweepOptions = runner.Options

// SweepContext is handed to each sweep job: its submission index, its
// derived seed and (when enabled) its private tracer.
type SweepContext = runner.Context

// SweepReport accumulates per-run wall clocks, seeds and tracers of a
// sweep in submission order, plus aggregate wall/CPU/speedup numbers.
type SweepReport = runner.Report

// RunSweep fans n independent scenario runs across a bounded worker
// pool. Results arrive in submission order and are identical for every
// worker count; each job must build its own engine/scenario from
// ctx.Seed (or its own fixed seed) and ctx.Tracer. The first error, by
// submission index, aborts the sweep.
//
// Migration note: loops of the form
//
//	for i := 0; i < n; i++ { results[i] = runOne(i) }
//
// become
//
//	results, err := vscale.RunSweep(vscale.SweepOptions{}, n,
//	    func(ctx vscale.SweepContext) (R, error) { return runOne(ctx) })
func RunSweep[T any](opts SweepOptions, n int, job func(ctx SweepContext) (T, error)) ([]T, error) {
	return runner.Run(opts, n, job)
}

// DeriveSeed derives the seed of run index from a base seed (splitmix64)
// — stable across worker counts and Go versions.
func DeriveSeed(base uint64, index int) uint64 {
	return runner.DeriveSeed(base, index)
}

// MergeTraces stitches per-run tracers into one export-only timeline:
// domain and pCPU ids are remapped, track names gain run0/, run1/, ...
// prefixes, and in-progress dwells are closed at each run's end.
func MergeTraces(parts ...*Tracer) *Tracer {
	return trace.Merge(parts...)
}
