module vscale

go 1.22
