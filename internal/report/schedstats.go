package report

import (
	"fmt"
	"strings"

	"vscale/internal/sim"
	"vscale/internal/trace"
)

// RenderSchedStats renders a trace snapshot as the plain-text schedstats
// report: one row per vCPU with dwell times per state (which sum to the
// vCPU's lifetime), wakeup-to-run latency, lock-holder preemption and
// IPI delivery statistics, followed by ring and engine accounting.
func RenderSchedStats(s *trace.Snapshot) string {
	var b strings.Builder
	t := NewTable(
		fmt.Sprintf("schedstats @ %v", s.End),
		"vcpu", "run", "runnable", "blocked", "frozen", "total",
		"wakeups", "wake-avg", "wake-p99", "lhp", "lhp-time", "ipi-avg", "steals", "futex w/w",
	)
	for i := range s.VCPUs {
		v := &s.VCPUs[i]
		name := v.DomName
		if name == "" {
			name = fmt.Sprintf("dom%d", v.Dom)
		}
		t.AddRow(
			fmt.Sprintf("%s.%d", name, v.VCPU),
			fmtDwell(v.Dwell[trace.VRun]),
			fmtDwell(v.Dwell[trace.VRunnable]),
			fmtDwell(v.Dwell[trace.VBlocked]),
			fmtDwell(v.Dwell[trace.VFrozen]),
			fmtDwell(v.Total),
			fmt.Sprintf("%d", v.WakeCount),
			fmtUs(v.WakeMeanUs, v.WakeCount),
			fmtUs(v.WakeP99Us, v.WakeCount),
			fmt.Sprintf("%d", v.LHPCount),
			fmtDwell(v.LHPTotal),
			fmtUs(v.IPIMeanUs, v.IPICount),
			fmt.Sprintf("%d", v.Steals),
			fmt.Sprintf("%d/%d", v.FutexWaits, v.FutexWakes),
		)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\ntrace ring: %d recorded, %d retained, %d dropped\n",
		s.RingTotal, s.RingRetained, s.RingDropped)
	if s.HaveEngine {
		pending := s.EngScheduled - s.EngCancelled - s.EngFired
		fmt.Fprintf(&b, "engine events: %d scheduled = %d fired + %d cancelled + %d pending\n",
			s.EngScheduled, s.EngFired, s.EngCancelled, pending)
	}
	return b.String()
}

// fmtDwell renders a dwell duration compactly in milliseconds.
func fmtDwell(d sim.Time) string {
	return fmt.Sprintf("%.3fms", d.Milliseconds())
}

// fmtUs renders a microsecond statistic, or "-" when no samples exist.
func fmtUs(us float64, count uint64) string {
	if count == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fus", us)
}
