// Package report renders experiment results as fixed-width text tables
// and series, matching the tables and figures of the paper for
// side-by-side comparison.
package report

import (
	"fmt"
	"sort"
	"strings"

	"vscale/internal/metrics"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Columns) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row built from values via %v (floats get %.2f).
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.2f", v))
		case float32:
			row = append(row, fmt.Sprintf("%.2f", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	sep := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		sep[i] = strings.Repeat("-", widths[i])
	}
	b.WriteString("\n")
	for i := range sep {
		fmt.Fprintf(&b, "%s  ", sep[i])
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderSeries prints (x, y) series side by side, one row per x.
func RenderSeries(title, xlabel string, series ...*metrics.Series) string {
	t := NewTable(title, append([]string{xlabel}, names(series)...)...)
	xs := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	for _, x := range sorted {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range series {
			if y, ok := s.YAt(x); ok {
				row = append(row, fmt.Sprintf("%.2f", y))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t.String()
}

func names(series []*metrics.Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Name
	}
	return out
}

// RenderCDF prints an empirical CDF as value/fraction pairs.
func RenderCDF(title string, points []metrics.CDFPoint) string {
	t := NewTable(title, "value", "cdf")
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%.3f", p.Value), fmt.Sprintf("%.3f", p.Fraction))
	}
	return t.String()
}

// Bar renders a quick ASCII bar for a value in [0, max].
func Bar(value, max float64, width int) string {
	if max <= 0 || width <= 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}
