package report

import (
	"strings"
	"testing"

	"vscale/internal/metrics"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("beta-long-name", "22")
	tb.AddRow("short") // padded
	out := tb.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("lines = %d, want title+header+sep+3 rows", len(lines))
	}
	// Columns align: every row has the same prefix width up to "value".
	hdrIdx := strings.Index(lines[1], "value")
	for _, l := range lines[3:] {
		if len(l) < hdrIdx {
			t.Fatalf("row too short for alignment: %q", l)
		}
	}
}

func TestAddRowfFormats(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRowf("x", 3.14159, 7)
	out := tb.String()
	if !strings.Contains(out, "3.14") || strings.Contains(out, "3.14159") {
		t.Fatalf("float formatting wrong:\n%s", out)
	}
	if !strings.Contains(out, "7") {
		t.Fatalf("int formatting wrong:\n%s", out)
	}
}

func TestRenderSeriesAlignsByX(t *testing.T) {
	a := &metrics.Series{Name: "a"}
	a.Append(1, 10)
	a.Append(2, 20)
	b := &metrics.Series{Name: "b"}
	b.Append(2, 200)
	b.Append(3, 300)
	out := RenderSeries("S", "x", a, b)
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatal("series names missing")
	}
	// x=1 has no b value; x=3 has no a value.
	for _, want := range []string{"10.00", "20.00", "200.00", "300.00", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Rows sorted by x.
	if strings.Index(out, "10.00") > strings.Index(out, "300.00") {
		t.Fatal("rows not sorted by x")
	}
}

func TestRenderCDF(t *testing.T) {
	var s metrics.Sample
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	out := RenderCDF("C", s.CDF(4))
	if !strings.Contains(out, "1.000") {
		t.Fatalf("CDF should reach 1.0:\n%s", out)
	}
}

func TestBar(t *testing.T) {
	if Bar(5, 10, 10) != "#####" {
		t.Fatalf("bar = %q", Bar(5, 10, 10))
	}
	if Bar(20, 10, 10) != "##########" {
		t.Fatal("bar must clamp high")
	}
	if Bar(-1, 10, 10) != "" {
		t.Fatal("bar must clamp low")
	}
	if Bar(1, 0, 10) != "" || Bar(1, 10, 0) != "" {
		t.Fatal("degenerate bars must be empty")
	}
}
