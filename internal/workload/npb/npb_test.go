package npb

import (
	"testing"

	"vscale/internal/guest"
	"vscale/internal/sim"
	"vscale/internal/xen"
)

func newGuest(t *testing.T, pcpus, vcpus int) (*sim.Engine, *xen.Pool, *guest.Kernel) {
	t.Helper()
	eng := sim.NewEngine(3)
	pool := xen.NewPool(eng, xen.DefaultConfig(pcpus))
	dom := pool.AddDomain("vm", 256, vcpus, nil)
	k := guest.NewKernel(dom, guest.DefaultConfig())
	return eng, pool, k
}

func TestProfilesComplete(t *testing.T) {
	names := Names()
	if len(names) != 10 {
		t.Fatalf("apps = %d, want the 10 NPB-OMP members", len(names))
	}
	want := []string{"bt", "cg", "dc", "ep", "ft", "is", "lu", "mg", "sp", "ua"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("names[%d] = %s, want %s (figure order)", i, names[i], n)
		}
	}
	for _, n := range names {
		p, err := ProfileFor(n)
		if err != nil {
			t.Fatal(err)
		}
		if p.Iterations <= 0 || p.SegMean <= 0 {
			t.Fatalf("%s: degenerate profile %+v", n, p)
		}
	}
	if _, err := ProfileFor("zz"); err == nil {
		t.Fatal("unknown app must error")
	}
}

func TestProfileCharacters(t *testing.T) {
	lu, _ := ProfileFor("lu")
	if !lu.AdHocSpin {
		t.Fatal("lu must use ad-hoc busy-wait sync (paper §5.2.2)")
	}
	dc, _ := ProfileFor("dc")
	if dc.IOPerIter == 0 {
		t.Fatal("dc must do I/O")
	}
	ep, _ := ProfileFor("ep")
	cg, _ := ProfileFor("cg")
	// ep is coarse-grained, cg fine-grained: barrier frequency must
	// differ by orders of magnitude.
	epRate := float64(ep.BarriersPerIter) / ep.SegMean.Seconds()
	cgRate := float64(cg.BarriersPerIter) / cg.SegMean.Seconds()
	if cgRate < 100*epRate {
		t.Fatalf("cg barrier rate %.0f/s vs ep %.0f/s: want >100x gap", cgRate, epRate)
	}
}

func TestLaunchBarrierAppCompletes(t *testing.T) {
	eng, pool, k := newGuest(t, 4, 4)
	p, _ := ProfileFor("cg")
	p.Iterations = 40 // shrink for the unit test
	app := Launch(k, p, 4, guest.SpinBudgetFromCount(300_000))
	pool.Start()
	k.Boot()
	if err := eng.RunUntil(60 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !app.Done() {
		t.Fatal("cg did not complete")
	}
	if len(app.Threads()) != 4 {
		t.Fatalf("threads = %d", len(app.Threads()))
	}
	// Dedicated 4x4: exec ≈ iterations × barriers × segMean ≈ 240ms+.
	if app.ExecTime() < 200*sim.Millisecond {
		t.Fatalf("exec = %v implausibly fast", app.ExecTime())
	}
}

func TestLaunchLuPipelineCompletes(t *testing.T) {
	eng, pool, k := newGuest(t, 4, 4)
	p, _ := ProfileFor("lu")
	p.Iterations = 60
	app := Launch(k, p, 4, 0) // spin budget irrelevant for ad-hoc spin
	pool.Start()
	k.Boot()
	if err := eng.RunUntil(60 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !app.Done() {
		t.Fatal("lu did not complete")
	}
	// lu must show user-level spinning even with GOMP policy PASSIVE.
	var spin sim.Time
	for i := 0; i < 4; i++ {
		spin += k.CPUStatsOf(i).UserSpinTime
	}
	if spin == 0 {
		t.Fatal("lu's ad-hoc sync must busy-wait")
	}
}

func TestLaunchIOAppCompletes(t *testing.T) {
	eng, pool, k := newGuest(t, 4, 4)
	p, _ := ProfileFor("dc")
	p.Iterations = 30
	app := Launch(k, p, 4, guest.SpinBudgetFromCount(0))
	pool.Start()
	k.Boot()
	if err := eng.RunUntil(60 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !app.Done() {
		t.Fatal("dc did not complete")
	}
}

func TestSpinPolicyChangesFutexUsage(t *testing.T) {
	run := func(spin uint64) uint64 {
		eng, pool, k := newGuest(t, 4, 4)
		p, _ := ProfileFor("sp")
		p.Iterations = 50
		Launch(k, p, 4, guest.SpinBudgetFromCount(spin))
		pool.Start()
		k.Boot()
		if err := eng.RunUntil(60 * sim.Second); err != nil {
			t.Fatal(err)
		}
		return k.FutexWaits
	}
	active := run(30_000_000_000)
	passive := run(0)
	if active != 0 {
		t.Fatalf("ACTIVE policy slept %d times on dedicated CPUs", active)
	}
	if passive == 0 {
		t.Fatal("PASSIVE policy never slept")
	}
}

func TestEightThreadLaunch(t *testing.T) {
	eng, pool, k := newGuest(t, 8, 8)
	p, _ := ProfileFor("mg")
	p.Iterations = 30
	app := Launch(k, p, 8, guest.SpinBudgetFromCount(300_000))
	pool.Start()
	k.Boot()
	if err := eng.RunUntil(60 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !app.Done() || len(app.Threads()) != 8 {
		t.Fatal("8-thread mg failed")
	}
}
