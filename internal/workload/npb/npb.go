// Package npb models the synchronisation skeletons of the NAS Parallel
// Benchmarks (OMP flavour, class-S-scale) used in the paper's Figures 6,
// 7, 8, 9 and 10. Each application is reduced to its synchronisation
// structure: iteration count, per-iteration compute per thread (with a
// skew factor that determines barrier imbalance), barrier frequency, and
// — for lu — the hand-rolled busy-wait pipeline that bypasses OpenMP's
// wait policy entirely. The absolute problem sizes are scaled so a run
// completes in a few simulated seconds; the *relative* behaviour across
// configurations (vanilla / pv-spinlock / vScale) is what reproduces the
// paper's figures.
package npb

import (
	"fmt"

	"vscale/internal/guest"
	"vscale/internal/sim"
	"vscale/internal/workload"
)

// Profile describes one NPB application's synchronisation skeleton.
type Profile struct {
	Name string
	// Iterations of the outer timestep loop.
	Iterations int
	// SegMean is the mean per-thread compute between barriers.
	SegMean sim.Time
	// Skew is the relative imbalance between threads within an
	// iteration (0 = perfectly balanced, 0.5 = ±50%).
	Skew float64
	// BarriersPerIter is how many barrier episodes one iteration has.
	BarriersPerIter int
	// CriticalPerIter adds mutex-protected critical sections per
	// iteration (reductions).
	CriticalPerIter int
	// CriticalLen is the critical-section length.
	CriticalLen sim.Time
	// AdHocSpin marks lu's hand-rolled busy-wait pipeline: threads
	// synchronise through SpinVars regardless of the OpenMP wait policy.
	AdHocSpin bool
	// IOPerIter adds dc-style I/O waits per iteration.
	IOPerIter int
	// IOService is the device service time for those I/Os.
	IOService sim.Time
}

// Profiles returns the ten NPB-OMP applications, ordered as in the
// paper's figures. The parameters are fitted to the paper's own
// profiling: lu uses ad-hoc spinning (its gain is policy-independent),
// ep/ft/is have little synchronisation (Figure 10 shows few IPIs), dc is
// I/O- and futex-heavy (the 1080 IPIs/vCPU/s outlier), and bt/cg/mg/
// sp/ua are barrier-dominated with varying granularity.
func Profiles() []Profile {
	ms := func(f float64) sim.Time { return sim.FromMillis(f) }
	return []Profile{
		{Name: "bt", Iterations: 400, SegMean: ms(3.0), Skew: 0.30, BarriersPerIter: 3},
		{Name: "cg", Iterations: 500, SegMean: ms(1.5), Skew: 0.35, BarriersPerIter: 4},
		{Name: "dc", Iterations: 250, SegMean: ms(4.0), Skew: 0.20, BarriersPerIter: 1,
			CriticalPerIter: 10, CriticalLen: 40 * sim.Microsecond,
			IOPerIter: 1, IOService: ms(0.8)},
		{Name: "ep", Iterations: 4, SegMean: ms(1000), Skew: 0.02, BarriersPerIter: 1},
		{Name: "ft", Iterations: 30, SegMean: ms(80), Skew: 0.05, BarriersPerIter: 2},
		{Name: "is", Iterations: 40, SegMean: ms(45), Skew: 0.05, BarriersPerIter: 2,
			CriticalPerIter: 4, CriticalLen: 30 * sim.Microsecond},
		{Name: "lu", Iterations: 1200, SegMean: ms(2.5), Skew: 0.25, BarriersPerIter: 1, AdHocSpin: true},
		{Name: "mg", Iterations: 350, SegMean: ms(1.2), Skew: 0.40, BarriersPerIter: 6},
		{Name: "sp", Iterations: 500, SegMean: ms(1.6), Skew: 0.35, BarriersPerIter: 4},
		{Name: "ua", Iterations: 600, SegMean: ms(1.0), Skew: 0.40, BarriersPerIter: 5},
	}
}

// ProfileFor returns the profile with the given name.
func ProfileFor(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("npb: unknown application %q", name)
}

// Names lists the application names in figure order.
func Names() []string {
	ps := Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// Launch starts the application on kernel k with nThreads OpenMP worker
// threads (OpenMP sizes its team from the online vCPUs at startup) and
// the given spin budget (GOMP_SPINCOUNT × check cost). It returns the
// harness; completion is observable via App.Done.
func Launch(k *guest.Kernel, p Profile, nThreads int, spinBudget sim.Time) *workload.App {
	app := workload.NewApp(k, "npb/"+p.Name)
	if p.AdHocSpin {
		launchAdHocPipeline(k, app, p, nThreads)
		return app
	}
	barriers := make([]*guest.Barrier, p.BarriersPerIter)
	for i := range barriers {
		barriers[i] = k.NewBarrier(nThreads, spinBudget)
	}
	var crit *guest.Mutex
	if p.CriticalPerIter > 0 {
		crit = k.NewMutex()
	}
	var dev *guest.Device
	if p.IOPerIter > 0 {
		dev = k.NewDevice("npb-disk", 0, 5*sim.Microsecond)
	}
	for th := 0; th < nThreads; th++ {
		pp := p
		app.Go(fmt.Sprintf("%s.%d", p.Name, th), &workload.RandLoop{
			N: p.Iterations,
			Body: func(iter int) []any {
				var acts []any
				for bi := 0; bi < pp.BarriersPerIter; bi++ {
					lo := sim.Time(float64(pp.SegMean) * (1 - pp.Skew))
					hi := sim.Time(float64(pp.SegMean) * (1 + pp.Skew))
					acts = append(acts, workload.RandCompute(lo, hi))
					if bi == 0 {
						for ci := 0; ci < pp.CriticalPerIter; ci++ {
							acts = append(acts,
								guest.ActLock{M: crit},
								guest.ActCompute{D: pp.CriticalLen},
								guest.ActUnlock{M: crit},
							)
						}
						for io := 0; io < pp.IOPerIter; io++ {
							acts = append(acts, guest.ActIO{Dev: dev, Service: pp.IOService})
						}
					}
					acts = append(acts, guest.ActBarrierWait{B: barriers[bi]})
				}
				return acts
			},
		})
	}
	return app
}

// launchAdHocPipeline models lu's hand-rolled pipelined wavefront: each
// thread computes a block, publishes its progress through a SpinVar and
// busy-waits for its predecessor — pure user-level spinning that no
// OpenMP wait policy controls (the paper: "lu implements its own
// synchronization primitives via busy-waiting, beyond the control of
// OpenMP").
func launchAdHocPipeline(k *guest.Kernel, app *workload.App, p Profile, nThreads int) {
	ready := make([]*guest.SpinVar, nThreads)
	for i := range ready {
		ready[i] = k.NewSpinVar()
	}
	for th := 0; th < nThreads; th++ {
		th := th
		pp := p
		pred := ready[(th+nThreads-1)%nThreads]
		own := ready[th]
		app.Go(fmt.Sprintf("lu.%d", th), &workload.RandLoop{
			N: p.Iterations,
			Body: func(iter int) []any {
				lo := sim.Time(float64(pp.SegMean) * (1 - pp.Skew))
				hi := sim.Time(float64(pp.SegMean) * (1 + pp.Skew))
				acts := []any{workload.RandCompute(lo, hi)}
				if th != 0 {
					// Wait for the predecessor to publish this wavefront.
					acts = append(acts, guest.ActSpinWait{S: pred, Gen: uint64(iter + 1)})
				} else if iter > 0 {
					// Thread 0 waits for the ring to complete the
					// previous front before starting the next.
					acts = append(acts, guest.ActSpinWait{S: pred, Gen: uint64(iter)})
				}
				acts = append(acts, guest.ActSpinSet{S: own})
				return acts
			},
		})
	}
}
