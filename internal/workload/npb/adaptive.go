package npb

import (
	"fmt"

	"vscale/internal/guest"
	"vscale/internal/sim"
	"vscale/internal/workload"
)

// AdaptiveLaunch is the paper's §7 future-work direction made concrete:
// an OpenMP-style runtime that uses vScale's interface to size each
// parallel region's team to the VM's *current* active vCPU count,
// instead of the online count at program start.
//
// Per region, the master reads the active-vCPU count, wakes that many
// workers, splits the region's work evenly among them, and joins them on
// a region-sized spin barrier. Workers outside the team sleep, so a
// shrunken VM never hosts more spinners than vCPUs — the packed-team
// spin waste of a fixed team disappears.
//
// The total work per region equals the fixed-team equivalent
// (maxThreads × SegMean), so execution times are directly comparable
// with Launch.
func AdaptiveLaunch(k *guest.Kernel, p Profile, maxThreads int, spinBudget sim.Time) *workload.App {
	app := workload.NewApp(k, "npb-adaptive/"+p.Name)
	if maxThreads < 1 {
		maxThreads = 1
	}
	regions := p.Iterations * p.BarriersPerIter
	if regions < 1 {
		regions = 1
	}
	regionWork := sim.Time(float64(p.SegMean) * float64(maxThreads))

	type token struct {
		seg  sim.Time
		join *guest.Barrier
		stop bool
	}
	// One mailbox per worker (threads 1..maxThreads-1).
	boxes := make([]*guest.WaitQueue, maxThreads)
	for i := 1; i < maxThreads; i++ {
		boxes[i] = k.NewWaitQueue(0)
	}

	// Master: per region, size the team from the active vCPU count and
	// fan the work out.
	app.Go(p.Name+".master", &workload.RandLoop{
		N: regions,
		Body: func(r int) []any {
			return []any{workload.Dynamic(func(t *guest.Thread) []guest.Action {
				m := k.ActiveVCPUs()
				if m < 1 {
					m = 1
				}
				if m > maxThreads {
					m = maxThreads
				}
				join := k.NewBarrier(m, spinBudget)
				seg := regionWork / sim.Time(m)
				acts := make([]guest.Action, 0, m+2)
				for w := 1; w < m; w++ {
					box, tok := boxes[w], token{seg: seg, join: join}
					acts = append(acts, guest.ActEnqueue{Q: box, Item: tok})
				}
				acts = append(acts,
					guest.ActCompute{D: seg},
					guest.ActBarrierWait{B: join},
				)
				if r == regions-1 {
					// Final region: release every worker for exit.
					for w := 1; w < maxThreads; w++ {
						acts = append(acts, guest.ActEnqueue{Q: boxes[w], Item: token{stop: true}})
					}
				}
				return acts
			})}
		},
	})

	// Workers: sleep until handed a region token, run the share, join.
	for w := 1; w < maxThreads; w++ {
		box := boxes[w]
		app.Go(fmt.Sprintf("%s.w%d", p.Name, w), &workload.RandLoop{
			Forever: true,
			Body: func(int) []any {
				return []any{
					guest.ActDequeue{Q: box},
					workload.Dynamic(func(t *guest.Thread) []guest.Action {
						tok := t.Mailbox.(token)
						if tok.stop {
							return []guest.Action{guest.ActExit{}}
						}
						return []guest.Action{
							guest.ActCompute{D: tok.seg},
							guest.ActBarrierWait{B: tok.join},
						}
					}),
				}
			},
		})
	}
	return app
}
