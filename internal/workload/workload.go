// Package workload provides the application harness and generic program
// builders used to model the paper's workloads: an App groups the
// threads of one multithreaded application and records its execution
// time; Loop/Seq build Programs from action lists; KernelBuild and
// Slideshow model the calibration workload of Table 2 and the
// interactive background VMs of §5.2.1.
package workload

import (
	"vscale/internal/guest"
	"vscale/internal/sim"
)

// App tracks one multithreaded application running inside a guest.
type App struct {
	k    *guest.Kernel
	Name string

	started   sim.Time
	finished  sim.Time
	remaining int
	threads   []*guest.Thread

	// OnDone runs when the last thread exits.
	OnDone func(*App)
}

// NewApp creates an application harness on kernel k.
func NewApp(k *guest.Kernel, name string) *App {
	return &App{k: k, Name: name, started: k.Engine().Now()}
}

// Go spawns one application thread running prog.
func (a *App) Go(name string, prog guest.Program) *guest.Thread {
	a.remaining++
	t := a.k.Spawn(name, guest.Uthread, prog, func(*guest.Thread) {
		a.remaining--
		if a.remaining == 0 {
			a.finished = a.k.Engine().Now()
			if a.OnDone != nil {
				a.OnDone(a)
			}
		}
	})
	a.threads = append(a.threads, t)
	return t
}

// Threads returns the spawned application threads.
func (a *App) Threads() []*guest.Thread { return a.threads }

// Done reports whether every thread has exited.
func (a *App) Done() bool { return a.remaining == 0 && len(a.threads) > 0 }

// ExecTime returns the wall time from harness creation to the last
// thread's exit (0 if not finished).
func (a *App) ExecTime() sim.Time {
	if !a.Done() {
		return 0
	}
	return a.finished - a.started
}

// Seq is a Program yielding a fixed list of actions, then exiting.
type Seq struct {
	Actions []guest.Action
	i       int
}

// Next implements guest.Program.
func (s *Seq) Next(t *guest.Thread) guest.Action {
	if s.i >= len(s.Actions) {
		return guest.ActExit{}
	}
	a := s.Actions[s.i]
	s.i++
	return a
}

// Loop repeats Body(iter) for N iterations, then exits. When Forever is
// set it never exits (background load).
type Loop struct {
	N       int
	Forever bool
	Body    func(iter int) []guest.Action

	iter int
	buf  []guest.Action
}

// Next implements guest.Program.
func (l *Loop) Next(t *guest.Thread) guest.Action {
	for len(l.buf) == 0 {
		if !l.Forever && l.iter >= l.N {
			return guest.ActExit{}
		}
		l.buf = l.Body(l.iter)
		l.iter++
	}
	a := l.buf[0]
	l.buf = l.buf[1:]
	return a
}

// KernelBuild models a parallel kernel compile (the workload behind the
// paper's Table 2): compute bursts with shared mm_sem-style mutex
// traffic, short pipe waits, and make-jobserver token passing that
// wakes compiler threads across CPUs — producing the ~20 reschedule
// IPIs/vCPU/s the paper reports.
type KernelBuild struct {
	MMSem *guest.Mutex
	// The make jobserver pipe: finishing jobs put a token, and every
	// few compilation units a job takes one (blocking if none —
	// cross-CPU wakeups, like reading an empty pipe).
	pipe *guest.WaitQueue
	// Jobs is the number of compiler threads.
	Jobs int
}

// NewKernelBuild creates the shared state for one build.
func NewKernelBuild(k *guest.Kernel, jobs int) *KernelBuild {
	b := &KernelBuild{
		MMSem: k.NewMutex(),
		pipe:  k.NewWaitQueue(0),
		Jobs:  jobs,
	}
	// One spare token so a taker never waits on an empty pipe forever.
	b.pipe.Post(struct{}{}, 0)
	return b
}

// Start launches the build threads into app. Token takes and returns are
// staggered across jobs so a taker usually blocks briefly until another
// job's return wakes it — a cross-CPU wakeup, like reading make's
// jobserver pipe.
func (b *KernelBuild) Start(app *App) {
	for j := 0; j < b.Jobs; j++ {
		j := j
		app.Go("cc", &RandLoop{Forever: true, Body: func(i int) []any {
			acts := []any{
				RandCompute(3*sim.Millisecond, 5*sim.Millisecond),
				guest.ActLock{M: b.MMSem},
				guest.ActCompute{D: 30 * sim.Microsecond},
				guest.ActUnlock{M: b.MMSem},
				RandCompute(3*sim.Millisecond, 5*sim.Millisecond),
			}
			switch (i + j) % 8 {
			case 0:
				acts = append(acts, guest.ActDequeue{Q: b.pipe})
			case 4:
				acts = append(acts, guest.ActEnqueue{Q: b.pipe, Item: struct{}{}})
			default:
				acts = append(acts, RandSleep(sim.Millisecond, 3*sim.Millisecond))
			}
			return acts
		}})
	}
}

// Slideshow models the paper's background virtual desktops: a
// "photo-slideshow" that periodically opens a large JPEG — a burst of
// CPU on both vCPUs followed by think time. CPU consumption spikes and
// collapses, which is exactly the fluctuating availability vScale
// exploits. The decode threads work on the same picture, so their
// bursts are correlated: the VM's consumption flips between ~0 and its
// full vCPU count, the bimodal pattern of interactive desktops.
type Slideshow struct {
	// BurstMin/Max is the decode burst per picture.
	BurstMin, BurstMax sim.Time
	// IdleMin/Max is the think time between pictures.
	IdleMin, IdleMax sim.Time
	// Threads is the number of decode threads (the paper's background
	// VMs have 2 vCPUs).
	Threads int
	// Uncorrelated lets each thread follow its own picture schedule
	// instead of decoding jointly.
	Uncorrelated bool
}

// DefaultSlideshow returns the burst/idle profile used in the
// experiments: decode bursts of 250–500 ms separated by 400–1000 ms of
// think time (~35% duty cycle per thread). With the 2:1 consolidation of
// §5.2.1 this keeps total demand fluctuating around the pool capacity,
// which is the regime where baseline VMs suffer scheduling delays and
// vScale has slack to exploit.
func DefaultSlideshow() Slideshow {
	return Slideshow{
		BurstMin: 600 * sim.Millisecond,
		BurstMax: 1200 * sim.Millisecond,
		IdleMin:  150 * sim.Millisecond,
		IdleMax:  350 * sim.Millisecond,
		Threads:  2,
	}
}

// slideshowSched is the shared per-VM picture schedule; whichever thread
// reaches an iteration first draws its timings, so both decode threads
// follow the same schedule.
type slideshowSched struct {
	idle, burst []sim.Time
}

func (sc *slideshowSched) entry(i int, s Slideshow, r *sim.Rand, first bool) (sim.Time, sim.Time) {
	for len(sc.idle) <= i {
		lo := s.IdleMin
		if first && len(sc.idle) == 0 {
			// Stagger the first picture so background VMs do not burst
			// in lockstep at boot.
			lo = 0
		}
		sc.idle = append(sc.idle, r.Duration(lo, s.IdleMax))
		sc.burst = append(sc.burst, r.Duration(s.BurstMin, s.BurstMax))
	}
	return sc.idle[i], sc.burst[i]
}

// Start launches the slideshow threads (they run forever) on app's
// kernel.
func (s Slideshow) Start(app *App) {
	n := s.Threads
	if n <= 0 {
		n = 2
	}
	if s.Uncorrelated {
		for i := 0; i < n; i++ {
			ss := s
			app.Go("slideshow", &RandLoop{Forever: true, Body: func(iter int) []any {
				idleLo := ss.IdleMin
				if iter == 0 {
					idleLo = 0
				}
				return []any{
					RandSleep(idleLo, ss.IdleMax),
					RandCompute(ss.BurstMin, ss.BurstMax),
				}
			}})
		}
		return
	}
	// Correlated: both threads follow one schedule and join on a barrier
	// after each picture (the decode threads split one image).
	sched := &slideshowSched{}
	join := app.k.NewBarrier(n, 0)
	for i := 0; i < n; i++ {
		ss := s
		app.Go("slideshow", &RandLoop{Forever: true, Body: func(iter int) []any {
			return []any{
				Dynamic(func(t *guest.Thread) []guest.Action {
					idle, burst := sched.entry(iter, ss, t.Rand(), true)
					return []guest.Action{
						guest.ActSleep{D: idle},
						guest.ActCompute{D: burst},
						guest.ActBarrierWait{B: join},
					}
				}),
			}
		}})
	}
}

// randCompute and randSleep are placeholders expanded by RandLoop at
// execution time using the thread's deterministic PRNG, so durations
// vary per iteration without breaking reproducibility.
type randCompute struct{ lo, hi sim.Time }
type randSleep struct{ lo, hi sim.Time }

// expand converts placeholders to concrete actions using t's PRNG.
func expand(t *guest.Thread, a any) guest.Action {
	switch v := a.(type) {
	case randCompute:
		return guest.ActCompute{D: t.Rand().Duration(v.lo, v.hi)}
	case randSleep:
		return guest.ActSleep{D: t.Rand().Duration(v.lo, v.hi)}
	case guest.Action:
		return v
	default:
		panic("workload: unknown action placeholder")
	}
}

// RandLoop is Loop with placeholder support: Body may return
// randCompute/randSleep placeholders via RandCompute/RandSleep.
type RandLoop struct {
	N       int
	Forever bool
	Body    func(iter int) []any

	iter int
	buf  []any
}

// Next implements guest.Program.
func (l *RandLoop) Next(t *guest.Thread) guest.Action {
	for {
		for len(l.buf) == 0 {
			if !l.Forever && l.iter >= l.N {
				return guest.ActExit{}
			}
			l.buf = l.Body(l.iter)
			l.iter++
		}
		a := l.buf[0]
		l.buf = l.buf[1:]
		if d, ok := a.(dynamicNode); ok {
			acts := d.fn(t)
			spliced := make([]any, 0, len(acts)+len(l.buf))
			for _, x := range acts {
				spliced = append(spliced, x)
			}
			l.buf = append(spliced, l.buf...)
			continue
		}
		return expand(t, a)
	}
}

// RandCompute returns a placeholder that expands to a uniform-duration
// compute at execution time.
func RandCompute(lo, hi sim.Time) any { return randCompute{lo: lo, hi: hi} }

// RandSleep returns a placeholder that expands to a uniform-duration
// sleep at execution time.
func RandSleep(lo, hi sim.Time) any { return randSleep{lo: lo, hi: hi} }

// dynamicNode defers action generation to execution time; the returned
// actions are spliced in front of the remaining program. Used for
// data-dependent control flow (e.g. "broadcast if I am the last
// arriver", decided while actually holding the lock).
type dynamicNode struct {
	fn func(t *guest.Thread) []guest.Action
}

// Dynamic wraps a decision callback into a program element for RandLoop
// bodies.
func Dynamic(fn func(t *guest.Thread) []guest.Action) any { return dynamicNode{fn: fn} }
