package httpd

import (
	"fmt"

	"vscale/internal/guest"
	"vscale/internal/metrics"
	"vscale/internal/sim"
)

// Checkpoint support (docs/checkpoint.md). A quiesced server — every
// request terminal, every worker back on the accept queue — carries only
// counters, latency summaries, the link's next-free time and the accept
// queue/mutex bookkeeping. Worker closure state is structural: a blocked
// worker always sits in the accept phase with no current request, which
// is exactly where a freshly built worker blocks, so rebuild + overwrite
// reproduces it.

// Checkpoint is the semantic state of a quiesced Server.
type Checkpoint struct {
	Conn         metrics.SummaryState      `json:"conn"`
	Resp         metrics.SummaryState      `json:"resp"`
	Replies      uint64                    `json:"replies"`
	Errors       uint64                    `json:"errors"`
	Interrupts   uint64                    `json:"interrupts"`
	LinkNextFree sim.Time                  `json:"link_next_free"`
	AcceptQ      guest.WaitQueueCheckpoint `json:"accept_q"`
	AcceptMu     guest.MutexCheckpoint     `json:"accept_mu"`
}

// CheckpointState exports the server's state. It errors if the server
// has faulted or is not drained (items or producers on the accept queue,
// a held accept mutex).
func (s *Server) CheckpointState() (Checkpoint, error) {
	if s.err != nil {
		return Checkpoint{}, fmt.Errorf("httpd: server faulted: %w", s.err)
	}
	qcp, err := s.acceptQ.CheckpointState()
	if err != nil {
		return Checkpoint{}, fmt.Errorf("httpd: accept queue: %w", err)
	}
	mcp, err := s.acceptMu.CheckpointState()
	if err != nil {
		return Checkpoint{}, fmt.Errorf("httpd: accept mutex: %w", err)
	}
	return Checkpoint{
		Conn:         s.conn.State(),
		Resp:         s.resp.State(),
		Replies:      s.replies,
		Errors:       s.errors,
		Interrupts:   s.dev.Interrupts,
		LinkNextFree: s.link.nextFree,
		AcceptQ:      qcp,
		AcceptMu:     mcp,
	}, nil
}

// RestoreState overwrites the server's state from a capture. The server
// must have been rebuilt with the same configuration (same worker count)
// and be quiesced with all workers blocked on the accept queue.
func (s *Server) RestoreState(cp Checkpoint) error {
	if s.err != nil {
		return fmt.Errorf("httpd: restore target faulted: %w", s.err)
	}
	if err := s.acceptQ.RestoreState(cp.AcceptQ); err != nil {
		return fmt.Errorf("httpd: accept queue: %w", err)
	}
	s.acceptMu.RestoreState(cp.AcceptMu)
	s.conn.Restore(cp.Conn)
	s.resp.Restore(cp.Resp)
	s.replies = cp.Replies
	s.errors = cp.Errors
	s.dev.Interrupts = cp.Interrupts
	s.link.nextFree = cp.LinkNextFree
	return nil
}
