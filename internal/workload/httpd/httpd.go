// Package httpd models the paper's Apache web server experiment (Figure
// 14): an Apache-style worker-pool server inside the guest, an
// httperf-style open-loop client on a separate machine, and a shared
// 1 Gbps link. Connection time reflects the latency of processing the
// SYN in the softirq on the interrupt-bound vCPU (delayed whenever that
// vCPU is preempted); response time adds worker scheduling, per-request
// CPU work and the transfer of the 16 KB reply over the link.
package httpd

import (
	"fmt"

	"vscale/internal/guest"
	"vscale/internal/metrics"
	"vscale/internal/sim"
)

// Config parameterises the server/client pair.
type Config struct {
	// Workers is the Apache worker-thread pool size.
	Workers int
	// RequestCPU is the per-request worker CPU time (parse + file read
	// + send for the 16 KB file).
	RequestCPU sim.Time
	// SoftirqCost is the per-interrupt network-stack cost.
	SoftirqCost sim.Time
	// FileSize is the reply body size in bytes.
	FileSize int
	// LinkBps is the network link speed in bits/second.
	LinkBps float64
	// WireDelay is the one-way wire latency.
	WireDelay sim.Time
	// Backlog bounds the accept queue; connections arriving beyond it
	// are dropped (listen backlog).
	Backlog int
	// Timeout is the client's per-request timeout (httperf --timeout);
	// requests not answered in time count as errors, not replies, even
	// though the server spent CPU on them — which is what makes the
	// baseline's reply rate *decline* past saturation.
	Timeout sim.Time

	// DelayPenaltyThreshold and DelayPenalty model the TCP slow path: a
	// request whose RX interrupt sat undelivered longer than the
	// threshold (a preempted interrupt-bound vCPU, Figure 1c) costs
	// extra CPU when finally served — out-of-order/backlog processing
	// and retransmitted segments. Guest-internal queueing does NOT
	// trigger it, only hypervisor-level interrupt delay, so a VM whose
	// vCPUs are scheduled promptly (vScale) never pays it.
	DelayPenaltyThreshold sim.Time
	DelayPenalty          sim.Time
}

// DefaultConfig matches the paper's setup: 16 KB file over 1 GbE.
func DefaultConfig() Config {
	return Config{
		Workers:     32,
		RequestCPU:  240 * sim.Microsecond,
		SoftirqCost: 15 * sim.Microsecond,
		FileSize:    16 * 1024,
		LinkBps:     1e9,
		WireDelay:   50 * sim.Microsecond,
		Backlog:     511,
		Timeout:     500 * sim.Millisecond,

		DelayPenaltyThreshold: 8 * sim.Millisecond,
		DelayPenalty:          600 * sim.Microsecond,
	}
}

// Link is a shared serialising network link.
type Link struct {
	eng      *sim.Engine
	bps      float64
	nextFree sim.Time
}

// NewLink creates a link with the given bit rate.
func NewLink(eng *sim.Engine, bps float64) *Link {
	return &Link{eng: eng, bps: bps}
}

// SetBps changes the link's bit rate from now on. In-flight transfers
// keep their already-computed departure times; only later Sends price
// at the new rate. The cluster uses this to model live-migration
// traffic contending with guest I/O on the host uplink.
func (l *Link) SetBps(bps float64) {
	if bps > 0 {
		l.bps = bps
	}
}

// Bps returns the link's current bit rate.
func (l *Link) Bps() float64 { return l.bps }

// Send enqueues size bytes and returns the departure (transfer-complete)
// time.
func (l *Link) Send(size int) sim.Time {
	now := l.eng.Now()
	start := now
	if l.nextFree > start {
		start = l.nextFree
	}
	ser := sim.Time(float64(size*8) / l.bps * float64(sim.Second))
	l.nextFree = start + ser
	return l.nextFree
}

// Utilization returns the fraction of time the link has been busy up to
// now (approximate: based on the last departure).
func (l *Link) Utilization() float64 {
	now := l.eng.Now()
	if now == 0 {
		return 0
	}
	busy := l.nextFree
	if busy > now {
		busy = now
	}
	return float64(busy) / float64(now)
}

// request tracks one client connection through the system.
type request struct {
	t0        sim.Time
	connected sim.Time
	replied   sim.Time
	// slowPath marks that the request's RX interrupt was delivered late
	// (hypervisor scheduling delay), costing extra CPU to serve.
	slowPath bool
}

// Result summarises one load level.
type Result struct {
	RateRequested float64 // requests/s offered
	ReplyRate     float64 // replies/s completed within the timeout
	AvgConnMs     float64 // mean connection time, ms
	AvgRespMs     float64 // mean response time, ms
	Errors        uint64  // drops + timeouts
	RxInterrupts  uint64
}

// Server is the Apache model inside a guest kernel.
type Server struct {
	k       *guest.Kernel
	cfg     Config
	dev     *guest.Device
	acceptQ *guest.WaitQueue
	// acceptMu serialises accept() among workers (Apache's accept
	// mutex). Its futex traffic goes through the kernel bucket locks, so
	// lock-holder preemption hits this path exactly as on real
	// Xen/Linux — and pv-spinlocks recover part of it.
	acceptMu *guest.Mutex
	link     *Link
	app      *workloadApp

	conn metrics.Summary // connection times (ms)
	resp metrics.Summary // response times (ms)

	replies uint64
	errors  uint64

	// err records the first internal fault (e.g. a worker reaching an
	// undefined phase); subsequent faults are dropped. A faulted worker
	// exits instead of panicking, so one malformed config cannot kill a
	// whole sweep worker.
	err error

	// OnComplete, when set, is invoked once per request at its terminal
	// event: a reply delivered within the timeout (ok=true), a timeout
	// (ok=false), or a backlog drop (ok=false). lat is the time from
	// injection to the terminal event. Load generators hook this to
	// build latency distributions without touching server internals.
	OnComplete func(lat sim.Time, ok bool)
}

// workloadApp is a minimal stand-in for workload.App to avoid an import
// cycle (httpd is imported by workload consumers, not by workload).
type workloadApp struct{ threads int }

// NewServer builds the server: a network device bound to vCPU0 and a
// worker pool blocked on the accept queue. It rejects malformed
// configurations up front so a bad sweep parameter surfaces as an error
// instead of a mid-simulation fault.
func NewServer(k *guest.Kernel, link *Link, cfg Config) (*Server, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	if link == nil {
		return nil, fmt.Errorf("httpd: nil link")
	}
	s := &Server{k: k, cfg: cfg, link: link, app: &workloadApp{}}
	s.dev = k.NewDevice("eth0", 0, cfg.SoftirqCost)
	s.acceptQ = k.NewWaitQueue(cfg.Backlog)
	s.acceptMu = k.NewMutex()
	for w := 0; w < cfg.Workers; w++ {
		s.spawnWorker(w)
	}
	return s, nil
}

// validate rejects configurations the model cannot run sensibly.
func validate(cfg Config) error {
	switch {
	case cfg.Workers <= 0:
		return fmt.Errorf("httpd: Workers = %d, need > 0", cfg.Workers)
	case cfg.RequestCPU <= 0:
		return fmt.Errorf("httpd: RequestCPU = %v, need > 0", cfg.RequestCPU)
	case cfg.FileSize <= 0:
		return fmt.Errorf("httpd: FileSize = %d, need > 0", cfg.FileSize)
	case cfg.LinkBps <= 0:
		return fmt.Errorf("httpd: LinkBps = %g, need > 0", cfg.LinkBps)
	case cfg.Backlog <= 0:
		return fmt.Errorf("httpd: Backlog = %d, need > 0", cfg.Backlog)
	case cfg.Timeout <= 0:
		return fmt.Errorf("httpd: Timeout = %v, need > 0", cfg.Timeout)
	}
	return nil
}

// fail records the first internal fault.
func (s *Server) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// Err returns the first internal fault, if any. Callers should check it
// after the simulation window: a non-nil error means results are
// incomplete (some workers exited early).
func (s *Server) Err() error { return s.err }

func (s *Server) spawnWorker(id int) {
	s.app.threads++
	k := s.k
	cfg := s.cfg
	var prog guest.ProgramFunc
	phase := 0
	var cur *request
	prog = func(t *guest.Thread) guest.Action {
		switch phase {
		case 0: // accept: block on the socket wait queue (wake-one)
			phase = 1
			return guest.ActDequeue{Q: s.acceptQ}
		case 1: // socket-lock round: sys_accept takes the socket lock
			// briefly (kernel bucket-lock traffic, the pv-spinlock
			// surface), without holding it across blocking.
			cur = t.Mailbox.(*request)
			phase = 2
			return guest.ActLock{M: s.acceptMu}
		case 2:
			phase = 3
			return guest.ActUnlock{M: s.acceptMu}
		case 3: // request work: parse + read the 16 KB file + build reply
			phase = 4
			work := cfg.RequestCPU
			if cur.slowPath {
				work += cfg.DelayPenalty
			}
			return guest.ActCompute{D: work}
		case 4: // transmit the reply over the shared link
			phase = 0
			r := cur
			cur = nil
			return guest.ActCall{Cost: 5 * sim.Microsecond, F: func(t *guest.Thread) {
				dep := s.link.Send(cfg.FileSize)
				k.Engine().At(dep+cfg.WireDelay, "httpd/reply", func() {
					s.finish(r)
				})
			}}
		default:
			// An undefined phase means the worker state machine was
			// corrupted (a programming or config error). Record it and
			// retire this worker; the rest of the sweep keeps running.
			s.fail(fmt.Errorf("httpd: worker %d reached undefined phase %d", id, phase))
			return guest.ActExit{}
		}
	}
	k.Spawn("httpd-worker", guest.Uthread, prog, nil)
}

// finish records a completed reply at the client.
func (s *Server) finish(r *request) {
	now := s.k.Engine().Now()
	lat := now - r.t0
	if lat > s.cfg.Timeout {
		s.errors++
		if s.OnComplete != nil {
			s.OnComplete(lat, false)
		}
		return
	}
	r.replied = now
	s.replies++
	s.resp.Observe(lat.Milliseconds())
	if s.OnComplete != nil {
		s.OnComplete(lat, true)
	}
}

// Client drives the server open-loop at a constant rate for a duration
// and returns the measured result.
type Client struct {
	k    *guest.Kernel
	s    *Server
	cfg  Config
	rand *sim.Rand
}

// NewClient pairs a client with a server.
func NewClient(s *Server, rand *sim.Rand) *Client {
	return &Client{k: s.k, s: s, cfg: s.cfg, rand: rand}
}

// Run offers ratePerSec connections/s for the given duration, starting
// now. It returns after scheduling the arrivals; read Results after the
// simulation has advanced past the drain time.
func (c *Client) Run(ratePerSec float64, duration sim.Time) {
	if ratePerSec <= 0 {
		return
	}
	gap := sim.Time(float64(sim.Second) / ratePerSec)
	eng := c.k.Engine()
	n := int(float64(duration) / float64(gap))
	start := eng.Now()
	for i := 0; i < n; i++ {
		// Constant rate with ±10% jitter, httperf style.
		at := start + sim.Time(i)*gap + c.rand.Duration(0, gap/10)
		eng.At(at, "httpd/arrival", func() { c.arrive() })
	}
}

// arrive models one connection; see Server.Offer.
func (c *Client) arrive() { c.s.Offer() }

// Offer injects one connection at the current simulation time: SYN
// interrupt → softirq (connection established; connection time
// recorded) → after a client turnaround the GET arrives → softirq posts
// it to the accept queue (or drops it when the backlog is full). Load
// generators call this directly; the terminal outcome is reported
// through OnComplete.
func (s *Server) Offer() {
	eng := s.k.Engine()
	r := &request{t0: eng.Now()}
	wire := s.cfg.WireDelay
	eng.After(wire, "httpd/syn", func() {
		synArrived := eng.Now()
		s.dev.Raise(func(cpuID int) {
			// SYN-ACK leaves immediately from the softirq. If the SYN
			// sat pending behind a preempted vCPU, the connection takes
			// the TCP slow path (backlog processing, possible client
			// retransmission) and will cost extra CPU to serve.
			if eng.Now()-synArrived > s.cfg.DelayPenaltyThreshold {
				r.slowPath = true
			}
			r.connected = eng.Now() + wire
			s.conn.Observe((r.connected - r.t0).Milliseconds())
			// Client turnaround: ACK + GET arrive one RTT later.
			eng.After(2*wire, "httpd/get", func() {
				sent := eng.Now()
				s.dev.Raise(func(cpuID int) {
					if eng.Now()-sent > s.cfg.DelayPenaltyThreshold {
						r.slowPath = true
					}
					if !s.acceptQ.Post(r, cpuID) {
						s.errors++ // backlog overflow: connection reset
						if s.OnComplete != nil {
							s.OnComplete(eng.Now()-r.t0, false)
						}
					}
				})
			})
		})
	})
}

// Result summarises the run: reply rate over the measurement window.
func (s *Server) Result(rate float64, window sim.Time) Result {
	return Result{
		RateRequested: rate,
		ReplyRate:     float64(s.replies) / window.Seconds(),
		AvgConnMs:     s.conn.Mean(),
		AvgRespMs:     s.resp.Mean(),
		Errors:        s.errors,
		RxInterrupts:  s.dev.Interrupts,
	}
}

// Replies returns the number of completed replies so far.
func (s *Server) Replies() uint64 { return s.replies }

// Errors returns drops plus timeouts so far.
func (s *Server) Errors() uint64 { return s.errors }

// Device exposes the network device (for IRQ-binding inspection).
func (s *Server) Device() *guest.Device { return s.dev }
