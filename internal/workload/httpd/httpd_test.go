package httpd

import (
	"math"
	"testing"

	"vscale/internal/guest"
	"vscale/internal/sim"
	"vscale/internal/xen"
)

func newServer(t *testing.T, pcpus, vcpus int, cfg Config) (*sim.Engine, *Server, *Client) {
	t.Helper()
	eng := sim.NewEngine(23)
	pool := xen.NewPool(eng, xen.DefaultConfig(pcpus))
	dom := pool.AddDomain("web", 256, vcpus, nil)
	k := guest.NewKernel(dom, guest.DefaultConfig())
	link := NewLink(eng, cfg.LinkBps)
	srv, err := NewServer(k, link, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(srv, sim.NewRand(31))
	pool.Start()
	k.Boot()
	return eng, srv, cl
}

func TestLinkSerialization(t *testing.T) {
	eng := sim.NewEngine(1)
	link := NewLink(eng, 1e9)
	// 16KB at 1Gbps = 131.072µs.
	dep1 := link.Send(16 * 1024)
	want := sim.Time(float64(16*1024*8) / 1e9 * float64(sim.Second))
	if dep1 != want {
		t.Fatalf("first departure = %v, want %v", dep1, want)
	}
	dep2 := link.Send(16 * 1024)
	if dep2 != 2*want {
		t.Fatalf("second departure = %v, want serialized %v", dep2, 2*want)
	}
	if u := link.Utilization(); u != 0 {
		// now == 0, utilization degenerate
		t.Fatalf("utilization at t0 = %f", u)
	}
}

func TestLinkCapacityBound(t *testing.T) {
	// The 1GbE link caps 16KB replies at ~7.6K/s; the paper's saturation
	// point is ~7K/s.
	perReply := float64(16*1024*8) / 1e9
	cap := 1 / perReply
	if cap < 7000 || cap > 8000 {
		t.Fatalf("link capacity = %.0f replies/s, expected ~7.6K", cap)
	}
}

func TestServerLightLoadAllReplied(t *testing.T) {
	eng, srv, cl := newServer(t, 4, 4, DefaultConfig())
	cl.Run(1000, 2*sim.Second)
	if err := eng.RunUntil(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	res := srv.Result(1000, 2*sim.Second)
	if math.Abs(res.ReplyRate-1000) > 30 {
		t.Fatalf("reply rate = %.0f, want ~1000", res.ReplyRate)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d at light load", res.Errors)
	}
	// Connection and response times are sub-millisecond on a dedicated
	// host.
	if res.AvgConnMs > 1 || res.AvgRespMs > 2 {
		t.Fatalf("light-load latencies: conn %.2fms resp %.2fms", res.AvgConnMs, res.AvgRespMs)
	}
	// Two RX interrupts per request (SYN + GET).
	perReq := float64(res.RxInterrupts) / 2000
	if perReq < 1.9 || perReq > 2.1 {
		t.Fatalf("RX interrupts per request = %.2f, want 2", perReq)
	}
}

func TestServerOverloadDropsAndErrors(t *testing.T) {
	cfg := DefaultConfig()
	eng, srv, cl := newServer(t, 2, 2, cfg) // small VM: CPU-capped
	cl.Run(20000, 2*sim.Second)
	if err := eng.RunUntil(6 * sim.Second); err != nil {
		t.Fatal(err)
	}
	res := srv.Result(20000, 2*sim.Second)
	if res.Errors == 0 {
		t.Fatal("overload must produce drops/timeouts")
	}
	if res.ReplyRate > 12000 {
		t.Fatalf("reply rate = %.0f beyond capacity", res.ReplyRate)
	}
}

func TestRepliesWithinTimeoutOnly(t *testing.T) {
	cfg := DefaultConfig()
	// Below the 16KB link serialization time: impossible to meet.
	cfg.Timeout = 100 * sim.Microsecond
	eng, srv, cl := newServer(t, 4, 4, cfg)
	cl.Run(500, sim.Second)
	if err := eng.RunUntil(3 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if srv.Replies() != 0 {
		t.Fatalf("replies = %d with 1ms timeout", srv.Replies())
	}
	if srv.Errors() == 0 {
		t.Fatal("timeouts must be counted as errors")
	}
}

func TestDeviceBinding(t *testing.T) {
	eng, srv, cl := newServer(t, 4, 4, DefaultConfig())
	if srv.Device().BoundCPU() != 0 {
		t.Fatal("eth0 should start bound to vCPU0")
	}
	cl.Run(100, sim.Second)
	if err := eng.RunUntil(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if srv.Device().Interrupts == 0 {
		t.Fatal("no interrupts delivered")
	}
}

func TestZeroRateNoop(t *testing.T) {
	eng, srv, cl := newServer(t, 1, 1, DefaultConfig())
	cl.Run(0, sim.Second)
	if err := eng.RunUntil(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if srv.Replies() != 0 || srv.Errors() != 0 {
		t.Fatal("zero rate should do nothing")
	}
}
