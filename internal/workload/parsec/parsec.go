// Package parsec models the synchronisation skeletons of the PARSEC 3.0
// suite (paper Figures 11, 12, 13). PARSEC applications are pthread
// programs whose thread coordination runs through mutexes and condition
// variables (futex wait/wake with reschedule IPIs); freqmine is the one
// OpenMP member. Each profile captures a shape class — data-parallel
// with coarse joins, pipeline with producer/consumer queues, or
// barrier-structured phases — with parameters fitted to the paper's IPI
// profiling (Figure 13: dedup ~940 IPIs/vCPU/s, streamcluster ~183, the
// well-partitioned codes near zero).
package parsec

import (
	"fmt"

	"vscale/internal/guest"
	"vscale/internal/sim"
	"vscale/internal/workload"
)

// Shape classifies an application's coordination structure.
type Shape int

// Coordination shapes.
const (
	// DataParallel: threads compute independently with a few join
	// points (pthread barrier built on mutex+cond).
	DataParallel Shape = iota
	// Pipeline: stages connected by bounded queues with heavy
	// signal/wait traffic (dedup, ferret, x264-style).
	Pipeline
	// PhaseBarrier: tight barrier-synchronised phases built over
	// mutex+cond (streamcluster's custom barrier).
	PhaseBarrier
	// OpenMP: freqmine; OpenMP barrier with the default 300K spincount.
	OpenMP
	// NoSync: embarrassingly parallel, no synchronisation primitives at
	// all (swaptions).
	NoSync
)

// Profile describes one PARSEC application.
type Profile struct {
	Name  string
	Shape Shape
	// Iterations is the number of outer phases (or items per thread for
	// pipelines).
	Iterations int
	// SegMean is the mean compute between coordination points.
	SegMean sim.Time
	// Skew is the per-segment imbalance.
	Skew float64
	// QueueOpsPerItem, for pipelines, is how many lock/signal rounds one
	// item costs per stage.
	QueueOpsPerItem int
	// LockLen is the critical-section length for queue/lock operations.
	LockLen sim.Time
}

// Profiles returns the 13 applications in the paper's figure order.
func Profiles() []Profile {
	ms := func(f float64) sim.Time { return sim.FromMillis(f) }
	us := func(f float64) sim.Time { return sim.FromMicros(f) }
	return []Profile{
		{Name: "blackscholes", Shape: DataParallel, Iterations: 150, SegMean: ms(25), Skew: 0.05},
		{Name: "bodytrack", Shape: PhaseBarrier, Iterations: 2000, SegMean: ms(1.6), Skew: 0.30},
		{Name: "canneal", Shape: DataParallel, Iterations: 1000, SegMean: ms(3.5), Skew: 0.25},
		{Name: "dedup", Shape: Pipeline, Iterations: 12000, SegMean: us(320), Skew: 0.30, QueueOpsPerItem: 2, LockLen: us(3)},
		{Name: "facesim", Shape: PhaseBarrier, Iterations: 1500, SegMean: ms(2.4), Skew: 0.30},
		{Name: "ferret", Shape: Pipeline, Iterations: 3200, SegMean: ms(1.1), Skew: 0.20, QueueOpsPerItem: 1, LockLen: us(3)},
		{Name: "fluidanimate", Shape: PhaseBarrier, Iterations: 1800, SegMean: ms(1.8), Skew: 0.35},
		{Name: "freqmine", Shape: OpenMP, Iterations: 1600, SegMean: ms(2.2), Skew: 0.15},
		{Name: "raytrace", Shape: DataParallel, Iterations: 250, SegMean: ms(14), Skew: 0.10},
		{Name: "streamcluster", Shape: PhaseBarrier, Iterations: 3800, SegMean: ms(0.9), Skew: 0.30},
		{Name: "swaptions", Shape: NoSync, Iterations: 90, SegMean: ms(45), Skew: 0.05},
		{Name: "vips", Shape: Pipeline, Iterations: 3500, SegMean: ms(1.0), Skew: 0.25, QueueOpsPerItem: 1, LockLen: us(3)},
		{Name: "x264", Shape: Pipeline, Iterations: 2700, SegMean: ms(1.3), Skew: 0.30, QueueOpsPerItem: 1, LockLen: us(3)},
	}
}

// ProfileFor returns the profile with the given name.
func ProfileFor(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("parsec: unknown application %q", name)
}

// Names lists application names in figure order.
func Names() []string {
	ps := Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// Launch starts the application with nThreads workers. ompSpinBudget
// applies only to the OpenMP member (freqmine).
func Launch(k *guest.Kernel, p Profile, nThreads int, ompSpinBudget sim.Time) *workload.App {
	app := workload.NewApp(k, "parsec/"+p.Name)
	switch p.Shape {
	case NoSync:
		launchNoSync(app, p, nThreads)
	case DataParallel:
		launchCondBarrier(k, app, p, nThreads, 1)
	case PhaseBarrier:
		launchCondBarrier(k, app, p, nThreads, 0)
	case Pipeline:
		launchPipeline(k, app, p, nThreads)
	case OpenMP:
		launchOpenMP(k, app, p, nThreads, ompSpinBudget)
	}
	return app
}

func launchNoSync(app *workload.App, p Profile, n int) {
	for th := 0; th < n; th++ {
		pp := p
		app.Go(fmt.Sprintf("%s.%d", p.Name, th), &workload.RandLoop{
			N: p.Iterations,
			Body: func(int) []any {
				lo := sim.Time(float64(pp.SegMean) * (1 - pp.Skew))
				hi := sim.Time(float64(pp.SegMean) * (1 + pp.Skew))
				return []any{workload.RandCompute(lo, hi)}
			},
		})
	}
}

// condBarrier is a pthread-style barrier built from a mutex and a
// condition variable (as streamcluster hand-rolls): arrive under the
// lock; the last arriver broadcasts, others cond-wait.
type condBarrier struct {
	m       *guest.Mutex
	cv      *guest.Cond
	n       int
	arrived int
	gen     uint64
}

func newCondBarrier(k *guest.Kernel, n int) *condBarrier {
	return &condBarrier{m: k.NewMutex(), cv: k.NewCond(), n: n}
}

// actions returns the action sequence for one barrier episode: take the
// mutex, then decide under the lock (via a Dynamic node, expanded only
// after ActLock completed) whether to broadcast or cond-wait.
func (b *condBarrier) actions() []any {
	return []any{
		guest.ActLock{M: b.m},
		workload.Dynamic(func(t *guest.Thread) []guest.Action {
			// Executed while holding b.m: arrivals are serialised, so
			// a broadcast can never race past a waiter's registration.
			b.arrived++
			if b.arrived == b.n {
				b.arrived = 0
				b.gen++
				return []guest.Action{
					guest.ActCompute{D: 200 * sim.Nanosecond},
					guest.ActCondBroadcast{C: b.cv},
					guest.ActUnlock{M: b.m},
				}
			}
			return []guest.Action{
				guest.ActCompute{D: 200 * sim.Nanosecond},
				guest.ActCondWait{C: b.cv, M: b.m},
				guest.ActUnlock{M: b.m},
			}
		}),
	}
}

func launchCondBarrier(k *guest.Kernel, app *workload.App, p Profile, n, joinEvery int) {
	b := newCondBarrier(k, n)
	for th := 0; th < n; th++ {
		pp := p
		app.Go(fmt.Sprintf("%s.%d", p.Name, th), &workload.RandLoop{
			N: p.Iterations,
			Body: func(iter int) []any {
				lo := sim.Time(float64(pp.SegMean) * (1 - pp.Skew))
				hi := sim.Time(float64(pp.SegMean) * (1 + pp.Skew))
				acts := []any{workload.RandCompute(lo, hi)}
				acts = append(acts, b.actions()...)
				return acts
			},
		})
	}
	_ = joinEvery
}

// launchPipeline: stage 0 produces items into queue 1; middle stages
// consume and forward; the last stage consumes. Queues are WaitQueues
// with mutex-protected head/tail bookkeeping to generate the futex/IPI
// traffic dedup exhibits.
func launchPipeline(k *guest.Kernel, app *workload.App, p Profile, n int) {
	stages := n
	if stages < 2 {
		stages = 2
	}
	// Bounded inter-stage queues: a small capacity gives real pipeline
	// backpressure, so a stalled stage (its vCPU preempted) throttles
	// the whole pipeline instead of being papered over by buffering.
	queues := make([]*guest.WaitQueue, stages-1)
	locks := make([]*guest.Mutex, stages-1)
	for i := range queues {
		queues[i] = k.NewWaitQueue(4)
		locks[i] = k.NewMutex()
	}
	items := p.Iterations

	// Pipeline stages are heterogeneous (dedup's chunking and hashing
	// are far lighter than compression): light stages pack onto shared
	// vCPUs almost for free when vScale shrinks the VM, while the
	// bottleneck stage keeps a vCPU to itself.
	stageWeights := []float64{0.6, 1.4, 0.8, 1.2}
	stageRange := func(s int) (sim.Time, sim.Time) {
		w := stageWeights[s%len(stageWeights)]
		lo := sim.Time(float64(p.SegMean) * w * (1 - p.Skew))
		hi := sim.Time(float64(p.SegMean) * w * (1 + p.Skew))
		return lo, hi
	}

	// Producer (stage 0).
	pp := p
	lo, hi := stageRange(0)
	app.Go(p.Name+".s0", &workload.RandLoop{
		N: items,
		Body: func(i int) []any {
			acts := []any{workload.RandCompute(lo, hi)}
			for op := 0; op < pp.QueueOpsPerItem; op++ {
				acts = append(acts,
					guest.ActLock{M: locks[0]},
					guest.ActCompute{D: pp.LockLen},
					guest.ActUnlock{M: locks[0]},
				)
			}
			acts = append(acts, guest.ActEnqueue{Q: queues[0], Item: i})
			return acts
		},
	})

	// Middle and final stages.
	for s := 1; s < stages; s++ {
		s := s
		slo, shi := stageRange(s)
		app.Go(fmt.Sprintf("%s.s%d", p.Name, s), &workload.RandLoop{
			N: items,
			Body: func(i int) []any {
				acts := []any{guest.ActDequeue{Q: queues[s-1]}}
				acts = append(acts, workload.RandCompute(slo, shi))
				if s < stages-1 {
					for op := 0; op < pp.QueueOpsPerItem; op++ {
						acts = append(acts,
							guest.ActLock{M: locks[s]},
							guest.ActCompute{D: pp.LockLen},
							guest.ActUnlock{M: locks[s]},
						)
					}
					acts = append(acts, guest.ActEnqueue{Q: queues[s], Item: i})
				}
				return acts
			},
		})
	}
}

func launchOpenMP(k *guest.Kernel, app *workload.App, p Profile, n int, spinBudget sim.Time) {
	b := k.NewBarrier(n, spinBudget)
	for th := 0; th < n; th++ {
		pp := p
		app.Go(fmt.Sprintf("%s.%d", p.Name, th), &workload.RandLoop{
			N: p.Iterations,
			Body: func(int) []any {
				lo := sim.Time(float64(pp.SegMean) * (1 - pp.Skew))
				hi := sim.Time(float64(pp.SegMean) * (1 + pp.Skew))
				return []any{workload.RandCompute(lo, hi), guest.ActBarrierWait{B: b}}
			},
		})
	}
}
