package parsec

import (
	"testing"

	"vscale/internal/guest"
	"vscale/internal/sim"
	"vscale/internal/workload"
	"vscale/internal/xen"
)

func newGuest(t *testing.T, pcpus, vcpus int) (*sim.Engine, *xen.Pool, *guest.Kernel) {
	t.Helper()
	eng := sim.NewEngine(17)
	pool := xen.NewPool(eng, xen.DefaultConfig(pcpus))
	dom := pool.AddDomain("vm", 256, vcpus, nil)
	k := guest.NewKernel(dom, guest.DefaultConfig())
	return eng, pool, k
}

func TestProfilesComplete(t *testing.T) {
	names := Names()
	if len(names) != 13 {
		t.Fatalf("apps = %d, want 13 PARSEC members", len(names))
	}
	for _, n := range names {
		p, err := ProfileFor(n)
		if err != nil {
			t.Fatal(err)
		}
		if p.Iterations <= 0 || p.SegMean <= 0 {
			t.Fatalf("%s: degenerate profile", n)
		}
	}
	if _, err := ProfileFor("doom"); err == nil {
		t.Fatal("unknown app must error")
	}
}

func TestShapeAssignments(t *testing.T) {
	shapes := map[string]Shape{
		"dedup":         Pipeline,
		"streamcluster": PhaseBarrier,
		"freqmine":      OpenMP,
		"swaptions":     NoSync,
		"blackscholes":  DataParallel,
	}
	for name, want := range shapes {
		p, _ := ProfileFor(name)
		if p.Shape != want {
			t.Fatalf("%s shape = %v, want %v", name, p.Shape, want)
		}
	}
}

func launchSmall(t *testing.T, name string, iters, vcpus int) (*sim.Engine, *guest.Kernel, bool) {
	t.Helper()
	eng, pool, k := newGuest(t, vcpus, vcpus)
	p, err := ProfileFor(name)
	if err != nil {
		t.Fatal(err)
	}
	p.Iterations = iters
	app := Launch(k, p, vcpus, guest.SpinBudgetFromCount(300_000))
	pool.Start()
	k.Boot()
	if err := eng.RunUntil(120 * sim.Second); err != nil {
		t.Fatal(err)
	}
	return eng, k, app.Done()
}

func TestEveryShapeCompletes(t *testing.T) {
	for _, tc := range []struct {
		name  string
		iters int
	}{
		{"blackscholes", 8},
		{"bodytrack", 60},
		{"dedup", 300},
		{"freqmine", 60},
		{"streamcluster", 80},
		{"swaptions", 6},
		{"x264", 120},
	} {
		if _, _, done := launchSmall(t, tc.name, tc.iters, 4); !done {
			t.Fatalf("%s did not complete", tc.name)
		}
	}
}

func TestPipelineBackpressure(t *testing.T) {
	// The pipeline's bounded queues must block fast producers: with a
	// heavy late stage, the producer cannot run far ahead.
	eng, pool, k := newGuest(t, 4, 4)
	p, _ := ProfileFor("dedup")
	p.Iterations = 400
	app := Launch(k, p, 4, 0)
	pool.Start()
	k.Boot()
	if err := eng.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	// Mid-run: producer (stage 0, weight 0.6) would be thousands of
	// items ahead without backpressure; sleeps prove it blocked.
	producer := app.Threads()[0]
	if producer.Sleeps == 0 {
		t.Fatal("producer never blocked: bounded queues not enforcing backpressure")
	}
	if err := eng.RunUntil(120 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !app.Done() {
		t.Fatal("dedup did not complete")
	}
}

func TestCondBarrierSynchronises(t *testing.T) {
	// streamcluster's mutex+cond barrier: all threads complete the same
	// number of phases and futexes are exercised.
	eng, k, done := launchSmall(t, "streamcluster", 50, 4)
	_ = eng
	if !done {
		t.Fatal("streamcluster did not complete")
	}
	if k.FutexWaits == 0 || k.FutexWakes == 0 {
		t.Fatal("cond barrier must sleep/wake through futexes")
	}
}

func TestIPICharacterGap(t *testing.T) {
	// dedup is communication-heavy, swaptions has no sync: IPI rates
	// must differ by orders of magnitude (Figure 13's contrast). The
	// rate is measured over the app's own execution time.
	rate := func(name string, iters int) float64 {
		eng, pool, k := newGuest(t, 4, 4)
		p, err := ProfileFor(name)
		if err != nil {
			t.Fatal(err)
		}
		p.Iterations = iters
		app := Launch(k, p, 4, guest.SpinBudgetFromCount(300_000))
		app.OnDone = func(*workload.App) { eng.Stop() }
		pool.Start()
		k.Boot()
		if err := eng.RunUntil(120 * sim.Second); err != nil {
			t.Fatal(err)
		}
		if !app.Done() {
			t.Fatalf("%s did not complete", name)
		}
		var ipis uint64
		for i := 0; i < 4; i++ {
			ipis += k.CPUStatsOf(i).ReschedIPIs
		}
		return float64(ipis) / app.ExecTime().Seconds() / 4
	}
	dedup := rate("dedup", 2000)
	swap := rate("swaptions", 8)
	if dedup < 100 {
		t.Fatalf("dedup IPI rate = %.0f/vCPU/s, want hundreds", dedup)
	}
	if swap > dedup/10 {
		t.Fatalf("swaptions %.1f vs dedup %.1f: want >10x gap", swap, dedup)
	}
}
