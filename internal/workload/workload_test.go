package workload

import (
	"testing"

	"vscale/internal/guest"
	"vscale/internal/sim"
	"vscale/internal/xen"
)

func newGuest(t *testing.T, pcpus, vcpus int) (*sim.Engine, *xen.Pool, *guest.Kernel) {
	t.Helper()
	eng := sim.NewEngine(5)
	pool := xen.NewPool(eng, xen.DefaultConfig(pcpus))
	dom := pool.AddDomain("vm", 256, vcpus, nil)
	k := guest.NewKernel(dom, guest.DefaultConfig())
	return eng, pool, k
}

func TestAppTracksCompletion(t *testing.T) {
	eng, pool, k := newGuest(t, 2, 2)
	app := NewApp(k, "test")
	doneCalled := false
	app.OnDone = func(a *App) { doneCalled = true }
	app.Go("a", &Seq{Actions: []guest.Action{guest.ActCompute{D: 10 * sim.Millisecond}}})
	app.Go("b", &Seq{Actions: []guest.Action{guest.ActCompute{D: 30 * sim.Millisecond}}})
	if app.Done() {
		t.Fatal("done before running")
	}
	pool.Start()
	k.Boot()
	if err := eng.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if !app.Done() || !doneCalled {
		t.Fatal("app did not complete")
	}
	if et := app.ExecTime(); et < 30*sim.Millisecond || et > 45*sim.Millisecond {
		t.Fatalf("exec time = %v, want ~30ms", et)
	}
	if len(app.Threads()) != 2 {
		t.Fatal("thread list wrong")
	}
}

func TestSeqExhaustsAndExits(t *testing.T) {
	eng, pool, k := newGuest(t, 1, 1)
	app := NewApp(k, "seq")
	th := app.Go("s", &Seq{Actions: []guest.Action{
		guest.ActCompute{D: sim.Millisecond},
		guest.ActSleep{D: sim.Millisecond},
		guest.ActCompute{D: sim.Millisecond},
	}})
	pool.Start()
	k.Boot()
	if err := eng.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if th.State() != guest.ThreadExited {
		t.Fatalf("state = %v", th.State())
	}
}

func TestLoopCounts(t *testing.T) {
	eng, pool, k := newGuest(t, 1, 1)
	app := NewApp(k, "loop")
	iters := 0
	app.Go("l", &Loop{N: 5, Body: func(i int) []guest.Action {
		iters++
		return []guest.Action{guest.ActCompute{D: sim.Millisecond}}
	}})
	pool.Start()
	k.Boot()
	if err := eng.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if iters != 5 {
		t.Fatalf("iterations = %d", iters)
	}
	if !app.Done() {
		t.Fatal("loop app incomplete")
	}
}

func TestRandLoopPlaceholdersAndDynamic(t *testing.T) {
	eng, pool, k := newGuest(t, 1, 1)
	app := NewApp(k, "rand")
	dynamicRan := false
	app.Go("r", &RandLoop{N: 3, Body: func(i int) []any {
		return []any{
			RandCompute(sim.Millisecond, 2*sim.Millisecond),
			RandSleep(sim.Millisecond, 2*sim.Millisecond),
			Dynamic(func(th *guest.Thread) []guest.Action {
				dynamicRan = true
				return []guest.Action{guest.ActCompute{D: 500 * sim.Microsecond}}
			}),
		}
	}})
	pool.Start()
	k.Boot()
	if err := eng.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if !app.Done() || !dynamicRan {
		t.Fatal("rand loop incomplete")
	}
	// Durations must be within the requested bounds: total compute time
	// of the thread is 3 × [1, 2]ms + 3 × 0.5ms.
	th := app.Threads()[0]
	if th.CPUTime < 4500*sim.Microsecond || th.CPUTime > 7500*sim.Microsecond {
		t.Fatalf("cpu time = %v outside placeholder bounds", th.CPUTime)
	}
}

func TestRandLoopForever(t *testing.T) {
	eng, pool, k := newGuest(t, 1, 1)
	app := NewApp(k, "fg")
	n := 0
	app.Go("f", &RandLoop{Forever: true, Body: func(i int) []any {
		n++
		return []any{RandCompute(sim.Millisecond, sim.Millisecond)}
	}})
	pool.Start()
	k.Boot()
	if err := eng.RunUntil(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if n < 90 {
		t.Fatalf("forever loop ran only %d iterations in 100ms", n)
	}
	if app.Done() {
		t.Fatal("forever loop should never be done")
	}
}

func TestKernelBuildGeneratesIPIs(t *testing.T) {
	// Table 2's calibration: ~10-40 reschedule IPIs per vCPU per second.
	eng, pool, k := newGuest(t, 4, 4)
	app := NewApp(k, "kb")
	NewKernelBuild(k, 8).Start(app)
	pool.Start()
	k.Boot()
	if err := eng.RunUntil(4 * sim.Second); err != nil {
		t.Fatal(err)
	}
	var ipis, ticks uint64
	for i := 0; i < 4; i++ {
		ipis += k.CPUStatsOf(i).ReschedIPIs
		ticks += k.CPUStatsOf(i).TimerInterrupts
	}
	perVCPUSec := float64(ipis) / 4 / 4
	if perVCPUSec < 8 || perVCPUSec > 60 {
		t.Fatalf("kernel-build IPIs = %.1f/vCPU/s, want ~20 (paper Table 2)", perVCPUSec)
	}
	// All vCPUs busy: ~1000 ticks/s each.
	if ticks < 14000 {
		t.Fatalf("ticks = %d; build should keep all vCPUs busy", ticks)
	}
}

func TestSlideshowDutyCycle(t *testing.T) {
	eng := sim.NewEngine(9)
	pool := xen.NewPool(eng, xen.DefaultConfig(4))
	dom := pool.AddDomain("bg", 256, 2, nil)
	k := guest.NewKernel(dom, guest.DefaultConfig())
	app := NewApp(k, "show")
	DefaultSlideshow().Start(app)
	pool.Start()
	k.Boot()
	if err := eng.RunUntil(20 * sim.Second); err != nil {
		t.Fatal(err)
	}
	// Duty cycle = VM CPU time over (2 vCPUs × elapsed); bursts 600-1200
	// over idle 150-350 gives roughly 0.65-0.9, minus join-wait slack.
	duty := dom.TotalRunTime.Seconds() / (2 * 20)
	if duty < 0.4 || duty > 0.95 {
		t.Fatalf("slideshow duty = %.2f, want heavy-but-bursty", duty)
	}
}

func TestSlideshowCorrelatedThreadsBurstTogether(t *testing.T) {
	eng := sim.NewEngine(11)
	pool := xen.NewPool(eng, xen.DefaultConfig(4))
	dom := pool.AddDomain("bg", 256, 2, nil)
	k := guest.NewKernel(dom, guest.DefaultConfig())
	app := NewApp(k, "show")
	DefaultSlideshow().Start(app)
	pool.Start()
	k.Boot()
	if err := eng.RunUntil(20 * sim.Second); err != nil {
		t.Fatal(err)
	}
	// Correlated decode threads should consume similar CPU.
	ths := app.Threads()
	a, b := float64(ths[0].CPUTime), float64(ths[1].CPUTime)
	if a == 0 || b == 0 {
		t.Fatal("a slideshow thread never ran")
	}
	ratio := a / b
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("correlated threads diverged: ratio %.2f", ratio)
	}
}

func TestSlideshowUncorrelated(t *testing.T) {
	eng := sim.NewEngine(13)
	pool := xen.NewPool(eng, xen.DefaultConfig(4))
	dom := pool.AddDomain("bg", 256, 2, nil)
	k := guest.NewKernel(dom, guest.DefaultConfig())
	app := NewApp(k, "show")
	s := DefaultSlideshow()
	s.Uncorrelated = true
	s.Start(app)
	pool.Start()
	k.Boot()
	if err := eng.RunUntil(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if dom.TotalRunTime == 0 {
		t.Fatal("uncorrelated slideshow never ran")
	}
}
