package guest

import (
	"fmt"

	"vscale/internal/core"
	"vscale/internal/costmodel"
	"vscale/internal/sim"
)

// FreezeVCPU executes Algorithm 2 on the master vCPU (vCPU0): set the
// freeze-mask bit, update scheduling-group power, notify the hypervisor,
// and tickle the target with a reschedule IPI so it migrates its own
// work. The master-side cost (Table 3: 2.10 µs) is charged to vCPU0;
// the target-side migration cost is charged on the target when it
// drains. Freezing vCPU0 or an already frozen vCPU is an error.
func (k *Kernel) FreezeVCPU(target int) error {
	if target <= 0 || target >= len(k.cpus) {
		return fmt.Errorf("guest: cannot freeze vCPU %d", target)
	}
	if k.Frozen(target) {
		return fmt.Errorf("guest: vCPU %d already frozen", target)
	}
	k.FreezeOps++
	k.tracer().FreezeOp(k.eng.Now(), k.dom.ID(), target, true)
	master := k.cpus[0]

	// Steps (1)-(4): serialised master-side bookkeeping. The individual
	// step costs are charged as one interrupt-context stretch on vCPU0.
	k.chargeInterrupt(master, core.MasterCost()-costmodel.RescheduleIPISend)
	k.freezeMask |= 1 << uint(target)
	k.activeTW.set(k.eng.Now(), float64(k.ActiveVCPUs()))

	// Step (3): hypervisor stops crediting the target.
	k.dom.HypercallCPUFreeze(target, true)

	// Step (4): reschedule IPI; the send cost lands on the master, the
	// delivery triggers the target's drain via resume().
	k.chargeInterrupt(master, costmodel.RescheduleIPISend)
	k.softirq("guest/freeze-ipi", func() { k.dom.SendIPI(0, target) })
	return nil
}

// UnfreezeVCPU reverses FreezeVCPU: clear the mask bit, re-activate the
// vCPU at the hypervisor and wake it so it pulls work (wake_up_idle_cpu).
func (k *Kernel) UnfreezeVCPU(target int) error {
	if target <= 0 || target >= len(k.cpus) {
		return fmt.Errorf("guest: cannot unfreeze vCPU %d", target)
	}
	if !k.Frozen(target) {
		return fmt.Errorf("guest: vCPU %d not frozen", target)
	}
	k.UnfreezeOps++
	k.tracer().FreezeOp(k.eng.Now(), k.dom.ID(), target, false)
	master := k.cpus[0]
	k.chargeInterrupt(master, core.MasterCost()-costmodel.RescheduleIPISend)
	k.freezeMask &^= 1 << uint(target)
	k.activeTW.set(k.eng.Now(), float64(k.ActiveVCPUs()))
	k.dom.HypercallCPUFreeze(target, false)
	k.chargeInterrupt(master, costmodel.RescheduleIPISend)
	k.softirq("guest/unfreeze-ipi", func() { k.dom.SendIPI(0, target) })
	return nil
}

// drainFrozen runs on a frozen CPU (typically right after the freeze
// IPI): migrate every migratable thread to active CPUs, move pending
// software timers to the master, and rebind device IRQs. The per-item
// costs (Table 3: 0.9–1.1 µs per thread, 0.8–1.2 µs per IRQ) keep the
// vCPU busy briefly before it goes idle and blocks.
//
// It returns false when the drain must be postponed (the CPU is inside a
// kernel-lock critical section or spin); resume() retries.
func (k *Kernel) drainFrozen(c *cpu) bool {
	if c.kspin != nil || c.pvParked {
		return false
	}
	// Kernel critical sections pin their thread to this CPU; postpone
	// the drain until they complete (retried at the next tick or
	// dispatch).
	if c.current != nil && c.current.inKernelCritical() {
		return false
	}
	for _, t := range c.rq {
		if t.inKernelCritical() {
			return false
		}
	}
	var cost sim.Time
	moved := 0

	migrate := func(t *Thread) {
		dst := k.selectCPU(t, -1)
		t.cpu = dst
		t.Migrated++
		c.stats.ThreadMigrates++
		k.enqueue(k.cpus[dst], t, true)
		cost += costmodel.ThreadMigrate.Draw(k.rand)
		moved++
	}

	if t := c.current; t != nil {
		k.pauseSegment(c)
		c.current = nil
		if t.Kind.Migratable() {
			t.state = ThreadRunnable
			migrate(t)
		} else {
			// A per-CPU kthread stays parked on its CPU.
			t.state = ThreadSleeping
		}
	}
	for len(c.rq) > 0 {
		t := c.rq[0]
		c.rq = c.rq[1:]
		if t.Kind.Migratable() {
			migrate(t)
		} else {
			t.state = ThreadSleeping
		}
	}

	// Move software timers to the master vCPU so the frozen vCPU stays
	// quiescent (the paper suspends VIRQ_TIMER on frozen vCPUs).
	if len(c.timers) > 0 {
		master := k.cpus[0]
		for _, e := range c.timers {
			k.addTimer(master, e.at, e.fn)
		}
		c.timers = nil
		c.vcpu.StopTimer()
	}

	// Rebind device interrupts away (event-channel rebinding hypercall).
	for _, d := range k.devices {
		if d.port.Target() == c.id {
			dst := k.selectCPU(&Thread{Kind: Uthread, cpu: 0}, 0)
			k.dom.RebindIRQ(d.port, dst)
			cost += costmodel.IRQMigrate.Draw(k.rand)
		}
	}

	// The drain work occupies the target vCPU for its total cost, then
	// the CPU idles out (and the hypervisor blocks it).
	if cost > 0 {
		k.eng.After(cost, "guest/drain-done", func() {
			if k.Frozen(c.id) && c.running {
				k.goIdle(c)
			}
		})
		return true
	}
	k.goIdle(c)
	return true
}
