package guest

import (
	"testing"

	"vscale/internal/sim"
)

func TestWaitQueueFIFOAndMailbox(t *testing.T) {
	e := newEnv(t, 2, 2, nil, nil)
	q := e.k.NewWaitQueue(0)
	var got []int
	e.k.Spawn("consumer", Uthread, &loop{n: 3, body: func(int) []Action {
		return []Action{
			ActDequeue{Q: q},
			ActCall{F: func(th *Thread) { got = append(got, th.Mailbox.(int)) }},
		}
	}}, nil)
	e.k.Spawn("producer", Uthread, &seq{actions: []Action{
		ActCompute{D: sim.Millisecond},
		ActEnqueue{Q: q, Item: 1},
		ActCompute{D: sim.Millisecond},
		ActEnqueue{Q: q, Item: 2},
		ActCompute{D: sim.Millisecond},
		ActEnqueue{Q: q, Item: 3},
	}}, nil)
	e.run(t, sim.Second)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v, want FIFO [1 2 3]", got)
	}
	if q.Len() != 0 || q.Waiters() != 0 {
		t.Fatalf("queue not drained: len=%d waiters=%d", q.Len(), q.Waiters())
	}
}

func TestWaitQueueBoundedBlocksProducer(t *testing.T) {
	e := newEnv(t, 2, 2, nil, nil)
	q := e.k.NewWaitQueue(2)
	prod := e.k.Spawn("producer", Uthread, &loop{n: 6, body: func(i int) []Action {
		return []Action{ActEnqueue{Q: q, Item: i}}
	}}, nil)
	// Slow consumer starts late.
	e.k.Spawn("consumer", Uthread, &loop{n: 6, body: func(int) []Action {
		return []Action{ActSleep{D: 5 * sim.Millisecond}, ActDequeue{Q: q}}
	}}, nil)
	e.run(t, sim.Second)
	if prod.State() != ThreadExited {
		t.Fatalf("producer state %v", prod.State())
	}
	if prod.Sleeps == 0 {
		t.Fatal("bounded queue never blocked the fast producer")
	}
}

func TestWaitQueuePostFromInterruptContext(t *testing.T) {
	e := newEnv(t, 1, 2, nil, nil)
	q := e.k.NewWaitQueue(0)
	dev := e.k.NewDevice("nic", 0, 5*sim.Microsecond)
	served := 0
	e.k.Spawn("server", Uthread, &loop{n: 4, body: func(int) []Action {
		return []Action{
			ActDequeue{Q: q},
			ActCall{F: func(*Thread) { served++ }},
		}
	}}, nil)
	for i := 0; i < 4; i++ {
		i := i
		e.eng.After(sim.Time(i+1)*10*sim.Millisecond, "rx", func() {
			dev.Raise(func(cpuID int) { q.Post(i, cpuID) })
		})
	}
	e.run(t, sim.Second)
	if served != 4 {
		t.Fatalf("served %d of 4 interrupt-posted items", served)
	}
}

func TestWaitQueueBacklogDrop(t *testing.T) {
	e := newEnv(t, 1, 1, nil, nil)
	q := e.k.NewWaitQueue(2)
	// No consumer: the third Post must drop.
	if !q.Post(1, 0) || !q.Post(2, 0) {
		t.Fatal("first posts rejected")
	}
	if q.Post(3, 0) {
		t.Fatal("backlog overflow not dropped")
	}
	if q.Drops != 1 || q.Posts != 3 {
		t.Fatalf("drops=%d posts=%d", q.Drops, q.Posts)
	}
}

func TestActCallChargesCost(t *testing.T) {
	e := newEnv(t, 1, 1, nil, nil)
	ran := false
	th := e.spawn("c",
		ActCall{Cost: 10 * sim.Millisecond, F: func(*Thread) { ran = true }},
	)
	e.run(t, sim.Second)
	if !ran {
		t.Fatal("call did not run")
	}
	if el := th.ExitAt - th.StartAt; el < 10*sim.Millisecond {
		t.Fatalf("elapsed %v, cost not charged", el)
	}
}
