package guest

import (
	"math"
	"testing"

	"vscale/internal/sim"
	"vscale/internal/xen"
)

// seq is a Program that yields a fixed list of actions, then exits.
type seq struct {
	actions []Action
	i       int
}

func (s *seq) Next(t *Thread) Action {
	if s.i >= len(s.actions) {
		return ActExit{}
	}
	a := s.actions[s.i]
	s.i++
	return a
}

// loop repeats body actions n times, then exits.
type loop struct {
	body func(iter int) []Action
	n    int
	i    int
	buf  []Action
}

func (l *loop) Next(t *Thread) Action {
	for len(l.buf) == 0 {
		if l.i >= l.n {
			return ActExit{}
		}
		l.buf = l.body(l.i)
		l.i++
	}
	a := l.buf[0]
	l.buf = l.buf[1:]
	return a
}

type testEnv struct {
	eng  *sim.Engine
	pool *xen.Pool
	dom  *xen.Domain
	k    *Kernel
	done int
}

func newEnv(t *testing.T, pcpus, vcpus int, mod func(*Config), xmod func(*xen.Config)) *testEnv {
	t.Helper()
	eng := sim.NewEngine(7)
	xcfg := xen.DefaultConfig(pcpus)
	if xmod != nil {
		xmod(&xcfg)
	}
	pool := xen.NewPool(eng, xcfg)
	dom := pool.AddDomain("vm", 256, vcpus, nil)
	cfg := DefaultConfig()
	if mod != nil {
		mod(&cfg)
	}
	k := NewKernel(dom, cfg)
	return &testEnv{eng: eng, pool: pool, dom: dom, k: k}
}

func (e *testEnv) spawn(name string, acts ...Action) *Thread {
	return e.k.Spawn(name, Uthread, &seq{actions: acts}, func(*Thread) { e.done++ })
}

func (e *testEnv) run(t *testing.T, until sim.Time) {
	t.Helper()
	e.pool.Start()
	e.k.Boot()
	if err := e.eng.RunUntil(until); err != nil {
		t.Fatal(err)
	}
}

func TestSingleThreadCompute(t *testing.T) {
	e := newEnv(t, 1, 1, nil, nil)
	th := e.spawn("w", ActCompute{D: 100 * sim.Millisecond})
	e.run(t, sim.Second)
	if th.State() != ThreadExited {
		t.Fatalf("state = %v", th.State())
	}
	el := th.ExitAt - th.StartAt
	if el < 100*sim.Millisecond || el > 102*sim.Millisecond {
		t.Fatalf("elapsed = %v, want ~100ms", el)
	}
	if th.CPUTime != 100*sim.Millisecond {
		t.Fatalf("cpu time = %v", th.CPUTime)
	}
	if e.done != 1 {
		t.Fatal("exit callback not invoked")
	}
}

func TestThreadsShareOneVCPU(t *testing.T) {
	e := newEnv(t, 1, 1, nil, nil)
	a := e.spawn("a", ActCompute{D: 50 * sim.Millisecond})
	b := e.spawn("b", ActCompute{D: 50 * sim.Millisecond})
	e.run(t, sim.Second)
	if a.State() != ThreadExited || b.State() != ThreadExited {
		t.Fatal("threads did not finish")
	}
	// Round-robin: both finish near 100ms, not one at 50ms and one at 100.
	ea, eb := a.ExitAt, b.ExitAt
	if eb < ea {
		ea, eb = eb, ea
	}
	if eb-ea > 10*sim.Millisecond {
		t.Fatalf("finish times too far apart: %v vs %v (timeslicing broken)", ea, eb)
	}
	if eb < 99*sim.Millisecond {
		t.Fatalf("total = %v, want ~100ms", eb)
	}
}

func TestLoadBalancingSpreadsThreads(t *testing.T) {
	e := newEnv(t, 4, 4, nil, nil)
	ths := make([]*Thread, 4)
	for i := range ths {
		ths[i] = e.spawn("w", ActCompute{D: 200 * sim.Millisecond})
	}
	e.run(t, sim.Second)
	// With 4 vCPUs on 4 pCPUs, all should finish in ~200ms (parallel).
	for i, th := range ths {
		if th.State() != ThreadExited {
			t.Fatalf("thread %d did not finish", i)
		}
		if th.ExitAt > 230*sim.Millisecond {
			t.Fatalf("thread %d finished at %v; balancing failed to spread", i, th.ExitAt)
		}
	}
}

func TestSleepWakesOnTime(t *testing.T) {
	e := newEnv(t, 1, 1, nil, nil)
	th := e.spawn("s",
		ActCompute{D: sim.Millisecond},
		ActSleep{D: 200 * sim.Millisecond},
		ActCompute{D: sim.Millisecond},
	)
	e.run(t, sim.Second)
	if th.State() != ThreadExited {
		t.Fatalf("state = %v", th.State())
	}
	el := th.ExitAt - th.StartAt
	if el < 202*sim.Millisecond || el > 210*sim.Millisecond {
		t.Fatalf("elapsed = %v, want ~202ms", el)
	}
	if th.Sleeps != 1 || th.WakeUps != 1 {
		t.Fatalf("sleeps/wakeups = %d/%d", th.Sleeps, th.WakeUps)
	}
}

func TestMutexMutualExclusionAndHandoff(t *testing.T) {
	e := newEnv(t, 2, 2, nil, nil)
	m := e.k.NewMutex()
	mk := func() Program {
		return &loop{n: 20, body: func(int) []Action {
			return []Action{
				ActLock{M: m},
				ActCompute{D: 500 * sim.Microsecond},
				ActUnlock{M: m},
				ActCompute{D: 100 * sim.Microsecond},
			}
		}}
	}
	var done int
	for i := 0; i < 2; i++ {
		e.k.Spawn("locker", Uthread, mk(), func(*Thread) { done++ })
	}
	e.run(t, sim.Second)
	if done != 2 {
		t.Fatalf("done = %d", done)
	}
	if m.Locked() {
		t.Fatal("mutex left locked")
	}
	if m.Acquisitions < 40 {
		t.Fatalf("acquisitions = %d, want >= 40", m.Acquisitions)
	}
	if m.Contended == 0 {
		t.Fatal("expected contention between the two lockers")
	}
}

func TestCondWaitSignal(t *testing.T) {
	e := newEnv(t, 2, 2, nil, nil)
	m := e.k.NewMutex()
	cv := e.k.NewCond()
	var waiterDone, signalerDone bool
	e.k.Spawn("waiter", Uthread, &seq{actions: []Action{
		ActLock{M: m},
		ActCondWait{C: cv, M: m},
		ActUnlock{M: m},
	}}, func(*Thread) { waiterDone = true })
	e.k.Spawn("signaler", Uthread, &seq{actions: []Action{
		ActCompute{D: 50 * sim.Millisecond},
		ActCondSignal{C: cv},
	}}, func(*Thread) { signalerDone = true })
	e.run(t, sim.Second)
	if !waiterDone || !signalerDone {
		t.Fatalf("waiter=%v signaler=%v", waiterDone, signalerDone)
	}
	if cv.Signals != 1 {
		t.Fatalf("signals = %d", cv.Signals)
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	e := newEnv(t, 2, 2, nil, nil)
	m := e.k.NewMutex()
	cv := e.k.NewCond()
	done := 0
	for i := 0; i < 5; i++ {
		e.k.Spawn("waiter", Uthread, &seq{actions: []Action{
			ActLock{M: m},
			ActCondWait{C: cv, M: m},
			ActUnlock{M: m},
		}}, func(*Thread) { done++ })
	}
	e.k.Spawn("caster", Uthread, &seq{actions: []Action{
		ActCompute{D: 20 * sim.Millisecond},
		ActCondBroadcast{C: cv},
	}}, func(*Thread) { done++ })
	e.run(t, sim.Second)
	if done != 6 {
		t.Fatalf("done = %d, want 6", done)
	}
}

func TestBarrierSpinFastPath(t *testing.T) {
	// Dedicated CPUs, heavy spin budget: barrier latency is tiny and no
	// futex sleeps happen.
	e := newEnv(t, 4, 4, nil, nil)
	b := e.k.NewBarrier(4, SpinBudgetFromCount(30_000_000_000))
	done := 0
	for i := 0; i < 4; i++ {
		e.k.Spawn("omp", Uthread, &loop{n: 50, body: func(int) []Action {
			return []Action{ActCompute{D: sim.Millisecond}, ActBarrierWait{B: b}}
		}}, func(*Thread) { done++ })
	}
	e.run(t, sim.Second)
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
	if b.Waits != 50 {
		t.Fatalf("barrier episodes = %d, want 50", b.Waits)
	}
	if e.k.FutexWaits != 0 {
		t.Fatalf("futex waits = %d, want 0 with huge spin budget on dedicated CPUs", e.k.FutexWaits)
	}
}

func TestBarrierPassivePolicyUsesFutex(t *testing.T) {
	e := newEnv(t, 4, 4, nil, nil)
	b := e.k.NewBarrier(4, 0) // OMP_WAIT_POLICY=PASSIVE
	done := 0
	for i := 0; i < 4; i++ {
		i := i
		e.k.Spawn("omp", Uthread, &loop{n: 20, body: func(int) []Action {
			// Skewed compute so waiters really sleep.
			return []Action{ActCompute{D: sim.Time(i+1) * sim.Millisecond}, ActBarrierWait{B: b}}
		}}, func(*Thread) { done++ })
	}
	e.run(t, 2*sim.Second)
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
	if b.Waits != 20 {
		t.Fatalf("episodes = %d", b.Waits)
	}
	if e.k.FutexWaits == 0 {
		t.Fatal("passive barrier should sleep via futex")
	}
	// Remote wakeups must have produced reschedule IPIs.
	var ipis uint64
	for i := 0; i < 4; i++ {
		ipis += e.k.CPUStatsOf(i).ReschedIPIs
	}
	if ipis == 0 {
		t.Fatal("no reschedule IPIs observed")
	}
}

func TestBarrierSpinBudgetFallsBack(t *testing.T) {
	// Small spin budget + skew larger than the budget → spinners fall
	// back to futex sleep, yet everything still completes.
	e := newEnv(t, 2, 2, nil, nil)
	b := e.k.NewBarrier(2, 100*sim.Microsecond)
	done := 0
	e.k.Spawn("fast", Uthread, &loop{n: 10, body: func(int) []Action {
		return []Action{ActCompute{D: 100 * sim.Microsecond}, ActBarrierWait{B: b}}
	}}, func(*Thread) { done++ })
	e.k.Spawn("slow", Uthread, &loop{n: 10, body: func(int) []Action {
		return []Action{ActCompute{D: 5 * sim.Millisecond}, ActBarrierWait{B: b}}
	}}, func(*Thread) { done++ })
	e.run(t, sim.Second)
	if done != 2 {
		t.Fatalf("done = %d", done)
	}
	if e.k.FutexWaits == 0 {
		t.Fatal("expected futex fallback after spin budget")
	}
	if e.k.CPUStatsOf(0).UserSpinTime+e.k.CPUStatsOf(1).UserSpinTime == 0 {
		t.Fatal("expected some user spin time")
	}
}

func TestSpinVarPipeline(t *testing.T) {
	// lu-style ad-hoc sync: consumer spins for each generation the
	// producer publishes.
	e := newEnv(t, 2, 2, nil, nil)
	sv := e.k.NewSpinVar()
	done := 0
	e.k.Spawn("producer", Uthread, &loop{n: 10, body: func(int) []Action {
		return []Action{ActCompute{D: sim.Millisecond}, ActSpinSet{S: sv}}
	}}, func(*Thread) { done++ })
	e.k.Spawn("consumer", Uthread, &loop{n: 10, body: func(i int) []Action {
		return []Action{ActSpinWait{S: sv, Gen: uint64(i + 1)}, ActCompute{D: 500 * sim.Microsecond}}
	}}, func(*Thread) { done++ })
	e.run(t, sim.Second)
	if done != 2 {
		t.Fatalf("done = %d", done)
	}
	if sv.Gen() != 10 {
		t.Fatalf("generation = %d", sv.Gen())
	}
}

func TestTimerInterruptRate(t *testing.T) {
	// Paper Table 2: a busy vCPU takes ~1000 timer interrupts/s; an idle
	// one takes none (dynamic ticks).
	e := newEnv(t, 2, 2, nil, nil)
	e.spawn("busy", ActCompute{D: 2 * sim.Second})
	e.run(t, sim.Second)
	s0, s1 := e.k.CPUStatsOf(0), e.k.CPUStatsOf(1)
	busyTicks := s0.TimerInterrupts + s1.TimerInterrupts
	if busyTicks < 950 || busyTicks > 1050 {
		t.Fatalf("busy vCPU ticks = %d, want ~1000", busyTicks)
	}
	// Exactly one CPU should be ticking.
	if s0.TimerInterrupts != 0 && s1.TimerInterrupts != 0 {
		t.Fatalf("both CPUs ticked (%d, %d); dynamic ticks broken", s0.TimerInterrupts, s1.TimerInterrupts)
	}
}

func TestDeviceInterruptWakesSleeper(t *testing.T) {
	e := newEnv(t, 1, 2, nil, nil)
	dev := e.k.NewDevice("net", 0, 5*sim.Microsecond)
	th := e.k.Spawn("io", Uthread, &seq{actions: []Action{
		ActIO{Dev: dev, Service: 10 * sim.Millisecond},
		ActCompute{D: sim.Millisecond},
	}}, nil)
	e.run(t, sim.Second)
	if th.State() != ThreadExited {
		t.Fatalf("state = %v", th.State())
	}
	if dev.Interrupts != 1 {
		t.Fatalf("device interrupts = %d", dev.Interrupts)
	}
	el := th.ExitAt - th.StartAt
	if el < 11*sim.Millisecond || el > 15*sim.Millisecond {
		t.Fatalf("elapsed = %v, want ~11ms", el)
	}
}

func TestFreezeMigratesThreadsAndQuiesces(t *testing.T) {
	// Paper Table 2 shape: after freezing a vCPU it receives no timer
	// interrupts and no IPIs, while the others keep running.
	e := newEnv(t, 4, 4, nil, nil)
	for i := 0; i < 8; i++ {
		e.k.Spawn("build", Uthread, &loop{n: 100000, body: func(int) []Action {
			return []Action{ActCompute{D: 5 * sim.Millisecond}, ActSleep{D: sim.Millisecond}}
		}}, nil)
	}
	e.pool.Start()
	e.k.Boot()
	if err := e.eng.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	before := e.k.CPUStatsOf(3)
	if before.TimerInterrupts < 500 {
		t.Fatalf("vCPU3 barely ran before freeze: %d ticks", before.TimerInterrupts)
	}
	if err := e.k.FreezeVCPU(3); err != nil {
		t.Fatal(err)
	}
	if err := e.eng.RunUntil(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	after := e.k.CPUStatsOf(3)
	// Allow the in-flight tick plus the freeze IPI itself.
	if after.TimerInterrupts-before.TimerInterrupts > 2 {
		t.Fatalf("frozen vCPU took %d ticks after freeze", after.TimerInterrupts-before.TimerInterrupts)
	}
	if after.ReschedIPIs-before.ReschedIPIs > 1 {
		t.Fatalf("frozen vCPU took %d IPIs after freeze", after.ReschedIPIs-before.ReschedIPIs)
	}
	if e.k.ActiveVCPUs() != 3 {
		t.Fatalf("active = %d", e.k.ActiveVCPUs())
	}
	// Threads still make progress on the remaining vCPUs.
	var ticks uint64
	for i := 0; i < 3; i++ {
		ticks += e.k.CPUStatsOf(i).TimerInterrupts
	}
	if ticks < 2500 {
		t.Fatalf("survivor ticks = %d; workload stalled after freeze", ticks)
	}
}

func TestUnfreezeRebalances(t *testing.T) {
	e := newEnv(t, 2, 2, nil, nil)
	for i := 0; i < 4; i++ {
		e.k.Spawn("w", Uthread, &loop{n: 1000000, body: func(int) []Action {
			return []Action{ActCompute{D: sim.Millisecond}}
		}}, nil)
	}
	e.pool.Start()
	e.k.Boot()
	if err := e.eng.RunUntil(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := e.k.FreezeVCPU(1); err != nil {
		t.Fatal(err)
	}
	if err := e.eng.RunUntil(200 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := e.k.cpus[1].load(); got != 0 {
		t.Fatalf("frozen CPU still has load %d", got)
	}
	if err := e.k.UnfreezeVCPU(1); err != nil {
		t.Fatal(err)
	}
	if err := e.eng.RunUntil(400 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := e.k.cpus[1].load(); got == 0 {
		t.Fatal("unfrozen CPU pulled no work")
	}
	if e.k.ActiveVCPUs() != 2 {
		t.Fatalf("active = %d", e.k.ActiveVCPUs())
	}
}

func TestFreezeErrors(t *testing.T) {
	e := newEnv(t, 1, 2, nil, nil)
	if err := e.k.FreezeVCPU(0); err == nil {
		t.Fatal("freezing vCPU0 must fail")
	}
	if err := e.k.FreezeVCPU(5); err == nil {
		t.Fatal("freezing out-of-range must fail")
	}
	if err := e.k.UnfreezeVCPU(1); err == nil {
		t.Fatal("unfreezing a non-frozen vCPU must fail")
	}
	if err := e.k.FreezeVCPU(1); err != nil {
		t.Fatal(err)
	}
	if err := e.k.FreezeVCPU(1); err == nil {
		t.Fatal("double freeze must fail")
	}
}

func TestDaemonScalesDownUnderContention(t *testing.T) {
	// A 4-vCPU VM sharing 2 pCPUs with a busy 4-vCPU competitor: the
	// daemon should shrink towards ~1-2 active vCPUs.
	eng := sim.NewEngine(3)
	xcfg := xen.DefaultConfig(2)
	xcfg.VScale = true
	pool := xen.NewPool(eng, xcfg)

	domA := pool.AddDomain("vm", 256, 4, nil)
	cfg := DefaultConfig()
	cfg.VScale.Enabled = true
	kA := NewKernel(domA, cfg)
	for i := 0; i < 4; i++ {
		kA.Spawn("w", Uthread, &loop{n: 1 << 30, body: func(int) []Action {
			return []Action{ActCompute{D: sim.Millisecond}}
		}}, nil)
	}

	domB := pool.AddDomain("bg", 256, 4, nil)
	kB := NewKernel(domB, DefaultConfig())
	for i := 0; i < 4; i++ {
		kB.Spawn("w", Uthread, &loop{n: 1 << 30, body: func(int) []Action {
			return []Action{ActCompute{D: sim.Millisecond}}
		}}, nil)
	}

	pool.Start()
	kA.Boot()
	kB.Boot()
	if err := eng.RunUntil(3 * sim.Second); err != nil {
		t.Fatal(err)
	}
	active := kA.ActiveVCPUs()
	if active > 2 {
		t.Fatalf("active vCPUs = %d, want <= 2 (fair share is 1 pCPU)", active)
	}
	reads, decisions := kA.DaemonStats()
	if reads < 250 {
		t.Fatalf("daemon reads = %d, want ~300", reads)
	}
	if decisions == 0 {
		t.Fatal("daemon made no scaling decisions")
	}
}

func TestDaemonScalesBackUpWhenAlone(t *testing.T) {
	// Same VM but the competitor goes idle after 1s: the daemon should
	// unfreeze back towards 4 (extendability grows with the slack).
	eng := sim.NewEngine(3)
	xcfg := xen.DefaultConfig(4)
	xcfg.VScale = true
	pool := xen.NewPool(eng, xcfg)

	domA := pool.AddDomain("vm", 256, 4, nil)
	cfg := DefaultConfig()
	cfg.VScale.Enabled = true
	kA := NewKernel(domA, cfg)
	for i := 0; i < 4; i++ {
		kA.Spawn("w", Uthread, &loop{n: 1 << 30, body: func(int) []Action {
			return []Action{ActCompute{D: sim.Millisecond}}
		}}, nil)
	}

	domB := pool.AddDomain("bg", 768, 4, nil)
	kB := NewKernel(domB, DefaultConfig())
	for i := 0; i < 4; i++ {
		kB.Spawn("w", Uthread, &seq{actions: []Action{ActCompute{D: sim.Second}}}, nil)
	}

	pool.Start()
	kA.Boot()
	kB.Boot()
	if err := eng.RunUntil(1500 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	midActive := kA.ActiveVCPUs()
	if err := eng.RunUntil(4 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if got := kA.ActiveVCPUs(); got != 4 {
		t.Fatalf("active = %d after competitor went idle (was %d mid-run), want 4", got, midActive)
	}
}

func TestPVSpinlockParksAndRecovers(t *testing.T) {
	// Force kernel-lock contention with pv-spinlocks enabled on an
	// oversubscribed pCPU; everything must still complete.
	e := newEnv(t, 1, 2, func(c *Config) {
		c.PVSpinlock = true
		c.PVSpinThreshold = 10 * sim.Microsecond
	}, nil)
	m := e.k.NewMutex()
	done := 0
	for i := 0; i < 4; i++ {
		e.k.Spawn("locker", Uthread, &loop{n: 200, body: func(int) []Action {
			return []Action{
				ActLock{M: m},
				ActCompute{D: 50 * sim.Microsecond},
				ActUnlock{M: m},
			}
		}}, func(*Thread) { done++ })
	}
	e.run(t, 10*sim.Second)
	if done != 4 {
		t.Fatalf("done = %d of 4", done)
	}
}

func TestActiveVCPUTrace(t *testing.T) {
	e := newEnv(t, 2, 4, nil, nil)
	e.k.StartTrace(10 * sim.Millisecond)
	e.spawn("w", ActCompute{D: 100 * sim.Millisecond})
	e.pool.Start()
	e.k.Boot()
	if err := e.eng.RunUntil(50 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := e.k.FreezeVCPU(3); err != nil {
		t.Fatal(err)
	}
	if err := e.eng.RunUntil(200 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	tr := e.k.Trace()
	if len(tr) < 15 {
		t.Fatalf("trace points = %d", len(tr))
	}
	if tr[0].Active != 4 {
		t.Fatalf("first sample = %d", tr[0].Active)
	}
	last := tr[len(tr)-1]
	if last.Active != 3 {
		t.Fatalf("last sample = %d, want 3", last.Active)
	}
	if avg := e.k.AverageActiveVCPUs(); avg <= 3 || avg >= 4 {
		t.Fatalf("average active = %f", avg)
	}
}

func TestGuestDeterminism(t *testing.T) {
	run := func() (sim.Time, uint64, uint64) {
		e := newEnv(t, 2, 4, func(c *Config) { c.VScale.Enabled = true }, func(x *xen.Config) { x.VScale = true })
		b := e.k.NewBarrier(4, SpinBudgetFromCount(300000))
		var last sim.Time
		done := 0
		for i := 0; i < 4; i++ {
			e.k.Spawn("omp", Uthread, &loop{n: 30, body: func(int) []Action {
				return []Action{ActCompute{D: 2 * sim.Millisecond}, ActBarrierWait{B: b}}
			}}, func(th *Thread) {
				done++
				if th.ExitAt > last {
					last = th.ExitAt
				}
			})
		}
		e.run(t, 5*sim.Second)
		if done != 4 {
			t.Fatal("not all finished")
		}
		var ipis uint64
		for i := 0; i < 4; i++ {
			ipis += e.k.CPUStatsOf(i).ReschedIPIs
		}
		return last, ipis, e.eng.Processed
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Fatalf("nondeterministic: (%v,%d,%d) vs (%v,%d,%d)", a1, b1, c1, a2, b2, c2)
	}
}

func TestPerCPUKthreadsInventory(t *testing.T) {
	e := newEnv(t, 1, 2, nil, nil)
	e.k.SpawnPerCPUKthreads()
	per := 0
	for _, th := range e.k.Threads() {
		if th.Kind == KthreadPerCPU {
			per++
			if th.Kind.Migratable() {
				t.Fatal("per-CPU kthread reported migratable")
			}
		}
	}
	if per != 6 {
		t.Fatalf("per-CPU kthreads = %d, want 3 per vCPU", per)
	}
}

func TestWaitingTimeVisibleUnderContention(t *testing.T) {
	// Sanity for Figure 9's metric: an oversubscribed VM accumulates
	// hypervisor waiting time; a dedicated one does not.
	mk := func(pcpus int) sim.Time {
		eng := sim.NewEngine(5)
		pool := xen.NewPool(eng, xen.DefaultConfig(pcpus))
		dom := pool.AddDomain("vm", 256, 2, nil)
		k := NewKernel(dom, DefaultConfig())
		for i := 0; i < 2; i++ {
			k.Spawn("w", Uthread, &loop{n: 1 << 30, body: func(int) []Action {
				return []Action{ActCompute{D: sim.Millisecond}}
			}}, nil)
		}
		dom2 := pool.AddDomain("bg", 256, 2, nil)
		k2 := NewKernel(dom2, DefaultConfig())
		for i := 0; i < 2; i++ {
			k2.Spawn("w", Uthread, &loop{n: 1 << 30, body: func(int) []Action {
				return []Action{ActCompute{D: sim.Millisecond}}
			}}, nil)
		}
		pool.Start()
		k.Boot()
		k2.Boot()
		if err := eng.RunUntil(2 * sim.Second); err != nil {
			t.Fatal(err)
		}
		return dom.TotalWaitTime
	}
	contended := mk(2)
	dedicated := mk(4)
	if contended < 100*sim.Millisecond {
		t.Fatalf("contended wait = %v, expected substantial", contended)
	}
	if dedicated > contended/10 {
		t.Fatalf("dedicated wait = %v vs contended %v", dedicated, contended)
	}
	if math.IsNaN(float64(contended)) {
		t.Fatal("impossible")
	}
}
