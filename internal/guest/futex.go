package guest

import (
	"vscale/internal/costmodel"
	"vscale/internal/sim"
)

// KernelLock is a kernel ticket spinlock (e.g. a futex hash-bucket
// lock). Contended acquisition busy-waits on the CPU; if the holder's
// vCPU is preempted by the hypervisor mid-critical-section, every waiter
// burns its slice — the Lock-Holder Preemption problem. With
// Config.PVSpinlock, a waiter that spins past the threshold parks its
// vCPU in the hypervisor and is kicked on release (paravirtual ticket
// spinlocks, Friebel & Biemueller).
type KernelLock struct {
	k    *Kernel
	Name string

	holder    *cpu
	heldSince sim.Time
	waiters   []*cpu // FIFO ticket order

	// Stats.
	Acquisitions uint64
	Contended    uint64
	PVParks      uint64
}

// NewKernelLock creates an unheld lock.
func NewKernelLock(k *Kernel, name string) *KernelLock {
	return &KernelLock{k: k, Name: name}
}

// Held reports whether the lock is currently held.
func (l *KernelLock) Held() bool { return l.holder != nil }

// bucketFor hashes a synchronisation object id to a kernel lock.
func (k *Kernel) bucketFor(id uint64) *KernelLock {
	return k.buckets[(id*0x9e3779b97f4a7c15>>32)%uint64(len(k.buckets))]
}

// acquireKernelLock is called from an action phase machine: it either
// takes the lock immediately (and the caller proceeds to its critical
// section) or puts the CPU into kernel-spin state. It returns true when
// the lock was acquired synchronously.
func (k *Kernel) acquireKernelLock(c *cpu, l *KernelLock) bool {
	if l.holder == nil {
		l.holder = c
		l.heldSince = k.eng.Now()
		c.locksHeld++
		l.Acquisitions++
		return true
	}
	// Contended: the CPU spins (non-preemptible kernel context).
	l.Contended++
	l.waiters = append(l.waiters, c)
	c.kspin = l
	c.kspinSpun = 0
	t := c.current
	t.segKind = segKernelSpin
	if k.cfg.PVSpinlock {
		t.segRemaining = k.cfg.PVSpinThreshold
	} else {
		// Effectively unbounded; the grant truncates it.
		t.segRemaining = sim.Time(1) << 50
	}
	k.startSegment(c)
	return false
}

// kernelSpinExpired fires when a kernel-spin segment ran its full
// length. With pv-spinlocks that means the threshold was exhausted: the
// vCPU parks itself in the hypervisor until kicked. Without them the
// spin simply continues (fresh segment).
func (k *Kernel) kernelSpinExpired(c *cpu, t *Thread) {
	if c.kspin == nil {
		// The grant raced with the expiry; proceed with the stashed
		// continuation.
		k.runCont(c, t)
		return
	}
	if k.cfg.PVSpinlock {
		l := c.kspin
		l.PVParks++
		c.pvParked = true
		k.softirq("guest/pv-park", func() {
			if c.pvParked {
				k.pool.Block(c.vcpu)
			}
		})
		return
	}
	t.segKind = segKernelSpin
	t.segRemaining = sim.Time(1) << 50
	k.startSegment(c)
}

// releaseKernelLock hands the lock to the next ticket holder, if any.
// Called by the holder at the end of its critical section.
func (k *Kernel) releaseKernelLock(c *cpu, l *KernelLock) {
	if l.holder != c {
		panic("guest: releasing a kernel lock not held by this CPU")
	}
	now := k.eng.Now()
	if tr := k.tracer(); tr != nil {
		tr.SpinHold(now, k.dom.ID(), c.id, now-l.heldSince, l.Name)
	}
	l.holder = nil
	c.locksHeld--
	if len(l.waiters) == 0 {
		return
	}
	next := l.waiters[0]
	l.waiters = l.waiters[1:]
	l.holder = next
	l.heldSince = now
	next.locksHeld++
	l.Acquisitions++
	k.grantKernelLock(next)
}

// grantKernelLock wakes up the waiter CPU: truncate its spin (if it is
// executing), mark it granted (if its vCPU is preempted), or kick its
// parked vCPU (pv path).
func (k *Kernel) grantKernelLock(c *cpu) {
	c.kspin = nil
	if c.pvParked {
		c.pvParked = false
		k.softirq("guest/pv-kick", func() { k.dom.KickVCPU(c.id) })
		// On dispatch, resume() sees kspinGranted and completes the
		// acquire immediately.
		c.current.kspinGranted = true
		return
	}
	if c.running && c.segEv.Pending() && c.current != nil && c.current.segKind == segKernelSpin {
		// Spinning right now: stop the spin and proceed.
		k.pauseSegment(c)
		c.current.segRemaining = 0
		c.current.segKind = segWork
		c.current.kspinGranted = true
		k.startSegment(c)
		return
	}
	// The waiter's vCPU is preempted while spinning; it proceeds when
	// the hypervisor runs it again.
	if c.current != nil {
		c.current.kspinGranted = true
	}
}

// futexQueue is one futex wait queue (keyed by synchronisation object).
type futexQueue struct {
	waiters []*Thread
}

func (k *Kernel) futexQ(key uint64) *futexQueue {
	q := k.futexes[key]
	if q == nil {
		q = &futexQueue{}
		k.futexes[key] = q
	}
	return q
}

// futexEnqueue adds the current thread to the wait queue and sleeps it.
// The caller must already hold (and have charged) the bucket lock.
func (k *Kernel) futexEnqueue(c *cpu, t *Thread, key uint64) {
	k.FutexWaits++
	k.tracer().FutexWait(k.eng.Now(), k.dom.ID(), c.id)
	q := k.futexQ(key)
	q.waiters = append(q.waiters, t)
	k.sleepCurrent(c, t)
}

// futexWakeAll wakes up to n waiters (n<0 means all), charging the waker
// per-wake cost, and returns how many were woken. Remote wakeups send
// reschedule IPIs through wakeThread.
func (k *Kernel) futexWakeAll(c *cpu, key uint64, n int) int {
	q := k.futexQ(key)
	woken := 0
	for len(q.waiters) > 0 && (n < 0 || woken < n) {
		t := q.waiters[0]
		q.waiters = q.waiters[1:]
		k.wakeThread(t, c.id)
		woken++
		k.FutexWakes++
	}
	if woken > 0 {
		k.tracer().FutexWake(k.eng.Now(), k.dom.ID(), c.id, woken)
	}
	return woken
}

// futexWaiterCount returns the number of sleepers on key.
func (k *Kernel) futexWaiterCount(key uint64) int {
	if q, ok := k.futexes[key]; ok {
		return len(q.waiters)
	}
	return 0
}

// removeFutexWaiter drops a specific thread from a wait queue (used by
// requeue-style operations); returns true if found.
func (k *Kernel) removeFutexWaiter(key uint64, t *Thread) bool {
	q := k.futexQ(key)
	for i, w := range q.waiters {
		if w == t {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// wakeCost is the waker-side CPU cost for n wakes.
func wakeCost(n int) sim.Time {
	return sim.Time(n) * costmodel.FutexWakeCost
}
