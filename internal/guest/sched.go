package guest

import (
	"vscale/internal/sim"
	"vscale/internal/xen"
)

// load returns the runnable load of CPU c (queued + running).
func (c *cpu) load() int {
	n := len(c.rq)
	if c.current != nil {
		n++
	}
	return n
}

// selectCPU implements select_task_rq: choose a runqueue for a waking or
// newly forked thread. Frozen CPUs are never eligible (vScale's
// find_idlest_cpu consults cpu_freeze_mask). prefer is the thread's
// previous CPU (-1 if none); it wins ties so cache affinity is kept.
func (k *Kernel) selectCPU(t *Thread, prefer int) int {
	if !t.Kind.Migratable() {
		return t.cpu // per-CPU kthreads stay put
	}
	best := -1
	bestLoad := 1 << 30
	if prefer >= 0 && !k.Frozen(prefer) {
		if k.cpus[prefer].load() == 0 {
			return prefer
		}
	}
	for i, c := range k.cpus {
		if k.Frozen(i) {
			continue
		}
		l := c.load()
		if l < bestLoad || (l == bestLoad && i == prefer) {
			best, bestLoad = i, l
		}
	}
	if best < 0 {
		// Everything frozen except vCPU0 should be impossible (vCPU0 is
		// never frozen), but fall back defensively.
		best = 0
	}
	return best
}

// enqueue places t on c's runqueue. When kick is true and the CPU's vCPU
// sleeps in the hypervisor, it is kicked through the IPI port so it
// starts running (fork/wake path).
func (k *Kernel) enqueue(c *cpu, t *Thread, kick bool) {
	t.state = ThreadRunnable
	t.cpu = c.id
	c.rq = append(c.rq, t)
	if !kick {
		return
	}
	if c.running {
		// Already on a pCPU: if it is idling (pre-block window), run the
		// new work now; otherwise the queue is noticed at the next
		// reschedule point.
		if c.current == nil && !c.segEv.Pending() {
			k.resume(c)
		}
		return
	}
	// Remote or sleeping CPU: reschedule IPI (Linux ttwu_queue). The
	// hypervisor decides the delivery latency: immediate if the vCPU
	// runs, on next dispatch if queued, a wakeup if blocked.
	k.softirq("guest/kick", func() { k.dom.KickVCPU(c.id) })
}

// wakeThread transitions a sleeping thread to runnable and enqueues it
// (wakeup balance). from is the CPU doing the wake (-1 for external
// sources such as timers firing on the thread's own CPU).
func (k *Kernel) wakeThread(t *Thread, from int) {
	if t.state != ThreadSleeping {
		return
	}
	t.WakeUps++
	target := k.selectCPU(t, t.cpu)
	c := k.cpus[target]
	t.state = ThreadRunnable
	t.cpu = target
	t.wakePreempt = true
	c.rq = append(c.rq, t)
	if target == from {
		// Local wakeup: runs now if the CPU idles, or preempts the
		// current thread past the wakeup granularity.
		if c.running && c.current == nil {
			k.resume(c)
		} else {
			k.maybePreempt(c)
		}
		return
	}
	// Remote wakeup: reschedule IPI to the target vCPU; the IPI handler
	// performs the preemption check on delivery.
	k.softirq("guest/resched-ipi", func() { k.dom.SendIPI(from, c.id) })
}

// idlePull implements idle balancing: an idling CPU pulls one runnable
// thread from the busiest eligible peer. Frozen CPUs do not pull
// (Algorithm 2 step (b)); nothing is pulled from a frozen CPU either
// because its queue drains at freeze time.
func (k *Kernel) idlePull(c *cpu) {
	if k.Frozen(c.id) {
		return
	}
	var busiest *cpu
	for _, p := range k.cpus {
		if p == c || k.Frozen(p.id) {
			continue
		}
		if len(p.rq) == 0 {
			continue
		}
		if busiest == nil || p.load() > busiest.load() {
			busiest = p
		}
	}
	if busiest == nil {
		return
	}
	t := k.stealFrom(busiest)
	if t == nil {
		return
	}
	t.cpu = c.id
	t.Migrated++
	c.stats.ThreadMigrates++
	c.rq = append(c.rq, t)
}

// stealFrom removes the first migratable queued thread from p. Threads
// inside kernel critical sections stay put.
func (k *Kernel) stealFrom(p *cpu) *Thread {
	for i, t := range p.rq {
		if t.Kind.Migratable() && !t.inKernelCritical() {
			p.rq = append(p.rq[:i], p.rq[i+1:]...)
			return t
		}
	}
	return nil
}

// periodicBalance levels queues: if some eligible CPU has more runnable
// threads than c, move one here. Pulling even on a difference of one
// (when the busiest CPU is doubled up) rotates the overloaded slot
// around the CPUs, which is how CFS gives N hog threads on M<N CPUs
// each ~M/N of a CPU instead of pinning the unlucky pair at half speed.
func (k *Kernel) periodicBalance(c *cpu) {
	if k.Frozen(c.id) {
		return
	}
	var busiest *cpu
	for _, p := range k.cpus {
		if p == c || k.Frozen(p.id) {
			continue
		}
		if busiest == nil || p.load() > busiest.load() {
			busiest = p
		}
	}
	if busiest == nil || len(busiest.rq) == 0 {
		return
	}
	gap := busiest.load() - c.load()
	if gap < 2 && !(gap == 1 && busiest.load() >= 2) {
		return
	}
	t := k.stealFrom(busiest)
	if t == nil {
		return
	}
	t.cpu = c.id
	t.Migrated++
	c.stats.ThreadMigrates++
	c.rq = append(c.rq, t)
	if c.running && c.current == nil {
		k.resume(c)
	}
}

// Device is a virtual device (network/disk frontend) whose completions
// arrive as event-channel interrupts on the bound vCPU.
type Device struct {
	k    *Kernel
	Name string
	port *xen.Port
	// HandlerCost is charged to the interrupted vCPU per interrupt.
	HandlerCost sim.Time
	// OnInterrupt runs in interrupt context after the cost is charged;
	// it typically wakes a waiting thread or feeds a server queue.
	OnInterrupt func(cpuID int)

	// queue of completions that fired; drained at delivery.
	completions []func(cpuID int)

	Interrupts uint64
}

// NewDevice allocates a device bound to vCPU bind.
func (k *Kernel) NewDevice(name string, bind int, handlerCost sim.Time) *Device {
	d := &Device{
		k:           k,
		Name:        name,
		port:        k.dom.AllocIRQ(name, bind),
		HandlerCost: handlerCost,
	}
	k.devices = append(k.devices, d)
	return d
}

// BoundCPU returns the vCPU the device's IRQ is currently bound to.
func (d *Device) BoundCPU() int { return d.port.Target() }

// Raise fires the device interrupt with an attached completion callback
// (run in guest interrupt context on the handling vCPU). Safe to call
// from outside the guest (backend models).
func (d *Device) Raise(completion func(cpuID int)) {
	if completion != nil {
		d.completions = append(d.completions, completion)
	}
	d.k.pool.Notify(d.port)
}

// deliver runs on interrupt delivery: drain completions then the static
// handler.
func (d *Device) deliver(c *cpu) {
	d.Interrupts++
	for len(d.completions) > 0 {
		fn := d.completions[0]
		d.completions = d.completions[1:]
		fn(c.id)
	}
	if d.OnInterrupt != nil {
		d.OnInterrupt(c.id)
	}
}

// ioAdvance executes ActIO: submit, sleep until the completion interrupt
// wakes the thread, then finish.
func (k *Kernel) ioAdvance(c *cpu, t *Thread, a ActIO) {
	switch t.phase {
	case 0:
		t.phase = 1
		dev := a.Dev
		tt := t
		// The device completes after its service time and interrupts the
		// bound vCPU; the handler wakes the sleeping thread.
		k.eng.After(a.Service, "guest/io-complete", func() {
			dev.Raise(func(cpuID int) { k.wakeThread(tt, cpuID) })
		})
		k.sleepCurrent(c, t)
	default:
		k.complete(c, t)
	}
}
