// Package guest models the Linux 3.14 SMP guest of the vScale paper:
// per-vCPU runqueues with push/pull load balancing, user threads and
// kernel threads, timer ticks with dynamic-tick idle, reschedule IPIs,
// futexes guarded by kernel ticket spinlocks (optionally paravirtual),
// OpenMP-style barriers with configurable spin counts, and the vScale
// guest components: the cpu_freeze_mask balancer (Algorithm 2) and the
// user-space daemon that polls the vScale channel and resizes the VM.
//
// A Kernel implements xen.GuestOS and drives workload Programs (state
// machines of compute/synchronisation/I/O actions) on top of the
// hypervisor's vCPU scheduling.
package guest

import (
	"fmt"

	"vscale/internal/costmodel"
	"vscale/internal/sim"
	"vscale/internal/trace"
	"vscale/internal/xen"
)

// Config parameterises a guest kernel.
type Config struct {
	// Tick is the timer interrupt period (1000 Hz Linux default: 1 ms).
	Tick sim.Time
	// TickCost is the CPU charged per timer interrupt.
	TickCost sim.Time
	// Timeslice is the round-robin slice between runnable threads on one
	// CPU (stands in for CFS's sched_latency share).
	Timeslice sim.Time
	// BalanceInterval is the periodic load-balance cadence, in ticks.
	BalanceTicks int

	// PVSpinlock enables paravirtual ticket spinlocks: kernel lock
	// waiters spin up to PVSpinThreshold of CPU time, then block the
	// vCPU until kicked by the releasing CPU.
	PVSpinlock      bool
	PVSpinThreshold sim.Time

	// KernelLockHold is the critical-section length of kernel bucket
	// locks taken around futex operations.
	KernelLockHold sim.Time

	// VScale enables the guest-side vScale components (daemon+balancer).
	VScale VScaleConfig

	// Seed drives the kernel's private PRNG (migration costs, jitter).
	Seed uint64
}

// VScaleConfig controls the guest vScale daemon.
type VScaleConfig struct {
	// Enabled turns the daemon on.
	Enabled bool
	// Period is how often the daemon polls the vScale channel (paper
	// default: 10 ms, matching the hypervisor recalculation period).
	Period sim.Time
	// DownHysteresis is how many consecutive lower readings are needed
	// before freezing vCPUs (see core.Governor).
	DownHysteresis int
	// MinVCPUs bounds scaling down (>= 1).
	MinVCPUs int

	// CeilMargin is subtracted from the extendability (in pCPUs) before
	// the ceiling when sizing the VM (see core.OptimalWithMargin). Zero
	// with UsePureCeil reproduces Algorithm 1's pure ceiling.
	CeilMargin float64
	// UsePureCeil disables the default margin (paper-faithful ceiling;
	// ablation A5).
	UsePureCeil bool

	// WeightOnly sizes the VM from its weight-based fair share alone,
	// ignoring consumption — the VCPU-Bal policy the paper criticises
	// for not being work-conserving (ablation A1).
	WeightOnly bool
	// ReconfigDelay, when non-nil, makes every freeze/unfreeze take
	// effect only after the sampled latency — modelling the dom0-driven
	// CPU-hotplug reconfiguration path instead of the vScale balancer
	// (ablation A2). Operations never overlap: a new decision is skipped
	// while one is in flight.
	ReconfigDelay func(r *sim.Rand) sim.Time
}

// DefaultConfig returns the Linux-like defaults used in the experiments.
func DefaultConfig() Config {
	return Config{
		Tick:            sim.Millisecond,
		TickCost:        2 * sim.Microsecond,
		Timeslice:       6 * sim.Millisecond,
		BalanceTicks:    20,
		PVSpinThreshold: 30 * sim.Microsecond,
		KernelLockHold:  4 * sim.Microsecond,
		VScale: VScaleConfig{
			Period:         10 * sim.Millisecond,
			DownHysteresis: 3,
			MinVCPUs:       1,
			CeilMargin:     0.55,
		},
		Seed: 1,
	}
}

// CPUStats aggregates per-vCPU guest counters.
type CPUStats struct {
	TimerInterrupts uint64
	ReschedIPIs     uint64
	DeviceIRQs      uint64
	ContextSwitches uint64
	ThreadMigrates  uint64
	UserSpinTime    sim.Time
	KernelSpinTime  sim.Time
}

// cpu is the guest view of one vCPU.
type cpu struct {
	k  *Kernel
	id int

	vcpu *xen.VCPU

	rq      []*Thread // runnable threads, current excluded
	current *Thread

	running bool // vCPU currently holds a pCPU

	// Segment execution state for the current thread.
	segEv    sim.EventRef
	segStart sim.Time

	tick      *sim.Timer
	tickCount int

	// timers is the per-CPU software timer list (earliest first),
	// backed by the vCPU's one-shot hardware timer.
	timers []timerEntry

	// timesliceLeft is the current thread's remaining round-robin slice.
	timesliceLeft sim.Time
	// pickedAt is when the current thread was last picked (wakeup
	// preemption granularity).
	pickedAt sim.Time

	// kspin, when non-nil, means this CPU is busy-waiting on a kernel
	// lock (no thread rotation happens in that state).
	kspin *KernelLock
	// pvParked means the vCPU blocked itself after exhausting the
	// pv-spinlock spin threshold and waits for a kick.
	pvParked bool
	// kspinStart is when the current kernel-spin segment began
	// (for the pv threshold and spin-time accounting).
	kspinSpun sim.Time

	idleBlock sim.EventRef

	// needResched marks a pending deferred wakeup-preemption check.
	needResched bool

	// locksHeld counts kernel locks currently held by this CPU; being
	// descheduled with locksHeld > 0 is a lock-holder preemption.
	locksHeld int
	// lhpSince/lhpActive track an in-flight LHP incident for tracing.
	lhpSince  sim.Time
	lhpActive bool

	stats CPUStats
}

type timerEntry struct {
	at sim.Time
	fn func()
}

// Kernel is the guest OS of one domain.
type Kernel struct {
	eng  *sim.Engine
	dom  *xen.Domain
	pool *xen.Pool
	cfg  Config
	rand *sim.Rand

	cpus []*cpu

	// freezeMask is vScale's cpu_freeze_mask: bit i set means vCPU i is
	// frozen and must be avoided by all balancing paths.
	freezeMask uint64

	futexes map[uint64]*futexQueue
	buckets []*KernelLock

	threads   []*Thread
	nextTID   int
	booted    bool
	daemon    *daemon
	devices   []*Device
	activeTW  metricTW
	trace     []TracePoint
	traceEV   *sim.Ticker
	onIdleAll func() // test hook: all CPUs idle

	// syncIDs hands out unique ids for synchronisation objects.
	syncIDs uint64

	// Stats.
	FreezeOps, UnfreezeOps uint64
	FutexWaits, FutexWakes uint64
}

// metricTW is a tiny local alias to avoid importing metrics here for one
// field; it tracks the time-weighted active-vCPU count.
type metricTW struct {
	last    sim.Time
	value   float64
	weight  float64
	started bool
	start   sim.Time
}

func (tw *metricTW) set(now sim.Time, v float64) {
	if !tw.started {
		tw.started, tw.start = true, now
	} else {
		tw.weight += tw.value * float64(now-tw.last)
	}
	tw.last, tw.value = now, v
}

func (tw *metricTW) average(now sim.Time) float64 {
	if !tw.started || now <= tw.start {
		return tw.value
	}
	return (tw.weight + tw.value*float64(now-tw.last)) / float64(now-tw.start)
}

// TracePoint is one sample of the active-vCPU trace (paper Figure 8).
type TracePoint struct {
	At     sim.Time
	Active int
}

// NewKernel builds a guest kernel for dom and attaches it as the
// domain's guest OS.
func NewKernel(dom *xen.Domain, cfg Config) *Kernel {
	if cfg.Tick <= 0 || cfg.Timeslice <= 0 {
		panic("guest: Tick and Timeslice must be positive")
	}
	k := &Kernel{
		eng:     dom.Pool().Engine(),
		dom:     dom,
		pool:    dom.Pool(),
		cfg:     cfg,
		rand:    sim.NewRand(cfg.Seed ^ uint64(dom.ID())<<32),
		futexes: make(map[uint64]*futexQueue),
	}
	for i := 0; i < 64; i++ {
		k.buckets = append(k.buckets, NewKernelLock(k, fmt.Sprintf("futex-bucket-%d", i)))
	}
	for i := 0; i < dom.VCPUCount(); i++ {
		c := &cpu{k: k, id: i, vcpu: dom.VCPU(i), timesliceLeft: cfg.Timeslice}
		cc := c
		c.tick = sim.NewTimer(k.eng, fmt.Sprintf("guest/%s/tick%d", dom.Name, i), func() { k.tickFire(cc) })
		k.cpus = append(k.cpus, c)
	}
	if cfg.VScale.Enabled {
		k.daemon = newDaemon(k)
	}
	dom.AttachGuest(k)
	k.activeTW.set(k.eng.Now(), float64(dom.VCPUCount()))
	return k
}

// Engine returns the simulation engine.
func (k *Kernel) Engine() *sim.Engine { return k.eng }

// tracer returns the pool's event tracer (nil when tracing is off; all
// trace.Tracer methods are nil-safe).
func (k *Kernel) tracer() *trace.Tracer { return k.pool.Tracer() }

// Domain returns the hosting domain.
func (k *Kernel) Domain() *xen.Domain { return k.dom }

// Config returns the kernel configuration.
func (k *Kernel) Config() Config { return k.cfg }

// NCPUs returns the configured vCPU count.
func (k *Kernel) NCPUs() int { return len(k.cpus) }

// Frozen reports whether vCPU id is frozen.
func (k *Kernel) Frozen(id int) bool { return k.freezeMask&(1<<uint(id)) != 0 }

// ActiveVCPUs returns the number of unfrozen vCPUs.
func (k *Kernel) ActiveVCPUs() int {
	n := 0
	for i := range k.cpus {
		if !k.Frozen(i) {
			n++
		}
	}
	return n
}

// CPUStatsOf returns a copy of the guest counters of vCPU id.
func (k *Kernel) CPUStatsOf(id int) CPUStats { return k.cpus[id].stats }

// AverageActiveVCPUs returns the time-weighted mean active-vCPU count.
func (k *Kernel) AverageActiveVCPUs() float64 { return k.activeTW.average(k.eng.Now()) }

// ActiveVCPUSeconds returns the integral of the active (unfrozen)
// vCPU count over the kernel's lifetime so far, in seconds — the
// provisioned-capacity cost the VM has accrued.
func (k *Kernel) ActiveVCPUSeconds() float64 {
	tw := k.activeTW
	now := k.eng.Now()
	return (tw.weight + tw.value*float64(now-tw.last)) / float64(sim.Second)
}

// Trace returns the recorded active-vCPU trace (enable with StartTrace).
func (k *Kernel) Trace() []TracePoint { return k.trace }

// StartTrace samples the active-vCPU count every interval.
func (k *Kernel) StartTrace(interval sim.Time) {
	k.traceEV = sim.NewTicker(k.eng, "guest/trace", interval, func() {
		k.trace = append(k.trace, TracePoint{At: k.eng.Now(), Active: k.ActiveVCPUs()})
	})
	k.traceEV.Start()
}

// Boot starts the guest: it kicks vCPU0 so spawned threads begin to run.
// Spawn may be called before or after Boot.
func (k *Kernel) Boot() {
	if k.booted {
		return
	}
	k.booted = true
	if k.daemon != nil {
		k.daemon.start()
	}
	k.dom.KickVCPU(0)
}

// ---------------------------------------------------------------------
// xen.GuestOS implementation
// ---------------------------------------------------------------------

// Dispatched implements xen.GuestOS: the vCPU starts running.
func (k *Kernel) Dispatched(id int) {
	c := k.cpus[id]
	c.running = true
	if c.lhpActive {
		// The vCPU was preempted while holding a kernel lock and only
		// now gets the pCPU back: close the lock-holder-preemption span.
		c.lhpActive = false
		k.tracer().LHP(k.eng.Now(), k.dom.ID(), c.id, k.eng.Now()-c.lhpSince)
	}
	c.tick.Reset(k.cfg.Tick)
	k.resume(c)
}

// Descheduled implements xen.GuestOS: the vCPU lost its pCPU.
func (k *Kernel) Descheduled(id int) {
	c := k.cpus[id]
	if !c.running {
		return
	}
	c.running = false
	if tr := k.tracer(); tr != nil && c.locksHeld > 0 {
		// Lock-holder preemption begins: waiters will spin until this
		// vCPU runs again.
		c.lhpActive = true
		c.lhpSince = k.eng.Now()
	}
	c.tick.Stop()
	k.pauseSegment(c)
	if c.idleBlock.Pending() {
		k.eng.Cancel(c.idleBlock)
		c.idleBlock = sim.EventRef{}
	}
}

// DeliverEvent implements xen.GuestOS: an event-channel upcall arrived
// while the vCPU is running.
func (k *Kernel) DeliverEvent(id int, port *xen.Port) {
	c := k.cpus[id]
	switch port.Kind {
	case xen.PortVIRQTimer:
		k.chargeInterrupt(c, k.cfg.TickCost)
		k.processTimers(c)
	case xen.PortIPI:
		c.stats.ReschedIPIs++
		k.chargeInterrupt(c, costmodel.IPIDeliver)
		// A reschedule IPI makes the CPU re-examine its runqueue: it may
		// have been idle, remote wakeups may have queued work, or a
		// woken thread may deserve to preempt the running one.
		k.resume(c)
		k.maybePreempt(c)
	case xen.PortIRQ:
		c.stats.DeviceIRQs++
		if dev := k.deviceForPort(port); dev != nil {
			k.chargeInterrupt(c, dev.HandlerCost)
			dev.deliver(c)
		}
	}
}

// ---------------------------------------------------------------------
// Segment execution: each runnable thread executes "segments" of CPU
// time (work, user spinning or kernel lock spinning). Interrupt costs
// stretch the running segment; hypervisor preemption pauses it.
// ---------------------------------------------------------------------

// startSegment begins executing the current thread's remaining segment.
func (k *Kernel) startSegment(c *cpu) {
	t := c.current
	if t == nil || !c.running {
		return
	}
	if c.segEv.Pending() {
		panic("guest: segment already armed")
	}
	c.segStart = k.eng.Now()
	d := t.segRemaining
	if d < 0 {
		d = 0
	}
	c.segEv = k.eng.After(d, "guest/seg", func() {
		c.segEv = sim.EventRef{}
		t.segRemaining = 0
		k.segmentDone(c)
	})
}

// pauseSegment stops the clock on the current segment, crediting elapsed
// execution to the thread.
func (k *Kernel) pauseSegment(c *cpu) {
	if !c.segEv.Pending() {
		return
	}
	k.eng.Cancel(c.segEv)
	c.segEv = sim.EventRef{}
	t := c.current
	elapsed := k.eng.Now() - c.segStart
	if t != nil {
		t.segRemaining -= elapsed
		if t.segRemaining < 0 {
			t.segRemaining = 0
		}
		k.accountSpin(c, t, elapsed)
	}
}

// accountSpin attributes elapsed segment time to spin-time counters.
func (k *Kernel) accountSpin(c *cpu, t *Thread, elapsed sim.Time) {
	switch t.segKind {
	case segUserSpin:
		c.stats.UserSpinTime += elapsed
	case segKernelSpin:
		c.stats.KernelSpinTime += elapsed
		c.kspinSpun += elapsed
	}
}

// chargeInterrupt charges interrupt-handler time to the CPU by
// stretching the in-flight segment (the interrupted thread resumes
// later). On an idle CPU it is free (the idle task absorbs it).
func (k *Kernel) chargeInterrupt(c *cpu, cost sim.Time) {
	if cost <= 0 || !c.running || !c.segEv.Pending() {
		return
	}
	// Account elapsed so far, then restart the segment with the cost
	// prepended.
	k.pauseSegment(c)
	c.current.segRemaining += cost
	k.startSegment(c)
}

// segmentDone fires when the current thread finished its segment: run a
// stashed kernel continuation if one is pending, otherwise advance the
// action state machine (possibly blocking the thread or ending the
// program).
func (k *Kernel) segmentDone(c *cpu) {
	t := c.current
	if t == nil {
		panic("guest: segment completed with no current thread")
	}
	kind := t.segKind
	elapsed := k.eng.Now() - c.segStart
	t.segKind = segWork
	switch kind {
	case segUserSpin:
		c.stats.UserSpinTime += elapsed
	case segKernelSpin:
		c.stats.KernelSpinTime += elapsed
		c.kspinSpun += elapsed
	}
	if t.kspinGranted {
		// A contended kernel-lock acquire finally succeeded.
		t.kspinGranted = false
		if tr := k.tracer(); tr != nil && c.kspinSpun > 0 {
			tr.SpinWait(k.eng.Now(), k.dom.ID(), c.id, c.kspinSpun, "kernel-lock")
		}
		k.runCont(c, t)
		return
	}
	switch kind {
	case segUserSpin:
		// Either the condition was satisfied (spin truncated) or the
		// budget expired; the action phase machines distinguish the two.
		k.advance(c, t)
	case segKernelSpin:
		k.kernelSpinExpired(c, t)
	default:
		k.runCont(c, t)
	}
}

// runCont executes the thread's stashed kernel continuation if present,
// otherwise advances the action state machine.
func (k *Kernel) runCont(c *cpu, t *Thread) {
	if t.kcont != nil {
		fn := t.kcont
		t.kcont = nil
		fn()
		// The continuation may have slept the thread or armed a new
		// segment. If the thread is still current with nothing armed,
		// arm whatever segment it set up (possibly zero-length).
		if c.current == t && c.running && !c.segEv.Pending() && t.state == ThreadRunning {
			k.startSegment(c)
		}
		return
	}
	k.advance(c, t)
}

// resume ensures the CPU is executing something: drain if frozen,
// restart a paused segment, pick the next thread, pull work, or go idle.
func (k *Kernel) resume(c *cpu) {
	if !c.running {
		return
	}
	if c.pvParked {
		// Spurious wakeup while pv-parked on a kernel lock (a freeze
		// IPI, timer, or device event woke the vCPU): the lock has NOT
		// been granted, so after the event is handled the vCPU re-parks
		// — exactly the re-check-and-poll loop of paravirtual ticket
		// spinlocks.
		k.softirq("guest/pv-repark", func() {
			if c.pvParked && c.running {
				k.pool.Block(c.vcpu)
			}
		})
		return
	}
	if k.Frozen(c.id) && c.kspin == nil && !c.pvParked {
		// Frozen CPU: evacuate everything (Algorithm 2, target side).
		// Postponed while spinning on a kernel lock; the next dispatch
		// retries. The reschedule IPI lands here via DeliverEvent.
		if c.segEv.Pending() {
			k.pauseSegment(c)
		}
		if k.drainFrozen(c) {
			return
		}
	}
	if c.segEv.Pending() {
		return // already executing
	}
	if c.current != nil {
		k.maybeShortcutSpin(c.current)
		k.startSegment(c)
		return
	}
	k.pickNext(c)
}

// maybeShortcutSpin collapses a spin segment whose condition was
// satisfied while the thread was off-CPU: it completes after one more
// spin check instead of the full budget.
func (k *Kernel) maybeShortcutSpin(t *Thread) {
	if t.spin != nil && t.spin.satisfied {
		t.segRemaining = costmodel.SpinCheck
	}
	if t.kspinGranted {
		t.segRemaining = 0
	}
}

// pickNext selects the next runnable thread on c, pulling from peers if
// the local queue is empty, and idling otherwise.
func (k *Kernel) pickNext(c *cpu) {
	if c.current == nil && len(c.rq) == 0 {
		k.idlePull(c)
	}
	if len(c.rq) == 0 {
		k.goIdle(c)
		return
	}
	t := c.rq[0]
	c.rq = c.rq[1:]
	c.current = t
	t.state = ThreadRunning
	t.wakePreempt = false
	c.timesliceLeft = k.idealSlice(c)
	c.pickedAt = k.eng.Now()
	c.stats.ContextSwitches++
	t.segRemaining += costmodel.ContextSwitch
	k.maybeShortcutSpin(t)
	k.startSegment(c)
}

// idealSlice is the CFS-style timeslice: the latency target divided by
// the number of runnable threads on this CPU, floored at one tick. With
// packed threads this keeps spin waste per barrier episode to a couple
// of milliseconds instead of a full fixed slice.
func (k *Kernel) idealSlice(c *cpu) sim.Time {
	n := c.load()
	if n < 1 {
		n = 1
	}
	s := k.cfg.Timeslice / sim.Time(n)
	if s < k.cfg.Tick {
		s = k.cfg.Tick
	}
	return s
}

// maybePreempt implements CFS wakeup preemption: a freshly woken thread
// (which slept and therefore lags in virtual runtime) preempts the
// current thread once the latter has run at least the wakeup
// granularity (one tick). Without this, a woken thread waits out the
// current thread's slice — milliseconds per wakeup — which poisons
// sleep-based synchronisation whenever threads share a vCPU.
//
// Like the kernel's need_resched, the switch is deferred to a safe
// point (a zero-delay event) so a wake issued from the middle of the
// current thread's own action processing never context-switches the CPU
// under the caller's feet.
func (k *Kernel) maybePreempt(c *cpu) {
	if c.needResched {
		return
	}
	c.needResched = true
	k.eng.After(0, "guest/need-resched", func() {
		c.needResched = false
		k.preemptNow(c)
	})
}

// preemptNow performs the deferred wakeup-preemption check.
func (k *Kernel) preemptNow(c *cpu) {
	if !c.running || c.kspin != nil || c.pvParked {
		return
	}
	cur := c.current
	if cur == nil {
		k.resume(c)
		return
	}
	if cur.inKernelCritical() || cur.segKind == segKernelSpin {
		return
	}
	if !c.segEv.Pending() {
		// Mid-transition (the current thread is between segments inside
		// kernel machinery); leave it alone.
		return
	}
	if k.eng.Now()-c.pickedAt < k.cfg.Tick {
		return // wakeup granularity: don't thrash
	}
	// Find the first woken thread wanting to preempt and move it to the
	// queue head.
	idx := -1
	for i, t := range c.rq {
		if t.wakePreempt {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	w := c.rq[idx]
	c.rq = append(c.rq[:idx], c.rq[idx+1:]...)
	c.rq = append([]*Thread{w}, c.rq...)
	k.pauseSegment(c)
	cur.state = ThreadRunnable
	c.rq = append(c.rq, cur)
	c.current = nil
	k.pickNext(c)
}

// rotate puts the current thread at the back of the runqueue (timeslice
// expiry). Never called while kernel-spinning.
func (k *Kernel) rotate(c *cpu) {
	if c.current == nil || len(c.rq) == 0 {
		c.timesliceLeft = k.idealSlice(c)
		return
	}
	k.pauseSegment(c)
	t := c.current
	t.state = ThreadRunnable
	c.rq = append(c.rq, t)
	c.current = nil
	k.pickNext(c)
}

// goIdle transitions the CPU to idle: with dynamic ticks the timer stops
// and the vCPU blocks in the hypervisor (deferred one event so nested
// scheduler callbacks unwind first).
func (k *Kernel) goIdle(c *cpu) {
	c.tick.Stop()
	k.armHWTimer(c)
	if c.idleBlock.Pending() {
		return
	}
	c.idleBlock = k.eng.After(0, "guest/idle-block", func() {
		c.idleBlock = sim.EventRef{}
		if !c.running {
			return
		}
		if c.current != nil || len(c.rq) > 0 {
			// Work arrived in the meantime; run it instead of blocking.
			k.resume(c)
			return
		}
		if k.allIdle() && k.onIdleAll != nil {
			k.onIdleAll()
		}
		k.pool.Block(c.vcpu)
	})
}

func (k *Kernel) allIdle() bool {
	for _, c := range k.cpus {
		if c.current != nil || len(c.rq) > 0 {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------
// Timer ticks and software timers
// ---------------------------------------------------------------------

// tickFire is the 1000 Hz guest timer interrupt.
func (k *Kernel) tickFire(c *cpu) {
	if !c.running {
		return
	}
	c.stats.TimerInterrupts++
	c.tickCount++
	k.chargeInterrupt(c, k.cfg.TickCost)
	k.processTimers(c)

	// Round-robin between runnable threads unless the CPU is inside a
	// kernel spinlock or critical section (non-preemptible context).
	if c.kspin == nil && c.current != nil && !c.current.inKernelCritical() {
		c.timesliceLeft -= k.cfg.Tick
		if c.timesliceLeft <= 0 && len(c.rq) > 0 {
			k.rotate(c)
		}
	}

	// A frozen CPU whose drain was postponed (kernel critical section at
	// freeze time) retries here.
	if k.Frozen(c.id) && c.kspin == nil && !c.pvParked {
		k.resume(c)
	}

	if k.cfg.BalanceTicks > 0 && c.tickCount%k.cfg.BalanceTicks == 0 {
		k.periodicBalance(c)
	}
	// Dynamic ticks: keep ticking only while there is work; goIdle may
	// have stopped the timer during this handler.
	if c.running && (c.current != nil || len(c.rq) > 0) {
		c.tick.Reset(k.cfg.Tick)
	}
}

// addTimer registers a software timer on CPU c.
func (k *Kernel) addTimer(c *cpu, at sim.Time, fn func()) {
	i := 0
	for i < len(c.timers) && c.timers[i].at <= at {
		i++
	}
	c.timers = append(c.timers, timerEntry{})
	copy(c.timers[i+1:], c.timers[i:])
	c.timers[i] = timerEntry{at: at, fn: fn}
	k.armHWTimer(c)
}

// armHWTimer programs the vCPU one-shot timer to the earliest pending
// software timer (the dynamic-ticks wakeup path for idle vCPUs).
func (k *Kernel) armHWTimer(c *cpu) {
	if len(c.timers) == 0 {
		c.vcpu.StopTimer()
		return
	}
	at := c.timers[0].at
	if at < k.eng.Now() {
		at = k.eng.Now()
	}
	c.vcpu.SetTimer(at)
}

// processTimers runs expired software timers on c.
func (k *Kernel) processTimers(c *cpu) {
	now := k.eng.Now()
	for len(c.timers) > 0 && c.timers[0].at <= now {
		e := c.timers[0]
		c.timers = c.timers[1:]
		e.fn()
	}
	k.armHWTimer(c)
}

// deviceForPort maps an IRQ port back to its Device.
func (k *Kernel) deviceForPort(p *xen.Port) *Device {
	for _, d := range k.devices {
		if d.port == p {
			return d
		}
	}
	return nil
}

// softirq defers a hypervisor-visible side effect (IPI send, vCPU kick)
// to a zero-delay event so that nested hypervisor scheduling never
// re-enters guest state mid-update.
func (k *Kernel) softirq(label string, fn func()) {
	k.eng.After(0, label, fn)
}
