package guest

import (
	"fmt"

	"vscale/internal/core"
	"vscale/internal/sim"
)

// Checkpoint support for the guest kernel (docs/checkpoint.md). Like the
// hypervisor layer, a kernel can only be captured when quiesced: every
// vCPU idle and blocked, every thread sleeping on a wait queue (or
// exited), no kernel locks held, no in-flight continuations. In that
// shape all remaining guest state is plain data — counters, integrals,
// PRNG state, and the daemon's next poll deadline — and the thread
// graph of a freshly rebuilt kernel is structurally identical, so
// restore is field overwrite plus wait-queue reordering.

// GuestCPUCheckpoint is the semantic state of one (idle) guest CPU.
type GuestCPUCheckpoint struct {
	TickCount     int      `json:"tick_count"`
	TimesliceLeft sim.Time `json:"timeslice_left"`
	PickedAt      sim.Time `json:"picked_at"`
	KspinSpun     sim.Time `json:"kspin_spun"`
	Stats         CPUStats `json:"stats"`
}

// ThreadCheckpoint is the semantic state of one thread. The scheduler
// linkage (which queue, which phase) is structural: a quiesced worker is
// always sleeping in ActDequeue phase 1, so only the identity-invariant
// counters and the CPU affinity are recorded. Mailbox is deliberately
// not captured: a sleeping consumer's mailbox holds a stale item that is
// always overwritten before the next read.
type ThreadCheckpoint struct {
	State    int      `json:"state"` // ThreadSleeping or ThreadExited
	CPU      int      `json:"cpu"`
	CPUTime  sim.Time `json:"cpu_time"`
	StartAt  sim.Time `json:"start_at"`
	ExitAt   sim.Time `json:"exit_at"`
	Sleeps   uint64   `json:"sleeps"`
	WakeUps  uint64   `json:"wake_ups"`
	Migrated uint64   `json:"migrated"`
}

// LockCheckpoint is the counter state of one kernel bucket lock.
type LockCheckpoint struct {
	Acquisitions uint64 `json:"acquisitions"`
	Contended    uint64 `json:"contended"`
	PVParks      uint64 `json:"pv_parks"`
}

// TWCheckpoint is the state of the active-vCPU time-weighted integral
// (the provisioned-cost accumulator behind ActiveVCPUSeconds).
type TWCheckpoint struct {
	Last    sim.Time `json:"last"`
	Value   float64  `json:"value"`
	Weight  float64  `json:"weight"`
	Started bool     `json:"started"`
	Start   sim.Time `json:"start"`
}

// DaemonCheckpoint is the state of the vScale daemon, including the
// absolute deadline of its next scheduled channel poll (-1 when none is
// pending, e.g. after StopDaemon ran and the final no-op poll fired).
type DaemonCheckpoint struct {
	Gov        core.GovernorState `json:"gov"`
	Stopped    bool               `json:"stopped"`
	Reads      uint64             `json:"reads"`
	Decisions  uint64             `json:"decisions"`
	NextPollAt sim.Time           `json:"next_poll_at"`
}

// KernelCheckpoint is the semantic state of a quiesced kernel.
type KernelCheckpoint struct {
	Rand        sim.RandState        `json:"rand"`
	FreezeMask  uint64               `json:"freeze_mask"`
	ActiveTW    TWCheckpoint         `json:"active_tw"`
	FreezeOps   uint64               `json:"freeze_ops"`
	UnfreezeOps uint64               `json:"unfreeze_ops"`
	FutexWaits  uint64               `json:"futex_waits"`
	FutexWakes  uint64               `json:"futex_wakes"`
	CPUs        []GuestCPUCheckpoint `json:"cpus"`
	Threads     []ThreadCheckpoint   `json:"threads"`
	Buckets     []LockCheckpoint     `json:"buckets"`
	Daemon      *DaemonCheckpoint    `json:"daemon,omitempty"`
}

// QuiesceCheck verifies the kernel is in the only shape this layer can
// checkpoint. It returns an error naming the first violation.
func (k *Kernel) QuiesceCheck() error {
	if !k.booted {
		return fmt.Errorf("guest %s: not booted", k.dom.Name)
	}
	if k.traceEV != nil {
		return fmt.Errorf("guest %s: active-vCPU trace ticker is incompatible with checkpointing", k.dom.Name)
	}
	for _, c := range k.cpus {
		switch {
		case c.current != nil:
			return fmt.Errorf("guest %s: cpu %d is running thread %q", k.dom.Name, c.id, c.current.Name)
		case len(c.rq) != 0:
			return fmt.Errorf("guest %s: cpu %d has %d runnable threads", k.dom.Name, c.id, len(c.rq))
		case c.running:
			return fmt.Errorf("guest %s: cpu %d still holds a pCPU", k.dom.Name, c.id)
		case c.segEv.Pending():
			return fmt.Errorf("guest %s: cpu %d has a segment in flight", k.dom.Name, c.id)
		case c.idleBlock.Pending():
			return fmt.Errorf("guest %s: cpu %d has a pending idle block", k.dom.Name, c.id)
		case c.tick.Armed():
			return fmt.Errorf("guest %s: cpu %d tick timer still armed", k.dom.Name, c.id)
		case c.kspin != nil:
			return fmt.Errorf("guest %s: cpu %d is spinning on %s", k.dom.Name, c.id, c.kspin.Name)
		case c.pvParked:
			return fmt.Errorf("guest %s: cpu %d is pv-parked", k.dom.Name, c.id)
		case c.locksHeld != 0:
			return fmt.Errorf("guest %s: cpu %d holds %d kernel locks", k.dom.Name, c.id, c.locksHeld)
		case c.needResched:
			return fmt.Errorf("guest %s: cpu %d has a deferred resched pending", k.dom.Name, c.id)
		}
		if c.id == 0 && k.daemon != nil {
			if n := len(c.timers); n > 1 {
				return fmt.Errorf("guest %s: cpu 0 has %d software timers (daemon poll plus %d unknown)", k.dom.Name, n, n-1)
			}
		} else if len(c.timers) != 0 {
			return fmt.Errorf("guest %s: cpu %d has %d software timers pending", k.dom.Name, c.id, len(c.timers))
		}
	}
	for _, t := range k.threads {
		if t.state != ThreadSleeping && t.state != ThreadExited {
			return fmt.Errorf("guest %s: thread %q is %v", k.dom.Name, t.Name, t.state)
		}
		if t.kcont != nil || t.kspinGranted {
			return fmt.Errorf("guest %s: thread %q is inside a kernel critical section", k.dom.Name, t.Name)
		}
		if t.spin != nil {
			return fmt.Errorf("guest %s: thread %q has an in-progress spin wait", k.dom.Name, t.Name)
		}
		if t.pending != nil {
			if _, ok := t.pending.(ActDequeue); !ok {
				return fmt.Errorf("guest %s: thread %q blocked in %T (only ActDequeue is checkpointable)",
					k.dom.Name, t.Name, t.pending)
			}
		}
	}
	for _, l := range k.buckets {
		if l.holder != nil || len(l.waiters) > 0 {
			return fmt.Errorf("guest %s: kernel lock %s busy", k.dom.Name, l.Name)
		}
	}
	for key, q := range k.futexes {
		if len(q.waiters) != 0 {
			return fmt.Errorf("guest %s: futex %#x has %d waiters", k.dom.Name, key, len(q.waiters))
		}
	}
	for _, d := range k.devices {
		if len(d.completions) != 0 {
			return fmt.Errorf("guest %s: device %s has %d undelivered completions", k.dom.Name, d.Name, len(d.completions))
		}
	}
	if k.daemon != nil && k.daemon.reconfiguring {
		return fmt.Errorf("guest %s: slow reconfiguration in flight", k.dom.Name)
	}
	return nil
}

// CaptureState exports the kernel's semantic state. The caller must have
// verified QuiesceCheck first.
func (k *Kernel) CaptureState() KernelCheckpoint {
	cp := KernelCheckpoint{
		Rand:       k.rand.State(),
		FreezeMask: k.freezeMask,
		ActiveTW: TWCheckpoint{
			Last:    k.activeTW.last,
			Value:   k.activeTW.value,
			Weight:  k.activeTW.weight,
			Started: k.activeTW.started,
			Start:   k.activeTW.start,
		},
		FreezeOps:   k.FreezeOps,
		UnfreezeOps: k.UnfreezeOps,
		FutexWaits:  k.FutexWaits,
		FutexWakes:  k.FutexWakes,
	}
	for _, c := range k.cpus {
		cp.CPUs = append(cp.CPUs, GuestCPUCheckpoint{
			TickCount:     c.tickCount,
			TimesliceLeft: c.timesliceLeft,
			PickedAt:      c.pickedAt,
			KspinSpun:     c.kspinSpun,
			Stats:         c.stats,
		})
	}
	for _, t := range k.threads {
		cp.Threads = append(cp.Threads, ThreadCheckpoint{
			State:    int(t.state),
			CPU:      t.cpu,
			CPUTime:  t.CPUTime,
			StartAt:  t.StartAt,
			ExitAt:   t.ExitAt,
			Sleeps:   t.Sleeps,
			WakeUps:  t.WakeUps,
			Migrated: t.Migrated,
		})
	}
	for _, l := range k.buckets {
		cp.Buckets = append(cp.Buckets, LockCheckpoint{
			Acquisitions: l.Acquisitions,
			Contended:    l.Contended,
			PVParks:      l.PVParks,
		})
	}
	if d := k.daemon; d != nil {
		dc := &DaemonCheckpoint{
			Gov:        d.gov.State(),
			Stopped:    d.stopped,
			Reads:      d.Reads,
			Decisions:  d.Decisions,
			NextPollAt: -1,
		}
		if timers := k.cpus[0].timers; len(timers) == 1 {
			dc.NextPollAt = timers[0].at
		}
		cp.Daemon = dc
	}
	return cp
}

// RestoreState overwrites the kernel's semantic state from a capture.
// The kernel must have been rebuilt with the same thread population (same
// spawn order) and be quiesced. A captured daemon is re-created if the
// rebuilt kernel lacks one (the warm-fork path defers daemon start), and
// its next poll is re-registered at the captured absolute deadline.
func (k *Kernel) RestoreState(cp KernelCheckpoint) error {
	if err := k.QuiesceCheck(); err != nil {
		return fmt.Errorf("guest: restore target not quiesced: %w", err)
	}
	if len(cp.CPUs) != len(k.cpus) {
		return fmt.Errorf("guest %s: restoring %d CPUs into %d", k.dom.Name, len(cp.CPUs), len(k.cpus))
	}
	if len(cp.Threads) != len(k.threads) {
		return fmt.Errorf("guest %s: restoring %d threads into %d", k.dom.Name, len(cp.Threads), len(k.threads))
	}
	if len(cp.Buckets) != len(k.buckets) {
		return fmt.Errorf("guest %s: restoring %d lock buckets into %d", k.dom.Name, len(cp.Buckets), len(k.buckets))
	}
	for i, t := range k.threads {
		tc := cp.Threads[i]
		if st := ThreadState(tc.State); st != t.state {
			// Both sides must agree sleeping-vs-exited; a mismatch means the
			// rebuild replayed a different history.
			return fmt.Errorf("guest %s: thread %q is %v, checkpoint has %v", k.dom.Name, t.Name, t.state, st)
		}
		if tc.CPU < 0 || tc.CPU >= len(k.cpus) {
			return fmt.Errorf("guest %s: thread %q on invalid CPU %d", k.dom.Name, t.Name, tc.CPU)
		}
	}
	k.rand.SetState(cp.Rand)
	k.freezeMask = cp.FreezeMask
	k.activeTW = metricTW{
		last:    cp.ActiveTW.Last,
		value:   cp.ActiveTW.Value,
		weight:  cp.ActiveTW.Weight,
		started: cp.ActiveTW.Started,
		start:   cp.ActiveTW.Start,
	}
	k.FreezeOps = cp.FreezeOps
	k.UnfreezeOps = cp.UnfreezeOps
	k.FutexWaits = cp.FutexWaits
	k.FutexWakes = cp.FutexWakes
	for i, c := range k.cpus {
		cc := cp.CPUs[i]
		c.tickCount = cc.TickCount
		c.timesliceLeft = cc.TimesliceLeft
		c.pickedAt = cc.PickedAt
		c.kspinSpun = cc.KspinSpun
		c.stats = cc.Stats
	}
	for i, t := range k.threads {
		tc := cp.Threads[i]
		t.cpu = tc.CPU
		t.CPUTime = tc.CPUTime
		t.StartAt = tc.StartAt
		t.ExitAt = tc.ExitAt
		t.Sleeps = tc.Sleeps
		t.WakeUps = tc.WakeUps
		t.Migrated = tc.Migrated
	}
	for i, l := range k.buckets {
		lc := cp.Buckets[i]
		l.Acquisitions = lc.Acquisitions
		l.Contended = lc.Contended
		l.PVParks = lc.PVParks
	}
	if cp.Daemon != nil {
		if k.daemon == nil {
			k.cfg.VScale.Enabled = true
			k.daemon = newDaemon(k)
		}
		d := k.daemon
		d.gov.Restore(cp.Daemon.Gov)
		d.stopped = cp.Daemon.Stopped
		d.Reads = cp.Daemon.Reads
		d.Decisions = cp.Daemon.Decisions
		if cp.Daemon.NextPollAt >= 0 {
			d.restorePollAt(cp.Daemon.NextPollAt)
		}
	} else if k.daemon != nil {
		return fmt.Errorf("guest %s: rebuilt kernel has a daemon the checkpoint lacks", k.dom.Name)
	}
	return nil
}

// StartVScaleDaemon creates and starts the vScale daemon on a kernel
// built without one — the warm-fork arming hook: during the policy-
// neutral warm prefix the daemon stays off, and the fork boundary turns
// it on for policies whose mechanism needs it. A no-op when the daemon
// already exists.
func (k *Kernel) StartVScaleDaemon() {
	if k.daemon != nil {
		return
	}
	k.cfg.VScale.Enabled = true
	k.daemon = newDaemon(k)
	if k.booted {
		k.daemon.start()
	}
}

// WaitQueueCheckpoint is the state of one wait queue at quiesce: its
// counters and the FIFO order of its sleeping consumers (as thread ids).
// Items and blocked producers must be empty — a queue with either is not
// quiesced.
type WaitQueueCheckpoint struct {
	Posts      uint64 `json:"posts"`
	Drops      uint64 `json:"drops"`
	WaiterTIDs []int  `json:"waiter_tids"`
}

// CheckpointState exports the wait queue's state.
func (q *WaitQueue) CheckpointState() (WaitQueueCheckpoint, error) {
	if len(q.items) != 0 {
		return WaitQueueCheckpoint{}, fmt.Errorf("guest: wait queue has %d undequeued items", len(q.items))
	}
	if len(q.producers) != 0 {
		return WaitQueueCheckpoint{}, fmt.Errorf("guest: wait queue has %d blocked producers", len(q.producers))
	}
	cp := WaitQueueCheckpoint{Posts: q.Posts, Drops: q.Drops}
	for _, w := range q.waiters {
		cp.WaiterTIDs = append(cp.WaiterTIDs, w.id)
	}
	return cp, nil
}

// RestoreState overwrites the queue's counters and reorders its waiters
// to the captured FIFO order. The rebuilt queue must hold exactly the
// same set of sleeping threads (in any order — a fresh boot blocks them
// in spawn order, the captured run in completion order).
func (q *WaitQueue) RestoreState(cp WaitQueueCheckpoint) error {
	if len(q.waiters) != len(cp.WaiterTIDs) {
		return fmt.Errorf("guest: wait queue has %d waiters, checkpoint has %d", len(q.waiters), len(cp.WaiterTIDs))
	}
	byTID := make(map[int]*Thread, len(q.waiters))
	for _, w := range q.waiters {
		byTID[w.id] = w
	}
	reordered := make([]*Thread, 0, len(cp.WaiterTIDs))
	for _, tid := range cp.WaiterTIDs {
		w, ok := byTID[tid]
		if !ok {
			return fmt.Errorf("guest: checkpoint waiter tid %d is not blocked on this queue", tid)
		}
		delete(byTID, tid)
		reordered = append(reordered, w)
	}
	q.waiters = reordered
	q.Posts = cp.Posts
	q.Drops = cp.Drops
	return nil
}

// MutexCheckpoint is the counter state of a (quiesced, unlocked) mutex.
type MutexCheckpoint struct {
	Acquisitions uint64 `json:"acquisitions"`
	Contended    uint64 `json:"contended"`
}

// CheckpointState exports the mutex counters; a held mutex is an error.
func (m *Mutex) CheckpointState() (MutexCheckpoint, error) {
	if m.owner != nil {
		return MutexCheckpoint{}, fmt.Errorf("guest: mutex held by %q at checkpoint", m.owner.Name)
	}
	return MutexCheckpoint{Acquisitions: m.Acquisitions, Contended: m.Contended}, nil
}

// RestoreState overwrites the mutex counters.
func (m *Mutex) RestoreState(cp MutexCheckpoint) {
	m.Acquisitions = cp.Acquisitions
	m.Contended = cp.Contended
}

// restorePollAt re-registers the daemon's poll as a software timer at
// its captured absolute deadline — the restore counterpart of schedule,
// preserving the captured phase instead of now+period. Unlike addTimer
// it does NOT arm the vCPU's hardware timer: the engine-level deadline
// is re-armed from the checkpoint's descriptor list so it keeps its
// captured FIFO position.
func (d *daemon) restorePollAt(at sim.Time) {
	c := d.k.cpus[0]
	fn := func() {
		if d.stopped {
			return
		}
		d.poll()
		d.schedule()
	}
	i := 0
	for i < len(c.timers) && c.timers[i].at <= at {
		i++
	}
	c.timers = append(c.timers, timerEntry{})
	copy(c.timers[i+1:], c.timers[i:])
	c.timers[i] = timerEntry{at: at, fn: fn}
}

// SetReconfigDelay installs (or replaces) the per-resize latency hook —
// the dom0 hotplug path. The warm-fork host wires it at the arm
// boundary, before the daemon starts, since the closure captures host
// state that a checkpoint cannot carry.
func (k *Kernel) SetReconfigDelay(fn func(r *sim.Rand) sim.Time) {
	k.cfg.VScale.ReconfigDelay = fn
}
