package guest

import (
	"vscale/internal/costmodel"
	"vscale/internal/sim"
)

func (k *Kernel) nextSyncID() uint64 {
	k.syncIDs++
	return k.syncIDs
}

// ---------------------------------------------------------------------
// OpenMP-style barrier: spin up to SpinBudget of CPU time on the
// generation counter, then futex-sleep. The last arriver flips the
// generation, releases spinners instantly (they see the store) and
// futex-wakes the sleepers, paying per-wake cost plus remote IPIs.
// ---------------------------------------------------------------------

// Barrier is a generation-counted barrier in the style of GOMP's
// bar.h: user-level spinning (GOMP_SPINCOUNT) with a futex fallback.
type Barrier struct {
	k  *Kernel
	id uint64
	// N is the number of participating threads.
	N int
	// SpinBudget is the CPU time a waiter spins before sleeping
	// (GOMP_SPINCOUNT × per-check cost). Zero means immediate futex
	// (OMP_WAIT_POLICY=PASSIVE); very large means always-spin (ACTIVE).
	SpinBudget sim.Time

	arrived  int
	gen      uint64
	spinners []*Thread

	// Waits counts completed barrier episodes.
	Waits uint64
}

// NewBarrier creates a barrier for n threads with the given spin budget.
func (k *Kernel) NewBarrier(n int, spinBudget sim.Time) *Barrier {
	if n <= 0 {
		panic("guest: barrier needs n >= 1")
	}
	return &Barrier{k: k, id: k.nextSyncID(), N: n, SpinBudget: spinBudget}
}

// SpinBudgetFromCount converts a GOMP_SPINCOUNT iteration count into a
// CPU-time budget.
func SpinBudgetFromCount(count uint64) sim.Time {
	b := sim.Time(count) * costmodel.SpinCheck
	const max = sim.Time(1) << 50
	if b > max || b < 0 {
		return max
	}
	return b
}

// barrierAdvance is the ActBarrierWait phase machine.
//
// Phases: 0 arrive → (last: release; else spin or sleep)
//
//	1 spin ended  → either satisfied (done) or enter futex sleep
//	2 woken from futex sleep → done
//	3 release work (last arriver) charged → done
func (k *Kernel) barrierAdvance(c *cpu, t *Thread, b *Barrier) {
	switch t.phase {
	case 0:
		if b.arrived++; b.arrived == b.N {
			k.barrierRelease(c, t, b)
			return
		}
		if b.SpinBudget > 0 {
			t.phase = 1
			t.spin = &spinWait{targetGen: b.gen + 1}
			b.spinners = append(b.spinners, t)
			t.segKind = segUserSpin
			t.segRemaining = b.SpinBudget
			k.startSegment(c)
			return
		}
		k.barrierSleep(c, t, b)
	case 1:
		if t.spin != nil && t.spin.satisfied {
			t.spin = nil
			k.complete(c, t)
			return
		}
		// Spin budget exhausted: deregister and take the futex path.
		k.dropSpinner(b, t)
		t.spin = nil
		k.barrierSleep(c, t, b)
	case 2:
		// Woken by the releasing thread.
		k.complete(c, t)
	case 3:
		k.complete(c, t)
	default:
		panic("guest: bad barrier phase")
	}
}

// barrierSleep puts t to sleep on the barrier futex: bucket lock, hold,
// re-check the generation (futex value check — a release racing with
// the slow path must not be lost), enqueue. Phase 2 resumes after wake.
func (k *Kernel) barrierSleep(c *cpu, t *Thread, b *Barrier) {
	t.phase = 2
	gen := b.gen
	l := k.bucketFor(b.id)
	doSleep := func() {
		k.chargeFutexHold(c, l, func() {
			if b.gen != gen {
				return // released while entering the kernel; phase 2 completes
			}
			k.chargeSyscall(t)
			k.futexEnqueue(c, t, b.id)
		})
	}
	if k.acquireKernelLock(c, l) {
		doSleep()
		return
	}
	t.kcont = doSleep
}

// chargeFutexHold runs fn after charging the kernel-lock hold time,
// then releases the lock. fn runs while holding the lock (it may sleep
// the thread; release still happens).
//
// To keep the discrete model simple the hold time is charged as an
// immediate interrupt-style stretch before fn, and the release happens
// synchronously. A holder preempted during the hold keeps the lock until
// its vCPU runs again — which is exactly the LHP window.
func (k *Kernel) chargeFutexHold(c *cpu, l *KernelLock, fn func()) {
	hold := k.cfg.KernelLockHold
	t := c.current
	t.segKind = segWork
	t.segRemaining = hold
	t.kcont = func() {
		fn()
		k.releaseKernelLock(c, l)
	}
	k.startSegment(c)
}

// barrierRelease: the last arriver flips the generation, releases all
// spinners, and futex-wakes all sleepers, paying the wake cost.
func (k *Kernel) barrierRelease(c *cpu, t *Thread, b *Barrier) {
	b.arrived = 0
	b.gen++
	b.Waits++
	// Release user-level spinners: they observe the store directly.
	for _, s := range b.spinners {
		k.satisfySpinner(s)
	}
	b.spinners = b.spinners[:0]

	sleepers := k.futexWaiterCount(b.id)
	t.phase = 3
	if sleepers == 0 {
		k.chargeAndContinue(c, t, 100*sim.Nanosecond)
		return
	}
	// Futex wake path: bucket lock + per-wake cost.
	l := k.bucketFor(b.id)
	wake := func() {
		k.chargeFutexHold(c, l, func() {
			n := k.futexWakeAll(c, b.id, -1)
			// Wake cost lands after the critical section.
			resumeSegmentCost(t, wakeCost(n))
		})
	}
	if k.acquireKernelLock(c, l) {
		wake()
		return
	}
	t.kcont = wake
}

// satisfySpinner marks a user-level spinner's condition as met; if it is
// executing right now its spin segment is truncated to one more check.
func (k *Kernel) satisfySpinner(t *Thread) {
	if t.spin == nil {
		return
	}
	t.spin.satisfied = true
	c := k.cpus[t.cpu]
	if c.current == t && c.running && c.segEv.Pending() {
		k.pauseSegment(c)
		t.segRemaining = costmodel.SpinCheck
		k.startSegment(c)
	}
	// Otherwise maybeShortcutSpin() collapses the rest of the budget
	// when the thread next gets CPU.
}

// dropSpinner removes t from the barrier's spinner list.
func (k *Kernel) dropSpinner(b *Barrier, t *Thread) {
	for i, s := range b.spinners {
		if s == t {
			b.spinners = append(b.spinners[:i], b.spinners[i+1:]...)
			return
		}
	}
}

// ---------------------------------------------------------------------
// Futex-based mutex (pthread_mutex): user-space fast path, kernel slow
// path under the bucket lock.
// ---------------------------------------------------------------------

// Mutex is a sleeping lock in the style of a glibc pthread mutex.
type Mutex struct {
	k     *Kernel
	id    uint64
	owner *Thread

	// Stats.
	Acquisitions uint64
	Contended    uint64
}

// NewMutex creates an unlocked mutex.
func (k *Kernel) NewMutex() *Mutex {
	return &Mutex{k: k, id: k.nextSyncID()}
}

// Locked reports whether the mutex is held.
func (m *Mutex) Locked() bool { return m.owner != nil }

// mutexLockAdvance: phase 0 = fast path attempt; phase 1 = woken after
// sleeping, acquire now (the unlocker passed ownership).
func (k *Kernel) mutexLockAdvance(c *cpu, t *Thread, m *Mutex) {
	switch t.phase {
	case 0:
		if m.owner == nil {
			m.owner = t
			m.Acquisitions++
			k.complete(c, t)
			return
		}
		// Contended: futex_wait under the bucket lock. Like the real
		// futex, the sleep re-checks the lock word under the bucket lock
		// so an unlock racing with the slow path is not lost.
		m.Contended++
		t.phase = 1
		l := k.bucketFor(m.id)
		wait := func() {
			k.chargeFutexHold(c, l, func() {
				if m.owner == nil {
					// The owner released while we entered the kernel.
					m.owner = t
					m.Acquisitions++
					return // phase 1 completes without sleeping
				}
				k.chargeSyscall(t)
				k.futexEnqueue(c, t, m.id)
			})
		}
		if k.acquireKernelLock(c, l) {
			wait()
			return
		}
		t.kcont = wait
	case 1:
		// Ownership was transferred by the unlocker before waking us.
		k.complete(c, t)
	default:
		panic("guest: bad mutex phase")
	}
}

// mutexUnlockAdvance: phase 0 = release; if waiters exist, transfer
// ownership to the first and wake it (futex path). Phase 1 = wake work
// charged, done.
func (k *Kernel) mutexUnlockAdvance(c *cpu, t *Thread, m *Mutex) {
	switch t.phase {
	case 0:
		if m.owner != t {
			panic("guest: unlocking a mutex not owned by thread " + t.Name)
		}
		if k.futexWaiterCount(m.id) == 0 {
			m.owner = nil
			k.complete(c, t)
			return
		}
		// Keep ownership until the transfer happens under the bucket
		// lock, so a racing fast-path lock cannot sneak in and be
		// clobbered by the transfer.
		l := k.bucketFor(m.id)
		t.phase = 1
		wake := func() {
			k.chargeFutexHold(c, l, func() {
				if q := k.futexQ(m.id); len(q.waiters) > 0 {
					next := q.waiters[0]
					m.owner = next
					m.Acquisitions++
				} else {
					m.owner = nil
				}
				n := k.futexWakeAll(c, m.id, 1)
				resumeSegmentCost(t, wakeCost(n))
			})
		}
		if k.acquireKernelLock(c, l) {
			wake()
			return
		}
		t.kcont = wake
	case 1:
		k.complete(c, t)
	default:
		panic("guest: bad mutex unlock phase")
	}
}

// ---------------------------------------------------------------------
// Condition variable (pthread_cond) over futex.
// ---------------------------------------------------------------------

// Cond is a condition variable; waiters sleep on its futex and re-take
// the associated mutex on wakeup.
type Cond struct {
	k  *Kernel
	id uint64

	Signals, Broadcasts uint64
}

// NewCond creates a condition variable.
func (k *Kernel) NewCond() *Cond {
	return &Cond{k: k, id: k.nextSyncID()}
}

// condWaitAdvance: phase 0 = unlock mutex and sleep on the cond futex;
// phase 1 = woken, reacquire the mutex (delegates to the mutex lock
// machine by rewriting the pending action).
func (k *Kernel) condWaitAdvance(c *cpu, t *Thread, a ActCondWait) {
	switch t.phase {
	case 0:
		m := a.M
		if m.owner != t {
			panic("guest: cond wait without holding the mutex")
		}
		// Release the mutex, waking one mutex waiter if present, then
		// sleep on the condvar — all under the condvar bucket lock.
		t.phase = 1
		l := k.bucketFor(a.C.id)
		wait := func() {
			k.chargeFutexHold(c, l, func() {
				m.owner = nil
				var cost sim.Time
				if k.futexWaiterCount(m.id) > 0 {
					if q := k.futexQ(m.id); len(q.waiters) > 0 {
						next := q.waiters[0]
						m.owner = next
						m.Acquisitions++
					}
					cost += wakeCost(k.futexWakeAll(c, m.id, 1))
				}
				k.chargeSyscall(t)
				_ = cost // waker cost folded into the hold segment
				k.futexEnqueue(c, t, a.C.id)
			})
		}
		if k.acquireKernelLock(c, l) {
			wait()
			return
		}
		t.kcont = wait
	case 1:
		// Reacquire the mutex: morph into a lock action (phase 0).
		t.pending = ActLock{M: a.M}
		t.phase = 0
		k.advance(c, t)
	default:
		panic("guest: bad cond phase")
	}
}

// condSignalAdvance wakes one (or all) waiters of the condvar.
// Phase 0 = wake under the bucket lock; phase 1 = done.
func (k *Kernel) condSignalAdvance(c *cpu, t *Thread, cv *Cond, broadcast bool) {
	switch t.phase {
	case 0:
		if broadcast {
			cv.Broadcasts++
		} else {
			cv.Signals++
		}
		if k.futexWaiterCount(cv.id) == 0 {
			k.complete(c, t)
			return
		}
		l := k.bucketFor(cv.id)
		t.phase = 1
		n := 1
		if broadcast {
			n = -1
		}
		wake := func() {
			k.chargeFutexHold(c, l, func() {
				woken := k.futexWakeAll(c, cv.id, n)
				resumeSegmentCost(t, wakeCost(woken))
			})
		}
		if k.acquireKernelLock(c, l) {
			wake()
			return
		}
		t.kcont = wake
	case 1:
		k.complete(c, t)
	default:
		panic("guest: bad cond signal phase")
	}
}

// ---------------------------------------------------------------------
// SpinVar: ad-hoc user-level busy-wait synchronisation (NPB lu's
// hand-rolled pipeline sync; no futex fallback at all).
// ---------------------------------------------------------------------

// SpinVar is a monotonically increasing generation variable with pure
// busy-wait semantics.
type SpinVar struct {
	k        *Kernel
	id       uint64
	gen      uint64
	spinners []*Thread
}

// NewSpinVar creates a generation-zero spin variable.
func (k *Kernel) NewSpinVar() *SpinVar {
	return &SpinVar{k: k, id: k.nextSyncID()}
}

// Gen returns the current generation.
func (s *SpinVar) Gen() uint64 { return s.gen }

// spinWaitAdvance: phase 0 = begin spinning (or pass immediately);
// phase 1 = spin segment ended, which only happens via satisfaction
// because the budget is unbounded.
func (k *Kernel) spinWaitAdvance(c *cpu, t *Thread, a ActSpinWait) {
	switch t.phase {
	case 0:
		if a.S.gen >= a.Gen {
			k.chargeAndContinue(c, t, costmodel.SpinCheck)
			t.phase = 2
			return
		}
		t.phase = 1
		t.spin = &spinWait{targetGen: a.Gen}
		a.S.spinners = append(a.S.spinners, t)
		t.segKind = segUserSpin
		t.segRemaining = sim.Time(1) << 50
		k.startSegment(c)
	case 1:
		if t.spin == nil || t.spin.satisfied {
			t.spin = nil
			k.complete(c, t)
			return
		}
		// Unsatisfied unbounded spin "expired" — keep spinning.
		t.segKind = segUserSpin
		t.segRemaining = sim.Time(1) << 50
		k.startSegment(c)
	case 2:
		k.complete(c, t)
	default:
		panic("guest: bad spinwait phase")
	}
}

// spinSetAdvance advances the generation and releases satisfied
// spinners. Phase 0 = store + release; phase 1 = done.
func (k *Kernel) spinSetAdvance(c *cpu, t *Thread, s *SpinVar) {
	switch t.phase {
	case 0:
		s.gen++
		kept := s.spinners[:0]
		for _, sp := range s.spinners {
			if sp.spin != nil && s.gen >= sp.spin.targetGen {
				k.satisfySpinner(sp)
			} else {
				kept = append(kept, sp)
			}
		}
		s.spinners = kept
		t.phase = 1
		k.chargeAndContinue(c, t, 50*sim.Nanosecond)
	case 1:
		k.complete(c, t)
	default:
		panic("guest: bad spinset phase")
	}
}

// chargeSyscall charges the futex syscall entry cost by extending the
// thread's next segment.
func (k *Kernel) chargeSyscall(t *Thread) {
	t.segRemaining += costmodel.FutexWaitCost
}
