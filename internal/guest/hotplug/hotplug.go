// Package hotplug models legacy Linux CPU hotplug, the mechanism vScale
// replaces. Hotplug runs a chain of per-subsystem notifier callbacks
// around a stop_machine() phase that halts every online CPU with
// interrupts disabled; its latency is milliseconds to over a hundred
// milliseconds (paper Figure 5), which is why VCPU-Bal could only
// simulate dynamic vCPUs and why vScale builds a new mechanism instead.
//
// The model reproduces the structure (notifier phases + stop_machine)
// and draws phase latencies from per-kernel-version distributions fitted
// to the paper's CDFs.
package hotplug

import (
	"fmt"

	"vscale/internal/costmodel"
	"vscale/internal/sim"
)

// Phase names one step of the hotplug sequence.
type Phase int

// Hotplug phases, in execution order for CPU removal. Addition runs the
// *_PREPARE/ONLINE phases instead; both are dominated by the same
// stop_machine and notifier costs.
const (
	// PhasePrepare runs CPU_DOWN_PREPARE notifiers (subsystems veto or
	// get ready; per-CPU kthreads are parked).
	PhasePrepare Phase = iota
	// PhaseStopMachine halts all CPUs with interrupts disabled and runs
	// take_cpu_down() — the heavy, disruptive step ("equivalent to
	// grabbing every spinlock in the kernel").
	PhaseStopMachine
	// PhaseDying runs the CPU_DYING notifier class in stop_machine
	// context.
	PhaseDying
	// PhaseDead runs CPU_DEAD notifiers: migrate timers/work, rebuild
	// scheduling domains.
	PhaseDead
)

func (p Phase) String() string {
	switch p {
	case PhasePrepare:
		return "DOWN_PREPARE notifiers"
	case PhaseStopMachine:
		return "stop_machine()"
	case PhaseDying:
		return "CPU_DYING notifiers"
	case PhaseDead:
		return "CPU_DEAD notifiers + domain rebuild"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// phaseShare is the rough fraction of total latency each phase
// contributes (stop_machine dominates; shares sum to 1).
var phaseShare = map[Phase]float64{
	PhasePrepare:     0.15,
	PhaseStopMachine: 0.55,
	PhaseDying:       0.10,
	PhaseDead:        0.20,
}

// Op is one sampled hotplug operation with its per-phase breakdown.
type Op struct {
	Version string
	Remove  bool // true = CPU removal, false = addition
	Total   sim.Time
	Phases  map[Phase]sim.Time
}

// Sampler draws hotplug operations for one kernel version.
type Sampler struct {
	model costmodel.HotplugModel
	rand  *sim.Rand
}

// NewSampler returns a sampler for the given kernel version. It reports
// an error for unknown versions.
func NewSampler(version string, rand *sim.Rand) (*Sampler, error) {
	m, ok := costmodel.HotplugModelFor(version)
	if !ok {
		return nil, fmt.Errorf("hotplug: unknown kernel version %q", version)
	}
	return &Sampler{model: m, rand: rand}, nil
}

// Version returns the kernel version string.
func (s *Sampler) Version() string { return s.model.Version }

// Remove samples one CPU-removal operation.
func (s *Sampler) Remove() Op {
	total := s.model.DrawDown(s.rand)
	return split(s.model.Version, true, total)
}

// Add samples one CPU-addition operation.
func (s *Sampler) Add() Op {
	total := s.model.DrawUp(s.rand)
	return split(s.model.Version, false, total)
}

func split(version string, remove bool, total sim.Time) Op {
	op := Op{Version: version, Remove: remove, Total: total, Phases: make(map[Phase]sim.Time)}
	var assigned sim.Time
	for p := PhasePrepare; p <= PhaseDead; p++ {
		d := sim.Time(float64(total) * phaseShare[p])
		op.Phases[p] = d
		assigned += d
	}
	// Rounding remainder goes to stop_machine.
	op.Phases[PhaseStopMachine] += total - assigned
	return op
}

// Versions lists the kernel versions with fitted models (paper Figure 5
// evaluates these four).
func Versions() []string {
	out := make([]string, 0, len(costmodel.HotplugModels))
	for _, m := range costmodel.HotplugModels {
		out = append(out, m.Version)
	}
	return out
}
