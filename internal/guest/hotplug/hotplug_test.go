package hotplug

import (
	"testing"

	"vscale/internal/sim"
)

func TestSamplerVersions(t *testing.T) {
	if len(Versions()) != 4 {
		t.Fatalf("versions = %v, want the paper's four kernels", Versions())
	}
	if _, err := NewSampler("v-0.1", sim.NewRand(1)); err == nil {
		t.Fatal("unknown version must error")
	}
}

func TestPhaseBreakdownSumsToTotal(t *testing.T) {
	s, err := NewSampler("v-3.14.15", sim.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		for _, op := range []Op{s.Remove(), s.Add()} {
			var sum sim.Time
			for _, d := range op.Phases {
				if d < 0 {
					t.Fatal("negative phase duration")
				}
				sum += d
			}
			if sum != op.Total {
				t.Fatalf("phase sum %v != total %v", sum, op.Total)
			}
			if op.Phases[PhaseStopMachine] < op.Phases[PhasePrepare] {
				t.Fatal("stop_machine should dominate the breakdown")
			}
		}
	}
}

func TestLatencyBandsMatchFigure5(t *testing.T) {
	r := sim.NewRand(3)
	for _, v := range Versions() {
		s, err := NewSampler(v, r)
		if err != nil {
			t.Fatal(err)
		}
		var removeSum, addSum sim.Time
		const n = 300
		for i := 0; i < n; i++ {
			removeSum += s.Remove().Total
			addSum += s.Add().Total
		}
		removeAvg := removeSum / n
		addAvg := addSum / n
		// Removal: a few ms to >100ms in the paper.
		if removeAvg < 2*sim.Millisecond || removeAvg > 150*sim.Millisecond {
			t.Fatalf("%s: remove avg %v outside the paper's band", v, removeAvg)
		}
		if v == "v-3.14.15" {
			if addAvg > sim.Millisecond {
				t.Fatalf("3.14.15 add avg %v, paper says 350-500µs at best", addAvg)
			}
		} else if addAvg < 2*sim.Millisecond {
			t.Fatalf("%s: add avg %v, paper says tens of ms", v, addAvg)
		}
	}
}

func TestPhaseStrings(t *testing.T) {
	for p := PhasePrepare; p <= PhaseDead; p++ {
		if p.String() == "" {
			t.Fatal("empty phase name")
		}
	}
	if Phase(99).String() != "Phase(99)" {
		t.Fatal("unknown phase format")
	}
}
