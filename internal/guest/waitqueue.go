package guest

import "vscale/internal/sim"

// WaitQueue is a kernel wait queue carrying items (the accept-queue /
// socket-receive pattern): threads block dequeueing; producers — other
// threads or interrupt handlers — post items and wake one waiter.
// Remote wakeups go through the reschedule-IPI path like every other
// wake in the kernel.
type WaitQueue struct {
	k       *Kernel
	id      uint64
	items   []any
	waiters []*Thread
	// producers are threads blocked in ActEnqueue on a full queue
	// (bounded-buffer backpressure).
	producers []*Thread

	// MaxItems, when non-zero, bounds the queue; Post returns false and
	// drops the item when full (a listen backlog), while ActEnqueue
	// blocks instead.
	MaxItems int

	Posts, Drops uint64
}

// NewWaitQueue creates an empty wait queue (maxItems 0 = unbounded).
func (k *Kernel) NewWaitQueue(maxItems int) *WaitQueue {
	return &WaitQueue{k: k, id: k.nextSyncID(), MaxItems: maxItems}
}

// Len returns the number of queued items.
func (q *WaitQueue) Len() int { return len(q.items) }

// Waiters returns the number of blocked consumers.
func (q *WaitQueue) Waiters() int { return len(q.waiters) }

// Post enqueues an item, waking one blocked consumer. fromCPU is the CPU
// doing the post (interrupt handlers pass the delivering CPU). It
// reports whether the item was accepted.
func (q *WaitQueue) Post(item any, fromCPU int) bool {
	q.Posts++
	if q.MaxItems > 0 && len(q.items) >= q.MaxItems {
		q.Drops++
		return false
	}
	q.items = append(q.items, item)
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.k.wakeThread(w, fromCPU)
	}
	return true
}

// ActDequeue blocks the thread until an item is available on Q; the item
// lands in Thread.Mailbox.
type ActDequeue struct{ Q *WaitQueue }

func (ActDequeue) isAction() {}

// ActEnqueue puts Item on Q, blocking while the queue is full (the
// bounded-buffer producer side: pipeline backpressure).
type ActEnqueue struct {
	Q    *WaitQueue
	Item any
}

func (ActEnqueue) isAction() {}

// ActCall runs F synchronously as part of the thread's execution after
// charging Cost of CPU (side-effect escape hatch for workload models:
// transmitting a response, recording a timestamp).
type ActCall struct {
	F    func(t *Thread)
	Cost sim.Time
}

func (ActCall) isAction() {}

// dequeueAdvance implements ActDequeue: phase 0 = fast path or sleep,
// phase 1 = woken, take the item.
func (k *Kernel) dequeueAdvance(c *cpu, t *Thread, q *WaitQueue) {
	switch t.phase {
	case 0, 1:
		if len(q.items) > 0 {
			t.Mailbox = q.items[0]
			q.items = q.items[1:]
			// Space freed: release one blocked producer.
			if len(q.producers) > 0 {
				p := q.producers[0]
				q.producers = q.producers[1:]
				k.wakeThread(p, c.id)
			}
			k.chargeAndContinue(c, t, sim.Microsecond)
			t.phase = 2
			return
		}
		// Spurious wake or nothing yet: (re-)join the waiters.
		t.phase = 1
		q.waiters = append(q.waiters, t)
		k.sleepCurrent(c, t)
	case 2:
		k.complete(c, t)
	default:
		panic("guest: bad dequeue phase")
	}
}

// enqueueAdvance implements ActEnqueue: phase 0/1 = try to append or
// sleep on a full queue; phase 2 = done.
func (k *Kernel) enqueueAdvance(c *cpu, t *Thread, a ActEnqueue) {
	q := a.Q
	switch t.phase {
	case 0, 1:
		if q.MaxItems == 0 || len(q.items) < q.MaxItems {
			q.Posts++
			q.items = append(q.items, a.Item)
			if len(q.waiters) > 0 {
				w := q.waiters[0]
				q.waiters = q.waiters[1:]
				k.wakeThread(w, c.id)
			}
			k.chargeAndContinue(c, t, sim.Microsecond)
			t.phase = 2
			return
		}
		// Full: block until a consumer makes room.
		t.phase = 1
		q.producers = append(q.producers, t)
		k.sleepCurrent(c, t)
	case 2:
		k.complete(c, t)
	default:
		panic("guest: bad enqueue phase")
	}
}

// callAdvance implements ActCall: phase 0 = charge cost, phase 1 = run F
// and finish.
func (k *Kernel) callAdvance(c *cpu, t *Thread, a ActCall) {
	switch t.phase {
	case 0:
		t.phase = 1
		k.chargeAndContinue(c, t, a.Cost)
	case 1:
		if a.F != nil {
			a.F(t)
		}
		k.complete(c, t)
	default:
		panic("guest: bad call phase")
	}
}
