package guest

import (
	"fmt"
	"testing"

	"vscale/internal/sim"
	"vscale/internal/xen"
)

// checkInvariants verifies the structural invariants of a kernel:
// every live thread is in exactly one place (one runqueue, or current on
// one CPU, or sleeping/exited off-queue), frozen CPUs drain completely,
// and per-CPU bookkeeping is self-consistent.
func checkInvariants(t *testing.T, k *Kernel) {
	t.Helper()
	seen := make(map[*Thread]string)
	place := func(th *Thread, where string) {
		if prev, dup := seen[th]; dup {
			t.Fatalf("thread %s in two places: %s and %s", th.Name, prev, where)
		}
		seen[th] = where
	}
	for _, c := range k.cpus {
		if c.current != nil {
			place(c.current, fmt.Sprintf("current@%d", c.id))
			if c.current.State() != ThreadRunning {
				t.Fatalf("current thread %s has state %v", c.current.Name, c.current.State())
			}
		}
		for _, th := range c.rq {
			place(th, fmt.Sprintf("rq@%d", c.id))
			if th.State() != ThreadRunnable {
				t.Fatalf("queued thread %s has state %v", th.Name, th.State())
			}
		}
	}
	for _, th := range k.Threads() {
		where, queued := seen[th]
		switch th.State() {
		case ThreadRunning, ThreadRunnable:
			if !queued {
				t.Fatalf("live thread %s (%v) is on no CPU", th.Name, th.State())
			}
			_ = where
		case ThreadSleeping, ThreadExited:
			if queued {
				t.Fatalf("%v thread %s still placed at %s", th.State(), th.Name, where)
			}
		}
	}
}

// TestInvariantsUnderRandomScaling drives random freeze/unfreeze
// sequences against a mixed workload and checks structural invariants
// at every step.
func TestInvariantsUnderRandomScaling(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			eng := sim.NewEngine(seed)
			pool := xen.NewPool(eng, xen.DefaultConfig(4))
			dom := pool.AddDomain("vm", 256, 4, nil)
			cfg := DefaultConfig()
			cfg.Seed = seed
			k := NewKernel(dom, cfg)
			k.SpawnPerCPUKthreads()
			r := sim.NewRand(seed * 31)

			// A mixed forever-workload: compute, mutex, barrier, sleep.
			m := k.NewMutex()
			b := k.NewBarrier(3, 50*sim.Microsecond)
			for i := 0; i < 3; i++ {
				k.Spawn("barrier", Uthread, &loop{n: 1 << 30, body: func(int) []Action {
					return []Action{ActCompute{D: 800 * sim.Microsecond}, ActBarrierWait{B: b}}
				}}, nil)
			}
			for i := 0; i < 3; i++ {
				k.Spawn("locker", Uthread, &loop{n: 1 << 30, body: func(int) []Action {
					return []Action{
						ActLock{M: m}, ActCompute{D: 100 * sim.Microsecond}, ActUnlock{M: m},
						ActSleep{D: 500 * sim.Microsecond},
					}
				}}, nil)
			}
			pool.Start()
			k.Boot()

			for step := 0; step < 60; step++ {
				if err := eng.RunUntil(eng.Now() + sim.Time(1+r.Intn(40))*sim.Millisecond); err != nil {
					t.Fatal(err)
				}
				// Random scaling action.
				cpu := 1 + r.Intn(3)
				if k.Frozen(cpu) {
					if err := k.UnfreezeVCPU(cpu); err != nil {
						t.Fatal(err)
					}
				} else if k.ActiveVCPUs() > 1 {
					if err := k.FreezeVCPU(cpu); err != nil {
						t.Fatal(err)
					}
				}
				// Let the reconfiguration settle, then check.
				if err := eng.RunUntil(eng.Now() + 50*sim.Millisecond); err != nil {
					t.Fatal(err)
				}
				checkInvariants(t, k)
				// Frozen CPUs must be fully drained of migratable work.
				for id := 0; id < k.NCPUs(); id++ {
					if !k.Frozen(id) {
						continue
					}
					c := k.cpus[id]
					if c.current != nil && c.current.Kind.Migratable() {
						t.Fatalf("frozen CPU %d still runs %s", id, c.current.Name)
					}
					for _, th := range c.rq {
						if th.Kind.Migratable() {
							t.Fatalf("frozen CPU %d still queues %s", id, th.Name)
						}
					}
				}
			}
			// The workload must still be making progress: unfreeze all and
			// verify barrier episodes keep accumulating.
			for id := 1; id < k.NCPUs(); id++ {
				if k.Frozen(id) {
					if err := k.UnfreezeVCPU(id); err != nil {
						t.Fatal(err)
					}
				}
			}
			before := b.Waits
			if err := eng.RunUntil(eng.Now() + 500*sim.Millisecond); err != nil {
				t.Fatal(err)
			}
			if b.Waits <= before {
				t.Fatal("workload stopped making progress after scaling churn")
			}
		})
	}
}

// TestInvariantsUnderPVLockScaling repeats the churn with paravirtual
// spinlocks enabled (the pv-park/kick path interacts with freezing).
func TestInvariantsUnderPVLockScaling(t *testing.T) {
	eng := sim.NewEngine(77)
	pool := xen.NewPool(eng, xen.DefaultConfig(2)) // oversubscribed on purpose
	domBG := pool.AddDomain("bg", 256, 2, nil)
	kbg := NewKernel(domBG, DefaultConfig())
	for i := 0; i < 2; i++ {
		kbg.Spawn("hog", Uthread, &loop{n: 1 << 30, body: func(int) []Action {
			return []Action{ActCompute{D: sim.Millisecond}}
		}}, nil)
	}
	dom := pool.AddDomain("vm", 256, 4, nil)
	cfg := DefaultConfig()
	cfg.PVSpinlock = true
	cfg.PVSpinThreshold = 5 * sim.Microsecond
	k := NewKernel(dom, cfg)
	m := k.NewMutex()
	for i := 0; i < 6; i++ {
		k.Spawn("locker", Uthread, &loop{n: 1 << 30, body: func(int) []Action {
			return []Action{ActLock{M: m}, ActCompute{D: 30 * sim.Microsecond}, ActUnlock{M: m}}
		}}, nil)
	}
	pool.Start()
	kbg.Boot()
	k.Boot()
	r := sim.NewRand(5)
	for step := 0; step < 40; step++ {
		if err := eng.RunUntil(eng.Now() + sim.Time(1+r.Intn(30))*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		cpu := 1 + r.Intn(3)
		if k.Frozen(cpu) {
			_ = k.UnfreezeVCPU(cpu)
		} else if k.ActiveVCPUs() > 1 {
			_ = k.FreezeVCPU(cpu)
		}
		if err := eng.RunUntil(eng.Now() + 40*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, k)
	}
	if m.Acquisitions == 0 {
		t.Fatal("lock workload never ran")
	}
}
