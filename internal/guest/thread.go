package guest

import (
	"fmt"

	"vscale/internal/sim"
)

// ThreadKind classifies schedulable entities (paper Figure 3).
type ThreadKind int

// Thread kinds.
const (
	// Uthread is a user-level thread; always migratable.
	Uthread ThreadKind = iota
	// KthreadSystem is a system-wide kernel thread (rcu_sched, kauditd,
	// ext4 daemons); migratable.
	KthreadSystem
	// KthreadPerCPU is a per-CPU kernel thread (ksoftirqd, kworker,
	// swapper); NOT migratable — vScale leaves them parked, and they go
	// quiescent once nothing drives them.
	KthreadPerCPU
)

func (kk ThreadKind) String() string {
	switch kk {
	case Uthread:
		return "uthread"
	case KthreadSystem:
		return "kthread-system"
	case KthreadPerCPU:
		return "kthread-percpu"
	default:
		return fmt.Sprintf("ThreadKind(%d)", int(kk))
	}
}

// Migratable reports whether load balancing and vScale may move the
// thread across vCPUs.
func (kk ThreadKind) Migratable() bool { return kk != KthreadPerCPU }

// ThreadState is the scheduler state of a guest thread.
type ThreadState int

// Thread states.
const (
	// ThreadRunnable: queued on some CPU's runqueue.
	ThreadRunnable ThreadState = iota
	// ThreadRunning: currently executing on a CPU.
	ThreadRunning
	// ThreadSleeping: blocked (futex, condvar, I/O, timed sleep).
	ThreadSleeping
	// ThreadExited: the program returned ActExit.
	ThreadExited
)

func (s ThreadState) String() string {
	switch s {
	case ThreadRunnable:
		return "runnable"
	case ThreadRunning:
		return "running"
	case ThreadSleeping:
		return "sleeping"
	case ThreadExited:
		return "exited"
	default:
		return fmt.Sprintf("ThreadState(%d)", int(s))
	}
}

// segKind classifies what the current execution segment represents.
type segKind int

const (
	segWork segKind = iota
	segUserSpin
	segKernelSpin
)

// Program is a workload state machine: the kernel calls Next each time
// the previous action completed, and executes the returned action on the
// thread. Programs run strictly single-threaded per Thread.
type Program interface {
	Next(t *Thread) Action
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc func(t *Thread) Action

// Next implements Program.
func (f ProgramFunc) Next(t *Thread) Action { return f(t) }

// Action is one step of a Program. Exactly the types in this package
// implement it.
type Action interface{ isAction() }

// ActCompute runs D of pure CPU work.
type ActCompute struct{ D sim.Time }

// ActExit terminates the thread.
type ActExit struct{}

// ActSleep blocks the thread for D (timer wakeup).
type ActSleep struct{ D sim.Time }

// ActBarrierWait joins an OpenMP-style barrier (spin-then-futex
// according to the barrier's spin budget).
type ActBarrierWait struct{ B *Barrier }

// ActLock acquires a futex-based mutex (user fast path; kernel slow path
// with bucket spinlock on contention).
type ActLock struct{ M *Mutex }

// ActUnlock releases a mutex, waking one waiter if present.
type ActUnlock struct{ M *Mutex }

// ActCondWait atomically releases M and sleeps on C; on wakeup it
// re-acquires M before completing.
type ActCondWait struct {
	C *Cond
	M *Mutex
}

// ActCondSignal wakes one waiter of C.
type ActCondSignal struct{ C *Cond }

// ActCondBroadcast wakes all waiters of C.
type ActCondBroadcast struct{ C *Cond }

// ActSpinWait busy-waits (pure user-level spinning, no futex fallback —
// the ad-hoc synchronisation of NPB's lu) until S's generation reaches
// Gen.
type ActSpinWait struct {
	S   *SpinVar
	Gen uint64
}

// ActSpinSet advances S's generation, releasing spinners waiting for it.
type ActSpinSet struct{ S *SpinVar }

// ActIO submits an I/O of the given service time on a Device and blocks
// until its completion interrupt is processed.
type ActIO struct {
	Dev     *Device
	Service sim.Time
}

func (ActCompute) isAction()       {}
func (ActExit) isAction()          {}
func (ActSleep) isAction()         {}
func (ActBarrierWait) isAction()   {}
func (ActLock) isAction()          {}
func (ActUnlock) isAction()        {}
func (ActCondWait) isAction()      {}
func (ActCondSignal) isAction()    {}
func (ActCondBroadcast) isAction() {}
func (ActSpinWait) isAction()      {}
func (ActSpinSet) isAction()       {}
func (ActIO) isAction()            {}

// spinWait tracks an in-progress user-level spin.
type spinWait struct {
	v         *SpinVar
	targetGen uint64
	satisfied bool
	futexNext bool // fall back to futex when the budget expires (barriers)
}

// Thread is one schedulable guest entity.
type Thread struct {
	k    *Kernel
	id   int
	Name string
	Kind ThreadKind

	state ThreadState
	cpu   int // current/last CPU

	prog    Program
	pending Action
	phase   int

	segRemaining sim.Time
	segKind      segKind

	spin         *spinWait
	kspinGranted bool
	// wakePreempt marks a freshly woken thread that may preempt the
	// running one (CFS wakeup preemption); cleared when picked.
	wakePreempt bool
	// kcont is a stashed kernel continuation: it runs when the current
	// segment completes (contended-lock grants and critical sections).
	kcont func()

	// Mailbox receives the item taken by ActDequeue.
	Mailbox any

	// onExit runs when the thread exits (harness completion tracking).
	onExit func(*Thread)

	// Stats.
	CPUTime  sim.Time
	StartAt  sim.Time
	ExitAt   sim.Time
	Sleeps   uint64
	WakeUps  uint64
	Migrated uint64
}

// inKernelCritical reports that the thread is inside a kernel critical
// section (a pending lock continuation or a just-granted kernel lock).
// Such threads are neither rotated nor migrated — the kernel runs
// spinlock critical sections with preemption disabled, and the stashed
// continuations are bound to the executing CPU.
func (t *Thread) inKernelCritical() bool { return t.kcont != nil || t.kspinGranted }

// ID returns the thread id.
func (t *Thread) ID() int { return t.id }

// State returns the scheduler state.
func (t *Thread) State() ThreadState { return t.state }

// CPU returns the thread's current (or last) CPU.
func (t *Thread) CPU() int { return t.cpu }

// Kernel returns the owning kernel.
func (t *Thread) Kernel() *Kernel { return t.k }

// Rand returns the kernel PRNG (for program jitter).
func (t *Thread) Rand() *sim.Rand { return t.k.rand }

// Spawn creates a thread running prog and enqueues it (fork balance). It
// may be called before Boot; threads start once vCPU0 is kicked.
func (k *Kernel) Spawn(name string, kind ThreadKind, prog Program, onExit func(*Thread)) *Thread {
	t := &Thread{
		k:       k,
		id:      k.nextTID,
		Name:    name,
		Kind:    kind,
		prog:    prog,
		onExit:  onExit,
		StartAt: k.eng.Now(),
		state:   ThreadRunnable,
	}
	k.nextTID++
	k.threads = append(k.threads, t)
	target := k.selectCPU(t, -1)
	t.cpu = target
	k.enqueue(k.cpus[target], t, true)
	return t
}

// SpawnPerCPUKthreads creates the classic per-CPU servants (quiescent
// placeholders: they never enter a runqueue but appear in the thread
// inventory and are refused migration).
func (k *Kernel) SpawnPerCPUKthreads() {
	for i := range k.cpus {
		for _, name := range []string{"ksoftirqd", "kworker", "swapper"} {
			t := &Thread{
				k:       k,
				id:      k.nextTID,
				Name:    fmt.Sprintf("%s/%d", name, i),
				Kind:    KthreadPerCPU,
				state:   ThreadSleeping,
				cpu:     i,
				StartAt: k.eng.Now(),
			}
			k.nextTID++
			k.threads = append(k.threads, t)
		}
	}
}

// Threads returns all threads ever spawned.
func (k *Kernel) Threads() []*Thread { return k.threads }

// advance executes the action state machine of thread t (current on c)
// after its segment completed.
func (k *Kernel) advance(c *cpu, t *Thread) {
	if t.pending == nil {
		k.fetch(c, t)
		return
	}
	switch a := t.pending.(type) {
	case ActCompute:
		t.CPUTime += a.D
		k.complete(c, t)
	case ActExit:
		panic("guest: ActExit should not reach advance")
	case ActSleep:
		// Phase 0: go to sleep; the timer wake re-queues the thread, and
		// completion happens when it runs again (phase 1).
		if t.phase == 0 {
			t.phase = 1
			at := k.eng.Now() + a.D
			k.addTimer(c, at, func() { k.wakeThread(t, c.id) })
			k.sleepCurrent(c, t)
			return
		}
		k.complete(c, t)
	case ActBarrierWait:
		k.barrierAdvance(c, t, a.B)
	case ActLock:
		k.mutexLockAdvance(c, t, a.M)
	case ActUnlock:
		k.mutexUnlockAdvance(c, t, a.M)
	case ActCondWait:
		k.condWaitAdvance(c, t, a)
	case ActCondSignal:
		k.condSignalAdvance(c, t, a.C, false)
	case ActCondBroadcast:
		k.condSignalAdvance(c, t, a.C, true)
	case ActSpinWait:
		k.spinWaitAdvance(c, t, a)
	case ActSpinSet:
		k.spinSetAdvance(c, t, a.S)
	case ActIO:
		k.ioAdvance(c, t, a)
	case ActDequeue:
		k.dequeueAdvance(c, t, a.Q)
	case ActEnqueue:
		k.enqueueAdvance(c, t, a)
	case ActCall:
		k.callAdvance(c, t, a)
	default:
		panic(fmt.Sprintf("guest: unknown action %T", t.pending))
	}
}

// fetch pulls the next action from the program and starts executing it.
func (k *Kernel) fetch(c *cpu, t *Thread) {
	a := t.prog.Next(t)
	t.pending = a
	t.phase = 0
	switch a := a.(type) {
	case ActCompute:
		if a.D < 0 {
			panic("guest: negative compute duration")
		}
		t.segRemaining = a.D
		t.segKind = segWork
		k.startSegment(c)
	case ActExit:
		k.exitThread(c, t)
	default:
		// All synchronisation actions begin with a zero-length segment
		// so advance() runs them through their phase machines.
		t.segRemaining = 0
		t.segKind = segWork
		k.startSegment(c)
	}
}

// complete finishes the pending action and fetches the next one.
func (k *Kernel) complete(c *cpu, t *Thread) {
	t.pending = nil
	t.phase = 0
	k.fetch(c, t)
}

// exitThread retires t and invokes its completion callback.
func (k *Kernel) exitThread(c *cpu, t *Thread) {
	t.state = ThreadExited
	t.ExitAt = k.eng.Now()
	c.current = nil
	if t.onExit != nil {
		t.onExit(t)
	}
	k.pickNext(c)
}

// sleepCurrent blocks the current thread of c (it is off every queue)
// and schedules the next one.
func (k *Kernel) sleepCurrent(c *cpu, t *Thread) {
	if c.current != t {
		panic("guest: sleeping a non-current thread")
	}
	t.state = ThreadSleeping
	t.Sleeps++
	c.current = nil
	k.pickNext(c)
}

// resumeSegmentCost restarts t with an immediate extra cost, used when
// an action phase continues after a wakeup.
func resumeSegmentCost(t *Thread, cost sim.Time) {
	t.segRemaining = cost
	t.segKind = segWork
}

// chargeAndContinue sets up the next micro-segment of the pending action.
func (k *Kernel) chargeAndContinue(c *cpu, t *Thread, cost sim.Time) {
	resumeSegmentCost(t, cost)
	k.startSegment(c)
}
