package guest

import (
	"vscale/internal/core"
	"vscale/internal/costmodel"
)

// daemon is the vScale user-space daemon: a real-time task pinned to
// vCPU0 that polls the VM's CPU extendability through the vScale channel
// every period and instructs the balancer to freeze or unfreeze vCPUs.
// It is modelled as periodic highest-priority work on vCPU0 (the paper
// runs it in the RT scheduling class, which likewise preempts all
// fair-share threads), so its per-period cost lands on vCPU0 exactly as
// in Table 1.
type daemon struct {
	k   *Kernel
	gov *core.Governor

	// reconfiguring marks an in-flight slow reconfiguration (the
	// hotplug-path ablation); new decisions are skipped meanwhile.
	reconfiguring bool

	// stopped halts the poll loop permanently (VM retirement): the next
	// timer firing becomes a no-op and does not re-arm.
	stopped bool

	// Reads counts channel polls, Decisions counts reconcile actions.
	Reads, Decisions uint64
}

func newDaemon(k *Kernel) *daemon {
	cfg := k.cfg.VScale
	min := cfg.MinVCPUs
	if min < 1 {
		min = 1
	}
	return &daemon{
		k:   k,
		gov: core.NewGovernor(min, k.NCPUs(), k.NCPUs(), cfg.DownHysteresis),
	}
}

func (d *daemon) start() {
	d.schedule()
}

func (d *daemon) schedule() {
	k := d.k
	period := k.cfg.VScale.Period
	if period <= 0 {
		period = 10 * 1000 * 1000 // 10 ms
	}
	k.addTimer(k.cpus[0], k.eng.Now()+period, func() {
		if d.stopped {
			return
		}
		d.poll()
		d.schedule()
	})
}

// StopDaemon halts the vScale daemon's poll loop, if one is running. A
// retiring VM stops scaling itself so its frozen/active state no longer
// changes; the pending timer fires once more as a no-op and is not
// re-armed. Safe to call with the daemon disabled or already stopped.
func (k *Kernel) StopDaemon() {
	if k.daemon != nil {
		k.daemon.stopped = true
	}
}

// poll reads the vScale channel (syscall + hypercall, Table 1) and
// reconciles the active-vCPU count with the governor's target.
func (d *daemon) poll() {
	k := d.k
	master := k.cpus[0]
	d.Reads++
	k.chargeInterrupt(master, costmodel.ChannelRead)
	ext := k.dom.HypercallGetVScaleInfo()
	if ext.OptimalVCPUs == 0 {
		return // extension has not ticked yet
	}
	optimal := ext.OptimalVCPUs
	period := k.dom.Pool().Config().VScalePeriod
	if !k.cfg.VScale.UsePureCeil {
		margin := k.cfg.VScale.CeilMargin
		optimal = core.OptimalWithMargin(ext.Extend, period, margin, k.NCPUs())
	}
	if k.cfg.VScale.WeightOnly {
		// VCPU-Bal policy (ablation A1): size from the weight-based fair
		// share only, ignoring consumption-derived slack.
		optimal = int((ext.FairShare + period - 1) / period)
		if optimal < 1 {
			optimal = 1
		}
	}
	// Re-sync only if someone else changed the vCPU count (ForceCurrent
	// resets the down-hysteresis, so it must not run on every poll).
	if d.gov.Current() != k.ActiveVCPUs() && !d.reconfiguring {
		d.gov.ForceCurrent(k.ActiveVCPUs())
	}
	target := d.gov.Observe(optimal)
	d.reconcile(target)
}

// reconcile freezes the highest-numbered active vCPUs or unfreezes the
// lowest-numbered frozen ones until the active count matches target.
func (d *daemon) reconcile(target int) {
	k := d.k
	if d.reconfiguring {
		return
	}
	if delay := k.cfg.VScale.ReconfigDelay; delay != nil && k.ActiveVCPUs() != target {
		// Hotplug-path ablation: apply one reconfiguration step after
		// the sampled latency, then allow the next decision.
		d.reconfiguring = true
		d.Decisions++
		dly := delay(k.rand)
		k.eng.After(dly, "guest/slow-reconfig", func() {
			d.reconfiguring = false
			k.tracer().Hotplug(k.eng.Now(), k.dom.ID(), dly, "reconfig")
			if k.ActiveVCPUs() > target {
				for i := k.NCPUs() - 1; i >= 1; i-- {
					if !k.Frozen(i) {
						_ = k.FreezeVCPU(i)
						break
					}
				}
			} else if k.ActiveVCPUs() < target {
				for i := 1; i < k.NCPUs(); i++ {
					if k.Frozen(i) {
						_ = k.UnfreezeVCPU(i)
						break
					}
				}
			}
			d.gov.ForceCurrent(k.ActiveVCPUs())
		})
		return
	}
	for k.ActiveVCPUs() > target {
		victim := -1
		for i := k.NCPUs() - 1; i >= 1; i-- {
			if !k.Frozen(i) {
				victim = i
				break
			}
		}
		if victim < 0 {
			return
		}
		if err := k.FreezeVCPU(victim); err != nil {
			return
		}
		d.Decisions++
	}
	for k.ActiveVCPUs() < target {
		cand := -1
		for i := 1; i < k.NCPUs(); i++ {
			if k.Frozen(i) {
				cand = i
				break
			}
		}
		if cand < 0 {
			return
		}
		if err := k.UnfreezeVCPU(cand); err != nil {
			return
		}
		d.Decisions++
	}
}

// DaemonStats reports daemon activity (zero values when disabled).
func (k *Kernel) DaemonStats() (reads, decisions uint64) {
	if k.daemon == nil {
		return 0, 0
	}
	return k.daemon.Reads, k.daemon.Decisions
}
