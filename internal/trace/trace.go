// Package trace is the deterministic event-tracing subsystem of the
// vScale reproduction. All three layers of the stack feed it: the sim
// engine reports event dispatches (using the label every scheduled event
// already carries), the hypervisor reports vCPU state transitions,
// credit accounting, BOOST promotions, steals, event-channel sends and
// IPI delivery latencies, and the guest kernel reports freeze/unfreeze
// decisions, futex waits/wakes, spinlock hold/wait spans, lock-holder
// preemption incidents and hotplug-path reconfigurations.
//
// Records land in a bounded ring buffer (newest records win; a drop
// counter remembers what the ring forgot) and, in parallel, in an
// always-exact schedstats accounting layer (per-vCPU dwell times,
// wakeup-to-run latency, LHP and IPI latency statistics) that never
// drops anything because it only keeps aggregates.
//
// Everything is stamped with virtual time only, so two runs with the
// same seed produce byte-identical exports. A nil *Tracer is a valid,
// fully disabled tracer: every method is a no-op on a nil receiver, so
// hot paths pay one nil check and zero allocations when tracing is off.
package trace

import (
	"vscale/internal/sim"
)

// Kind classifies a trace record.
type Kind uint8

// Record kinds.
const (
	// KindState closes a vCPU dwell span: Arg is the VState the vCPU
	// just left, Dur is how long it dwelled there (span ends at At).
	KindState Kind = iota
	// KindCredit samples a vCPU's credit balance (Arg, virtual ns).
	KindCredit
	// KindBoost marks a BOOST priority promotion.
	KindBoost
	// KindMigrate marks a vCPU stolen across pCPUs: Arg is the source
	// pCPU, PCPU the destination.
	KindMigrate
	// KindEvtchn marks an event-channel send; Label is the port kind,
	// VCPU the bound target.
	KindEvtchn
	// KindIPIDelivery marks an IPI upcall reaching its vCPU; Arg is the
	// send-to-deliver latency in virtual ns.
	KindIPIDelivery
	// KindIRQDelivery is KindIPIDelivery for device interrupts.
	KindIRQDelivery
	// KindFrozen marks the hypervisor-side frozen flag changing
	// (Arg 1 = frozen, 0 = unfrozen).
	KindFrozen
	// KindFreezeOp marks the guest balancer's freeze/unfreeze decision
	// (Arg 1 = freeze, 0 = unfreeze).
	KindFreezeOp
	// KindFutexWait marks a thread parking on a futex.
	KindFutexWait
	// KindFutexWake marks a futex wake; Arg is the number woken.
	KindFutexWake
	// KindSpinWait closes a contended kernel-lock wait span (Dur).
	KindSpinWait
	// KindSpinHold closes a kernel-lock hold span (Dur).
	KindSpinHold
	// KindLHP closes a lock-holder-preemption span: the vCPU was
	// descheduled while holding a kernel lock for Dur.
	KindLHP
	// KindHotplug closes a hotplug-path reconfiguration span (Dur).
	KindHotplug
	// KindSim marks one sim-engine event dispatch; Label is the label
	// the event was scheduled with.
	KindSim
)

func (k Kind) String() string {
	switch k {
	case KindState:
		return "state"
	case KindCredit:
		return "credit"
	case KindBoost:
		return "boost"
	case KindMigrate:
		return "migrate"
	case KindEvtchn:
		return "evtchn"
	case KindIPIDelivery:
		return "ipi-delivery"
	case KindIRQDelivery:
		return "irq-delivery"
	case KindFrozen:
		return "frozen"
	case KindFreezeOp:
		return "freeze-op"
	case KindFutexWait:
		return "futex-wait"
	case KindFutexWake:
		return "futex-wake"
	case KindSpinWait:
		return "spin-wait"
	case KindSpinHold:
		return "spin-hold"
	case KindLHP:
		return "lhp"
	case KindHotplug:
		return "hotplug"
	case KindSim:
		return "sim"
	default:
		return "unknown"
	}
}

// VState is the tracing view of a vCPU's scheduling state. It extends
// the hypervisor's three states with FROZEN, the guest-visible overlay
// that vScale's balancer controls.
type VState uint8

// Dwell states.
const (
	VRun VState = iota
	VRunnable
	VBlocked
	VFrozen

	nVStates = 4
)

func (s VState) String() string {
	switch s {
	case VRun:
		return "RUN"
	case VRunnable:
		return "RUNNABLE"
	case VBlocked:
		return "BLOCKED"
	case VFrozen:
		return "FROZEN"
	default:
		return "?"
	}
}

// Event is one trace record. Spans carry a Dur ending at At; instants
// have Dur == 0. Dom/VCPU/PCPU are -1 when not applicable. Label is
// always a string that existed before the record was made (port kinds,
// scheduler-event labels), so recording never allocates.
type Event struct {
	At    sim.Time
	Dur   sim.Time
	Kind  Kind
	Dom   int32
	VCPU  int32
	PCPU  int32
	Arg   int64
	Label string
}

// DefaultRingCapacity bounds the ring when Config.RingCapacity is zero.
const DefaultRingCapacity = 1 << 16

// Config parameterises a Tracer.
type Config struct {
	// RingCapacity is the maximum number of records retained; once the
	// ring is full the oldest record is overwritten and the drop counter
	// incremented. <= 0 selects DefaultRingCapacity.
	RingCapacity int
}

// Tracer is the collector: a ring of raw records plus the schedstats
// aggregates. It is single-threaded, like the simulation feeding it.
// The zero *Tracer (nil) is a disabled tracer; every method is nil-safe.
type Tracer struct {
	cap     int
	buf     []Event
	start   int
	n       int
	total   uint64
	dropped uint64
	maxAt   sim.Time

	npcpus int
	doms   []*domAcc

	engScheduled, engCancelled, engFired uint64
	haveEngine                           bool
}

// New creates an enabled tracer.
func New(cfg Config) *Tracer {
	c := cfg.RingCapacity
	if c <= 0 {
		c = DefaultRingCapacity
	}
	return &Tracer{cap: c, buf: make([]Event, c)}
}

// Enabled reports whether t collects anything (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// push appends a record to the ring, overwriting the oldest when full.
func (t *Tracer) push(ev Event) {
	t.total++
	if ev.At > t.maxAt {
		t.maxAt = ev.At
	}
	if t.n < t.cap {
		t.buf[(t.start+t.n)%t.cap] = ev
		t.n++
		return
	}
	t.buf[t.start] = ev
	t.start = (t.start + 1) % t.cap
	t.dropped++
}

// Len returns the number of records currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Total returns the number of records ever pushed.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Dropped returns how many records the ring overwrote.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// MaxAt returns the timestamp of the newest record ever pushed.
func (t *Tracer) MaxAt() sim.Time {
	if t == nil {
		return 0
	}
	return t.maxAt
}

// Events returns the retained records, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(t.start+i)%t.cap])
	}
	return out
}

// ---------------------------------------------------------------------
// Topology registration
// ---------------------------------------------------------------------

// RegisterPCPUs declares the pool size so the exporter can emit one
// track per pCPU even before any of them ran anything.
func (t *Tracer) RegisterPCPUs(n int) {
	if t == nil {
		return
	}
	if n > t.npcpus {
		t.npcpus = n
	}
}

// RegisterDomain declares a domain and its vCPUs. All vCPUs start
// BLOCKED at now (how the hypervisor creates them). Re-registering the
// same id with the same name (e.g. a fresh scenario in the same
// process) resets the dwell clocks but keeps accumulated statistics.
func (t *Tracer) RegisterDomain(id int, name string, nvcpus int, now sim.Time) {
	if t == nil {
		return
	}
	for len(t.doms) <= id {
		t.doms = append(t.doms, nil)
	}
	d := t.doms[id]
	if d == nil || d.name != name {
		d = &domAcc{name: name}
		t.doms[id] = d
	}
	for len(d.vcpus) < nvcpus {
		d.vcpus = append(d.vcpus, &vcpuAcc{})
	}
	for _, a := range d.vcpus[:nvcpus] {
		a.hvState = VBlocked
		a.frozen = false
		a.since = now
	}
}

// acc returns the stats slot for (dom, vcpu), growing lazily so an
// unregistered emitter never crashes the run.
func (t *Tracer) acc(dom, vcpu int) *vcpuAcc {
	if dom < 0 || vcpu < 0 {
		return nil
	}
	for len(t.doms) <= dom {
		t.doms = append(t.doms, nil)
	}
	d := t.doms[dom]
	if d == nil {
		d = &domAcc{name: ""}
		t.doms[dom] = d
	}
	for len(d.vcpus) <= vcpu {
		d.vcpus = append(d.vcpus, &vcpuAcc{})
	}
	return d.vcpus[vcpu]
}

// ---------------------------------------------------------------------
// Hypervisor-layer emitters
// ---------------------------------------------------------------------

// VCPUState records a state transition: the vCPU leaves its current
// state for to at now on pcpu. The dwell time in the previous state is
// accounted and emitted as a span; a RUNNABLE->RUN transition also
// feeds the wakeup-to-run latency histogram.
func (t *Tracer) VCPUState(now sim.Time, dom, vcpu, pcpu int, to VState) {
	if t == nil {
		return
	}
	a := t.acc(dom, vcpu)
	if a == nil {
		return
	}
	prev := a.effective()
	d := now - a.since
	if d < 0 {
		d = 0
	}
	a.dwell[prev] += d
	if prev == VRunnable && to == VRun {
		a.wakeLat.Observe(d.Microseconds())
	}
	a.hvState = to
	a.since = now
	t.push(Event{At: now, Dur: d, Kind: KindState, Dom: int32(dom), VCPU: int32(vcpu), PCPU: int32(pcpu), Arg: int64(prev)})
}

// SetFrozen records the hypervisor-side frozen flag flipping. Dwell
// while frozen is charged to FROZEN regardless of the underlying
// scheduler state.
func (t *Tracer) SetFrozen(now sim.Time, dom, vcpu, pcpu int, frozen bool) {
	if t == nil {
		return
	}
	a := t.acc(dom, vcpu)
	if a == nil || a.frozen == frozen {
		return
	}
	prev := a.effective()
	d := now - a.since
	if d < 0 {
		d = 0
	}
	a.dwell[prev] += d
	a.frozen = frozen
	a.since = now
	arg := int64(0)
	if frozen {
		arg = 1
	}
	t.push(Event{At: now, Dur: d, Kind: KindFrozen, Dom: int32(dom), VCPU: int32(vcpu), PCPU: int32(pcpu), Arg: arg})
}

// CreditTick samples a vCPU's credit balance after accounting.
func (t *Tracer) CreditTick(now sim.Time, dom, vcpu int, credits sim.Time) {
	if t == nil {
		return
	}
	t.push(Event{At: now, Kind: KindCredit, Dom: int32(dom), VCPU: int32(vcpu), PCPU: -1, Arg: int64(credits)})
}

// Boost records a BOOST priority promotion.
func (t *Tracer) Boost(now sim.Time, dom, vcpu int) {
	if t == nil {
		return
	}
	t.push(Event{At: now, Kind: KindBoost, Dom: int32(dom), VCPU: int32(vcpu), PCPU: -1})
}

// Migrate records a vCPU steal from pCPU from to pCPU to.
func (t *Tracer) Migrate(now sim.Time, dom, vcpu, from, to int) {
	if t == nil {
		return
	}
	a := t.acc(dom, vcpu)
	if a != nil {
		a.steals++
	}
	t.push(Event{At: now, Kind: KindMigrate, Dom: int32(dom), VCPU: int32(vcpu), PCPU: int32(to), Arg: int64(from)})
}

// EvtchnSend records an event-channel notification; kind must be a
// pre-existing string (port kinds are constants).
func (t *Tracer) EvtchnSend(now sim.Time, dom, target int, kind string) {
	if t == nil {
		return
	}
	t.push(Event{At: now, Kind: KindEvtchn, Dom: int32(dom), VCPU: int32(target), PCPU: -1, Label: kind})
}

// IPIDelivery records an IPI upcall reaching vcpu lat after the send.
func (t *Tracer) IPIDelivery(now sim.Time, dom, vcpu int, lat sim.Time) {
	if t == nil {
		return
	}
	if a := t.acc(dom, vcpu); a != nil {
		a.ipiLat.Observe(lat.Microseconds())
	}
	t.push(Event{At: now, Dur: lat, Kind: KindIPIDelivery, Dom: int32(dom), VCPU: int32(vcpu), PCPU: -1, Arg: int64(lat)})
}

// IRQDelivery records a device-interrupt upcall latency.
func (t *Tracer) IRQDelivery(now sim.Time, dom, vcpu int, lat sim.Time) {
	if t == nil {
		return
	}
	t.push(Event{At: now, Dur: lat, Kind: KindIRQDelivery, Dom: int32(dom), VCPU: int32(vcpu), PCPU: -1, Arg: int64(lat)})
}

// ---------------------------------------------------------------------
// Guest-layer emitters
// ---------------------------------------------------------------------

// FreezeOp records the balancer's freeze/unfreeze decision for a vCPU.
func (t *Tracer) FreezeOp(now sim.Time, dom, vcpu int, freeze bool) {
	if t == nil {
		return
	}
	arg := int64(0)
	if a := t.acc(dom, vcpu); a != nil {
		if freeze {
			a.freezes++
		} else {
			a.unfreezes++
		}
	}
	if freeze {
		arg = 1
	}
	t.push(Event{At: now, Kind: KindFreezeOp, Dom: int32(dom), VCPU: int32(vcpu), PCPU: -1, Arg: arg})
}

// FutexWait records a thread parking on a futex from cpu.
func (t *Tracer) FutexWait(now sim.Time, dom, cpu int) {
	if t == nil {
		return
	}
	if a := t.acc(dom, cpu); a != nil {
		a.futexWaits++
	}
	t.push(Event{At: now, Kind: KindFutexWait, Dom: int32(dom), VCPU: int32(cpu), PCPU: -1})
}

// FutexWake records cpu waking n futex sleepers.
func (t *Tracer) FutexWake(now sim.Time, dom, cpu, n int) {
	if t == nil {
		return
	}
	if a := t.acc(dom, cpu); a != nil {
		a.futexWakes += uint64(n)
	}
	t.push(Event{At: now, Kind: KindFutexWake, Dom: int32(dom), VCPU: int32(cpu), PCPU: -1, Arg: int64(n)})
}

// SpinWait closes a contended kernel-lock wait span on cpu.
func (t *Tracer) SpinWait(now sim.Time, dom, cpu int, dur sim.Time, lock string) {
	if t == nil {
		return
	}
	t.push(Event{At: now, Dur: dur, Kind: KindSpinWait, Dom: int32(dom), VCPU: int32(cpu), PCPU: -1, Label: lock})
}

// SpinHold closes a kernel-lock hold span on cpu.
func (t *Tracer) SpinHold(now sim.Time, dom, cpu int, dur sim.Time, lock string) {
	if t == nil {
		return
	}
	t.push(Event{At: now, Dur: dur, Kind: KindSpinHold, Dom: int32(dom), VCPU: int32(cpu), PCPU: -1, Label: lock})
}

// LHP closes a lock-holder-preemption span: vcpu was descheduled for
// dur while holding at least one kernel lock.
func (t *Tracer) LHP(now sim.Time, dom, vcpu int, dur sim.Time) {
	if t == nil {
		return
	}
	if a := t.acc(dom, vcpu); a != nil {
		a.lhpCount++
		a.lhpTotal += dur
		if dur > a.lhpMax {
			a.lhpMax = dur
		}
	}
	t.push(Event{At: now, Dur: dur, Kind: KindLHP, Dom: int32(dom), VCPU: int32(vcpu), PCPU: -1})
}

// Hotplug closes a hotplug-path reconfiguration span (the slow
// alternative to the vScale balancer).
func (t *Tracer) Hotplug(now sim.Time, dom int, dur sim.Time, phase string) {
	if t == nil {
		return
	}
	t.push(Event{At: now, Dur: dur, Kind: KindHotplug, Dom: int32(dom), VCPU: -1, PCPU: -1, Label: phase})
}

// ---------------------------------------------------------------------
// Sim-layer emitters
// ---------------------------------------------------------------------

// SimEvent records one engine event dispatch. The signature matches
// sim.Observer so it can be installed directly.
func (t *Tracer) SimEvent(now sim.Time, label string) {
	if t == nil {
		return
	}
	t.push(Event{At: now, Kind: KindSim, Dom: -1, VCPU: -1, PCPU: -1, Label: label})
}

// SetEngineCounters stores the engine's scheduled/cancelled/fired event
// counts for the exporters (call once before exporting).
func (t *Tracer) SetEngineCounters(scheduled, cancelled, fired uint64) {
	if t == nil {
		return
	}
	t.engScheduled, t.engCancelled, t.engFired = scheduled, cancelled, fired
	t.haveEngine = true
}
