package trace

import (
	"vscale/internal/metrics"
	"vscale/internal/sim"
)

// domAcc aggregates per-domain schedstats.
type domAcc struct {
	name  string
	vcpus []*vcpuAcc
}

// vcpuAcc is the always-exact accounting for one vCPU. Unlike the ring,
// it never drops: it only keeps aggregates.
type vcpuAcc struct {
	hvState VState // hypervisor state (RUN/RUNNABLE/BLOCKED)
	frozen  bool
	since   sim.Time

	dwell   [nVStates]sim.Time
	wakeLat metrics.Sample // RUNNABLE->RUN dwell, µs
	ipiLat  metrics.Sample // IPI send->deliver, µs

	lhpCount uint64
	lhpTotal sim.Time
	lhpMax   sim.Time

	steals             uint64
	freezes, unfreezes uint64
	futexWaits         uint64
	futexWakes         uint64
}

// effective maps (hypervisor state, frozen flag) to the dwell state:
// while frozen the vCPU is accounted FROZEN whatever the scheduler
// thinks (it may be briefly RUNNABLE/RUN while draining).
func (a *vcpuAcc) effective() VState {
	if a.frozen {
		return VFrozen
	}
	return a.hvState
}

// VCPUStat is the finalized schedstats row of one vCPU.
type VCPUStat struct {
	Dom     int
	DomName string
	VCPU    int

	// Dwell is the time spent in each VState; the in-progress dwell is
	// closed at the snapshot's End, so the entries sum to End minus the
	// vCPU's registration time.
	Dwell [nVStates]sim.Time
	// Total is the sum of Dwell.
	Total sim.Time

	// Wakeup-to-run latency (µs): dwell in RUNNABLE on transitions into
	// RUN.
	WakeCount                        uint64
	WakeMeanUs, WakeP50Us, WakeP99Us float64
	WakeMaxUs                        float64

	// Lock-holder preemption incidents (descheduled holding a lock).
	LHPCount uint64
	LHPTotal sim.Time
	LHPMax   sim.Time

	// IPI send-to-deliver latency (µs).
	IPICount            uint64
	IPIMeanUs, IPIP99Us float64

	Steals             uint64
	Freezes, Unfreezes uint64
	FutexWaits         uint64
	FutexWakes         uint64
}

// DwellOf returns the dwell time in state s.
func (v *VCPUStat) DwellOf(s VState) sim.Time { return v.Dwell[s] }

// Snapshot is the finalized schedstats view, safe to render repeatedly.
type Snapshot struct {
	End   sim.Time
	VCPUs []VCPUStat

	// Ring accounting.
	RingTotal    uint64
	RingDropped  uint64
	RingRetained int

	// Engine accounting (zero unless SetEngineCounters was called).
	HaveEngine                           bool
	EngScheduled, EngCancelled, EngFired uint64
}

// Snapshot finalizes the schedstats at end: every in-progress dwell is
// closed at end without mutating the live accounting, so tracing can
// continue afterwards.
func (t *Tracer) Snapshot(end sim.Time) *Snapshot {
	if t == nil {
		return &Snapshot{}
	}
	s := &Snapshot{
		End:          end,
		RingTotal:    t.total,
		RingDropped:  t.dropped,
		RingRetained: t.n,
		HaveEngine:   t.haveEngine,
		EngScheduled: t.engScheduled,
		EngCancelled: t.engCancelled,
		EngFired:     t.engFired,
	}
	for domID, d := range t.doms {
		if d == nil {
			continue
		}
		for vcpuID, a := range d.vcpus {
			row := VCPUStat{
				Dom:        domID,
				DomName:    d.name,
				VCPU:       vcpuID,
				Dwell:      a.dwell,
				LHPCount:   a.lhpCount,
				LHPTotal:   a.lhpTotal,
				LHPMax:     a.lhpMax,
				Steals:     a.steals,
				Freezes:    a.freezes,
				Unfreezes:  a.unfreezes,
				FutexWaits: a.futexWaits,
				FutexWakes: a.futexWakes,
			}
			if tail := end - a.since; tail > 0 {
				row.Dwell[a.effective()] += tail
			}
			for _, dw := range row.Dwell {
				row.Total += dw
			}
			row.WakeCount = uint64(a.wakeLat.Count())
			if row.WakeCount > 0 {
				row.WakeMeanUs = a.wakeLat.Mean()
				row.WakeP50Us = a.wakeLat.Quantile(0.5)
				row.WakeP99Us = a.wakeLat.Quantile(0.99)
				row.WakeMaxUs = a.wakeLat.Max()
			}
			row.IPICount = uint64(a.ipiLat.Count())
			if row.IPICount > 0 {
				row.IPIMeanUs = a.ipiLat.Mean()
				row.IPIP99Us = a.ipiLat.Quantile(0.99)
			}
			s.VCPUs = append(s.VCPUs, row)
		}
	}
	return s
}
