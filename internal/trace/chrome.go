package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"vscale/internal/sim"
)

// Chrome trace-event export: the output loads in Perfetto
// (https://ui.perfetto.dev) and chrome://tracing. Track layout:
//
//	pid 1 "pCPUs"        one tid per physical CPU; RUN spans show which
//	                     vCPU occupied the pCPU and when
//	pid 2 "sim.engine"   tid 0; one instant per engine event dispatch
//	pid 10+d "<domain>"  one tid per vCPU; dwell spans (RUN/RUNNABLE/
//	                     BLOCKED/FROZEN), LHP/spin spans, futex/evtchn/
//	                     boost instants and a credit counter track
//
// Timestamps are virtual microseconds; the export is byte-identical for
// identical seeds because everything derives from virtual time and the
// deterministic ring order.
const (
	pidPCPU = 1
	pidSim  = 2
	pidDom  = 10 // + domain id
)

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// WriteChrome exports the ring as Chrome trace-event JSON. end is the
// final virtual timestamp of the run (used in the summary only; spans
// are self-contained).
func (t *Tracer) WriteChrome(w io.Writer, end sim.Time) error {
	out := chromeTrace{
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{},
	}
	if t == nil {
		out.OtherData["enabled"] = "false"
		return writeJSON(w, &out)
	}

	add := func(ev chromeEvent) { out.TraceEvents = append(out.TraceEvents, ev) }
	meta := func(pid, tid int, key, name string) {
		add(chromeEvent{Name: key, Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": name}})
	}

	// Track metadata: every pCPU, the sim engine, and every registered
	// vCPU get a named track even if the ring holds no record for them.
	meta(pidPCPU, 0, "process_name", "pCPUs")
	for p := 0; p < t.npcpus; p++ {
		meta(pidPCPU, p, "thread_name", fmt.Sprintf("pcpu%d", p))
	}
	meta(pidSim, 0, "process_name", "sim.engine")
	meta(pidSim, 0, "thread_name", "events")
	for domID, d := range t.doms {
		if d == nil {
			continue
		}
		name := d.name
		if name == "" {
			name = fmt.Sprintf("dom%d", domID)
		}
		meta(pidDom+domID, 0, "process_name", name)
		for v := range d.vcpus {
			meta(pidDom+domID, v, "thread_name", fmt.Sprintf("%s.vcpu%d", name, v))
		}
	}

	if t.dropped > 0 {
		// Annotate the drop so a reader knows the window is truncated.
		first := t.buf[t.start]
		add(chromeEvent{
			Name: "ring-dropped", Ph: "i", Ts: first.At.Microseconds(),
			Pid: pidSim, Tid: 0, Cat: "trace",
			Args: map[string]any{"dropped_events": t.dropped, "retained": t.n},
		})
	}

	for i := 0; i < t.n; i++ {
		ev := t.buf[(t.start+i)%t.cap]
		dom := int(ev.Dom)
		vcpu := int(ev.VCPU)
		domPid := pidDom + dom
		vcpuName := t.vcpuName(dom, vcpu)
		switch ev.Kind {
		case KindState:
			prev := VState(ev.Arg)
			add(chromeEvent{
				Name: prev.String(), Ph: "X",
				Ts: (ev.At - ev.Dur).Microseconds(), Dur: ev.Dur.Microseconds(),
				Pid: domPid, Tid: vcpu, Cat: "vcpu-state",
			})
			if prev == VRun && ev.PCPU >= 0 {
				add(chromeEvent{
					Name: vcpuName, Ph: "X",
					Ts: (ev.At - ev.Dur).Microseconds(), Dur: ev.Dur.Microseconds(),
					Pid: pidPCPU, Tid: int(ev.PCPU), Cat: "pcpu-run",
				})
			}
		case KindFrozen:
			name := "unfrozen"
			if ev.Arg == 1 {
				name = "frozen"
			}
			add(chromeEvent{Name: name, Ph: "i", Ts: ev.At.Microseconds(), Pid: domPid, Tid: vcpu, Cat: "vscale"})
		case KindFreezeOp:
			name := "balancer-unfreeze"
			if ev.Arg == 1 {
				name = "balancer-freeze"
			}
			add(chromeEvent{Name: name, Ph: "i", Ts: ev.At.Microseconds(), Pid: domPid, Tid: vcpu, Cat: "vscale"})
		case KindCredit:
			add(chromeEvent{
				Name: fmt.Sprintf("credits.vcpu%d", vcpu), Ph: "C", Ts: ev.At.Microseconds(),
				Pid: domPid, Tid: vcpu, Cat: "credit",
				Args: map[string]any{"us": sim.Time(ev.Arg).Microseconds()},
			})
		case KindBoost:
			add(chromeEvent{Name: "BOOST", Ph: "i", Ts: ev.At.Microseconds(), Pid: domPid, Tid: vcpu, Cat: "priority"})
		case KindMigrate:
			add(chromeEvent{
				Name: "steal", Ph: "i", Ts: ev.At.Microseconds(), Pid: domPid, Tid: vcpu, Cat: "migrate",
				Args: map[string]any{"from_pcpu": ev.Arg, "to_pcpu": ev.PCPU},
			})
		case KindEvtchn:
			add(chromeEvent{
				Name: "evtchn:" + ev.Label, Ph: "i", Ts: ev.At.Microseconds(),
				Pid: domPid, Tid: vcpu, Cat: "evtchn",
			})
		case KindIPIDelivery:
			add(chromeEvent{
				Name: "ipi-delivery", Ph: "i", Ts: ev.At.Microseconds(), Pid: domPid, Tid: vcpu, Cat: "evtchn",
				Args: map[string]any{"latency_us": sim.Time(ev.Arg).Microseconds()},
			})
		case KindIRQDelivery:
			add(chromeEvent{
				Name: "irq-delivery", Ph: "i", Ts: ev.At.Microseconds(), Pid: domPid, Tid: vcpu, Cat: "evtchn",
				Args: map[string]any{"latency_us": sim.Time(ev.Arg).Microseconds()},
			})
		case KindFutexWait:
			add(chromeEvent{Name: "futex-wait", Ph: "i", Ts: ev.At.Microseconds(), Pid: domPid, Tid: vcpu, Cat: "futex"})
		case KindFutexWake:
			add(chromeEvent{
				Name: "futex-wake", Ph: "i", Ts: ev.At.Microseconds(), Pid: domPid, Tid: vcpu, Cat: "futex",
				Args: map[string]any{"woken": ev.Arg},
			})
		case KindSpinWait:
			add(chromeEvent{
				Name: "spin-wait:" + ev.Label, Ph: "X",
				Ts: (ev.At - ev.Dur).Microseconds(), Dur: ev.Dur.Microseconds(),
				Pid: domPid, Tid: vcpu, Cat: "lock",
			})
		case KindSpinHold:
			add(chromeEvent{
				Name: "hold:" + ev.Label, Ph: "X",
				Ts: (ev.At - ev.Dur).Microseconds(), Dur: ev.Dur.Microseconds(),
				Pid: domPid, Tid: vcpu, Cat: "lock",
			})
		case KindLHP:
			add(chromeEvent{
				Name: "LHP", Ph: "X",
				Ts: (ev.At - ev.Dur).Microseconds(), Dur: ev.Dur.Microseconds(),
				Pid: domPid, Tid: vcpu, Cat: "lock",
			})
		case KindHotplug:
			add(chromeEvent{
				Name: "hotplug:" + ev.Label, Ph: "X",
				Ts: (ev.At - ev.Dur).Microseconds(), Dur: ev.Dur.Microseconds(),
				Pid: domPid, Tid: 0, Cat: "hotplug",
			})
		case KindSim:
			add(chromeEvent{Name: ev.Label, Ph: "i", Ts: ev.At.Microseconds(), Pid: pidSim, Tid: 0, Cat: "sim"})
		}
	}

	out.OtherData["end_us"] = fmt.Sprintf("%.3f", end.Microseconds())
	out.OtherData["ring_total"] = fmt.Sprintf("%d", t.total)
	out.OtherData["ring_dropped"] = fmt.Sprintf("%d", t.dropped)
	if t.haveEngine {
		out.OtherData["engine_scheduled"] = fmt.Sprintf("%d", t.engScheduled)
		out.OtherData["engine_cancelled"] = fmt.Sprintf("%d", t.engCancelled)
		out.OtherData["engine_fired"] = fmt.Sprintf("%d", t.engFired)
	}
	return writeJSON(w, &out)
}

func (t *Tracer) vcpuName(dom, vcpu int) string {
	name := ""
	if dom >= 0 && dom < len(t.doms) && t.doms[dom] != nil {
		name = t.doms[dom].name
	}
	if name == "" {
		name = fmt.Sprintf("dom%d", dom)
	}
	return fmt.Sprintf("%s.vcpu%d", name, vcpu)
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(v)
}
