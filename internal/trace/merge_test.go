package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vscale/internal/sim"
)

func ms(n int64) sim.Time { return sim.Time(n) * sim.Millisecond }

// makeRun builds a small per-run tracer as the parallel harness would:
// 2 pCPUs, one 2-vCPU domain, a couple of state transitions and a steal.
func makeRun(name string, endMs int64) *Tracer {
	tr := New(Config{RingCapacity: 32})
	tr.RegisterPCPUs(2)
	tr.RegisterDomain(0, name, 2, 0)
	tr.VCPUState(ms(1), 0, 0, 0, VRunnable)
	tr.VCPUState(ms(2), 0, 0, 0, VRun)
	tr.Migrate(ms(3), 0, 1, 0, 1)
	tr.VCPUState(ms(endMs), 0, 0, 0, VBlocked)
	tr.SetEngineCounters(10, 1, 9)
	return tr
}

// TestMergeRemapsIDs: domain ids, pCPU ids and migrate source-pCPU args
// land on disjoint per-run ranges, and names gain the run prefix.
func TestMergeRemapsIDs(t *testing.T) {
	a := makeRun("vm", 10)
	b := makeRun("vm", 20)
	m := Merge(a, b)
	if m == nil {
		t.Fatal("Merge returned nil for live parts")
	}

	if got := len(m.doms); got != 2 {
		t.Fatalf("merged domains = %d, want 2", got)
	}
	if m.doms[0].name != "run0/vm" || m.doms[1].name != "run1/vm" {
		t.Fatalf("merged names = %q, %q, want run-prefixed", m.doms[0].name, m.doms[1].name)
	}
	if m.npcpus != 4 {
		t.Fatalf("merged npcpus = %d, want 4", m.npcpus)
	}

	evs := m.Events()
	if len(evs) != int(a.Total()+b.Total()) {
		t.Fatalf("merged ring holds %d records, want %d", len(evs), a.Total()+b.Total())
	}
	// First half is run 0 untouched, second half run 1 offset.
	half := len(evs) / 2
	for i, ev := range evs {
		wantDom := int32(0)
		pcpuOff := int32(0)
		if i >= half {
			wantDom, pcpuOff = 1, 2
		}
		if ev.Dom != wantDom {
			t.Fatalf("event %d dom = %d, want %d", i, ev.Dom, wantDom)
		}
		if ev.Kind == KindMigrate {
			if ev.PCPU != 1+pcpuOff || ev.Arg != int64(0+pcpuOff) {
				t.Fatalf("event %d migrate dest/src = %d/%d, want %d/%d",
					i, ev.PCPU, ev.Arg, 1+pcpuOff, 0+pcpuOff)
			}
		}
	}

	if m.Total() != a.Total()+b.Total() {
		t.Fatalf("merged total = %d", m.Total())
	}
	if m.MaxAt() != ms(20) {
		t.Fatalf("merged MaxAt = %v, want 20ms", m.MaxAt())
	}

	snap := m.Snapshot(m.MaxAt())
	if !snap.HaveEngine || snap.EngScheduled != 20 || snap.EngCancelled != 2 || snap.EngFired != 18 {
		t.Fatalf("engine counters not summed: %+v", snap)
	}
}

// TestMergeDwellClosure: each part's in-progress dwell closes at that
// part's own end, and Snapshot(m.MaxAt()) adds no spurious tail — run
// a's vCPU stops accumulating at 10ms even though the merged end is
// 20ms.
func TestMergeDwellClosure(t *testing.T) {
	a := makeRun("vm", 10)
	b := makeRun("vm", 20)
	m := Merge(a, b)
	snap := m.Snapshot(m.MaxAt())
	if len(snap.VCPUs) != 4 {
		t.Fatalf("snapshot rows = %d, want 4", len(snap.VCPUs))
	}
	var runA, runB *VCPUStat
	for i := range snap.VCPUs {
		v := &snap.VCPUs[i]
		if v.VCPU != 0 {
			continue
		}
		switch v.DomName {
		case "run0/vm":
			runA = v
		case "run1/vm":
			runB = v
		}
	}
	if runA == nil || runB == nil {
		t.Fatalf("missing per-run rows: %+v", snap.VCPUs)
	}
	// vCPU0 lifecycle: BLOCKED 0-1, RUNNABLE 1-2, RUN 2-end, BLOCKED tail 0.
	if runA.Total != ms(10) {
		t.Errorf("run a dwell total = %v, want exactly its own 10ms", runA.Total)
	}
	if runB.Total != ms(20) {
		t.Errorf("run b dwell total = %v, want 20ms", runB.Total)
	}
	if runA.Dwell[VRun] != ms(8) || runB.Dwell[VRun] != ms(18) {
		t.Errorf("RUN dwell = %v / %v, want 8ms / 18ms", runA.Dwell[VRun], runB.Dwell[VRun])
	}
	// Wake latency samples survive the merge.
	if runA.WakeCount != 1 || runB.WakeCount != 1 {
		t.Errorf("wake counts = %d / %d, want 1 / 1", runA.WakeCount, runB.WakeCount)
	}
}

// TestMergeSinglePartKeepsNames: merging one tracer is a plain copy —
// no run prefix, ids untouched.
func TestMergeSinglePartKeepsNames(t *testing.T) {
	m := Merge(nil, makeRun("vm", 10), nil)
	if m.doms[0].name != "vm" {
		t.Fatalf("single-part merge renamed the domain to %q", m.doms[0].name)
	}
	if m.npcpus != 2 || len(m.Events()) != 4 {
		t.Fatalf("single-part merge altered topology/ring: npcpus=%d events=%d", m.npcpus, len(m.Events()))
	}
}

// TestMergeNilAndEmpty: all-nil input yields nil; empty tracers merge
// without panicking.
func TestMergeNilAndEmpty(t *testing.T) {
	if m := Merge(nil, nil); m != nil {
		t.Fatal("Merge of nils should be nil")
	}
	m := Merge(New(Config{RingCapacity: 4}), New(Config{RingCapacity: 4}))
	if m == nil || m.Total() != 0 {
		t.Fatalf("empty merge: %v", m)
	}
}

// TestMergeChromeExport: the merged tracer exports valid Chrome JSON
// with per-run track names.
func TestMergeChromeExport(t *testing.T) {
	m := Merge(makeRun("vm", 10), makeRun("vm", 20))
	var buf bytes.Buffer
	if err := m.WriteChrome(&buf, m.MaxAt()); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("merged export is not JSON: %v", err)
	}
	s := buf.String()
	for _, want := range []string{"run0/vm", "run1/vm", "run0/vm.vcpu0", "run1/vm.vcpu1"} {
		if !strings.Contains(s, want) {
			t.Errorf("merged export lacks track %q", want)
		}
	}
}
