package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vscale/internal/sim"
)

// TestNilTracerIsDisabled: a nil *Tracer must be a fully working,
// fully disabled tracer — every method a no-op, the export still valid.
func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.RegisterPCPUs(4)
	tr.RegisterDomain(0, "vm", 2, 0)
	tr.VCPUState(10, 0, 0, 0, VRun)
	tr.SetFrozen(20, 0, 1, 0, true)
	tr.CreditTick(30, 0, 0, 5*sim.Millisecond)
	tr.Boost(40, 0, 0)
	tr.Migrate(50, 0, 0, 0, 1)
	tr.EvtchnSend(60, 0, 0, "ipi")
	tr.IPIDelivery(70, 0, 0, sim.Microsecond)
	tr.IRQDelivery(80, 0, 0, sim.Microsecond)
	tr.FreezeOp(90, 0, 1, true)
	tr.FutexWait(100, 0, 0)
	tr.FutexWake(110, 0, 0, 3)
	tr.SpinWait(120, 0, 0, sim.Microsecond, "l")
	tr.SpinHold(130, 0, 0, sim.Microsecond, "l")
	tr.LHP(140, 0, 0, sim.Millisecond)
	tr.Hotplug(150, 0, sim.Millisecond, "reconfig")
	tr.SimEvent(160, "x")
	tr.SetEngineCounters(1, 2, 3)
	if tr.Len() != 0 || tr.Total() != 0 || tr.Dropped() != 0 || tr.MaxAt() != 0 {
		t.Fatal("nil tracer accumulated state")
	}
	if tr.Events() != nil {
		t.Fatal("nil tracer returned events")
	}
	snap := tr.Snapshot(200)
	if len(snap.VCPUs) != 0 {
		t.Fatal("nil tracer snapshot has vCPUs")
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, 200); err != nil {
		t.Fatalf("nil WriteChrome: %v", err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("nil WriteChrome output is not JSON: %v", err)
	}
}

// TestRingOverflow: a capacity-N ring under N+k records keeps the
// newest N, counts k drops, and the exporter annotates the loss.
func TestRingOverflow(t *testing.T) {
	const capacity, pushes = 8, 13
	tr := New(Config{RingCapacity: capacity})
	labels := []string{"e0", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12"}
	for i := 0; i < pushes; i++ {
		tr.SimEvent(sim.Time(i)*sim.Microsecond, labels[i])
	}
	if tr.Len() != capacity {
		t.Fatalf("Len = %d, want %d", tr.Len(), capacity)
	}
	if tr.Total() != pushes {
		t.Fatalf("Total = %d, want %d", tr.Total(), pushes)
	}
	if want := uint64(pushes - capacity); tr.Dropped() != want {
		t.Fatalf("Dropped = %d, want %d", tr.Dropped(), want)
	}
	evs := tr.Events()
	if len(evs) != capacity {
		t.Fatalf("Events len = %d, want %d", len(evs), capacity)
	}
	for i, ev := range evs {
		if want := labels[pushes-capacity+i]; ev.Label != want {
			t.Fatalf("event %d label = %q, want %q (newest-wins, oldest-first)", i, ev.Label, want)
		}
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, 13*sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ring-dropped") {
		t.Fatal("export of an overflowed ring lacks the ring-dropped annotation")
	}
	var out struct {
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.OtherData["ring_dropped"] != "5" {
		t.Fatalf("otherData ring_dropped = %q, want \"5\"", out.OtherData["ring_dropped"])
	}
}

// TestDwellAccounting drives a scripted RUN/RUNNABLE/BLOCKED life and
// checks per-state dwell, the wakeup-to-run latency feed, and that the
// dwell sum equals the elapsed time exactly.
func TestDwellAccounting(t *testing.T) {
	tr := New(Config{RingCapacity: 64})
	tr.RegisterDomain(0, "vm", 1, 0)

	ms := func(n int64) sim.Time { return sim.Time(n) * sim.Millisecond }
	// BLOCKED 0-10, RUNNABLE 10-14, RUN 14-30, RUNNABLE 30-31, RUN 31-40,
	// BLOCKED from 40; snapshot at 50.
	tr.VCPUState(ms(10), 0, 0, 0, VRunnable)
	tr.VCPUState(ms(14), 0, 0, 0, VRun)
	tr.VCPUState(ms(30), 0, 0, 0, VRunnable)
	tr.VCPUState(ms(31), 0, 0, 0, VRun)
	tr.VCPUState(ms(40), 0, 0, 0, VBlocked)
	snap := tr.Snapshot(ms(50))
	if len(snap.VCPUs) != 1 {
		t.Fatalf("snapshot has %d vCPUs, want 1", len(snap.VCPUs))
	}
	v := snap.VCPUs[0]
	if v.Dwell[VRun] != ms(25) {
		t.Errorf("RUN dwell = %v, want 25ms", v.Dwell[VRun])
	}
	if v.Dwell[VRunnable] != ms(5) {
		t.Errorf("RUNNABLE dwell = %v, want 5ms", v.Dwell[VRunnable])
	}
	if v.Dwell[VBlocked] != ms(20) {
		t.Errorf("BLOCKED dwell = %v, want 20ms (10 + open tail 10)", v.Dwell[VBlocked])
	}
	if v.Total != ms(50) {
		t.Errorf("dwell sum = %v, want exactly the elapsed 50ms", v.Total)
	}
	if v.WakeCount != 2 {
		t.Errorf("wake count = %d, want 2", v.WakeCount)
	}
	if want := (4000.0 + 1000.0) / 2; v.WakeMeanUs != want {
		t.Errorf("wake mean = %.1fus, want %.1fus", v.WakeMeanUs, want)
	}

	// Snapshot must not mutate the live accounting: a second snapshot at
	// the same end is identical.
	again := tr.Snapshot(ms(50))
	if again.VCPUs[0].Dwell != v.Dwell {
		t.Error("second snapshot differs: Snapshot mutated live state")
	}
}

// TestFrozenOverlay: while the frozen flag is set, dwell is charged to
// FROZEN regardless of the hypervisor-side state underneath.
func TestFrozenOverlay(t *testing.T) {
	tr := New(Config{RingCapacity: 64})
	tr.RegisterDomain(0, "vm", 2, 0)
	ms := func(n int64) sim.Time { return sim.Time(n) * sim.Millisecond }

	tr.VCPUState(ms(0), 0, 1, 3, VRun)
	tr.SetFrozen(ms(10), 0, 1, 3, true)
	// Scheduler churn while frozen must all land in FROZEN.
	tr.VCPUState(ms(12), 0, 1, 3, VRunnable)
	tr.VCPUState(ms(15), 0, 1, 3, VBlocked)
	tr.SetFrozen(ms(30), 0, 1, 3, false)
	snap := tr.Snapshot(ms(40))
	v := snap.VCPUs[1]
	if v.Dwell[VFrozen] != ms(20) {
		t.Errorf("FROZEN dwell = %v, want 20ms", v.Dwell[VFrozen])
	}
	if v.Dwell[VRun] != ms(10) {
		t.Errorf("RUN dwell = %v, want 10ms", v.Dwell[VRun])
	}
	if v.Dwell[VBlocked] != ms(10) {
		t.Errorf("BLOCKED dwell = %v, want 10ms (tail after unfreeze)", v.Dwell[VBlocked])
	}
	if v.Total != ms(40) {
		t.Errorf("dwell sum = %v, want 40ms", v.Total)
	}
	// A frozen RUNNABLE->RUN hop is not a wakeup.
	if v.WakeCount != 0 {
		t.Errorf("wake count = %d, want 0", v.WakeCount)
	}
}

// TestLHPAccounting: LHP spans accumulate count/total/max.
func TestLHPAccounting(t *testing.T) {
	tr := New(Config{RingCapacity: 16})
	tr.RegisterDomain(0, "vm", 1, 0)
	tr.LHP(10*sim.Millisecond, 0, 0, 3*sim.Millisecond)
	tr.LHP(20*sim.Millisecond, 0, 0, 7*sim.Millisecond)
	v := tr.Snapshot(30 * sim.Millisecond).VCPUs[0]
	if v.LHPCount != 2 || v.LHPTotal != 10*sim.Millisecond || v.LHPMax != 7*sim.Millisecond {
		t.Fatalf("LHP = (%d, %v, %v), want (2, 10ms, 7ms)", v.LHPCount, v.LHPTotal, v.LHPMax)
	}
}

// TestChromeExportTracks: the export parses as JSON and declares one
// named track per pCPU and per registered vCPU.
func TestChromeExportTracks(t *testing.T) {
	tr := New(Config{RingCapacity: 64})
	tr.RegisterPCPUs(3)
	tr.RegisterDomain(0, "vm", 2, 0)
	tr.RegisterDomain(1, "bg0", 2, 0)
	tr.VCPUState(5*sim.Millisecond, 0, 0, 1, VRun)
	tr.VCPUState(9*sim.Millisecond, 0, 0, 1, VBlocked) // closes a RUN span on pcpu1

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, 10*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}

	names := map[string]bool{}
	pcpuRun := false
	for _, ev := range out.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			names[ev.Args["name"].(string)] = true
		}
		if ev.Ph == "X" && ev.Pid == pidPCPU {
			pcpuRun = true
		}
	}
	for _, want := range []string{"pcpu0", "pcpu1", "pcpu2", "vm.vcpu0", "vm.vcpu1", "bg0.vcpu0", "bg0.vcpu1"} {
		if !names[want] {
			t.Errorf("export lacks a %q track", want)
		}
	}
	if !pcpuRun {
		t.Error("export lacks the RUN span mirrored onto the pCPU track")
	}
}
