package trace

import (
	"fmt"
)

// Merge combines per-run tracers into one export-only tracer, so a
// parallel sweep (internal/runner hands every job a private Tracer) can
// still emit a single combined Chrome trace / schedstats report. Nil
// parts are skipped. The merged layout:
//
//   - Domain ids are remapped onto disjoint ranges, in part order, and
//     domain names gain a "run<i>/" prefix (i = the part's position
//     among the non-nil parts) whenever more than one part survives, so
//     every run gets its own clearly-named track group in Perfetto.
//   - pCPU ids are offset the same way: run i's pcpu0 is a different
//     track from run j's pcpu0.
//   - Ring records are concatenated in part order with the ids above
//     rewritten; totals and drop counters are summed. The merged ring
//     is sized to hold every retained record, so the merge itself never
//     drops.
//   - Engine counters are summed across the parts that set them.
//   - In-progress schedstats dwells are closed at each part's own
//     MaxAt (its last recorded timestamp), then re-anchored at the
//     merged MaxAt, so Snapshot(m.MaxAt()) adds no spurious tail time.
//
// The result is meant for exporting, not for further recording: feeding
// it new records would interleave with the re-anchored dwell clocks.
func Merge(parts ...*Tracer) *Tracer {
	return MergeLabeled(nil, parts...)
}

// MergeLabeled is Merge with explicit per-part track labels: labels[i]
// replaces the default "run<i>" prefix for parts[i] (empty or missing
// entries keep the default). A cluster simulation passes "host0",
// "host1", ... so the merged Perfetto view groups tracks by host rather
// than by anonymous run index. Labels align with the parts slice as
// given, before nil parts are dropped.
func MergeLabeled(labels []string, parts ...*Tracer) *Tracer {
	var live []*Tracer
	var liveLabels []string
	for i, p := range parts {
		if p == nil {
			continue
		}
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		if label == "" {
			label = fmt.Sprintf("run%d", len(live))
		}
		live = append(live, p)
		liveLabels = append(liveLabels, label)
	}
	if len(live) == 0 {
		return nil
	}

	capacity := 0
	for _, p := range live {
		capacity += p.n
	}
	if capacity == 0 {
		capacity = 1
	}
	m := New(Config{RingCapacity: capacity})

	var total, dropped uint64
	for i, p := range live {
		domOff := len(m.doms)
		pcpuOff := m.npcpus

		// Topology: carry every domain slot (nil slots included, to keep
		// id alignment with the remapped ring records).
		for origID, d := range p.doms {
			if d == nil {
				m.doms = append(m.doms, nil)
				continue
			}
			name := d.name
			if name == "" {
				name = fmt.Sprintf("dom%d", origID)
			}
			if len(live) > 1 {
				name = liveLabels[i] + "/" + name
			}
			nd := &domAcc{name: name}
			for _, a := range d.vcpus {
				na := &vcpuAcc{
					hvState:    a.hvState,
					frozen:     a.frozen,
					dwell:      a.dwell,
					lhpCount:   a.lhpCount,
					lhpTotal:   a.lhpTotal,
					lhpMax:     a.lhpMax,
					steals:     a.steals,
					freezes:    a.freezes,
					unfreezes:  a.unfreezes,
					futexWaits: a.futexWaits,
					futexWakes: a.futexWakes,
				}
				na.wakeLat.Merge(&a.wakeLat)
				na.ipiLat.Merge(&a.ipiLat)
				// Close the in-progress dwell at the part's own end; the
				// clock is re-anchored at the merged MaxAt below.
				if tail := p.maxAt - a.since; tail > 0 {
					na.dwell[na.effective()] += tail
				}
				nd.vcpus = append(nd.vcpus, na)
			}
			m.doms = append(m.doms, nd)
		}
		m.npcpus += p.npcpus

		// Ring: concatenate in part order with ids rewritten. Record
		// order inside a part is preserved, so the merge is deterministic.
		for j := 0; j < p.n; j++ {
			ev := p.buf[(p.start+j)%p.cap]
			if ev.Dom >= 0 {
				ev.Dom += int32(domOff)
			}
			if ev.PCPU >= 0 {
				ev.PCPU += int32(pcpuOff)
			}
			if ev.Kind == KindMigrate && ev.Arg >= 0 {
				// Arg carries the source pCPU for steals.
				ev.Arg += int64(pcpuOff)
			}
			m.push(ev)
		}
		total += p.total
		dropped += p.dropped

		if p.haveEngine {
			m.engScheduled += p.engScheduled
			m.engCancelled += p.engCancelled
			m.engFired += p.engFired
			m.haveEngine = true
		}
		if p.maxAt > m.maxAt {
			m.maxAt = p.maxAt
		}
	}
	// push counted only retained records; report the parts' full history.
	m.total = total
	m.dropped = dropped

	// Re-anchor every dwell clock at the merged end so a
	// Snapshot(m.MaxAt()) closes nothing twice.
	for _, d := range m.doms {
		if d == nil {
			continue
		}
		for _, a := range d.vcpus {
			a.since = m.maxAt
		}
	}
	return m
}
