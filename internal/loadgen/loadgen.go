// Package loadgen provides a deterministic open-loop request generator:
// Poisson arrivals at a configurable rate driving one httpd server, with
// per-request latency recorded into a fixed-bucket histogram and SLO
// attainment accounting. Open-loop means arrivals never wait for
// completions — exactly the httperf discipline of the paper's Figure 14
// — so an overloaded server accumulates latency instead of silently
// throttling the offered load.
//
// Each generator owns a private sim.Rand stream, so adding or removing
// generators (VM churn) never perturbs the arrival sequence of the
// others, and a fleet of generators across per-host engines stays
// reproducible under any worker interleaving.
package loadgen

import (
	"vscale/internal/metrics"
	"vscale/internal/sim"
	"vscale/internal/workload/httpd"
)

// Config parameterises a generator.
type Config struct {
	// RateRPS is the initial offered load in requests/second. Zero
	// starts the generator paused; SetRate turns it on later.
	RateRPS float64
	// SLO is the per-request latency objective: replies delivered within
	// SLO count toward attainment, everything else (slow replies,
	// timeouts, drops) counts against it.
	SLO sim.Time
	// Buckets overrides the latency-histogram bounds (in milliseconds).
	// Defaults to metrics.DefaultLatencyBuckets.
	Buckets []float64
}

// Stats is a point-in-time snapshot of a generator's accounting.
type Stats struct {
	Offered  uint64 // requests injected
	Done     uint64 // requests that reached a terminal event
	Replies  uint64 // replies delivered within the server timeout
	Errors   uint64 // timeouts + backlog drops
	SLOOk    uint64 // replies delivered within the SLO
	SLOTotal uint64 // requests the SLO is judged over (== Offered)
	// InFlight is the point-in-time backlog: requests offered but not
	// yet terminal (Offered - Done). These count against Attainment —
	// see its doc — so a run cut off mid-epoch reports them here for
	// callers that want to score or exclude them explicitly.
	InFlight uint64
}

// Attainment returns the fraction of offered requests answered within
// the SLO. Requests still in flight count against attainment — an
// open-loop client that never hears back experienced a miss, not a
// statistical exclusion. With nothing offered it returns 1.
func (s Stats) Attainment() float64 {
	if s.Offered == 0 {
		return 1
	}
	return float64(s.SLOOk) / float64(s.Offered)
}

// Add accumulates o into s (fleet- or service-level aggregation).
// InFlight sums too: both are point-in-time backlogs of disjoint
// generators.
func (s *Stats) Add(o Stats) {
	s.Offered += o.Offered
	s.Done += o.Done
	s.Replies += o.Replies
	s.Errors += o.Errors
	s.SLOOk += o.SLOOk
	s.SLOTotal += o.SLOTotal
	s.InFlight += o.InFlight
}

// Share splits a service's total offered rate evenly across its ready
// replicas: the per-replica rate a horizontal autoscaler should drive
// each generator at. Zero ready replicas yield zero (nothing can
// receive load).
func Share(totalRPS float64, ready int) float64 {
	if ready <= 0 {
		return 0
	}
	return totalRPS / float64(ready)
}

// Generator injects Poisson arrivals into one server.
type Generator struct {
	eng  *sim.Engine
	srv  *httpd.Server
	rand *sim.Rand
	slo  sim.Time

	rate    float64
	next    sim.EventRef
	armed   bool
	stopped bool
	paused  bool

	stats Stats
	hist  *metrics.Histogram // reply latency, ms, within-timeout replies only

	// Windowed accounting for per-epoch observers (TakeWindow): a stats
	// checkpoint plus a second histogram fed in parallel with hist and
	// swapped out at each window boundary.
	winLast Stats
	winHist *metrics.Histogram
	spare   *metrics.Histogram
}

// New hooks a generator to a server. The generator takes over the
// server's OnComplete hook; the caller supplies the arrival-stream rand
// (fork it from the VM's stream for per-entity isolation). Call Start
// to begin injecting.
func New(eng *sim.Engine, srv *httpd.Server, rand *sim.Rand, cfg Config) *Generator {
	bounds := cfg.Buckets
	if bounds == nil {
		bounds = metrics.DefaultLatencyBuckets()
	}
	g := &Generator{
		eng:     eng,
		srv:     srv,
		rand:    rand,
		slo:     cfg.SLO,
		rate:    cfg.RateRPS,
		hist:    metrics.NewHistogram(bounds),
		winHist: metrics.NewHistogram(bounds),
		spare:   metrics.NewHistogram(bounds),
	}
	srv.OnComplete = g.complete
	return g
}

// Start begins the arrival process (a no-op when the rate is zero; the
// first SetRate > 0 starts it then).
func (g *Generator) Start() { g.arm() }

// SetRate changes the offered load to rps, rescheduling the pending
// arrival under the new inter-arrival law. rps = 0 pauses the stream.
func (g *Generator) SetRate(rps float64) {
	if g.stopped {
		return
	}
	g.rate = rps
	if g.armed {
		g.eng.Cancel(g.next)
		g.armed = false
	}
	g.arm()
}

// Stop halts the arrival process permanently. Requests already in
// flight still complete and are accounted.
func (g *Generator) Stop() {
	if g.armed {
		g.eng.Cancel(g.next)
		g.armed = false
	}
	g.stopped = true
}

// arm schedules the next arrival.
func (g *Generator) arm() {
	if g.stopped || g.paused || g.armed || g.rate <= 0 {
		return
	}
	mean := sim.Time(float64(sim.Second) / g.rate)
	g.next = g.eng.After(g.rand.ExpDuration(mean), "loadgen/arrival", func() {
		g.armed = false
		g.stats.Offered++
		g.stats.SLOTotal++
		g.srv.Offer()
		g.arm()
	})
	g.armed = true
}

// complete is the server's per-request terminal callback.
func (g *Generator) complete(lat sim.Time, ok bool) {
	g.stats.Done++
	if !ok {
		g.stats.Errors++
		return
	}
	g.stats.Replies++
	g.hist.Observe(lat.Milliseconds())
	g.winHist.Observe(lat.Milliseconds())
	if lat <= g.slo {
		g.stats.SLOOk++
	}
}

// Stats returns the current accounting snapshot.
func (g *Generator) Stats() Stats {
	s := g.stats
	s.InFlight = s.Offered - s.Done
	return s
}

// TakeWindow closes the current accounting window: it returns the
// counter deltas since the previous TakeWindow (or since construction)
// together with the reply-latency histogram of just that window, then
// starts a new one. InFlight in the returned Stats is the point-in-time
// backlog at the boundary, not a delta. The returned histogram is only
// valid until the next TakeWindow call (it is recycled). Windowing is
// pure bookkeeping: it schedules no events and draws no randomness, so
// observers calling it cannot perturb the simulation.
func (g *Generator) TakeWindow() (Stats, *metrics.Histogram) {
	cur := g.Stats()
	w := Stats{
		Offered:  cur.Offered - g.winLast.Offered,
		Done:     cur.Done - g.winLast.Done,
		Replies:  cur.Replies - g.winLast.Replies,
		Errors:   cur.Errors - g.winLast.Errors,
		SLOOk:    cur.SLOOk - g.winLast.SLOOk,
		SLOTotal: cur.SLOTotal - g.winLast.SLOTotal,
		InFlight: cur.InFlight,
	}
	g.winLast = cur
	h := g.winHist
	g.winHist, g.spare = g.spare, h
	g.winHist.Reset()
	return w, h
}

// Hist returns the reply-latency histogram (milliseconds). Merge copies
// into a fleet-level histogram rather than mutating this one.
func (g *Generator) Hist() *metrics.Histogram { return g.hist }

// Rate returns the current offered load in requests/second.
func (g *Generator) Rate() float64 { return g.rate }
