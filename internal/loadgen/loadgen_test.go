package loadgen

import (
	"testing"

	"vscale/internal/guest"
	"vscale/internal/sim"
	"vscale/internal/workload/httpd"
	"vscale/internal/xen"
)

func newRig(t *testing.T, seed uint64, cfg Config) (*sim.Engine, *httpd.Server, *Generator) {
	t.Helper()
	eng := sim.NewEngine(seed)
	pool := xen.NewPool(eng, xen.DefaultConfig(4))
	dom := pool.AddDomain("web", 256, 4, nil)
	k := guest.NewKernel(dom, guest.DefaultConfig())
	hcfg := httpd.DefaultConfig()
	link := httpd.NewLink(eng, hcfg.LinkBps)
	srv, err := httpd.NewServer(k, link, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	g := New(eng, srv, sim.NewRand(seed+99), cfg)
	pool.Start()
	k.Boot()
	return eng, srv, g
}

func TestOpenLoopLightLoad(t *testing.T) {
	eng, srv, g := newRig(t, 5, Config{RateRPS: 1000, SLO: 50 * sim.Millisecond})
	g.Start()
	if err := eng.RunUntil(4 * sim.Second); err != nil {
		t.Fatal(err)
	}
	g.Stop()
	if err := eng.RunUntil(6 * sim.Second); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	// Poisson with mean 1000/s over 4s: expect ~4000 ± a few sigma.
	if st.Offered < 3600 || st.Offered > 4400 {
		t.Fatalf("offered = %d, want ~4000", st.Offered)
	}
	if st.Done != st.Offered {
		t.Fatalf("done = %d, offered = %d: in-flight after drain", st.Done, st.Offered)
	}
	if st.Errors != 0 {
		t.Fatalf("errors = %d at light load", st.Errors)
	}
	if att := st.Attainment(); att != 1 {
		t.Fatalf("attainment = %g at light load, want 1", att)
	}
	if g.Hist().Count() != st.Replies {
		t.Fatalf("hist count %d != replies %d", g.Hist().Count(), st.Replies)
	}
	// Dedicated 4-vCPU host: sub-millisecond p99.
	if p99 := g.Hist().Quantile(0.99); p99 > 2 {
		t.Fatalf("p99 = %.2fms at light load", p99)
	}
	if srv.Err() != nil {
		t.Fatal(srv.Err())
	}
}

func TestSetRateAndPause(t *testing.T) {
	eng, _, g := newRig(t, 7, Config{RateRPS: 0, SLO: 50 * sim.Millisecond})
	g.Start() // rate 0: paused
	if err := eng.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if g.Stats().Offered != 0 {
		t.Fatalf("offered = %d while paused", g.Stats().Offered)
	}
	g.SetRate(500)
	if err := eng.RunUntil(3 * sim.Second); err != nil {
		t.Fatal(err)
	}
	mid := g.Stats().Offered
	if mid < 800 || mid > 1200 {
		t.Fatalf("offered = %d after 2s at 500/s, want ~1000", mid)
	}
	g.SetRate(0) // pause again
	if err := eng.RunUntil(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if g.Stats().Offered != mid {
		t.Fatalf("offered moved %d -> %d while paused", mid, g.Stats().Offered)
	}
	g.SetRate(500)
	g.Stop()
	if err := eng.RunUntil(7 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if g.Stats().Offered != mid {
		t.Fatalf("offered moved after Stop: %d -> %d", mid, g.Stats().Offered)
	}
	g.SetRate(500) // ignored after Stop
	if g.Rate() != 0 && g.Stats().Offered != mid {
		t.Fatal("SetRate after Stop must not restart arrivals")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	run := func() (Stats, float64) {
		eng, _, g := newRig(t, 11, Config{RateRPS: 2000, SLO: 20 * sim.Millisecond})
		g.Start()
		if err := eng.RunUntil(3 * sim.Second); err != nil {
			t.Fatal(err)
		}
		g.Stop()
		if err := eng.RunUntil(5 * sim.Second); err != nil {
			t.Fatal(err)
		}
		return g.Stats(), g.Hist().Quantile(0.99)
	}
	s1, p1 := run()
	s2, p2 := run()
	if s1 != s2 || p1 != p2 {
		t.Fatalf("same seed, different results: %+v/%g vs %+v/%g", s1, p1, s2, p2)
	}
}

func TestInFlightAccounting(t *testing.T) {
	eng, _, g := newRig(t, 13, Config{RateRPS: 2000, SLO: 20 * sim.Millisecond})
	g.Start()
	if err := eng.RunUntil(500 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	mid := g.Stats()
	if mid.InFlight != mid.Offered-mid.Done {
		t.Fatalf("InFlight = %d, want Offered-Done = %d", mid.InFlight, mid.Offered-mid.Done)
	}
	// In-flight requests count against attainment, not as exclusions.
	if want := float64(mid.SLOOk) / float64(mid.Offered); mid.Attainment() != want {
		t.Fatalf("attainment %g, want SLOOk/Offered = %g (in-flight must count as misses)", mid.Attainment(), want)
	}
	g.Stop()
	if err := eng.RunUntil(3 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if st := g.Stats(); st.InFlight != 0 {
		t.Fatalf("InFlight = %d after drain", st.InFlight)
	}
}

func TestTakeWindow(t *testing.T) {
	eng, _, g := newRig(t, 17, Config{RateRPS: 1000, SLO: 50 * sim.Millisecond})
	g.Start()
	var winSum Stats
	var winReplies uint64
	for i := 1; i <= 4; i++ {
		if err := eng.RunUntil(sim.Time(i) * 500 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		w, hist := g.TakeWindow()
		winSum.Offered += w.Offered
		winSum.Done += w.Done
		winSum.Replies += w.Replies
		winSum.Errors += w.Errors
		winSum.SLOOk += w.SLOOk
		if hist.Count() != w.Replies {
			t.Fatalf("window %d: hist count %d != window replies %d", i, hist.Count(), w.Replies)
		}
		winReplies += hist.Count()
	}
	cum := g.Stats()
	if winSum.Offered != cum.Offered || winSum.Done != cum.Done ||
		winSum.Replies != cum.Replies || winSum.SLOOk != cum.SLOOk {
		t.Fatalf("window deltas %+v do not sum to the cumulative %+v", winSum, cum)
	}
	if winReplies != g.Hist().Count() {
		t.Fatalf("window histograms hold %d replies, cumulative %d", winReplies, g.Hist().Count())
	}
	// An empty window is all zeros except the point-in-time backlog.
	g.Stop()
	if err := eng.RunUntil(4 * sim.Second); err != nil {
		t.Fatal(err)
	}
	g.TakeWindow()
	w, hist := g.TakeWindow()
	if w.Offered != 0 || w.Replies != 0 || w.InFlight != 0 || hist.Count() != 0 {
		t.Fatalf("idle window not empty: %+v (hist %d)", w, hist.Count())
	}
}
