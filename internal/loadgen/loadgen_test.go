package loadgen

import (
	"testing"

	"vscale/internal/guest"
	"vscale/internal/sim"
	"vscale/internal/workload/httpd"
	"vscale/internal/xen"
)

func newRig(t *testing.T, seed uint64, cfg Config) (*sim.Engine, *httpd.Server, *Generator) {
	t.Helper()
	eng := sim.NewEngine(seed)
	pool := xen.NewPool(eng, xen.DefaultConfig(4))
	dom := pool.AddDomain("web", 256, 4, nil)
	k := guest.NewKernel(dom, guest.DefaultConfig())
	hcfg := httpd.DefaultConfig()
	link := httpd.NewLink(eng, hcfg.LinkBps)
	srv, err := httpd.NewServer(k, link, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	g := New(eng, srv, sim.NewRand(seed+99), cfg)
	pool.Start()
	k.Boot()
	return eng, srv, g
}

func TestOpenLoopLightLoad(t *testing.T) {
	eng, srv, g := newRig(t, 5, Config{RateRPS: 1000, SLO: 50 * sim.Millisecond})
	g.Start()
	if err := eng.RunUntil(4 * sim.Second); err != nil {
		t.Fatal(err)
	}
	g.Stop()
	if err := eng.RunUntil(6 * sim.Second); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	// Poisson with mean 1000/s over 4s: expect ~4000 ± a few sigma.
	if st.Offered < 3600 || st.Offered > 4400 {
		t.Fatalf("offered = %d, want ~4000", st.Offered)
	}
	if st.Done != st.Offered {
		t.Fatalf("done = %d, offered = %d: in-flight after drain", st.Done, st.Offered)
	}
	if st.Errors != 0 {
		t.Fatalf("errors = %d at light load", st.Errors)
	}
	if att := st.Attainment(); att != 1 {
		t.Fatalf("attainment = %g at light load, want 1", att)
	}
	if g.Hist().Count() != st.Replies {
		t.Fatalf("hist count %d != replies %d", g.Hist().Count(), st.Replies)
	}
	// Dedicated 4-vCPU host: sub-millisecond p99.
	if p99 := g.Hist().Quantile(0.99); p99 > 2 {
		t.Fatalf("p99 = %.2fms at light load", p99)
	}
	if srv.Err() != nil {
		t.Fatal(srv.Err())
	}
}

func TestSetRateAndPause(t *testing.T) {
	eng, _, g := newRig(t, 7, Config{RateRPS: 0, SLO: 50 * sim.Millisecond})
	g.Start() // rate 0: paused
	if err := eng.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if g.Stats().Offered != 0 {
		t.Fatalf("offered = %d while paused", g.Stats().Offered)
	}
	g.SetRate(500)
	if err := eng.RunUntil(3 * sim.Second); err != nil {
		t.Fatal(err)
	}
	mid := g.Stats().Offered
	if mid < 800 || mid > 1200 {
		t.Fatalf("offered = %d after 2s at 500/s, want ~1000", mid)
	}
	g.SetRate(0) // pause again
	if err := eng.RunUntil(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if g.Stats().Offered != mid {
		t.Fatalf("offered moved %d -> %d while paused", mid, g.Stats().Offered)
	}
	g.SetRate(500)
	g.Stop()
	if err := eng.RunUntil(7 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if g.Stats().Offered != mid {
		t.Fatalf("offered moved after Stop: %d -> %d", mid, g.Stats().Offered)
	}
	g.SetRate(500) // ignored after Stop
	if g.Rate() != 0 && g.Stats().Offered != mid {
		t.Fatal("SetRate after Stop must not restart arrivals")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	run := func() (Stats, float64) {
		eng, _, g := newRig(t, 11, Config{RateRPS: 2000, SLO: 20 * sim.Millisecond})
		g.Start()
		if err := eng.RunUntil(3 * sim.Second); err != nil {
			t.Fatal(err)
		}
		g.Stop()
		if err := eng.RunUntil(5 * sim.Second); err != nil {
			t.Fatal(err)
		}
		return g.Stats(), g.Hist().Quantile(0.99)
	}
	s1, p1 := run()
	s2, p2 := run()
	if s1 != s2 || p1 != p2 {
		t.Fatalf("same seed, different results: %+v/%g vs %+v/%g", s1, p1, s2, p2)
	}
}
