package loadgen

import (
	"fmt"

	"vscale/internal/metrics"
	"vscale/internal/sim"
)

// Checkpoint support (docs/checkpoint.md). A generator is captured only
// while paused with no requests in flight — the quiesce barrier pauses
// every generator one epoch early so the pipeline drains. In that shape
// the arrival process is fully described by the PRNG state and the rate:
// no pending-arrival event exists, and Resume re-arms from the captured
// stream exactly as the straight-through run does at the same boundary.

// State is the semantic state of a paused, drained generator.
type State struct {
	Rand    sim.RandState          `json:"rand"`
	Rate    float64                `json:"rate"`
	Stopped bool                   `json:"stopped"`
	Stats   Stats                  `json:"stats"`
	WinLast Stats                  `json:"win_last"`
	Hist    metrics.HistogramState `json:"hist"`
	WinHist metrics.HistogramState `json:"win_hist"`
}

// Pause cancels the pending arrival (discarding its drawn inter-arrival
// gap) and holds the stream until Resume. Requests already in flight
// still complete. Pausing is part of the deterministic schedule: the
// straight-through and forked runs pause at the same simulated time with
// the same PRNG state, so both discard the same variate.
func (g *Generator) Pause() {
	if g.armed {
		g.eng.Cancel(g.next)
		g.armed = false
	}
	g.paused = true
}

// Resume re-arms the arrival process after Pause, drawing the next
// inter-arrival gap from the current PRNG state.
func (g *Generator) Resume() {
	if !g.paused {
		return
	}
	g.paused = false
	g.arm()
}

// Paused reports whether the generator is holding its arrival stream.
func (g *Generator) Paused() bool { return g.paused }

// CheckpointState exports the generator's state. It errors unless the
// generator is paused (or stopped) with every offered request terminal —
// an undrained pipeline means in-flight closures the checkpoint cannot
// represent.
func (g *Generator) CheckpointState() (State, error) {
	if g.armed {
		return State{}, fmt.Errorf("loadgen: arrival still armed; Pause before checkpointing")
	}
	if !g.paused && !g.stopped {
		return State{}, fmt.Errorf("loadgen: generator neither paused nor stopped")
	}
	if g.stats.Offered != g.stats.Done {
		return State{}, fmt.Errorf("loadgen: %d requests still in flight", g.stats.Offered-g.stats.Done)
	}
	return State{
		Rand:    g.rand.State(),
		Rate:    g.rate,
		Stopped: g.stopped,
		Stats:   g.stats,
		WinLast: g.winLast,
		Hist:    g.hist.State(),
		WinHist: g.winHist.State(),
	}, nil
}

// RestoreState overwrites the generator from a capture and leaves it
// paused; the restoring fleet calls Resume at the barrier, in admission
// order, exactly as the straight-through run does.
func (g *Generator) RestoreState(st State) error {
	if err := g.hist.Restore(st.Hist); err != nil {
		return fmt.Errorf("loadgen: latency histogram: %w", err)
	}
	if err := g.winHist.Restore(st.WinHist); err != nil {
		return fmt.Errorf("loadgen: window histogram: %w", err)
	}
	if g.armed {
		g.eng.Cancel(g.next)
		g.armed = false
	}
	g.rand.SetState(st.Rand)
	g.rate = st.Rate
	g.stopped = st.Stopped
	g.paused = true
	g.stats = st.Stats
	g.winLast = st.WinLast
	return nil
}
