package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// Server is the scrape endpoint: an HTTP listener serving the most
// recently published exposition snapshot on /metrics. The simulation
// side hands over an immutable rendered snapshot at each collection
// epoch with Publish (a single atomic pointer swap), so the hot path
// never takes a lock and scrapes never block the simulation — the
// epoch-boundary handoff the fleet control plane already pays for
// placement telemetry doubles as the publication point.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	snap atomic.Pointer[[]byte]
}

// NewServer starts serving on addr (host:port; use port 0 for an
// ephemeral port) in a background goroutine. The returned server is
// ready to scrape immediately; until the first Publish, /metrics
// answers 503.
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/", s.handleIndex)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		// ErrServerClosed on Close is the expected shutdown path; any
		// other serve error just ends the endpoint — the simulation must
		// never die because observability did.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Publish swaps in a new immutable exposition snapshot. The caller must
// not mutate text afterwards.
func (s *Server) Publish(text []byte) { s.snap.Store(&text) }

// handleMetrics serves the latest snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, req *http.Request) {
	snap := s.snap.Load()
	if snap == nil {
		http.Error(w, "no telemetry snapshot published yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(*snap)
}

// handleIndex points scrapers at /metrics.
func (s *Server) handleIndex(w http.ResponseWriter, req *http.Request) {
	if req.URL.Path != "/" {
		http.NotFound(w, req)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<html><body><h1>vScale simulation telemetry</h1><p><a href="/metrics">/metrics</a></p></body></html>`)
}

// Close stops the listener. In-flight scrapes are cut off; this is the
// end of a simulation run, not a graceful service drain.
func (s *Server) Close() error { return s.srv.Close() }
