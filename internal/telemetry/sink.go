package telemetry

import (
	"fmt"
	"io"
	"sync"

	"vscale/internal/sim"
)

// Sink is the shared output side of telemetry: at most one scrape
// server and at most one JSONL stream, fed by any number of collectors.
// Publish is lock-free (an atomic swap in the server); Append is
// serialised by a mutex because parallel repeat-runs may flush
// concurrently — deterministic JSONL ordering is the collectors' job
// (the fleet control plane appends live from its single goroutine;
// parallel sweeps buffer per run and flush in submission order).
type Sink struct {
	srv *Server

	mu  sync.Mutex
	out io.Writer
}

// NewSink builds a sink. addr == "" disables the scrape server; out ==
// nil disables the JSONL stream. A sink with neither is legal and inert
// (Enabled reports false), which lets call sites stay unconditional.
func NewSink(addr string, out io.Writer) (*Sink, error) {
	s := &Sink{out: out}
	if addr != "" {
		srv, err := NewServer(addr)
		if err != nil {
			return nil, err
		}
		s.srv = srv
	}
	return s, nil
}

// Enabled reports whether the sink has anywhere to deliver telemetry.
func (s *Sink) Enabled() bool { return s != nil && (s.srv != nil || s.out != nil) }

// Server returns the scrape server (nil when -telemetry-addr was not
// given).
func (s *Sink) Server() *Server { return s.srv }

// Publish hands an immutable exposition snapshot to the scrape server
// (no-op without one).
func (s *Sink) Publish(text []byte) {
	if s.srv != nil {
		s.srv.Publish(text)
	}
}

// Append writes one or more complete JSONL records to the stream
// (no-op without one).
func (s *Sink) Append(records []byte) error {
	if s.out == nil || len(records) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.out.Write(records); err != nil {
		return fmt.Errorf("telemetry: append: %w", err)
	}
	return nil
}

// Close shuts the scrape server down. The JSONL writer is owned by the
// caller (it is usually an *os.File the CLI closes itself).
func (s *Sink) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// Collector owns one registry and drives it through collection epochs:
// the simulation-side code samples its sources into Registry()'s
// families, then calls EpochDone, which renders the exposition snapshot,
// publishes it to the scrape server and emits the epoch's JSONL record.
//
// A live collector (buffered=false) appends each record to the sink as
// it happens — correct when exactly one goroutine collects, like the
// fleet control plane. A buffered collector accumulates records locally
// so concurrent repeat-runs can each collect privately and Flush in
// submission order after the barrier, keeping the JSONL byte-identical
// for any worker count.
type Collector struct {
	sink     *Sink
	reg      *Registry
	buffered bool

	epoch int
	buf   []byte
	err   error
}

// NewCollector builds a collector over the sink with the given base
// labels on every series. A nil sink yields a nil collector, and every
// method on a nil collector is a no-op — call sites stay unconditional.
func NewCollector(sink *Sink, buffered bool, baseKV ...string) *Collector {
	if !sink.Enabled() {
		return nil
	}
	return &Collector{sink: sink, reg: NewRegistry(baseKV...), buffered: buffered}
}

// Registry returns the collector's registry (nil on a nil collector).
func (c *Collector) Registry() *Registry {
	if c == nil {
		return nil
	}
	return c.reg
}

// Epoch returns the index the next EpochDone will record.
func (c *Collector) Epoch() int {
	if c == nil {
		return 0
	}
	return c.epoch
}

// EpochDone closes one collection epoch at virtual time now: it renders
// and publishes the scrape snapshot and emits the epoch's JSONL record
// (live or into the buffer). Errors are latched into Err rather than
// returned — collection sites sit inside control loops that should not
// grow error plumbing for an observability stream.
func (c *Collector) EpochDone(now sim.Time) {
	if c == nil {
		return
	}
	c.sink.Publish(c.reg.RenderProm())
	rec, err := c.reg.RenderJSONL(c.epoch, now)
	if err != nil {
		c.fail(err)
	} else if c.buffered {
		c.buf = append(c.buf, rec...)
	} else if err := c.sink.Append(rec); err != nil {
		c.fail(err)
	}
	c.epoch++
}

// Flush appends a buffered collector's records to the sink (no-op when
// live or empty).
func (c *Collector) Flush() error {
	if c == nil || len(c.buf) == 0 {
		return nil
	}
	err := c.sink.Append(c.buf)
	c.buf = nil
	if err != nil {
		c.fail(err)
	}
	return err
}

// Err returns the first error the collector latched.
func (c *Collector) Err() error {
	if c == nil {
		return nil
	}
	return c.err
}

func (c *Collector) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}
