package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"vscale/internal/sim"
)

func scrape(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerScrape(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if code, _ := scrape(t, srv.Addr(), "/metrics"); code != http.StatusServiceUnavailable {
		t.Fatalf("pre-publish scrape returned %d, want 503", code)
	}

	r := NewRegistry()
	r.GaugeSeries("vscale_sim_seconds", "virtual time", "host", "0").Set(2.5)
	srv.Publish(r.RenderProm())

	code, body := scrape(t, srv.Addr(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("scrape returned %d", code)
	}
	if !strings.Contains(body, `vscale_sim_seconds{host="0"} 2.5`) {
		t.Fatalf("scrape body missing series:\n%s", body)
	}

	// Publishing a new snapshot replaces the old one atomically.
	r.GaugeSeries("vscale_sim_seconds", "virtual time", "host", "0").Set(3)
	srv.Publish(r.RenderProm())
	if _, body := scrape(t, srv.Addr(), "/metrics"); !strings.Contains(body, "} 3\n") {
		t.Fatalf("second snapshot not served:\n%s", body)
	}

	if code, body := scrape(t, srv.Addr(), "/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index page broken: %d %q", code, body)
	}
}

func TestCollectorLiveAndBuffered(t *testing.T) {
	var live bytes.Buffer
	sink, err := NewSink("", &live)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	c := NewCollector(sink, false, "run", "0")
	c.Registry().GaugeSeries("g", "").Set(1)
	c.EpochDone(sim.Second)
	c.Registry().GaugeSeries("g", "").Set(2)
	c.EpochDone(2 * sim.Second)
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	lines := strings.Split(strings.TrimSuffix(live.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("live collector wrote %d records, want 2:\n%s", len(lines), live.String())
	}
	if !strings.Contains(lines[0], `"epoch":0`) || !strings.Contains(lines[1], `"epoch":1`) {
		t.Fatalf("epoch indices wrong:\n%s", live.String())
	}

	// Buffered collectors only reach the sink at Flush.
	var buffered bytes.Buffer
	sink2, err := NewSink("", &buffered)
	if err != nil {
		t.Fatal(err)
	}
	b := NewCollector(sink2, true, "run", "1")
	b.Registry().GaugeSeries("g", "").Set(5)
	b.EpochDone(sim.Second)
	if buffered.Len() != 0 {
		t.Fatal("buffered collector wrote before Flush")
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buffered.String(), `"run":"1"`) {
		t.Fatalf("flushed record missing base label:\n%s", buffered.String())
	}
}

func TestNilCollectorIsInert(t *testing.T) {
	var c *Collector
	if c.Registry() != nil || c.Err() != nil || c.Epoch() != 0 {
		t.Fatal("nil collector not inert")
	}
	c.EpochDone(sim.Second)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	sink, err := NewSink("", nil)
	if err != nil {
		t.Fatal(err)
	}
	if sink.Enabled() {
		t.Fatal("empty sink claims to be enabled")
	}
	if NewCollector(sink, false) != nil {
		t.Fatal("collector over an inert sink should be nil")
	}
	var none *Sink
	if none.Enabled() {
		t.Fatal("nil sink claims to be enabled")
	}
}
