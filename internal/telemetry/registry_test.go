package telemetry

import (
	"strings"
	"testing"

	"vscale/internal/metrics"
	"vscale/internal/sim"
)

func TestRenderPromFormat(t *testing.T) {
	r := NewRegistry("policy", "vscale")
	r.GaugeSeries("vscale_host_util_ratio", "pCPU busy fraction", "host", "0").Set(0.25)
	r.GaugeSeries("vscale_host_util_ratio", "pCPU busy fraction", "host", "1").Set(0.5)
	r.CounterSeries("vscale_fleet_vms_placed_total", "VM admissions").Set(3)
	h := metrics.NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 50} {
		h.Observe(v)
	}
	r.SummarySeries("vscale_vm_reply_latency_ms", "reply latency", "host", "0", "vm", "vm0").
		SetFromHistogram(h, 0.5, 0.99)

	out := string(r.RenderProm())
	for _, want := range []string{
		"# HELP vscale_fleet_vms_placed_total VM admissions\n# TYPE vscale_fleet_vms_placed_total counter\nvscale_fleet_vms_placed_total{policy=\"vscale\"} 3\n",
		"# TYPE vscale_host_util_ratio gauge\n",
		"vscale_host_util_ratio{host=\"0\",policy=\"vscale\"} 0.25\n",
		"vscale_host_util_ratio{host=\"1\",policy=\"vscale\"} 0.5\n",
		"# TYPE vscale_vm_reply_latency_ms summary\n",
		"vscale_vm_reply_latency_ms{host=\"0\",policy=\"vscale\",vm=\"vm0\",quantile=\"0.5\"}",
		"vscale_vm_reply_latency_ms_sum{host=\"0\",policy=\"vscale\",vm=\"vm0\"} 105.5\n",
		"vscale_vm_reply_latency_ms_count{host=\"0\",policy=\"vscale\",vm=\"vm0\"} 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families render in name order.
	if strings.Index(out, "vscale_fleet_vms_placed_total") > strings.Index(out, "vscale_host_util_ratio") {
		t.Fatalf("families not sorted by name:\n%s", out)
	}
}

func TestRenderPromEscaping(t *testing.T) {
	r := NewRegistry()
	r.GaugeSeries("g", "line1\nline2 \\ back", "l", "a\"b\\c\nd").Set(1)
	out := string(r.RenderProm())
	if !strings.Contains(out, `# HELP g line1\nline2 \\ back`) {
		t.Fatalf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `g{l="a\"b\\c\nd"} 1`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
}

func TestSeriesIdentityAndLabelOrder(t *testing.T) {
	r := NewRegistry()
	a := r.GaugeSeries("g", "", "x", "1", "y", "2")
	b := r.GaugeSeries("g", "", "y", "2", "x", "1")
	if a != b {
		t.Fatal("label order created distinct series")
	}
	if c := r.GaugeSeries("g", "", "x", "1", "y", "3"); c == a {
		t.Fatal("different label values shared a series")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Gauge("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a gauge as a counter did not panic")
		}
	}()
	r.Counter("m", "")
}

func TestReservedLabelPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("reserved label key did not panic")
		}
	}()
	r.GaugeSeries("m", "", "quantile", "0.5")
}

func TestRenderJSONLDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry("policy", "static")
		r.GaugeSeries("vscale_sim_seconds", "virtual time").Set(1.5)
		r.CounterSeries("vscale_vm_cpu_seconds_total", "", "vm", "vm0", "host", "0").Set(0.125)
		h := metrics.NewHistogram([]float64{1, 10})
		h.Observe(3)
		r.SummarySeries("vscale_vm_reply_latency_ms", "", "vm", "vm0", "host", "0").
			SetFromHistogram(h, 0.5, 0.95)
		return r
	}
	a, err := build().RenderJSONL(7, 3*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	b, err := build().RenderJSONL(7, 3*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("identical registries rendered different JSONL:\n%s\n%s", a, b)
	}
	line := string(a)
	for _, want := range []string{
		`"schema":"vscale-telemetry/v1"`, `"epoch":7`, `"vt_ms":3000`,
		`"name":"vscale_vm_reply_latency_ms"`, `"count":1`, `"quantiles"`,
		`"labels":{"host":"0","policy":"static","vm":"vm0"}`,
	} {
		if !strings.Contains(line, want) {
			t.Fatalf("JSONL missing %q:\n%s", want, line)
		}
	}
	if !strings.HasSuffix(line, "\n") {
		t.Fatal("JSONL record not newline-terminated")
	}
}

func TestFormatFloatSpecials(t *testing.T) {
	cases := map[float64]string{0.25: "0.25", 1e21: "1e+21"}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Fatalf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}
