// Package telemetry is the live-observability layer of the vScale
// reproduction: a small Prometheus-style metric registry fed by
// periodic simulation-time collection epochs, exposed two ways — a
// /metrics scrape endpoint served alongside a running simulation
// (server.go) and a deterministic JSONL time-series stream (sink.go).
//
// Everything in the registry is stamped with virtual time only and
// sampled at epoch boundaries while the simulation engines are parked,
// so telemetry is purely observational: enabling it changes no
// simulation result, and two runs with the same seed emit byte-identical
// JSONL. The exposition format follows the Prometheus text format
// (version 0.0.4), the same surface KubeVirt's domainstats collector
// scrapes per VM and per host from a live hypervisor.
package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"vscale/internal/metrics"
	"vscale/internal/sim"
)

// Kind is a metric family's type, mirroring the Prometheus TYPE line.
type Kind int

// Metric kinds.
const (
	// KindGauge is an instantaneous level (utilisation, active vCPUs).
	KindGauge Kind = iota
	// KindCounter is a cumulative monotonically increasing total. The
	// collectors sample cumulative totals from the simulation each
	// epoch, so Set (not Add) is the usual update.
	KindCounter
	// KindSummary is a quantile summary: count, sum and a fixed set of
	// quantiles, the shape of a Prometheus summary family.
	KindSummary
)

func (k Kind) String() string {
	switch k {
	case KindGauge:
		return "gauge"
	case KindCounter:
		return "counter"
	case KindSummary:
		return "summary"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// labelPair is one label key/value.
type labelPair struct{ k, v string }

// Quantile is one (quantile, value) point of a summary series.
type Quantile struct {
	Q float64
	V float64
}

// Series is one labelled time series of a family. Values are replaced
// wholesale at every collection epoch; the registry retains the last
// written value between epochs (a departed VM's series freezes at its
// final values, exactly like a real exporter).
type Series struct {
	labels []labelPair // sorted by key
	sig    string

	value float64 // gauge/counter

	count     uint64 // summary
	sum       float64
	quantiles []Quantile
}

// Set replaces a gauge or counter value. For counters the collectors
// sample cumulative totals from the simulation, so Set with a larger
// total is the normal update.
func (s *Series) Set(v float64) { s.value = v }

// Add increments a gauge or counter value in place.
func (s *Series) Add(delta float64) { s.value += delta }

// Value returns the current gauge/counter value.
func (s *Series) Value() float64 { return s.value }

// SetSummary replaces a summary series: observation count, exact sum,
// and the quantile points in ascending quantile order.
func (s *Series) SetSummary(count uint64, sum float64, quantiles []Quantile) {
	s.count = count
	s.sum = sum
	s.quantiles = append(s.quantiles[:0], quantiles...)
}

// SetFromHistogram fills a summary series from a metrics.Histogram at
// the given quantiles (ascending).
func (s *Series) SetFromHistogram(h *metrics.Histogram, qs ...float64) {
	pts := make([]Quantile, 0, len(qs))
	for _, q := range qs {
		pts = append(pts, Quantile{Q: q, V: h.Quantile(q)})
	}
	s.SetSummary(h.Count(), h.Sum(), pts)
}

// Family is one named metric family holding any number of labelled
// series.
type Family struct {
	name string
	help string
	kind Kind

	series []*Series
	bySig  map[string]*Series
}

// Name returns the family name.
func (f *Family) Name() string { return f.name }

// Kind returns the family kind.
func (f *Family) Kind() Kind { return f.kind }

// With returns the series for the given label key/value pairs, creating
// it on first use. The registry's base labels are merged in; keys are
// sorted, so label order at the call site does not matter. It panics on
// an odd-length kv list, an invalid or duplicate key, or the reserved
// keys "quantile" and "le" (a configuration error, like a malformed
// histogram bound).
func (f *Family) With(kv ...string) *Series {
	if len(kv)%2 != 0 {
		panic("telemetry: With needs key/value pairs")
	}
	pairs := make([]labelPair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, labelPair{k: kv[i], v: kv[i+1]})
	}
	return f.with(pairs)
}

func (f *Family) with(extra []labelPair) *Series {
	pairs := append([]labelPair(nil), extra...)
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sig strings.Builder
	for i, p := range pairs {
		if !validLabelKey(p.k) {
			panic(fmt.Sprintf("telemetry: invalid label key %q", p.k))
		}
		if p.k == "quantile" || p.k == "le" {
			panic(fmt.Sprintf("telemetry: label key %q is reserved", p.k))
		}
		if i > 0 {
			if pairs[i-1].k == p.k {
				panic(fmt.Sprintf("telemetry: duplicate label key %q", p.k))
			}
			sig.WriteByte(0xff)
		}
		sig.WriteString(p.k)
		sig.WriteByte(0xfe)
		sig.WriteString(p.v)
	}
	key := sig.String()
	if s, ok := f.bySig[key]; ok {
		return s
	}
	s := &Series{labels: pairs, sig: key}
	f.bySig[key] = s
	f.series = append(f.series, s)
	return s
}

// Registry is a set of metric families. It is not safe for concurrent
// use: one collector owns one registry and updates it between epochs,
// handing immutable rendered snapshots to the scrape server.
type Registry struct {
	fams   []*Family
	byName map[string]*Family
	base   []labelPair
}

// NewRegistry returns an empty registry whose every series carries the
// given base label key/value pairs (e.g. policy="vscale", hosts="2").
func NewRegistry(baseKV ...string) *Registry {
	if len(baseKV)%2 != 0 {
		panic("telemetry: NewRegistry needs key/value pairs")
	}
	r := &Registry{byName: map[string]*Family{}}
	for i := 0; i < len(baseKV); i += 2 {
		r.base = append(r.base, labelPair{k: baseKV[i], v: baseKV[i+1]})
	}
	return r
}

// family returns the named family, creating it on first use; asking for
// an existing name with a different kind panics (two collectors
// disagreeing about a family's type is a bug, not data).
func (r *Registry) family(name, help string, kind Kind) *Family {
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("telemetry: family %s registered as %v, requested as %v", name, f.kind, kind))
		}
		return f
	}
	if !validFamilyName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	f := &Family{name: name, help: help, kind: kind, bySig: map[string]*Series{}}
	r.byName[name] = f
	r.fams = append(r.fams, f)
	return f
}

// Gauge returns (creating if needed) the named gauge family.
func (r *Registry) Gauge(name, help string) *Family { return r.family(name, help, KindGauge) }

// Counter returns (creating if needed) the named counter family.
func (r *Registry) Counter(name, help string) *Family { return r.family(name, help, KindCounter) }

// Summary returns (creating if needed) the named summary family.
func (r *Registry) Summary(name, help string) *Family { return r.family(name, help, KindSummary) }

// GaugeSeries is shorthand for Gauge(name, help).With(base+kv).
func (r *Registry) GaugeSeries(name, help string, kv ...string) *Series {
	return r.seriesOf(r.Gauge(name, help), kv)
}

// CounterSeries is shorthand for Counter(name, help).With(base+kv).
func (r *Registry) CounterSeries(name, help string, kv ...string) *Series {
	return r.seriesOf(r.Counter(name, help), kv)
}

// SummarySeries is shorthand for Summary(name, help).With(base+kv).
func (r *Registry) SummarySeries(name, help string, kv ...string) *Series {
	return r.seriesOf(r.Summary(name, help), kv)
}

func (r *Registry) seriesOf(f *Family, kv []string) *Series {
	if len(kv)%2 != 0 {
		panic("telemetry: series needs key/value pairs")
	}
	pairs := append([]labelPair(nil), r.base...)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, labelPair{k: kv[i], v: kv[i+1]})
	}
	return f.with(pairs)
}

// sortedFamilies returns the families in name order (the render order).
func (r *Registry) sortedFamilies() []*Family {
	fams := append([]*Family(nil), r.fams...)
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries returns a family's series in label-signature order.
func (f *Family) sortedSeries() []*Series {
	out := append([]*Series(nil), f.series...)
	sort.Slice(out, func(i, j int) bool { return out[i].sig < out[j].sig })
	return out
}

// RenderProm renders the whole registry in the Prometheus text
// exposition format (version 0.0.4): families in name order, series in
// label order — a deterministic function of the registry contents.
func (r *Registry) RenderProm() []byte {
	var b strings.Builder
	for _, f := range r.sortedFamilies() {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.sortedSeries() {
			switch f.kind {
			case KindSummary:
				for _, q := range s.quantiles {
					b.WriteString(f.name)
					writeLabels(&b, s.labels, "quantile", formatFloat(q.Q))
					b.WriteByte(' ')
					b.WriteString(formatFloat(q.V))
					b.WriteByte('\n')
				}
				b.WriteString(f.name)
				b.WriteString("_sum")
				writeLabels(&b, s.labels, "", "")
				b.WriteByte(' ')
				b.WriteString(formatFloat(s.sum))
				b.WriteByte('\n')
				b.WriteString(f.name)
				b.WriteString("_count")
				writeLabels(&b, s.labels, "", "")
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(s.count, 10))
				b.WriteByte('\n')
			default:
				b.WriteString(f.name)
				writeLabels(&b, s.labels, "", "")
				b.WriteByte(' ')
				b.WriteString(formatFloat(s.value))
				b.WriteByte('\n')
			}
		}
	}
	return []byte(b.String())
}

// jsonQuantile, jsonSeries and jsonRecord are the JSONL schema
// (vscale-telemetry/v1). encoding/json renders map keys sorted and
// floats in shortest form, so the bytes are a deterministic function of
// the registry contents.
type jsonQuantile struct {
	Q float64 `json:"q"`
	V float64 `json:"v"`
}

type jsonSeries struct {
	Name      string            `json:"name"`
	Labels    map[string]string `json:"labels,omitempty"`
	Value     *float64          `json:"value,omitempty"`
	Count     *uint64           `json:"count,omitempty"`
	Sum       *float64          `json:"sum,omitempty"`
	Quantiles []jsonQuantile    `json:"quantiles,omitempty"`
}

type jsonRecord struct {
	Schema string       `json:"schema"`
	Epoch  int          `json:"epoch"`
	VtMs   float64      `json:"vt_ms"`
	Series []jsonSeries `json:"series"`
}

// SchemaJSONL is the schema tag carried by every JSONL record.
const SchemaJSONL = "vscale-telemetry/v1"

// RenderJSONL renders one newline-terminated JSONL record of the whole
// registry at the given collection epoch and virtual time. Families and
// series appear in the same deterministic order as RenderProm.
func (r *Registry) RenderJSONL(epoch int, now sim.Time) ([]byte, error) {
	rec := jsonRecord{Schema: SchemaJSONL, Epoch: epoch, VtMs: now.Milliseconds()}
	for _, f := range r.sortedFamilies() {
		for _, s := range f.sortedSeries() {
			js := jsonSeries{Name: f.name}
			if len(s.labels) > 0 {
				js.Labels = make(map[string]string, len(s.labels))
				for _, p := range s.labels {
					js.Labels[p.k] = p.v
				}
			}
			if f.kind == KindSummary {
				count, sum := s.count, sanitizeJSON(s.sum)
				js.Count, js.Sum = &count, &sum
				for _, q := range s.quantiles {
					js.Quantiles = append(js.Quantiles, jsonQuantile{Q: q.Q, V: sanitizeJSON(q.V)})
				}
			} else {
				v := sanitizeJSON(s.value)
				js.Value = &v
			}
			rec.Series = append(rec.Series, js)
		}
	}
	out, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// sanitizeJSON maps non-finite values (which JSON cannot carry) to 0;
// the collectors never produce them, but a defensive exporter beats a
// mid-run marshal error.
func sanitizeJSON(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// writeLabels renders {k="v",...} with the optional extra pair appended
// (the summary quantile label); an empty label set with no extra
// renders nothing.
func writeLabels(b *strings.Builder, labels []labelPair, extraK, extraV string) {
	if len(labels) == 0 && extraK == "" {
		return
	}
	b.WriteByte('{')
	for i, p := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	if extraK != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(extraV))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// formatFloat renders a sample value the way Prometheus expects:
// shortest round-trip form, with the special spellings for infinities
// and NaN.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// escapeLabelValue escapes backslash, double quote and newline per the
// exposition format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// validFamilyName checks the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validFamilyName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// validLabelKey checks the Prometheus label-name grammar
// [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelKey(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}
