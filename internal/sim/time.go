// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock with nanosecond resolution, a cancellable event heap,
// and a seeded pseudo-random number generator. Every component of the
// vScale reproduction (hypervisor, guest kernels, workloads) runs on top
// of this engine, so simulations are exactly reproducible for a given
// seed and never read the wall clock.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It intentionally mirrors time.Duration arithmetic but is a
// distinct type so that virtual and wall-clock quantities cannot be mixed
// by accident.
type Time int64

// Common durations, expressed in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time. It is used as the
// "never" sentinel for deadlines.
const MaxTime Time = 1<<63 - 1

// Add returns t shifted by a duration d (also in virtual nanoseconds).
func (t Time) Add(d Time) Time { return t + d }

// Sub returns the duration t - u.
func (t Time) Sub(u Time) Time { return t - u }

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds converts t to floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds converts t to floating-point microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Duration converts t to a time.Duration for formatting convenience.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String renders t with time.Duration formatting (e.g. "30ms").
func (t Time) String() string {
	if t == MaxTime {
		return "never"
	}
	return time.Duration(t).String()
}

// FromSeconds converts floating-point seconds to virtual time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromMillis converts floating-point milliseconds to virtual time.
func FromMillis(ms float64) Time { return Time(ms * float64(Millisecond)) }

// FromMicros converts floating-point microseconds to virtual time.
func FromMicros(us float64) Time { return Time(us * float64(Microsecond)) }

// checkNonNegative panics if d is negative; scheduling into the past is
// always a programming error in the simulation.
func checkNonNegative(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative duration %d", int64(d)))
	}
}
