package sim

import "math"

// Rand is a small, fast, deterministic PRNG (xoshiro256** with a
// splitmix64 seeder). The standard library's math/rand is avoided so the
// stream is stable across Go releases, which keeps recorded experiment
// outputs reproducible bit-for-bit.
type Rand struct {
	s [4]uint64
}

// NewRand returns a generator seeded from seed via splitmix64.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// Avoid the all-zero state, which xoshiro cannot escape.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Fork derives an independent generator; streams from the parent and the
// child do not overlap in practice. Used to give each simulated entity
// its own stream so adding entities does not perturb others.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *Rand) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// ExpFloat64 returns an exponential variate with mean 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		return -math.Log(u)
	}
}

// ExpDuration returns an exponential virtual duration with the given
// mean — the inter-arrival law of a Poisson process, used by open-loop
// load generators. The result is floored at 1 (never zero) so two
// arrivals cannot collapse onto the same instant with identical
// ordering ambiguity.
func (r *Rand) ExpDuration(mean Time) Time {
	if mean <= 0 {
		panic("sim: ExpDuration with non-positive mean")
	}
	d := Time(float64(mean) * r.ExpFloat64())
	if d < 1 {
		d = 1
	}
	return d
}

// Duration returns a uniform virtual duration in [lo, hi].
func (r *Rand) Duration(lo, hi Time) Time {
	if hi < lo {
		panic("sim: Duration with hi < lo")
	}
	if hi == lo {
		return lo
	}
	return lo + Time(r.Uint64()%uint64(hi-lo+1))
}

// LogNormal returns a log-normal variate with the given location and
// scale parameters of the underlying normal.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
