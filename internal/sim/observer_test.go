package sim

import "testing"

// TestObserverSeesFiredEventsOnly: the observer runs once per dispatched
// event, before its callback, and never for cancelled events.
func TestObserverSeesFiredEventsOnly(t *testing.T) {
	e := NewEngine(1)
	var seen []string
	e.SetObserver(func(at Time, label string) { seen = append(seen, label) })

	order := ""
	e.After(Millisecond, "keep", func() { order += "cb" })
	victim := e.After(2*Millisecond, "victim", func() { t.Error("cancelled event fired") })
	e.After(3*Millisecond, "late", func() {})
	e.Cancel(victim)

	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != "keep" || seen[1] != "late" {
		t.Fatalf("observer saw %v, want [keep late]", seen)
	}
	if order != "cb" {
		t.Fatal("callback did not run")
	}
}

// TestEngineEventAccounting: every scheduled event is eventually either
// fired or cancelled; the counters must balance.
func TestEngineEventAccounting(t *testing.T) {
	e := NewEngine(1)
	var evs []EventRef
	for i := 0; i < 10; i++ {
		evs = append(evs, e.After(Time(i+1)*Millisecond, "e", func() {}))
	}
	// Cancel three, one of them twice (the second must not double-count).
	e.Cancel(evs[0])
	e.Cancel(evs[4])
	e.Cancel(evs[9])
	e.Cancel(evs[4])
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Scheduled != 10 {
		t.Fatalf("Scheduled = %d, want 10", e.Scheduled)
	}
	if e.Cancelled != 3 {
		t.Fatalf("Cancelled = %d, want 3", e.Cancelled)
	}
	if e.Processed != 7 {
		t.Fatalf("Processed = %d, want 7", e.Processed)
	}
	if e.Scheduled != e.Cancelled+e.Processed {
		t.Fatal("counters do not balance")
	}

	// Cancelling an already-fired event is a no-op and not a cancellation:
	// its ref went stale when the event was recycled.
	e.Cancel(evs[1])
	if e.Cancelled != 3 {
		t.Fatalf("cancel-after-fire counted: Cancelled = %d", e.Cancelled)
	}
	if evs[1].Pending() {
		t.Fatal("fired event still reports pending")
	}
}
