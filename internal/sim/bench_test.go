package sim

import "testing"

// The microbenchmarks below are the acceptance bar for the event-core
// rewrite (see docs/performance.md): schedule+fire throughput, timer
// rearm cost, and cancel-heavy mixed workloads. `make bench` records
// their ns/op and allocs/op into BENCH_sim.json (vscale-simbench/v1).

// BenchmarkSchedule measures one schedule+fire cycle on an otherwise
// empty queue: the hot path of every engine event.
func BenchmarkSchedule(b *testing.B) {
	e := NewEngine(1)
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(Microsecond, "bench", nop)
		if !e.step() {
			b.Fatal("queue empty")
		}
	}
}

// BenchmarkScheduleDepth measures schedule+fire with 4096 far-future
// events resident, exercising sift depth and cache behaviour.
func BenchmarkScheduleDepth(b *testing.B) {
	e := NewEngine(1)
	nop := func() {}
	for i := 0; i < 4096; i++ {
		e.After(Second+Time(i)*Millisecond, "bg", nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(0, "bench", nop)
		if !e.step() {
			b.Fatal("queue empty")
		}
	}
}

// BenchmarkTimerReset measures rearming a pending timer — the dominant
// timer operation in the hypervisor (slice reprogramming on every
// dispatch). Steady state must not allocate.
func BenchmarkTimerReset(b *testing.B) {
	e := NewEngine(1)
	tm := NewTimer(e, "t", func() {})
	tm.Reset(Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Reset(Millisecond)
	}
}

// BenchmarkTimerResetFire measures the full rearm+expire cycle: Reset,
// run to the deadline, repeat. Steady state must not allocate.
func BenchmarkTimerResetFire(b *testing.B) {
	e := NewEngine(1)
	fires := 0
	tm := NewTimer(e, "t", func() { fires++ })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Reset(Microsecond)
		if err := e.RunUntil(e.Now() + Microsecond); err != nil {
			b.Fatal(err)
		}
	}
	if fires != b.N {
		b.Fatalf("fires = %d, want %d", fires, b.N)
	}
}

// BenchmarkTicker measures steady periodic ticking.
func BenchmarkTicker(b *testing.B) {
	e := NewEngine(1)
	n := 0
	tk := NewTicker(e, "tick", Microsecond, func() { n++ })
	tk.Start()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.RunUntil(e.Now() + Microsecond); err != nil {
			b.Fatal(err)
		}
	}
	if n < b.N {
		b.Fatalf("ticks = %d, want >= %d", n, b.N)
	}
}

// BenchmarkMixedCancel measures a cancel-heavy workload: batches of
// scheduled events where half are cancelled before the batch drains,
// the pattern produced by timer-rearm storms and superseded wakeups.
func BenchmarkMixedCancel(b *testing.B) {
	const batch = 512
	e := NewEngine(1)
	nop := func() {}
	refs := make([]EventRef, 0, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refs = append(refs, e.After(Time(i%257)*Microsecond, "bench", nop))
		if len(refs) == batch {
			for j := 0; j < batch; j += 2 {
				e.Cancel(refs[j])
			}
			if err := e.Run(); err != nil {
				b.Fatal(err)
			}
			refs = refs[:0]
		}
	}
	b.StopTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
