package sim

import (
	"fmt"
	"sort"
)

// This file is the engine half of the deterministic checkpoint/restore
// layer (docs/checkpoint.md). The engine itself cannot serialize pending
// events — their bodies are closures — so checkpointing is split:
//
//   - the engine exports its semantic scalars (clock, FIFO sequence
//     counter, PRNG state, drop accounting) via CheckpointState, and
//   - the caller captures every still-pending event as a *descriptor*
//     (label + deadline + FIFO order, via PendingEvents) that it knows
//     how to re-arm through the owning component (Ticker.ResumeAt,
//     Timer.ResetAt, ...).
//
// Restore then runs in the opposite order: rebuild components, purge
// whatever bootstrap events they scheduled (PurgeAll), re-arm the
// captured descriptors in their original FIFO order, and finally
// overwrite the scalars with RestoreState. Because re-armed events take
// ascending fresh sequence numbers and RestoreState only ever moves the
// engine's counter forward, the relative firing order among re-armed
// events — and between them and anything scheduled after restore — is
// identical to the straight-through run.

// RandState is the exported xoshiro256** state of a Rand.
type RandState [4]uint64

// State returns the generator's internal state. Restoring it with
// SetState resumes the exact variate stream.
func (r *Rand) State() RandState { return r.s }

// SetState overwrites the generator's internal state.
func (r *Rand) SetState(st RandState) {
	if st[0]|st[1]|st[2]|st[3] == 0 {
		panic("sim: SetState with all-zero xoshiro state")
	}
	r.s = st
}

// EngineState is the semantic scalar state of an Engine: everything the
// engine owns that is not a pending event body.
type EngineState struct {
	Now          Time      `json:"now"`
	Seq          uint64    `json:"seq"`
	Rand         RandState `json:"rand"`
	Processed    uint64    `json:"processed"`
	Scheduled    uint64    `json:"scheduled"`
	Cancelled    uint64    `json:"cancelled"`
	LastCancelAt Time      `json:"last_cancel_at"`
}

// CheckpointState captures the engine's semantic scalars. Pending events
// are not included; capture them with PendingEvents.
func (e *Engine) CheckpointState() EngineState {
	return EngineState{
		Now:          e.now,
		Seq:          e.seq,
		Rand:         e.rand.State(),
		Processed:    e.Processed,
		Scheduled:    e.Scheduled,
		Cancelled:    e.Cancelled,
		LastCancelAt: e.LastCancelAt,
	}
}

// RestoreState overwrites the engine's semantic scalars from a prior
// CheckpointState. The clock only moves forward: restoring to a time
// before an already-queued event would corrupt the heap invariant, so
// the caller must re-arm pending events at-or-after st.Now first (their
// deadlines were >= st.Now when captured). The sequence counter is
// clamped to max(current, captured) so events scheduled after restore
// order after both the re-armed descriptors and everything the captured
// run had already numbered.
func (e *Engine) RestoreState(st EngineState) error {
	if st.Now < e.now {
		return fmt.Errorf("sim: restore to %v would move the clock backwards (now %v)", st.Now, e.now)
	}
	if next := e.peekLive(); next != nil && next.when < st.Now {
		return fmt.Errorf("sim: pending event %q at %v predates restore time %v", next.label, next.when, st.Now)
	}
	e.now = st.Now
	if st.Seq > e.seq {
		e.seq = st.Seq
	}
	e.rand.SetState(st.Rand)
	e.Processed = st.Processed
	e.Scheduled = st.Scheduled
	e.Cancelled = st.Cancelled
	e.LastCancelAt = st.LastCancelAt
	return nil
}

// PendingEvent describes one still-pending (live, uncancelled) event:
// its deadline, its FIFO sequence number, and the debug label it was
// scheduled under. Descriptors are how checkpoints record the event
// queue — the owning component re-arms the matching event on restore.
type PendingEvent struct {
	When  Time   `json:"when"`
	Seq   uint64 `json:"seq"`
	Label string `json:"label"`
}

// PendingEvents returns descriptors for every live pending event in
// firing order (when, then FIFO sequence). Cancelled-but-uncollected
// entries are excluded.
func (e *Engine) PendingEvents() []PendingEvent {
	out := make([]PendingEvent, 0, len(e.queue.a))
	for _, ev := range e.queue.a {
		if ev == nil || ev.cancelled {
			continue
		}
		out = append(out, PendingEvent{When: ev.when, Seq: ev.seq, Label: ev.label})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].When != out[j].When {
			return out[i].When < out[j].When
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// PurgeAll discards every queued event — live or cancelled — without
// firing any of them, and returns how many live events were dropped.
// It exists for restore: a freshly rebuilt component tree schedules
// bootstrap events that the checkpoint's descriptor list supersedes.
// Drop accounting is left untouched; RestoreState overwrites it anyway.
func (e *Engine) PurgeAll() int {
	live := 0
	for len(e.queue.a) > 0 {
		ev := e.queue.popMin()
		if !ev.cancelled {
			live++
		}
		e.recycle(ev)
	}
	e.nCancel = 0
	return live
}

// ResumeAt re-arms the ticker to fire at the absolute time a checkpoint
// recorded, preserving the captured phase (Start would re-phase to
// now+period instead). Subsequent firings continue every Period as
// usual.
func (t *Ticker) ResumeAt(when Time) {
	t.stopped = false
	if t.eng.Reschedule(t.ev, when) {
		return
	}
	t.ev = t.eng.At(when, t.label, t.cb)
}
