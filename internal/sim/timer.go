package sim

// Timer is a restartable one-shot timer layered over engine events. It is
// used for the many "program the next deadline" patterns in the
// hypervisor and guest kernels (slice expiry, tick, accounting period).
//
// The timer owns a single callback closure, allocated once at NewTimer,
// and rearms its pending event in place via Engine.Reschedule, so
// steady-state Reset traffic performs no allocation.
type Timer struct {
	eng   *Engine
	ev    EventRef
	label string
	fn    EventFunc
	cb    EventFunc // reusable engine callback, built once
}

// NewTimer creates a stopped timer that runs fn when it fires.
func NewTimer(eng *Engine, label string, fn EventFunc) *Timer {
	t := &Timer{eng: eng, label: label, fn: fn}
	// By the time cb runs the fired event has been recycled, so t.ev is
	// already stale (Armed reports false); fn may rearm freely.
	t.cb = func() { t.fn() }
	return t
}

// Reset (re)arms the timer to fire d from now, superseding any pending
// expiry.
func (t *Timer) Reset(d Time) {
	checkNonNegative(d)
	t.ResetAt(t.eng.Now() + d)
}

// ResetAt (re)arms the timer to fire at absolute time when. A pending
// expiry is moved in place; otherwise a pooled event is scheduled.
func (t *Timer) ResetAt(when Time) {
	if t.eng.Reschedule(t.ev, when) {
		return
	}
	t.ev = t.eng.At(when, t.label, t.cb)
}

// Stop cancels a pending expiry, if any.
func (t *Timer) Stop() {
	t.eng.Cancel(t.ev)
	t.ev = EventRef{}
}

// Armed reports whether the timer has a pending expiry.
func (t *Timer) Armed() bool { return t.ev.Pending() }

// Deadline returns the pending expiry time, or MaxTime if stopped.
func (t *Timer) Deadline() Time { return t.ev.When() }

// Ticker fires fn every period until stopped. The first firing is one
// period from Start. Like Timer it reuses one callback closure and a
// pooled event, so steady ticking is allocation-free.
type Ticker struct {
	eng     *Engine
	ev      EventRef
	label   string
	period  Time
	fn      EventFunc
	stopped bool
	cb      EventFunc // reusable engine callback, built once
}

// NewTicker creates a stopped ticker.
func NewTicker(eng *Engine, label string, period Time, fn EventFunc) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{eng: eng, label: label, period: period, fn: fn, stopped: true}
	t.cb = func() {
		t.fn()
		// fn may have stopped (or restarted) the ticker; only rearm if it
		// is still running and nothing else armed it.
		if !t.stopped && !t.ev.Pending() {
			t.arm()
		}
	}
	return t
}

// Start arms the ticker. Starting a running ticker re-phases it.
func (t *Ticker) Start() {
	t.stopped = false
	t.arm()
}

func (t *Ticker) arm() {
	when := t.eng.Now() + t.period
	if t.eng.Reschedule(t.ev, when) {
		return
	}
	t.ev = t.eng.At(when, t.label, t.cb)
}

// Stop cancels future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	t.eng.Cancel(t.ev)
	t.ev = EventRef{}
}

// Running reports whether the ticker is armed or mid-callback.
func (t *Ticker) Running() bool { return !t.stopped }

// Period returns the tick period.
func (t *Ticker) Period() Time { return t.period }

// SetPeriod changes the period; it takes effect at the next (re)arm.
func (t *Ticker) SetPeriod(p Time) {
	if p <= 0 {
		panic("sim: ticker period must be positive")
	}
	t.period = p
}
