package sim

// Timer is a restartable one-shot timer layered over engine events. It is
// used for the many "program the next deadline" patterns in the
// hypervisor and guest kernels (slice expiry, tick, accounting period).
type Timer struct {
	eng   *Engine
	ev    *Event
	label string
	fn    EventFunc
}

// NewTimer creates a stopped timer that runs fn when it fires.
func NewTimer(eng *Engine, label string, fn EventFunc) *Timer {
	return &Timer{eng: eng, label: label, fn: fn}
}

// Reset (re)arms the timer to fire d from now, cancelling any pending
// expiry.
func (t *Timer) Reset(d Time) {
	t.Stop()
	t.ev = t.eng.After(d, t.label, func() {
		t.ev = nil
		t.fn()
	})
}

// ResetAt (re)arms the timer to fire at absolute time when.
func (t *Timer) ResetAt(when Time) {
	t.Stop()
	t.ev = t.eng.At(when, t.label, func() {
		t.ev = nil
		t.fn()
	})
}

// Stop cancels a pending expiry, if any.
func (t *Timer) Stop() {
	if t.ev != nil {
		t.eng.Cancel(t.ev)
		t.ev = nil
	}
}

// Armed reports whether the timer has a pending expiry.
func (t *Timer) Armed() bool { return t.ev != nil }

// Deadline returns the pending expiry time, or MaxTime if stopped.
func (t *Timer) Deadline() Time {
	if t.ev == nil {
		return MaxTime
	}
	return t.ev.When()
}

// Ticker fires fn every period until stopped. The first firing is one
// period from Start.
type Ticker struct {
	eng     *Engine
	ev      *Event
	label   string
	period  Time
	fn      EventFunc
	stopped bool
}

// NewTicker creates a stopped ticker.
func NewTicker(eng *Engine, label string, period Time, fn EventFunc) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	return &Ticker{eng: eng, label: label, period: period, fn: fn, stopped: true}
}

// Start arms the ticker. Starting a running ticker re-phases it.
func (t *Ticker) Start() {
	t.Stop()
	t.stopped = false
	t.arm()
}

func (t *Ticker) arm() {
	t.ev = t.eng.After(t.period, t.label, func() {
		t.ev = nil
		t.fn()
		// fn may have stopped (or restarted) the ticker; only rearm if it
		// is still running and nothing else armed it.
		if !t.stopped && t.ev == nil {
			t.arm()
		}
	})
}

// Stop cancels future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.ev != nil {
		t.eng.Cancel(t.ev)
		t.ev = nil
	}
}

// Running reports whether the ticker is armed or mid-callback.
func (t *Ticker) Running() bool { return !t.stopped }

// Period returns the tick period.
func (t *Ticker) Period() Time { return t.period }

// SetPeriod changes the period; it takes effect at the next (re)arm.
func (t *Ticker) SetPeriod(p Time) {
	if p <= 0 {
		panic("sim: ticker period must be positive")
	}
	t.period = p
}
