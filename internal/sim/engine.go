package sim

import (
	"container/heap"
	"fmt"
)

// EventFunc is the body of a scheduled event. It runs at the event's
// virtual timestamp with the engine clock already advanced.
type EventFunc func()

// Event is a handle to a scheduled event. It can be cancelled; cancelled
// events stay in the heap but are skipped when popped.
type Event struct {
	when      Time
	seq       uint64 // FIFO tie-break for simultaneous events
	index     int    // heap index, -1 when popped
	fn        EventFunc
	cancelled bool
	fired     bool
	label     string
}

// When returns the virtual time the event is scheduled for.
func (e *Event) When() Time { return e.when }

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.cancelled }

// Fired reports whether the event has executed.
func (e *Event) Fired() bool { return e.fired }

// Label returns the debug label given at scheduling time.
func (e *Event) Label() string { return e.label }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Observer receives every executed event (virtual timestamp plus the
// label given at scheduling time). Cancelled events are never observed:
// they are dropped silently when popped off the heap. Observers must be
// pure with respect to simulation state — they exist for tracing.
type Observer func(at Time, label string)

// Engine is the discrete-event simulation core: a virtual clock and an
// ordered queue of future events. Engines are not safe for concurrent
// use; the entire simulation is single-threaded and deterministic.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	rand    *Rand
	stopped bool
	obs     Observer

	// Processed counts events executed (not cancelled), for tests and
	// runaway-simulation guards.
	Processed uint64
	// Scheduled counts every event ever placed on the heap; together
	// with Cancelled and Processed (fired) it gives the drop accounting
	// Scheduled = Cancelled + Processed + still-pending.
	Scheduled uint64
	// Cancelled counts events cancelled before firing. Cancelling an
	// event that already fired (or was already cancelled) does not
	// count: those calls are no-ops.
	Cancelled uint64
	// LastCancelAt is the virtual time of the most recent effective
	// Cancel (zero when nothing was ever cancelled).
	LastCancelAt Time
	// Limit, when non-zero, aborts Run with an error after this many
	// executed events. It guards against accidental infinite event loops.
	Limit uint64
}

// NewEngine returns an engine with the clock at zero and a deterministic
// PRNG seeded with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rand: NewRand(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic PRNG.
func (e *Engine) Rand() *Rand { return e.rand }

// SetObserver installs obs (nil uninstalls). The observer is invoked
// for every executed event, immediately before the event body runs.
func (e *Engine) SetObserver(obs Observer) { e.obs = obs }

// At schedules fn to run at absolute virtual time when. Scheduling in the
// past panics. The label is kept for debugging.
func (e *Engine) At(when Time, label string, fn EventFunc) *Event {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", label, when, e.now))
	}
	ev := &Event{when: when, seq: e.seq, fn: fn, label: label}
	e.seq++
	e.Scheduled++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, label string, fn EventFunc) *Event {
	checkNonNegative(d)
	return e.At(e.now+d, label, fn)
}

// Cancel marks ev as cancelled. It is safe to cancel an event that has
// already fired or was already cancelled; those calls are no-ops and do
// not count towards the Cancelled drop accounting.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled || ev.fired {
		return
	}
	ev.cancelled = true
	e.Cancelled++
	e.LastCancelAt = e.now
}

// Pending returns the number of events still queued, including cancelled
// events not yet skipped.
func (e *Engine) Pending() int { return len(e.queue) }

// Stop makes the current Run/RunUntil call return after the in-flight
// event completes.
func (e *Engine) Stop() { e.stopped = true }

// step pops and executes the next non-cancelled event. It reports false
// when the queue is exhausted.
func (e *Engine) step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancelled {
			continue
		}
		if ev.when < e.now {
			panic("sim: event heap yielded an event in the past")
		}
		e.now = ev.when
		ev.fired = true
		e.Processed++
		if e.obs != nil {
			e.obs(e.now, ev.label)
		}
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called. It
// returns an error only if the event Limit was exceeded.
func (e *Engine) Run() error {
	e.stopped = false
	for !e.stopped {
		if e.Limit != 0 && e.Processed >= e.Limit {
			return fmt.Errorf("sim: event limit %d exceeded at %v", e.Limit, e.now)
		}
		if !e.step() {
			return nil
		}
	}
	return nil
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to exactly deadline. Events after the deadline remain queued.
// If Stop is called by an event, the clock stays where the stop
// happened.
func (e *Engine) RunUntil(deadline Time) error {
	e.stopped = false
	for !e.stopped {
		if e.Limit != 0 && e.Processed >= e.Limit {
			return fmt.Errorf("sim: event limit %d exceeded at %v", e.Limit, e.now)
		}
		// Peek at the next live event.
		next := e.peek()
		if next == nil || next.when > deadline {
			break
		}
		e.step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
	return nil
}

// peek returns the next non-cancelled event without executing it,
// discarding cancelled entries as it goes.
func (e *Engine) peek() *Event {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if !ev.cancelled {
			return ev
		}
		heap.Pop(&e.queue)
	}
	return nil
}
