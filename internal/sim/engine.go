package sim

import "fmt"

// EventFunc is the body of a scheduled event. It runs at the event's
// virtual timestamp with the engine clock already advanced.
type EventFunc func()

// Event is one pending entry in the engine's priority queue. Events are
// pooled: once fired or collected after a cancel they are recycled for
// the next At/After call, so user code never holds a *Event directly —
// it holds a generation-stamped EventRef instead.
type Event struct {
	when      Time
	seq       uint64 // FIFO tie-break for simultaneous events
	gen       uint64 // bumped on every recycle; stale EventRefs mismatch
	index     int    // position in the heap array, -1 when not queued
	fn        EventFunc
	cancelled bool
	label     string
}

// EventRef is a handle to a scheduled event: the event plus the
// generation it had when scheduled. Because events are pooled, a ref
// whose generation no longer matches refers to an event that already
// fired (or was cancelled and collected); Cancel and Reschedule treat
// such stale refs as safe no-ops. The zero EventRef is valid and never
// pending.
type EventRef struct {
	ev  *Event
	gen uint64
}

// live reports whether the ref still addresses its original, uncancelled
// scheduling.
func (r EventRef) live() bool {
	return r.ev != nil && r.ev.gen == r.gen && !r.ev.cancelled
}

// Pending reports whether the event is still queued and will fire.
func (r EventRef) Pending() bool { return r.live() }

// When returns the virtual time the event is scheduled for, or MaxTime
// ("never") if the ref is stale, cancelled, or zero.
func (r EventRef) When() Time {
	if r.live() {
		return r.ev.when
	}
	return MaxTime
}

// Label returns the debug label given at scheduling time, or "" if the
// ref is no longer pending.
func (r EventRef) Label() string {
	if r.live() {
		return r.ev.label
	}
	return ""
}

// heapArity is the fan-out of the pending-event heap. A 4-ary heap does
// ~half the levels of a binary heap on sift-down (the pop path) and
// keeps sibling comparisons within one or two cache lines.
const heapArity = 4

// eventHeap is an inlined, index-tracked 4-ary min-heap over *Event,
// ordered by (when, seq). It replaces container/heap to avoid interface
// boxing and indirect method calls on the hottest loop in the simulator.
type eventHeap struct {
	a []*Event
}

func (h *eventHeap) less(x, y *Event) bool {
	if x.when != y.when {
		return x.when < y.when
	}
	return x.seq < y.seq
}

func (h *eventHeap) push(ev *Event) {
	ev.index = len(h.a)
	h.a = append(h.a, ev)
	h.up(ev.index)
}

// up sifts the element at i toward the root, moving parents down into
// the hole rather than swapping (one index write per level).
func (h *eventHeap) up(i int) {
	ev := h.a[i]
	for i > 0 {
		p := (i - 1) / heapArity
		if !h.less(ev, h.a[p]) {
			break
		}
		h.a[i] = h.a[p]
		h.a[i].index = i
		i = p
	}
	h.a[i] = ev
	ev.index = i
}

// down sifts the element at i toward the leaves.
func (h *eventHeap) down(i int) {
	n := len(h.a)
	ev := h.a[i]
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.less(h.a[c], h.a[best]) {
				best = c
			}
		}
		if !h.less(h.a[best], ev) {
			break
		}
		h.a[i] = h.a[best]
		h.a[i].index = i
		i = best
	}
	h.a[i] = ev
	ev.index = i
}

// popMin removes and returns the earliest element.
func (h *eventHeap) popMin() *Event {
	ev := h.a[0]
	n := len(h.a) - 1
	last := h.a[n]
	h.a[n] = nil
	h.a = h.a[:n]
	if n > 0 {
		h.a[0] = last
		last.index = 0
		h.down(0)
	}
	ev.index = -1
	return ev
}

// fix restores heap order after ev's key changed in place.
func (h *eventHeap) fix(ev *Event) {
	h.down(ev.index)
	h.up(ev.index)
}

// init heapifies the array in place (Floyd's method), used after
// compaction rebuilds the backing slice.
func (h *eventHeap) init() {
	n := len(h.a)
	for i, ev := range h.a {
		ev.index = i
	}
	if n < 2 {
		return
	}
	for i := (n - 2) / heapArity; i >= 0; i-- {
		h.down(i)
	}
}

// Observer receives every executed event (virtual timestamp plus the
// label given at scheduling time). Cancelled events are never observed:
// they are dropped silently when popped off the heap. Observers must be
// pure with respect to simulation state — they exist for tracing.
type Observer func(at Time, label string)

// compactMinLen is the smallest heap for which cancelled-entry
// compaction is worth a rebuild; below it the lazy drain on pop is
// cheaper.
const compactMinLen = 32

// Engine is the discrete-event simulation core: a virtual clock and an
// ordered queue of future events. Engines are not safe for concurrent
// use; the entire simulation is single-threaded and deterministic.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	free    []*Event // recycled events, reused by the next At/After
	nCancel int      // cancelled entries currently in the heap
	rand    *Rand
	stopped bool
	obs     Observer

	// Processed counts events executed (not cancelled), for tests and
	// runaway-simulation guards.
	Processed uint64
	// Scheduled counts every arming ever placed on the heap (an in-place
	// Reschedule books a new arming); together with Cancelled and
	// Processed (fired) it gives the drop accounting
	// Scheduled = Cancelled + Processed + still-pending.
	Scheduled uint64
	// Cancelled counts armings retired before firing, by Cancel or by
	// Reschedule superseding the previous deadline. Cancelling an event
	// that already fired (or was already cancelled) does not count:
	// those calls are no-ops.
	Cancelled uint64
	// LastCancelAt is the virtual time of the most recent effective
	// Cancel (zero when nothing was ever cancelled).
	LastCancelAt Time
	// Limit, when non-zero, aborts Run with an error after this many
	// executed events. It guards against accidental infinite event loops.
	Limit uint64
}

// NewEngine returns an engine with the clock at zero and a deterministic
// PRNG seeded with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rand: NewRand(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic PRNG.
func (e *Engine) Rand() *Rand { return e.rand }

// SetObserver installs obs (nil uninstalls). The observer is invoked
// for every executed event, immediately before the event body runs.
func (e *Engine) SetObserver(obs Observer) { e.obs = obs }

// alloc takes an event from the free list, or heap-allocates when the
// pool is dry (cold start, or high-water growth of in-flight events).
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &Event{}
}

// recycle returns a no-longer-queued event to the pool. The generation
// bump is what turns every outstanding EventRef to it stale.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	ev.label = ""
	ev.cancelled = false
	ev.gen++
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute virtual time when. Scheduling in the
// past panics. The label is kept for debugging.
func (e *Engine) At(when Time, label string, fn EventFunc) EventRef {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", label, when, e.now))
	}
	ev := e.alloc()
	ev.when = when
	ev.seq = e.seq
	ev.fn = fn
	ev.label = label
	e.seq++
	e.Scheduled++
	e.queue.push(ev)
	return EventRef{ev: ev, gen: ev.gen}
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, label string, fn EventFunc) EventRef {
	checkNonNegative(d)
	return e.At(e.now+d, label, fn)
}

// Cancel retires the arming behind ref. It is safe to cancel a stale or
// zero ref (the event already fired, was already cancelled, or was never
// scheduled); those calls are no-ops and do not count towards the
// Cancelled drop accounting. Cancelled entries stay in the heap and are
// collected lazily on pop, or eagerly when they exceed half the heap.
func (e *Engine) Cancel(ref EventRef) {
	if !ref.live() {
		return
	}
	ref.ev.cancelled = true
	e.Cancelled++
	e.LastCancelAt = e.now
	e.nCancel++
	e.maybeCompact()
}

// Reschedule moves a still-pending arming to a new absolute time by
// sifting the event in place — no cancel-marker is left in the heap and
// no new entry is pushed, which is what makes steady-state timer rearm
// allocation-free. It reports false (and does nothing) when ref is
// stale, cancelled, or zero. ref itself remains valid and now addresses
// the new deadline.
//
// Accounting-wise a reschedule retires the previous arming and books a
// new one (Cancelled++ and Scheduled++), and the new arming takes a
// fresh FIFO sequence number — exactly the counters and firing order the
// equivalent Cancel+After pair would have produced, so the rewrite is
// observation-equivalent to the old cancel-and-repush timers.
func (e *Engine) Reschedule(ref EventRef, when Time) bool {
	if !ref.live() {
		return false
	}
	if when < e.now {
		panic(fmt.Sprintf("sim: rescheduling %q at %v before now %v", ref.ev.label, when, e.now))
	}
	e.Cancelled++
	e.LastCancelAt = e.now
	e.Scheduled++
	ev := ref.ev
	ev.when = when
	ev.seq = e.seq
	e.seq++
	e.queue.fix(ev)
	return true
}

// maybeCompact rebuilds the heap without its cancelled entries once they
// outnumber the live ones, so pathological cancel patterns cannot bloat
// memory or slow every subsequent pop. Compaction only reorders the
// internal array; pop order is a total order on (when, seq), so the
// firing sequence is unaffected.
func (e *Engine) maybeCompact() {
	n := len(e.queue.a)
	if n < compactMinLen || e.nCancel*2 <= n {
		return
	}
	old := e.queue.a
	live := old[:0]
	for _, ev := range old {
		if ev.cancelled {
			ev.index = -1
			e.recycle(ev)
		} else {
			live = append(live, ev)
		}
	}
	for i := len(live); i < n; i++ {
		old[i] = nil
	}
	e.queue.a = live
	e.queue.init()
	e.nCancel = 0
}

// Pending returns the number of events still queued, including cancelled
// events not yet collected.
func (e *Engine) Pending() int { return len(e.queue.a) }

// Stop makes the current Run/RunUntil call return after the in-flight
// event completes.
func (e *Engine) Stop() { e.stopped = true }

// peekLive returns the earliest live event without removing it,
// collecting cancelled entries off the top as it goes. It is the single
// drain path shared by step and RunUntil's deadline check.
func (e *Engine) peekLive() *Event {
	for len(e.queue.a) > 0 {
		ev := e.queue.a[0]
		if !ev.cancelled {
			return ev
		}
		e.queue.popMin()
		e.nCancel--
		e.recycle(ev)
	}
	return nil
}

// step pops and executes the next non-cancelled event. It reports false
// when the queue is exhausted. The event is recycled before its body
// runs, so the body (and anything it calls) can immediately reuse the
// slot; its outstanding refs have gone stale by then.
func (e *Engine) step() bool {
	ev := e.peekLive()
	if ev == nil {
		return false
	}
	e.queue.popMin()
	if ev.when < e.now {
		panic("sim: event heap yielded an event in the past")
	}
	e.now = ev.when
	e.Processed++
	fn, label := ev.fn, ev.label
	e.recycle(ev)
	if e.obs != nil {
		e.obs(e.now, label)
	}
	fn()
	return true
}

// Run executes events until the queue is empty or Stop is called. It
// returns an error only if the event Limit was exceeded.
func (e *Engine) Run() error {
	e.stopped = false
	for !e.stopped {
		if e.Limit != 0 && e.Processed >= e.Limit {
			return fmt.Errorf("sim: event limit %d exceeded at %v", e.Limit, e.now)
		}
		if !e.step() {
			return nil
		}
	}
	return nil
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to exactly deadline. Events after the deadline remain queued.
// If Stop is called by an event, the clock stays where the stop
// happened.
func (e *Engine) RunUntil(deadline Time) error {
	e.stopped = false
	for !e.stopped {
		if e.Limit != 0 && e.Processed >= e.Limit {
			return fmt.Errorf("sim: event limit %d exceeded at %v", e.Limit, e.now)
		}
		next := e.peekLive()
		if next == nil || next.when > deadline {
			break
		}
		e.step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
	return nil
}
