package sim

import (
	"container/heap"
	"testing"
)

// This file retains the seed event core — container/heap over boxed
// events, cancel-as-tombstone, reschedule as cancel-and-repush — as a
// reference implementation, and replays large randomized workloads
// through both engines. The rewritten core (4-ary heap, pooled events,
// in-place reschedule, compaction) must produce the identical firing
// sequence, timestamps, and drop accounting.

type refEvent struct {
	when      Time
	seq       uint64
	index     int
	fn        func()
	cancelled bool
	fired     bool
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *refHeap) Push(x any) {
	e := x.(*refEvent)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

type refEngine struct {
	now                             Time
	seq                             uint64
	queue                           refHeap
	scheduled, cancelled, processed uint64
}

func (e *refEngine) At(when Time, fn func()) *refEvent {
	ev := &refEvent{when: when, seq: e.seq, fn: fn}
	e.seq++
	e.scheduled++
	heap.Push(&e.queue, ev)
	return ev
}

func (e *refEngine) Cancel(ev *refEvent) {
	if ev == nil || ev.cancelled || ev.fired {
		return
	}
	ev.cancelled = true
	e.cancelled++
}

// Reschedule is the seed pattern: cancel the old arming, push a fresh
// event with the same body and a new sequence number. It returns the
// replacement handle (nil when the arming was no longer live).
func (e *refEngine) Reschedule(ev *refEvent, when Time) *refEvent {
	if ev == nil || ev.cancelled || ev.fired {
		return nil
	}
	e.Cancel(ev)
	return e.At(when, ev.fn)
}

func (e *refEngine) step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*refEvent)
		if ev.cancelled {
			continue
		}
		e.now = ev.when
		ev.fired = true
		e.processed++
		ev.fn()
		return true
	}
	return false
}

func (e *refEngine) RunUntil(deadline Time) {
	for {
		var next *refEvent
		for len(e.queue) > 0 {
			if top := e.queue[0]; !top.cancelled {
				next = top
				break
			}
			heap.Pop(&e.queue)
		}
		if next == nil || next.when > deadline {
			break
		}
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

func (e *refEngine) Run() {
	for e.step() {
	}
}

// fireRec is one observed firing: which logical event, and when.
type fireRec struct {
	id int
	at Time
}

// TestDifferentialEngineEquivalence replays ≥10^5 randomized
// schedule/cancel/reschedule/advance operations — including events whose
// bodies schedule children and cancel siblings — through both engines
// and requires identical firing order, timestamps, and accounting.
func TestDifferentialEngineEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1234} {
		seed := seed
		t.Run(Time(seed).String(), func(t *testing.T) {
			const ops = 120_000
			rng := NewRand(seed)

			newEng := NewEngine(seed)
			refEng := &refEngine{}

			var logNew, logRef []fireRec
			var refsNew []EventRef
			var refsRef []*refEvent
			nextID := 0

			// schedule registers the same logical event on both engines.
			// Every third event's body spawns a child one step later and
			// cancels a pseudo-random earlier handle, exercising nested
			// scheduling and stale cancels from inside callbacks.
			var schedule func(delay Time)
			schedule = func(delay Time) {
				id := nextID
				nextID++
				whenNew := newEng.Now() + delay
				whenRef := refEng.now + delay
				if whenNew != whenRef {
					t.Fatalf("clocks diverged before scheduling id %d: %v vs %v", id, whenNew, whenRef)
				}
				childDelay := Time(uint64(id)%97) * Microsecond
				victim := id / 2
				refsNew = append(refsNew, newEng.At(whenNew, "d", func() {
					logNew = append(logNew, fireRec{id, newEng.Now()})
					if id%3 == 0 {
						newEng.At(newEng.Now()+childDelay, "c", func() {
							logNew = append(logNew, fireRec{-id - 1, newEng.Now()})
						})
						newEng.Cancel(refsNew[victim])
					}
				}))
				refsRef = append(refsRef, refEng.At(whenRef, func() {
					logRef = append(logRef, fireRec{id, refEng.now})
					if id%3 == 0 {
						refEng.At(refEng.now+childDelay, func() {
							logRef = append(logRef, fireRec{-id - 1, refEng.now})
						})
						refEng.Cancel(refsRef[victim])
					}
				}))
			}

			// The new engine's child events do not register handles; keep
			// the handle tables aligned by construction (only top-level
			// schedules append to refsNew/refsRef).

			for op := 0; op < ops; op++ {
				switch r := rng.Intn(100); {
				case r < 55:
					schedule(Time(rng.Intn(2000)) * Microsecond)
				case r < 75 && len(refsNew) > 0:
					k := rng.Intn(len(refsNew))
					newEng.Cancel(refsNew[k])
					refEng.Cancel(refsRef[k])
				case r < 90 && len(refsNew) > 0:
					k := rng.Intn(len(refsNew))
					delay := Time(rng.Intn(3000)) * Microsecond
					okNew := newEng.Reschedule(refsNew[k], newEng.Now()+delay)
					repl := refEng.Reschedule(refsRef[k], refEng.now+delay)
					if okNew != (repl != nil) {
						t.Fatalf("reschedule liveness diverged at op %d: new=%v ref=%v", op, okNew, repl != nil)
					}
					if repl != nil {
						refsRef[k] = repl
					}
				default:
					d := Time(rng.Intn(500)) * Microsecond
					if err := newEng.RunUntil(newEng.Now() + d); err != nil {
						t.Fatal(err)
					}
					refEng.RunUntil(refEng.now + d)
				}
			}
			if err := newEng.Run(); err != nil {
				t.Fatal(err)
			}
			refEng.Run()

			if len(logNew) != len(logRef) {
				t.Fatalf("fired %d events, reference fired %d", len(logNew), len(logRef))
			}
			for i := range logNew {
				if logNew[i] != logRef[i] {
					t.Fatalf("firing %d diverged: new=%+v ref=%+v", i, logNew[i], logRef[i])
				}
			}
			if newEng.Now() != refEng.now {
				t.Fatalf("final clocks: new=%v ref=%v", newEng.Now(), refEng.now)
			}
			if newEng.Scheduled != refEng.scheduled ||
				newEng.Cancelled != refEng.cancelled ||
				newEng.Processed != refEng.processed {
				t.Fatalf("accounting diverged: new=%d/%d/%d ref=%d/%d/%d",
					newEng.Scheduled, newEng.Cancelled, newEng.Processed,
					refEng.scheduled, refEng.cancelled, refEng.processed)
			}
			if newEng.Pending() != 0 {
				t.Fatalf("events left pending after Run: %d", newEng.Pending())
			}
			if newEng.Scheduled != newEng.Cancelled+newEng.Processed {
				t.Fatalf("drop accounting does not balance: %d != %d + %d",
					newEng.Scheduled, newEng.Cancelled, newEng.Processed)
			}
		})
	}
}

// TestDifferentialTimerEquivalence drives the rewritten Timer/Ticker
// (in-place reschedule, pooled events) against hand-rolled seed-style
// timers on the reference engine under a randomized rearm/stop workload.
func TestDifferentialTimerEquivalence(t *testing.T) {
	for _, seed := range []uint64{3, 99} {
		seed := seed
		t.Run(Time(seed).String(), func(t *testing.T) {
			const ops = 30_000
			rng := NewRand(seed)

			newEng := NewEngine(seed)
			refEng := &refEngine{}

			var logNew, logRef []Time
			tm := NewTimer(newEng, "t", func() { logNew = append(logNew, newEng.Now()) })
			var refEv *refEvent
			refFire := func() { refEv = nil; logRef = append(logRef, refEng.now) }

			for op := 0; op < ops; op++ {
				switch r := rng.Intn(10); {
				case r < 6:
					d := Time(rng.Intn(300)) * Microsecond
					tm.Reset(d)
					if refEv != nil {
						refEng.Cancel(refEv)
					}
					refEv = refEng.At(refEng.now+d, refFire)
				case r < 7:
					tm.Stop()
					if refEv != nil {
						refEng.Cancel(refEv)
						refEv = nil
					}
				default:
					d := Time(rng.Intn(200)) * Microsecond
					if err := newEng.RunUntil(newEng.Now() + d); err != nil {
						t.Fatal(err)
					}
					refEng.RunUntil(refEng.now + d)
					if tm.Armed() != (refEv != nil) {
						t.Fatalf("armed state diverged at op %d", op)
					}
				}
			}
			if err := newEng.Run(); err != nil {
				t.Fatal(err)
			}
			refEng.Run()

			if len(logNew) != len(logRef) {
				t.Fatalf("fired %d, reference fired %d", len(logNew), len(logRef))
			}
			for i := range logNew {
				if logNew[i] != logRef[i] {
					t.Fatalf("firing %d diverged: %v vs %v", i, logNew[i], logRef[i])
				}
			}
			if newEng.Scheduled != refEng.scheduled ||
				newEng.Cancelled != refEng.cancelled ||
				newEng.Processed != refEng.processed {
				t.Fatalf("accounting diverged: new=%d/%d/%d ref=%d/%d/%d",
					newEng.Scheduled, newEng.Cancelled, newEng.Processed,
					refEng.scheduled, refEng.cancelled, refEng.processed)
			}
		})
	}
}
