package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.After(30*Millisecond, "c", func() { got = append(got, 3) })
	e.After(10*Millisecond, "a", func() { got = append(got, 1) })
	e.After(20*Millisecond, "b", func() { got = append(got, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30*Millisecond {
		t.Fatalf("Now = %v, want 30ms", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5*Millisecond, "tie", func() { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events ran out of order: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.After(Millisecond, "x", func() { fired = true })
	e.Cancel(ev)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double-cancel and cancelling the zero ref must be no-ops.
	e.Cancel(ev)
	e.Cancel(EventRef{})
}

func TestEventRefStaleAfterFire(t *testing.T) {
	e := NewEngine(1)
	ev := e.After(Millisecond, "x", func() {})
	if !ev.Pending() || ev.When() != Millisecond || ev.Label() != "x" {
		t.Fatalf("pending ref: Pending=%v When=%v Label=%q", ev.Pending(), ev.When(), ev.Label())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ev.Pending() {
		t.Fatal("fired ref still pending")
	}
	if ev.When() != MaxTime || ev.Label() != "" {
		t.Fatalf("stale ref: When=%v Label=%q", ev.When(), ev.Label())
	}
	// A stale ref must not cancel whatever recycled event now occupies
	// the slot.
	fired := false
	e.After(Millisecond, "next", func() { fired = true })
	e.Cancel(ev)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("stale cancel killed a recycled event")
	}
	if e.Cancelled != 0 {
		t.Fatalf("stale cancels counted: Cancelled = %d", e.Cancelled)
	}
}

func TestReschedule(t *testing.T) {
	e := NewEngine(1)
	var got []string
	ev := e.After(Millisecond, "moved", func() { got = append(got, "moved") })
	e.After(2*Millisecond, "fixed", func() { got = append(got, "fixed") })
	// Move the first event past the second; it must keep its handle and
	// fire in the new order.
	if !e.Reschedule(ev, 3*Millisecond) {
		t.Fatal("reschedule of pending event failed")
	}
	if !ev.Pending() || ev.When() != 3*Millisecond {
		t.Fatalf("ref after reschedule: Pending=%v When=%v", ev.Pending(), ev.When())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "fixed" || got[1] != "moved" {
		t.Fatalf("order = %v, want [fixed moved]", got)
	}
	// Stale and cancelled refs refuse to reschedule.
	if e.Reschedule(ev, 10*Millisecond) {
		t.Fatal("rescheduled a fired event")
	}
	victim := e.After(Millisecond, "v", func() { t.Error("cancelled event fired") })
	e.Cancel(victim)
	if e.Reschedule(victim, 2*Millisecond) {
		t.Fatal("rescheduled a cancelled event")
	}
	if e.Reschedule(EventRef{}, 2*Millisecond) {
		t.Fatal("rescheduled the zero ref")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestRescheduleTieBreak: a reschedule takes a fresh FIFO sequence
// number, exactly as cancel-and-repush would, so a rescheduled event
// fires after events already queued for the same instant.
func TestRescheduleTieBreak(t *testing.T) {
	e := NewEngine(1)
	var got []string
	ev := e.After(Millisecond, "early", func() { got = append(got, "early") })
	e.After(5*Millisecond, "same", func() { got = append(got, "same") })
	e.Reschedule(ev, 5*Millisecond)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "same" || got[1] != "early" {
		t.Fatalf("order = %v, want [same early]", got)
	}
}

// TestEventPoolRecycles: the engine reuses event structs, so a long
// schedule/fire chain must not grow the pool beyond its concurrency
// high-water mark.
func TestEventPoolRecycles(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 1000 {
			e.After(Microsecond, "tick", tick)
		}
	}
	e.After(0, "start", tick)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Fatalf("n = %d", n)
	}
	if got := len(e.free); got > 2 {
		t.Fatalf("pool holds %d events after a depth-1 chain, want <= 2", got)
	}
}

// TestCompaction: mass-cancelling must shrink the heap eagerly rather
// than leaving tombstones until pop, while keeping counters and firing
// intact.
func TestCompaction(t *testing.T) {
	e := NewEngine(1)
	var refs []EventRef
	fired := 0
	for i := 0; i < 1000; i++ {
		refs = append(refs, e.After(Time(i+1)*Millisecond, "e", func() { fired++ }))
	}
	// Cancel two of every three: once tombstones exceed half the heap,
	// compaction must drop them eagerly.
	for i, r := range refs {
		if i%3 != 0 {
			e.Cancel(r)
		}
	}
	if e.Pending() > 500 {
		t.Fatalf("heap not compacted: %d pending", e.Pending())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 334 {
		t.Fatalf("fired = %d, want 334", fired)
	}
	if e.Scheduled != 1000 || e.Cancelled != 666 || e.Processed != 334 {
		t.Fatalf("counters = %d/%d/%d", e.Scheduled, e.Cancelled, e.Processed)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, d := range []Time{Millisecond, 2 * Millisecond, 5 * Millisecond} {
		d := d
		e.After(d, "t", func() { fired = append(fired, d) })
	}
	if err := e.RunUntil(3 * Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events before deadline, want 2", len(fired))
	}
	if e.Now() != 3*Millisecond {
		t.Fatalf("clock = %v, want exactly the deadline", e.Now())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 {
		t.Fatalf("remaining event lost: fired=%v", fired)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			e.After(Microsecond, "rec", rec)
		}
	}
	e.After(0, "start", rec)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != 99*Microsecond {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestEngineLimit(t *testing.T) {
	e := NewEngine(1)
	e.Limit = 10
	var loop func()
	loop = func() { e.After(Millisecond, "loop", loop) }
	e.After(0, "start", loop)
	if err := e.Run(); err == nil {
		t.Fatal("expected limit error")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var loop func()
	loop = func() {
		n++
		if n == 5 {
			e.Stop()
		}
		e.After(Millisecond, "loop", loop)
	}
	e.After(0, "start", loop)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("n = %d, want 5 (Stop should halt the loop)", n)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.After(Millisecond, "x", func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(0, "past", func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTimerResetAndStop(t *testing.T) {
	e := NewEngine(1)
	fires := 0
	tm := NewTimer(e, "t", func() { fires++ })
	tm.Reset(2 * Millisecond)
	tm.Reset(5 * Millisecond) // supersedes the first arm
	if !tm.Armed() || tm.Deadline() != 5*Millisecond {
		t.Fatalf("deadline = %v", tm.Deadline())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fires != 1 {
		t.Fatalf("fires = %d, want 1 (Reset must supersede)", fires)
	}
	tm.Reset(Millisecond)
	tm.Stop()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fires != 1 {
		t.Fatal("stopped timer fired")
	}
	if tm.Deadline() != MaxTime {
		t.Fatal("stopped timer should report MaxTime deadline")
	}
}

func TestTickerPeriodic(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var tk *Ticker
	tk = NewTicker(e, "tick", Millisecond, func() {
		n++
		if n == 7 {
			tk.Stop()
		}
	})
	tk.Start()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("ticks = %d, want 7", n)
	}
	if e.Now() != 7*Millisecond {
		t.Fatalf("Now = %v, want 7ms", e.Now())
	}
}

func TestTickerRestartWithinCallback(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var tk *Ticker
	tk = NewTicker(e, "tick", Millisecond, func() {
		n++
		if n == 1 {
			tk.SetPeriod(2 * Millisecond)
			tk.Start() // re-phase from inside the callback
		}
		if n == 3 {
			tk.Stop()
		}
	})
	tk.Start()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 1ms (n=1), then 3ms (n=2), then 5ms (n=3).
	if n != 3 || e.Now() != 5*Millisecond {
		t.Fatalf("n=%d now=%v", n, e.Now())
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds nearly identical: %d collisions", same)
	}
}

func TestRandUniformity(t *testing.T) {
	r := NewRand(7)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean of uniforms = %f", mean)
	}
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for i, b := range buckets {
		if b < n/10-n/50 || b > n/10+n/50 {
			t.Fatalf("bucket %d has %d of %d", i, b, n)
		}
	}
}

func TestRandDurationBounds(t *testing.T) {
	r := NewRand(9)
	f := func(a, b uint32) bool {
		lo, hi := Time(a%1000), Time(a%1000)+Time(b%1000)
		d := r.Duration(lo, hi)
		return d >= lo && d <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandNormalMoments(t *testing.T) {
	r := NewRand(11)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean, variance := sum/n, sq/n
	if mean < -0.02 || mean > 0.02 {
		t.Fatalf("normal mean = %f", mean)
	}
	if variance < 0.97 || variance > 1.03 {
		t.Fatalf("normal variance = %f", variance)
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if m := sum / n; m < 0.98 || m > 1.02 {
		t.Fatalf("exponential mean = %f", m)
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(17)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestRandFork(t *testing.T) {
	r := NewRand(21)
	f := r.Fork()
	// The fork must be decoupled: drawing from one must not change the
	// other's future output beyond the fork point.
	want := f.Uint64()
	r2 := NewRand(21)
	f2 := r2.Fork()
	for i := 0; i < 100; i++ {
		r2.Uint64()
	}
	if f2.Uint64() != want {
		t.Fatal("fork stream not independent of parent draws")
	}
}

func TestTimeConversions(t *testing.T) {
	if FromMillis(30) != 30*Millisecond {
		t.Fatal("FromMillis")
	}
	if FromMicros(0.5) != 500*Nanosecond {
		t.Fatal("FromMicros")
	}
	if FromSeconds(2).Seconds() != 2 {
		t.Fatal("Seconds roundtrip")
	}
	if (30 * Millisecond).String() != "30ms" {
		t.Fatalf("String = %q", (30 * Millisecond).String())
	}
	if MaxTime.String() != "never" {
		t.Fatal("MaxTime should render as never")
	}
}
