// Package runner is the deterministic parallel sweep harness of the
// vScale reproduction. A parameter sweep (apps × modes × spin counts,
// request rates, ablation variants, repeated seeds) is a set of fully
// independent simulations: each job builds its own sim.Engine, so the
// only thing serial execution buys is an ordering — which this package
// preserves while fanning the jobs out across a bounded worker pool.
//
// Determinism contract: the result slice, the per-run derived seeds and
// the per-run tracers depend only on the submission order, never on the
// worker count or on scheduling. Run(opts, n, job) with Workers=1 and
// Workers=8 returns element-for-element identical results (provided the
// jobs themselves are deterministic, which every simulation in this
// repository is — each owns its engine and PRNG). Wall-clock accounting
// in the Report is the only non-deterministic output, and it never
// feeds rendered reports.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"vscale/internal/trace"
)

// Options parameterises one Run call.
type Options struct {
	// Workers bounds the worker pool; <= 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// BaseSeed is the root of the per-run seed derivation: job i receives
	// Context.Seed = DeriveSeed(BaseSeed, i). Jobs are free to ignore it
	// (the paper sweeps pin their seeds for reproducibility).
	BaseSeed uint64
	// Trace, when true, hands every job its own private trace.Tracer so
	// concurrent runs never share a collector; the tracers are returned
	// in submission order via the Report for a post-barrier trace.Merge.
	Trace bool
	// TraceCapacity sizes each per-run ring; <= 0 selects
	// trace.DefaultRingCapacity.
	TraceCapacity int
	// Report, when non-nil, accumulates run accounting (wall clocks,
	// seeds, tracers) across Run calls sharing it.
	Report *Report
}

// workers resolves the effective pool width for n jobs.
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Context carries a job's identity: its submission index, its derived
// seed and (when Options.Trace is set) its private tracer.
type Context struct {
	// Index is the job's submission index, 0-based.
	Index int
	// Seed is DeriveSeed(Options.BaseSeed, Index) — stable across worker
	// counts by construction.
	Seed uint64
	// Tracer is the job's private tracer (nil unless Options.Trace).
	Tracer *trace.Tracer
}

// Report accumulates the accounting of one or more Run calls. All
// fields are appended in submission order. The wall clocks are real
// time, not virtual time: they measure the harness, not the simulation,
// and feed the BENCH_experiments.json perf trajectory.
type Report struct {
	// Jobs counts jobs executed.
	Jobs int
	// Workers is the effective pool width of the widest Run call.
	Workers int
	// Wall sums the elapsed wall clock of each Run call (barrier to
	// barrier).
	Wall time.Duration
	// JobWall holds each job's own wall clock, in submission order.
	JobWall []time.Duration
	// Seeds holds each job's derived seed, in submission order.
	Seeds []uint64
	// Tracers holds each job's tracer, in submission order (entries are
	// nil when tracing was off for that call).
	Tracers []*trace.Tracer
}

// CPU returns the summed per-job wall clock — the serial-execution
// estimate the parallel Wall is compared against.
func (r *Report) CPU() time.Duration {
	var sum time.Duration
	for _, d := range r.JobWall {
		sum += d
	}
	return sum
}

// JobWallMin returns the shortest per-job wall clock (0 with no jobs).
func (r *Report) JobWallMin() time.Duration {
	if len(r.JobWall) == 0 {
		return 0
	}
	min := r.JobWall[0]
	for _, d := range r.JobWall[1:] {
		if d < min {
			min = d
		}
	}
	return min
}

// JobWallMax returns the longest per-job wall clock (0 with no jobs).
// The max-to-mean ratio is the straggler indicator: a pool can never
// beat Wall >= JobWallMax however many workers it has.
func (r *Report) JobWallMax() time.Duration {
	var max time.Duration
	for _, d := range r.JobWall {
		if d > max {
			max = d
		}
	}
	return max
}

// JobWallMean returns the mean per-job wall clock (0 with no jobs).
func (r *Report) JobWallMean() time.Duration {
	if len(r.JobWall) == 0 {
		return 0
	}
	return r.CPU() / time.Duration(len(r.JobWall))
}

// Speedup returns CPU()/Wall — ~1.0 when serial (or on a single-core
// host), approaching the worker count when the jobs are uniform.
func (r *Report) Speedup() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.CPU()) / float64(r.Wall)
}

// LiveTracers returns the non-nil tracers, in submission order, ready
// for trace.Merge.
func (r *Report) LiveTracers() []*trace.Tracer {
	var out []*trace.Tracer
	for _, t := range r.Tracers {
		if t != nil {
			out = append(out, t)
		}
	}
	return out
}

// DeriveSeed maps (base, index) to a per-run seed with a splitmix64
// step: well-distributed, collision-free in practice, and — crucially —
// a pure function of the submission index, so the seed a run gets never
// depends on the worker count or on which worker picked it up.
func DeriveSeed(base uint64, index int) uint64 {
	z := base + 0x9e3779b97f4a7c15*uint64(index+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Run executes n independent jobs on a bounded worker pool and returns
// their results in submission order. The first error (by submission
// index, not by completion time — again for determinism) is returned;
// the remaining jobs still run to completion so the Report stays
// complete. A panicking job is recovered into an error carrying its
// index rather than tearing down the whole sweep.
func Run[T any](opts Options, n int, job func(Context) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n <= 0 {
		return results, nil
	}
	errs := make([]error, n)
	walls := make([]time.Duration, n)
	seeds := make([]uint64, n)
	tracers := make([]*trace.Tracer, n)

	workers := opts.workers(n)
	start := time.Now()

	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				ctx := Context{Index: i, Seed: DeriveSeed(opts.BaseSeed, i)}
				if opts.Trace {
					ctx.Tracer = trace.New(trace.Config{RingCapacity: opts.TraceCapacity})
				}
				seeds[i] = ctx.Seed
				tracers[i] = ctx.Tracer
				t0 := time.Now()
				results[i], errs[i] = runOne(ctx, job)
				walls[i] = time.Since(t0)
			}
		}()
	}
	for i := 0; i < n; i++ {
		indices <- i
	}
	close(indices)
	wg.Wait()

	if rep := opts.Report; rep != nil {
		rep.Jobs += n
		if workers > rep.Workers {
			rep.Workers = workers
		}
		rep.Wall += time.Since(start)
		rep.JobWall = append(rep.JobWall, walls...)
		rep.Seeds = append(rep.Seeds, seeds...)
		rep.Tracers = append(rep.Tracers, tracers...)
	}
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("run %d: %w", i, err)
		}
	}
	return results, nil
}

// runOne invokes the job with panic containment.
func runOne[T any](ctx Context, job func(Context) (T, error)) (res T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panicked: %v", r)
		}
	}()
	return job(ctx)
}
