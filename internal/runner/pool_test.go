package runner

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunsEveryWokenQueue: every woken queue is served at least
// once, and the queue index arrives intact.
func TestPoolRunsEveryWokenQueue(t *testing.T) {
	const queues = 64
	var served [queues]atomic.Int64
	var wg sync.WaitGroup
	wg.Add(queues)
	p := NewPool(4, queues, func(q int) {
		if served[q].Add(1) == 1 {
			wg.Done()
		}
	})
	defer p.Close()
	for q := 0; q < queues; q++ {
		p.Wake(q)
	}
	wg.Wait()
	for q := range served {
		if served[q].Load() == 0 {
			t.Fatalf("queue %d never ran", q)
		}
	}
}

// TestPoolPerQueueExclusion: a queue never runs on two workers at once,
// even under a storm of concurrent wakes, and no queued work item is
// lost to coalescing (a wake during a run yields a re-run that drains
// whatever the in-flight run missed).
func TestPoolPerQueueExclusion(t *testing.T) {
	const queues = 8
	const wakers, wakesEach = 4, 100
	var inFlight, pending [queues]atomic.Int32
	var violations atomic.Int32
	var drained atomic.Int64
	done := make(chan struct{})
	p := NewPool(8, queues, func(q int) {
		if inFlight[q].Add(1) != 1 {
			violations.Add(1)
		}
		got := pending[q].Swap(0)
		time.Sleep(50 * time.Microsecond)
		inFlight[q].Add(-1)
		if got > 0 && drained.Add(int64(got)) == wakers*wakesEach {
			close(done)
		}
	})
	defer p.Close()
	var wg sync.WaitGroup
	for w := 0; w < wakers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < wakesEach; i++ {
				q := (w + i) % queues
				pending[q].Add(1)
				p.Wake(q)
			}
		}(w)
	}
	wg.Wait()
	<-done
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d concurrent runs of the same queue", v)
	}
}

// TestPoolWakeDuringRunCoalesces: wakes landing while a queue runs
// produce exactly one re-run, not one run per wake and not zero.
func TestPoolWakeDuringRunCoalesces(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var runs atomic.Int32
	rerun := make(chan struct{})
	p := NewPool(1, 1, func(q int) {
		n := runs.Add(1)
		if n == 1 {
			close(started)
			<-release
		}
		if n == 2 {
			close(rerun)
		}
	})
	defer p.Close()
	p.Wake(0)
	<-started
	// Three wakes while running: must coalesce into one re-run.
	p.Wake(0)
	p.Wake(0)
	p.Wake(0)
	close(release)
	<-rerun
	// Give a wrongly-queued third run a chance to happen, then check.
	time.Sleep(10 * time.Millisecond)
	if n := runs.Load(); n != 2 {
		t.Fatalf("got %d runs, want 2 (1 initial + 1 coalesced)", n)
	}
}

// TestPoolWakeAll reaches every queue, and a second WakeAll while
// queues are already pending stays coalesced.
func TestPoolWakeAll(t *testing.T) {
	const queues = 32
	var wg sync.WaitGroup
	wg.Add(queues)
	var once [queues]atomic.Bool
	p := NewPool(3, queues, func(q int) {
		if once[q].CompareAndSwap(false, true) {
			wg.Done()
		}
	})
	defer p.Close()
	p.WakeAll()
	p.WakeAll()
	wg.Wait()
}

// TestPoolCloseStopsWork: after Close returns no run is in flight, and
// Wake afterwards is a harmless no-op. Close is idempotent.
func TestPoolCloseStopsWork(t *testing.T) {
	var running atomic.Int32
	p := NewPool(2, 4, func(q int) {
		running.Add(1)
		time.Sleep(time.Millisecond)
		running.Add(-1)
	})
	for q := 0; q < 4; q++ {
		p.Wake(q)
	}
	p.Close()
	if n := running.Load(); n != 0 {
		t.Fatalf("%d runs in flight after Close", n)
	}
	p.Wake(0) // no-op, must not panic
	p.Close() // idempotent
}

// TestPoolWorkersCap: the effective width follows the Options
// convention (capped at the queue count, floor 1).
func TestPoolWorkersCap(t *testing.T) {
	p := NewPool(8, 3, func(int) {})
	if got := p.Workers(); got != 3 {
		t.Fatalf("workers = %d, want 3", got)
	}
	p.Close()
	p = NewPool(1, 100, func(int) {})
	if got := p.Workers(); got != 1 {
		t.Fatalf("workers = %d, want 1", got)
	}
	p.Close()
}
