package runner

import "sync"

// Pool is the persistent counterpart of Run: a bounded set of workers
// serving numbered work queues for the lifetime of the pool, for
// callers whose jobs are long-lived streams of work rather than a
// one-shot batch. The cluster's bounded-lag fleet executor is the
// canonical user: one queue per host, woken whenever that host may be
// able to advance.
//
// Semantics:
//
//   - Wake(q) marks queue q runnable; some worker will call run(q).
//   - A queue runs on at most one worker at a time, so per-queue state
//     needs no locking inside run.
//   - A Wake arriving while the queue's run is in flight coalesces into
//     exactly one re-run after it returns (the run may have missed the
//     state change that prompted the wake).
//   - run decides for itself how much work to do per call; a blocked
//     queue simply returns and parks until the next Wake.
//
// The pool never spins: workers sleep on a condition variable while no
// queue is runnable.
type Pool struct {
	run     func(queue int)
	workers int

	mu     sync.Mutex
	cond   *sync.Cond
	state  []queueState
	ring   []int // FIFO of runnable queues; each queue appears at most once
	head   int
	queued int
	closed bool
	wg     sync.WaitGroup
}

type queueState uint8

const (
	queueIdle queueState = iota
	queueReady
	queueRunning
	queueDirty // running, with a coalesced re-wake pending
)

// NewPool starts workers serving the given number of queues. workers
// follows the Options convention: <= 0 selects GOMAXPROCS, and the
// effective width never exceeds the queue count. run is invoked
// concurrently from the pool's workers (for distinct queues only).
func NewPool(workers, queues int, run func(queue int)) *Pool {
	w := Options{Workers: workers}.workers(queues)
	p := &Pool{
		run:     run,
		workers: w,
		state:   make([]queueState, queues),
		ring:    make([]int, queues),
	}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(w)
	for i := 0; i < w; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the effective worker count.
func (p *Pool) Workers() int { return p.workers }

// Wake marks one queue runnable (coalescing, see Pool). It is a no-op
// after Close.
func (p *Pool) Wake(queue int) {
	p.mu.Lock()
	if p.wakeLocked(queue) {
		p.cond.Signal()
	}
	p.mu.Unlock()
}

// WakeAll marks every queue runnable. Cheaper than a Wake loop when a
// global condition changed (a shared frontier advanced): one lock, one
// broadcast.
func (p *Pool) WakeAll() {
	p.mu.Lock()
	woke := false
	for q := range p.state {
		woke = p.wakeLocked(q) || woke
	}
	if woke {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// wakeLocked transitions one queue; it reports whether the queue was
// newly enqueued (the caller then signals the condition variable).
func (p *Pool) wakeLocked(queue int) bool {
	if p.closed {
		return false
	}
	switch p.state[queue] {
	case queueIdle:
		p.state[queue] = queueReady
		p.push(queue)
		return true
	case queueRunning:
		p.state[queue] = queueDirty
	}
	return false
}

// push/pop implement the runnable FIFO as a fixed ring: each queue is
// enqueued at most once, so capacity len(state) suffices.
func (p *Pool) push(q int) {
	p.ring[(p.head+p.queued)%len(p.ring)] = q
	p.queued++
}

func (p *Pool) pop() int {
	q := p.ring[p.head]
	p.head = (p.head + 1) % len(p.ring)
	p.queued--
	return q
}

func (p *Pool) worker() {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		for p.queued == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		q := p.pop()
		p.state[q] = queueRunning
		p.mu.Unlock()

		p.run(q)

		p.mu.Lock()
		if p.state[q] == queueDirty {
			p.state[q] = queueReady
			p.push(q)
			p.cond.Signal()
		} else {
			p.state[q] = queueIdle
		}
	}
}

// Close shuts the pool down: queued wakes are discarded, in-flight run
// calls finish, and Close returns once every worker has exited. The
// caller is expected to have drained its own work first (the executor
// knows when its run is complete); Close is teardown, not a barrier.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}
