package runner

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"vscale/internal/sim"
)

// simJob runs a small self-contained simulation seeded from the
// context: a chain of events whose count and final clock depend only on
// the seed. It stands in for a scenario run.
func simJob(ctx Context) (string, error) {
	eng := sim.NewEngine(ctx.Seed)
	if ctx.Tracer != nil {
		eng.SetObserver(ctx.Tracer.SimEvent)
	}
	steps := 50 + int(ctx.Seed%50)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < steps {
			eng.After(sim.Time(1+eng.Rand().Intn(5))*sim.Microsecond, "tick", tick)
		}
	}
	eng.After(0, "start", tick)
	if err := eng.Run(); err != nil {
		return "", err
	}
	return fmt.Sprintf("run%d seed=%d steps=%d end=%v", ctx.Index, ctx.Seed, n, eng.Now()), nil
}

// TestSerialParallelIdentical is the harness's core contract: the
// result slice is byte-identical between 1 and 8 workers.
func TestSerialParallelIdentical(t *testing.T) {
	const n = 32
	var outs [3][]string
	for i, workers := range []int{1, 4, 8} {
		res, err := Run(Options{Workers: workers, BaseSeed: 7}, n, simJob)
		if err != nil {
			t.Fatal(err)
		}
		outs[i] = res
	}
	for i := 0; i < n; i++ {
		if outs[0][i] != outs[1][i] || outs[0][i] != outs[2][i] {
			t.Fatalf("result %d differs across worker counts:\n  w1: %s\n  w4: %s\n  w8: %s",
				i, outs[0][i], outs[1][i], outs[2][i])
		}
	}
}

// TestSeedDerivationStable: same submission index → same seed, whatever
// the worker count, and distinct indices get distinct seeds.
func TestSeedDerivationStable(t *testing.T) {
	const n = 64
	seen := make(map[uint64]int)
	for i := 0; i < n; i++ {
		s := DeriveSeed(1, i)
		if s2 := DeriveSeed(1, i); s2 != s {
			t.Fatalf("DeriveSeed not pure: %d vs %d", s, s2)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between index %d and %d", prev, i)
		}
		seen[s] = i
	}

	var reps [2]*Report
	for i, workers := range []int{1, 8} {
		rep := &Report{}
		if _, err := Run(Options{Workers: workers, BaseSeed: 99, Report: rep}, n, simJob); err != nil {
			t.Fatal(err)
		}
		reps[i] = rep
	}
	for i := 0; i < n; i++ {
		if reps[0].Seeds[i] != reps[1].Seeds[i] {
			t.Fatalf("seed for index %d depends on worker count: %d vs %d",
				i, reps[0].Seeds[i], reps[1].Seeds[i])
		}
		if want := DeriveSeed(99, i); reps[0].Seeds[i] != want {
			t.Fatalf("seed %d = %d, want DeriveSeed = %d", i, reps[0].Seeds[i], want)
		}
	}
}

// TestRaceStress exercises the pool under -race: many concurrent
// simulations, each with its own engine and tracer, on ≥4 workers.
func TestRaceStress(t *testing.T) {
	rep := &Report{}
	res, err := Run(Options{Workers: 8, BaseSeed: 3, Trace: true, TraceCapacity: 256, Report: rep}, 64, simJob)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 64 || rep.Jobs != 64 {
		t.Fatalf("results=%d jobs=%d", len(res), rep.Jobs)
	}
	if rep.Workers < 4 {
		t.Fatalf("effective workers = %d, want >= 4", rep.Workers)
	}
	for i, tr := range rep.Tracers {
		if tr == nil || tr.Total() == 0 {
			t.Fatalf("run %d has no per-run tracer records", i)
		}
	}
	if len(rep.LiveTracers()) != 64 {
		t.Fatalf("LiveTracers = %d", len(rep.LiveTracers()))
	}
	if rep.CPU() <= 0 || rep.Wall <= 0 {
		t.Fatalf("accounting missing: cpu=%v wall=%v", rep.CPU(), rep.Wall)
	}
}

// TestErrorByLowestIndex: the returned error is the first failing
// submission index, not the first to finish, and healthy results
// survive.
func TestErrorByLowestIndex(t *testing.T) {
	boom := errors.New("boom")
	res, err := Run(Options{Workers: 4}, 10, func(ctx Context) (int, error) {
		if ctx.Index == 7 || ctx.Index == 3 {
			return 0, boom
		}
		return ctx.Index * 2, nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := err.Error(); got != "run 3: boom" {
		t.Fatalf("error not attributed to lowest index: %q", got)
	}
	if res[2] != 4 || res[9] != 18 {
		t.Fatalf("healthy results lost: %v", res)
	}
}

// TestPanicContained: a panicking job becomes an error carrying its
// index instead of killing the process.
func TestPanicContained(t *testing.T) {
	_, err := Run(Options{Workers: 2}, 4, func(ctx Context) (int, error) {
		if ctx.Index == 2 {
			panic("kaboom")
		}
		return 0, nil
	})
	if err == nil || err.Error() != "run 2: panicked: kaboom" {
		t.Fatalf("err = %v", err)
	}
}

// TestTracersAreDisjointAndOrdered: per-run tracers belong to their run
// only, in submission order, so a post-barrier merge reconstructs the
// serial trace layout.
func TestTracersAreDisjointAndOrdered(t *testing.T) {
	rep := &Report{}
	_, err := Run(Options{Workers: 4, Trace: true, TraceCapacity: 64, Report: rep}, 8,
		func(ctx Context) (int, error) {
			ctx.Tracer.SimEvent(sim.Time(ctx.Index)*sim.Second, "mark")
			return 0, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range rep.Tracers {
		evs := tr.Events()
		if len(evs) != 1 {
			t.Fatalf("run %d: %d events, want exactly its own", i, len(evs))
		}
		if evs[0].At != sim.Time(i)*sim.Second {
			t.Fatalf("run %d holds run %v's event", i, evs[0].At.Seconds())
		}
	}
}

// TestZeroJobsAndReportAccumulation: n=0 is a no-op; a shared Report
// accumulates across Run calls.
func TestZeroJobsAndReportAccumulation(t *testing.T) {
	rep := &Report{}
	if _, err := Run(Options{Report: rep}, 0, simJob); err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != 0 {
		t.Fatalf("jobs = %d", rep.Jobs)
	}
	for i := 0; i < 3; i++ {
		if _, err := Run(Options{Workers: 2, Report: rep}, 4, simJob); err != nil {
			t.Fatal(err)
		}
	}
	if rep.Jobs != 12 || len(rep.JobWall) != 12 || len(rep.Seeds) != 12 {
		t.Fatalf("report did not accumulate: %+v", rep)
	}
}

// TestJobWallStats: min/max/mean derive from the recorded per-job wall
// clocks, and all degrade to 0 on an empty report.
func TestJobWallStats(t *testing.T) {
	var empty Report
	if empty.JobWallMin() != 0 || empty.JobWallMax() != 0 || empty.JobWallMean() != 0 {
		t.Fatal("empty report stats must be 0")
	}
	rep := Report{JobWall: []time.Duration{
		4 * time.Millisecond, time.Millisecond, 7 * time.Millisecond, 4 * time.Millisecond,
	}}
	if got := rep.JobWallMin(); got != time.Millisecond {
		t.Fatalf("min = %v", got)
	}
	if got := rep.JobWallMax(); got != 7*time.Millisecond {
		t.Fatalf("max = %v", got)
	}
	if got := rep.JobWallMean(); got != 4*time.Millisecond {
		t.Fatalf("mean = %v", got)
	}

	live := &Report{}
	if _, err := Run(Options{Workers: 2, Report: live}, 5, simJob); err != nil {
		t.Fatal(err)
	}
	if live.JobWallMin() <= 0 || live.JobWallMax() < live.JobWallMin() ||
		live.JobWallMean() < live.JobWallMin() || live.JobWallMean() > live.JobWallMax() {
		t.Fatalf("inconsistent wall stats: min=%v mean=%v max=%v",
			live.JobWallMin(), live.JobWallMean(), live.JobWallMax())
	}
}
