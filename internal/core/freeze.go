package core

import (
	"fmt"

	"vscale/internal/costmodel"
	"vscale/internal/sim"
)

// MasterStep is one step of the freeze/unfreeze protocol executed on the
// master vCPU (vCPU0), per Algorithm 2 of the paper. The steps must run
// in this order; the split design keeps the master's cost minimal because
// it never blocks waiting for the target.
type MasterStep int

// The master-vCPU steps, in required execution order.
const (
	// StepSyscall enters the kernel via sys_freezecpu.
	StepSyscall MasterStep = iota
	// StepFreezeLock serialises concurrent freeze/unfreeze calls
	// (cpu_freeze_lock with interrupt state saved/restored).
	StepFreezeLock
	// StepMaskUpdate flips the target's bit in cpu_freeze_mask so other
	// vCPUs stop pushing tasks to it (and it stops pulling).
	StepMaskUpdate
	// StepGroupPower updates the power of the scheduling domain and group
	// containing the target (update_group_power under RCU).
	StepGroupPower
	// StepHypercall notifies the hypervisor (SCHEDOP_cpufreeze) so the
	// target stops earning credits / rejoins the active list.
	StepHypercall
	// StepRescheduleIPI tickles the target vCPU's scheduler so it
	// performs the migration work locally.
	StepRescheduleIPI

	numMasterSteps
)

// String names the step for reports.
func (s MasterStep) String() string {
	switch s {
	case StepSyscall:
		return "system call (sys_freezecpu)"
	case StepFreezeLock:
		return "acquire/release cpu_freeze_lock"
	case StepMaskUpdate:
		return "change cpu_freeze_mask"
	case StepGroupPower:
		return "update sched domain/group power"
	case StepHypercall:
		return "hypercall (SCHEDOP_cpufreeze)"
	case StepRescheduleIPI:
		return "send reschedule IPI"
	default:
		return fmt.Sprintf("MasterStep(%d)", int(s))
	}
}

// Cost returns the virtual-time cost of the step (paper Table 3).
func (s MasterStep) Cost() sim.Time {
	switch s {
	case StepSyscall:
		return costmodel.Syscall
	case StepFreezeLock:
		return costmodel.FreezeLock
	case StepMaskUpdate:
		return costmodel.FreezeMaskUpdate
	case StepGroupPower:
		return costmodel.GroupPowerUpdate
	case StepHypercall:
		return costmodel.Hypercall
	case StepRescheduleIPI:
		return costmodel.RescheduleIPISend
	default:
		return 0
	}
}

// MasterSteps returns the ordered master-vCPU step list.
func MasterSteps() []MasterStep {
	steps := make([]MasterStep, numMasterSteps)
	for i := range steps {
		steps[i] = MasterStep(i)
	}
	return steps
}

// MasterCost returns the total master-vCPU cost of one freeze or
// unfreeze operation (Table 3: 2.10 µs).
func MasterCost() sim.Time {
	var sum sim.Time
	for _, s := range MasterSteps() {
		sum += s.Cost()
	}
	return sum
}

// FreezePlan quantifies the work a freeze (or unfreeze) of one vCPU
// requires: the fixed master-side protocol plus the target-side
// migration of threads and rebinding of device interrupts.
type FreezePlan struct {
	// TargetVCPU is the vCPU being frozen or unfrozen.
	TargetVCPU int
	// Unfreeze distinguishes activation from deactivation; the protocol
	// and costs are symmetric.
	Unfreeze bool
	// MigratableThreads counts the uthreads and system-wide kthreads on
	// the target's runqueue that must move (freeze) or may be pulled
	// (unfreeze).
	MigratableThreads int
	// DeviceIRQs counts event-channel-bound device interrupts that must
	// be rebound away from the target. Interrupts are migrated lazily
	// (when they next fire), but the plan accounts for them.
	DeviceIRQs int
}

// MasterCost is the fixed cost on vCPU0.
func (p FreezePlan) MasterCost() sim.Time { return MasterCost() }

// TargetCostExpected returns the expected target-vCPU cost using the
// midpoints of the paper's per-item ranges (0.9–1.1 µs per thread,
// 0.8–1.2 µs per IRQ).
func (p FreezePlan) TargetCostExpected() sim.Time {
	return sim.Time(p.MigratableThreads)*costmodel.ThreadMigrate.Mid() +
		sim.Time(p.DeviceIRQs)*costmodel.IRQMigrate.Mid()
}

// DrawTargetCost samples a concrete target-vCPU cost.
func (p FreezePlan) DrawTargetCost(r *sim.Rand) sim.Time {
	var sum sim.Time
	for i := 0; i < p.MigratableThreads; i++ {
		sum += costmodel.ThreadMigrate.Draw(r)
	}
	for i := 0; i < p.DeviceIRQs; i++ {
		sum += costmodel.IRQMigrate.Draw(r)
	}
	return sum
}

// TotalExpected is the expected wall cost if master and target ran
// back-to-back (they overlap in practice; this is an upper bound).
func (p FreezePlan) TotalExpected() sim.Time {
	return p.MasterCost() + p.TargetCostExpected()
}
