// Package core implements the vScale paper's primary contribution as a
// pure, simulator-independent library: the CPU-extendability calculation
// (Algorithm 1), the vCPU reconfiguration protocol plan (Algorithm 2),
// and the scaling governor that turns extendability readings into
// freeze/unfreeze decisions. Being pure functions over explicit inputs,
// everything here is property-testable in isolation and reusable by any
// proportional-share hypervisor scheduler.
package core

import (
	"fmt"
	"math"

	"vscale/internal/sim"
)

// VMStat is one VM's scheduling state over the last extendability period,
// as observed by the hypervisor scheduler.
type VMStat struct {
	// ID names the VM (domain) for result correlation.
	ID string

	// Weight is the VM's proportional-share weight. vScale defines weight
	// per-VM (not per-vCPU), so freezing vCPUs does not forfeit credit.
	Weight float64

	// Consumption is the CPU time the VM actually consumed during the
	// period, summed over all its vCPUs (so it may exceed the period
	// length for SMP VMs).
	Consumption sim.Time

	// ReservationPCPUs is the VM's guaranteed lower bound, in pCPUs
	// (0 = none).
	ReservationPCPUs float64

	// CapPCPUs is the VM's upper bound, in pCPUs (0 = uncapped).
	CapPCPUs float64

	// MaxVCPUs is the number of vCPUs the VM was configured with; the
	// optimal count never exceeds it. Zero means unconstrained.
	MaxVCPUs int

	// UP marks uniprocessor VMs, which have no room for scaling; their
	// extendability is still computed, but OptimalVCPUs is pinned to 1.
	UP bool
}

// Extendability is the per-VM output of Algorithm 1.
type Extendability struct {
	ID string

	// FairShare is s_fair(t) = w_i/Σw · t · P: the CPU time the VM is
	// entitled to in one period under pure weight-proportional sharing.
	FairShare sim.Time

	// Extend is s_ext(t): the maximum CPU time the VM could receive in
	// one period given current machine-wide consumption (its fair share
	// plus, for competitors, its weighted share of the slack), clamped by
	// reservation and cap.
	Extend sim.Time

	// OptimalVCPUs is ⌈s_ext/t⌉ clamped to [1, MaxVCPUs]: how many
	// full-capacity pCPUs the VM can use, allowing one extra vCPU for a
	// partial allocation.
	OptimalVCPUs int

	// Competitor reports whether the VM over-consumed its fair share
	// (true) or released CPU to others (false).
	Competitor bool
}

// ceilDivEps returns ⌈a/b⌉ with a small relative tolerance so that
// floating-point noise (e.g. 2.0000000001 pCPUs) does not cost an
// extra vCPU.
func ceilDivEps(a, b float64) int {
	q := a / b
	const eps = 1e-9
	f := math.Floor(q)
	if q-f <= eps*(1+math.Abs(q)) {
		if f < 1 {
			return int(math.Ceil(q - eps))
		}
		return int(f)
	}
	return int(math.Ceil(q))
}

// ComputeExtendability implements Algorithm 1 of the paper. Given the
// per-VM stats for one period of length t over a pool of P pCPUs, it
// computes each VM's fair share, CPU extendability and optimal vCPU
// count.
//
// VMs that under-used their fair allocation (releasers) contribute the
// difference to a machine-wide slack; their extendability is pinned to
// their fair share so they can always ramp back up to their deserved
// parallelism. VMs that consumed at least their fair share (competitors)
// split the slack in proportion to their weights, on top of their fair
// share. The function enforces max-min fairness and is, by construction,
// independent of how many vCPUs each VM currently runs — so a VM cannot
// manipulate its vCPU count for extra allocation.
//
// It panics if P <= 0, t <= 0, or any weight is non-positive, since those
// are configuration errors.
func ComputeExtendability(vms []VMStat, P int, t sim.Time) []Extendability {
	if P <= 0 {
		panic(fmt.Sprintf("core: non-positive pool size %d", P))
	}
	if t <= 0 {
		panic(fmt.Sprintf("core: non-positive period %v", t))
	}
	if len(vms) == 0 {
		return nil
	}

	var totalWeight float64
	for _, vm := range vms {
		if vm.Weight <= 0 {
			panic(fmt.Sprintf("core: VM %q has non-positive weight %v", vm.ID, vm.Weight))
		}
		totalWeight += vm.Weight
	}

	period := float64(t)
	poolTime := period * float64(P)

	out := make([]Extendability, len(vms))
	var slack float64 // c_slack: unused CPU capacity this period
	var competitorWeight float64

	// First pass (lines 6–15): classify VMs, accumulate slack, and give
	// releasers their fair share as extendability.
	for i, vm := range vms {
		fair := vm.Weight / totalWeight * poolTime
		out[i] = Extendability{ID: vm.ID, FairShare: sim.Time(fair)}
		consumed := float64(vm.Consumption)
		if consumed < fair {
			slack += fair - consumed
			out[i].Extend = sim.Time(fair)
		} else {
			out[i].Competitor = true
			competitorWeight += vm.Weight
		}
	}

	// Second pass (lines 16–19): competitors share the slack in
	// proportion to their weights, on top of their fair share.
	for i, vm := range vms {
		if out[i].Competitor {
			ext := vm.Weight/competitorWeight*slack + float64(out[i].FairShare)
			out[i].Extend = sim.Time(ext)
		}
		out[i].Extend = clampExtend(out[i].Extend, vm, t)
		out[i].OptimalVCPUs = optimalVCPUs(out[i].Extend, vm, t)
	}
	return out
}

// clampExtend applies the VM's reservation (lower bound) and cap (upper
// bound) to its extendability, and never exceeds the physical maximum of
// MaxVCPUs full pCPUs.
func clampExtend(ext sim.Time, vm VMStat, t sim.Time) sim.Time {
	if vm.ReservationPCPUs > 0 {
		if lo := sim.Time(vm.ReservationPCPUs * float64(t)); ext < lo {
			ext = lo
		}
	}
	if vm.CapPCPUs > 0 {
		if hi := sim.Time(vm.CapPCPUs * float64(t)); ext > hi {
			ext = hi
		}
	}
	if vm.MaxVCPUs > 0 {
		if hi := sim.Time(vm.MaxVCPUs) * t; ext > hi {
			ext = hi
		}
	}
	return ext
}

// optimalVCPUs converts extendability into a vCPU count: ⌈ext/t⌉,
// allowing one additional vCPU for a partial pCPU allocation, clamped to
// [1, MaxVCPUs] (and to exactly 1 for UP VMs).
func optimalVCPUs(ext sim.Time, vm VMStat, t sim.Time) int {
	if vm.UP {
		return 1
	}
	n := ceilDivEps(float64(ext), float64(t))
	if n < 1 {
		n = 1
	}
	if vm.MaxVCPUs > 0 && n > vm.MaxVCPUs {
		n = vm.MaxVCPUs
	}
	return n
}

// OptimalWithMargin recomputes the optimal vCPU count from a raw
// extendability value with a fragmentation margin subtracted before the
// ceiling: n = max(1, ⌈ext/t − margin⌉).
//
// Algorithm 1 takes a pure ceiling (margin 0) so a partial pCPU
// allocation still gets a vCPU. For synchronisation-bound guests that
// partial vCPU is frequently counter-productive: it is entitled to only
// a fraction of a pCPU, so it is descheduled in 30 ms slices and every
// barrier or lock episode that lands on it stalls the whole team. The
// margin makes the guest claim the extra vCPU only when the partial
// allocation is substantial (ext fraction > margin). The reproduction
// uses margin 0.55 by default (guest.DefaultConfig); the A5 ablation
// bench compares it with the paper's pure ceiling.
func OptimalWithMargin(ext, t sim.Time, margin float64, maxVCPUs int) int {
	if t <= 0 {
		panic("core: non-positive period")
	}
	q := float64(ext)/float64(t) - margin
	n := ceilDivEps(q, 1)
	if n < 1 {
		n = 1
	}
	if maxVCPUs > 0 && n > maxVCPUs {
		n = maxVCPUs
	}
	return n
}

// PoolSlack returns the total slack the releasers contributed in the
// given results (derived quantity, exposed for diagnostics and tests).
func PoolSlack(vms []VMStat, results []Extendability) sim.Time {
	var slack sim.Time
	for i, vm := range vms {
		if i < len(results) && !results[i].Competitor {
			slack += results[i].FairShare - vm.Consumption
		}
	}
	return slack
}
