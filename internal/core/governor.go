package core

// Governor converts a stream of optimal-vCPU readings into actual scaling
// decisions for one VM. Scaling up is applied immediately (the VM should
// exploit new capacity as soon as it appears, and an idle extra vCPU is
// cheap), while scaling down waits for the reading to persist for
// DownHysteresis consecutive periods so a single-period dip — one
// background-VM burst straddling a measurement boundary — does not
// trigger a freeze/unfreeze flap.
type Governor struct {
	// MinVCPUs and MaxVCPUs bound the decision (MinVCPUs >= 1).
	MinVCPUs, MaxVCPUs int

	// DownHysteresis is how many consecutive periods a lower reading must
	// persist before scaling down. Zero means scale down immediately.
	DownHysteresis int

	current    int
	downTarget int
	downCount  int
}

// NewGovernor returns a governor currently running cur vCPUs.
func NewGovernor(min, max, cur, downHysteresis int) *Governor {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	if cur < min {
		cur = min
	}
	if cur > max {
		cur = max
	}
	return &Governor{
		MinVCPUs:       min,
		MaxVCPUs:       max,
		DownHysteresis: downHysteresis,
		current:        cur,
	}
}

// Current returns the governor's view of the active vCPU count.
func (g *Governor) Current() int { return g.current }

// Observe feeds one optimal-vCPU reading and returns the new target
// count (== Current after the call). The caller performs the actual
// freezes/unfreezes for the delta.
func (g *Governor) Observe(optimal int) int {
	if optimal < g.MinVCPUs {
		optimal = g.MinVCPUs
	}
	if optimal > g.MaxVCPUs {
		optimal = g.MaxVCPUs
	}
	switch {
	case optimal > g.current:
		g.current = optimal
		g.downCount, g.downTarget = 0, 0
	case optimal < g.current:
		// Any below-current reading extends the down streak; the streak
		// scales down conservatively, to the highest reading seen in it
		// (fluctuating 2/3 readings shrink to 3 first).
		g.downCount++
		if g.downTarget == 0 || optimal > g.downTarget {
			g.downTarget = optimal
		}
		if g.downCount > g.DownHysteresis {
			g.current = g.downTarget
			g.downCount, g.downTarget = 0, 0
		}
	default:
		g.downCount, g.downTarget = 0, 0
	}
	return g.current
}

// GovernorState is the decision state of a Governor for checkpointing
// (docs/checkpoint.md). Bounds and hysteresis are configuration, carried
// only so restore can cross-check them.
type GovernorState struct {
	MinVCPUs       int `json:"min_vcpus"`
	MaxVCPUs       int `json:"max_vcpus"`
	DownHysteresis int `json:"down_hysteresis"`
	Current        int `json:"current"`
	DownTarget     int `json:"down_target"`
	DownCount      int `json:"down_count"`
}

// State exports the governor's decision state.
func (g *Governor) State() GovernorState {
	return GovernorState{
		MinVCPUs:       g.MinVCPUs,
		MaxVCPUs:       g.MaxVCPUs,
		DownHysteresis: g.DownHysteresis,
		Current:        g.current,
		DownTarget:     g.downTarget,
		DownCount:      g.downCount,
	}
}

// Restore overwrites the governor's decision state from a checkpoint.
func (g *Governor) Restore(st GovernorState) {
	g.MinVCPUs = st.MinVCPUs
	g.MaxVCPUs = st.MaxVCPUs
	g.DownHysteresis = st.DownHysteresis
	g.current = st.Current
	g.downTarget = st.DownTarget
	g.downCount = st.DownCount
}

// ForceCurrent resets the governor's view (used when an external actor —
// e.g. the dom0 baseline — changed the vCPU count).
func (g *Governor) ForceCurrent(cur int) {
	if cur < g.MinVCPUs {
		cur = g.MinVCPUs
	}
	if cur > g.MaxVCPUs {
		cur = g.MaxVCPUs
	}
	g.current = cur
	g.downCount, g.downTarget = 0, 0
}
