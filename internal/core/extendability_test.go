package core

import (
	"math"
	"testing"
	"testing/quick"

	"vscale/internal/sim"
)

const t10ms = 10 * sim.Millisecond

func vm(id string, w float64, consumedPCPUs float64) VMStat {
	return VMStat{ID: id, Weight: w, Consumption: sim.Time(consumedPCPUs * float64(t10ms))}
}

func TestExtendabilityAllEqualAllBusy(t *testing.T) {
	// 4 VMs, equal weight, all consuming everything: each gets P/4.
	vms := []VMStat{vm("a", 1, 2), vm("b", 1, 2), vm("c", 1, 2), vm("d", 1, 2)}
	res := ComputeExtendability(vms, 8, t10ms)
	for _, r := range res {
		if !r.Competitor {
			t.Fatalf("%s should be a competitor", r.ID)
		}
		if r.FairShare != 2*t10ms {
			t.Fatalf("%s fair = %v, want 20ms", r.ID, r.FairShare)
		}
		if r.Extend != 2*t10ms {
			t.Fatalf("%s extend = %v, want 20ms (no slack)", r.ID, r.Extend)
		}
		if r.OptimalVCPUs != 2 {
			t.Fatalf("%s optimal = %d, want 2", r.ID, r.OptimalVCPUs)
		}
	}
}

func TestExtendabilityReleaserDonatesSlack(t *testing.T) {
	// Two VMs on 4 pCPUs, equal weight. b is nearly idle; a is busy.
	vms := []VMStat{vm("busy", 1, 2.0), vm("idle", 1, 0.2)}
	res := ComputeExtendability(vms, 4, t10ms)
	// fair share each: 2 pCPUs. idle released 1.8 pCPUs of slack.
	if !res[0].Competitor || res[1].Competitor {
		t.Fatalf("roles wrong: %+v", res)
	}
	wantExt := sim.Time(3.8 * float64(t10ms))
	if res[0].Extend != wantExt {
		t.Fatalf("busy extend = %v, want %v", res[0].Extend, wantExt)
	}
	if res[0].OptimalVCPUs != 4 {
		t.Fatalf("busy optimal = %d, want 4 (ceil 3.8)", res[0].OptimalVCPUs)
	}
	// The releaser keeps its fair share so it can ramp back up.
	if res[1].Extend != 2*t10ms || res[1].OptimalVCPUs != 2 {
		t.Fatalf("idle extendability = %+v", res[1])
	}
}

func TestExtendabilitySlackSplitByWeight(t *testing.T) {
	// Releaser frees 1.0 pCPU; competitors with weights 1 and 3 split it 1:3.
	vms := []VMStat{
		vm("c1", 1, 1.0),
		vm("c3", 3, 3.0),
		{ID: "rel", Weight: 4, Consumption: sim.Time(1.0 * float64(t10ms))},
	}
	res := ComputeExtendability(vms, 8, t10ms)
	// fair: c1 = 1 pCPU, c3 = 3, rel = 4. rel consumed 1 → slack 3.
	if got := float64(res[0].Extend) / float64(t10ms); math.Abs(got-(1+3.0/4*1)) > 1e-9 {
		t.Fatalf("c1 extend = %f pCPUs", got)
	}
	if got := float64(res[1].Extend) / float64(t10ms); math.Abs(got-(3+9.0/4)) > 1e-9 {
		t.Fatalf("c3 extend = %f pCPUs", got)
	}
}

func TestExtendabilityConservation(t *testing.T) {
	// Σ competitor extend + Σ releaser consumption == P·t whenever at
	// least one competitor exists (work conservation; the derivation in
	// DESIGN.md §4). Property-checked over random configurations.
	f := func(seed uint64) bool {
		r := sim.NewRand(seed)
		n := 2 + r.Intn(10)
		P := 1 + r.Intn(16)
		vms := make([]VMStat, n)
		for i := range vms {
			vms[i] = VMStat{
				ID:          string(rune('a' + i)),
				Weight:      1 + float64(r.Intn(8)),
				Consumption: sim.Time(r.Float64() * 2 * float64(P) / float64(n) * float64(t10ms)),
			}
		}
		res := ComputeExtendability(vms, P, t10ms)
		var sum float64
		haveCompetitor := false
		for i, re := range res {
			if re.Competitor {
				haveCompetitor = true
				sum += float64(re.Extend)
			} else {
				sum += float64(vms[i].Consumption)
			}
		}
		if !haveCompetitor {
			return true
		}
		want := float64(P) * float64(t10ms)
		return math.Abs(sum-want) < 1e-3*want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestExtendabilityMaxMinFairness(t *testing.T) {
	// Every VM's extendability is at least its fair share.
	f := func(seed uint64) bool {
		r := sim.NewRand(seed)
		n := 1 + r.Intn(12)
		P := 1 + r.Intn(16)
		vms := make([]VMStat, n)
		for i := range vms {
			vms[i] = VMStat{
				ID:          string(rune('a' + i)),
				Weight:      0.5 + r.Float64()*10,
				Consumption: sim.Time(r.Float64() * float64(P) * float64(t10ms)),
			}
		}
		res := ComputeExtendability(vms, P, t10ms)
		for _, re := range res {
			if re.Extend < re.FairShare {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestExtendabilityVCPUCountManipulationImmune(t *testing.T) {
	// A VM cannot gain extendability by changing its configured vCPU
	// count (MaxVCPUs only clamps downward).
	base := []VMStat{vm("a", 1, 3), vm("b", 1, 0.5)}
	r1 := ComputeExtendability(base, 8, t10ms)
	withMax := []VMStat{base[0], base[1]}
	withMax[0].MaxVCPUs = 16
	r2 := ComputeExtendability(withMax, 8, t10ms)
	if r1[0].Extend != r2[0].Extend {
		t.Fatalf("extendability changed with vCPU count: %v vs %v", r1[0].Extend, r2[0].Extend)
	}
}

func TestExtendabilityFairShareMonotoneInWeight(t *testing.T) {
	// Note: total extendability is NOT globally monotone in weight
	// (raising a competitor's weight shrinks releasers' pinned fair
	// shares and thus the slack pool), but the fair-share component is,
	// and extendability never drops below it.
	mk := func(w float64) []VMStat {
		return []VMStat{
			{ID: "x", Weight: w, Consumption: 8 * t10ms},
			vm("y", 2, 2),
			{ID: "z", Weight: 2, Consumption: sim.Time(0.1 * float64(t10ms))},
		}
	}
	prev := sim.Time(0)
	for w := 0.5; w <= 8; w += 0.5 {
		res := ComputeExtendability(mk(w), 8, t10ms)
		if res[0].FairShare < prev {
			t.Fatalf("fair share not monotone in weight at w=%f", w)
		}
		if res[0].Extend < res[0].FairShare {
			t.Fatalf("extend below fair share at w=%f", w)
		}
		prev = res[0].FairShare
	}
}

func TestExtendabilityCompetitorsOrderedByWeight(t *testing.T) {
	// Within one configuration, a competitor with a higher weight gets
	// at least as much extendability as one with a lower weight.
	vms := []VMStat{
		{ID: "w1", Weight: 1, Consumption: 8 * t10ms},
		{ID: "w2", Weight: 2, Consumption: 8 * t10ms},
		{ID: "w4", Weight: 4, Consumption: 8 * t10ms},
		{ID: "rel", Weight: 1, Consumption: 0},
	}
	res := ComputeExtendability(vms, 8, t10ms)
	if !(res[0].Extend < res[1].Extend && res[1].Extend < res[2].Extend) {
		t.Fatalf("competitor extendability not ordered by weight: %+v", res)
	}
}

func TestExtendabilityReservationAndCap(t *testing.T) {
	vms := []VMStat{
		{ID: "capped", Weight: 1, Consumption: 4 * t10ms, CapPCPUs: 1.5},
		{ID: "reserved", Weight: 1, Consumption: 0, ReservationPCPUs: 3},
	}
	res := ComputeExtendability(vms, 8, t10ms)
	if got := float64(res[0].Extend) / float64(t10ms); got > 1.5+1e-9 {
		t.Fatalf("cap violated: %f pCPUs", got)
	}
	if res[0].OptimalVCPUs != 2 {
		t.Fatalf("capped optimal = %d, want 2", res[0].OptimalVCPUs)
	}
	if got := float64(res[1].Extend) / float64(t10ms); got < 3-1e-9 {
		t.Fatalf("reservation violated: %f pCPUs", got)
	}
}

func TestExtendabilityMaxVCPUsClamp(t *testing.T) {
	vms := []VMStat{
		{ID: "small", Weight: 1, Consumption: 8 * t10ms, MaxVCPUs: 4},
		{ID: "idle", Weight: 1, Consumption: 0},
	}
	res := ComputeExtendability(vms, 16, t10ms)
	if res[0].OptimalVCPUs != 4 {
		t.Fatalf("optimal = %d, want clamp at 4", res[0].OptimalVCPUs)
	}
	if res[0].Extend > 4*t10ms {
		t.Fatalf("extend = %v, should clamp at 4 pCPU-periods", res[0].Extend)
	}
}

func TestExtendabilityUPVM(t *testing.T) {
	vms := []VMStat{
		{ID: "up", Weight: 4, Consumption: 1 * t10ms, UP: true},
		vm("other", 1, 0.1),
	}
	res := ComputeExtendability(vms, 8, t10ms)
	if res[0].OptimalVCPUs != 1 {
		t.Fatalf("UP VM optimal = %d, want 1", res[0].OptimalVCPUs)
	}
}

func TestExtendabilityOptimalAtLeastOne(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRand(seed)
		n := 1 + r.Intn(20)
		vms := make([]VMStat, n)
		for i := range vms {
			vms[i] = VMStat{
				ID:          string(rune('a' + i)),
				Weight:      0.1 + r.Float64()*5,
				Consumption: sim.Time(r.Float64() * float64(t10ms)),
				MaxVCPUs:    1 + r.Intn(8),
			}
		}
		for _, re := range ComputeExtendability(vms, 1+r.Intn(8), t10ms) {
			if re.OptimalVCPUs < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestExtendabilityCeilingGrantsPartialVCPU(t *testing.T) {
	// 2.5 pCPUs of extendability → 3 vCPUs (one for the partial slice).
	vms := []VMStat{
		{ID: "a", Weight: 5, Consumption: 8 * t10ms},
		{ID: "b", Weight: 11, Consumption: 8 * t10ms},
	}
	res := ComputeExtendability(vms, 8, t10ms)
	if got := float64(res[0].Extend) / float64(t10ms); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("extend = %f pCPUs, want 2.5", got)
	}
	if res[0].OptimalVCPUs != 3 {
		t.Fatalf("optimal = %d, want 3", res[0].OptimalVCPUs)
	}
}

func TestExtendabilityExactIntegerNoExtraVCPU(t *testing.T) {
	// Exactly 2.0 pCPUs must yield 2 vCPUs, not 3, despite float noise.
	vms := []VMStat{vm("a", 1, 3), vm("b", 1, 3), vm("c", 1, 3), vm("d", 1, 3)}
	res := ComputeExtendability(vms, 8, t10ms)
	for _, re := range res {
		if re.OptimalVCPUs != 2 {
			t.Fatalf("%s optimal = %d, want exactly 2", re.ID, re.OptimalVCPUs)
		}
	}
}

func TestExtendabilityEmptyAndPanics(t *testing.T) {
	if got := ComputeExtendability(nil, 4, t10ms); got != nil {
		t.Fatal("nil input should give nil output")
	}
	for _, tc := range []func(){
		func() { ComputeExtendability([]VMStat{vm("a", 1, 1)}, 0, t10ms) },
		func() { ComputeExtendability([]VMStat{vm("a", 1, 1)}, 4, 0) },
		func() { ComputeExtendability([]VMStat{vm("a", 0, 1)}, 4, t10ms) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on invalid input")
				}
			}()
			tc()
		}()
	}
}

func TestPoolSlack(t *testing.T) {
	vms := []VMStat{vm("busy", 1, 2.0), vm("idle", 1, 0.5)}
	res := ComputeExtendability(vms, 4, t10ms)
	want := sim.Time(1.5 * float64(t10ms))
	if got := PoolSlack(vms, res); got != want {
		t.Fatalf("slack = %v, want %v", got, want)
	}
}
