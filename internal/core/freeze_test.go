package core

import (
	"testing"

	"vscale/internal/costmodel"
	"vscale/internal/sim"
)

func TestMasterStepsOrderAndCost(t *testing.T) {
	steps := MasterSteps()
	if len(steps) != 6 {
		t.Fatalf("got %d master steps, want 6", len(steps))
	}
	// The order is load-bearing (Algorithm 2: "must be executed in this
	// order"): mask before group power before hypercall before IPI.
	wantOrder := []MasterStep{StepSyscall, StepFreezeLock, StepMaskUpdate,
		StepGroupPower, StepHypercall, StepRescheduleIPI}
	for i, s := range steps {
		if s != wantOrder[i] {
			t.Fatalf("step %d = %v, want %v", i, s, wantOrder[i])
		}
		if s.Cost() <= 0 {
			t.Fatalf("step %v has non-positive cost", s)
		}
		if s.String() == "" {
			t.Fatalf("step %v has empty name", s)
		}
	}
	if MasterCost() != 2100*sim.Nanosecond {
		t.Fatalf("master cost = %v, want 2.10µs (Table 3)", MasterCost())
	}
}

func TestFreezePlanCosts(t *testing.T) {
	p := FreezePlan{TargetVCPU: 3, MigratableThreads: 10, DeviceIRQs: 2}
	want := 10*costmodel.ThreadMigrate.Mid() + 2*costmodel.IRQMigrate.Mid()
	if p.TargetCostExpected() != want {
		t.Fatalf("expected target cost = %v, want %v", p.TargetCostExpected(), want)
	}
	if p.TotalExpected() != MasterCost()+want {
		t.Fatal("total must be master + target")
	}
	r := sim.NewRand(5)
	for i := 0; i < 100; i++ {
		d := p.DrawTargetCost(r)
		lo := 10*costmodel.ThreadMigrateMin + 2*costmodel.IRQMigrateMin
		hi := 10*costmodel.ThreadMigrateMax + 2*costmodel.IRQMigrateMax
		if d < lo || d > hi {
			t.Fatalf("drawn target cost %v outside [%v, %v]", d, lo, hi)
		}
	}
}

func TestFreezePlanEmpty(t *testing.T) {
	p := FreezePlan{TargetVCPU: 1}
	if p.TargetCostExpected() != 0 {
		t.Fatal("no work should cost nothing on the target")
	}
	if p.DrawTargetCost(sim.NewRand(1)) != 0 {
		t.Fatal("draw of empty plan should be zero")
	}
}

func TestFreezeVsHotplugHeadline(t *testing.T) {
	// The paper's headline: vScale reconfiguration is 100x–100,000x
	// faster than CPU hotplug. Even a freeze migrating 100 threads stays
	// microsecond-scale.
	p := FreezePlan{MigratableThreads: 100, DeviceIRQs: 4}
	if p.TotalExpected() > 200*sim.Microsecond {
		t.Fatalf("freeze with 100 threads = %v, should stay ~100µs", p.TotalExpected())
	}
}

func TestGovernorImmediateUp(t *testing.T) {
	g := NewGovernor(1, 8, 4, 3)
	if got := g.Observe(8); got != 8 {
		t.Fatalf("scale-up not immediate: %d", got)
	}
	if g.Current() != 8 {
		t.Fatal("current not updated")
	}
}

func TestGovernorDownHysteresis(t *testing.T) {
	g := NewGovernor(1, 8, 8, 2)
	if got := g.Observe(4); got != 8 {
		t.Fatalf("scaled down after 1 reading with hysteresis 2: %d", got)
	}
	if got := g.Observe(4); got != 8 {
		t.Fatalf("scaled down after 2 readings: %d", got)
	}
	if got := g.Observe(4); got != 4 {
		t.Fatalf("did not scale down after 3 readings: %d", got)
	}
}

func TestGovernorDownStreakUsesMaxReading(t *testing.T) {
	// Fluctuating low readings scale down conservatively: to the
	// highest reading seen in the streak.
	g := NewGovernor(1, 8, 8, 2)
	g.Observe(4)
	g.Observe(2)
	if got := g.Observe(2); got != 4 {
		t.Fatalf("after streak [4 2 2] expected down to 4 (streak max), got %d", got)
	}
	// A following streak of pure 2s brings it the rest of the way.
	g.Observe(2)
	g.Observe(2)
	if got := g.Observe(2); got != 2 {
		t.Fatalf("expected 2 after a consistent low streak, got %d", got)
	}
}

func TestGovernorUpInterruptsDown(t *testing.T) {
	g := NewGovernor(1, 8, 8, 2)
	g.Observe(4)
	g.Observe(4)
	g.Observe(8) // demand is back: cancel the pending down-scale
	if got := g.Observe(4); got != 8 {
		t.Fatalf("hysteresis must restart after an up: %d", got)
	}
}

func TestGovernorBoundsAndForce(t *testing.T) {
	g := NewGovernor(2, 6, 4, 0)
	if got := g.Observe(100); got != 6 {
		t.Fatalf("max clamp failed: %d", got)
	}
	if got := g.Observe(0); got != 2 {
		t.Fatalf("min clamp failed: %d", got)
	}
	g.ForceCurrent(100)
	if g.Current() != 6 {
		t.Fatalf("ForceCurrent clamp failed: %d", g.Current())
	}
	// Degenerate constructor input is repaired.
	g2 := NewGovernor(0, -1, 9, 0)
	if g2.MinVCPUs != 1 || g2.MaxVCPUs != 1 || g2.Current() != 1 {
		t.Fatalf("constructor repair failed: %+v", g2)
	}
}

func TestGovernorZeroHysteresisImmediate(t *testing.T) {
	g := NewGovernor(1, 8, 8, 0)
	if got := g.Observe(3); got != 3 {
		t.Fatalf("zero hysteresis should scale down immediately: %d", got)
	}
}
