package cluster

import (
	"fmt"

	"vscale/internal/core"
	"vscale/internal/costmodel"
	"vscale/internal/dom0"
	"vscale/internal/guest"
	"vscale/internal/loadgen"
	"vscale/internal/scenario"
	"vscale/internal/sim"
	"vscale/internal/trace"
	"vscale/internal/workload/httpd"
	"vscale/internal/xen"
)

// Policy selects how each VM of the fleet resizes itself.
type Policy int

// Fleet scaling policies, in the order the cluster experiment reports
// them.
const (
	// PolicyStatic never resizes: every VM keeps all its vCPUs online
	// (unmodified Xen/Linux).
	PolicyStatic Policy = iota
	// PolicyHotplug resizes through the dom0 toolstack: each
	// reconfiguration pays a dom0 monitoring sweep over the host's VMs,
	// a XenStore write and the guest CPU-hotplug latency (VCPU-Bal).
	PolicyHotplug
	// PolicyVScale resizes through the vScale channel and balancer
	// (the paper's system).
	PolicyVScale
)

func (p Policy) String() string {
	switch p {
	case PolicyStatic:
		return "static"
	case PolicyHotplug:
		return "hotplug"
	case PolicyVScale:
		return "vscale"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// HostConfig parameterises one host of the fleet.
type HostConfig struct {
	// PCPUs is the size of the host's domU CPU pool.
	PCPUs int
	// Seed drives the host's engine and everything derived from it.
	Seed uint64
	// Policy is the VM scaling policy (shared fleet-wide).
	Policy Policy
	// SLO is the per-request latency objective for every VM's load.
	SLO sim.Time
	// Tracer, when non-nil, records the host's scheduling events.
	Tracer *trace.Tracer
}

// hostVM is one VM resident on a host.
type hostVM struct {
	name  string
	vcpus int
	dom   *xen.Domain
	k     *guest.Kernel
	srv   *httpd.Server
	gen   *loadgen.Generator

	// lastConsumed checkpoints dom.TotalRunTime at the last snapshot so
	// per-epoch consumption is a simple delta.
	lastConsumed sim.Time
	retired      bool
}

// Host is one Xen host of the fleet: a private engine, a domU pool, a
// dom0 cost model, and the VMs currently placed on it. All mutating
// calls must come either from the host's own engine callbacks or from
// the control plane between epochs (when the engine is parked at an
// epoch boundary); Hosts are not safe for concurrent use — the fleet
// runs at most one RunEpoch per host at a time.
type Host struct {
	id      int
	cfg     HostConfig
	eng     *sim.Engine
	pool    *xen.Pool
	d0      *dom0.Dom0
	hotplug costmodel.HotplugModel

	vms   map[string]*hostVM
	order []string // admission order, for deterministic iteration

	// err records the first asynchronous fault raised inside engine
	// callbacks (RunEpoch returns it).
	err error
}

// NewHost builds an idle host.
func NewHost(id int, cfg HostConfig) *Host {
	if cfg.PCPUs <= 0 {
		panic("cluster: host needs at least one pCPU")
	}
	eng := sim.NewEngine(cfg.Seed)
	if cfg.Tracer != nil {
		eng.SetObserver(cfg.Tracer.SimEvent)
	}
	xcfg := xen.DefaultConfig(cfg.PCPUs)
	// Hotplug needs the extendability channel too: VCPU-Bal reads the
	// same utilisation signal, it only reconfigures through dom0.
	xcfg.VScale = cfg.Policy != PolicyStatic
	pool := xen.NewPool(eng, xcfg)
	pool.SetTracer(cfg.Tracer)
	model, ok := costmodel.HotplugModelFor("v-3.14.15")
	if !ok {
		panic("cluster: hotplug model v-3.14.15 missing")
	}
	h := &Host{
		id:      id,
		cfg:     cfg,
		eng:     eng,
		pool:    pool,
		d0:      dom0.New(dom0.DefaultConfig(), sim.NewRand(cfg.Seed^0x5bd1e995)),
		hotplug: model,
		vms:     map[string]*hostVM{},
	}
	pool.Start()
	return h
}

// Engine exposes the host's private engine (tests and the fleet loop).
func (h *Host) Engine() *sim.Engine { return h.eng }

// ActiveVMs returns the number of non-retired VMs.
func (h *Host) ActiveVMs() int {
	n := 0
	for _, name := range h.order {
		if !h.vms[name].retired {
			n++
		}
	}
	return n
}

// CommittedVCPUs returns the vCPUs provisioned across non-retired VMs
// (the placement tie-breaker).
func (h *Host) CommittedVCPUs() int {
	n := 0
	for _, name := range h.order {
		if vm := h.vms[name]; !vm.retired {
			n += vm.vcpus
		}
	}
	return n
}

// ScheduleAdd schedules a VM arrival at ev.At on the host's engine. The
// placement decision was already made by the control plane; the VM
// boots at its exact trace time. seed roots the VM's private RNG
// streams — the fleet derives it from the VM's position in the churn
// trace, not from the host, so the offered load is a pure function of
// the trace however placement turns out.
func (h *Host) ScheduleAdd(ev Event, seed uint64) {
	h.eng.At(ev.At, "cluster/arrive", func() {
		if err := h.addVM(ev.VM, ev.VCPUs, ev.RateRPS, seed); err != nil {
			h.fail(err)
		}
	})
}

// ScheduleRate schedules a workload-phase change at ev.At.
func (h *Host) ScheduleRate(ev Event) {
	h.eng.At(ev.At, "cluster/phase", func() {
		if vm, ok := h.vms[ev.VM]; ok && !vm.retired {
			vm.gen.SetRate(ev.RateRPS)
		}
	})
}

// ScheduleRemove schedules a VM departure at ev.At.
func (h *Host) ScheduleRemove(ev Event) {
	h.eng.At(ev.At, "cluster/depart", func() { h.removeVM(ev.VM) })
}

// addVM boots a VM at the current engine time: a domain weighted per
// vCPU, a guest kernel running the policy's scaling daemon, an httpd
// server and its open-loop load generator.
func (h *Host) addVM(name string, vcpus int, rate float64, seed uint64) error {
	if _, dup := h.vms[name]; dup {
		return fmt.Errorf("cluster: host %d: duplicate VM %q", h.id, name)
	}
	if vcpus <= 0 {
		return fmt.Errorf("cluster: host %d: VM %q with %d vCPUs", h.id, name, vcpus)
	}
	dom := h.pool.AddDomain(name, scenario.WeightPerVCPU*float64(vcpus), vcpus, nil)

	gcfg := guest.DefaultConfig()
	gcfg.Seed = seed
	gcfg.VScale.Enabled = h.cfg.Policy != PolicyStatic
	if h.cfg.Policy == PolicyHotplug {
		// The dom0 reconfiguration path: each resize first re-reads the
		// stats of every VM on this host through libxl (the per-host
		// monitoring sweep), then pays the XenStore write and the guest
		// hotplug operation. More VMs on the host → slower scaling.
		gcfg.VScale.ReconfigDelay = func(r *sim.Rand) sim.Time {
			sweep := h.d0.ReadVMStats(h.ActiveVMs(), dom0.Idle)
			return sweep + costmodel.XenStoreWrite + h.hotplug.DrawDown(r)
		}
	}
	k := guest.NewKernel(dom, gcfg)

	hcfg := httpd.DefaultConfig()
	// Keep worker pools proportional to VM size so a 2-vCPU VM does not
	// carry a 32-thread pool.
	hcfg.Workers = 8 * vcpus
	link := httpd.NewLink(h.eng, hcfg.LinkBps)
	srv, err := httpd.NewServer(k, link, hcfg)
	if err != nil {
		return err
	}
	gen := loadgen.New(h.eng, srv, sim.NewRand(gcfg.Seed^0x9e3779b9), loadgen.Config{
		RateRPS: rate,
		SLO:     h.cfg.SLO,
	})

	vm := &hostVM{name: name, vcpus: vcpus, dom: dom, k: k, srv: srv, gen: gen}
	h.vms[name] = vm
	h.order = append(h.order, name)

	k.Boot()
	gen.Start()
	return nil
}

// removeVM retires a VM: its load stops, its scaling daemon halts, and
// its accounting is frozen out of future placement stats. The domain
// object stays in the pool (idle) — the simulation has no domain
// destruction, and an idle domain consumes no CPU.
func (h *Host) removeVM(name string) {
	vm, ok := h.vms[name]
	if !ok || vm.retired {
		return
	}
	vm.gen.Stop()
	vm.k.StopDaemon()
	vm.retired = true
}

// StopAll retires every VM (end of horizon: drain in-flight requests).
func (h *Host) StopAll() {
	for _, name := range h.order {
		h.removeVM(name)
	}
}

// fail records the first asynchronous error.
func (h *Host) fail(err error) {
	if h.err == nil {
		h.err = err
	}
}

// RunEpoch advances the host's engine to exactly the given deadline and
// reports any fault raised by callbacks (or servers) meanwhile. The
// fleet fans these calls across its worker pool — each host's epoch is
// an independent, single-threaded simulation step.
func (h *Host) RunEpoch(until sim.Time) error {
	if err := h.eng.RunUntil(until); err != nil {
		return fmt.Errorf("cluster: host %d: %w", h.id, err)
	}
	if h.err != nil {
		return h.err
	}
	for _, name := range h.order {
		if err := h.vms[name].srv.Err(); err != nil {
			return fmt.Errorf("cluster: host %d: VM %s: %w", h.id, name, err)
		}
	}
	return nil
}

// Snapshot syncs the scheduler's accounting and returns per-VM stats
// for the elapsed epoch, in admission order: the telemetry the control
// plane feeds to Algorithm 1 when probing placements. Retired VMs are
// excluded but their checkpoints stay coherent.
func (h *Host) Snapshot(epoch sim.Time) []core.VMStat {
	h.pool.SyncAccounting()
	stats := make([]core.VMStat, 0, len(h.order))
	for _, name := range h.order {
		vm := h.vms[name]
		consumed := vm.dom.TotalRunTime - vm.lastConsumed
		vm.lastConsumed = vm.dom.TotalRunTime
		if vm.retired {
			continue
		}
		stats = append(stats, core.VMStat{
			ID:               name,
			Weight:           vm.dom.Weight,
			Consumption:      consumed,
			ReservationPCPUs: vm.dom.ReservationPCPUs,
			CapPCPUs:         vm.dom.CapPCPUs,
			MaxVCPUs:         vm.vcpus,
			UP:               vm.vcpus == 1,
		})
	}
	return stats
}

// Util returns the host's pCPU busy fraction up to now.
func (h *Host) Util() float64 {
	now := h.eng.Now()
	if now == 0 {
		return 0
	}
	total := float64(now) * float64(h.cfg.PCPUs)
	return 1 - float64(h.pool.Idle())/total
}
