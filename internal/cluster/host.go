package cluster

import (
	"fmt"

	"vscale/internal/core"
	"vscale/internal/costmodel"
	"vscale/internal/dom0"
	"vscale/internal/guest"
	"vscale/internal/loadgen"
	"vscale/internal/scenario"
	"vscale/internal/sim"
	"vscale/internal/trace"
	"vscale/internal/workload/httpd"
	"vscale/internal/xen"
)

// hotplugModelVersion is the CPU-hotplug latency model hotplug-mechanism
// policies reconfigure through.
const hotplugModelVersion = "v-3.14.15"

// HostConfig parameterises one host of the fleet.
type HostConfig struct {
	// PCPUs is the size of the host's domU CPU pool.
	PCPUs int
	// Seed drives the host's engine and everything derived from it.
	Seed uint64
	// Policy is the fleet-wide VM scaling policy instance; the host
	// configures each VM's guest plumbing from Policy.Mechanism().
	Policy ScalingPolicy
	// SLO is the per-request latency objective for every VM's load.
	SLO sim.Time
	// Tracer, when non-nil, records the host's scheduling events.
	Tracer *trace.Tracer
	// Disarmed builds the host with the policy's mechanisms off: no
	// per-VM scaling daemons, no pool extendability ticker. The warm-fork
	// prefix runs every host disarmed so its state is policy-neutral and
	// one simulated warm-up serves every forked policy; Arm turns the
	// mechanisms on at the fork boundary.
	Disarmed bool
}

// hostVM is one VM resident on a host.
type hostVM struct {
	name  string
	vcpus int
	seed  uint64
	dom   *xen.Domain
	k     *guest.Kernel
	srv   *httpd.Server
	gen   *loadgen.Generator
	// link is the VM's I/O link; linkBps its unthrottled rate. The
	// elasticity layer throttles links while the host sources a live
	// migration (SetLinkScale).
	link    *httpd.Link
	linkBps float64

	// lastConsumed checkpoints dom.TotalRunTime at the last snapshot so
	// per-epoch consumption is a simple delta; epochConsumed keeps the
	// latest delta for the policy observation.
	lastConsumed  sim.Time
	epochConsumed sim.Time
	// policyOps counts freeze/unfreeze actions applied by the control
	// plane's policy (ApplyTarget), the epoch-driven counterpart of the
	// daemon's Decisions counter.
	policyOps uint64
	// cost freezes the VM's provisioned vCPU-seconds at retirement.
	cost    float64
	retired bool
}

// Host is one Xen host of the fleet: a private engine, a domU pool, a
// dom0 cost model, and the VMs currently placed on it. All mutating
// calls must come either from the host's own engine callbacks or from
// the control plane between epochs (when the engine is parked at an
// epoch boundary); Hosts are not safe for concurrent use — the fleet
// runs at most one RunEpoch per host at a time.
type Host struct {
	id      int
	cfg     HostConfig
	mech    Mechanism
	eng     *sim.Engine
	pool    *xen.Pool
	d0      *dom0.Dom0
	hotplug costmodel.HotplugModel

	vms   map[string]*hostVM
	order []string // admission order, for deterministic iteration

	// armed is whether the policy's mechanisms are live (always true for
	// hosts built without Disarmed); pauseFrom, when non-zero, marks the
	// pending quiesce barrier: VMs admitted at or after it boot with
	// their load generators paused (see ScheduleQuiesce).
	armed     bool
	pauseFrom sim.Time

	// linkScale throttles every live VM's I/O link while the host
	// sources a live migration (1 = unthrottled); pendingObs caches one
	// boundary's observations between the elasticity pass that samples
	// them and the policy pass that consumes them (Observations takes
	// each load window exactly once per epoch).
	linkScale  float64
	pendingObs []VMObservation

	// err records the first asynchronous fault raised inside engine
	// callbacks (RunEpoch returns it).
	err error
}

// NewHost builds an idle host. It rejects a non-positive pool size and
// a missing policy, and a hotplug-mechanism policy whose latency model
// is absent — misconfigurations a fleet caller should see as errors,
// not panics.
func NewHost(id int, cfg HostConfig) (*Host, error) {
	if cfg.PCPUs <= 0 {
		return nil, fmt.Errorf("cluster: host %d: need at least one pCPU, got %d", id, cfg.PCPUs)
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("cluster: host %d: needs a scaling policy", id)
	}
	mech := cfg.Policy.Mechanism()
	var model costmodel.HotplugModel
	if mech.Hotplug {
		m, ok := costmodel.HotplugModelFor(hotplugModelVersion)
		if !ok {
			return nil, fmt.Errorf("cluster: host %d: hotplug model %s missing", id, hotplugModelVersion)
		}
		model = m
	}
	eng := sim.NewEngine(cfg.Seed)
	if cfg.Tracer != nil {
		eng.SetObserver(cfg.Tracer.SimEvent)
	}
	xcfg := xen.DefaultConfig(cfg.PCPUs)
	// The extendability channel feeds any daemon-driven mechanism:
	// hotplug (VCPU-Bal) reads the same utilisation signal as vScale, it
	// only reconfigures through dom0. A disarmed host starts without it;
	// Arm enables it through xen.Pool.EnableVScale.
	xcfg.VScale = mech.Channel && !cfg.Disarmed
	pool := xen.NewPool(eng, xcfg)
	pool.SetTracer(cfg.Tracer)
	h := &Host{
		id:        id,
		cfg:       cfg,
		mech:      mech,
		eng:       eng,
		pool:      pool,
		d0:        dom0.New(dom0.DefaultConfig(), sim.NewRand(cfg.Seed^0x5bd1e995)),
		hotplug:   model,
		vms:       map[string]*hostVM{},
		armed:     !cfg.Disarmed,
		linkScale: 1,
	}
	pool.Start()
	return h, nil
}

// Engine exposes the host's private engine (tests and the fleet loop).
func (h *Host) Engine() *sim.Engine { return h.eng }

// ActiveVMs returns the number of non-retired VMs.
func (h *Host) ActiveVMs() int {
	n := 0
	for _, name := range h.order {
		if !h.vms[name].retired {
			n++
		}
	}
	return n
}

// CommittedVCPUs returns the vCPUs provisioned across non-retired VMs
// (the placement tie-breaker).
func (h *Host) CommittedVCPUs() int {
	n := 0
	for _, name := range h.order {
		if vm := h.vms[name]; !vm.retired {
			n += vm.vcpus
		}
	}
	return n
}

// ScheduleAdd schedules a VM arrival at ev.At on the host's engine. The
// placement decision was already made by the control plane; the VM
// boots at its exact trace time. seed roots the VM's private RNG
// streams — the fleet derives it from the VM's position in the churn
// trace, not from the host, so the offered load is a pure function of
// the trace however placement turns out.
func (h *Host) ScheduleAdd(ev Event, seed uint64) {
	h.eng.At(ev.At, "cluster/arrive", func() {
		if err := h.addVM(ev.VM, ev.VCPUs, ev.RateRPS, seed); err != nil {
			h.fail(err)
		}
	})
}

// ScheduleRate schedules a workload-phase change at ev.At.
func (h *Host) ScheduleRate(ev Event) {
	h.eng.At(ev.At, "cluster/phase", func() {
		if vm, ok := h.vms[ev.VM]; ok && !vm.retired {
			vm.gen.SetRate(ev.RateRPS)
		}
	})
}

// ScheduleRemove schedules a VM departure at ev.At.
func (h *Host) ScheduleRemove(ev Event) {
	h.eng.At(ev.At, "cluster/depart", func() { h.removeVM(ev.VM) })
}

// scheduleRouted schedules one epoch's routed churn batch onto the
// host's engine, in trace order — after any boundary policy IPIs and
// before the epoch runs, so the engine's event sequence is identical in
// both sync modes. Called while the engine is parked at the epoch's
// start boundary: by the control plane in lockstep, by the host's own
// pool worker in bounded-lag.
func (h *Host) scheduleRouted(batch []routedEvent) {
	for _, r := range batch {
		switch r.ev.Kind {
		case EventArrive:
			h.ScheduleAdd(r.ev, r.seed)
		case EventPhase:
			h.ScheduleRate(r.ev)
		case EventDepart:
			h.ScheduleRemove(r.ev)
		}
	}
}

// boundaryPolicy runs one epoch-boundary policy pass with the host's
// own policy instance: observe every live VM in admission order
// (consuming the epoch's load window) and apply positive targets
// through the guest balancer. Daemon-driven policies return 0 — their
// in-guest mechanism is already steering.
func (h *Host) boundaryPolicy(pol ScalingPolicy, epoch sim.Time) {
	obs := h.EpochObservations(epoch)
	h.pendingObs = nil
	for _, o := range obs {
		if target := pol.Decide(o); target > 0 {
			h.ApplyTarget(o.VM, target)
		}
	}
}

// EpochObservations returns the boundary's per-VM observations,
// building (and caching) them on first call: the elasticity pass and
// the policy pass both read the same load window; the policy pass —
// always the boundary's last consumer — drains the cache.
func (h *Host) EpochObservations(epoch sim.Time) []VMObservation {
	if h.pendingObs == nil {
		h.pendingObs = h.Observations(epoch)
	}
	return h.pendingObs
}

// addVM boots a VM at the current engine time: a domain weighted per
// vCPU, a guest kernel wired per the policy's mechanism, an httpd
// server and its open-loop load generator.
func (h *Host) addVM(name string, vcpus int, rate float64, seed uint64) error {
	if _, dup := h.vms[name]; dup {
		return fmt.Errorf("cluster: host %d: duplicate VM %q", h.id, name)
	}
	if vcpus <= 0 {
		return fmt.Errorf("cluster: host %d: VM %q with %d vCPUs", h.id, name, vcpus)
	}
	dom := h.pool.AddDomain(name, scenario.WeightPerVCPU*float64(vcpus), vcpus, nil)

	gcfg := guest.DefaultConfig()
	gcfg.Seed = seed
	gcfg.VScale.Enabled = h.mech.Daemon && h.armed
	if h.mech.Hotplug && h.armed {
		gcfg.VScale.ReconfigDelay = h.reconfigDelay()
	}
	k := guest.NewKernel(dom, gcfg)

	hcfg := httpd.DefaultConfig()
	// Keep worker pools proportional to VM size so a 2-vCPU VM does not
	// carry a 32-thread pool.
	hcfg.Workers = 8 * vcpus
	link := httpd.NewLink(h.eng, hcfg.LinkBps)
	if h.linkScale != 1 {
		// The host is mid-migration: newcomers share the throttled link.
		link.SetBps(hcfg.LinkBps * h.linkScale)
	}
	srv, err := httpd.NewServer(k, link, hcfg)
	if err != nil {
		return err
	}
	gen := loadgen.New(h.eng, srv, sim.NewRand(gcfg.Seed^0x9e3779b9), loadgen.Config{
		RateRPS: rate,
		SLO:     h.cfg.SLO,
	})

	vm := &hostVM{name: name, vcpus: vcpus, seed: seed, dom: dom, k: k, srv: srv, gen: gen,
		link: link, linkBps: hcfg.LinkBps}
	h.vms[name] = vm
	h.order = append(h.order, name)

	k.Boot()
	if h.pauseFrom > 0 && h.eng.Now() >= h.pauseFrom {
		// The quiesce barrier already passed: boot with the arrival
		// stream held so the pipeline stays drained for the capture.
		gen.Pause()
	}
	gen.Start()
	return nil
}

// reconfigDelay builds the dom0 reconfiguration latency hook for a
// hotplug-mechanism VM: each resize first re-reads the stats of every
// VM on this host through libxl (the per-host monitoring sweep), then
// pays the XenStore write and the guest hotplug operation. More VMs on
// the host → slower scaling.
func (h *Host) reconfigDelay() func(r *sim.Rand) sim.Time {
	return func(r *sim.Rand) sim.Time {
		sweep := h.d0.ReadVMStats(h.ActiveVMs(), dom0.Idle)
		return sweep + costmodel.XenStoreWrite + h.hotplug.DrawDown(r)
	}
}

// ScheduleQuiesce schedules the load-quiesce barrier at `at` (an epoch
// start): every live VM's generator pauses there, and VMs admitted at
// or after it boot paused, so by the epoch's end boundary all in-flight
// requests have drained and the host is checkpointable. Both executors
// schedule it for the epoch preceding a capture boundary, right after
// that epoch's churn batch, so the event sequence is identical across
// sync modes and in the straight-through reference run.
func (h *Host) ScheduleQuiesce(at sim.Time) {
	h.pauseFrom = at
	h.eng.At(at, "cluster/quiesce", func() {
		for _, name := range h.order {
			if vm := h.vms[name]; !vm.retired {
				vm.gen.Pause()
			}
		}
	})
}

// Arm turns the policy's mechanisms on at the fork boundary of a host
// built Disarmed: the pool's extendability ticker (channel mechanisms),
// each live VM's scaling daemon (daemon mechanisms, with the dom0
// reconfiguration hook for hotplug), then the paused load generators
// resume and their accounting windows reset so the measured window
// starts clean. Walks VMs in admission order; arming an armed host is
// a no-op.
func (h *Host) Arm() {
	if h.armed {
		return
	}
	h.armed = true
	h.pauseFrom = 0
	if h.mech.Channel {
		h.pool.EnableVScale()
	}
	for _, name := range h.order {
		vm := h.vms[name]
		if vm.retired {
			continue
		}
		if h.mech.Daemon {
			if h.mech.Hotplug {
				vm.k.SetReconfigDelay(h.reconfigDelay())
			}
			vm.k.StartVScaleDaemon()
		}
		vm.gen.Resume()
		vm.gen.TakeWindow() // discard: the measured window starts here
	}
}

// ResumeLoad releases the quiesce barrier without touching mechanisms
// or accounting windows — the post-capture resume of a mid-run
// checkpoint (and of the run restored from it), which must observe
// exactly what the uninterrupted run would have.
func (h *Host) ResumeLoad() {
	h.pauseFrom = 0
	for _, name := range h.order {
		if vm := h.vms[name]; !vm.retired {
			vm.gen.Resume()
		}
	}
}

// removeVM retires a VM: its load stops, its scaling daemon halts, its
// provisioned cost is checkpointed, and its accounting is frozen out of
// future placement stats. The domain object stays in the pool (idle) —
// the simulation has no domain destruction, and an idle domain consumes
// no CPU.
func (h *Host) removeVM(name string) {
	vm, ok := h.vms[name]
	if !ok || vm.retired {
		return
	}
	vm.gen.Stop()
	vm.k.StopDaemon()
	vm.cost = vm.k.ActiveVCPUSeconds()
	vm.retired = true
}

// HasLiveVM reports whether a non-retired VM of that name is resident.
func (h *Host) HasLiveVM(name string) bool {
	vm, ok := h.vms[name]
	return ok && !vm.retired
}

// MigrateOut performs the source half of a stop-and-copy cutover:
// retire the VM exactly as a departure would (its cost meter freezes,
// in-flight requests drain) and return the identity the destination
// re-boots it with. active is the guest's live vCPU count at cutover —
// the memory image carries the freeze mask, so the destination resumes
// with the same vCPUs offline instead of re-provisioning all of them.
// Called by the elasticity pass while the engine is parked at a
// boundary.
func (h *Host) MigrateOut(name string) (vcpus, active int, seed uint64, ok bool) {
	vm, exists := h.vms[name]
	if !exists || vm.retired {
		return 0, 0, 0, false
	}
	active = vm.k.ActiveVCPUs()
	h.removeVM(name)
	return vm.vcpus, active, vm.seed, true
}

// ScheduleMigrateIn boots the migrated VM on this host at `at` — the
// cutover boundary plus the modeled downtime — with its original seed
// and its post-migration offered rate. The guest resumes with the
// source's freeze mask: vCPUs [active, vcpus) come up frozen, so the
// cutover neither provisions nor costs capacity the guest had already
// scaled away.
func (h *Host) ScheduleMigrateIn(name string, vcpus, active int, rate float64, seed uint64, at sim.Time) {
	h.eng.At(at, "cluster/migrate-in", func() {
		if err := h.addVM(name, vcpus, rate, seed); err != nil {
			h.fail(err)
			return
		}
		vm := h.vms[name]
		for id := active; id > 0 && id < vcpus; id++ {
			if err := vm.k.FreezeVCPU(id); err != nil {
				h.fail(err)
				return
			}
		}
	})
}

// SetVMRate drives a VM's load generator at rps (the replica-set
// fan-out path). An absent or retired VM — e.g. one still landing from
// a migration cutover — is skipped; the next boundary's fan-out
// self-heals it.
func (h *Host) SetVMRate(name string, rps float64) {
	if vm, ok := h.vms[name]; ok && !vm.retired {
		vm.gen.SetRate(rps)
	}
}

// SetLinkScale throttles every live VM's I/O link to scale × its base
// rate — migration traffic contending with guest I/O while this host
// sources a pre-copy stream. In-flight transfers keep their departure
// times (httpd.Link semantics); newcomers boot throttled while the
// scale is below 1.
func (h *Host) SetLinkScale(scale float64) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	if h.linkScale == scale {
		return
	}
	h.linkScale = scale
	for _, name := range h.order {
		if vm := h.vms[name]; !vm.retired && vm.link != nil {
			vm.link.SetBps(vm.linkBps * scale)
		}
	}
}

// statsAt rebuilds the boundary snapshot this host just published,
// read-only: the consumption deltas Snapshot computed at this boundary
// are reused, so the elasticity pass can feed Algorithm 1 live state
// without touching accounting.
func (h *Host) statsAt() []core.VMStat {
	stats := make([]core.VMStat, 0, len(h.order))
	for _, name := range h.order {
		vm := h.vms[name]
		if vm.retired {
			continue
		}
		stats = append(stats, core.VMStat{
			ID:               name,
			Weight:           vm.dom.Weight,
			Consumption:      vm.epochConsumed,
			ReservationPCPUs: vm.dom.ReservationPCPUs,
			CapPCPUs:         vm.dom.CapPCPUs,
			MaxVCPUs:         vm.vcpus,
			UP:               vm.vcpus == 1,
		})
	}
	return stats
}

// StopAll retires every VM (end of horizon: drain in-flight requests).
func (h *Host) StopAll() {
	for _, name := range h.order {
		h.removeVM(name)
	}
}

// fail records the first asynchronous error.
func (h *Host) fail(err error) {
	if h.err == nil {
		h.err = err
	}
}

// RunEpoch advances the host's engine to exactly the given deadline and
// reports any fault raised by callbacks (or servers) meanwhile. The
// fleet fans these calls across its worker pool — each host's epoch is
// an independent, single-threaded simulation step.
func (h *Host) RunEpoch(until sim.Time) error {
	if err := h.eng.RunUntil(until); err != nil {
		return fmt.Errorf("cluster: host %d: %w", h.id, err)
	}
	if h.err != nil {
		return h.err
	}
	for _, name := range h.order {
		if err := h.vms[name].srv.Err(); err != nil {
			return fmt.Errorf("cluster: host %d: VM %s: %w", h.id, name, err)
		}
	}
	return nil
}

// Snapshot syncs the scheduler's accounting and returns per-VM stats
// for the elapsed epoch, in admission order: the telemetry the control
// plane feeds to Algorithm 1 when probing placements. Retired VMs are
// excluded but their checkpoints stay coherent.
func (h *Host) Snapshot(epoch sim.Time) []core.VMStat {
	h.pool.SyncAccounting()
	stats := make([]core.VMStat, 0, len(h.order))
	for _, name := range h.order {
		vm := h.vms[name]
		consumed := vm.dom.TotalRunTime - vm.lastConsumed
		vm.lastConsumed = vm.dom.TotalRunTime
		vm.epochConsumed = consumed
		if vm.retired {
			continue
		}
		stats = append(stats, core.VMStat{
			ID:               name,
			Weight:           vm.dom.Weight,
			Consumption:      consumed,
			ReservationPCPUs: vm.dom.ReservationPCPUs,
			CapPCPUs:         vm.dom.CapPCPUs,
			MaxVCPUs:         vm.vcpus,
			UP:               vm.vcpus == 1,
		})
	}
	return stats
}

// Observations builds the per-VM policy observations for the epoch that
// just ended, in admission order. It consumes each live VM's load
// window (loadgen.TakeWindow), so the control plane calls it exactly
// once per epoch, after Snapshot has refreshed the consumption deltas.
// Building observations reads accounting only — no RNG draws, no engine
// events — so policies observing the fleet cannot perturb it.
func (h *Host) Observations(epoch sim.Time) []VMObservation {
	obs := make([]VMObservation, 0, len(h.order))
	for _, name := range h.order {
		vm := h.vms[name]
		if vm.retired {
			continue
		}
		w, hist := vm.gen.TakeWindow()
		o := VMObservation{
			VM:          name,
			Host:        h.id,
			Epoch:       epoch,
			MaxVCPUs:    vm.vcpus,
			ActiveVCPUs: vm.k.ActiveVCPUs(),
			HostPCPUs:   h.cfg.PCPUs,
			ConsumedCPU: vm.epochConsumed,
			OfferedRPS:  vm.gen.Rate(),
			Offered:     w.Offered,
			Replies:     w.Replies,
			Errors:      w.Errors,
			InFlight:    w.InFlight,
			Attainment:  w.Attainment(),
			SLO:         h.cfg.SLO,
		}
		if w.Replies > 0 {
			o.P50 = hist.Quantile(0.5)
			o.P95 = hist.Quantile(0.95)
			o.P99 = hist.Quantile(0.99)
		}
		obs = append(obs, o)
	}
	return obs
}

// ApplyTarget resizes a VM to target active vCPUs through the guest
// balancer, exactly as the in-guest daemon would: freeze the
// highest-numbered active vCPUs, unfreeze the lowest-numbered frozen
// ones. The control plane calls it between epochs while the engine is
// parked; the freeze/unfreeze IPIs it raises are zero-delay events that
// fire first thing next epoch. The target is clamped to [1, MaxVCPUs];
// matching the current count is a no-op.
func (h *Host) ApplyTarget(name string, target int) {
	vm, ok := h.vms[name]
	if !ok || vm.retired {
		return
	}
	k := vm.k
	target = clampVCPUs(target, vm.vcpus)
	for k.ActiveVCPUs() > target {
		victim := -1
		for i := k.NCPUs() - 1; i >= 1; i-- {
			if !k.Frozen(i) {
				victim = i
				break
			}
		}
		if victim < 0 || k.FreezeVCPU(victim) != nil {
			return
		}
		vm.policyOps++
	}
	for k.ActiveVCPUs() < target {
		cand := -1
		for i := 1; i < k.NCPUs(); i++ {
			if k.Frozen(i) {
				cand = i
				break
			}
		}
		if cand < 0 || k.UnfreezeVCPU(cand) != nil {
			return
		}
		vm.policyOps++
	}
}

// ProvisionedVCPUSeconds returns the host's provisioned cost so far:
// the integral of each VM's active (unfrozen) vCPU count over its
// lifetime, in vCPU-seconds. A retired VM's cost is frozen at its
// departure, so post-horizon drain time is never billed.
func (h *Host) ProvisionedVCPUSeconds() float64 {
	total := 0.0
	for _, name := range h.order {
		vm := h.vms[name]
		if vm.retired {
			total += vm.cost
		} else {
			total += vm.k.ActiveVCPUSeconds()
		}
	}
	return total
}

// Util returns the host's pCPU busy fraction up to now.
func (h *Host) Util() float64 {
	now := h.eng.Now()
	if now == 0 {
		return 0
	}
	total := float64(now) * float64(h.cfg.PCPUs)
	return 1 - float64(h.pool.Idle())/total
}
