package cluster

import (
	"vscale/internal/core"
	"vscale/internal/scenario"
	"vscale/internal/sim"
)

// probeStat builds the hypothetical VMStat Algorithm 1 is probed with
// when placing a new VM: weighted per vCPU like every real domain, and
// assumed to compete at full throttle (consumption = the whole period
// on every pCPU), which keeps admission conservative — a releaser
// assumption would make every host look equally attractive.
func probeStat(vcpus, pcpus int, epoch sim.Time) core.VMStat {
	return core.VMStat{
		ID:          "!probe",
		Weight:      scenario.WeightPerVCPU * float64(vcpus),
		Consumption: sim.Time(int64(epoch) * int64(pcpus)),
		MaxVCPUs:    vcpus,
		UP:          vcpus == 1,
	}
}

// pickHost runs the paper's Algorithm 1 once per host with the new VM
// appended as a full-throttle competitor to the host's last-epoch
// telemetry, and returns the index of the host whose probe gets the
// most CPU extendability — i.e. where the fair-share math says the
// newcomer (and, symmetrically, the incumbents) will be squeezed
// least. Ties break toward fewer committed vCPUs, then the lower host
// index, so placement is deterministic.
func pickHost(hosts []*Host, stats [][]core.VMStat, epoch sim.Time, vcpus int) int {
	best := 0
	bestExtend := sim.Time(-1)
	for i, h := range hosts {
		cand := make([]core.VMStat, 0, len(stats[i])+1)
		cand = append(cand, stats[i]...)
		cand = append(cand, probeStat(vcpus, h.cfg.PCPUs, epoch))
		res := core.ComputeExtendability(cand, h.cfg.PCPUs, epoch)
		extend := res[len(res)-1].Extend
		switch {
		case extend > bestExtend:
			best, bestExtend = i, extend
		case extend == bestExtend:
			if h.CommittedVCPUs() < hosts[best].CommittedVCPUs() {
				best = i
			}
		}
	}
	return best
}
