package cluster

import (
	"vscale/internal/core"
	"vscale/internal/scenario"
	"vscale/internal/sim"
)

// probeStat builds the hypothetical VMStat Algorithm 1 is probed with
// when placing a new VM: weighted per vCPU like every real domain, and
// assumed to compete at full throttle (consumption = the whole period
// on every pCPU), which keeps admission conservative — a releaser
// assumption would make every host look equally attractive.
func probeStat(vcpus, pcpus int, epoch sim.Time) core.VMStat {
	return core.VMStat{
		ID:          "!probe",
		Weight:      scenario.WeightPerVCPU * float64(vcpus),
		Consumption: sim.Time(int64(epoch) * int64(pcpus)),
		MaxVCPUs:    vcpus,
		UP:          vcpus == 1,
	}
}

// pickHost runs the paper's Algorithm 1 once per host with the new VM
// appended as a full-throttle competitor, and returns the index of the
// host whose probe gets the most CPU extendability — i.e. where the
// fair-share math says the newcomer (and, symmetrically, the
// incumbents) will be squeezed least.
//
// It is a pure function of published state, never of live hosts: each
// host's candidate set is its base-boundary snapshot (stats[i]) plus
// the router's staleness-correction probes (probes[i], VMs placed since
// that boundary), plus the newcomer's probe. Ties break toward fewer
// committed vCPUs (committed[i]+committedExtra[i], the snapshot value
// corrected for placements since), then the lower host index, so
// placement is deterministic. scratch is the reusable candidate buffer.
func pickHost(pcpus int, epoch sim.Time, stats, probes [][]core.VMStat, committed []int, committedExtra []int, vcpus int, scratch *[]core.VMStat) int {
	best := 0
	bestExtend := sim.Time(-1)
	newProbe := probeStat(vcpus, pcpus, epoch)
	cand := *scratch
	for i := range probes {
		var base []core.VMStat
		var comm int
		if stats != nil {
			base = stats[i]
			comm = committed[i]
		}
		need := len(base) + len(probes[i]) + 1
		if cap(cand) < need {
			cand = make([]core.VMStat, 0, need*2)
		}
		cand = cand[:0]
		cand = append(cand, base...)
		cand = append(cand, probes[i]...)
		cand = append(cand, newProbe)
		res := core.ComputeExtendability(cand, pcpus, epoch)
		extend := res[len(res)-1].Extend
		switch {
		case extend > bestExtend:
			best, bestExtend = i, extend
		case extend == bestExtend:
			var bestComm int
			if stats != nil {
				bestComm = committed[best]
			}
			if comm+committedExtra[i] < bestComm+committedExtra[best] {
				best = i
			}
		}
	}
	*scratch = cand
	return best
}
