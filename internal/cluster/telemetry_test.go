package cluster

import (
	"bytes"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"vscale/internal/sim"
	"vscale/internal/telemetry"
)

// runTelemetryFleet drives a small fleet with a live collector writing
// JSONL into a buffer, and returns the result plus the stream.
func runTelemetryFleet(t *testing.T, workers int, seed uint64) (FleetResult, string) {
	t.Helper()
	var buf bytes.Buffer
	sink, err := telemetry.NewSink("", &buf)
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.NewCollector(sink, false, "policy", "vscale", "hosts", "2")
	cfg := FleetConfig{
		Hosts:        2,
		PCPUsPerHost: 4,
		Policy:       "vscale",
		Seed:         seed,
		Horizon:      3 * sim.Second,
		SLO:          30 * sim.Millisecond,
		Workers:      workers,
		Telemetry:    col,
	}
	events := GenTrace(DefaultTraceConfig(cfg.Horizon), seed)
	res, err := RunFleet(cfg, events)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Err(); err != nil {
		t.Fatal(err)
	}
	return res, buf.String()
}

func TestFleetTelemetryJSONLDeterministic(t *testing.T) {
	_, a := runTelemetryFleet(t, 1, 11)
	_, b := runTelemetryFleet(t, 4, 11)
	if a != b {
		t.Fatalf("same-seed fleets produced different telemetry streams:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	_, c := runTelemetryFleet(t, 1, 12)
	if a == c {
		t.Fatal("different seeds produced identical telemetry streams")
	}
	lines := strings.Split(strings.TrimSuffix(a, "\n"), "\n")
	// One record per control-plane epoch (3 s / 500 ms) plus the
	// terminal post-drain record.
	if want := 7; len(lines) != want {
		t.Fatalf("got %d telemetry records, want %d", len(lines), want)
	}
	for _, want := range []string{
		`"schema":"vscale-telemetry/v1"`,
		`"name":"vscale_fleet_slo_attainment_ratio"`,
		`"name":"vscale_host_util_ratio"`,
		`"name":"vscale_vm_reply_latency_ms"`,
		`"host":"0"`, `"vm":"`, `"policy":"vscale"`,
	} {
		if !strings.Contains(lines[len(lines)-1], want) {
			t.Fatalf("final record missing %q:\n%s", want, lines[len(lines)-1])
		}
	}
}

// TestFleetTelemetryZeroObserverEffect: running with telemetry must not
// change any simulation result.
func TestFleetTelemetryZeroObserverEffect(t *testing.T) {
	run := func(withTelemetry bool) FleetResult {
		cfg := FleetConfig{
			Hosts:        2,
			PCPUsPerHost: 4,
			Policy:       "hotplug",
			Seed:         5,
			Horizon:      3 * sim.Second,
			SLO:          30 * sim.Millisecond,
		}
		if withTelemetry {
			sink, err := telemetry.NewSink("", &bytes.Buffer{})
			if err != nil {
				t.Fatal(err)
			}
			cfg.Telemetry = telemetry.NewCollector(sink, false)
		}
		events := GenTrace(DefaultTraceConfig(cfg.Horizon), 5)
		res, err := RunFleet(cfg, events)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(false)
	observed := run(true)
	if !reflect.DeepEqual(plain, observed) {
		t.Fatalf("telemetry changed the fleet result:\nplain:    %+v\nobserved: %+v", plain, observed)
	}
}

// TestFleetTelemetryScrape: the endpoint serves a valid exposition of
// the latest epoch while (and after) the fleet runs.
func TestFleetTelemetryScrape(t *testing.T) {
	sink, err := telemetry.NewSink("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	col := telemetry.NewCollector(sink, false, "policy", "static")
	cfg := FleetConfig{
		Hosts:        1,
		PCPUsPerHost: 4,
		Policy:       "static",
		Seed:         3,
		Horizon:      2 * sim.Second,
		SLO:          30 * sim.Millisecond,
		Telemetry:    col,
	}
	events := GenTrace(DefaultTraceConfig(cfg.Horizon), 3)
	if _, err := RunFleet(cfg, events); err != nil {
		t.Fatal(err)
	}
	_, body := httpGet(t, sink.Server().Addr(), "/metrics")
	for _, want := range []string{
		"# TYPE vscale_host_util_ratio gauge",
		"# TYPE vscale_vm_cpu_seconds_total counter",
		"# TYPE vscale_vm_reply_latency_ms summary",
		`policy="static"`, `host="0"`, `quantile="0.99"`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("scrape missing %q:\n%s", want, body)
		}
	}
}

// httpGet fetches one path from the scrape server.
func httpGet(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}
