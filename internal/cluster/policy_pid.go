package cluster

import (
	"encoding/json"
	"fmt"
	"math"
)

// PIDConfig parameterises the pid policy.
type PIDConfig struct {
	// TargetRatio places the p95-latency setpoint as a fraction of the
	// SLO: the controller sizes each VM so its epoch p95 settles at
	// TargetRatio*SLO, leaving headroom before requests start missing.
	TargetRatio float64
	// Kp, Ki, Kd are the gains on the normalized latency error
	// e = (p95 - setpoint)/setpoint. The controller is velocity-form:
	// the correction is applied relative to the current active count.
	Kp, Ki, Kd float64
	// AddStep caps the additive increase per epoch (AIMD's AI term): a
	// latency spike grows the VM by at most AddStep vCPUs per epoch.
	AddStep int
	// DecreaseFactor bounds the multiplicative decrease per epoch
	// (AIMD's MD term): a shrink keeps at least DecreaseFactor of the
	// current active count, so one quiet epoch cannot collapse the VM.
	DecreaseFactor float64
	// IntegralClamp bounds |integral| as a backstop against windup
	// beyond what conditional integration already prevents.
	IntegralClamp float64
}

// DefaultPIDConfig returns the gains used by the registered "pid"
// policy: a proportional-dominant controller with a conservative
// integral, tuned so a demand step settles within two or three epochs
// with at most one epoch of overshoot.
func DefaultPIDConfig() PIDConfig {
	return PIDConfig{
		TargetRatio:    0.8,
		Kp:             2.0,
		Ki:             0.4,
		Kd:             0.3,
		AddStep:        2,
		DecreaseFactor: 0.5,
		IntegralClamp:  3,
	}
}

// pidState is one VM's controller memory.
type pidState struct {
	integral float64
	prevErr  float64
	hasPrev  bool
}

// pidPolicy is a per-VM PID/AIMD feedback controller closing the loop
// on application latency rather than CPU demand: it targets an epoch
// p95 of TargetRatio*SLO using the load generator's windowed
// histogram, grows additively under latency pressure and shrinks
// multiplicatively when the VM runs cold, with conditional-integration
// anti-windup for targets unreachable at the VM's vCPU ceiling.
type pidPolicy struct {
	policyName
	cfg PIDConfig
	vms map[string]*pidState
}

// NewPIDPolicy builds a pid controller with the given gains (zero
// fields fall back to DefaultPIDConfig values).
func NewPIDPolicy(cfg PIDConfig) ScalingPolicy {
	def := DefaultPIDConfig()
	if cfg.TargetRatio <= 0 {
		cfg.TargetRatio = def.TargetRatio
	}
	if cfg.Kp == 0 {
		cfg.Kp = def.Kp
	}
	if cfg.AddStep <= 0 {
		cfg.AddStep = def.AddStep
	}
	if cfg.DecreaseFactor <= 0 || cfg.DecreaseFactor >= 1 {
		cfg.DecreaseFactor = def.DecreaseFactor
	}
	if cfg.IntegralClamp <= 0 {
		cfg.IntegralClamp = def.IntegralClamp
	}
	return &pidPolicy{policyName: "pid", cfg: cfg, vms: map[string]*pidState{}}
}

func (p *pidPolicy) Mechanism() Mechanism { return Mechanism{} }

// state returns (creating if needed) the VM's controller memory. The
// map is only ever indexed by the VM name Decide was handed — never
// iterated — so it cannot leak map-order nondeterminism.
func (p *pidPolicy) state(vm string) *pidState {
	st, ok := p.vms[vm]
	if !ok {
		st = &pidState{}
		p.vms[vm] = st
	}
	return st
}

// demandFloor is the vCPU count the VM's consumption this epoch
// already occupies — shrinking below it would throttle work that is
// demonstrably running.
func demandFloor(o VMObservation) int {
	if o.Epoch <= 0 {
		return 1
	}
	d := int(math.Ceil(float64(o.ConsumedCPU)/float64(o.Epoch) - 1e-9))
	if d < 1 {
		d = 1
	}
	return d
}

func (p *pidPolicy) Decide(o VMObservation) int {
	st := p.state(o.VM)
	setpoint := p.cfg.TargetRatio * o.SLO.Milliseconds()
	if setpoint <= 0 {
		return 0 // no objective to control against
	}

	var e float64
	switch {
	case o.Offered == 0 && o.InFlight == 0:
		// Idle epoch: nothing to control. Decay to the demand floor and
		// forget the controller state so a later burst starts clean.
		st.integral, st.prevErr, st.hasPrev = 0, 0, false
		floor := demandFloor(o)
		if floor >= o.ActiveVCPUs {
			return 0
		}
		return clampVCPUs(floor, o.MaxVCPUs)
	case o.Replies == 0:
		// Requests were offered (or are backlogged) but none came back:
		// the VM is wedged. No latency sample exists, so treat it as a
		// full-scale positive error.
		e = 1
	default:
		e = (o.P95 - setpoint) / setpoint
	}

	deriv := 0.0
	if st.hasPrev {
		deriv = e - st.prevErr
		// The plant is itself an integrator (the target is an absolute
		// vCPU count, not a rate), so integral turns accumulated during a
		// transient are pure windup once the error reaches or crosses
		// zero: without this reset a completed up-step keeps pushing the
		// VM one vCPU past its converged size for epochs afterwards.
		if e == 0 || e*st.prevErr < 0 {
			st.integral = 0
		}
	}
	st.prevErr, st.hasPrev = e, true

	raw := float64(o.ActiveVCPUs) + p.cfg.Kp*e + p.cfg.Ki*st.integral + p.cfg.Kd*deriv
	target := int(math.Round(raw))

	// AIMD asymmetry: bound growth additively and shrink
	// multiplicatively, and never shrink below what the VM consumed.
	if target > o.ActiveVCPUs {
		if max := o.ActiveVCPUs + p.cfg.AddStep; target > max {
			target = max
		}
	} else if target < o.ActiveVCPUs {
		if floor := int(math.Ceil(float64(o.ActiveVCPUs) * p.cfg.DecreaseFactor)); target < floor {
			target = floor
		}
		if floor := demandFloor(o); target < floor {
			target = floor
		}
	}
	clamped := clampVCPUs(target, o.MaxVCPUs)

	// Anti-windup by conditional integration: freeze the integral when
	// the actuator is saturated and the error would push it further
	// outward (an unreachable target at the vCPU ceiling must not
	// accumulate turns the controller then has to unwind).
	saturatedHigh := clamped == o.MaxVCPUs && e > 0
	saturatedLow := clamped == 1 && e < 0
	if !saturatedHigh && !saturatedLow {
		st.integral += e
		if st.integral > p.cfg.IntegralClamp {
			st.integral = p.cfg.IntegralClamp
		}
		if st.integral < -p.cfg.IntegralClamp {
			st.integral = -p.cfg.IntegralClamp
		}
	}
	return clamped
}

// pidStateCheckpoint mirrors pidState for the checkpoint encoding.
type pidStateCheckpoint struct {
	Integral float64 `json:"integral"`
	PrevErr  float64 `json:"prev_err"`
	HasPrev  bool    `json:"has_prev"`
}

// CheckpointPolicy exports the per-VM controller memory (Checkpointable).
// The encoding is a JSON map keyed by VM name; encoding/json sorts map
// keys, so equal states encode identically.
func (p *pidPolicy) CheckpointPolicy() ([]byte, error) {
	out := make(map[string]pidStateCheckpoint, len(p.vms))
	for vm, st := range p.vms {
		out[vm] = pidStateCheckpoint{Integral: st.integral, PrevErr: st.prevErr, HasPrev: st.hasPrev}
	}
	data, err := json.Marshal(out)
	if err != nil {
		return nil, fmt.Errorf("cluster: pid state: %w", err)
	}
	return data, nil
}

// RestorePolicy overwrites the controller memory from a capture.
func (p *pidPolicy) RestorePolicy(data []byte) error {
	in := map[string]pidStateCheckpoint{}
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("cluster: pid state: %w", err)
	}
	p.vms = make(map[string]*pidState, len(in))
	for vm, st := range in {
		p.vms[vm] = &pidState{integral: st.Integral, prevErr: st.PrevErr, hasPrev: st.HasPrev}
	}
	return nil
}

// clampVCPUs bounds a target to [1, max].
func clampVCPUs(target, max int) int {
	if target < 1 {
		return 1
	}
	if target > max {
		return max
	}
	return target
}
