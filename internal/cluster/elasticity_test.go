package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"vscale/internal/sim"
)

// elasticTraceConfig is the service-annotated churn mix the elasticity
// tests share: every VM belongs to one of two services and carries a
// dirty-page hint, and the high request rates overload the small hosts
// enough that the replica-set controller has something to fix.
func elasticTraceConfig(horizon sim.Time) TraceConfig {
	tc := DefaultTraceConfig(horizon)
	tc.Services = []string{"web", "api"}
	tc.DirtyBpsChoices = []float64{50e6, 200e6, 800e6}
	tc.RateChoices = []float64{2000, 6000, 10000}
	return tc
}

// elasticFleet is smallFleet plus an elasticity mode.
func elasticFleet(t *testing.T, mode string, workers int) FleetConfig {
	t.Helper()
	cfg := smallFleet("vscale", workers)
	cfg.Horizon = 4 * sim.Second
	mig, rs, err := ElasticityFor(mode)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Migration = mig
	cfg.ReplicaSet = rs
	return cfg
}

// TestElasticitySmoke runs the hybrid mode end to end and checks both
// mechanisms actually fired on the reference trace.
func TestElasticitySmoke(t *testing.T) {
	cfg := elasticFleet(t, "hybrid", 0)
	events := GenTrace(elasticTraceConfig(cfg.Horizon), cfg.Seed)
	res, err := RunFleet(cfg, events)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("migrations=%d aborted=%d downtime=%v bytes=%d created=%d retired=%d failures=%d",
		res.Migrations, res.MigrationsAborted, res.MigrationDowntime, res.MigrationBytes,
		res.ReplicasCreated, res.ReplicasRetired, res.ReplicaFailures)
	if res.Migrations == 0 {
		t.Error("hybrid run committed no migrations on the reference trace")
	}
	if res.ReplicasCreated == 0 {
		t.Error("hybrid run created no replicas on the reference trace")
	}
	if res.Migrations > 0 && res.MigrationDowntime <= 0 {
		t.Error("committed migrations but zero modeled downtime")
	}
}

// TestElasticityLockstepBoundedLagIdentical extends the executor
// differential to the elasticity layer: with migrations and replica
// scaling on, the bounded-lag executor must still reproduce lockstep
// byte for byte at every worker count.
func TestElasticityLockstepBoundedLagIdentical(t *testing.T) {
	for _, mode := range []string{"migrate", "replicas", "hybrid"} {
		cfg := elasticFleet(t, mode, 1)
		events := GenTrace(elasticTraceConfig(cfg.Horizon), cfg.Seed)

		lcfg := cfg
		lcfg.Sync = SyncLockstep
		want, err := RunFleet(lcfg, events)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			bcfg := cfg
			bcfg.Sync = SyncBoundedLag
			bcfg.Workers = workers
			got, err := RunFleet(bcfg, events)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, fmt.Sprintf("%s workers=%d", mode, workers), want, got)
		}
	}
}

// TestElasticityWarmForkIdentical checks the fork half of warm-fork
// with the elasticity layer on: a fleet forked from the shared warm
// checkpoint must match the straight-through run exactly, in both sync
// modes.
func TestElasticityWarmForkIdentical(t *testing.T) {
	cfg := elasticFleet(t, "hybrid", 1)
	cfg.WarmEpochs = 2
	events := GenTrace(elasticTraceConfig(cfg.Horizon), cfg.Seed)

	straight, err := RunFleet(cfg, events)
	if err != nil {
		t.Fatal(err)
	}
	if straight.Migrations == 0 {
		t.Fatal("warm run committed no migrations; the fork check would be vacuous")
	}

	cp, err := CaptureWarmPrefix(cfg, events)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Elasticity == nil {
		t.Fatal("warm capture of an elasticity-enabled run carries no elasticity state")
	}
	for _, sync := range []SyncMode{SyncLockstep, SyncBoundedLag} {
		fcfg := cfg
		fcfg.Sync = sync
		got, err := RunFleetFork(fcfg, events, cp)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, fmt.Sprintf("warm fork %s", sync), straight, got)
	}
}

// TestElasticityCheckpointRestoreIdentical captures an armed mid-run
// snapshot of a hybrid fleet — including any in-flight migration and
// the replica-set controller state — and checks the restored run
// matches the straight-through one exactly.
func TestElasticityCheckpointRestoreIdentical(t *testing.T) {
	cfg := elasticFleet(t, "hybrid", 1)
	events := GenTrace(elasticTraceConfig(cfg.Horizon), cfg.Seed)

	path := filepath.Join(t.TempDir(), "fleet.ckpt")
	ccfg := cfg
	// Boundary 5 straddles a pre-copy on the reference trace, so the
	// snapshot exercises the in-flight-op round trip.
	ccfg.CheckpointEpoch = 5
	ccfg.CheckpointPath = path
	want, err := RunFleet(ccfg, events)
	if err != nil {
		t.Fatal(err)
	}
	if want.Migrations == 0 || want.ReplicasCreated == 0 {
		t.Fatalf("capture run fired migrations=%d replicas=%d; the restore check would be vacuous",
			want.Migrations, want.ReplicasCreated)
	}
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Elasticity == nil {
		t.Fatal("armed capture of a hybrid run carries no elasticity state")
	}
	if cp.Config.Elastic != "hybrid" {
		t.Fatalf("armed capture records elasticity mode %q, want hybrid", cp.Config.Elastic)
	}
	var ecp ElasticityCheckpoint
	if err := json.Unmarshal(cp.Elasticity, &ecp); err != nil {
		t.Fatal(err)
	}
	t.Logf("captured elasticity state: %d in-flight ops, %d tracked rates, replica_seq=%d",
		len(ecp.Inflight), len(ecp.Rate), ecp.ReplicaSeq)
	if len(ecp.Inflight) == 0 {
		t.Error("no migration in flight at the capture boundary; pick a boundary that straddles one")
	}
	for _, sync := range []SyncMode{SyncLockstep, SyncBoundedLag} {
		fcfg := cfg
		fcfg.Sync = sync
		got, err := RunFleetFork(fcfg, events, cp)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, fmt.Sprintf("mid-run fork %s", sync), want, got)
	}
}

// TestElasticityForkValidation pins the restore-time identity checks:
// an elasticity-enabled fork needs elasticity state in the snapshot,
// and an armed capture's mode must match the restoring config.
func TestElasticityForkValidation(t *testing.T) {
	base := smallFleet("vscale", 1)
	base.Horizon = 4 * sim.Second
	events := GenTrace(elasticTraceConfig(base.Horizon), base.Seed)

	// A plain (elasticity-free) armed capture…
	ccfg := base
	ccfg.CheckpointEpoch = 4
	ccfg.CheckpointPath = filepath.Join(t.TempDir(), "plain.ckpt")
	if _, err := RunFleet(ccfg, events); err != nil {
		t.Fatal(err)
	}
	plain, err := LoadCheckpoint(ccfg.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Elasticity != nil {
		t.Fatal("elasticity-free capture unexpectedly carries elasticity state")
	}
	// …cannot restore with the layer on: the armed mode signature
	// mismatches before the missing state is even consulted.
	fcfg := elasticFleet(t, "hybrid", 1)
	if _, err := RunFleetFork(fcfg, events, plain); err == nil {
		t.Fatal("fork with elasticity on from an elasticity-free armed capture: want error")
	}

	// A hybrid capture cannot restore as migrate-only (armed mode check).
	hcfg := elasticFleet(t, "hybrid", 1)
	hcfg.CheckpointEpoch = 4
	hcfg.CheckpointPath = filepath.Join(t.TempDir(), "hybrid.ckpt")
	if _, err := RunFleet(hcfg, events); err != nil {
		t.Fatal(err)
	}
	hybrid, err := LoadCheckpoint(hcfg.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := elasticFleet(t, "migrate", 1)
	if _, err := RunFleetFork(mcfg, events, hybrid); err == nil {
		t.Fatal("hybrid armed capture restored as migrate: want error")
	}

	// A warm (disarmed) elasticity capture serves any mode, including
	// elasticity-off (the state is simply unused).
	wcfg := elasticFleet(t, "hybrid", 1)
	wcfg.WarmEpochs = 2
	cp, err := CaptureWarmPrefix(wcfg, events)
	if err != nil {
		t.Fatal(err)
	}
	vcfg := base
	vcfg.WarmEpochs = 2
	if _, err := RunFleetFork(vcfg, events, cp); err != nil {
		t.Fatalf("warm elasticity capture restored with the layer off: %v", err)
	}
}

// TestElasticityFor pins the CLI mode surface.
func TestElasticityFor(t *testing.T) {
	for _, mode := range []string{"", "none", "vertical"} {
		mig, rs, err := ElasticityFor(mode)
		if err != nil || mig != nil || rs != nil {
			t.Fatalf("ElasticityFor(%q) = %v, %v, %v; want nil, nil, nil", mode, mig, rs, err)
		}
	}
	if mig, rs, err := ElasticityFor("migrate"); err != nil || mig == nil || rs != nil {
		t.Fatalf("ElasticityFor(migrate) = %v, %v, %v", mig, rs, err)
	}
	if mig, rs, err := ElasticityFor("replicas"); err != nil || mig != nil || rs == nil {
		t.Fatalf("ElasticityFor(replicas) = %v, %v, %v", mig, rs, err)
	}
	if mig, rs, err := ElasticityFor("hybrid"); err != nil || mig == nil || rs == nil {
		t.Fatalf("ElasticityFor(hybrid) = %v, %v, %v", mig, rs, err)
	}
	if _, _, err := ElasticityFor("sideways"); err == nil {
		t.Fatal("ElasticityFor(sideways): want error")
	}
}

// TestTraceElasticityHints is the table for the vscale-churn/v1
// service=/dirty= arrive fields: accepted in either order, rejected on
// duplication, emptiness, non-positive rates or unknown keys.
func TestTraceElasticityHints(t *testing.T) {
	const hdr = "# vscale-churn/v1\n"
	valid := []struct {
		name    string
		in      string
		service string
		dirty   float64
	}{
		{"neither", hdr + "100 arrive vm0 vcpus=2 rate=100\n", "", 0},
		{"service only", hdr + "100 arrive vm0 vcpus=2 rate=100 service=web\n", "web", 0},
		{"dirty only", hdr + "100 arrive vm0 vcpus=2 rate=100 dirty=2e8\n", "", 2e8},
		{"service then dirty", hdr + "100 arrive vm0 vcpus=2 rate=100 service=web dirty=5e7\n", "web", 5e7},
		{"dirty then service", hdr + "100 arrive vm0 vcpus=2 rate=100 dirty=5e7 service=api\n", "api", 5e7},
	}
	for _, tc := range valid {
		t.Run(tc.name, func(t *testing.T) {
			events, err := ParseTrace(strings.NewReader(tc.in))
			if err != nil {
				t.Fatal(err)
			}
			if len(events) != 1 || events[0].Service != tc.service || events[0].DirtyBps != tc.dirty {
				t.Fatalf("parsed %+v, want service=%q dirty=%g", events, tc.service, tc.dirty)
			}
		})
	}
	invalid := []struct {
		name    string
		in      string
		wantErr string
	}{
		{"duplicate service", hdr + "100 arrive vm0 vcpus=2 rate=100 service=a service=b\n", "duplicate service"},
		{"duplicate dirty", hdr + "100 arrive vm0 vcpus=2 rate=100 dirty=1e8 dirty=2e8\n", "duplicate dirty"},
		{"empty service", hdr + "100 arrive vm0 vcpus=2 rate=100 service=\n", "empty service"},
		{"zero dirty", hdr + "100 arrive vm0 vcpus=2 rate=100 dirty=0\n", "must be positive"},
		{"negative dirty", hdr + "100 arrive vm0 vcpus=2 rate=100 dirty=-5\n", "must be positive"},
		{"malformed dirty", hdr + "100 arrive vm0 vcpus=2 rate=100 dirty=fast\n", "bad dirty rate"},
		{"unknown field", hdr + "100 arrive vm0 vcpus=2 rate=100 color=red\n", "unknown arrive field"},
		{"hint on phase", hdr + "100 arrive vm0 vcpus=2 rate=100\n200 phase vm0 rate=50 service=web\n", "phase needs"},
	}
	for _, tc := range invalid {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTrace(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ParseTrace(%q) = %v, want error containing %q", tc.in, err, tc.wantErr)
			}
		})
	}
}

// TestTraceElasticityRoundTrip: a generated trace with services and
// dirty hints survives format/parse unchanged, and one without them
// renders byte-identically to the historical format (no stray fields).
func TestTraceElasticityRoundTrip(t *testing.T) {
	tc := elasticTraceConfig(6 * sim.Second)
	events := GenTrace(tc, 7)
	withHints := 0
	for _, ev := range events {
		if ev.Kind == EventArrive && ev.Service != "" && ev.DirtyBps > 0 {
			withHints++
		}
	}
	if withHints == 0 {
		t.Fatal("generated trace carries no elasticity hints")
	}
	var buf bytes.Buffer
	if err := FormatTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, back) {
		t.Fatal("format/parse round trip changed the hinted trace")
	}

	plain := GenTrace(DefaultTraceConfig(6*sim.Second), 7)
	var pbuf bytes.Buffer
	if err := FormatTrace(&pbuf, plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(pbuf.String(), "service=") || strings.Contains(pbuf.String(), "dirty=") {
		t.Fatal("hint-free trace rendered elasticity fields")
	}
}
