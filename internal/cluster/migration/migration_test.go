package migration

import (
	"testing"

	"vscale/internal/sim"
)

func TestPreCopyIdleVMConvergesInOneRound(t *testing.T) {
	cfg := DefaultConfig()
	p := PreCopy(cfg, 128<<20, 0)
	if p.Rounds != 1 {
		t.Fatalf("idle VM: want 1 round, got %d", p.Rounds)
	}
	if !p.Converged {
		t.Fatalf("idle VM: want convergence")
	}
	if p.Downtime != cfg.DowntimeFloor {
		t.Fatalf("idle VM: downtime %v, want the floor %v", p.Downtime, cfg.DowntimeFloor)
	}
	if p.Bytes != 128<<20 {
		t.Fatalf("idle VM: want one full image copy, got %d bytes", p.Bytes)
	}
}

func TestPreCopyHotVMHitsRoundCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DowntimeCap = 0 // observe the raw residual transfer
	// Dirtying exactly as fast as the link drains: every round copies
	// the same amount and the dirty set never shrinks.
	p := PreCopy(cfg, 256<<20, cfg.LinkBps/8)
	if p.Rounds != cfg.MaxRounds {
		t.Fatalf("hot VM: want the %d-round cap, got %d", cfg.MaxRounds, p.Rounds)
	}
	if p.Converged {
		t.Fatalf("hot VM: must not report convergence at the round cap")
	}
	if p.Downtime <= cfg.DowntimeFloor {
		t.Fatalf("hot VM: downtime %v should exceed the floor %v", p.Downtime, cfg.DowntimeFloor)
	}
}

func TestPreCopyDowntimeCap(t *testing.T) {
	cfg := DefaultConfig()
	// Dirtying much faster than the link: a huge residue stop-and-copies.
	p := PreCopy(cfg, 512<<20, 4*cfg.LinkBps/8)
	if p.Downtime != cfg.DowntimeCap {
		t.Fatalf("runaway VM: downtime %v, want the cap %v", p.Downtime, cfg.DowntimeCap)
	}
}

func TestPreCopyMonotoneInDirtyRate(t *testing.T) {
	cfg := DefaultConfig()
	prevDur := sim.Time(-1)
	prevBytes := int64(-1)
	for _, dirty := range []float64{0, 50e6, 200e6, 800e6} {
		p := PreCopy(cfg, 128<<20, dirty)
		if p.Duration < prevDur {
			t.Fatalf("duration not monotone in dirty rate at %g", dirty)
		}
		if p.Bytes < prevBytes {
			t.Fatalf("bytes not monotone in dirty rate at %g", dirty)
		}
		prevDur, prevBytes = p.Duration, p.Bytes
	}
}

func TestPreCopyZeroMemory(t *testing.T) {
	cfg := DefaultConfig()
	p := PreCopy(cfg, 0, 1e9)
	if p.Rounds != 0 || p.Bytes != 0 || p.Duration != 0 {
		t.Fatalf("zero-memory VM: want an empty plan, got %+v", p)
	}
	if p.Downtime != cfg.DowntimeFloor {
		t.Fatalf("zero-memory VM: downtime %v, want the floor", p.Downtime)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config must validate: %v", err)
	}
	bad := DefaultConfig()
	bad.LinkBps = 0
	if err := bad.Validate(); err == nil {
		t.Fatalf("zero link budget must be rejected")
	}
	bad = DefaultConfig()
	bad.MaxRounds = 0
	if err := bad.Validate(); err == nil {
		t.Fatalf("zero round cap must be rejected")
	}
}
