// Package migration models pre-copy live migration of a VM between
// hosts: iterative memory-copy rounds over a dedicated migration link,
// a dirty-page rate that re-dirties pages while each round is in
// flight, and a final stop-and-copy cutover whose duration is the
// migration's downtime. The model is pure arithmetic — no simulation
// state — so the cluster control plane can plan a migration at an
// epoch boundary and know its total duration, transferred bytes and
// downtime up front.
package migration

import (
	"fmt"

	"vscale/internal/sim"
)

// Config parameterises the pre-copy model.
type Config struct {
	// LinkBps is the migration link budget in bits per second. The
	// cluster throttles guest I/O while a migration holds the link (see
	// cluster.MigrationConfig.GuestLinkShare).
	LinkBps float64
	// MemBytesPerVCPU sizes a VM's memory image proportionally to its
	// vCPU count.
	MemBytesPerVCPU int64
	// MaxRounds caps the iterative copy phase: a VM that dirties memory
	// faster than the link drains it would otherwise never converge.
	MaxRounds int
	// StopCopyBytes is the convergence threshold: once a round leaves
	// at most this many dirty bytes the next copy happens with the VM
	// stopped.
	StopCopyBytes int64
	// DowntimeFloor is the fixed cutover cost (pause, device state,
	// resume handshake) added to the stop-and-copy transfer time.
	DowntimeFloor sim.Time
	// DowntimeCap bounds the modeled downtime; non-convergent
	// migrations stop-and-copy whatever is left, and the cap keeps the
	// blackout within one scheduling epoch. Zero means uncapped.
	DowntimeCap sim.Time
}

// DefaultConfig returns a 10 Gbps migration link, 64 MiB of memory per
// vCPU, and an 8 MiB stop-and-copy threshold — small enough that a
// mostly idle VM converges in one round, large enough that a hot VM
// takes several.
func DefaultConfig() Config {
	return Config{
		LinkBps:         10e9,
		MemBytesPerVCPU: 64 << 20,
		MaxRounds:       8,
		StopCopyBytes:   8 << 20,
		DowntimeFloor:   3 * sim.Millisecond,
		DowntimeCap:     100 * sim.Millisecond,
	}
}

// Validate rejects configurations the model cannot plan with.
func (c Config) Validate() error {
	if c.LinkBps <= 0 {
		return fmt.Errorf("migration: LinkBps must be positive, got %g", c.LinkBps)
	}
	if c.MemBytesPerVCPU <= 0 {
		return fmt.Errorf("migration: MemBytesPerVCPU must be positive, got %d", c.MemBytesPerVCPU)
	}
	if c.MaxRounds < 1 {
		return fmt.Errorf("migration: MaxRounds must be >= 1, got %d", c.MaxRounds)
	}
	if c.StopCopyBytes < 0 {
		return fmt.Errorf("migration: StopCopyBytes must be >= 0, got %d", c.StopCopyBytes)
	}
	if c.DowntimeFloor < 0 || c.DowntimeCap < 0 {
		return fmt.Errorf("migration: downtime floor/cap must be >= 0")
	}
	return nil
}

// Plan is the outcome of planning one pre-copy migration.
type Plan struct {
	// Rounds is the number of iterative copy rounds before cutover.
	Rounds int
	// Bytes is the total payload over the link, including the final
	// stop-and-copy transfer.
	Bytes int64
	// Duration is the live pre-copy phase: the VM keeps running on the
	// source for this long before cutover.
	Duration sim.Time
	// Downtime is the stop-and-copy blackout: DowntimeFloor plus the
	// residual dirty transfer, bounded by DowntimeCap.
	Downtime sim.Time
	// Converged reports whether the dirty set shrank below
	// StopCopyBytes (false means the round cap forced the cutover).
	Converged bool
}

// PreCopy plans the migration of a VM with memBytes of memory dirtying
// at dirtyBps bytes per second. Round i copies the bytes left dirty by
// round i-1 (round 1 copies everything); the copy takes bytes/byteRate
// seconds, during which the guest dirties dirtyBps * t fresh bytes.
// The iteration stops when the residue fits StopCopyBytes or MaxRounds
// is hit, and the residue moves during the stop-and-copy blackout.
func PreCopy(cfg Config, memBytes int64, dirtyBps float64) Plan {
	byteRate := cfg.LinkBps / 8
	p := Plan{Converged: true}
	if memBytes <= 0 {
		p.Downtime = cfg.DowntimeFloor
		return p
	}
	toCopy := float64(memBytes)
	residue := 0.0
	for r := 1; ; r++ {
		p.Rounds = r
		t := toCopy / byteRate
		p.Bytes += int64(toCopy)
		p.Duration += sim.Time(t * float64(sim.Second))
		dirtied := dirtyBps * t
		if dirtied <= float64(cfg.StopCopyBytes) || r == cfg.MaxRounds {
			residue = dirtied
			p.Converged = dirtied <= float64(cfg.StopCopyBytes)
			break
		}
		toCopy = dirtied
	}
	p.Bytes += int64(residue)
	dt := cfg.DowntimeFloor + sim.Time(residue/byteRate*float64(sim.Second))
	if cfg.DowntimeCap > 0 && dt > cfg.DowntimeCap {
		dt = cfg.DowntimeCap
	}
	p.Downtime = dt
	return p
}
