package cluster

import (
	"fmt"
	"strings"
	"testing"

	"vscale/internal/sim"
)

func TestPolicyRegistryBuiltins(t *testing.T) {
	names := PolicyNames()
	want := []string{"static", "hotplug", "vscale", "pid", "predictive"}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("built-in %q not registered (have %v)", w, names)
		}
	}
	// Registration order is the report order: built-ins come first.
	for i, w := range want {
		if names[i] != w {
			t.Fatalf("PolicyNames()[%d] = %q, want %q", i, names[i], w)
		}
	}
}

// TestPolicyNamesRoundTrip: every registered name round-trips through
// the instance's Name()/String() and back through ParsePolicies.
func TestPolicyNamesRoundTrip(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := NewPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Fatalf("NewPolicy(%q).Name() = %q", name, p.Name())
		}
		if got := fmt.Sprintf("%v", p); got != name {
			t.Fatalf("policy %q prints as %q", name, got)
		}
		sel, err := ParsePolicies(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(sel) != 1 || sel[0] != name {
			t.Fatalf("ParsePolicies(%q) = %v", name, sel)
		}
	}
}

func TestNewPolicyUnknownListsNames(t *testing.T) {
	_, err := NewPolicy("bogus")
	if err == nil {
		t.Fatal("unknown policy: want error")
	}
	for _, name := range PolicyNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list known policy %q", err, name)
		}
	}
}

func TestRegisterPolicyRejectsBadAndDuplicate(t *testing.T) {
	if err := RegisterPolicy("", func() ScalingPolicy { return staticPolicy{} }); err == nil {
		t.Fatal("empty name: want error")
	}
	if err := RegisterPolicy("has space", func() ScalingPolicy { return staticPolicy{} }); err == nil {
		t.Fatal("name with space: want error")
	}
	if err := RegisterPolicy("has,comma", func() ScalingPolicy { return staticPolicy{} }); err == nil {
		t.Fatal("name with comma: want error")
	}
	if err := RegisterPolicy("nil-factory", nil); err == nil {
		t.Fatal("nil factory: want error")
	}
	if err := RegisterPolicy("static", func() ScalingPolicy { return staticPolicy{} }); err == nil {
		t.Fatal("duplicate registration: want error")
	}
	// A fresh name registers fine and is then itself a duplicate.
	name := "test-only-policy"
	if err := RegisterPolicy(name, func() ScalingPolicy { return staticPolicy{} }); err != nil {
		t.Fatal(err)
	}
	if err := RegisterPolicy(name, func() ScalingPolicy { return staticPolicy{} }); err == nil {
		t.Fatal("re-registration: want error")
	}
}

func TestParsePolicies(t *testing.T) {
	all := PolicyNames()
	for _, s := range []string{"", "all"} {
		sel, err := ParsePolicies(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(sel) != len(all) {
			t.Fatalf("ParsePolicies(%q) = %v, want all %v", s, sel, all)
		}
	}
	sel, err := ParsePolicies(" vscale , pid ")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0] != "vscale" || sel[1] != "pid" {
		t.Fatalf("ParsePolicies with spaces = %v", sel)
	}
	if _, err := ParsePolicies("vscale,vscale"); err == nil {
		t.Fatal("duplicate selection: want error")
	}
	if _, err := ParsePolicies("vscale,bogus"); err == nil {
		t.Fatal("unknown selection: want error")
	}
	if _, err := ParsePolicies(",,"); err == nil {
		t.Fatal("empty selection: want error")
	}
}

// pidPlant is a synthetic first-order service model for closed-loop
// controller tests: with `need` vCPUs of true demand and `active`
// provisioned, the epoch p95 scales as need/active around the
// controller's setpoint, and consumption saturates at the provisioned
// count.
type pidPlant struct {
	slo    sim.Time
	epoch  sim.Time
	max    int
	active int
	need   int
}

func (p *pidPlant) observe() VMObservation {
	setpoint := 0.8 * p.slo.Milliseconds()
	consumed := p.need
	if consumed > p.active {
		consumed = p.active
	}
	return VMObservation{
		VM:          "vm0",
		Epoch:       p.epoch,
		MaxVCPUs:    p.max,
		ActiveVCPUs: p.active,
		HostPCPUs:   p.max,
		ConsumedCPU: sim.Time(consumed) * p.epoch,
		Offered:     1000,
		Replies:     1000,
		P95:         setpoint * float64(p.need) / float64(p.active),
		Attainment:  1,
		SLO:         p.slo,
	}
}

// step drives the loop one epoch and applies the decision.
func (p *pidPlant) step(pol ScalingPolicy) int {
	if target := pol.Decide(p.observe()); target > 0 {
		p.active = clampVCPUs(target, p.max)
	}
	return p.active
}

func TestPIDStepResponseUp(t *testing.T) {
	pol := NewPIDPolicy(DefaultPIDConfig())
	plant := &pidPlant{slo: 50 * sim.Millisecond, epoch: 500 * sim.Millisecond, max: 8, active: 2, need: 2}
	for i := 0; i < 3; i++ {
		if got := plant.step(pol); got != 2 {
			t.Fatalf("converged plant resized to %d", got)
		}
	}
	plant.need = 6
	var traj []int
	overshoot := 0
	converged := -1
	for i := 0; i < 12; i++ {
		got := plant.step(pol)
		traj = append(traj, got)
		if got > 6 {
			overshoot++
		}
		if got == 6 && converged < 0 {
			converged = i
		}
	}
	if converged < 0 || converged > 4 {
		t.Fatalf("demand step 2->6 did not converge promptly: %v", traj)
	}
	if overshoot > 1 {
		t.Fatalf("demand step 2->6 overshot for %d epochs: %v", overshoot, traj)
	}
	for _, got := range traj[converged+2:] {
		if got != 6 {
			t.Fatalf("controller left the converged point: %v", traj)
		}
	}
}

func TestPIDStepResponseDown(t *testing.T) {
	pol := NewPIDPolicy(DefaultPIDConfig())
	plant := &pidPlant{slo: 50 * sim.Millisecond, epoch: 500 * sim.Millisecond, max: 8, active: 6, need: 6}
	for i := 0; i < 3; i++ {
		plant.step(pol)
	}
	plant.need = 2
	var traj []int
	undershoot := 0
	converged := -1
	prev := plant.active
	for i := 0; i < 12; i++ {
		got := plant.step(pol)
		traj = append(traj, got)
		if got < 2 {
			undershoot++
		}
		// Multiplicative decrease: one epoch never halves-and-more.
		if got < (prev+1)/2 {
			t.Fatalf("shrink %d -> %d exceeds the multiplicative bound: %v", prev, got, traj)
		}
		prev = got
		if got == 2 && converged < 0 {
			converged = i
		}
	}
	if converged < 0 || converged > 5 {
		t.Fatalf("demand step 6->2 did not converge promptly: %v", traj)
	}
	if undershoot > 1 {
		t.Fatalf("demand step 6->2 undershot for %d epochs: %v", undershoot, traj)
	}
	for _, got := range traj[converged+2:] {
		if got != 2 {
			t.Fatalf("controller left the converged point: %v", traj)
		}
	}
}

// TestPIDAntiWindup: a target unreachable at the vCPU ceiling must not
// accumulate integral turns, and once demand returns to normal the
// controller must come back down as fast as the AIMD bound allows.
func TestPIDAntiWindup(t *testing.T) {
	pol := NewPIDPolicy(DefaultPIDConfig())
	pid := pol.(*pidPolicy)
	plant := &pidPlant{slo: 50 * sim.Millisecond, epoch: 500 * sim.Millisecond, max: 4, need: 12, active: 2}
	for i := 0; i < 10; i++ {
		plant.step(pol)
	}
	if plant.active != 4 {
		t.Fatalf("saturated plant at %d vCPUs, want the cap 4", plant.active)
	}
	frozen := pid.vms["vm0"].integral
	for i := 0; i < 10; i++ {
		plant.step(pol)
	}
	if got := pid.vms["vm0"].integral; got != frozen {
		t.Fatalf("integral grew from %g to %g while saturated at the cap", frozen, got)
	}
	if frozen > DefaultPIDConfig().IntegralClamp {
		t.Fatalf("integral %g beyond the clamp", frozen)
	}
	// Demand collapses: with no windup to unwind, the controller tracks
	// the AIMD multiplicative-decrease path down without delay.
	plant.need = 1
	if got := plant.step(pol); got > 2 {
		t.Fatalf("first epoch after saturation still at %d vCPUs (windup)", got)
	}
	if got := plant.step(pol); got != 1 {
		t.Fatalf("second epoch after saturation at %d vCPUs, want 1", got)
	}
}

// TestPIDWedgedVM: offered-but-unanswered traffic reads as a
// full-scale error and grows the VM.
func TestPIDWedgedVM(t *testing.T) {
	pol := NewPIDPolicy(DefaultPIDConfig())
	o := VMObservation{
		VM: "vm0", Epoch: 500 * sim.Millisecond,
		MaxVCPUs: 8, ActiveVCPUs: 2, HostPCPUs: 8,
		Offered: 100, Replies: 0, InFlight: 100,
		SLO: 50 * sim.Millisecond,
	}
	if got := pol.Decide(o); got <= 2 {
		t.Fatalf("wedged VM target %d, want growth", got)
	}
}

// TestPIDIdleDecays: with no offered load the controller releases
// everything above the consumption floor and forgets its state.
func TestPIDIdleDecays(t *testing.T) {
	pol := NewPIDPolicy(DefaultPIDConfig())
	o := VMObservation{
		VM: "vm0", Epoch: 500 * sim.Millisecond,
		MaxVCPUs: 8, ActiveVCPUs: 6, HostPCPUs: 8,
		ConsumedCPU: 400 * sim.Millisecond, // < 1 vCPU of demand
		SLO:         50 * sim.Millisecond,
	}
	if got := pol.Decide(o); got != 1 {
		t.Fatalf("idle VM target %d, want 1", got)
	}
	// Already at the floor: no decision.
	o.ActiveVCPUs = 1
	if got := pol.Decide(o); got != 0 {
		t.Fatalf("idle VM at floor got decision %d, want 0", got)
	}
}

func TestPredictiveTracksRamp(t *testing.T) {
	pol := NewPredictivePolicy(DefaultPredictiveConfig())
	epoch := 500 * sim.Millisecond
	obs := func(consumedVCPUs float64, active int) VMObservation {
		return VMObservation{
			VM: "vm0", Epoch: epoch,
			MaxVCPUs: 8, ActiveVCPUs: active, HostPCPUs: 8,
			ConsumedCPU: sim.Time(consumedVCPUs * float64(epoch)),
			Offered:     1000, Replies: 1000, Attainment: 1,
			SLO: 50 * sim.Millisecond,
		}
	}
	// Steady demand of 2 vCPUs: forecast*headroom lands at ceil(2*1.25)=3.
	var got int
	for i := 0; i < 6; i++ {
		got = pol.Decide(obs(2, 3))
	}
	if got != 3 {
		t.Fatalf("steady 2-vCPU demand -> target %d, want 3", got)
	}
	// A sustained linear ramp: exponential smoothing alone would lag the
	// level well below the newest sample (≈4.98 after this ramp ends at
	// 5.0); the trend term must make up that lag so the provisioned
	// target never falls behind current demand with headroom.
	ramp := NewPredictivePolicy(DefaultPredictiveConfig())
	var rampTarget int
	for d := 0.5; d <= 5.0; d += 0.5 {
		rampTarget = ramp.Decide(VMObservation{
			VM: "ramp", Epoch: epoch,
			MaxVCPUs: 16, ActiveVCPUs: 8, HostPCPUs: 16,
			ConsumedCPU: sim.Time(d * float64(epoch)),
			Offered:     1000, Replies: 1000, Attainment: 1,
			SLO: 50 * sim.Millisecond,
		})
	}
	if rampTarget < 7 { // ceil(5.0 * 1.25)
		t.Fatalf("ramping demand -> target %d, want the trend to cover the lag (>= 7)", rampTarget)
	}
	// Demand collapses: the forecast follows down within a few epochs.
	for i := 0; i < 6; i++ {
		got = pol.Decide(obs(0.3, got))
	}
	if got != 1 {
		t.Fatalf("collapsed demand -> target %d, want 1", got)
	}
}

// TestPredictivePressureBump: throttled consumption under-reports
// demand; slipped attainment forces one step up past the forecast.
func TestPredictivePressureBump(t *testing.T) {
	pol := NewPredictivePolicy(DefaultPredictiveConfig())
	epoch := 500 * sim.Millisecond
	o := VMObservation{
		VM: "vm0", Epoch: epoch,
		MaxVCPUs: 8, ActiveVCPUs: 2, HostPCPUs: 8,
		ConsumedCPU: 2 * epoch, // saturating its 2 active vCPUs
		Offered:     1000, Replies: 600, Attainment: 0.6,
		SLO: 50 * sim.Millisecond,
	}
	if got := pol.Decide(o); got != 3 {
		t.Fatalf("throttled VM target %d, want the +1 pressure bump (3)", got)
	}
}

func TestClampVCPUs(t *testing.T) {
	for _, c := range []struct{ target, max, want int }{
		{0, 8, 1}, {-5, 8, 1}, {3, 8, 3}, {9, 8, 8}, {1, 1, 1}, {5, 4, 4},
	} {
		if got := clampVCPUs(c.target, c.max); got != c.want {
			t.Fatalf("clampVCPUs(%d, %d) = %d, want %d", c.target, c.max, got, c.want)
		}
	}
}

// TestMechanisms: the built-ins describe the guest plumbing the host
// wires up, matching the enum semantics they replaced.
func TestMechanisms(t *testing.T) {
	for _, c := range []struct {
		name string
		want Mechanism
	}{
		{"static", Mechanism{}},
		{"hotplug", Mechanism{Channel: true, Daemon: true, Hotplug: true}},
		{"vscale", Mechanism{Channel: true, Daemon: true}},
		{"pid", Mechanism{}},
		{"predictive", Mechanism{}},
	} {
		p, err := NewPolicy(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Mechanism(); got != c.want {
			t.Fatalf("%s mechanism = %+v, want %+v", c.name, got, c.want)
		}
	}
}
