package cluster

import (
	"fmt"
	"sync"
	"time"

	"vscale/internal/core"
	"vscale/internal/runner"
	"vscale/internal/sim"
)

// The bounded-lag asynchronous executor.
//
// Instead of one fan-out/join barrier per epoch, every host is a queue
// on a persistent runner.Pool whose workers advance it through as many
// epochs as its gates allow; a host that cannot progress parks (returns
// to the pool) and is woken when a shared frontier moves. Virtual time
// is decoupled across hosts up to the lag bound; the only global
// synchronization points are the ones with genuine cross-host meaning:
//
//   - Routing: epoch k's churn batch must be delivered before a host
//     runs it, and an arrival epoch's placement needs the fleet
//     snapshot from boundary base(k) = max(0, k-lag) — so the router
//     waits for the slowest host only up to that stale boundary, and
//     hosts wait for the routing frontier.
//   - The lag bound: no host runs more than lag epochs ahead of the
//     slowest, bounding snapshot memory and placement staleness.
//   - Telemetry: a collection epoch samples every host parked at the
//     same boundary, so an attached collector forces epoch pacing.
//
// Everything a host does between gates — scheduling its batch, running
// its engine, snapshotting, its per-boundary policy pass — is host-
// local and happens on its own timeline, in exactly the order the
// lockstep executor would have produced on that host's engine. That,
// plus the shared router, is why the two executors' FleetResults are
// byte-identical.
type asyncFleet struct {
	cfg   *FleetConfig
	plan  *epochPlan
	hosts []*Host
	pols  []ScalingPolicy
	rt    *fleetRouter
	res   *FleetResult
	lead  int // run-ahead bound (0 while telemetry is attached)
	last  int // plan.epochs(); epoch index `last` is the drain step
	// telFrom is the first boundary with a collection epoch (the warm
	// boundary when a warm prefix is configured); ckpt is the capture
	// boundary (cfg.CheckpointEpoch, 0 for none).
	telFrom int
	ckpt    int

	pool *runner.Pool

	mu   sync.Mutex
	cond *sync.Cond // the router's wait channel; hosts park by returning
	// routed is the routing frontier: epochs [0, routed) have their
	// batches delivered.
	routed int
	// done[i] counts host i's completed epochs (last+1 = drained);
	// minDone/minCount track the minimum incrementally.
	done     []int
	minDone  int
	minCount int
	// pendingPolicy[i] marks host i parked at boundary done[i] with its
	// policy pass still owed (it may be gated on telemetry).
	pendingPolicy []bool
	// telemetryDone is the last boundary whose collection epoch has
	// closed (only consulted when a collector is attached).
	telemetryDone int
	// elDone is the last boundary whose elasticity pass has committed
	// (only consulted when the elasticity layer is on): hosts owing a
	// post-warm policy pass park until the control plane has run the
	// boundary's migration/replica-set pass over the frozen fleet.
	elDone int
	// ckptDone opens the capture gate: hosts parked at the checkpoint
	// boundary resume once the control plane has captured the fleet.
	ckptDone bool
	// batches[i][k] is host i's routed churn for epoch k; written by the
	// router before it publishes routed = k+1.
	batches [][][]routedEvent
	// snaps[i] holds host i's published boundary snapshots, only for
	// boundaries some arrival epoch will place with (rt.needBoundary);
	// the router consumes each exactly once.
	snaps []map[int]hostSnap

	failErr   error
	failEpoch int
	failHost  int

	hostWall []time.Duration
}

// hostSnap is one host's published epoch-boundary state, the
// bounded-staleness input to placement.
type hostSnap struct {
	stats     []core.VMStat
	committed int
}

// testEpochHook, when non-nil, observes (and may slow down) a host
// about to run an epoch — a test seam for skewing host pacing. Set and
// cleared only while no fleet is running.
var testEpochHook func(host, epoch int)

// runBoundedLag executes the fleet asynchronously; see asyncFleet.
// start is the first epoch to run (the capture boundary when resuming
// from a checkpoint); pre preloads the retained placement snapshots a
// restored run still owes the router.
func runBoundedLag(cfg *FleetConfig, plan *epochPlan, hosts []*Host, pols []ScalingPolicy, rt *fleetRouter, res *FleetResult, start int, pre []RingBoundary) error {
	f := &asyncFleet{
		cfg:           cfg,
		plan:          plan,
		hosts:         hosts,
		pols:          pols,
		rt:            rt,
		res:           res,
		lead:          rt.lag,
		last:          plan.epochs(),
		telFrom:       telemetryFrom(cfg),
		ckpt:          cfg.CheckpointEpoch,
		routed:        start,
		done:          make([]int, len(hosts)),
		minDone:       start,
		minCount:      len(hosts),
		pendingPolicy: make([]bool, len(hosts)),
		batches:       make([][][]routedEvent, len(hosts)),
		snaps:         make([]map[int]hostSnap, len(hosts)),
		hostWall:      make([]time.Duration, len(hosts)),
	}
	f.cond = sync.NewCond(&f.mu)
	tel := cfg.Telemetry != nil
	for i := range hosts {
		f.batches[i] = make([][]routedEvent, f.last)
		f.snaps[i] = map[int]hostSnap{}
		f.done[i] = start
		// A restored run starts with the capture boundary's work still
		// owed (its collection epoch and, past the warm boundary, its
		// policy pass) — exactly what the uninterrupted run performed
		// there after capturing.
		f.pendingPolicy[i] = start > cfg.WarmEpochs || (tel && start >= f.telFrom)
	}
	for _, rb := range pre {
		for i := range hosts {
			f.snaps[i][rb.Boundary] = hostSnap{stats: rb.Stats[i], committed: rb.Committed[i]}
		}
	}
	if cfg.Telemetry != nil || rt.el != nil {
		// Every collection epoch — and every elasticity pass, which
		// mutates hosts fleet-wide — samples all hosts parked at one
		// boundary: a global sync point, so run-ahead is disabled and the
		// executor paces epoch by epoch (results are identical either
		// way; only wall-clock behaviour changes).
		f.lead = 0
	}

	wall := time.Now()
	f.pool = runner.NewPool(cfg.Workers, len(hosts), f.advance)
	f.pool.WakeAll()
	err := f.route()
	f.pool.Close()

	if rep := cfg.Report; rep != nil {
		// One job per host: its wall clock sums the executor chunks that
		// advanced it (lockstep reports one job per host-epoch instead).
		rep.Jobs += len(hosts)
		if w := f.pool.Workers(); w > rep.Workers {
			rep.Workers = w
		}
		rep.Wall += time.Since(wall)
		rep.JobWall = append(rep.JobWall, f.hostWall...)
	}
	return err
}

// route is the control-plane loop, run on the RunFleet goroutine: it
// routes churn epochs in trace order (waiting on the slowest host only
// when an arrival epoch needs its base snapshot), interleaves telemetry
// collection epochs when a collector is attached, and finally waits for
// every host to drain.
func (f *asyncFleet) route() error {
	tel := f.cfg.Telemetry != nil
	start := f.routed
	for k := start; k < f.last; k++ {
		if f.ckpt > 0 && k == f.ckpt {
			// The capture barrier precedes boundary k's collection epoch,
			// exactly as in lockstep: the snapshot excludes the boundary's
			// own collection and policy work, which the restored run
			// replays.
			if err := f.captureBarrier(); err != nil {
				return err
			}
		}
		if tel && k >= f.telFrom {
			// Boundary k's collection epoch precedes epoch k's routing,
			// exactly as in lockstep (counters reflect epochs [0, k)).
			if err := f.collectBoundary(k, f.plan.ends[k-1]); err != nil {
				return err
			}
		}
		if f.rt.el != nil && k > f.cfg.WarmEpochs {
			// Boundary k's elasticity pass precedes epoch k's routing,
			// exactly as in lockstep: migrations commit and replicas
			// scale before the epoch's arrivals are placed.
			if err := f.elasticityBarrier(k); err != nil {
				return err
			}
		}
		var stats [][]core.VMStat
		var committed []int
		if f.plan.hasArrival[k] {
			b := f.rt.baseFor(k)
			f.mu.Lock()
			for f.minDone < b && f.failErr == nil {
				f.cond.Wait()
			}
			if f.failErr != nil {
				f.mu.Unlock()
				return f.failErr
			}
			stats, committed = f.gatherLocked(b)
			f.mu.Unlock()
		}
		batches, err := f.rt.routeEpoch(k, stats, committed)
		if err != nil {
			f.mu.Lock()
			f.failLocked(err, k, -1)
			f.mu.Unlock()
			f.pool.WakeAll()
			return err
		}
		if batches != nil {
			for i := range f.hosts {
				f.batches[i][k] = batches[i]
			}
		}
		f.mu.Lock()
		f.routed = k + 1
		f.mu.Unlock()
		f.pool.WakeAll()
	}
	if tel {
		// The horizon boundary's collection epoch (end of the last churn
		// epoch), before any host starts draining.
		if err := f.collectBoundary(f.last, f.plan.ends[f.last-1]); err != nil {
			return err
		}
	}
	if f.rt.el != nil && f.last > f.cfg.WarmEpochs {
		// The horizon boundary's elasticity pass (commits only — no new
		// migrations or replicas start with no epoch left to run them).
		if err := f.elasticityBarrier(f.last); err != nil {
			return err
		}
	}
	f.mu.Lock()
	for f.minDone <= f.last && f.failErr == nil {
		f.cond.Wait()
	}
	err := f.failErr
	f.mu.Unlock()
	if err != nil {
		return err
	}
	// Terminal collection epoch on the fully drained fleet.
	collectTelemetry(f.cfg.Telemetry, f.cfg.Horizon+f.cfg.Drain, f.hosts, f.res, f.cfg.SLO, f.rt)
	return nil
}

// elasticityBarrier waits until every host is parked at boundary k
// (their policy pass gated on elDone), runs the migration/replica-set
// pass over the frozen fleet, then opens the gate. At the checkpoint
// boundary the post-capture load resume happens here too, on the
// control plane, before the pass reads the boundary observations.
func (f *asyncFleet) elasticityBarrier(k int) error {
	f.mu.Lock()
	for f.minDone < k && f.failErr == nil {
		f.cond.Wait()
	}
	if f.failErr != nil {
		f.mu.Unlock()
		return f.failErr
	}
	f.mu.Unlock()
	// No host can be past boundary k (its policy pass needs elDone >=
	// k), so every engine is frozen while the pass mutates the fleet.
	if f.ckpt > 0 && k == f.ckpt {
		for _, h := range f.hosts {
			h.ResumeLoad()
		}
	}
	f.rt.el.pass(k, f.plan.ends[k-1])
	f.mu.Lock()
	f.elDone = k
	f.mu.Unlock()
	f.pool.WakeAll()
	return nil
}

// collectBoundary waits until every host is parked at boundary k (its
// epoch k-1 done, its boundary-k policy pass gated on us), samples the
// fleet, then opens the gate.
func (f *asyncFleet) collectBoundary(k int, now sim.Time) error {
	f.mu.Lock()
	for f.minDone < k && f.failErr == nil {
		f.cond.Wait()
	}
	if f.failErr != nil {
		f.mu.Unlock()
		return f.failErr
	}
	f.mu.Unlock()
	// No host can be past boundary k (its policy pass needs
	// telemetryDone >= k), so every engine is frozen while we read.
	collectTelemetry(f.cfg.Telemetry, now, f.hosts, f.res, f.cfg.SLO, f.rt)
	f.mu.Lock()
	f.telemetryDone = k
	f.mu.Unlock()
	f.pool.WakeAll()
	return nil
}

// captureBarrier waits until every host is parked at the checkpoint
// boundary (their boundary work gated on ckptDone), captures the fleet
// while all engines are frozen, then opens the gate. The capture is
// read-only, so the continuing run is byte-identical to one that never
// captured (beyond the quiesce barrier both share).
func (f *asyncFleet) captureBarrier() error {
	b := f.ckpt
	f.mu.Lock()
	for f.minDone < b && f.failErr == nil {
		f.cond.Wait()
	}
	if f.failErr != nil {
		f.mu.Unlock()
		return f.failErr
	}
	ring := f.ringLocked(b)
	f.mu.Unlock()
	// No host can be past boundary b (its boundary work needs ckptDone),
	// so every engine is frozen while we read.
	var err error
	if f.cfg.CheckpointPath != "" {
		var cp *FleetCheckpoint
		cp, err = captureFleet(f.cfg, f.hosts, f.pols, f.rt, f.res, ring, b, f.plan.ends[b-1])
		if err == nil {
			err = SaveCheckpoint(f.cfg.CheckpointPath, cp)
		}
	}
	f.mu.Lock()
	if err != nil {
		f.failLocked(err, b, -1)
		f.mu.Unlock()
		f.pool.WakeAll()
		return err
	}
	f.ckptDone = true
	f.mu.Unlock()
	f.pool.WakeAll()
	return nil
}

// ringLocked assembles the retained placement-snapshot window at a
// capture boundary b — the bounded-lag analogue of ringBoundaries. The
// snaps maps still hold every needed boundary in [b-lag, b]: an entry
// at x is consumed by arrival epoch x+lag >= b, which is not yet
// routed. Entries are copied, not consumed.
func (f *asyncFleet) ringLocked(b int) []RingBoundary {
	var out []RingBoundary
	lo := b - f.rt.lag
	if lo < 1 {
		lo = 1
	}
	for x := lo; x <= b; x++ {
		if !f.rt.needBoundary(x) {
			continue
		}
		stats := make([][]core.VMStat, len(f.hosts))
		committed := make([]int, len(f.hosts))
		for i := range f.hosts {
			s, ok := f.snaps[i][x]
			if !ok {
				panic(fmt.Sprintf("cluster: host %d never published boundary %d", i, x))
			}
			stats[i] = s.stats
			committed[i] = s.committed
		}
		out = append(out, RingBoundary{Boundary: x, Stats: stats, Committed: committed})
	}
	return out
}

// gatherLocked assembles the fleet snapshot at boundary b, consuming
// the hosts' published entries. Boundary 0 is the empty initial fleet.
func (f *asyncFleet) gatherLocked(b int) ([][]core.VMStat, []int) {
	stats := make([][]core.VMStat, len(f.hosts))
	committed := make([]int, len(f.hosts))
	if b == 0 {
		return stats, committed
	}
	for i := range f.hosts {
		s, ok := f.snaps[i][b]
		if !ok {
			panic(fmt.Sprintf("cluster: host %d never published boundary %d", i, b))
		}
		stats[i] = s.stats
		committed[i] = s.committed
		delete(f.snaps[i], b)
	}
	return stats, committed
}

// advance is the pool's run function for one host queue: it advances
// the host through epochs until a gate blocks it, then parks. All work
// outside f.mu touches only host-local state.
func (f *asyncFleet) advance(i int) {
	h := f.hosts[i]
	for {
		f.mu.Lock()
		if f.failErr != nil || f.done[i] > f.last {
			f.mu.Unlock()
			return
		}
		k := f.done[i]
		if f.pendingPolicy[i] {
			if f.cfg.Telemetry != nil && k >= f.telFrom && f.telemetryDone < k {
				f.mu.Unlock()
				return // park until boundary k's collection epoch closes
			}
			if f.ckpt > 0 && k == f.ckpt && !f.ckptDone {
				f.mu.Unlock()
				return // park until the control plane captured the fleet
			}
			if f.rt.el != nil && k > f.cfg.WarmEpochs && f.elDone < k {
				f.mu.Unlock()
				return // park until boundary k's elasticity pass commits
			}
			// With the elasticity layer on, the post-capture resume is the
			// control plane's (elasticityBarrier), not the host's.
			resume := f.ckpt > 0 && k == f.ckpt && f.rt.el == nil
			f.mu.Unlock()
			if resume {
				// Post-capture: release this host's quiesce barrier, on the
				// host's own timeline (the engines of hosts still running
				// their policy passes must not be touched from here).
				h.ResumeLoad()
			}
			if k > f.cfg.WarmEpochs {
				t0 := time.Now()
				h.boundaryPolicy(f.pols[i], f.plan.ends[k-1]-f.plan.starts[k-1])
				f.mu.Lock()
				f.hostWall[i] += time.Since(t0)
			} else {
				f.mu.Lock()
			}
			f.pendingPolicy[i] = false
			f.mu.Unlock()
			continue
		}
		if k < f.last && f.routed <= k {
			f.mu.Unlock()
			return // park until epoch k's batch is routed
		}
		if k > f.minDone+f.lead {
			f.mu.Unlock()
			return // park: lag bound reached, the slowest host gates us
		}
		f.mu.Unlock()

		if hook := testEpochHook; hook != nil {
			hook(i, k)
		}
		t0 := time.Now()
		var err error
		var snap []core.VMStat
		committed := 0
		if k < f.last {
			h.scheduleRouted(f.batches[i][k])
			if quiesceBefore(f.cfg, k) {
				// After the batch, matching lockstep's engine event order.
				h.ScheduleQuiesce(f.plan.starts[k])
			}
			if err = h.RunEpoch(f.plan.ends[k]); err == nil {
				snap = h.Snapshot(f.plan.ends[k] - f.plan.starts[k])
				committed = h.CommittedVCPUs()
				if f.cfg.WarmEpochs > 0 && k+1 == f.cfg.WarmEpochs {
					// The warm boundary: arm the mechanisms and resume the
					// load before publishing done = k+1 — the same
					// Snapshot-then-Arm order lockstep uses at its barrier.
					h.Arm()
				}
			}
		} else {
			// The drain step: all churn epochs are behind us (the routing
			// gate saw to that), so retire every VM and run out the clock.
			h.StopAll()
			err = h.RunEpoch(f.cfg.Horizon + f.cfg.Drain)
		}
		wall := time.Since(t0)

		f.mu.Lock()
		f.hostWall[i] += wall
		if err != nil {
			f.failLocked(err, k, i)
			f.mu.Unlock()
			return
		}
		if k < f.last {
			if f.rt.needBoundary(k + 1) {
				f.snaps[i][k+1] = hostSnap{stats: snap, committed: committed}
			}
			// Boundary k+1 owes work unless it is inside the warm prefix:
			// a policy pass past the warm boundary, and the collection /
			// capture gates from the boundary itself.
			f.pendingPolicy[i] = k+1 > f.cfg.WarmEpochs ||
				(f.cfg.Telemetry != nil && k+1 >= f.telFrom)
		}
		f.done[i] = k + 1
		f.bumpMinLocked(k)
		f.mu.Unlock()
	}
}

// bumpMinLocked maintains minDone/minCount after a host advanced past
// `old`, and wakes the fleet when the global minimum moves: the router
// may be waiting on it, and parked hosts' lag bounds just loosened.
func (f *asyncFleet) bumpMinLocked(old int) {
	if old != f.minDone {
		return
	}
	if f.minCount--; f.minCount > 0 {
		return
	}
	min := f.done[0]
	for _, d := range f.done[1:] {
		if d < min {
			min = d
		}
	}
	count := 0
	for _, d := range f.done {
		if d == min {
			count++
		}
	}
	f.minDone, f.minCount = min, count
	f.cond.Broadcast()
	f.pool.WakeAll()
}

// failLocked records the first failure by (epoch, host) order — a
// deterministic choice when a single fault is in play — and wakes
// everyone so the run unwinds.
func (f *asyncFleet) failLocked(err error, epoch, host int) {
	if f.failErr == nil || epoch < f.failEpoch || (epoch == f.failEpoch && host < f.failHost) {
		f.failErr, f.failEpoch, f.failHost = err, epoch, host
	}
	f.cond.Broadcast()
}
