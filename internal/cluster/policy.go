package cluster

import (
	"fmt"
	"strings"
	"sync"

	"vscale/internal/sim"
)

// VMObservation is one VM's per-epoch snapshot, the input to
// ScalingPolicy.Decide. It combines the CPU-demand signals the paper's
// policies act on (consumed vCPU-time) with the application signals
// the feedback-control policies close the loop on (reply-latency
// quantiles, SLO attainment) — all sampled by the control plane while
// the host engines are parked at the epoch boundary.
//
// The latency fields come from the load generator's epoch window (the
// delta since the previous epoch), not from cumulative counters, so a
// controller sees the system's current behaviour rather than its
// lifetime average.
type VMObservation struct {
	// VM names the VM (unique fleet-wide); Host is its host index.
	VM   string
	Host int
	// Epoch is the control-plane period the window spans.
	Epoch sim.Time

	// MaxVCPUs is the VM's provisioned vCPU ceiling; ActiveVCPUs is how
	// many are currently unfrozen; HostPCPUs is the host's pool size.
	MaxVCPUs    int
	ActiveVCPUs int
	HostPCPUs   int

	// ConsumedCPU is the vCPU-time the VM consumed this epoch (the
	// demand signal: ConsumedCPU/Epoch is the vCPU-count it actually
	// used).
	ConsumedCPU sim.Time
	// OfferedRPS is the generator's current offered request rate.
	OfferedRPS float64

	// Offered/Replies/Errors count this epoch's requests; InFlight is
	// the point-in-time backlog (offered but not yet terminal) at the
	// epoch boundary — a leading overload indicator.
	Offered, Replies, Errors uint64
	InFlight                 uint64
	// P50/P95/P99 are this epoch's reply-latency quantiles in
	// milliseconds (zero when nothing was delivered this epoch).
	P50, P95, P99 float64
	// Attainment is this epoch's SLO attainment over offered requests.
	Attainment float64
	// SLO is the per-request latency objective.
	SLO sim.Time
}

// Mechanism describes the guest-side plumbing a policy relies on; the
// host configures each VM from it at boot.
type Mechanism struct {
	// Channel enables the hypervisor's vScale extendability channel
	// (periodic Algorithm-1 recalculation) for the VM's domain.
	Channel bool
	// Daemon runs the in-guest scaling daemon (it polls the channel
	// every 10 ms and resizes the VM itself; Decide is then advisory
	// and built-in daemon policies return 0 from it).
	Daemon bool
	// Hotplug routes the daemon's resizes through the dom0 toolstack
	// (libxl stats sweep + XenStore write + guest CPU hotplug) instead
	// of the vScale balancer.
	Hotplug bool
}

// ScalingPolicy decides how each VM of a fleet resizes. One instance
// is created per fleet run (RunFleet instantiates it from the registry
// by name), so a policy may keep per-VM controller state across
// epochs.
//
// Every method is called from the single-threaded control plane, never
// from host engine callbacks, and Decide is called for every
// non-retired VM every epoch in host-index then VM-admission order —
// a policy must derive its decisions only from the observations it is
// handed (no clocks, no global RNG) to preserve the fleet's
// byte-identical determinism across worker counts.
type ScalingPolicy interface {
	// Name returns the registry key (also the report label).
	Name() string
	// Mechanism reports the guest-side plumbing the policy needs.
	Mechanism() Mechanism
	// Decide returns the VM's target active-vCPU count for the next
	// epoch, clamped by the caller to [1, MaxVCPUs]. Returning 0 (or
	// any non-positive value) means "no decision": the VM keeps its
	// current size and the policy's mechanism (if any) stays in charge.
	Decide(obs VMObservation) int
}

// policyName implements the Name/String half of ScalingPolicy so the
// built-ins stay one-liner structs; String makes every policy print as
// its registry key (the enum the registry replaced printed the same).
type policyName string

func (n policyName) Name() string   { return string(n) }
func (n policyName) String() string { return string(n) }

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

// PolicyFactory builds a fresh policy instance for one fleet run.
type PolicyFactory func() ScalingPolicy

var policyRegistry = struct {
	sync.Mutex
	names     []string // registration order (the report order)
	factories map[string]PolicyFactory
}{factories: map[string]PolicyFactory{}}

// RegisterPolicy adds a policy under name. Registering an empty or
// duplicate name is an error: a duplicate would silently shadow an
// existing contender in every experiment keyed by name.
func RegisterPolicy(name string, f PolicyFactory) error {
	if name == "" {
		return fmt.Errorf("cluster: policy name must be non-empty")
	}
	if strings.ContainsAny(name, ", \t\n") {
		return fmt.Errorf("cluster: policy name %q must not contain commas or spaces", name)
	}
	if f == nil {
		return fmt.Errorf("cluster: policy %q needs a factory", name)
	}
	policyRegistry.Lock()
	defer policyRegistry.Unlock()
	if _, dup := policyRegistry.factories[name]; dup {
		return fmt.Errorf("cluster: policy %q already registered", name)
	}
	policyRegistry.factories[name] = f
	policyRegistry.names = append(policyRegistry.names, name)
	return nil
}

// mustRegisterPolicy registers the built-ins at init.
func mustRegisterPolicy(name string, f PolicyFactory) {
	if err := RegisterPolicy(name, f); err != nil {
		panic(err)
	}
}

// PolicyNames lists the registered policy names in registration order:
// the built-ins first (static, hotplug, vscale, pid, predictive), then
// external registrations.
func PolicyNames() []string {
	policyRegistry.Lock()
	defer policyRegistry.Unlock()
	return append([]string(nil), policyRegistry.names...)
}

// NewPolicy instantiates a fresh policy by registry name. An unknown
// name yields an error listing every registered name.
func NewPolicy(name string) (ScalingPolicy, error) {
	policyRegistry.Lock()
	f, ok := policyRegistry.factories[name]
	policyRegistry.Unlock()
	if !ok {
		return nil, fmt.Errorf("cluster: unknown policy %q (known: %s)",
			name, strings.Join(PolicyNames(), ", "))
	}
	return f(), nil
}

// ParsePolicies parses a comma-separated policy selection as the CLIs'
// -policies flag accepts it: "all" (or the empty string) selects every
// registered policy in registration order; otherwise each name must be
// registered, and duplicates are rejected.
func ParsePolicies(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return PolicyNames(), nil
	}
	var out []string
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			continue
		}
		if _, err := NewPolicy(name); err != nil {
			return nil, err
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: policy %q selected twice", name)
		}
		seen[name] = true
		out = append(out, name)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty policy selection")
	}
	return out, nil
}

func init() {
	// Registration order is the canonical report order.
	mustRegisterPolicy("static", func() ScalingPolicy { return staticPolicy{} })
	mustRegisterPolicy("hotplug", func() ScalingPolicy { return hotplugPolicy{} })
	mustRegisterPolicy("vscale", func() ScalingPolicy { return vscalePolicy{} })
	mustRegisterPolicy("pid", func() ScalingPolicy { return NewPIDPolicy(DefaultPIDConfig()) })
	mustRegisterPolicy("predictive", func() ScalingPolicy { return NewPredictivePolicy(DefaultPredictiveConfig()) })
}

// ---------------------------------------------------------------------
// The paper's three policies as registry entries
// ---------------------------------------------------------------------

// staticPolicy never resizes: every VM keeps all its vCPUs online
// (unmodified Xen/Linux).
type staticPolicy struct{}

func (staticPolicy) Name() string             { return "static" }
func (staticPolicy) String() string           { return "static" }
func (staticPolicy) Mechanism() Mechanism     { return Mechanism{} }
func (staticPolicy) Decide(VMObservation) int { return 0 }

// hotplugPolicy resizes through the dom0 toolstack: the in-guest
// daemon reads the same utilisation signal as vScale, but each
// reconfiguration pays a dom0 monitoring sweep over the host's VMs, a
// XenStore write and the guest CPU-hotplug latency (VCPU-Bal).
type hotplugPolicy struct{}

func (hotplugPolicy) Name() string   { return "hotplug" }
func (hotplugPolicy) String() string { return "hotplug" }
func (hotplugPolicy) Mechanism() Mechanism {
	return Mechanism{Channel: true, Daemon: true, Hotplug: true}
}
func (hotplugPolicy) Decide(VMObservation) int { return 0 }

// vscalePolicy resizes through the vScale channel and balancer (the
// paper's system): the in-guest daemon polls CPU extendability every
// 10 ms and freezes/unfreezes vCPUs at µs cost.
type vscalePolicy struct{}

func (vscalePolicy) Name() string             { return "vscale" }
func (vscalePolicy) String() string           { return "vscale" }
func (vscalePolicy) Mechanism() Mechanism     { return Mechanism{Channel: true, Daemon: true} }
func (vscalePolicy) Decide(VMObservation) int { return 0 }
