package cluster

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// assertSameResult compares two FleetResults field for field (the
// histogram via its rendered moments, since it holds pointers).
func assertSameResult(t *testing.T, label string, want, got FleetResult) {
	t.Helper()
	if want.Hist.String() != got.Hist.String() || want.Hist.Sum() != got.Hist.Sum() {
		t.Fatalf("%s: histograms differ", label)
	}
	want.Hist, got.Hist = nil, nil
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: results differ:\nwant %+v\ngot  %+v", label, want, got)
	}
}

// TestLockstepBoundedLagIdentical is the differential check behind the
// whole refactor: for every policy, several seeds and both worker
// counts, the bounded-lag executor must reproduce the lockstep
// executor's FleetResult exactly.
func TestLockstepBoundedLagIdentical(t *testing.T) {
	for _, policy := range PolicyNames() {
		for _, seed := range []uint64{11, 23, 97} {
			cfg := smallFleet(policy, 1)
			cfg.Seed = seed
			events := GenTrace(DefaultTraceConfig(cfg.Horizon), seed)

			lcfg := cfg
			lcfg.Sync = SyncLockstep
			want, err := RunFleet(lcfg, events)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				bcfg := cfg
				bcfg.Sync = SyncBoundedLag
				bcfg.Workers = workers
				got, err := RunFleet(bcfg, events)
				if err != nil {
					t.Fatal(err)
				}
				assertSameResult(t, fmt.Sprintf("%s seed=%d workers=%d", policy, seed, workers), want, got)
			}
		}
	}
}

// TestBoundedLagStarvedHost slows one host far below the rest: the
// fleet must actually run ahead of it (asynchrony), never beyond the
// lag bound, and still produce the lockstep answer.
func TestBoundedLagStarvedHost(t *testing.T) {
	var mu sync.Mutex
	cur := map[int]int{}
	maxSkew := 0
	testEpochHook = func(host, epoch int) {
		mu.Lock()
		cur[host] = epoch
		if len(cur) == 2 {
			if skew := cur[1] - cur[0]; skew > maxSkew {
				maxSkew = skew
			}
		}
		mu.Unlock()
		if host == 0 {
			time.Sleep(2 * time.Millisecond)
		}
	}
	defer func() { testEpochHook = nil }()

	cfg := smallFleet("vscale", 4)
	events := GenTrace(DefaultTraceConfig(cfg.Horizon), cfg.Seed)
	got, err := RunFleet(cfg, events)
	if err != nil {
		t.Fatal(err)
	}
	testEpochHook = nil

	lcfg := smallFleet("vscale", 1)
	lcfg.Sync = SyncLockstep
	want, err := RunFleet(lcfg, events)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "starved host", want, got)

	// cur[i] is the last epoch host i *started*, so host 1 may lead the
	// straggler's start by lag+1 (the straggler's done count can be one
	// past its recorded start), never more.
	if maxSkew > cfg.lag()+1 {
		t.Fatalf("lag bound violated: host 1 ran %d epochs ahead of the straggler (lag %d)", maxSkew, cfg.lag())
	}
	if maxSkew < 2 {
		t.Fatalf("no run-ahead observed (max skew %d); executor appears lockstepped", maxSkew)
	}
}

// TestParseSyncMode pins the flag surface both CLIs share.
func TestParseSyncMode(t *testing.T) {
	for in, want := range map[string]SyncMode{
		"":           SyncBoundedLag,
		"boundedlag": SyncBoundedLag,
		"lockstep":   SyncLockstep,
	} {
		got, err := ParseSyncMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncMode("warp"); err == nil {
		t.Fatal("ParseSyncMode(warp): want error")
	}
}

// TestRunFleetRejectsNegativeLag pins config validation.
func TestRunFleetRejectsNegativeLag(t *testing.T) {
	cfg := smallFleet("static", 0)
	cfg.LagEpochs = -1
	if _, err := RunFleet(cfg, nil); err == nil {
		t.Fatal("RunFleet with negative LagEpochs: want error")
	}
	cfg.Sync = SyncMode("warp")
	if _, err := RunFleet(cfg, nil); err == nil {
		t.Fatal("RunFleet with unknown sync mode: want error")
	}
}

// TestRecordPlacementsOff checks the opt-out: counters survive, the
// per-VM placement log is elided.
func TestRecordPlacementsOff(t *testing.T) {
	off := false
	cfg := smallFleet("static", 0)
	cfg.RecordPlacements = &off
	events := GenTrace(DefaultTraceConfig(cfg.Horizon), cfg.Seed)
	res, err := RunFleet(cfg, events)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placements != nil {
		t.Fatalf("RecordPlacements=false still recorded %d placements", len(res.Placements))
	}
	if res.Placed == 0 {
		t.Fatal("placement counter lost with recording off")
	}
}
