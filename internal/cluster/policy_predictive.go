package cluster

import (
	"encoding/json"
	"fmt"
	"math"
)

// PredictiveConfig parameterises the predictive policy.
type PredictiveConfig struct {
	// Alpha and Beta are Holt's double-exponential smoothing factors
	// for the demand level and its linear trend.
	Alpha, Beta float64
	// Headroom multiplies the one-epoch-ahead demand forecast before
	// the ceiling, so the provisioned count leads demand instead of
	// chasing it.
	Headroom float64
	// PressureAttainment is the windowed-attainment threshold below
	// which one extra vCPU is added on top of the forecast: consumption
	// under-reports demand exactly when the VM is being throttled, and
	// the attainment slip is the tell.
	PressureAttainment float64
}

// DefaultPredictiveConfig returns the smoothing used by the registered
// "predictive" policy.
func DefaultPredictiveConfig() PredictiveConfig {
	return PredictiveConfig{
		Alpha:              0.5,
		Beta:               0.3,
		Headroom:           1.25,
		PressureAttainment: 0.9,
	}
}

// holtState is one VM's demand-forecast memory (Holt's linear
// exponential smoothing: a level plus a trend).
type holtState struct {
	level, trend float64
	init         bool
}

// predictivePolicy forecasts each VM's CPU demand one epoch ahead from
// its recent consumption history — an EWMA level plus a linear trend
// (Holt's method) — and provisions the forecast with multiplicative
// headroom. Where the pid policy reacts to latency already gone bad,
// the predictive policy moves before it does: a VM ramping across
// epochs gets its next vCPU while the trend is still climbing.
type predictivePolicy struct {
	policyName
	cfg PredictiveConfig
	vms map[string]*holtState
}

// NewPredictivePolicy builds a predictive policy (zero fields fall
// back to DefaultPredictiveConfig values).
func NewPredictivePolicy(cfg PredictiveConfig) ScalingPolicy {
	def := DefaultPredictiveConfig()
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = def.Alpha
	}
	if cfg.Beta <= 0 || cfg.Beta > 1 {
		cfg.Beta = def.Beta
	}
	if cfg.Headroom <= 0 {
		cfg.Headroom = def.Headroom
	}
	if cfg.PressureAttainment <= 0 || cfg.PressureAttainment > 1 {
		cfg.PressureAttainment = def.PressureAttainment
	}
	return &predictivePolicy{policyName: "predictive", cfg: cfg, vms: map[string]*holtState{}}
}

func (p *predictivePolicy) Mechanism() Mechanism { return Mechanism{} }

func (p *predictivePolicy) state(vm string) *holtState {
	st, ok := p.vms[vm]
	if !ok {
		st = &holtState{}
		p.vms[vm] = st
	}
	return st
}

func (p *predictivePolicy) Decide(o VMObservation) int {
	if o.Epoch <= 0 {
		return 0
	}
	// Demand in vCPUs: the share of the epoch the VM actually consumed.
	demand := float64(o.ConsumedCPU) / float64(o.Epoch)

	st := p.state(o.VM)
	if !st.init {
		st.level, st.trend, st.init = demand, 0, true
	} else {
		prev := st.level
		st.level = p.cfg.Alpha*demand + (1-p.cfg.Alpha)*(st.level+st.trend)
		st.trend = p.cfg.Beta*(st.level-prev) + (1-p.cfg.Beta)*st.trend
	}

	forecast := st.level + st.trend
	if forecast < 0 {
		forecast = 0
	}
	target := int(math.Ceil(forecast*p.cfg.Headroom - 1e-9))

	// Consumption is a throughput signal, not an intent signal: when
	// the VM is squeezed it consumes less while wanting more. A slipped
	// epoch attainment (or a growing backlog with nothing delivered)
	// overrides the forecast with one step up.
	if o.Offered > 0 && (o.Attainment < p.cfg.PressureAttainment || (o.Replies == 0 && o.InFlight > 0)) {
		if t := o.ActiveVCPUs + 1; t > target {
			target = t
		}
	}
	return clampVCPUs(target, o.MaxVCPUs)
}

// holtStateCheckpoint mirrors holtState for the checkpoint encoding.
type holtStateCheckpoint struct {
	Level float64 `json:"level"`
	Trend float64 `json:"trend"`
	Init  bool    `json:"init"`
}

// CheckpointPolicy exports the per-VM forecast memory (Checkpointable);
// a JSON map keyed by VM name, deterministic via sorted map keys.
func (p *predictivePolicy) CheckpointPolicy() ([]byte, error) {
	out := make(map[string]holtStateCheckpoint, len(p.vms))
	for vm, st := range p.vms {
		out[vm] = holtStateCheckpoint{Level: st.level, Trend: st.trend, Init: st.init}
	}
	data, err := json.Marshal(out)
	if err != nil {
		return nil, fmt.Errorf("cluster: predictive state: %w", err)
	}
	return data, nil
}

// RestorePolicy overwrites the forecast memory from a capture.
func (p *predictivePolicy) RestorePolicy(data []byte) error {
	in := map[string]holtStateCheckpoint{}
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("cluster: predictive state: %w", err)
	}
	p.vms = make(map[string]*holtState, len(in))
	for vm, st := range in {
		p.vms[vm] = &holtState{level: st.Level, trend: st.Trend, init: st.Init}
	}
	return nil
}
