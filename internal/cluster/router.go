package cluster

import (
	"fmt"

	"vscale/internal/core"
	"vscale/internal/metrics"
	"vscale/internal/runner"
	"vscale/internal/sim"
)

// epochPlan precomputes the fleet's epoch grid and buckets the churn
// trace by epoch, so both executors walk the same timeline: epoch k
// spans [starts[k], ends[k]) and owns the events with At in that range.
// Events at or beyond the horizon are dropped (they could never fire).
type epochPlan struct {
	starts, ends []sim.Time
	events       [][]Event
	hasArrival   []bool
}

// planEpochs validates the trace (sorted, non-negative times, known
// kinds) and buckets it.
func planEpochs(cfg *FleetConfig, events []Event) (*epochPlan, error) {
	p := &epochPlan{}
	for start := sim.Time(0); start < cfg.Horizon; start += cfg.Epoch {
		end := start + cfg.Epoch
		if end > cfg.Horizon {
			end = cfg.Horizon
		}
		p.starts = append(p.starts, start)
		p.ends = append(p.ends, end)
	}
	p.events = make([][]Event, len(p.starts))
	p.hasArrival = make([]bool, len(p.starts))
	k := 0
	for i, ev := range events {
		if i > 0 && ev.At < events[i-1].At {
			return nil, fmt.Errorf("cluster: churn trace not sorted at event %d", i)
		}
		if ev.At < 0 {
			return nil, fmt.Errorf("cluster: event for %s at %v precedes epoch start %v", ev.VM, ev.At, sim.Time(0))
		}
		switch ev.Kind {
		case EventArrive, EventPhase, EventDepart:
		default:
			return nil, fmt.Errorf("cluster: unknown event kind %v", ev.Kind)
		}
		if ev.At >= cfg.Horizon {
			continue
		}
		for ev.At >= p.ends[k] {
			k++
		}
		p.events[k] = append(p.events[k], ev)
		if ev.Kind == EventArrive {
			p.hasArrival[k] = true
		}
	}
	return p, nil
}

// epochs returns the number of churn epochs (the drain is one more
// executor step past them).
func (p *epochPlan) epochs() int { return len(p.starts) }

// routedEvent is one churn event bound for a specific host, with the
// arrival's derived VM seed resolved at routing time.
type routedEvent struct {
	ev   Event
	seed uint64
}

// placedProbe remembers one recent placement for staleness correction:
// a VM admitted in epoch `epoch` that a base snapshot older than that
// epoch cannot see yet.
type placedProbe struct {
	epoch int
	vcpus int
	stat  core.VMStat
}

// fleetRouter routes churn epochs onto hosts, in trace order, with
// bounded-staleness placement: an arrival in epoch k is placed with the
// fleet snapshot from boundary base(k) = max(0, k-lag), corrected with
// probes for every VM placed in epochs [base(k), k] (generalising the
// original same-epoch probe accumulation) and with the committed-vCPU
// tie-break corrected for placements in [base(k), k). The router's
// decisions are a pure function of the trace, the snapshots and the
// bound — shared verbatim by both executors, which is what keeps their
// results byte-identical.
type fleetRouter struct {
	cfg    *FleetConfig
	plan   *epochPlan
	res    *FleetResult
	lag    int
	record bool

	owner map[string]int
	// probes[i] / committedExtra[i] are host i's staleness corrections;
	// probeLog keeps the placement epochs for pruning as base advances.
	probeLog       [][]placedProbe
	probes         [][]core.VMStat
	committedExtra []int
	// scratch is pickHost's candidate buffer, reused across arrivals.
	scratch []core.VMStat
	// telHist is collectTelemetry's reusable fleet-wide merge target,
	// allocated once per run instead of once per collection epoch.
	telHist *metrics.Histogram
	// el, when non-nil, is the elasticity layer (migration + replica
	// sets); the router feeds it every routed event, identically in
	// both executors.
	el *elasticity
}

func newFleetRouter(cfg *FleetConfig, plan *epochPlan, res *FleetResult) *fleetRouter {
	var telHist *metrics.Histogram
	if cfg.Telemetry != nil {
		telHist = metrics.NewHistogram(metrics.DefaultLatencyBuckets())
	}
	rt := &fleetRouter{
		cfg:            cfg,
		plan:           plan,
		res:            res,
		lag:            cfg.lag(),
		record:         cfg.recordPlacements(),
		owner:          map[string]int{},
		probeLog:       make([][]placedProbe, cfg.Hosts),
		probes:         make([][]core.VMStat, cfg.Hosts),
		committedExtra: make([]int, cfg.Hosts),
		telHist:        telHist,
	}
	rt.el = newElasticity(cfg, plan, rt, res)
	return rt
}

// recordPlacement appends a staleness-correction probe for a VM the
// elasticity layer just committed to a host at boundary `epoch` — the
// same bookkeeping an arrival gets, so later arrivals placing with
// stale base snapshots see migrated VMs and replicas too.
func (rt *fleetRouter) recordPlacement(host, epoch, vcpus int) {
	p := placedProbe{
		epoch: epoch,
		vcpus: vcpus,
		stat:  probeStat(vcpus, rt.cfg.PCPUsPerHost, rt.cfg.Epoch),
	}
	rt.probeLog[host] = append(rt.probeLog[host], p)
	rt.probes[host] = append(rt.probes[host], p.stat)
}

// baseFor returns the snapshot boundary epoch k's arrivals are placed
// with.
func (rt *fleetRouter) baseFor(k int) int {
	if b := k - rt.lag; b > 0 {
		return b
	}
	return 0
}

// needBoundary reports whether some arrival epoch places with boundary
// b's snapshot — the bounded-lag executor only publishes (and retains)
// needed boundaries. Boundary 0 is the empty initial fleet and is never
// published.
func (rt *fleetRouter) needBoundary(b int) bool {
	if b <= 0 || b >= rt.plan.epochs() {
		return false
	}
	k := b + rt.lag
	return k < rt.plan.epochs() && rt.plan.hasArrival[k]
}

// routeEpoch routes plan epoch k. stats/committed are the per-host
// fleet snapshot at boundary baseFor(k) (nil for an epoch without
// arrivals — only arrivals read them). It returns one batch per host
// (nil slices for idle hosts), or nil when the epoch has no events.
// Counters and placements accumulate into the shared FleetResult; the
// caller delivers the batches before the hosts run the epoch.
func (rt *fleetRouter) routeEpoch(k int, stats [][]core.VMStat, committed []int) ([][]routedEvent, error) {
	evs := rt.plan.events[k]
	if len(evs) == 0 {
		return nil, nil
	}
	var batches [][]routedEvent
	if rt.plan.hasArrival[k] {
		rt.advanceBase(rt.baseFor(k), k)
	}
	for _, ev := range evs {
		switch ev.Kind {
		case EventArrive:
			hIdx := pickHost(rt.cfg.PCPUsPerHost, rt.cfg.Epoch, stats, rt.probes, committed, rt.committedExtra, ev.VCPUs, &rt.scratch)
			// The VM's seed comes from its arrival index in the trace,
			// so its RNG streams (and hence the offered load) are the
			// same wherever it lands and whatever the policy.
			seed := runner.DeriveSeed(rt.cfg.Seed^0xc2b2ae3d27d4eb4f, rt.res.Placed)
			if batches == nil {
				batches = make([][]routedEvent, rt.cfg.Hosts)
			}
			batches[hIdx] = append(batches[hIdx], routedEvent{ev: ev, seed: seed})
			rt.owner[ev.VM] = hIdx
			rt.probeLog[hIdx] = append(rt.probeLog[hIdx], placedProbe{
				epoch: k,
				vcpus: ev.VCPUs,
				stat:  probeStat(ev.VCPUs, rt.cfg.PCPUsPerHost, rt.cfg.Epoch),
			})
			rt.probes[hIdx] = append(rt.probes[hIdx], rt.probeLog[hIdx][len(rt.probeLog[hIdx])-1].stat)
			rt.res.Placed++
			if rt.record {
				rt.res.Placements = append(rt.res.Placements, Placement{VM: ev.VM, Host: hIdx})
			}
			if rt.el != nil {
				rt.el.observeEvent(ev, hIdx, k)
			}
		case EventPhase:
			if hIdx, ok := rt.owner[ev.VM]; ok {
				if batches == nil {
					batches = make([][]routedEvent, rt.cfg.Hosts)
				}
				batches[hIdx] = append(batches[hIdx], routedEvent{ev: ev})
				rt.res.PhaseChanges++
				if rt.el != nil {
					rt.el.observeEvent(ev, hIdx, k)
				}
			}
		case EventDepart:
			if hIdx, ok := rt.owner[ev.VM]; ok {
				if batches == nil {
					batches = make([][]routedEvent, rt.cfg.Hosts)
				}
				batches[hIdx] = append(batches[hIdx], routedEvent{ev: ev})
				delete(rt.owner, ev.VM)
				rt.res.Departed++
				if rt.el != nil {
					rt.el.observeEvent(ev, hIdx, k)
				}
			}
		default:
			return nil, fmt.Errorf("cluster: unknown event kind %v", ev.Kind)
		}
	}
	return batches, nil
}

// advanceBase prunes probes older than the new base boundary (those
// placements are visible in the base snapshot itself now) and
// recomputes the committed-vCPU corrections: placements from epochs
// [base, k) are running by epoch k but invisible to the base snapshot,
// so they count toward the tie-break; same-epoch placements do not
// (they are probes only), matching the original lockstep semantics.
func (rt *fleetRouter) advanceBase(base, k int) {
	for i := range rt.probeLog {
		log := rt.probeLog[i][:0]
		probes := rt.probes[i][:0]
		extra := 0
		for _, p := range rt.probeLog[i] {
			if p.epoch < base {
				continue
			}
			log = append(log, p)
			probes = append(probes, p.stat)
			if p.epoch < k {
				extra += p.vcpus
			}
		}
		rt.probeLog[i] = log
		rt.probes[i] = probes
		rt.committedExtra[i] = extra
	}
}

// snapRing retains the last lag+1 boundary snapshots of every host for
// the lockstep executor. Boundary 0 (the empty initial fleet) is
// preloaded.
type snapRing struct {
	depth     int
	boundary  []int
	stats     [][][]core.VMStat // [slot][host]
	committed [][]int           // [slot][host]
}

func newSnapRing(hosts, lag int) *snapRing {
	r := &snapRing{depth: lag + 1}
	r.boundary = make([]int, r.depth)
	r.stats = make([][][]core.VMStat, r.depth)
	r.committed = make([][]int, r.depth)
	for s := range r.boundary {
		r.boundary[s] = -1
		r.stats[s] = make([][]core.VMStat, hosts)
		r.committed[s] = make([]int, hosts)
	}
	r.boundary[0] = 0 // boundary 0: empty fleet
	return r
}

// set stores host i's snapshot at boundary b, overwriting the slot's
// previous (now out-of-window) boundary.
func (r *snapRing) set(b, host int, stats []core.VMStat, committed int) {
	s := b % r.depth
	if r.boundary[s] != b {
		r.boundary[s] = b
	}
	r.stats[s][host] = stats
	r.committed[s][host] = committed
}

// at returns the fleet snapshot at boundary b; the caller only asks for
// boundaries within the retained window.
func (r *snapRing) at(b int) ([][]core.VMStat, []int) {
	s := b % r.depth
	if r.boundary[s] != b {
		panic(fmt.Sprintf("cluster: snapshot boundary %d evicted (slot holds %d)", b, r.boundary[s]))
	}
	return r.stats[s], r.committed[s]
}
