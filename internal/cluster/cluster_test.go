package cluster

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"vscale/internal/core"
	"vscale/internal/sim"
)

func TestGenTraceDeterministic(t *testing.T) {
	cfg := DefaultTraceConfig(8 * sim.Second)
	a := GenTrace(cfg, 42)
	b := GenTrace(cfg, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (cfg, seed) produced different traces")
	}
	c := GenTrace(cfg, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	arrives := 0
	seen := map[string]bool{}
	for i, ev := range a {
		if i > 0 && ev.At < a[i-1].At {
			t.Fatalf("trace not sorted at %d", i)
		}
		if ev.At >= cfg.Horizon {
			t.Fatalf("event at %v past horizon %v", ev.At, cfg.Horizon)
		}
		switch ev.Kind {
		case EventArrive:
			if seen[ev.VM] {
				t.Fatalf("VM %s arrives twice", ev.VM)
			}
			seen[ev.VM] = true
			arrives++
			if ev.VCPUs <= 0 || ev.RateRPS <= 0 {
				t.Fatalf("bad arrival %+v", ev)
			}
		case EventPhase, EventDepart:
			if !seen[ev.VM] {
				t.Fatalf("%v for VM %s before its arrival", ev.Kind, ev.VM)
			}
		}
	}
	if arrives < cfg.InitialVMs {
		t.Fatalf("only %d arrivals, want >= %d initial", arrives, cfg.InitialVMs)
	}
}

func TestTraceFormatRoundTrip(t *testing.T) {
	events := GenTrace(DefaultTraceConfig(6*sim.Second), 7)
	var buf bytes.Buffer
	if err := FormatTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "# vscale-churn/v1\n") {
		t.Fatalf("missing header: %q", buf.String()[:40])
	}
	back, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, back) {
		t.Fatal("format/parse round trip changed the trace")
	}
}

func TestParseTraceErrors(t *testing.T) {
	const hdr = "# vscale-churn/v1\n"
	cases := []struct {
		name    string
		in      string
		wantErr string
	}{
		{"empty", "", "empty trace"},
		{"bad header", "not a header\n", "want header"},
		{"bad timestamp", hdr + "xyz arrive vm0 vcpus=2 rate=100\n", "bad timestamp"},
		{"negative timestamp", hdr + "-5 arrive vm0 vcpus=2 rate=100\n", "negative timestamp"},
		{"unsorted", hdr + "200 arrive vm0 vcpus=2 rate=100\n100 arrive vm1 vcpus=2 rate=100\n", "not sorted"},
		{"unknown kind", hdr + "100 explode vm0\n", "unknown event"},
		{"arrive missing rate", hdr + "100 arrive vm0 vcpus=2\n", "arrive needs"},
		{"arrive swapped keys", hdr + "100 arrive vm0 rate=5 vcpus=2\n", "want vcpus="},
		{"arrive zero vcpus", hdr + "100 arrive vm0 vcpus=0 rate=100\n", "0 vcpus"},
		{"arrive negative rate", hdr + "100 arrive vm0 vcpus=2 rate=-3\n", "negative rate"},
		{"duplicate arrival", hdr + "100 arrive vm0 vcpus=2 rate=100\n200 arrive vm0 vcpus=2 rate=100\n", "arrives twice"},
		{"re-arrival after depart", hdr + "100 arrive vm0 vcpus=2 rate=100\n200 depart vm0\n300 arrive vm0 vcpus=2 rate=100\n", "arrives twice"},
		{"phase missing rate", hdr + "100 phase vm0\n", "phase needs"},
		{"phase before arrival", hdr + "100 phase vm0 rate=100\n", "has not arrived"},
		{"phase after depart", hdr + "100 arrive vm0 vcpus=2 rate=100\n200 depart vm0\n300 phase vm0 rate=50\n", "has not arrived"},
		{"depart extra args", hdr + "100 depart vm0 extra\n", "no arguments"},
		{"depart before arrival", hdr + "100 depart vm0\n", "has not arrived"},
		{"double depart", hdr + "100 arrive vm0 vcpus=2 rate=100\n200 depart vm0\n300 depart vm0\n", "has not arrived"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTrace(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("ParseTrace(%q): want error containing %q", tc.in, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ParseTrace(%q) = %v, want error containing %q", tc.in, err, tc.wantErr)
			}
		})
	}
	// Equal timestamps are legal (ties keep file order), as are comments
	// and blank lines after the header.
	ok := hdr + "\n# comment\n100 arrive vm0 vcpus=2 rate=100\n100 arrive vm1 vcpus=4 rate=50\n100 phase vm0 rate=0\n200 depart vm1\n"
	events, err := ParseTrace(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	if len(events) != 4 {
		t.Fatalf("parsed %d events, want 4", len(events))
	}
}

func TestPickHostPrefersIdleHost(t *testing.T) {
	epoch := 500 * sim.Millisecond
	probes := make([][]core.VMStat, 2)
	noExtra := []int{0, 0}
	var scratch []core.VMStat
	// Host 0 is saturated by two full-throttle competitors; host 1 idle.
	stats := [][]core.VMStat{
		{probeStat(4, 4, epoch), probeStat(4, 4, epoch)},
		{},
	}
	if got := pickHost(4, epoch, stats, probes, []int{8, 0}, noExtra, 2, &scratch); got != 1 {
		t.Fatalf("pickHost = %d, want idle host 1", got)
	}
	// All equal: ties break to the lower index.
	empty := [][]core.VMStat{{}, {}}
	if got := pickHost(4, epoch, empty, probes, noExtra, noExtra, 2, &scratch); got != 0 {
		t.Fatalf("pickHost on equal hosts = %d, want 0", got)
	}
	// Equal extendability, but host 0 took a placement the base snapshot
	// can't see yet: the committed correction breaks the tie to host 1.
	if got := pickHost(4, epoch, empty, probes, noExtra, []int{3, 0}, 2, &scratch); got != 1 {
		t.Fatalf("pickHost with stale-committed correction = %d, want 1", got)
	}
}

func TestNewHostRejectsBadConfig(t *testing.T) {
	if _, err := NewHost(0, HostConfig{PCPUs: 0, Policy: staticPolicy{}}); err == nil {
		t.Fatal("NewHost with 0 pCPUs: want error")
	}
	if _, err := NewHost(0, HostConfig{PCPUs: -3, Policy: staticPolicy{}}); err == nil {
		t.Fatal("NewHost with negative pCPUs: want error")
	}
	if _, err := NewHost(0, HostConfig{PCPUs: 4}); err == nil {
		t.Fatal("NewHost without a policy: want error")
	}
	if _, err := NewHost(0, HostConfig{PCPUs: 4, Policy: hotplugPolicy{}}); err != nil {
		t.Fatalf("NewHost with the hotplug mechanism: %v", err)
	}
}

func smallFleet(policy string, workers int) FleetConfig {
	return FleetConfig{
		Hosts:        2,
		PCPUsPerHost: 4,
		Policy:       policy,
		Seed:         11,
		Horizon:      3 * sim.Second,
		Epoch:        500 * sim.Millisecond,
		Drain:        sim.Second,
		SLO:          20 * sim.Millisecond,
		Workers:      workers,
	}
}

func TestRunFleetSmoke(t *testing.T) {
	cfg := smallFleet("vscale", 0)
	tcfg := DefaultTraceConfig(cfg.Horizon)
	events := GenTrace(tcfg, cfg.Seed)
	res, err := RunFleet(cfg, events)
	if err != nil {
		t.Fatal(err)
	}
	arrives := 0
	for _, ev := range events {
		if ev.Kind == EventArrive {
			arrives++
		}
	}
	if res.Placed != arrives {
		t.Fatalf("placed %d of %d arrivals", res.Placed, arrives)
	}
	if res.Load.Offered == 0 || res.Load.Replies == 0 {
		t.Fatalf("no traffic: %+v", res.Load)
	}
	if res.Load.Done != res.Load.Offered {
		t.Fatalf("in-flight after drain: done %d of %d", res.Load.Done, res.Load.Offered)
	}
	if res.Attainment < 0 || res.Attainment > 1 {
		t.Fatalf("attainment %g out of range", res.Attainment)
	}
	if res.Hist.Count() != res.Load.Replies {
		t.Fatalf("hist count %d != replies %d", res.Hist.Count(), res.Load.Replies)
	}
	if res.AvgHostUtil <= 0 || res.AvgHostUtil > 1 {
		t.Fatalf("util %g out of range", res.AvgHostUtil)
	}
	if res.CentralSweep <= 0 {
		t.Fatal("central sweep cost missing")
	}
	if res.Reconfigs == 0 {
		t.Fatal("vScale fleet under churn should reconfigure at least once")
	}
	if res.CostVCPUSeconds <= 0 {
		t.Fatal("provisioned cost missing")
	}
}

func TestRunFleetRejectsUnknownPolicy(t *testing.T) {
	cfg := smallFleet("no-such-policy", 0)
	if _, err := RunFleet(cfg, nil); err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Fatalf("RunFleet with unknown policy: got %v", err)
	}
}

func TestRunFleetSerialParallelIdentical(t *testing.T) {
	for _, policy := range PolicyNames() {
		cfg1 := smallFleet(policy, 1)
		cfg8 := smallFleet(policy, 8)
		events := GenTrace(DefaultTraceConfig(cfg1.Horizon), cfg1.Seed)
		r1, err := RunFleet(cfg1, events)
		if err != nil {
			t.Fatal(err)
		}
		r8, err := RunFleet(cfg8, events)
		if err != nil {
			t.Fatal(err)
		}
		// Histograms don't compare with reflect through pointers; check
		// the moments, then drop them for the full struct comparison.
		if r1.Hist.String() != r8.Hist.String() || r1.Hist.Sum() != r8.Hist.Sum() {
			t.Fatalf("%s: histograms differ across worker counts", policy)
		}
		r1.Hist, r8.Hist = nil, nil
		if !reflect.DeepEqual(r1, r8) {
			t.Fatalf("%s: results differ across worker counts:\n1: %+v\n8: %+v", policy, r1, r8)
		}
	}
}

func TestPoliciesShareChurnButDiverge(t *testing.T) {
	events := GenTrace(DefaultTraceConfig(3*sim.Second), 11)
	static, err := RunFleet(smallFleet("static", 0), events)
	if err != nil {
		t.Fatal(err)
	}
	vsc, err := RunFleet(smallFleet("vscale", 0), events)
	if err != nil {
		t.Fatal(err)
	}
	// Same churn trace: identical placements and event counts.
	if !reflect.DeepEqual(static.Placements, vsc.Placements) {
		t.Fatal("policies saw different placements for the same trace")
	}
	if static.Placed != vsc.Placed || static.Departed != vsc.Departed {
		t.Fatal("policies saw different churn")
	}
	// Static never reconfigures; vScale does.
	if static.Reconfigs != 0 {
		t.Fatalf("static fleet reconfigured %d times", static.Reconfigs)
	}
	if vsc.Reconfigs == 0 {
		t.Fatal("vscale fleet never reconfigured")
	}
}
