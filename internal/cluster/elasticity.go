package cluster

import (
	"encoding/json"
	"fmt"

	"vscale/internal/cluster/migration"
	"vscale/internal/cluster/replicaset"
	"vscale/internal/core"
	"vscale/internal/loadgen"
	"vscale/internal/runner"
	"vscale/internal/sim"
)

// The elasticity layer: live migration (rebalancing VMs across hosts
// with a pre-copy model) and ReplicaSet-style horizontal autoscaling
// (scaling VM replicas per service against windowed SLO attainment).
// Both run as control-plane passes at telemetry-barrier epochs, while
// every host engine is parked at the boundary, so their decisions — and
// the host mutations they commit — happen at identical points in the
// lockstep and bounded-lag executors and the results stay
// byte-identical across sync modes and worker counts
// (docs/cluster.md).

// MigrationConfig enables the rebalance/consolidate migration pass.
type MigrationConfig struct {
	// Model parameterises the pre-copy iterative-copy math.
	Model migration.Config
	// Every runs the migration pass at every Every-th boundary (>= 1).
	Every int
	// TriggerVCPUs is the minimum committed-vCPU gap between the
	// hottest host and the chosen destination before a migration starts.
	TriggerVCPUs int
	// MaxPerPass bounds migrations started per pass.
	MaxPerPass int
	// DirtyBpsDefault is the memory dirtying rate (bytes/s at full CPU
	// utilisation) for VMs whose trace carries no dirty= hint.
	DirtyBpsDefault float64
	// GuestLinkShare is the fraction of its I/O link a source host's
	// guests keep while an outbound migration occupies the rest.
	GuestLinkShare float64
}

// DefaultMigrationConfig returns the documented defaults.
func DefaultMigrationConfig() MigrationConfig {
	return MigrationConfig{
		Model:           migration.DefaultConfig(),
		Every:           1,
		TriggerVCPUs:    2,
		MaxPerPass:      1,
		DirtyBpsDefault: 200e6,
		GuestLinkShare:  0.5,
	}
}

// Validate rejects unusable migration parameters.
func (c *MigrationConfig) Validate() error {
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.Every < 1 {
		return fmt.Errorf("cluster: migration Every %d < 1", c.Every)
	}
	if c.TriggerVCPUs < 1 {
		return fmt.Errorf("cluster: migration TriggerVCPUs %d < 1", c.TriggerVCPUs)
	}
	if c.MaxPerPass < 1 {
		return fmt.Errorf("cluster: migration MaxPerPass %d < 1", c.MaxPerPass)
	}
	if c.DirtyBpsDefault < 0 {
		return fmt.Errorf("cluster: negative DirtyBpsDefault")
	}
	if c.GuestLinkShare <= 0 || c.GuestLinkShare > 1 {
		return fmt.Errorf("cluster: GuestLinkShare %g outside (0, 1]", c.GuestLinkShare)
	}
	return nil
}

// ReplicaSetConfig enables the horizontal autoscaling controller.
type ReplicaSetConfig struct {
	// Controller parameterises the per-service scaling decisions.
	Controller replicaset.Config
	// MaxCommitFactor caps replica admission: a host may not exceed
	// MaxCommitFactor * PCPUs committed vCPUs after placing a replica
	// (exceeding it raises a ReplicaFailure condition instead).
	MaxCommitFactor float64
}

// DefaultReplicaSetConfig returns the documented defaults.
func DefaultReplicaSetConfig() ReplicaSetConfig {
	return ReplicaSetConfig{Controller: replicaset.DefaultConfig(), MaxCommitFactor: 2}
}

// Validate rejects unusable replica-set parameters.
func (c *ReplicaSetConfig) Validate() error {
	if err := c.Controller.Validate(); err != nil {
		return err
	}
	if c.MaxCommitFactor <= 0 {
		return fmt.Errorf("cluster: MaxCommitFactor %g <= 0", c.MaxCommitFactor)
	}
	return nil
}

// ElasticityFor maps a -elastic mode flag to the config pair.
func ElasticityFor(mode string) (*MigrationConfig, *ReplicaSetConfig, error) {
	switch mode {
	case "", "none", "vertical":
		return nil, nil, nil
	case "migrate":
		m := DefaultMigrationConfig()
		return &m, nil, nil
	case "replicas":
		r := DefaultReplicaSetConfig()
		return nil, &r, nil
	case "hybrid":
		m := DefaultMigrationConfig()
		r := DefaultReplicaSetConfig()
		return &m, &r, nil
	}
	return nil, nil, fmt.Errorf("cluster: unknown elasticity mode %q (want none, migrate, replicas or hybrid)", mode)
}

// elasticMode names the configured elasticity combination (the armed-
// checkpoint compatibility signature, like Policy).
func (cfg *FleetConfig) elasticMode() string {
	switch {
	case cfg.Migration != nil && cfg.ReplicaSet != nil:
		return "hybrid"
	case cfg.Migration != nil:
		return "migrate"
	case cfg.ReplicaSet != nil:
		return "replicas"
	}
	return ""
}

// replicaSeedSalt derives replica VM seeds from their creation index,
// on a stream disjoint from the trace-arrival seeds.
const replicaSeedSalt = 0x7f4a7c159e3779b9

// migrationOp is one in-flight pre-copy migration: started at a pass
// boundary, committed (stop-and-copy) at the first boundary past its
// modeled copy duration.
type migrationOp struct {
	vm       string
	src, dst int
	vcpus    int
	commitAt int // boundary index of the stop-and-copy cutover
	downtime sim.Time
	bytes    int64
	rounds   int
}

// elasticity is the per-run control-plane state of the migration and
// replica-set passes. All methods run on the control-plane goroutine
// while every host engine is parked at an epoch boundary.
type elasticity struct {
	cfg  *FleetConfig
	plan *epochPlan
	rt   *fleetRouter
	res  *FleetResult

	mig   *MigrationConfig
	rsCfg *ReplicaSetConfig
	// rs is always built: trace VMs carrying service= register as
	// anchor members even in migration-only mode, so service identity
	// follows a VM across migrations.
	rs *replicaset.Controller

	hosts []*Host

	// rate is the latest trace-driven offered rate per live VM (the
	// service demand signal for fan-out); dirty holds trace dirty-rate
	// hints; vcpus the provisioned size per live VM; departAt each
	// trace VM's scheduled departure (static, from the plan).
	rate     map[string]float64
	dirty    map[string]float64
	vcpus    map[string]int
	departAt map[string]sim.Time

	migrating  map[string]bool
	inflight   []*migrationOp
	replicaSeq int
	// hostMigs counts committed out-migrations per source host
	// (vscale_host_migrations_total).
	hostMigs []int

	// Reusable pickHost inputs for boundary-time (probe-free) placement.
	noProbes  [][]core.VMStat
	zeroExtra []int
	scratch   []core.VMStat
	statsBuf  [][]core.VMStat
	commBuf   []int
}

// newElasticity builds the layer when either config is present; the
// configs were validated by prepareFleet.
func newElasticity(cfg *FleetConfig, plan *epochPlan, rt *fleetRouter, res *FleetResult) *elasticity {
	if cfg.Migration == nil && cfg.ReplicaSet == nil {
		return nil
	}
	rsCfg := replicaset.DefaultConfig()
	if cfg.ReplicaSet != nil {
		rsCfg = cfg.ReplicaSet.Controller
	}
	el := &elasticity{
		cfg:       cfg,
		plan:      plan,
		rt:        rt,
		res:       res,
		mig:       cfg.Migration,
		rsCfg:     cfg.ReplicaSet,
		rs:        replicaset.New(rsCfg),
		rate:      map[string]float64{},
		dirty:     map[string]float64{},
		vcpus:     map[string]int{},
		departAt:  map[string]sim.Time{},
		migrating: map[string]bool{},
		noProbes:  make([][]core.VMStat, cfg.Hosts),
		zeroExtra: make([]int, cfg.Hosts),
		statsBuf:  make([][]core.VMStat, cfg.Hosts),
		commBuf:   make([]int, cfg.Hosts),
	}
	for _, evs := range plan.events {
		for _, ev := range evs {
			if ev.Kind == EventDepart {
				el.departAt[ev.VM] = ev.At
			}
		}
	}
	return el
}

// attachHosts binds the built (or restored) hosts.
func (el *elasticity) attachHosts(hosts []*Host) {
	el.hosts = hosts
	if el.hostMigs == nil {
		el.hostMigs = make([]int, len(hosts))
	}
}

// mode names the configured combination.
func (el *elasticity) mode() string {
	switch {
	case el.mig != nil && el.rsCfg != nil:
		return "hybrid"
	case el.mig != nil:
		return "migrate"
	}
	return "replicas"
}

// observeEvent is the router's bookkeeping hook, called as each churn
// event is routed (identically in both executors): it keeps the
// rate/size maps current and registers service anchors.
func (el *elasticity) observeEvent(ev Event, host, k int) {
	switch ev.Kind {
	case EventArrive:
		el.rate[ev.VM] = ev.RateRPS
		el.vcpus[ev.VM] = ev.VCPUs
		if ev.DirtyBps > 0 {
			el.dirty[ev.VM] = ev.DirtyBps
		}
		if ev.Service != "" {
			el.rs.AddMember(ev.Service, ev.VM, host, k, true)
		}
	case EventPhase:
		el.rate[ev.VM] = ev.RateRPS
	case EventDepart:
		delete(el.rate, ev.VM)
		delete(el.vcpus, ev.VM)
		el.rs.RetireMember(ev.VM)
	}
}

// pass is one elasticity boundary pass at boundary b (time now =
// plan.ends[b-1]): commit due migrations, then — before the next epoch
// only — promote replica readiness, reconcile each service against its
// windowed attainment, start new migrations, and fan the service load
// out across ready replicas. The boundary observations are cached on
// each host so the policy pass that follows consumes the same window.
func (el *elasticity) pass(b int, now sim.Time) {
	epoch := now - el.plan.starts[b-1]
	obs := make([][]VMObservation, len(el.hosts))
	for i, h := range el.hosts {
		obs[i] = h.EpochObservations(epoch)
	}
	el.commit(b, now)
	if b < el.plan.epochs() {
		el.rs.Tick(b)
		if el.rsCfg != nil {
			el.reconcile(b, now, obs)
		}
		if el.mig != nil && b%el.mig.Every == 0 {
			el.start(b, now)
		}
		el.fanOut()
	}
}

// commit performs the stop-and-copy cutover of every migration due at
// boundary b: the VM retires on the source, an identical VM boots on
// the destination after the modeled downtime, ownership and the
// placement probe log move with it.
func (el *elasticity) commit(b int, now sim.Time) {
	if len(el.inflight) == 0 {
		return
	}
	keep := el.inflight[:0]
	for _, op := range el.inflight {
		if op.commitAt != b {
			keep = append(keep, op)
			continue
		}
		delete(el.migrating, op.vm)
		vcpus, active, seed, ok := el.hosts[op.src].MigrateOut(op.vm)
		if !ok {
			el.res.MigrationsAborted++
			continue
		}
		el.hosts[op.dst].ScheduleMigrateIn(op.vm, vcpus, active, el.desiredRate(op.vm), seed, now+op.downtime)
		el.rt.owner[op.vm] = op.dst
		el.rt.recordPlacement(op.dst, b, vcpus)
		el.rs.SetHost(op.vm, op.dst)
		el.hostMigs[op.src]++
		el.res.Migrations++
		el.res.MigrationDowntime += op.downtime
		el.res.MigrationBytes += op.bytes
	}
	el.inflight = keep
	el.applyThrottles()
}

// applyThrottles sets each host's guest-link scale from its current
// outbound-migration load.
func (el *elasticity) applyThrottles() {
	if el.mig == nil {
		return
	}
	for i, h := range el.hosts {
		scale := 1.0
		for _, op := range el.inflight {
			if op.src == i {
				scale = el.mig.GuestLinkShare
				break
			}
		}
		h.SetLinkScale(scale)
	}
}

// liveState assembles the boundary-exact fleet state pickHost needs:
// per-host VM stats (read-only, from the deltas the boundary Snapshot
// just computed) and committed vCPUs.
func (el *elasticity) liveState() ([][]core.VMStat, []int) {
	for i, h := range el.hosts {
		el.statsBuf[i] = h.statsAt()
		el.commBuf[i] = h.CommittedVCPUs()
	}
	return el.statsBuf, el.commBuf
}

// anchorRate sums the trace-driven offered rates of a service's live
// anchors — the service's demand, however many replicas carry it.
func (el *elasticity) anchorRate(s *replicaset.Service) float64 {
	total := 0.0
	for i := range s.Members {
		m := &s.Members[i]
		if m.Anchor && !m.Retired {
			total += el.rate[m.VM]
		}
	}
	return total
}

// desiredRate is the offered rate a VM should run at right now: its
// fan-out share when it belongs to a service, its trace rate otherwise.
func (el *elasticity) desiredRate(vm string) float64 {
	if svc := el.rs.ServiceOf(vm); svc != "" {
		s := el.rs.Lookup(svc)
		m := el.rs.Member(vm)
		if m != nil && !m.Ready {
			return 0
		}
		_, ready, _ := s.Live()
		return loadgen.Share(el.anchorRate(s), ready)
	}
	return el.rate[vm]
}

// reconcile runs one replica-set controller step per service, in
// registration order: score the boundary window's SLO attainment over
// the service's members, then scale out (placing a new replica with
// Algorithm 1 under the commit cap) or scale in (retiring the youngest
// non-anchor replica).
func (el *elasticity) reconcile(b int, now sim.Time, obs [][]VMObservation) {
	window := map[string]*VMObservation{}
	for i := range obs {
		for j := range obs[i] {
			o := &obs[i][j]
			window[o.VM] = o
		}
	}
	for _, s := range el.rs.Services() {
		var offered uint64
		var ok float64
		for i := range s.Members {
			m := &s.Members[i]
			if m.Retired {
				continue
			}
			if o := window[m.VM]; o != nil {
				offered += o.Offered
				// The window carries the per-VM attainment ratio; weight it
				// back by the VM's offered count to pool across members.
				ok += o.Attainment * float64(o.Offered)
			}
		}
		attainment := 1.0
		if offered > 0 {
			attainment = ok / float64(offered)
		}
		switch el.rs.Decide(s.Name, b, attainment, offered) {
		case +1:
			el.scaleUp(s, b)
		case -1:
			el.scaleDown(s, b)
		}
	}
}

// scaleUp places and boots one new replica for the service, or records
// a ReplicaFailure condition when no host can admit it under the
// commit cap.
func (el *elasticity) scaleUp(s *replicaset.Service, b int) {
	vcpus := 0
	for i := range s.Members {
		m := &s.Members[i]
		if m.Anchor && !m.Retired {
			vcpus = el.vcpus[m.VM]
			break
		}
	}
	if vcpus <= 0 {
		return
	}
	stats, committed := el.liveState()
	h := pickHost(el.cfg.PCPUsPerHost, el.cfg.Epoch, stats, el.noProbes, committed, el.zeroExtra, vcpus, &el.scratch)
	if float64(committed[h]+vcpus) > el.rsCfg.MaxCommitFactor*float64(el.cfg.PCPUsPerHost) {
		el.rs.Fail(s.Name, b, replicaset.ReasonFailureCreate,
			fmt.Sprintf("no host admits %d vCPUs under the commit cap", vcpus))
		el.res.ReplicaFailures++
		return
	}
	name := fmt.Sprintf("%s.r%d", s.Name, el.replicaSeq)
	seed := runner.DeriveSeed(el.cfg.Seed^replicaSeedSalt, el.replicaSeq)
	el.replicaSeq++
	if err := el.hosts[h].addVM(name, vcpus, 0, seed); err != nil {
		el.hosts[h].fail(err)
		return
	}
	el.vcpus[name] = vcpus
	el.rt.owner[name] = h
	el.rt.recordPlacement(h, b, vcpus)
	el.rs.AddMember(s.Name, name, h, b, false)
	el.rs.RecordScale(s.Name, b)
	el.res.ReplicasCreated++
}

// scaleDown retires the youngest ready non-anchor replica that is not
// mid-migration.
func (el *elasticity) scaleDown(s *replicaset.Service, b int) {
	for i := len(s.Members) - 1; i >= 0; i-- {
		m := &s.Members[i]
		if m.Anchor || m.Retired || !m.Ready || el.migrating[m.VM] {
			continue
		}
		if !el.hosts[m.Host].HasLiveVM(m.VM) {
			continue // still landing from a migration cutover
		}
		el.hosts[m.Host].removeVM(m.VM)
		el.rs.RetireMember(m.VM)
		delete(el.rt.owner, m.VM)
		delete(el.vcpus, m.VM)
		el.rs.RecordScale(s.Name, b)
		el.res.ReplicasRetired++
		return
	}
}

// start begins up to MaxPerPass pre-copy migrations: from the most
// committed host with no outbound migration, the first admission-order
// VM whose pre-copy plan converges on a commit boundary it will still
// be alive at, toward the host Algorithm 1 picks — provided the
// committed-vCPU gap clears the trigger and the destination never
// hosted a VM of that name.
func (el *elasticity) start(b int, now sim.Time) {
	for n := 0; n < el.mig.MaxPerPass; n++ {
		if !el.startOne(b, now) {
			return
		}
	}
}

func (el *elasticity) startOne(b int, now sim.Time) bool {
	stats, committed := el.liveState()
	src := -1
	for i := range el.hosts {
		busy := false
		for _, op := range el.inflight {
			if op.src == i {
				busy = true
				break
			}
		}
		if busy {
			continue
		}
		if src < 0 || committed[i] > committed[src] {
			src = i
		}
	}
	if src < 0 || committed[src] == 0 {
		return false
	}
	sh := el.hosts[src]
	for _, name := range sh.order {
		vm := sh.vms[name]
		if vm.retired || el.migrating[name] {
			continue
		}
		plan := migration.PreCopy(el.mig.Model, int64(vm.vcpus)*el.mig.Model.MemBytesPerVCPU, el.dirtyRate(vm))
		cb, ok := el.commitBoundary(b, now+plan.Duration)
		if !ok {
			continue
		}
		if dep, hasDep := el.departAt[name]; hasDep && dep < el.plan.ends[cb-1] {
			continue // would depart from the source before the cutover
		}
		dst := pickHost(el.cfg.PCPUsPerHost, el.cfg.Epoch, stats, el.noProbes, committed, el.zeroExtra, vm.vcpus, &el.scratch)
		if dst == src || committed[src]-committed[dst] < el.mig.TriggerVCPUs {
			return false // fleet already balanced for this size
		}
		if _, hosted := el.hosts[dst].vms[name]; hosted {
			continue // destination once hosted this name; domains are immutable
		}
		downtime := plan.Downtime
		if max := el.cfg.Epoch / 2; downtime > max {
			downtime = max
		}
		el.migrating[name] = true
		el.inflight = append(el.inflight, &migrationOp{
			vm: name, src: src, dst: dst, vcpus: vm.vcpus,
			commitAt: cb, downtime: downtime, bytes: plan.Bytes, rounds: plan.Rounds,
		})
		el.applyThrottles()
		return true
	}
	return false
}

// dirtyRate derives a VM's effective dirtying rate from its consumed
// vCPU time over the boundary epoch: an idle VM dirties almost
// nothing, a saturated one dirties at its full hinted rate.
func (el *elasticity) dirtyRate(vm *hostVM) float64 {
	base := el.mig.DirtyBpsDefault
	if d, ok := el.dirty[vm.name]; ok {
		base = d
	}
	busy := float64(vm.epochConsumed) / (float64(el.cfg.Epoch) * float64(vm.vcpus))
	if busy > 1 {
		busy = 1
	}
	if busy < 0 {
		busy = 0
	}
	return base * busy
}

// commitBoundary returns the first boundary at or past readyAt that
// can host a cutover: strictly before the final boundary, so the
// destination VM boots inside the churn horizon.
func (el *elasticity) commitBoundary(b int, readyAt sim.Time) (int, bool) {
	for cb := b + 1; cb < el.plan.epochs(); cb++ {
		if el.plan.ends[cb-1] >= readyAt {
			return cb, true
		}
	}
	return 0, false
}

// fanOut drives each service's demand across its ready members: every
// ready replica (anchors included) runs at an equal share of the
// anchors' trace-driven rate. VMs still landing from a migration
// cutover are skipped and self-heal at the next boundary; VMs outside
// any service keep their trace rates untouched.
func (el *elasticity) fanOut() {
	for _, s := range el.rs.Services() {
		_, ready, _ := s.Live()
		share := loadgen.Share(el.anchorRate(s), ready)
		for i := range s.Members {
			m := &s.Members[i]
			if m.Retired || !m.Ready {
				continue
			}
			el.hosts[m.Host].SetVMRate(m.VM, share)
		}
	}
}

// MigrationOpCheckpoint is one in-flight migration in a snapshot.
type MigrationOpCheckpoint struct {
	VM       string   `json:"vm"`
	Src      int      `json:"src"`
	Dst      int      `json:"dst"`
	VCPUs    int      `json:"vcpus"`
	CommitAt int      `json:"commit_at"`
	Downtime sim.Time `json:"downtime"`
	Bytes    int64    `json:"bytes"`
	Rounds   int      `json:"rounds"`
}

// ElasticityCheckpoint is the layer's control state in a fleet
// snapshot: bookkeeping maps, in-flight migrations, counters, and the
// replica-set controller state.
type ElasticityCheckpoint struct {
	ReplicaSeq        int                     `json:"replica_seq"`
	Rate              map[string]float64      `json:"rate,omitempty"`
	Dirty             map[string]float64      `json:"dirty,omitempty"`
	VCPUs             map[string]int          `json:"vcpus,omitempty"`
	Inflight          []MigrationOpCheckpoint `json:"inflight,omitempty"`
	HostMigrations    []int                   `json:"host_migrations"`
	Migrations        int                     `json:"migrations"`
	MigrationsAborted int                     `json:"migrations_aborted"`
	MigrationDowntime sim.Time                `json:"migration_downtime"`
	MigrationBytes    int64                   `json:"migration_bytes"`
	ReplicasCreated   int                     `json:"replicas_created"`
	ReplicasRetired   int                     `json:"replicas_retired"`
	ReplicaFailures   int                     `json:"replica_failures"`
	ReplicaSet        json.RawMessage         `json:"replicaset"`
}

// capture exports the layer's state. In-flight migrations are pure
// control-plane state between their start and commit boundaries (the
// cutover event is only scheduled at commit), so a quiesced capture
// can carry them.
func (el *elasticity) capture() (json.RawMessage, error) {
	rsRaw, err := el.rs.CheckpointState()
	if err != nil {
		return nil, err
	}
	cp := ElasticityCheckpoint{
		ReplicaSeq:        el.replicaSeq,
		Rate:              el.rate,
		Dirty:             el.dirty,
		VCPUs:             el.vcpus,
		HostMigrations:    el.hostMigs,
		Migrations:        el.res.Migrations,
		MigrationsAborted: el.res.MigrationsAborted,
		MigrationDowntime: el.res.MigrationDowntime,
		MigrationBytes:    el.res.MigrationBytes,
		ReplicasCreated:   el.res.ReplicasCreated,
		ReplicasRetired:   el.res.ReplicasRetired,
		ReplicaFailures:   el.res.ReplicaFailures,
		ReplicaSet:        rsRaw,
	}
	for _, op := range el.inflight {
		cp.Inflight = append(cp.Inflight, MigrationOpCheckpoint{
			VM: op.vm, Src: op.src, Dst: op.dst, VCPUs: op.vcpus,
			CommitAt: op.commitAt, Downtime: op.downtime, Bytes: op.bytes, Rounds: op.rounds,
		})
	}
	return json.Marshal(cp)
}

// restore overwrites the layer's state from a capture (hosts must be
// attached first) and reapplies the source-link throttles the
// in-flight migrations held at capture time.
func (el *elasticity) restore(raw json.RawMessage) error {
	var cp ElasticityCheckpoint
	if err := json.Unmarshal(raw, &cp); err != nil {
		return fmt.Errorf("cluster: parsing elasticity state: %w", err)
	}
	if len(cp.HostMigrations) != len(el.hosts) {
		return fmt.Errorf("cluster: elasticity state covers %d hosts, fleet has %d", len(cp.HostMigrations), len(el.hosts))
	}
	if err := el.rs.RestoreState(cp.ReplicaSet); err != nil {
		return err
	}
	el.replicaSeq = cp.ReplicaSeq
	el.rate = map[string]float64{}
	for k, v := range cp.Rate {
		el.rate[k] = v
	}
	el.dirty = map[string]float64{}
	for k, v := range cp.Dirty {
		el.dirty[k] = v
	}
	el.vcpus = map[string]int{}
	for k, v := range cp.VCPUs {
		el.vcpus[k] = v
	}
	copy(el.hostMigs, cp.HostMigrations)
	el.res.Migrations = cp.Migrations
	el.res.MigrationsAborted = cp.MigrationsAborted
	el.res.MigrationDowntime = cp.MigrationDowntime
	el.res.MigrationBytes = cp.MigrationBytes
	el.res.ReplicasCreated = cp.ReplicasCreated
	el.res.ReplicasRetired = cp.ReplicasRetired
	el.res.ReplicaFailures = cp.ReplicaFailures
	el.inflight = nil
	el.migrating = map[string]bool{}
	for _, op := range cp.Inflight {
		el.inflight = append(el.inflight, &migrationOp{
			vm: op.VM, src: op.Src, dst: op.Dst, vcpus: op.VCPUs,
			commitAt: op.CommitAt, downtime: op.Downtime, bytes: op.Bytes, rounds: op.Rounds,
		})
		el.migrating[op.VM] = true
	}
	el.applyThrottles()
	return nil
}
