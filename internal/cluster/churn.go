// Package cluster simulates a fleet of independent Xen hosts under VM
// churn: a seeded lifecycle trace arrives, departs and re-phases VMs; a
// placement control plane admits each arrival to the host where the
// paper's Algorithm 1 predicts the most CPU extendability; and every VM
// serves open-loop httpd load whose per-request latency feeds fleet-wide
// SLO accounting. Each host owns a private sim.Engine, so hosts fan out
// across the runner worker pool while the whole fleet stays
// deterministic for a fixed seed.
package cluster

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"vscale/internal/sim"
)

// EventKind classifies one churn-trace event.
type EventKind int

// Churn event kinds, in the order they may occur for one VM.
const (
	// EventArrive creates a VM (vCPU count + initial request rate).
	EventArrive EventKind = iota
	// EventPhase changes a VM's offered request rate (workload phase).
	EventPhase
	// EventDepart retires a VM.
	EventDepart
)

func (k EventKind) String() string {
	switch k {
	case EventArrive:
		return "arrive"
	case EventPhase:
		return "phase"
	case EventDepart:
		return "depart"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one entry of a churn trace.
type Event struct {
	At      sim.Time
	Kind    EventKind
	VM      string
	VCPUs   int     // arrive only
	RateRPS float64 // arrive and phase
	// Service groups VMs for horizontal autoscaling (arrive only,
	// optional): VMs sharing a service name form one ReplicaSet-style
	// scaling group. Empty means the VM is its own singleton service.
	Service string
	// DirtyBps is the VM's dirty-page rate hint at full utilisation in
	// bytes/s (arrive only, optional): the live-migration planner scales
	// it by observed CPU consumption. Zero means the fleet default.
	DirtyBps float64
}

// TraceConfig parameterises GenTrace.
type TraceConfig struct {
	// Horizon bounds the trace: no event is emitted at or past it.
	Horizon sim.Time
	// InitialVMs arrive staggered shortly after t=0.
	InitialVMs int
	// ArrivalEvery is the mean inter-arrival time of later VMs
	// (exponential); zero disables later arrivals.
	ArrivalEvery sim.Time
	// LifetimeMin/Max bound each VM's uniform lifetime. A VM whose
	// departure would land past the horizon simply lives to the end.
	LifetimeMin, LifetimeMax sim.Time
	// PhaseEvery is the mean time between workload-phase changes per VM
	// (exponential); zero disables phase changes.
	PhaseEvery sim.Time
	// VCPUChoices and RateChoices are drawn uniformly per arrival/phase.
	VCPUChoices []int
	RateChoices []float64
	// Services, when non-empty, assigns each arriving VM a service
	// drawn uniformly from this list (see Event.Service). Empty keeps
	// every VM a singleton and the trace bytes identical to older
	// configs.
	Services []string
	// DirtyBpsChoices, when non-empty, draws each arriving VM's
	// dirty-page rate hint uniformly (see Event.DirtyBps).
	DirtyBpsChoices []float64
}

// DefaultTraceConfig returns a churn mix sized for the cluster
// experiment: a few initial VMs plus steady arrivals, minute-scale
// horizon compressed to seconds for simulation.
func DefaultTraceConfig(horizon sim.Time) TraceConfig {
	return TraceConfig{
		Horizon:      horizon,
		InitialVMs:   4,
		ArrivalEvery: horizon / 8,
		LifetimeMin:  horizon / 3,
		LifetimeMax:  horizon,
		PhaseEvery:   horizon / 6,
		VCPUChoices:  []int{2, 4},
		RateChoices:  []float64{500, 1500, 3000},
	}
}

// GenTrace produces a deterministic churn trace from cfg and seed:
// identical inputs yield identical traces, so every policy of an
// experiment can be driven by the same VM lifecycle.
func GenTrace(cfg TraceConfig, seed uint64) []Event {
	if cfg.Horizon <= 0 {
		panic("cluster: GenTrace needs a positive horizon")
	}
	if len(cfg.VCPUChoices) == 0 || len(cfg.RateChoices) == 0 {
		panic("cluster: GenTrace needs vCPU and rate choices")
	}
	if cfg.LifetimeMax < cfg.LifetimeMin {
		panic("cluster: LifetimeMax < LifetimeMin")
	}
	rand := sim.NewRand(seed)
	var events []Event
	seq := 0

	addVM := func(at sim.Time) {
		name := fmt.Sprintf("vm%d", seq)
		seq++
		ev := Event{
			At:      at,
			Kind:    EventArrive,
			VM:      name,
			VCPUs:   cfg.VCPUChoices[rand.Intn(len(cfg.VCPUChoices))],
			RateRPS: cfg.RateChoices[rand.Intn(len(cfg.RateChoices))],
		}
		// The elasticity hints draw only when configured, so configs
		// without them keep their exact historical traces.
		if len(cfg.Services) > 0 {
			ev.Service = cfg.Services[rand.Intn(len(cfg.Services))]
		}
		if len(cfg.DirtyBpsChoices) > 0 {
			ev.DirtyBps = cfg.DirtyBpsChoices[rand.Intn(len(cfg.DirtyBpsChoices))]
		}
		events = append(events, ev)
		life := cfg.LifetimeMax
		if cfg.LifetimeMax > cfg.LifetimeMin {
			life = rand.Duration(cfg.LifetimeMin, cfg.LifetimeMax)
		}
		depart := at + life
		if cfg.PhaseEvery > 0 {
			for pt := at + rand.ExpDuration(cfg.PhaseEvery); pt < depart && pt < cfg.Horizon; pt += rand.ExpDuration(cfg.PhaseEvery) {
				events = append(events, Event{
					At:      pt,
					Kind:    EventPhase,
					VM:      name,
					RateRPS: cfg.RateChoices[rand.Intn(len(cfg.RateChoices))],
				})
			}
		}
		if depart < cfg.Horizon {
			events = append(events, Event{At: depart, Kind: EventDepart, VM: name})
		}
	}

	for i := 0; i < cfg.InitialVMs; i++ {
		// Staggered boot so initial VMs do not all arrive at one instant.
		addVM(sim.Time(i+1) * 20 * sim.Millisecond)
	}
	if cfg.ArrivalEvery > 0 {
		for at := rand.ExpDuration(cfg.ArrivalEvery); at < cfg.Horizon; at += rand.ExpDuration(cfg.ArrivalEvery) {
			addVM(at)
		}
	}

	// Stable sort: ties keep generation order, which itself is
	// deterministic, so the trace is a pure function of (cfg, seed).
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events
}

// traceHeader identifies the text format of FormatTrace/ParseTrace.
const traceHeader = "# vscale-churn/v1"

// FormatTrace renders a trace in the vscale-churn/v1 text format:
//
//	# vscale-churn/v1
//	<at_ns> arrive <vm> vcpus=<n> rate=<rps> [service=<name>] [dirty=<bps>]
//	<at_ns> phase <vm> rate=<rps>
//	<at_ns> depart <vm>
//
// Timestamps are integral nanoseconds of virtual time (sim.Time raw
// units), so formatting and parsing round-trip exactly. The optional
// arrive fields carry the elasticity hints (service grouping for
// horizontal autoscaling, dirty-page rate for live migration); they are
// omitted when zero, so traces without them render byte-identically to
// the original format.
func FormatTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, traceHeader)
	for _, e := range events {
		ns := int64(e.At)
		switch e.Kind {
		case EventArrive:
			fmt.Fprintf(bw, "%d arrive %s vcpus=%d rate=%g", ns, e.VM, e.VCPUs, e.RateRPS)
			if e.Service != "" {
				fmt.Fprintf(bw, " service=%s", e.Service)
			}
			if e.DirtyBps != 0 {
				fmt.Fprintf(bw, " dirty=%g", e.DirtyBps)
			}
			fmt.Fprintln(bw)
		case EventPhase:
			fmt.Fprintf(bw, "%d phase %s rate=%g\n", ns, e.VM, e.RateRPS)
		case EventDepart:
			fmt.Fprintf(bw, "%d depart %s\n", ns, e.VM)
		default:
			return fmt.Errorf("cluster: cannot format event kind %v", e.Kind)
		}
	}
	return bw.Flush()
}

// ParseTrace reads the vscale-churn/v1 text format back into events.
// Beyond the per-line grammar it validates the trace semantically —
// timestamps non-negative and sorted, every VM arriving exactly once
// before any of its phase/depart events, positive vCPU counts and
// non-negative rates — so a malformed hand-edited trace fails here
// with a line number instead of corrupting a fleet run.
func ParseTrace(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	lineno := 0
	var events []Event
	arrived := map[string]bool{} // ever arrived (names key per-VM state downstream)
	alive := map[string]bool{}   // arrived and not yet departed
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if lineno == 1 {
			if line != traceHeader {
				return nil, fmt.Errorf("cluster: line 1: want header %q, got %q", traceHeader, line)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("cluster: line %d: too few fields", lineno)
		}
		ns, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("cluster: line %d: bad timestamp: %v", lineno, err)
		}
		if ns < 0 {
			return nil, fmt.Errorf("cluster: line %d: negative timestamp %d", lineno, ns)
		}
		if len(events) > 0 && sim.Time(ns) < events[len(events)-1].At {
			return nil, fmt.Errorf("cluster: line %d: timestamp %d before previous event at %d (trace not sorted)",
				lineno, ns, int64(events[len(events)-1].At))
		}
		ev := Event{At: sim.Time(ns), VM: fields[2]}
		kv := func(s, key string) (string, error) {
			if !strings.HasPrefix(s, key+"=") {
				return "", fmt.Errorf("cluster: line %d: want %s=..., got %q", lineno, key, s)
			}
			return strings.TrimPrefix(s, key+"="), nil
		}
		switch fields[1] {
		case "arrive":
			ev.Kind = EventArrive
			if len(fields) < 5 || len(fields) > 7 {
				return nil, fmt.Errorf("cluster: line %d: arrive needs vcpus= and rate= (plus optional service=/dirty=)", lineno)
			}
			vs, err := kv(fields[3], "vcpus")
			if err != nil {
				return nil, err
			}
			if ev.VCPUs, err = strconv.Atoi(vs); err != nil {
				return nil, fmt.Errorf("cluster: line %d: bad vcpus: %v", lineno, err)
			}
			if ev.VCPUs <= 0 {
				return nil, fmt.Errorf("cluster: line %d: VM %s arrives with %d vcpus", lineno, ev.VM, ev.VCPUs)
			}
			rs, err := kv(fields[4], "rate")
			if err != nil {
				return nil, err
			}
			if ev.RateRPS, err = strconv.ParseFloat(rs, 64); err != nil {
				return nil, fmt.Errorf("cluster: line %d: bad rate: %v", lineno, err)
			}
			// Optional elasticity hints, in any order, at most once each.
			for _, f := range fields[5:] {
				switch {
				case strings.HasPrefix(f, "service="):
					if ev.Service != "" {
						return nil, fmt.Errorf("cluster: line %d: duplicate service=", lineno)
					}
					ev.Service = strings.TrimPrefix(f, "service=")
					if ev.Service == "" {
						return nil, fmt.Errorf("cluster: line %d: empty service name", lineno)
					}
				case strings.HasPrefix(f, "dirty="):
					if ev.DirtyBps != 0 {
						return nil, fmt.Errorf("cluster: line %d: duplicate dirty=", lineno)
					}
					if ev.DirtyBps, err = strconv.ParseFloat(strings.TrimPrefix(f, "dirty="), 64); err != nil {
						return nil, fmt.Errorf("cluster: line %d: bad dirty rate: %v", lineno, err)
					}
					if ev.DirtyBps <= 0 {
						return nil, fmt.Errorf("cluster: line %d: dirty rate must be positive, got %g", lineno, ev.DirtyBps)
					}
				default:
					return nil, fmt.Errorf("cluster: line %d: unknown arrive field %q (want service= or dirty=)", lineno, f)
				}
			}
			if arrived[ev.VM] {
				return nil, fmt.Errorf("cluster: line %d: VM %s arrives twice", lineno, ev.VM)
			}
			arrived[ev.VM] = true
			alive[ev.VM] = true
		case "phase":
			ev.Kind = EventPhase
			if len(fields) != 4 {
				return nil, fmt.Errorf("cluster: line %d: phase needs rate=", lineno)
			}
			rs, err := kv(fields[3], "rate")
			if err != nil {
				return nil, err
			}
			if ev.RateRPS, err = strconv.ParseFloat(rs, 64); err != nil {
				return nil, fmt.Errorf("cluster: line %d: bad rate: %v", lineno, err)
			}
			if !alive[ev.VM] {
				return nil, fmt.Errorf("cluster: line %d: phase for VM %s, which has not arrived", lineno, ev.VM)
			}
		case "depart":
			ev.Kind = EventDepart
			if len(fields) != 3 {
				return nil, fmt.Errorf("cluster: line %d: depart takes no arguments", lineno)
			}
			if !alive[ev.VM] {
				return nil, fmt.Errorf("cluster: line %d: depart for VM %s, which has not arrived", lineno, ev.VM)
			}
			delete(alive, ev.VM)
		default:
			return nil, fmt.Errorf("cluster: line %d: unknown event %q", lineno, fields[1])
		}
		if ev.RateRPS < 0 {
			return nil, fmt.Errorf("cluster: line %d: negative rate %g", lineno, ev.RateRPS)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if lineno == 0 {
		return nil, fmt.Errorf("cluster: empty trace (missing %q header)", traceHeader)
	}
	return events, nil
}
