package cluster

import (
	"strconv"

	"vscale/internal/loadgen"
	"vscale/internal/metrics"
	"vscale/internal/sim"
	"vscale/internal/telemetry"
)

// collectTelemetry samples every telemetry source of a running fleet at
// one collection-epoch boundary and closes the collector's epoch. It is
// called from the control plane while every host engine is parked at
// the boundary, so it reads state that nothing else is mutating, and it
// reads only — no RNG draws, no accounting syncs, no engine events —
// which is what keeps the simulation byte-identical with telemetry on
// or off. All walks follow the fixed host order and each host's VM
// admission order, so the rendered snapshot (and the JSONL stream) is a
// deterministic function of the seed.
// rt supplies the run-lifetime scratch histogram (the reusable
// fleet-histogram merge target, reset here) and, when the elasticity
// layer is on, its migration and replica-set gauges.
func collectTelemetry(col *telemetry.Collector, now sim.Time, hosts []*Host, res *FleetResult, slo sim.Time, rt *fleetRouter) {
	if col == nil {
		return
	}
	var scratch *metrics.Histogram
	if rt != nil {
		scratch = rt.telHist
	}
	reg := col.Registry()

	reg.GaugeSeries("vscale_sim_seconds",
		"Virtual time of the fleet simulation at this collection epoch.").Set(now.Seconds())
	reg.GaugeSeries("vscale_telemetry_epoch",
		"Collection epoch index within this fleet run.").Set(float64(col.Epoch()))

	// Fleet-wide churn counters come from the control plane's own
	// accounting.
	reg.CounterSeries("vscale_fleet_vms_placed_total",
		"VM arrivals admitted by the placement controller.").Set(float64(res.Placed))
	reg.CounterSeries("vscale_fleet_vms_departed_total",
		"VM departures processed.").Set(float64(res.Departed))
	reg.CounterSeries("vscale_fleet_phase_changes_total",
		"Workload phase (request-rate) changes applied.").Set(float64(res.PhaseChanges))

	fleetHist := scratch
	if fleetHist == nil {
		fleetHist = metrics.NewHistogram(metrics.DefaultLatencyBuckets())
	} else {
		fleetHist.Reset()
	}
	var load loadgen.Stats
	var reconfigs uint64
	for _, h := range hosts {
		host := strconv.Itoa(h.id)

		reg.GaugeSeries("vscale_host_util_ratio",
			"pCPU busy fraction of the host since boot.", "host", host).Set(h.Util())
		reg.GaugeSeries("vscale_host_active_vms",
			"Non-retired VMs resident on the host.", "host", host).Set(float64(h.ActiveVMs()))
		reg.GaugeSeries("vscale_host_committed_vcpus",
			"vCPUs provisioned across the host's non-retired VMs.", "host", host).Set(float64(h.CommittedVCPUs()))
		reg.CounterSeries("vscale_host_idle_seconds_total",
			"Summed pCPU idle time of the host.", "host", host).Set(h.pool.Idle().Seconds())
		reg.CounterSeries("vscale_host_sched_ticks_total",
			"vScale extendability recalculations on the host.", "host", host).Set(float64(h.pool.VScaleTicks))
		reg.CounterSeries("vscale_host_engine_events_total",
			"Simulation events processed by the host's engine.", "host", host).Set(float64(h.eng.Processed))
		reg.CounterSeries("vscale_host_provisioned_vcpu_seconds_total",
			"Provisioned cost of the host's VMs: integral of active vCPUs over each VM's lifetime.",
			"host", host).Set(h.ProvisionedVCPUSeconds())
		if rt != nil && rt.el != nil {
			reg.CounterSeries("vscale_host_migrations_total",
				"Stop-and-copy cutovers committed with this host as the source.",
				"host", host).Set(float64(rt.el.hostMigs[h.id]))
		}

		var switches uint64
		runq := 0
		for _, p := range h.pool.PCPUs() {
			switches += p.Switches
			runq += p.QueueLen()
		}
		reg.CounterSeries("vscale_host_context_switches_total",
			"vCPU context switches across the host's pCPUs.", "host", host).Set(float64(switches))
		reg.GaugeSeries("vscale_host_runq_len",
			"Runnable vCPUs queued across the host's pCPUs.", "host", host).Set(float64(runq))

		// Always-exact schedstats, when the fleet runs with tracers: the
		// dwell/LHP/wakeup aggregates the paper's figures are built on,
		// folded per host (sums and maxima only, so the random map walk
		// inside Snapshot cannot leak nondeterminism).
		if h.cfg.Tracer != nil {
			snap := h.cfg.Tracer.Snapshot(now)
			var wake, lhp, steals, ipis uint64
			var lhpTime sim.Time
			for _, v := range snap.VCPUs {
				wake += v.WakeCount
				lhp += v.LHPCount
				lhpTime += v.LHPTotal
				steals += v.Steals
				ipis += v.IPICount
			}
			reg.CounterSeries("vscale_host_wakeups_total",
				"RUNNABLE-to-RUN transitions across the host's vCPUs.", "host", host).Set(float64(wake))
			reg.CounterSeries("vscale_host_lhp_total",
				"Lock-holder preemption incidents on the host.", "host", host).Set(float64(lhp))
			reg.CounterSeries("vscale_host_lhp_seconds_total",
				"Total time vCPUs spent descheduled while holding a lock.", "host", host).Set(lhpTime.Seconds())
			reg.CounterSeries("vscale_host_steals_total",
				"Runqueue steals to idle pCPUs on the host.", "host", host).Set(float64(steals))
			reg.CounterSeries("vscale_host_ipis_total",
				"Inter-vCPU IPIs delivered on the host.", "host", host).Set(float64(ipis))
		}

		for _, name := range h.order {
			vm := h.vms[name]
			labels := []string{"host", host, "vm", name}
			if vm.retired {
				// A departed VM's series freeze at their last values, like
				// a real exporter whose target went away mid-scrape cycle;
				// its terminal load still counts into the fleet aggregate.
				st := vm.gen.Stats()
				load.Add(st)
				_ = fleetHist.Merge(vm.gen.Hist())
				_, decisions := vm.k.DaemonStats()
				reconfigs += decisions + vm.policyOps
				continue
			}

			reg.GaugeSeries("vscale_vm_vcpus",
				"vCPUs provisioned to the VM.", labels...).Set(float64(vm.vcpus))
			reg.GaugeSeries("vscale_vm_active_vcpus",
				"vCPUs the guest balancer currently keeps unfrozen.", labels...).Set(float64(vm.k.ActiveVCPUs()))
			reg.CounterSeries("vscale_vm_cpu_seconds_total",
				"CPU time consumed by the VM's vCPUs.", labels...).Set(vm.dom.TotalRunTime.Seconds())
			reg.CounterSeries("vscale_vm_wait_seconds_total",
				"Scheduling delay accumulated by the VM's vCPUs.", labels...).Set(vm.dom.TotalWaitTime.Seconds())
			reg.GaugeSeries("vscale_vm_offered_rps",
				"Current offered request rate of the VM's load generator.", labels...).Set(vm.gen.Rate())

			var credits sim.Time
			for i := 0; i < vm.dom.VCPUCount(); i++ {
				credits += vm.dom.VCPU(i).Credits()
			}
			reg.GaugeSeries("vscale_vm_credit_ns",
				"Summed credit-scheduler balance of the VM's vCPUs, virtual ns.", labels...).Set(float64(credits))

			_, decisions := vm.k.DaemonStats()
			reconfigs += decisions + vm.policyOps
			reg.CounterSeries("vscale_vm_reconfigs_total",
				"Scaling actions taken by the VM's daemon or the control-plane policy.",
				labels...).Set(float64(decisions + vm.policyOps))
			reg.CounterSeries("vscale_vm_provisioned_vcpu_seconds_total",
				"Provisioned cost of the VM: integral of its active vCPU count since boot.",
				labels...).Set(vm.k.ActiveVCPUSeconds())

			st := vm.gen.Stats()
			load.Add(st)
			reg.CounterSeries("vscale_vm_offered_requests_total",
				"Requests injected into the VM by the open-loop generator.", labels...).Set(float64(st.Offered))
			reg.CounterSeries("vscale_vm_replies_total",
				"Replies delivered within the server timeout.", labels...).Set(float64(st.Replies))
			reg.CounterSeries("vscale_vm_errors_total",
				"Request timeouts and backlog drops.", labels...).Set(float64(st.Errors))
			reg.CounterSeries("vscale_vm_slo_ok_total",
				"Replies delivered within the SLO.", labels...).Set(float64(st.SLOOk))

			vmHist := vm.gen.Hist()
			_ = fleetHist.Merge(vmHist)
			reg.SummarySeries("vscale_vm_reply_latency_ms",
				"Reply latency of the VM's requests, milliseconds.", labels...).
				SetFromHistogram(vmHist, 0.5, 0.95, 0.99)
		}
	}

	reg.CounterSeries("vscale_fleet_offered_requests_total",
		"Requests offered across the whole fleet.").Set(float64(load.Offered))
	reg.CounterSeries("vscale_fleet_replies_total",
		"Replies delivered across the whole fleet.").Set(float64(load.Replies))
	reg.CounterSeries("vscale_fleet_errors_total",
		"Errors across the whole fleet.").Set(float64(load.Errors))
	reg.CounterSeries("vscale_fleet_reconfigs_total",
		"Scaling actions taken across every VM of the fleet.").Set(float64(reconfigs))
	var cost float64
	for _, h := range hosts {
		cost += h.ProvisionedVCPUSeconds()
	}
	reg.CounterSeries("vscale_fleet_provisioned_vcpu_seconds_total",
		"Provisioned cost across the whole fleet, vCPU-seconds.").Set(cost)
	reg.GaugeSeries("vscale_fleet_slo_attainment_ratio",
		"Fraction of offered requests answered within the SLO so far.").Set(load.Attainment())
	reg.GaugeSeries("vscale_fleet_slo_ms",
		"The per-request latency objective, milliseconds.").Set(slo.Milliseconds())
	reg.SummarySeries("vscale_fleet_reply_latency_ms",
		"Reply latency across the whole fleet, milliseconds.").
		SetFromHistogram(fleetHist, 0.5, 0.95, 0.99)

	if rt != nil && rt.el != nil {
		reg.CounterSeries("vscale_migration_downtime_seconds",
			"Modeled stop-and-copy downtime summed over committed migrations.").
			Set(res.MigrationDowntime.Seconds())
		for _, s := range rt.el.rs.Services() {
			_, ready, _ := s.Live()
			reg.GaugeSeries("vscale_service_ready_replicas",
				"Ready members (anchors and replicas) of the service.",
				"service", s.Name).Set(float64(ready))
		}
	}

	col.EpochDone(now)
}
