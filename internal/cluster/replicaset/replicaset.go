// Package replicaset implements a KubeVirt-VirtualMachineReplicaSet-
// style horizontal autoscaling controller for the cluster fleet: each
// service groups the VMs serving one workload (the churn trace's
// anchors plus any replicas the controller added), and the controller
// scales the replica count against windowed SLO attainment. Replicas
// pass a readiness gate before they count, scaling respects a
// per-service cooldown, and placement failures surface as
// ReplicaFailure conditions rather than errors — mirroring the
// ReplicaFailure/FailureCreate status conditions of the KubeVirt API.
//
// The controller is deliberately free of simulation state: the cluster
// control plane feeds it boundary indices and windowed observations and
// applies its decisions, so the package stays unit-testable and its
// state round-trips through a checkpoint as plain JSON.
package replicaset

import (
	"encoding/json"
	"fmt"
)

// Condition types and reasons, after the KubeVirt replica-set API.
const (
	// ConditionReplicaFailure marks a service whose last scale-out
	// could not be placed.
	ConditionReplicaFailure = "ReplicaFailure"
	// ReasonFailureCreate is the ReplicaFailure reason for a failed
	// replica creation (no host could admit the replica).
	ReasonFailureCreate = "FailureCreate"
)

// Config parameterises the controller.
type Config struct {
	// MaxReplicas caps a service's live member count, anchors included.
	MaxReplicas int
	// ScaleUpBelow: scale out when windowed attainment drops below this.
	ScaleUpBelow float64
	// ScaleDownAbove: scale in when windowed attainment exceeds this
	// (and a removable replica exists).
	ScaleDownAbove float64
	// ReadyAfter is the readiness gate: a replica born at boundary b
	// counts (receives load, votes in the windowed attainment) only
	// from boundary b+ReadyAfter on. Anchors are ready immediately.
	ReadyAfter int
	// Cooldown is the minimum number of boundaries between scaling
	// actions (or placement failures) of one service.
	Cooldown int
}

// DefaultConfig scales between 1x and 3x replicas on a 90%/99.5%
// attainment band, with a one-epoch readiness gate and a two-epoch
// cooldown.
func DefaultConfig() Config {
	return Config{
		MaxReplicas:    3,
		ScaleUpBelow:   0.90,
		ScaleDownAbove: 0.995,
		ReadyAfter:     1,
		Cooldown:       2,
	}
}

// Validate rejects configurations the controller cannot run with.
func (c Config) Validate() error {
	if c.MaxReplicas < 1 {
		return fmt.Errorf("replicaset: MaxReplicas must be >= 1, got %d", c.MaxReplicas)
	}
	if c.ScaleUpBelow < 0 || c.ScaleUpBelow > 1 || c.ScaleDownAbove < 0 || c.ScaleDownAbove > 1 {
		return fmt.Errorf("replicaset: attainment thresholds must be in [0,1]")
	}
	if c.ScaleUpBelow > c.ScaleDownAbove {
		return fmt.Errorf("replicaset: ScaleUpBelow %g > ScaleDownAbove %g would oscillate",
			c.ScaleUpBelow, c.ScaleDownAbove)
	}
	if c.ReadyAfter < 0 || c.Cooldown < 0 {
		return fmt.Errorf("replicaset: ReadyAfter/Cooldown must be >= 0")
	}
	return nil
}

// Member is one VM of a service: a trace anchor or a controller-made
// replica.
type Member struct {
	VM   string `json:"vm"`
	Host int    `json:"host"`
	// Born is the boundary the member was admitted at; readiness counts
	// from Born + ReadyAfter for replicas.
	Born int `json:"born"`
	// Anchor marks trace-owned members: the controller never retires
	// them, and a service whose anchors are all gone is wound down.
	Anchor  bool `json:"anchor"`
	Ready   bool `json:"ready"`
	Retired bool `json:"retired"`
}

// Condition is one status condition of a service, newest last.
type Condition struct {
	Type     string `json:"type"`
	Reason   string `json:"reason"`
	Message  string `json:"message"`
	Boundary int    `json:"boundary"`
}

// maxConditions bounds a service's retained condition history.
const maxConditions = 4

// Service is one scaling group: members in admission order plus the
// controller's per-service pacing state.
type Service struct {
	Name    string   `json:"name"`
	Members []Member `json:"members"`
	// CooldownUntil: no scaling action before this boundary.
	CooldownUntil int         `json:"cooldown_until"`
	Conditions    []Condition `json:"conditions,omitempty"`
}

// Controller holds every service in registration order (the iteration
// order of each reconcile pass, so decisions are deterministic).
type Controller struct {
	cfg      Config
	services []*Service
	byName   map[string]*Service
	bySvcVM  map[string]*Member // member VM name -> its entry
	svcOf    map[string]string  // member VM name -> service name
}

// New builds an empty controller. cfg must Validate.
func New(cfg Config) *Controller {
	return &Controller{
		cfg:     cfg,
		byName:  map[string]*Service{},
		bySvcVM: map[string]*Member{},
		svcOf:   map[string]string{},
	}
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// Services lists every service in registration order.
func (c *Controller) Services() []*Service { return c.services }

// Lookup returns the service registered under name, or nil.
func (c *Controller) Lookup(name string) *Service { return c.byName[name] }

// ServiceOf returns the service a member VM belongs to ("" if unknown).
func (c *Controller) ServiceOf(vm string) string { return c.svcOf[vm] }

// AddMember registers a VM under service (creating the service on
// first use). Anchors are ready immediately; replicas wait for the
// readiness gate. Adding an already-known VM is a no-op, which lets a
// checkpoint restore replay the trace prefix over restored state.
func (c *Controller) AddMember(service, vm string, host, born int, anchor bool) {
	if c.bySvcVM[vm] != nil {
		return
	}
	s := c.byName[service]
	if s == nil {
		s = &Service{Name: service}
		c.byName[service] = s
		c.services = append(c.services, s)
	}
	s.Members = append(s.Members, Member{
		VM: vm, Host: host, Born: born, Anchor: anchor, Ready: anchor,
	})
	c.svcOf[vm] = service
	c.reindex(s)
}

// reindex repairs bySvcVM pointers for s after a slice append may have
// moved its backing array.
func (c *Controller) reindex(s *Service) {
	for i := range s.Members {
		c.bySvcVM[s.Members[i].VM] = &s.Members[i]
	}
}

// RetireMember marks a member gone (anchor departed or replica
// removed). Unknown or already-retired VMs are no-ops.
func (c *Controller) RetireMember(vm string) {
	if m := c.bySvcVM[vm]; m != nil {
		m.Retired = true
	}
}

// SetHost records a member's new home after a live migration.
func (c *Controller) SetHost(vm string, host int) {
	if m := c.bySvcVM[vm]; m != nil {
		m.Host = host
	}
}

// Member returns the entry for vm (nil if unknown).
func (c *Controller) Member(vm string) *Member { return c.bySvcVM[vm] }

// Tick advances readiness at boundary b: replicas past their gate
// become ready.
func (c *Controller) Tick(b int) {
	for _, s := range c.services {
		for i := range s.Members {
			m := &s.Members[i]
			if !m.Ready && !m.Retired && b >= m.Born+c.cfg.ReadyAfter {
				m.Ready = true
			}
		}
	}
}

// Live counts a service's non-retired members; ready counts the subset
// past the readiness gate; anchors the live trace-owned ones.
func (s *Service) Live() (live, ready, anchors int) {
	for i := range s.Members {
		m := &s.Members[i]
		if m.Retired {
			continue
		}
		live++
		if m.Ready {
			ready++
		}
		if m.Anchor {
			anchors++
		}
	}
	return
}

// Decide returns the scaling verdict for service at boundary b given
// its windowed attainment over offered requests: +1 to add a replica,
// -1 to remove one, 0 to hold. The caller applies the action and
// reports back via RecordScale (success) or Fail (placement failure).
func (c *Controller) Decide(service string, b int, attainment float64, offered uint64) int {
	s := c.byName[service]
	if s == nil || b < s.CooldownUntil {
		return 0
	}
	live, ready, anchors := s.Live()
	if live == 0 {
		return 0
	}
	switch {
	case offered > 0 && attainment < c.cfg.ScaleUpBelow && live < c.cfg.MaxReplicas && ready == live:
		// Scale out — but only once the previous replica is ready, so a
		// slow warm-up cannot stampede the fleet.
		return +1
	case attainment > c.cfg.ScaleDownAbove && live > anchors && offered > 0:
		return -1
	}
	return 0
}

// RecordScale starts service's cooldown after an applied action.
func (c *Controller) RecordScale(service string, b int) {
	if s := c.byName[service]; s != nil {
		s.CooldownUntil = b + c.cfg.Cooldown
	}
}

// Fail records a ReplicaFailure condition (reason/message) against
// service and starts the cooldown, so a persistently unplaceable
// replica retries at the cooldown cadence instead of every boundary.
func (c *Controller) Fail(service string, b int, reason, message string) {
	s := c.byName[service]
	if s == nil {
		return
	}
	s.Conditions = append(s.Conditions, Condition{
		Type: ConditionReplicaFailure, Reason: reason, Message: message, Boundary: b,
	})
	if len(s.Conditions) > maxConditions {
		s.Conditions = s.Conditions[len(s.Conditions)-maxConditions:]
	}
	s.CooldownUntil = b + c.cfg.Cooldown
}

// state is the controller's checkpoint document.
type state struct {
	Services []*Service `json:"services"`
}

// CheckpointState serialises the controller deterministically: services
// in registration order, members in admission order.
func (c *Controller) CheckpointState() ([]byte, error) {
	return json.Marshal(state{Services: c.services})
}

// RestoreState replaces the controller's services with a captured
// snapshot and rebuilds the indexes.
func (c *Controller) RestoreState(data []byte) error {
	var st state
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("replicaset: restore: %w", err)
	}
	c.services = st.Services
	c.byName = map[string]*Service{}
	c.bySvcVM = map[string]*Member{}
	c.svcOf = map[string]string{}
	for _, s := range c.services {
		if c.byName[s.Name] != nil {
			return fmt.Errorf("replicaset: restore: duplicate service %q", s.Name)
		}
		c.byName[s.Name] = s
		for i := range s.Members {
			c.svcOf[s.Members[i].VM] = s.Name
		}
		c.reindex(s)
	}
	return nil
}
