package replicaset

import (
	"bytes"
	"testing"
)

func TestScaleUpGatedOnReadiness(t *testing.T) {
	c := New(DefaultConfig())
	c.AddMember("web", "vm0", 0, 0, true)
	// Attainment below the band: scale out.
	if d := c.Decide("web", 3, 0.5, 1000); d != +1 {
		t.Fatalf("want +1 at low attainment, got %d", d)
	}
	c.AddMember("web", "web/r0", 1, 3, false)
	c.RecordScale("web", 3)
	// Cooldown active.
	if d := c.Decide("web", 4, 0.5, 1000); d != 0 {
		t.Fatalf("cooldown must hold, got %d", d)
	}
	// Cooldown over but the replica is not ready yet at b=5? ReadyAfter=1
	// means ready from b=4; Tick promotes it.
	c.Tick(5)
	if m := c.Member("web/r0"); m == nil || !m.Ready {
		t.Fatalf("replica must be ready after the gate")
	}
	if d := c.Decide("web", 5, 0.5, 1000); d != +1 {
		t.Fatalf("want another +1 once ready and off cooldown, got %d", d)
	}
}

func TestScaleUpStopsAtMaxReplicas(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxReplicas = 2
	cfg.Cooldown = 0
	c := New(cfg)
	c.AddMember("web", "vm0", 0, 0, true)
	c.AddMember("web", "web/r0", 1, 0, false)
	c.Tick(1)
	if d := c.Decide("web", 2, 0.5, 1000); d != 0 {
		t.Fatalf("at MaxReplicas: want hold, got %d", d)
	}
}

func TestScaleDownNeverRetiresAnchors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cooldown = 0
	c := New(cfg)
	c.AddMember("web", "vm0", 0, 0, true)
	// Only the anchor lives: perfect attainment must not scale below it.
	if d := c.Decide("web", 2, 1.0, 1000); d != 0 {
		t.Fatalf("anchor-only service: want hold, got %d", d)
	}
	c.AddMember("web", "web/r0", 1, 0, false)
	c.Tick(1)
	if d := c.Decide("web", 2, 1.0, 1000); d != -1 {
		t.Fatalf("replica above the band: want -1, got %d", d)
	}
}

func TestFailRecordsConditionAndCoolsDown(t *testing.T) {
	c := New(DefaultConfig())
	c.AddMember("api", "vm1", 0, 0, true)
	c.Fail("api", 5, ReasonFailureCreate, "no host can admit 4 vCPUs")
	s := c.Lookup("api")
	if len(s.Conditions) != 1 {
		t.Fatalf("want 1 condition, got %d", len(s.Conditions))
	}
	cond := s.Conditions[0]
	if cond.Type != ConditionReplicaFailure || cond.Reason != ReasonFailureCreate {
		t.Fatalf("condition %+v", cond)
	}
	if d := c.Decide("api", 6, 0.1, 1000); d != 0 {
		t.Fatalf("failure must start the cooldown, got %d", d)
	}
	// Condition history is bounded.
	for b := 10; b < 20; b++ {
		c.Fail("api", b, ReasonFailureCreate, "still full")
	}
	if len(s.Conditions) != maxConditions {
		t.Fatalf("want %d retained conditions, got %d", maxConditions, len(s.Conditions))
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	c := New(DefaultConfig())
	c.AddMember("web", "vm0", 0, 0, true)
	c.AddMember("web", "web/r0", 1, 2, false)
	c.AddMember("db", "vm1", 1, 0, true)
	c.Tick(3)
	c.RecordScale("web", 3)
	c.Fail("db", 4, ReasonFailureCreate, "fleet full")
	c.RetireMember("web/r0")

	data, err := c.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	r := New(DefaultConfig())
	if err := r.RestoreState(data); err != nil {
		t.Fatal(err)
	}
	data2, err := r.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("restore is not byte-stable:\n%s\n%s", data, data2)
	}
	if r.ServiceOf("web/r0") != "web" || r.ServiceOf("vm1") != "db" {
		t.Fatalf("restored membership index broken")
	}
	if m := r.Member("web/r0"); m == nil || !m.Retired {
		t.Fatalf("retirement lost in the round trip")
	}
	// Replaying the trace prefix over restored state must be a no-op.
	r.AddMember("web", "vm0", 0, 0, true)
	live, _, anchors := r.Lookup("web").Live()
	if live != 1 || anchors != 1 {
		t.Fatalf("replayed AddMember duplicated the anchor: live=%d anchors=%d", live, anchors)
	}
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config: %v", err)
	}
	bad := DefaultConfig()
	bad.ScaleUpBelow = 0.99
	bad.ScaleDownAbove = 0.5
	if err := bad.Validate(); err == nil {
		t.Fatalf("inverted band must be rejected")
	}
	bad = DefaultConfig()
	bad.MaxReplicas = 0
	if err := bad.Validate(); err == nil {
		t.Fatalf("zero MaxReplicas must be rejected")
	}
}
