package cluster

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vscale/internal/sim"
	"vscale/internal/telemetry"
)

// TestWarmForkIdentical is the correctness gate behind warm-fork: for
// every policy, both sync modes, two seeds and both worker counts, the
// forked run (shared warm prefix, restored at the warm boundary) must
// reproduce the straight-through run's FleetResult exactly.
func TestWarmForkIdentical(t *testing.T) {
	const warm = 3
	policies := PolicyNames()
	for _, mode := range []SyncMode{SyncLockstep, SyncBoundedLag} {
		for _, seed := range []uint64{11, 23} {
			for _, workers := range []int{1, 4} {
				cfg := smallFleet("", workers)
				cfg.Seed = seed
				cfg.Sync = mode
				cfg.WarmEpochs = warm
				events := GenTrace(DefaultTraceConfig(cfg.Horizon), seed)

				straight := make([]FleetResult, 0, len(policies))
				for _, p := range policies {
					scfg := cfg
					scfg.Policy = p
					r, err := RunFleet(scfg, events)
					if err != nil {
						t.Fatalf("straight %s: %v", p, err)
					}
					straight = append(straight, r)
				}
				forked, err := RunFleetWarmFork(cfg, events, policies, nil)
				if err != nil {
					t.Fatal(err)
				}
				for i, p := range policies {
					assertSameResult(t, fmt.Sprintf("%s %s seed=%d workers=%d", p, mode, seed, workers),
						straight[i], forked[i])
				}
			}
		}
	}
}

// TestWarmForkTelemetryIdentical: the forked run's JSONL telemetry
// stream must be byte-identical to the straight-through warm run's.
func TestWarmForkTelemetryIdentical(t *testing.T) {
	run := func(fork bool) string {
		var buf bytes.Buffer
		sink, err := telemetry.NewSink("", &buf)
		if err != nil {
			t.Fatal(err)
		}
		cfg := smallFleet("vscale", 2)
		cfg.WarmEpochs = 3
		events := GenTrace(DefaultTraceConfig(cfg.Horizon), cfg.Seed)
		if fork {
			results, err := RunFleetWarmFork(cfg, events, []string{"vscale"}, func(string) *telemetry.Collector {
				return telemetry.NewCollector(sink, false, "policy", "vscale")
			})
			if err != nil {
				t.Fatal(err)
			}
			_ = results
		} else {
			cfg.Telemetry = telemetry.NewCollector(sink, false, "policy", "vscale")
			if _, err := RunFleet(cfg, events); err != nil {
				t.Fatal(err)
			}
		}
		return buf.String()
	}
	straight := run(false)
	forked := run(true)
	if straight != forked {
		t.Fatalf("telemetry streams differ:\n--- straight ---\n%s\n--- forked ---\n%s", straight, forked)
	}
	// 6 epochs with a 3-epoch warm prefix: boundaries 3..6 collect, plus
	// the terminal post-drain record.
	if got, want := len(strings.Split(strings.TrimSuffix(straight, "\n"), "\n")), 5; got != want {
		t.Fatalf("got %d telemetry records, want %d", got, want)
	}
}

// TestCheckpointRestoreIdentical: capturing mid-run and restoring from
// the file reproduces the capturing run's result exactly, in both sync
// modes, for stateful (Checkpointable), daemon-driven and stateless
// policies.
func TestCheckpointRestoreIdentical(t *testing.T) {
	for _, mode := range []SyncMode{SyncLockstep, SyncBoundedLag} {
		for _, policy := range []string{"pid", "predictive", "vscale", "static"} {
			path := filepath.Join(t.TempDir(), "fleet.ckpt")
			cfg := smallFleet(policy, 4)
			cfg.Sync = mode
			cfg.CheckpointEpoch = 3
			cfg.CheckpointPath = path
			events := GenTrace(DefaultTraceConfig(cfg.Horizon), cfg.Seed)

			want, err := RunFleet(cfg, events)
			if err != nil {
				t.Fatalf("%s %s capture run: %v", mode, policy, err)
			}
			cp, err := LoadCheckpoint(path)
			if err != nil {
				t.Fatal(err)
			}
			rcfg := cfg
			rcfg.CheckpointEpoch = 0
			rcfg.CheckpointPath = ""
			got, err := RunFleetFork(rcfg, events, cp)
			if err != nil {
				t.Fatalf("%s %s restored run: %v", mode, policy, err)
			}
			assertSameResult(t, fmt.Sprintf("%s %s restore", mode, policy), want, got)
		}
	}
}

// TestCheckpointCaptureIsReadOnly: a run that quiesces and captures at
// an epoch boundary produces the same result whether or not the
// snapshot is written (and in both sync modes).
func TestCheckpointCaptureIsReadOnly(t *testing.T) {
	base := smallFleet("pid", 2)
	base.CheckpointEpoch = 4
	events := GenTrace(DefaultTraceConfig(base.Horizon), base.Seed)
	var ref *FleetResult
	for _, mode := range []SyncMode{SyncLockstep, SyncBoundedLag} {
		for _, write := range []bool{false, true} {
			cfg := base
			cfg.Sync = mode
			if write {
				cfg.CheckpointPath = filepath.Join(t.TempDir(), "fleet.ckpt")
			}
			res, err := RunFleet(cfg, events)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = &res
				continue
			}
			assertSameResult(t, fmt.Sprintf("%s write=%v", mode, write), *ref, res)
		}
	}
}

// TestCheckpointDigestStable: the digest is a pure function of the
// simulated state — identical across repeated captures and worker
// counts, different once any field changes.
func TestCheckpointDigestStable(t *testing.T) {
	cfg := smallFleet("", 1)
	cfg.WarmEpochs = 3
	events := GenTrace(DefaultTraceConfig(cfg.Horizon), cfg.Seed)
	a, err := CaptureWarmPrefix(cfg, events)
	if err != nil {
		t.Fatal(err)
	}
	cfg4 := cfg
	cfg4.Workers = 4
	b, err := CaptureWarmPrefix(cfg4, events)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest == "" || a.Digest != b.Digest {
		t.Fatalf("digest not stable across worker counts: %q vs %q", a.Digest, b.Digest)
	}
	other := cfg
	other.Seed = 23
	c, err := CaptureWarmPrefix(other, GenTrace(DefaultTraceConfig(cfg.Horizon), 23))
	if err != nil {
		t.Fatal(err)
	}
	if c.Digest == a.Digest {
		t.Fatal("different seeds produced the same digest")
	}
	b.Hosts[0].Dom0Reads++
	mutated, err := b.ComputeDigest()
	if err != nil {
		t.Fatal(err)
	}
	if mutated == a.Digest {
		t.Fatal("mutated snapshot kept the original digest")
	}
}

// TestCheckpointRoundTripAndCorruption: encode/decode round-trips, and
// a corrupted byte fails the digest check.
func TestCheckpointRoundTripAndCorruption(t *testing.T) {
	cfg := smallFleet("", 1)
	cfg.WarmEpochs = 2
	events := GenTrace(DefaultTraceConfig(cfg.Horizon), cfg.Seed)
	cp, err := CaptureWarmPrefix(cfg, events)
	if err != nil {
		t.Fatal(err)
	}
	data, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Digest != cp.Digest || back.Boundary != cp.Boundary || len(back.Hosts) != len(cp.Hosts) {
		t.Fatal("round-trip changed the snapshot")
	}
	bad := bytes.Replace(data, []byte(`"dom0_reads":`), []byte(`"dom0_reads":1`), 1)
	if _, err := DecodeCheckpoint(bad); err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("corrupted checkpoint decoded without a digest error: %v", err)
	}
	path := filepath.Join(t.TempDir(), "fleet.ckpt")
	if err := SaveCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Digest != cp.Digest {
		t.Fatal("file round-trip changed the digest")
	}
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("truncated checkpoint loaded without error")
	}
}

// TestRunFleetForkValidation: a snapshot only restores into the run it
// came from.
func TestRunFleetForkValidation(t *testing.T) {
	cfg := smallFleet("vscale", 1)
	cfg.WarmEpochs = 2
	events := GenTrace(DefaultTraceConfig(cfg.Horizon), cfg.Seed)
	cp, err := CaptureWarmPrefix(cfg, events)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(c *FleetConfig)
	}{
		{"seed", func(c *FleetConfig) { c.Seed++ }},
		{"hosts", func(c *FleetConfig) { c.Hosts++ }},
		{"horizon", func(c *FleetConfig) { c.Horizon += sim.Second }},
		{"warm", func(c *FleetConfig) { c.WarmEpochs++ }},
		{"lag", func(c *FleetConfig) { c.LagEpochs = 2 }},
	}
	for _, tc := range cases {
		bad := cfg
		tc.mutate(&bad)
		if _, err := RunFleetFork(bad, events, cp); err == nil {
			t.Fatalf("%s mismatch restored without error", tc.name)
		}
	}
	if _, err := RunFleetFork(cfg, events, cp); err != nil {
		t.Fatalf("matching config rejected: %v", err)
	}
	if _, err := CaptureWarmPrefix(smallFleet("static", 1), events); err == nil {
		t.Fatal("CaptureWarmPrefix accepted WarmEpochs=0")
	}
}
