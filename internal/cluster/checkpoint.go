package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"vscale/internal/core"
	"vscale/internal/guest"
	"vscale/internal/loadgen"
	"vscale/internal/runner"
	"vscale/internal/sim"
	"vscale/internal/telemetry"
	"vscale/internal/workload/httpd"
	"vscale/internal/xen"
)

// Fleet-level checkpoint/restore (docs/checkpoint.md). A fleet is
// captured only at an epoch boundary where every host has quiesced:
// the load generators paused one epoch earlier so in-flight requests
// drained, every guest and pool idle, and the only live engine events
// the periodic hypervisor tickers and vCPU timers — all re-armable
// from (label, deadline, seq) descriptors. The snapshot is pure
// semantic state (no closures), serialized as canonical JSON under a
// versioned header with a sha256 digest, which is what makes the
// warm-fork mode sound: one warm-up prefix is simulated once, then
// every policy variant forks from the same bytes.

// CheckpointVersion is the snapshot format identifier.
const CheckpointVersion = "vscale-checkpoint/v1"

// Checkpointable extends ScalingPolicy with control-state capture for
// mid-run checkpoints. Policies with per-VM memory (pid, predictive)
// implement it so a restored run decides exactly as the uninterrupted
// one; the encoding must be deterministic for a given state (sort map
// keys). Stateful policies that do not implement it restore as fresh
// instances — the documented re-warm fallback: correct mechanisms,
// but the controller re-learns its memory over the next epochs.
type Checkpointable interface {
	ScalingPolicy
	// CheckpointPolicy returns the policy's decision state.
	CheckpointPolicy() ([]byte, error)
	// RestorePolicy overwrites the decision state from a capture.
	RestorePolicy(data []byte) error
}

// VMCheckpoint is the semantic state of one VM resident on a host.
type VMCheckpoint struct {
	Name          string                 `json:"name"`
	VCPUs         int                    `json:"vcpus"`
	Seed          uint64                 `json:"seed"`
	Retired       bool                   `json:"retired"`
	LastConsumed  sim.Time               `json:"last_consumed"`
	EpochConsumed sim.Time               `json:"epoch_consumed"`
	PolicyOps     uint64                 `json:"policy_ops"`
	Cost          float64                `json:"cost"`
	Kernel        guest.KernelCheckpoint `json:"kernel"`
	Server        httpd.Checkpoint       `json:"server"`
	Gen           loadgen.State          `json:"gen"`
}

// HostCheckpoint is the semantic state of one quiesced host: engine
// scalars, the descriptor list for its pending events, the pool, the
// dom0 sampler, and every VM in admission order.
type HostCheckpoint struct {
	Engine    sim.EngineState    `json:"engine"`
	Pending   []sim.PendingEvent `json:"pending"`
	Pool      xen.PoolCheckpoint `json:"pool"`
	Dom0Rand  sim.RandState      `json:"dom0_rand"`
	Dom0Reads uint64             `json:"dom0_reads"`
	Armed     bool               `json:"armed"`
	VMs       []VMCheckpoint     `json:"vms"`
}

// ProbeCheckpoint is one router staleness-correction probe.
type ProbeCheckpoint struct {
	Epoch int         `json:"epoch"`
	VCPUs int         `json:"vcpus"`
	Stat  core.VMStat `json:"stat"`
}

// RouterCheckpoint is the control-plane routing state: VM ownership,
// the per-host probe logs (probes and committed corrections are
// recomputed from them at the next arrival epoch), and the churn
// counters accumulated so far.
type RouterCheckpoint struct {
	Owner        map[string]int      `json:"owner"`
	ProbeLog     [][]ProbeCheckpoint `json:"probe_log"`
	Placed       int                 `json:"placed"`
	Departed     int                 `json:"departed"`
	PhaseChanges int                 `json:"phase_changes"`
	Placements   []Placement         `json:"placements,omitempty"`
}

// RingBoundary is one retained placement snapshot: per-host VM stats
// and committed vCPUs at an epoch boundary some post-restore arrival
// epoch will place with.
type RingBoundary struct {
	Boundary  int             `json:"boundary"`
	Stats     [][]core.VMStat `json:"stats"`
	Committed []int           `json:"committed"`
}

// CheckpointConfig is the identity of the run a snapshot belongs to;
// restore cross-checks every field against the restoring FleetConfig
// (Policy only for armed captures — a warm capture is policy-free by
// construction).
type CheckpointConfig struct {
	Hosts        int      `json:"hosts"`
	PCPUsPerHost int      `json:"pcpus_per_host"`
	Seed         uint64   `json:"seed"`
	Horizon      sim.Time `json:"horizon"`
	Epoch        sim.Time `json:"epoch"`
	Drain        sim.Time `json:"drain"`
	SLO          sim.Time `json:"slo"`
	LagEpochs    int      `json:"lag_epochs"`
	WarmEpochs   int      `json:"warm_epochs"`
	Policy       string   `json:"policy,omitempty"`
	// Elastic names the elasticity mode of an armed capture ("" when the
	// layer is off). Like Policy it is part of the run identity only once
	// the capture is armed: a warm capture's elasticity bookkeeping is a
	// pure function of the routed trace, so one warm checkpoint serves
	// every elasticity mode.
	Elastic string `json:"elastic,omitempty"`
}

// FleetCheckpoint is one complete fleet snapshot at an epoch boundary.
type FleetCheckpoint struct {
	Version      string            `json:"version"`
	Config       CheckpointConfig  `json:"config"`
	Boundary     int               `json:"boundary"`
	Now          sim.Time          `json:"now"`
	Armed        bool              `json:"armed"`
	Hosts        []HostCheckpoint  `json:"hosts"`
	Router       RouterCheckpoint  `json:"router"`
	Ring         []RingBoundary    `json:"ring,omitempty"`
	PolicyStates []json.RawMessage `json:"policy_states,omitempty"`
	// Elasticity is the migration/replica-set control-plane state,
	// present when the captured run had the elasticity layer built.
	// Absent on older checkpoints and elasticity-free runs; a fork with
	// the layer on requires it.
	Elasticity json.RawMessage `json:"elasticity,omitempty"`
	Digest     string          `json:"digest"`
}

// checkpointableLabel reports whether a pending-event label names an
// event the restore path knows how to re-arm. At a quiesced boundary
// the only live events are pool tickers and vCPU hardware timers;
// anything else in the queue means the fleet was not actually idle.
func checkpointableLabel(label string) bool {
	switch label {
	case "xen/tick", "xen/acct", "xen/vscale":
		return true
	}
	return strings.HasPrefix(label, "xen/vtimer/")
}

// CaptureState exports the host's semantic state. The host must be
// parked at an epoch boundary, fully drained (the quiesce barrier ran
// one epoch earlier), and its accounting synced by the boundary
// Snapshot — the executors guarantee all three. Capture is read-only:
// a run that captures and continues is byte-identical to one that
// never captured.
func (h *Host) CaptureState() (HostCheckpoint, error) {
	if h.err != nil {
		return HostCheckpoint{}, fmt.Errorf("cluster: host %d faulted: %w", h.id, h.err)
	}
	if err := h.pool.QuiesceCheck(); err != nil {
		return HostCheckpoint{}, fmt.Errorf("cluster: host %d: %w", h.id, err)
	}
	cp := HostCheckpoint{
		Engine:    h.eng.CheckpointState(),
		Pending:   h.eng.PendingEvents(),
		Dom0Rand:  h.d0.RandState(),
		Dom0Reads: h.d0.Reads,
		Armed:     h.armed,
	}
	for _, pe := range cp.Pending {
		if !checkpointableLabel(pe.Label) {
			return HostCheckpoint{}, fmt.Errorf("cluster: host %d: pending event %q at %v is not checkpointable",
				h.id, pe.Label, pe.When)
		}
	}
	cp.Pool = h.pool.CaptureState()
	for _, name := range h.order {
		vm := h.vms[name]
		if err := vm.k.QuiesceCheck(); err != nil {
			return HostCheckpoint{}, fmt.Errorf("cluster: host %d: VM %s: %w", h.id, name, err)
		}
		scp, err := vm.srv.CheckpointState()
		if err != nil {
			return HostCheckpoint{}, fmt.Errorf("cluster: host %d: VM %s: %w", h.id, name, err)
		}
		gcp, err := vm.gen.CheckpointState()
		if err != nil {
			return HostCheckpoint{}, fmt.Errorf("cluster: host %d: VM %s: %w", h.id, name, err)
		}
		cp.VMs = append(cp.VMs, VMCheckpoint{
			Name:          name,
			VCPUs:         vm.vcpus,
			Seed:          vm.seed,
			Retired:       vm.retired,
			LastConsumed:  vm.lastConsumed,
			EpochConsumed: vm.epochConsumed,
			PolicyOps:     vm.policyOps,
			Cost:          vm.cost,
			Kernel:        vm.k.CaptureState(),
			Server:        scp,
			Gen:           gcp,
		})
	}
	return cp, nil
}

// RestoreHost rebuilds one host from a capture: construct it disarmed,
// replay the VM admissions (rate 0 — the captured generator state is
// restored, not re-derived), settle the fresh component tree by
// running it to the captured time (boot events fire, guests block,
// bootstrap tickers tick harmlessly), then purge the bootstrap event
// queue, re-arm the captured descriptors in their original FIFO order,
// and overwrite every layer's semantic state, the engine's scalars
// last. cfg.Disarmed is forced; if the capture was armed the pool
// extension is re-enabled (before the purge, so the descriptor re-arm
// finds its ticker) and the per-VM daemons are re-created by the
// kernel restore.
func RestoreHost(id int, cfg HostConfig, cp HostCheckpoint) (*Host, error) {
	cfg.Disarmed = true
	cfg.Tracer = nil
	h, err := NewHost(id, cfg)
	if err != nil {
		return nil, err
	}
	for _, v := range cp.VMs {
		if err := h.addVM(v.Name, v.VCPUs, 0, v.Seed); err != nil {
			return nil, fmt.Errorf("cluster: host %d: replaying VM %s: %w", id, v.Name, err)
		}
	}
	if err := h.RunEpoch(cp.Engine.Now); err != nil {
		return nil, fmt.Errorf("cluster: host %d: settling rebuilt host: %w", id, err)
	}
	if cp.Armed {
		if h.mech.Channel {
			h.pool.EnableVScale()
		}
		h.armed = true
	}
	h.eng.PurgeAll()
	// Re-arm in ascending captured sequence order: fresh sequence
	// numbers ascend, so the relative FIFO order among re-armed events —
	// the tiebreak for simultaneous deadlines — matches the capture.
	ordered := append([]sim.PendingEvent(nil), cp.Pending...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Seq < ordered[j].Seq })
	for _, pe := range ordered {
		ok, err := h.pool.RearmPending(pe.Label, pe.When)
		if err != nil {
			return nil, fmt.Errorf("cluster: host %d: %w", id, err)
		}
		if !ok {
			return nil, fmt.Errorf("cluster: host %d: no owner for pending event %q", id, pe.Label)
		}
	}
	if err := h.pool.RestoreState(cp.Pool); err != nil {
		return nil, fmt.Errorf("cluster: host %d: %w", id, err)
	}
	for i, name := range h.order {
		vm, v := h.vms[name], cp.VMs[i]
		if cp.Armed && h.mech.Hotplug {
			vm.k.SetReconfigDelay(h.reconfigDelay())
		}
		if err := vm.k.RestoreState(v.Kernel); err != nil {
			return nil, fmt.Errorf("cluster: host %d: VM %s: %w", id, name, err)
		}
		if err := vm.srv.RestoreState(v.Server); err != nil {
			return nil, fmt.Errorf("cluster: host %d: VM %s: %w", id, name, err)
		}
		if err := vm.gen.RestoreState(v.Gen); err != nil {
			return nil, fmt.Errorf("cluster: host %d: VM %s: %w", id, name, err)
		}
		vm.retired = v.Retired
		vm.lastConsumed = v.LastConsumed
		vm.epochConsumed = v.EpochConsumed
		vm.policyOps = v.PolicyOps
		vm.cost = v.Cost
	}
	h.d0.RestoreRand(cp.Dom0Rand)
	h.d0.Reads = cp.Dom0Reads
	if err := h.eng.RestoreState(cp.Engine); err != nil {
		return nil, fmt.Errorf("cluster: host %d: %w", id, err)
	}
	if got := len(h.eng.PendingEvents()); got != len(cp.Pending) {
		return nil, fmt.Errorf("cluster: host %d: %d pending events after restore, checkpoint has %d",
			id, got, len(cp.Pending))
	}
	return h, nil
}

// captureFleet assembles a fleet snapshot from hosts parked at an
// epoch boundary. ringCPs is the retained placement-snapshot window
// (ringBoundaries); pols supplies Checkpointable control state on
// armed captures.
func captureFleet(cfg *FleetConfig, hosts []*Host, pols []ScalingPolicy, rt *fleetRouter, res *FleetResult, ringCPs []RingBoundary, boundary int, now sim.Time) (*FleetCheckpoint, error) {
	armed := hosts[0].armed
	cp := &FleetCheckpoint{
		Version: CheckpointVersion,
		Config: CheckpointConfig{
			Hosts:        cfg.Hosts,
			PCPUsPerHost: cfg.PCPUsPerHost,
			Seed:         cfg.Seed,
			Horizon:      cfg.Horizon,
			Epoch:        cfg.Epoch,
			Drain:        cfg.Drain,
			SLO:          cfg.SLO,
			LagEpochs:    rt.lag,
			WarmEpochs:   cfg.WarmEpochs,
		},
		Boundary: boundary,
		Now:      now,
		Armed:    armed,
		Ring:     ringCPs,
	}
	if armed {
		cp.Config.Policy = cfg.Policy
	}
	for i, h := range hosts {
		hcp, err := h.CaptureState()
		if err != nil {
			return nil, err
		}
		if hcp.Engine.Now != now {
			return nil, fmt.Errorf("cluster: host %d parked at %v, boundary is %v", i, hcp.Engine.Now, now)
		}
		if hcp.Armed != armed {
			return nil, fmt.Errorf("cluster: host %d armed=%v, host 0 armed=%v", i, hcp.Armed, armed)
		}
		cp.Hosts = append(cp.Hosts, hcp)
	}
	cp.Router = RouterCheckpoint{
		Owner:        make(map[string]int, len(rt.owner)),
		ProbeLog:     make([][]ProbeCheckpoint, len(rt.probeLog)),
		Placed:       res.Placed,
		Departed:     res.Departed,
		PhaseChanges: res.PhaseChanges,
	}
	for vm, host := range rt.owner {
		cp.Router.Owner[vm] = host
	}
	for i, log := range rt.probeLog {
		for _, p := range log {
			cp.Router.ProbeLog[i] = append(cp.Router.ProbeLog[i], ProbeCheckpoint{
				Epoch: p.epoch, VCPUs: p.vcpus, Stat: p.stat,
			})
		}
	}
	if res.Placements != nil {
		cp.Router.Placements = append([]Placement(nil), res.Placements...)
	}
	if _, ok := pols[0].(Checkpointable); armed && ok {
		// All hosts run the same policy type, so either every instance
		// carries restorable state or none does (the re-warm fallback).
		cp.PolicyStates = make([]json.RawMessage, len(pols))
		for i, pol := range pols {
			raw, err := pol.(Checkpointable).CheckpointPolicy()
			if err != nil {
				return nil, fmt.Errorf("cluster: host %d policy state: %w", i, err)
			}
			cp.PolicyStates[i] = raw
		}
	}
	if rt.el != nil {
		raw, err := rt.el.capture()
		if err != nil {
			return nil, err
		}
		cp.Elasticity = raw
		if armed {
			cp.Config.Elastic = rt.el.mode()
		}
	}
	digest, err := cp.ComputeDigest()
	if err != nil {
		return nil, err
	}
	cp.Digest = digest
	return cp, nil
}

// ComputeDigest returns the sha256 hex digest of the snapshot's
// canonical JSON encoding (with the digest field itself blanked).
// encoding/json is deterministic for this data — struct fields encode
// in declaration order and map keys sort — so equal states produce
// equal digests regardless of worker count or GOMAXPROCS.
func (cp *FleetCheckpoint) ComputeDigest() (string, error) {
	saved := cp.Digest
	cp.Digest = ""
	data, err := json.Marshal(cp)
	cp.Digest = saved
	if err != nil {
		return "", fmt.Errorf("cluster: encoding checkpoint: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Encode serializes the snapshot (computing the digest if unset).
func (cp *FleetCheckpoint) Encode() ([]byte, error) {
	if cp.Digest == "" {
		d, err := cp.ComputeDigest()
		if err != nil {
			return nil, err
		}
		cp.Digest = d
	}
	data, err := json.Marshal(cp)
	if err != nil {
		return nil, fmt.Errorf("cluster: encoding checkpoint: %w", err)
	}
	return data, nil
}

// DecodeCheckpoint parses and verifies a snapshot: version header
// first, then the digest over the canonical re-encoding, so a
// corrupted or hand-edited file fails loudly instead of diverging
// silently mid-run.
func DecodeCheckpoint(data []byte) (*FleetCheckpoint, error) {
	cp := &FleetCheckpoint{}
	if err := json.Unmarshal(data, cp); err != nil {
		return nil, fmt.Errorf("cluster: parsing checkpoint: %w", err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("cluster: checkpoint version %q, want %q", cp.Version, CheckpointVersion)
	}
	want, err := cp.ComputeDigest()
	if err != nil {
		return nil, err
	}
	if cp.Digest != want {
		return nil, fmt.Errorf("cluster: checkpoint digest mismatch: recorded %s, computed %s", cp.Digest, want)
	}
	return cp, nil
}

// SaveCheckpoint writes a snapshot to path.
func SaveCheckpoint(path string, cp *FleetCheckpoint) error {
	data, err := cp.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("cluster: writing checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and verifies a snapshot from path.
func LoadCheckpoint(path string) (*FleetCheckpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: reading checkpoint: %w", err)
	}
	return DecodeCheckpoint(data)
}

// validateAgainst cross-checks a snapshot against the restoring run's
// (already normalized) configuration and epoch plan.
func (cp *FleetCheckpoint) validateAgainst(cfg *FleetConfig, plan *epochPlan) error {
	id := cp.Config
	switch {
	case id.Hosts != cfg.Hosts:
		return fmt.Errorf("cluster: checkpoint has %d hosts, config %d", id.Hosts, cfg.Hosts)
	case id.PCPUsPerHost != cfg.PCPUsPerHost:
		return fmt.Errorf("cluster: checkpoint has %d pCPUs/host, config %d", id.PCPUsPerHost, cfg.PCPUsPerHost)
	case id.Seed != cfg.Seed:
		return fmt.Errorf("cluster: checkpoint seed %d, config %d", id.Seed, cfg.Seed)
	case id.Horizon != cfg.Horizon:
		return fmt.Errorf("cluster: checkpoint horizon %v, config %v", id.Horizon, cfg.Horizon)
	case id.Epoch != cfg.Epoch:
		return fmt.Errorf("cluster: checkpoint epoch %v, config %v", id.Epoch, cfg.Epoch)
	case id.Drain != cfg.Drain:
		return fmt.Errorf("cluster: checkpoint drain %v, config %v", id.Drain, cfg.Drain)
	case id.SLO != cfg.SLO:
		return fmt.Errorf("cluster: checkpoint SLO %v, config %v", id.SLO, cfg.SLO)
	case id.LagEpochs != cfg.lag():
		return fmt.Errorf("cluster: checkpoint lag %d, config %d", id.LagEpochs, cfg.lag())
	case id.WarmEpochs != cfg.WarmEpochs:
		return fmt.Errorf("cluster: checkpoint warm epochs %d, config %d", id.WarmEpochs, cfg.WarmEpochs)
	}
	if len(cp.Hosts) != cfg.Hosts {
		return fmt.Errorf("cluster: checkpoint carries %d host states for %d hosts", len(cp.Hosts), cfg.Hosts)
	}
	if cp.Boundary < 1 || cp.Boundary >= plan.epochs() {
		return fmt.Errorf("cluster: checkpoint boundary %d outside (0, %d)", cp.Boundary, plan.epochs())
	}
	if cp.Now != plan.ends[cp.Boundary-1] {
		return fmt.Errorf("cluster: checkpoint time %v is not boundary %d (%v)", cp.Now, cp.Boundary, plan.ends[cp.Boundary-1])
	}
	if cp.Armed {
		if cp.Boundary <= cfg.WarmEpochs {
			return fmt.Errorf("cluster: armed checkpoint at boundary %d inside the warm prefix (%d)", cp.Boundary, cfg.WarmEpochs)
		}
		if id.Policy != cfg.Policy {
			return fmt.Errorf("cluster: armed checkpoint of policy %q cannot restore as %q", id.Policy, cfg.Policy)
		}
		if id.Elastic != cfg.elasticMode() {
			return fmt.Errorf("cluster: armed checkpoint of elasticity mode %q cannot restore as %q", id.Elastic, cfg.elasticMode())
		}
	} else if cp.Boundary != cfg.WarmEpochs {
		return fmt.Errorf("cluster: disarmed checkpoint at boundary %d, warm boundary is %d", cp.Boundary, cfg.WarmEpochs)
	}
	if cfg.CheckpointEpoch != 0 && cfg.CheckpointEpoch <= cp.Boundary {
		return fmt.Errorf("cluster: CheckpointEpoch %d not past the restore boundary %d", cfg.CheckpointEpoch, cp.Boundary)
	}
	if len(cp.Router.ProbeLog) != cfg.Hosts {
		return fmt.Errorf("cluster: checkpoint probe log covers %d hosts, config %d", len(cp.Router.ProbeLog), cfg.Hosts)
	}
	for _, rb := range cp.Ring {
		if len(rb.Stats) != cfg.Hosts || len(rb.Committed) != cfg.Hosts {
			return fmt.Errorf("cluster: ring boundary %d covers %d/%d hosts, config %d",
				rb.Boundary, len(rb.Stats), len(rb.Committed), cfg.Hosts)
		}
	}
	return nil
}

// ringBoundaries extracts the retained placement-snapshot window at a
// capture boundary b from the lockstep ring: boundaries in
// [max(1, b-lag), b] that some post-restore arrival epoch places with.
// (Older needed boundaries were already consumed — an arrival epoch
// k < b placed with them — and boundary 0, the empty fleet, is
// implicit.)
func ringBoundaries(ring *snapRing, rt *fleetRouter, b int) []RingBoundary {
	var out []RingBoundary
	lo := b - rt.lag
	if lo < 1 {
		lo = 1
	}
	for x := lo; x <= b; x++ {
		if !rt.needBoundary(x) {
			continue
		}
		stats, committed := ring.at(x)
		out = append(out, RingBoundary{
			Boundary:  x,
			Stats:     stats,
			Committed: append([]int(nil), committed...),
		})
	}
	return out
}

// restoreRouter overwrites a fresh router (and the result's churn
// counters) from a capture. probes/committedExtra stay empty: the next
// arrival epoch's advanceBase recomputes both from the probe log, as
// it does after any base advance.
func restoreRouter(rt *fleetRouter, res *FleetResult, rc RouterCheckpoint) {
	for vm, host := range rc.Owner {
		rt.owner[vm] = host
	}
	for i, log := range rc.ProbeLog {
		for _, p := range log {
			rt.probeLog[i] = append(rt.probeLog[i], placedProbe{epoch: p.Epoch, vcpus: p.VCPUs, stat: p.Stat})
		}
	}
	res.Placed = rc.Placed
	res.Departed = rc.Departed
	res.PhaseChanges = rc.PhaseChanges
	if rt.record && rc.Placements != nil {
		res.Placements = append([]Placement(nil), rc.Placements...)
	}
}

// CaptureWarmPrefix runs the policy-neutral warm prefix once —
// cfg.WarmEpochs epochs, mechanisms disarmed, hosts quiescing over the
// last warm epoch — and captures the fleet at the warm boundary. The
// returned snapshot is what RunFleetFork forks every policy variant
// from; cfg.Policy is irrelevant to the prefix (mechanisms are off and
// no policy pass runs) and is not recorded.
func CaptureWarmPrefix(cfg FleetConfig, events []Event) (*FleetCheckpoint, error) {
	plan, _, err := prepareFleet(&cfg, events)
	if err != nil {
		return nil, err
	}
	if cfg.WarmEpochs <= 0 {
		return nil, fmt.Errorf("cluster: warm-fork needs WarmEpochs > 0")
	}
	if cfg.Tracers != nil {
		return nil, fmt.Errorf("cluster: tracers are not checkpointable")
	}
	cfg.Telemetry = nil // nothing is collected inside the warm prefix
	if cfg.Policy == "" {
		cfg.Policy = "static"
	}
	pols, hosts, err := buildFleetHosts(&cfg)
	if err != nil {
		return nil, err
	}
	res := FleetResult{Policy: cfg.Policy, Hosts: cfg.Hosts}
	rt := newFleetRouter(&cfg, plan, &res)
	if rt.el != nil {
		rt.el.attachHosts(hosts)
	}
	ring := newSnapRing(cfg.Hosts, rt.lag)
	if err := runLockstep(&cfg, plan, hosts, pols, rt, &res, ring, 0, cfg.WarmEpochs); err != nil {
		return nil, err
	}
	b := cfg.WarmEpochs
	return captureFleet(&cfg, hosts, pols, rt, &res, ringBoundaries(ring, rt, b), b, plan.ends[b-1])
}

// RunFleetFork restores a fleet from a snapshot and runs it to
// completion under cfg. For a warm (disarmed) capture this is the fork
// half of warm-fork: mechanisms arm per cfg.Policy at the boundary and
// the measured window begins; for an armed mid-run capture cfg.Policy
// must match the capture and the run simply resumes. Either way the
// suffix runs under cfg.Sync/cfg.Workers and the result is
// byte-identical to the straight-through run with the same barriers.
func RunFleetFork(cfg FleetConfig, events []Event, cp *FleetCheckpoint) (FleetResult, error) {
	plan, sync, err := prepareFleet(&cfg, events)
	if err != nil {
		return FleetResult{}, err
	}
	if cfg.Tracers != nil {
		return FleetResult{}, fmt.Errorf("cluster: tracers are not checkpointable")
	}
	if err := cp.validateAgainst(&cfg, plan); err != nil {
		return FleetResult{}, err
	}

	res := FleetResult{Policy: cfg.Policy, Hosts: cfg.Hosts}
	rt := newFleetRouter(&cfg, plan, &res)
	restoreRouter(rt, &res, cp.Router)

	pols := make([]ScalingPolicy, cfg.Hosts)
	hosts := make([]*Host, cfg.Hosts)
	for i := range hosts {
		pol, err := NewPolicy(cfg.Policy)
		if err != nil {
			return FleetResult{}, err
		}
		pols[i] = pol
		h, err := RestoreHost(i, HostConfig{
			PCPUs:  cfg.PCPUsPerHost,
			Seed:   runner.DeriveSeed(cfg.Seed, i),
			Policy: pol,
			SLO:    cfg.SLO,
		}, cp.Hosts[i])
		if err != nil {
			return FleetResult{}, err
		}
		hosts[i] = h
	}
	if rt.el != nil {
		if cp.Elasticity == nil {
			return FleetResult{}, fmt.Errorf("cluster: elasticity mode %q needs a checkpoint with elasticity state (captured by an elasticity-enabled run)", cfg.elasticMode())
		}
		rt.el.attachHosts(hosts)
		if err := rt.el.restore(cp.Elasticity); err != nil {
			return FleetResult{}, err
		}
	}
	if cp.Armed {
		for i, pol := range pols {
			if i >= len(cp.PolicyStates) {
				break
			}
			raw := cp.PolicyStates[i]
			if len(raw) == 0 || string(raw) == "null" {
				continue
			}
			c, ok := pol.(Checkpointable)
			if !ok {
				return FleetResult{}, fmt.Errorf("cluster: checkpoint carries state for policy %q, which cannot restore it", cfg.Policy)
			}
			if err := c.RestorePolicy(raw); err != nil {
				return FleetResult{}, fmt.Errorf("cluster: host %d policy state: %w", i, err)
			}
		}
		for _, h := range hosts {
			h.ResumeLoad()
		}
	} else {
		for _, h := range hosts {
			h.Arm()
		}
	}

	start := cp.Boundary
	switch sync {
	case SyncLockstep:
		ring := newSnapRing(cfg.Hosts, rt.lag)
		for _, rb := range cp.Ring {
			for i := range hosts {
				ring.set(rb.Boundary, i, rb.Stats[i], rb.Committed[i])
			}
		}
		err = runLockstep(&cfg, plan, hosts, pols, rt, &res, ring, start, 0)
	default:
		err = runBoundedLag(&cfg, plan, hosts, pols, rt, &res, start, cp.Ring)
	}
	if err != nil {
		return res, err
	}
	if err := aggregate(&cfg, hosts, &res); err != nil {
		return res, err
	}
	return res, nil
}

// RunFleetWarmFork is the warm-fork scoreboard driver: simulate the
// shared warm-up prefix once, then fork one restored fleet per policy
// from the snapshot and run each measured window. telemetryFor, when
// non-nil, supplies each fork's collector (the prefix itself collects
// nothing, matching the straight-through warm run). Results are
// ordered like policies and each is byte-identical to RunFleet with
// the same cfg.WarmEpochs and that policy.
func RunFleetWarmFork(cfg FleetConfig, events []Event, policies []string, telemetryFor func(policy string) *telemetry.Collector) ([]FleetResult, error) {
	if len(policies) == 0 {
		return nil, fmt.Errorf("cluster: warm-fork needs at least one policy")
	}
	prefix := cfg
	prefix.Telemetry = nil
	cp, err := CaptureWarmPrefix(prefix, events)
	if err != nil {
		return nil, err
	}
	results := make([]FleetResult, 0, len(policies))
	for _, p := range policies {
		fcfg := cfg
		fcfg.Policy = p
		fcfg.Telemetry = nil
		if telemetryFor != nil {
			fcfg.Telemetry = telemetryFor(p)
		}
		r, err := RunFleetFork(fcfg, events, cp)
		if err != nil {
			return nil, fmt.Errorf("cluster: warm-fork policy %s: %w", p, err)
		}
		results = append(results, r)
	}
	return results, nil
}
