package cluster

import (
	"fmt"

	"vscale/internal/core"
	"vscale/internal/dom0"
	"vscale/internal/loadgen"
	"vscale/internal/metrics"
	"vscale/internal/runner"
	"vscale/internal/sim"
	"vscale/internal/telemetry"
	"vscale/internal/trace"
)

// FleetConfig parameterises one fleet run (one policy over one churn
// trace).
type FleetConfig struct {
	// Hosts is the number of independent hosts.
	Hosts int
	// PCPUsPerHost sizes each host's domU pool.
	PCPUsPerHost int
	// Policy names the fleet-wide VM scaling policy; RunFleet
	// instantiates a fresh instance from the registry (see
	// RegisterPolicy), so stateful controllers never leak state across
	// runs.
	Policy string
	// Seed derives every host's engine seed (runner.DeriveSeed per host
	// index), so fleets with the same seed are reproducible regardless
	// of worker count.
	Seed uint64
	// Horizon is the churn window; the fleet then drains for Drain.
	Horizon sim.Time
	// Epoch is the control-plane period: placement decisions and
	// telemetry snapshots happen at epoch boundaries (default 500 ms).
	Epoch sim.Time
	// Drain is how long after the horizon in-flight requests may finish
	// (default 2 s).
	Drain sim.Time
	// SLO is the per-request latency objective.
	SLO sim.Time
	// Workers bounds the per-epoch host fan-out (0 = GOMAXPROCS).
	Workers int
	// Tracers, when non-nil, holds one tracer per host (index-aligned);
	// host i's scheduling events are recorded into Tracers[i].
	Tracers []*trace.Tracer
	// Report, when non-nil, accumulates the per-epoch host fan-out
	// accounting (every host-epoch is one runner job).
	Report *runner.Report
	// Telemetry, when non-nil, receives one collection epoch per
	// control-plane epoch (and one final epoch after the drain): the
	// control plane samples every host, VM and load generator into the
	// collector's registry while the engines are parked at the boundary,
	// then publishes the scrape snapshot and the JSONL record. Purely
	// observational: the run's results are byte-identical with or
	// without it.
	Telemetry *telemetry.Collector
}

// Placement records where one VM was admitted.
type Placement struct {
	VM   string
	Host int
}

// FleetResult aggregates one fleet run.
type FleetResult struct {
	Policy string
	Hosts  int

	// Placed/Departed/PhaseChanges count processed churn events.
	Placed, Departed, PhaseChanges int
	// Placements lists every admission in trace order.
	Placements []Placement

	// Load holds the summed per-VM load-generator accounting.
	Load loadgen.Stats
	// Hist is the merged reply-latency histogram (milliseconds).
	Hist *metrics.Histogram
	// Attainment is the fleet-wide SLO attainment over offered requests.
	Attainment float64

	// Reconfigs counts scaling actions: freeze/unfreeze (or hotplug)
	// operations taken by the per-VM daemons plus those applied by the
	// control plane's policy.
	Reconfigs uint64
	// CostVCPUSeconds is the provisioned cost of the run: the integral
	// of every VM's active (unfrozen) vCPU count over its lifetime
	// within the churn horizon, in vCPU-seconds. Together with
	// Attainment it places the policy on the cost-vs-attainment
	// frontier. In-flight requests at the end of the run count against
	// Attainment (see loadgen.Stats) but never add cost: a retired VM's
	// meter stops at departure even while its stragglers drain.
	CostVCPUSeconds float64
	// AvgHostUtil is the mean pCPU busy fraction across hosts.
	AvgHostUtil float64
	// CentralSweep is what one end-of-run central monitoring pass over
	// the whole fleet would cost through dom0 (Figure 4 cost model,
	// summed over hosts) — the price VCPU-Bal pays per period and
	// vScale's per-VM channels avoid.
	CentralSweep sim.Time
}

// RunFleet drives one fleet through a churn trace. The control plane
// wakes at every epoch boundary: it routes the upcoming epoch's events
// to their hosts (arrivals are placed with Algorithm 1 over last-epoch
// telemetry), fans the hosts' engines across the worker pool until the
// next boundary, then snapshots per-VM consumption. Aggregation walks
// hosts and VMs in deterministic order, so the result is identical for
// any worker count.
func RunFleet(cfg FleetConfig, events []Event) (FleetResult, error) {
	if cfg.Hosts <= 0 || cfg.PCPUsPerHost <= 0 {
		return FleetResult{}, fmt.Errorf("cluster: need positive Hosts and PCPUsPerHost")
	}
	if cfg.Horizon <= 0 {
		return FleetResult{}, fmt.Errorf("cluster: need a positive Horizon")
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = 500 * sim.Millisecond
	}
	if cfg.Drain <= 0 {
		cfg.Drain = 2 * sim.Second
	}
	if cfg.Tracers != nil && len(cfg.Tracers) != cfg.Hosts {
		return FleetResult{}, fmt.Errorf("cluster: %d tracers for %d hosts", len(cfg.Tracers), cfg.Hosts)
	}
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			return FleetResult{}, fmt.Errorf("cluster: churn trace not sorted at event %d", i)
		}
	}
	// One fresh policy instance per run, shared by every host: Decide is
	// only ever called from the single-threaded control plane, and
	// stateful controllers key their memory per VM name.
	pol, err := NewPolicy(cfg.Policy)
	if err != nil {
		return FleetResult{}, err
	}

	hosts := make([]*Host, cfg.Hosts)
	for i := range hosts {
		var tr *trace.Tracer
		if cfg.Tracers != nil {
			tr = cfg.Tracers[i]
		}
		h, err := NewHost(i, HostConfig{
			PCPUs:  cfg.PCPUsPerHost,
			Seed:   runner.DeriveSeed(cfg.Seed, i),
			Policy: pol,
			SLO:    cfg.SLO,
			Tracer: tr,
		})
		if err != nil {
			return FleetResult{}, err
		}
		hosts[i] = h
	}

	res := FleetResult{Policy: cfg.Policy, Hosts: cfg.Hosts}
	stats := make([][]core.VMStat, cfg.Hosts) // last-epoch telemetry
	owner := map[string]int{}
	opts := runner.Options{Workers: cfg.Workers, Report: cfg.Report}

	runEpoch := func(until sim.Time) error {
		_, err := runner.Run(opts, len(hosts), func(ctx runner.Context) (struct{}, error) {
			return struct{}{}, hosts[ctx.Index].RunEpoch(until)
		})
		return err
	}

	evIdx := 0
	for start := sim.Time(0); start < cfg.Horizon; start += cfg.Epoch {
		end := start + cfg.Epoch
		if end > cfg.Horizon {
			end = cfg.Horizon
		}
		// Control plane: route this epoch's events. Arrivals are placed
		// with last-epoch telemetry; same-epoch arrivals see each other
		// as probes appended to the stats, so a burst spreads out.
		for evIdx < len(events) && events[evIdx].At < end {
			ev := events[evIdx]
			evIdx++
			if ev.At < start {
				return res, fmt.Errorf("cluster: event for %s at %v precedes epoch start %v", ev.VM, ev.At, start)
			}
			switch ev.Kind {
			case EventArrive:
				hIdx := pickHost(hosts, stats, cfg.Epoch, ev.VCPUs)
				// The VM's seed comes from its arrival index in the trace,
				// so its RNG streams (and hence the offered load) are the
				// same wherever it lands and whatever the policy.
				hosts[hIdx].ScheduleAdd(ev, runner.DeriveSeed(cfg.Seed^0xc2b2ae3d27d4eb4f, res.Placed))
				owner[ev.VM] = hIdx
				stats[hIdx] = append(stats[hIdx], probeStat(ev.VCPUs, cfg.PCPUsPerHost, cfg.Epoch))
				res.Placed++
				res.Placements = append(res.Placements, Placement{VM: ev.VM, Host: hIdx})
			case EventPhase:
				if hIdx, ok := owner[ev.VM]; ok {
					hosts[hIdx].ScheduleRate(ev)
					res.PhaseChanges++
				}
			case EventDepart:
				if hIdx, ok := owner[ev.VM]; ok {
					hosts[hIdx].ScheduleRemove(ev)
					delete(owner, ev.VM)
					res.Departed++
				}
			default:
				return res, fmt.Errorf("cluster: unknown event kind %v", ev.Kind)
			}
		}
		if err := runEpoch(end); err != nil {
			return res, err
		}
		for i, h := range hosts {
			stats[i] = h.Snapshot(end - start)
		}
		collectTelemetry(cfg.Telemetry, end, hosts, &res, cfg.SLO)
		// Policy pass: every live VM is observed and decided on in host
		// order then admission order, while all engines are parked at the
		// boundary. Daemon-driven policies return 0 (their in-guest
		// mechanism is already steering); a positive target is applied
		// through the guest balancer and takes effect next epoch.
		for _, h := range hosts {
			for _, o := range h.Observations(end - start) {
				if target := pol.Decide(o); target > 0 {
					h.ApplyTarget(o.VM, target)
				}
			}
		}
	}

	// Horizon reached: stop all load and drain in-flight requests.
	for _, h := range hosts {
		h.StopAll()
	}
	if err := runEpoch(cfg.Horizon + cfg.Drain); err != nil {
		return res, err
	}
	// One terminal collection epoch so the scrape endpoint and the JSONL
	// stream both end on the fully drained state.
	collectTelemetry(cfg.Telemetry, cfg.Horizon+cfg.Drain, hosts, &res, cfg.SLO)

	// Aggregate in host order, then VM admission order — a fixed walk
	// independent of scheduling interleavings.
	res.Hist = metrics.NewHistogram(metrics.DefaultLatencyBuckets())
	var util float64
	vmsPerHost := make([]int, len(hosts))
	for i, h := range hosts {
		util += h.Util()
		vmsPerHost[i] = len(h.order)
		res.CostVCPUSeconds += h.ProvisionedVCPUSeconds()
		for _, name := range h.order {
			vm := h.vms[name]
			addStats(&res.Load, vm.gen.Stats())
			if err := res.Hist.Merge(vm.gen.Hist()); err != nil {
				return res, err
			}
			_, decisions := vm.k.DaemonStats()
			res.Reconfigs += decisions + vm.policyOps
		}
	}
	res.Attainment = res.Load.Attainment()
	res.AvgHostUtil = util / float64(len(hosts))

	// Price a central VCPU-Bal-style monitoring pass over this fleet,
	// using a seed-stable dom0 sampler so the figure does not depend on
	// per-host RNG positions.
	d0 := dom0.New(dom0.DefaultConfig(), sim.NewRand(cfg.Seed^0x2545f491))
	for _, lat := range d0.FleetSweep(vmsPerHost, dom0.Idle) {
		res.CentralSweep += lat
	}
	return res, nil
}
