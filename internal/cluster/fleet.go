package cluster

import (
	"fmt"

	"vscale/internal/core"
	"vscale/internal/dom0"
	"vscale/internal/loadgen"
	"vscale/internal/metrics"
	"vscale/internal/runner"
	"vscale/internal/sim"
	"vscale/internal/telemetry"
	"vscale/internal/trace"
)

// SyncMode selects how the fleet's hosts are advanced through virtual
// time. Both modes produce byte-identical FleetResults for the same
// config and trace — lockstep is retained as the differential reference
// for the bounded-lag executor (and CI diffs their outputs).
type SyncMode string

const (
	// SyncBoundedLag (the default) advances each host independently on a
	// persistent worker pool, up to LagEpochs epochs ahead of the slowest
	// host, synchronizing only at genuine cross-host interaction points:
	// churn arrivals that need fleet-wide placement snapshots, and the
	// telemetry collection epoch. See docs/cluster.md.
	SyncBoundedLag SyncMode = "boundedlag"
	// SyncLockstep advances every host exactly one epoch per control-
	// plane step, with a full fan-out/join barrier (one runner.Run call)
	// per epoch — the original executor, kept as the reference.
	SyncLockstep SyncMode = "lockstep"
)

// ParseSyncMode resolves a -sync flag value ("" means bounded-lag).
func ParseSyncMode(s string) (SyncMode, error) {
	switch SyncMode(s) {
	case "", SyncBoundedLag:
		return SyncBoundedLag, nil
	case SyncLockstep:
		return SyncLockstep, nil
	}
	return "", fmt.Errorf("cluster: unknown sync mode %q (want %s or %s)", s, SyncLockstep, SyncBoundedLag)
}

// DefaultLagEpochs is the placement-staleness and run-ahead bound used
// when FleetConfig.LagEpochs is 0.
const DefaultLagEpochs = 4

// DefaultEpoch is the control-plane period used when FleetConfig.Epoch
// is 0: placement decisions, telemetry snapshots and policy passes
// happen every DefaultEpoch of virtual time.
const DefaultEpoch = 500 * sim.Millisecond

// FleetConfig parameterises one fleet run (one policy over one churn
// trace).
type FleetConfig struct {
	// Hosts is the number of independent hosts.
	Hosts int
	// PCPUsPerHost sizes each host's domU pool.
	PCPUsPerHost int
	// Policy names the fleet-wide VM scaling policy; RunFleet
	// instantiates one fresh instance per host from the registry (see
	// RegisterPolicy), so stateful controllers never leak state across
	// runs — and never share state across hosts, which is what lets each
	// host run its policy pass on its own timeline. Controllers key
	// their memory per VM name and VMs never migrate, so per-host
	// instances decide exactly as a shared instance would.
	Policy string
	// Seed derives every host's engine seed (runner.DeriveSeed per host
	// index), so fleets with the same seed are reproducible regardless
	// of worker count.
	Seed uint64
	// Horizon is the churn window; the fleet then drains for Drain.
	Horizon sim.Time
	// Epoch is the control-plane period: placement decisions and
	// telemetry snapshots happen at epoch boundaries (default 500 ms).
	Epoch sim.Time
	// Drain is how long after the horizon in-flight requests may finish
	// (default 2 s).
	Drain sim.Time
	// SLO is the per-request latency objective.
	SLO sim.Time
	// Workers bounds the host fan-out: the per-epoch runner.Run pool in
	// lockstep, the persistent runner.Pool in bounded-lag (0 =
	// GOMAXPROCS).
	Workers int
	// Sync selects the executor ("" = SyncBoundedLag). Results are
	// byte-identical across modes; only wall-clock behaviour differs.
	Sync SyncMode
	// LagEpochs bounds both placement staleness and host run-ahead
	// (0 = DefaultLagEpochs):
	//
	//   - An arrival in epoch k is placed with the fleet snapshot
	//     published at boundary max(0, k-LagEpochs), corrected with
	//     deterministic probes for VMs placed since — in BOTH sync
	//     modes, so placement is a pure function of the trace and the
	//     bound, never of scheduling.
	//   - In bounded-lag, no host may run more than LagEpochs epochs
	//     ahead of the slowest host.
	LagEpochs int
	// RecordPlacements controls FleetResult.Placements accumulation.
	// nil defaults to recording (existing callers read placements);
	// point it at false for scale runs where the unbounded per-VM slice
	// is dead weight.
	RecordPlacements *bool
	// Tracers, when non-nil, holds one tracer per host (index-aligned);
	// host i's scheduling events are recorded into Tracers[i].
	Tracers []*trace.Tracer
	// Report, when non-nil, accumulates the host fan-out accounting: in
	// lockstep every host-epoch is one runner job; in bounded-lag every
	// host is one job whose wall clock sums its executor chunks.
	Report *runner.Report
	// Telemetry, when non-nil, receives one collection epoch per
	// control-plane epoch (and one final epoch after the drain): the
	// collector samples every host, VM and load generator while the
	// engines are parked at the boundary, then publishes the scrape
	// snapshot and the JSONL record. The collection epoch is a genuine
	// cross-host sync point, so bounded-lag degrades to epoch pacing
	// while a collector is attached. Purely observational: the run's
	// results are byte-identical with or without it.
	Telemetry *telemetry.Collector
	// WarmEpochs, when > 0, marks epochs [0, WarmEpochs) as a policy-
	// neutral warm-up prefix: hosts are built with their mechanisms
	// disarmed, no telemetry is collected and no policy pass runs until
	// the fleet arms at boundary WarmEpochs. Over the last warm epoch
	// every load generator pauses (the quiesce barrier) so the fleet is
	// drained — and checkpointable — at the warm boundary; the generators
	// resume as the mechanisms arm and the measured window begins. The
	// prefix is identical for every policy, which is what
	// CaptureWarmPrefix / RunFleetFork exploit: simulate it once per
	// (trace, seed), fork every policy variant from the snapshot
	// (docs/checkpoint.md).
	WarmEpochs int
	// CheckpointEpoch, when > 0, quiesces the fleet over epoch
	// CheckpointEpoch-1, captures it at that boundary, resumes the load
	// and continues. Must lie strictly between WarmEpochs and the number
	// of churn epochs; incompatible with Tracers (not checkpointable).
	CheckpointEpoch int
	// CheckpointPath is where the CheckpointEpoch capture is written. An
	// empty path runs the identical quiesce barrier without writing a
	// file — the reference arm of the restore-identity tests.
	CheckpointPath string
	// Migration, when non-nil, enables the live-migration rebalance
	// pass: a control-plane sweep at post-warm epoch boundaries that
	// starts pre-copy migrations from the most committed host and
	// commits each stop-and-copy cutover at the first boundary past its
	// modeled copy duration (docs/cluster.md, "Live migration model").
	// Elasticity passes are global boundary work, so bounded-lag
	// degrades to epoch pacing while either field is set — results stay
	// byte-identical across sync modes and worker counts.
	Migration *MigrationConfig
	// ReplicaSet, when non-nil, enables ReplicaSet-style horizontal
	// autoscaling: trace VMs carrying service= anchor a service; a
	// controller scales VM replicas per service against windowed SLO
	// attainment, with readiness gating and ReplicaFailure conditions
	// (docs/cluster.md, "Horizontal autoscaling").
	ReplicaSet *ReplicaSetConfig
}

// lag resolves the effective staleness/run-ahead bound.
func (cfg *FleetConfig) lag() int {
	if cfg.LagEpochs == 0 {
		return DefaultLagEpochs
	}
	return cfg.LagEpochs
}

// recordPlacements resolves the RecordPlacements default (on).
func (cfg *FleetConfig) recordPlacements() bool {
	return cfg.RecordPlacements == nil || *cfg.RecordPlacements
}

// Placement records where one VM was admitted.
type Placement struct {
	VM   string
	Host int
}

// FleetResult aggregates one fleet run.
type FleetResult struct {
	Policy string
	Hosts  int

	// Placed/Departed/PhaseChanges count processed churn events.
	Placed, Departed, PhaseChanges int
	// Placements lists every admission in trace order (nil when
	// FleetConfig.RecordPlacements points at false).
	Placements []Placement

	// Load holds the summed per-VM load-generator accounting.
	Load loadgen.Stats
	// Hist is the merged reply-latency histogram (milliseconds).
	Hist *metrics.Histogram
	// Attainment is the fleet-wide SLO attainment over offered requests.
	Attainment float64

	// Reconfigs counts scaling actions: freeze/unfreeze (or hotplug)
	// operations taken by the per-VM daemons plus those applied by the
	// control plane's policy.
	Reconfigs uint64
	// CostVCPUSeconds is the provisioned cost of the run: the integral
	// of every VM's active (unfrozen) vCPU count over its lifetime
	// within the churn horizon, in vCPU-seconds. Together with
	// Attainment it places the policy on the cost-vs-attainment
	// frontier. In-flight requests at the end of the run count against
	// Attainment (see loadgen.Stats) but never add cost: a retired VM's
	// meter stops at departure even while its stragglers drain.
	CostVCPUSeconds float64
	// AvgHostUtil is the mean pCPU busy fraction across hosts.
	AvgHostUtil float64
	// CentralSweep is what one end-of-run central monitoring pass over
	// the whole fleet would cost through dom0 (Figure 4 cost model,
	// summed over hosts) — the price VCPU-Bal pays per period and
	// vScale's per-VM channels avoid.
	CentralSweep sim.Time

	// Elasticity accounting (zero unless FleetConfig.Migration /
	// ReplicaSet enable the layer). Migrations counts committed
	// stop-and-copy cutovers; MigrationsAborted ones whose VM vanished
	// before cutover; MigrationDowntime and MigrationBytes sum the
	// modeled per-migration downtime and pre-copy traffic.
	Migrations        int
	MigrationsAborted int
	MigrationDowntime sim.Time
	MigrationBytes    int64
	// ReplicasCreated/ReplicasRetired count horizontal scaling actions;
	// ReplicaFailures counts scale-outs refused by the commit cap
	// (ReplicaFailure conditions).
	ReplicasCreated int
	ReplicasRetired int
	ReplicaFailures int
}

// RunFleet drives one fleet through a churn trace. Churn events are
// routed to hosts in trace order; arrivals are placed with Algorithm 1
// over bounded-staleness fleet snapshots (see FleetConfig.LagEpochs);
// each host runs its own per-epoch policy pass at its boundaries. The
// executor is selected by cfg.Sync: epoch-lockstep barriers or the
// bounded-lag asynchronous pool. Aggregation walks hosts and VMs in
// deterministic admission order, so the result is identical for any
// worker count and either sync mode.
func RunFleet(cfg FleetConfig, events []Event) (FleetResult, error) {
	plan, sync, err := prepareFleet(&cfg, events)
	if err != nil {
		return FleetResult{}, err
	}
	pols, hosts, err := buildFleetHosts(&cfg)
	if err != nil {
		return FleetResult{}, err
	}

	res := FleetResult{Policy: cfg.Policy, Hosts: cfg.Hosts}
	rt := newFleetRouter(&cfg, plan, &res)
	if rt.el != nil {
		rt.el.attachHosts(hosts)
	}

	switch sync {
	case SyncLockstep:
		ring := newSnapRing(cfg.Hosts, rt.lag)
		err = runLockstep(&cfg, plan, hosts, pols, rt, &res, ring, 0, 0)
	default:
		err = runBoundedLag(&cfg, plan, hosts, pols, rt, &res, 0, nil)
	}
	if err != nil {
		return res, err
	}
	if err := aggregate(&cfg, hosts, &res); err != nil {
		return res, err
	}
	return res, nil
}

// prepareFleet validates a fleet configuration in place (applying the
// Epoch/Drain defaults) and builds the epoch plan — the shared front
// half of RunFleet, CaptureWarmPrefix and RunFleetFork.
func prepareFleet(cfg *FleetConfig, events []Event) (*epochPlan, SyncMode, error) {
	if cfg.Hosts <= 0 || cfg.PCPUsPerHost <= 0 {
		return nil, "", fmt.Errorf("cluster: need positive Hosts and PCPUsPerHost")
	}
	if cfg.Horizon <= 0 {
		return nil, "", fmt.Errorf("cluster: need a positive Horizon")
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = DefaultEpoch
	}
	if cfg.Drain <= 0 {
		cfg.Drain = 2 * sim.Second
	}
	if cfg.LagEpochs < 0 {
		return nil, "", fmt.Errorf("cluster: negative LagEpochs %d", cfg.LagEpochs)
	}
	sync, err := ParseSyncMode(string(cfg.Sync))
	if err != nil {
		return nil, "", err
	}
	if cfg.Tracers != nil && len(cfg.Tracers) != cfg.Hosts {
		return nil, "", fmt.Errorf("cluster: %d tracers for %d hosts", len(cfg.Tracers), cfg.Hosts)
	}
	plan, err := planEpochs(cfg, events)
	if err != nil {
		return nil, "", err
	}
	if cfg.WarmEpochs < 0 || cfg.WarmEpochs >= plan.epochs() {
		return nil, "", fmt.Errorf("cluster: WarmEpochs %d outside [0, %d)", cfg.WarmEpochs, plan.epochs())
	}
	if cfg.Migration != nil {
		if err := cfg.Migration.Validate(); err != nil {
			return nil, "", err
		}
	}
	if cfg.ReplicaSet != nil {
		if err := cfg.ReplicaSet.Validate(); err != nil {
			return nil, "", err
		}
	}
	if cfg.CheckpointEpoch != 0 {
		if cfg.CheckpointEpoch <= cfg.WarmEpochs || cfg.CheckpointEpoch >= plan.epochs() {
			return nil, "", fmt.Errorf("cluster: CheckpointEpoch %d outside (%d, %d)",
				cfg.CheckpointEpoch, cfg.WarmEpochs, plan.epochs())
		}
		if cfg.Tracers != nil {
			return nil, "", fmt.Errorf("cluster: tracers are not checkpointable")
		}
	}
	return plan, sync, nil
}

// buildFleetHosts constructs the fleet's hosts and policy instances.
// One fresh policy instance per host: controllers key their memory per
// VM name and placement never migrates a VM, so host-sharded instances
// produce the decisions a fleet-shared instance would — while letting
// every host run its policy pass on its own timeline. Hosts start
// disarmed when a warm prefix is configured; Arm fires at its boundary.
func buildFleetHosts(cfg *FleetConfig) ([]ScalingPolicy, []*Host, error) {
	pols := make([]ScalingPolicy, cfg.Hosts)
	hosts := make([]*Host, cfg.Hosts)
	for i := range hosts {
		pol, err := NewPolicy(cfg.Policy)
		if err != nil {
			return nil, nil, err
		}
		pols[i] = pol
		var tr *trace.Tracer
		if cfg.Tracers != nil {
			tr = cfg.Tracers[i]
		}
		h, err := NewHost(i, HostConfig{
			PCPUs:    cfg.PCPUsPerHost,
			Seed:     runner.DeriveSeed(cfg.Seed, i),
			Policy:   pol,
			SLO:      cfg.SLO,
			Tracer:   tr,
			Disarmed: cfg.WarmEpochs > 0,
		})
		if err != nil {
			return nil, nil, err
		}
		hosts[i] = h
	}
	return pols, hosts, nil
}

// telemetryFrom returns the first boundary with a collection epoch:
// boundary 1 normally, the warm boundary when a warm prefix defers
// collection past the policy-neutral epochs.
func telemetryFrom(cfg *FleetConfig) int {
	if cfg.WarmEpochs > 1 {
		return cfg.WarmEpochs
	}
	return 1
}

// quiesceBefore reports whether epoch k must run with the quiesce
// barrier armed at its start, so the fleet is drained at boundary k+1 —
// true for the epoch preceding the warm boundary and the one preceding
// the checkpoint boundary.
func quiesceBefore(cfg *FleetConfig, k int) bool {
	return (cfg.WarmEpochs > 0 && k == cfg.WarmEpochs-1) ||
		(cfg.CheckpointEpoch > 0 && k == cfg.CheckpointEpoch-1)
}

// runLockstep is the reference executor: one runner.Run barrier per
// epoch, boundary work on the control-plane goroutine in host order.
// The ring holds the boundary snapshots for placement (preloaded by a
// restoring caller); start is the first epoch to run (0 for a fresh
// fleet, the capture boundary when resuming from a checkpoint); a
// positive stopAt returns with the hosts parked — still quiesced and
// unarmed — at that boundary, the warm-prefix exit used by
// CaptureWarmPrefix.
func runLockstep(cfg *FleetConfig, plan *epochPlan, hosts []*Host, pols []ScalingPolicy, rt *fleetRouter, res *FleetResult, ring *snapRing, start, stopAt int) error {
	opts := runner.Options{Workers: cfg.Workers, Report: cfg.Report}
	runEpoch := func(until sim.Time) error {
		_, err := runner.Run(opts, len(hosts), func(ctx runner.Context) (struct{}, error) {
			return struct{}{}, hosts[ctx.Index].RunEpoch(until)
		})
		return err
	}
	telFrom := telemetryFrom(cfg)

	if start > 0 {
		// Resuming at a boundary: replay the boundary work the
		// uninterrupted run performed there after the capture point — the
		// collection epoch and (past the warm boundary) the policy pass.
		end := plan.ends[start-1]
		if start >= telFrom {
			collectTelemetry(cfg.Telemetry, end, hosts, res, cfg.SLO, rt)
		}
		if start > cfg.WarmEpochs {
			if rt.el != nil {
				rt.el.pass(start, end)
			}
			epoch := end - plan.starts[start-1]
			for i, h := range hosts {
				h.boundaryPolicy(pols[i], epoch)
			}
		}
	}

	for k := start; k < plan.epochs(); k++ {
		var stats [][]core.VMStat
		var committed []int
		if plan.hasArrival[k] {
			stats, committed = ring.at(rt.baseFor(k))
		}
		batches, err := rt.routeEpoch(k, stats, committed)
		if err != nil {
			return err
		}
		if batches != nil {
			for i, h := range hosts {
				h.scheduleRouted(batches[i])
			}
		}
		if quiesceBefore(cfg, k) {
			// After the batch, so the quiesce event lands in the same
			// engine order in both executors.
			for _, h := range hosts {
				h.ScheduleQuiesce(plan.starts[k])
			}
		}
		end := plan.ends[k]
		if err := runEpoch(end); err != nil {
			return err
		}
		epoch := end - plan.starts[k]
		for i, h := range hosts {
			ring.set(k+1, i, h.Snapshot(epoch), h.CommittedVCPUs())
		}
		b := k + 1
		if stopAt > 0 && b == stopAt {
			return nil
		}
		if cfg.WarmEpochs > 0 && b == cfg.WarmEpochs {
			for _, h := range hosts {
				h.Arm()
			}
		}
		if cfg.CheckpointEpoch > 0 && b == cfg.CheckpointEpoch {
			// Capture before the collection epoch and the policy pass: the
			// restored run replays both, and the policy pass would leave
			// uncapturable zero-delay IPIs pending.
			if cfg.CheckpointPath != "" {
				cp, err := captureFleet(cfg, hosts, pols, rt, res, ringBoundaries(ring, rt, b), b, end)
				if err != nil {
					return err
				}
				if err := SaveCheckpoint(cfg.CheckpointPath, cp); err != nil {
					return err
				}
			}
			if rt.el == nil {
				for _, h := range hosts {
					h.ResumeLoad()
				}
			}
		}
		if b >= telFrom {
			collectTelemetry(cfg.Telemetry, end, hosts, res, cfg.SLO, rt)
		}
		if b > cfg.WarmEpochs {
			if rt.el != nil {
				if b == cfg.CheckpointEpoch {
					// With the elasticity layer on, the post-capture resume
					// happens here — on the control plane, right before the
					// pass — matching the bounded-lag executor's barrier
					// order (resume and collection commute: collection only
					// reads state the resume never touches).
					for _, h := range hosts {
						h.ResumeLoad()
					}
				}
				rt.el.pass(b, end)
			}
			// Policy pass: every live VM is observed and decided on in host
			// order then admission order, while all engines are parked at the
			// boundary. Daemon-driven policies return 0 (their in-guest
			// mechanism is already steering); a positive target is applied
			// through the guest balancer and takes effect next epoch.
			for i, h := range hosts {
				h.boundaryPolicy(pols[i], epoch)
			}
		}
	}

	// Horizon reached: stop all load and drain in-flight requests.
	for _, h := range hosts {
		h.StopAll()
	}
	if err := runEpoch(cfg.Horizon + cfg.Drain); err != nil {
		return err
	}
	// One terminal collection epoch so the scrape endpoint and the JSONL
	// stream both end on the fully drained state.
	collectTelemetry(cfg.Telemetry, cfg.Horizon+cfg.Drain, hosts, res, cfg.SLO, rt)
	return nil
}

// aggregate folds the finished hosts into the result: a fixed walk in
// host order, then VM admission order, independent of scheduling
// interleavings. The merge target histogram is allocated once and each
// VM's stats pass through one scratch value.
func aggregate(cfg *FleetConfig, hosts []*Host, res *FleetResult) error {
	res.Hist = metrics.NewHistogram(metrics.DefaultLatencyBuckets())
	var util float64
	var scratch loadgen.Stats
	vmsPerHost := make([]int, len(hosts))
	for i, h := range hosts {
		util += h.Util()
		vmsPerHost[i] = len(h.order)
		res.CostVCPUSeconds += h.ProvisionedVCPUSeconds()
		for _, name := range h.order {
			vm := h.vms[name]
			scratch = vm.gen.Stats()
			res.Load.Add(scratch)
			if err := res.Hist.Merge(vm.gen.Hist()); err != nil {
				return err
			}
			_, decisions := vm.k.DaemonStats()
			res.Reconfigs += decisions + vm.policyOps
		}
	}
	res.Attainment = res.Load.Attainment()
	res.AvgHostUtil = util / float64(len(hosts))

	// Price a central VCPU-Bal-style monitoring pass over this fleet,
	// using a seed-stable dom0 sampler so the figure does not depend on
	// per-host RNG positions.
	d0 := dom0.New(dom0.DefaultConfig(), sim.NewRand(cfg.Seed^0x2545f491))
	for _, lat := range d0.FleetSweep(vmsPerHost, dom0.Idle) {
		res.CentralSweep += lat
	}
	return nil
}
