// Package xen models the hypervisor substrate of the vScale paper: a
// credit-scheduler hypervisor in the style of Xen 4.5 (30 ms time slice,
// 10 ms ticks, 30 ms accounting, BOOST/UNDER/OVER priorities, per-pCPU
// runqueues with work stealing), CPU pools, event channels, per-vCPU
// one-shot timers, and the vScale scheduler extension (per-VM weights,
// frozen-vCPU exclusion from credit accounting, the extendability ticker
// and the vScale communication channel).
//
// Everything runs in virtual time on an internal/sim engine and is fully
// deterministic.
package xen

import (
	"fmt"

	"vscale/internal/core"
	"vscale/internal/metrics"
	"vscale/internal/sim"
)

// VCPUState is the hypervisor-visible state of a virtual CPU.
type VCPUState int

// VCPU states.
const (
	// StateBlocked: the vCPU has no work (guest idled it via
	// SCHED_block) and waits for an event.
	StateBlocked VCPUState = iota
	// StateRunnable: the vCPU sits in a pCPU runqueue waiting to be
	// scheduled. Time spent here is the scheduling delay the paper is
	// about.
	StateRunnable
	// StateRunning: the vCPU currently occupies a pCPU.
	StateRunning
)

func (s VCPUState) String() string {
	switch s {
	case StateBlocked:
		return "blocked"
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	default:
		return fmt.Sprintf("VCPUState(%d)", int(s))
	}
}

// Priority is the credit scheduler's priority class. Lower value means
// scheduled first.
type Priority int

// Credit-scheduler priority classes.
const (
	// PriBoost is granted to vCPUs that wake from blocking while UNDER,
	// letting latency-sensitive vCPUs preempt (Xen's boost mechanism).
	PriBoost Priority = iota
	// PriUnder marks vCPUs with remaining credit.
	PriUnder
	// PriOver marks vCPUs that exhausted their credit; they run only
	// when nothing UNDER is runnable (work conservation).
	PriOver
)

func (p Priority) String() string {
	switch p {
	case PriBoost:
		return "BOOST"
	case PriUnder:
		return "UNDER"
	case PriOver:
		return "OVER"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// GuestOS is what the hypervisor knows about the software inside a
// domain. internal/guest.Kernel implements it; tests use lightweight
// fakes.
//
// Contract: Dispatched/Descheduled/DeliverEvent are invoked synchronously
// from the scheduler. The guest must not re-enter scheduling hypercalls
// (Block) from inside these callbacks; if a dispatched vCPU discovers it
// has nothing to run, it must defer the block with a zero-delay engine
// event (the cost of running the idle task briefly, which is also what
// real hardware pays).
type GuestOS interface {
	// Dispatched tells the guest that vcpu just started running on a
	// pCPU; the guest resumes the thread context and re-arms its local
	// timer events.
	Dispatched(vcpu int)
	// Descheduled tells the guest that vcpu lost its pCPU (preemption or
	// its own block); the guest must stop charging work and cancel
	// pending local events for that vcpu.
	Descheduled(vcpu int)
	// DeliverEvent delivers an event-channel upcall to a running vcpu.
	DeliverEvent(vcpu int, port *Port)
}

// PortKind classifies event channel ports.
type PortKind int

// Port kinds.
const (
	// PortIPI is an inter-vCPU notification within a domain (used for
	// reschedule IPIs).
	PortIPI PortKind = iota
	// PortVIRQTimer is the per-vCPU one-shot timer interrupt.
	PortVIRQTimer
	// PortIRQ is an external device interrupt (network, disk) bound to
	// one vCPU and rebindable at runtime (vScale migrates these away
	// from frozen vCPUs).
	PortIRQ
)

func (k PortKind) String() string {
	switch k {
	case PortIPI:
		return "ipi"
	case PortVIRQTimer:
		return "virq-timer"
	case PortIRQ:
		return "irq"
	default:
		return fmt.Sprintf("PortKind(%d)", int(k))
	}
}

// Port is one event channel. Notifications to a port are delivered to
// the bound vCPU: immediately if it is running, on next dispatch if it
// is queued, and after waking it if it is blocked.
type Port struct {
	Kind      PortKind
	Name      string
	dom       *Domain
	target    int // bound vCPU id
	pending   bool
	pendingAt sim.Time
}

// Target returns the vCPU the port is currently bound to.
func (p *Port) Target() int { return p.target }

// Domain returns the owning domain.
func (p *Port) Domain() *Domain { return p.dom }

// VCPU is a virtual CPU as the hypervisor sees it.
type VCPU struct {
	dom *Domain
	id  int

	state VCPUState
	pri   Priority
	// credits is the remaining entitled CPU time (signed, in virtual ns)
	// under the credit policy.
	credits sim.Time
	// vruntime is the weighted virtual runtime under the VRT policy.
	vruntime sim.Time
	// pcpu is the current placement; for blocked vCPUs it remembers the
	// last pCPU for wake affinity.
	pcpu *PCPU

	queuedAt     sim.Time // when it entered StateRunnable
	dispatchedAt sim.Time // last dispatch / partial-burn checkpoint

	pendingPorts []*Port
	timer        *sim.Timer // one-shot VIRQ timer armed by the guest

	// frozen mirrors the guest's cpu_freeze_mask at the hypervisor: a
	// frozen vCPU is excluded from credit accounting (removed from the
	// domain's active list) so sibling vCPUs earn more.
	frozen bool

	// reconfigBoost prioritises the next wakeup/tickle of this vCPU:
	// vScale asks the hypervisor to deliver reschedule IPIs to a vCPU
	// under reconfiguration as fast as possible.
	reconfigBoost bool

	// Stats.
	RunTime     sim.Time
	WaitTime    sim.Time
	Wakeups     uint64
	Dispatches  uint64
	Preemptions uint64
}

// ID returns the vCPU index within its domain.
func (v *VCPU) ID() int { return v.id }

// Domain returns the owning domain.
func (v *VCPU) Domain() *Domain { return v.dom }

// State returns the current scheduler state.
func (v *VCPU) State() VCPUState { return v.state }

// Priority returns the current credit priority class.
func (v *VCPU) Priority() Priority { return v.pri }

// Credits returns the remaining credit in virtual ns.
func (v *VCPU) Credits() sim.Time { return v.credits }

// Frozen reports whether the guest froze this vCPU.
func (v *VCPU) Frozen() bool { return v.frozen }

// Domain is a VM: a weight, a set of vCPUs, event channel ports and a
// guest OS.
type Domain struct {
	pool *Pool
	id   int
	Name string

	// Weight is the domain's proportional share. Following the paper's
	// Xen modification, weight is per-VM: freezing vCPUs does not change
	// the domain's total entitlement (see Config.PerVCPUWeight for the
	// unpatched behaviour).
	Weight float64
	// CapPCPUs bounds the domain's CPU consumption (0 = uncapped).
	CapPCPUs float64
	// ReservationPCPUs is the guaranteed lower bound used by the
	// extendability calculation (the credit scheduler itself does not
	// enforce it).
	ReservationPCPUs float64

	vcpus []*VCPU
	guest GuestOS

	ipiPorts   []*Port // one per vCPU
	timerPorts []*Port // one per vCPU
	irqPorts   []*Port // allocated by AllocIRQ

	// periodConsumed accumulates CPU time for the vScale extendability
	// ticker and is reset every vScale period.
	periodConsumed sim.Time
	// acctActive marks the domain as having consumed CPU since the last
	// credit accounting; inactive domains do not receive credits.
	acctActive bool

	// ext is the most recent extendability result, readable by the guest
	// through the vScale channel.
	ext core.Extendability

	// Stats.
	TotalRunTime  sim.Time
	TotalWaitTime sim.Time

	// IPIDelay and IRQDelay sample the event-channel delivery latency
	// (µs) for inter-vCPU notifications and device interrupts — the
	// quantities behind the paper's Figure 1(b) and 1(c).
	IPIDelay metrics.Sample
	IRQDelay metrics.Sample
}

// ID returns the domain id.
func (d *Domain) ID() int { return d.id }

// Pool returns the CPU pool hosting the domain.
func (d *Domain) Pool() *Pool { return d.pool }

// VCPUCount returns the configured number of vCPUs.
func (d *Domain) VCPUCount() int { return len(d.vcpus) }

// VCPU returns the i-th vCPU.
func (d *Domain) VCPU(i int) *VCPU { return d.vcpus[i] }

// Guest returns the attached guest OS.
func (d *Domain) Guest() GuestOS { return d.guest }

// ActiveVCPUs returns the number of non-frozen vCPUs.
func (d *Domain) ActiveVCPUs() int {
	n := 0
	for _, v := range d.vcpus {
		if !v.frozen {
			n++
		}
	}
	return n
}

// IPIPort returns the IPI port bound to the given vCPU.
func (d *Domain) IPIPort(vcpu int) *Port { return d.ipiPorts[vcpu] }

// AllocIRQ allocates a device interrupt port initially bound to vcpu.
func (d *Domain) AllocIRQ(name string, vcpu int) *Port {
	p := &Port{Kind: PortIRQ, Name: name, dom: d, target: vcpu}
	d.irqPorts = append(d.irqPorts, p)
	return p
}

// IRQPorts returns the domain's device interrupt ports.
func (d *Domain) IRQPorts() []*Port { return d.irqPorts }

// RebindIRQ changes an IRQ port's bound vCPU (Xen's event-channel
// rebinding; the cost of the hypercall is charged by the guest caller).
func (d *Domain) RebindIRQ(p *Port, vcpu int) {
	if p.Kind != PortIRQ {
		panic("xen: only IRQ ports can be rebound")
	}
	if vcpu < 0 || vcpu >= len(d.vcpus) {
		panic(fmt.Sprintf("xen: rebind to invalid vCPU %d", vcpu))
	}
	p.target = vcpu
}

// SendIPI notifies the IPI port of the target vCPU (a reschedule IPI in
// the guest's eyes). from is informational.
func (d *Domain) SendIPI(from, to int) {
	d.pool.Notify(d.ipiPorts[to])
}

// KickVCPU wakes a blocked vCPU through its IPI port without a sender
// (used at guest boot and by test harnesses).
func (d *Domain) KickVCPU(id int) {
	d.pool.Notify(d.ipiPorts[id])
}

// SetTimer arms the vCPU's one-shot timer to fire VIRQ_TIMER at the
// absolute virtual time at. Re-arming supersedes the previous deadline.
func (v *VCPU) SetTimer(at sim.Time) {
	v.timer.ResetAt(at)
}

// StopTimer cancels a pending timer.
func (v *VCPU) StopTimer() { v.timer.Stop() }

// Extendability returns the domain's latest vScale extendability result
// (zero value if the extension is disabled or has not ticked yet). This
// is the raw read; guests go through the vScale channel which also
// charges the syscall+hypercall cost.
func (d *Domain) Extendability() core.Extendability { return d.ext }
