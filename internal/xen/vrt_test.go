package xen

import (
	"math"
	"testing"

	"vscale/internal/sim"
)

func setupVRT(t *testing.T, pcpus int, vscale bool) (*sim.Engine, *Pool) {
	t.Helper()
	eng := sim.NewEngine(2)
	cfg := DefaultConfig(pcpus)
	cfg.Policy = PolicyVRT
	cfg.VScale = vscale
	pool := NewPool(eng, cfg)
	return eng, pool
}

func TestVRTFairSplit(t *testing.T) {
	eng, pool := setupVRT(t, 1, false)
	a, _ := addHogDomain(eng, pool, "a", 256, 1)
	b, _ := addHogDomain(eng, pool, "b", 256, 1)
	pool.Start()
	if err := eng.RunUntil(6 * sim.Second); err != nil {
		t.Fatal(err)
	}
	ra, rb := a.TotalRunTime.Seconds(), b.TotalRunTime.Seconds()
	if math.Abs(ra-rb) > 0.2 {
		t.Fatalf("VRT unfair: a=%fs b=%fs", ra, rb)
	}
	if ra+rb < 5.9 {
		t.Fatalf("VRT not work conserving: %fs of 6s", ra+rb)
	}
}

func TestVRTWeightedSharing(t *testing.T) {
	eng, pool := setupVRT(t, 1, false)
	a, _ := addHogDomain(eng, pool, "a", 768, 1)
	b, _ := addHogDomain(eng, pool, "b", 256, 1)
	pool.Start()
	if err := eng.RunUntil(9 * sim.Second); err != nil {
		t.Fatal(err)
	}
	ratio := float64(a.TotalRunTime) / float64(b.TotalRunTime)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("weight 3:1 not honoured under VRT: ratio %f", ratio)
	}
}

func TestVRTInteractiveLatency(t *testing.T) {
	// The VRT sleep bonus must give a waking vCPU prompt service
	// (bounded by the slice, not by the hog's accumulated runtime).
	eng, pool := setupVRT(t, 1, false)
	addHogDomain(eng, pool, "hog", 256, 1)
	gInt := newFakeGuest(eng, pool, 1)
	dInt := pool.AddDomain("interactive", 256, 1, gInt)
	gInt.dom = dInt
	gInt.onEvent = func(v int, port *Port) {
		if port.Kind == PortIPI {
			gInt.work[v] = sim.Millisecond
			gInt.Descheduled(v)
			gInt.Dispatched(v)
		}
	}
	dInt.KickVCPU(0)
	tick := sim.NewTicker(eng, "poke", 100*sim.Millisecond, func() { dInt.KickVCPU(0) })
	tick.Start()
	pool.Start()
	if err := eng.RunUntil(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	v := dInt.VCPU(0)
	if v.Wakeups < 40 {
		t.Fatalf("wakeups = %d", v.Wakeups)
	}
	avgWait := sim.Time(float64(v.WaitTime) / float64(v.Wakeups))
	// The waking vCPU's vruntime floor puts it at most one slice behind
	// the hog, so it runs within a couple of ticks.
	if avgWait > 25*sim.Millisecond {
		t.Fatalf("interactive avg wait = %v under VRT", avgWait)
	}
}

func TestVRTVScaleExtensionWorks(t *testing.T) {
	// The extendability calculation is scheduler-agnostic: it must give
	// the same answers under VRT as under credit.
	eng, pool := setupVRT(t, 4, true)
	busy, _ := addHogDomain(eng, pool, "busy", 256, 4)
	gIdle := newFakeGuest(eng, pool, 2)
	idle := pool.AddDomain("idle", 128, 2, gIdle)
	gIdle.dom = idle
	idle.KickVCPU(0)
	pool.Start()
	if err := eng.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	eb, ei := busy.Extendability(), idle.Extendability()
	if !eb.Competitor || eb.OptimalVCPUs != 4 {
		t.Fatalf("busy extendability under VRT: %+v", eb)
	}
	if ei.Competitor || ei.OptimalVCPUs != 2 {
		t.Fatalf("idle extendability under VRT: %+v", ei)
	}
}

func TestVRTFreezeConcentratesWeight(t *testing.T) {
	// Per-VM weight under VRT: with one vCPU frozen, the survivor ages
	// at half rate and keeps the domain's share.
	eng, pool := setupVRT(t, 1, false)
	smp, gs := addHogDomain(eng, pool, "smp", 256, 2)
	up, _ := addHogDomain(eng, pool, "up", 256, 1)
	pool.Start()
	eng.After(0, "freeze", func() {
		smp.HypercallCPUFreeze(1, true)
		gs.work[1] = 0
		pool.Block(smp.VCPU(1))
	})
	if err := eng.RunUntil(6 * sim.Second); err != nil {
		t.Fatal(err)
	}
	ratio := float64(smp.TotalRunTime) / float64(up.TotalRunTime)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("per-VM weight not preserved under VRT: ratio %f", ratio)
	}
}

func TestVRTProportionalFairnessProperty(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		r := sim.NewRand(seed)
		eng := sim.NewEngine(seed)
		cfg := DefaultConfig(2)
		cfg.Policy = PolicyVRT
		pool := NewPool(eng, cfg)
		n := 2 + r.Intn(4)
		doms := make([]*Domain, n)
		weights := make([]float64, n)
		for i := 0; i < n; i++ {
			weights[i] = float64(64 * (1 + r.Intn(8)))
			doms[i], _ = addHogDomain(eng, pool, string(rune('a'+i)), weights[i], 1)
		}
		pool.Start()
		if err := eng.RunUntil(10 * sim.Second); err != nil {
			t.Fatal(err)
		}
		var rsum sim.Time
		for i := range doms {
			rsum += doms[i].TotalRunTime
		}
		if rsum.Seconds() < 19.5 {
			t.Fatalf("seed %d: not work conserving", seed)
		}
		want := waterFill(weights, 0.5)
		for i := range doms {
			got := float64(doms[i].TotalRunTime) / float64(rsum)
			if math.Abs(got-want[i])/want[i] > 0.25 {
				t.Fatalf("seed %d dom %d: share %f, want %f", seed, i, got, want[i])
			}
		}
	}
}

func TestVRTDeterminism(t *testing.T) {
	run := func() (sim.Time, uint64) {
		eng, pool := setupVRT(t, 2, true)
		a, _ := addHogDomain(eng, pool, "a", 256, 2)
		addHogDomain(eng, pool, "b", 128, 2)
		pool.Start()
		if err := eng.RunUntil(2 * sim.Second); err != nil {
			t.Fatal(err)
		}
		return a.TotalRunTime, eng.Processed
	}
	a1, n1 := run()
	a2, n2 := run()
	if a1 != a2 || n1 != n2 {
		t.Fatal("VRT not deterministic")
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyCredit.String() != "credit" || PolicyVRT.String() != "vrt" {
		t.Fatal("policy labels")
	}
	if SchedPolicy(9).String() == "" {
		t.Fatal("unknown policy label")
	}
}
