package xen

import (
	"fmt"
	"strings"

	"vscale/internal/core"
	"vscale/internal/sim"
)

// Checkpoint support for the hypervisor layer (docs/checkpoint.md).
// Pools are checkpointed only when quiesced: every pCPU idle, every vCPU
// blocked, no pending event-channel notifications. At that point the
// pool's only live engine events are its periodic tickers (and possibly
// armed per-vCPU one-shot timers), all of which RearmPending can rebuild
// from a (label, deadline) descriptor — nothing in the snapshot is a
// closure.

// VCPUCheckpoint is the semantic state of one vCPU. The scheduler state
// itself is not recorded: a quiesced vCPU is blocked by definition, and
// restore validates that the rebuilt vCPU is too.
type VCPUCheckpoint struct {
	Pri           int      `json:"pri"`
	Credits       sim.Time `json:"credits"`
	VRuntime      sim.Time `json:"vruntime"`
	PCPU          int      `json:"pcpu"`
	QueuedAt      sim.Time `json:"queued_at"`
	DispatchedAt  sim.Time `json:"dispatched_at"`
	Frozen        bool     `json:"frozen"`
	ReconfigBoost bool     `json:"reconfig_boost"`
	RunTime       sim.Time `json:"run_time"`
	WaitTime      sim.Time `json:"wait_time"`
	Wakeups       uint64   `json:"wakeups"`
	Dispatches    uint64   `json:"dispatches"`
	Preemptions   uint64   `json:"preemptions"`
}

// DomainCheckpoint is the semantic state of one domain. Weight/cap/
// reservation are configuration, recorded for cross-checking against the
// rebuilt domain. The IPIDelay/IRQDelay diagnostic samples are
// deliberately excluded (write-only, see docs/checkpoint.md).
type DomainCheckpoint struct {
	Name             string             `json:"name"`
	Weight           float64            `json:"weight"`
	CapPCPUs         float64            `json:"cap_pcpus"`
	ReservationPCPUs float64            `json:"reservation_pcpus"`
	PeriodConsumed   sim.Time           `json:"period_consumed"`
	AcctActive       bool               `json:"acct_active"`
	Ext              core.Extendability `json:"ext"`
	TotalRunTime     sim.Time           `json:"total_run_time"`
	TotalWaitTime    sim.Time           `json:"total_wait_time"`
	VCPUs            []VCPUCheckpoint   `json:"vcpus"`
}

// PCPUCheckpoint is the semantic state of one idle pCPU.
type PCPUCheckpoint struct {
	IdleSince sim.Time `json:"idle_since"`
	IdleTime  sim.Time `json:"idle_time"`
	Switches  uint64   `json:"switches"`
}

// PoolCheckpoint is the semantic state of a quiesced pool.
type PoolCheckpoint struct {
	VScaleTicks uint64             `json:"vscale_ticks"`
	PCPUs       []PCPUCheckpoint   `json:"pcpus"`
	Domains     []DomainCheckpoint `json:"domains"`
}

// QuiesceCheck verifies the pool is in the only shape this layer knows
// how to checkpoint: all pCPUs idle with empty runqueues and stopped
// slice timers, all vCPUs blocked with no pending event-channel
// notifications. It returns a descriptive error naming the first
// violation.
func (pool *Pool) QuiesceCheck() error {
	for _, p := range pool.pcpus {
		if p.current != nil {
			return fmt.Errorf("xen: pCPU %d is running %s.%d", p.id, p.current.dom.Name, p.current.id)
		}
		if len(p.runq) != 0 {
			return fmt.Errorf("xen: pCPU %d has %d queued vCPUs", p.id, len(p.runq))
		}
		if p.sliceTimer.Armed() {
			return fmt.Errorf("xen: pCPU %d slice timer still armed", p.id)
		}
		if !p.idle {
			return fmt.Errorf("xen: pCPU %d not marked idle", p.id)
		}
	}
	for _, d := range pool.domains {
		for _, v := range d.vcpus {
			if v.state != StateBlocked {
				return fmt.Errorf("xen: vCPU %s.%d is %v, not blocked", d.Name, v.id, v.state)
			}
			if len(v.pendingPorts) != 0 {
				return fmt.Errorf("xen: vCPU %s.%d has %d pending ports", d.Name, v.id, len(v.pendingPorts))
			}
		}
		for _, ports := range [][]*Port{d.ipiPorts, d.timerPorts, d.irqPorts} {
			for _, p := range ports {
				if p.pending {
					return fmt.Errorf("xen: port %s/%s still pending", d.Name, p.Name)
				}
			}
		}
	}
	return nil
}

// CaptureState exports the pool's semantic state. The caller is expected
// to have verified QuiesceCheck; capture itself does not require it, but
// restoring a non-quiesced capture is not supported.
func (pool *Pool) CaptureState() PoolCheckpoint {
	cp := PoolCheckpoint{VScaleTicks: pool.VScaleTicks}
	for _, p := range pool.pcpus {
		cp.PCPUs = append(cp.PCPUs, PCPUCheckpoint{
			IdleSince: p.idleSince,
			IdleTime:  p.IdleTime,
			Switches:  p.Switches,
		})
	}
	for _, d := range pool.domains {
		dc := DomainCheckpoint{
			Name:             d.Name,
			Weight:           d.Weight,
			CapPCPUs:         d.CapPCPUs,
			ReservationPCPUs: d.ReservationPCPUs,
			PeriodConsumed:   d.periodConsumed,
			AcctActive:       d.acctActive,
			Ext:              d.ext,
			TotalRunTime:     d.TotalRunTime,
			TotalWaitTime:    d.TotalWaitTime,
		}
		for _, v := range d.vcpus {
			dc.VCPUs = append(dc.VCPUs, VCPUCheckpoint{
				Pri:           int(v.pri),
				Credits:       v.credits,
				VRuntime:      v.vruntime,
				PCPU:          v.pcpu.id,
				QueuedAt:      v.queuedAt,
				DispatchedAt:  v.dispatchedAt,
				Frozen:        v.frozen,
				ReconfigBoost: v.reconfigBoost,
				RunTime:       v.RunTime,
				WaitTime:      v.WaitTime,
				Wakeups:       v.Wakeups,
				Dispatches:    v.Dispatches,
				Preemptions:   v.Preemptions,
			})
		}
		cp.Domains = append(cp.Domains, dc)
	}
	return cp
}

// RestoreState overwrites the pool's semantic state from a capture. The
// pool must have been rebuilt with the same topology (same pCPU count,
// same domains in the same admission order with the same vCPU counts)
// and quiesced; mismatches are errors.
func (pool *Pool) RestoreState(cp PoolCheckpoint) error {
	if len(cp.PCPUs) != len(pool.pcpus) {
		return fmt.Errorf("xen: restoring %d pCPUs into a %d-pCPU pool", len(cp.PCPUs), len(pool.pcpus))
	}
	if len(cp.Domains) != len(pool.domains) {
		return fmt.Errorf("xen: restoring %d domains into a pool with %d", len(cp.Domains), len(pool.domains))
	}
	if err := pool.QuiesceCheck(); err != nil {
		return fmt.Errorf("xen: restore target not quiesced: %w", err)
	}
	for i, d := range pool.domains {
		dc := cp.Domains[i]
		if d.Name != dc.Name {
			return fmt.Errorf("xen: domain %d is %q, checkpoint has %q", i, d.Name, dc.Name)
		}
		if len(d.vcpus) != len(dc.VCPUs) {
			return fmt.Errorf("xen: domain %q has %d vCPUs, checkpoint has %d", d.Name, len(d.vcpus), len(dc.VCPUs))
		}
	}
	pool.VScaleTicks = cp.VScaleTicks
	for i, p := range pool.pcpus {
		pc := cp.PCPUs[i]
		p.idleSince = pc.IdleSince
		p.IdleTime = pc.IdleTime
		p.Switches = pc.Switches
	}
	for i, d := range pool.domains {
		dc := cp.Domains[i]
		d.Weight = dc.Weight
		d.CapPCPUs = dc.CapPCPUs
		d.ReservationPCPUs = dc.ReservationPCPUs
		d.periodConsumed = dc.PeriodConsumed
		d.acctActive = dc.AcctActive
		d.ext = dc.Ext
		d.TotalRunTime = dc.TotalRunTime
		d.TotalWaitTime = dc.TotalWaitTime
		for j, v := range d.vcpus {
			vc := dc.VCPUs[j]
			v.pri = Priority(vc.Pri)
			v.credits = vc.Credits
			v.vruntime = vc.VRuntime
			if vc.PCPU < 0 || vc.PCPU >= len(pool.pcpus) {
				return fmt.Errorf("xen: vCPU %s.%d placed on invalid pCPU %d", d.Name, j, vc.PCPU)
			}
			v.pcpu = pool.pcpus[vc.PCPU]
			v.queuedAt = vc.QueuedAt
			v.dispatchedAt = vc.DispatchedAt
			v.frozen = vc.Frozen
			v.reconfigBoost = vc.ReconfigBoost
			v.RunTime = vc.RunTime
			v.WaitTime = vc.WaitTime
			v.Wakeups = vc.Wakeups
			v.Dispatches = vc.Dispatches
			v.Preemptions = vc.Preemptions
		}
	}
	return nil
}

// RearmPending re-arms the pool-owned event behind a checkpointed
// descriptor label at the recorded absolute deadline. It recognises the
// scheduler tickers ("xen/tick", "xen/acct", "xen/vscale") and per-vCPU
// one-shot timers ("xen/vtimer/<domain>.<vcpu>"). It reports whether the
// label belongs to this pool; unknown pool labels are errors.
func (pool *Pool) RearmPending(label string, at sim.Time) (bool, error) {
	switch label {
	case "xen/tick":
		pool.tickTicker.ResumeAt(at)
		return true, nil
	case "xen/acct":
		pool.acctTicker.ResumeAt(at)
		return true, nil
	case "xen/vscale":
		if pool.vscaleTicker == nil {
			return true, fmt.Errorf("xen: checkpoint has a vscale tick but the extension is disabled")
		}
		pool.vscaleTicker.ResumeAt(at)
		return true, nil
	}
	rest, ok := strings.CutPrefix(label, "xen/vtimer/")
	if !ok {
		return false, nil
	}
	dot := strings.LastIndexByte(rest, '.')
	if dot < 0 {
		return true, fmt.Errorf("xen: malformed vtimer label %q", label)
	}
	name := rest[:dot]
	var id int
	if _, err := fmt.Sscanf(rest[dot+1:], "%d", &id); err != nil {
		return true, fmt.Errorf("xen: malformed vtimer label %q", label)
	}
	for _, d := range pool.domains {
		if d.Name != name {
			continue
		}
		if id < 0 || id >= len(d.vcpus) {
			return true, fmt.Errorf("xen: vtimer label %q names vCPU %d of %d", label, id, len(d.vcpus))
		}
		d.vcpus[id].timer.ResetAt(at)
		return true, nil
	}
	return true, fmt.Errorf("xen: vtimer label %q names an unknown domain", label)
}

// EnableVScale turns the vScale extension on after construction: it
// creates and starts the extendability ticker (first recalculation one
// period from now). It exists for the warm-fork path, where mechanisms
// stay disarmed during the policy-neutral warm prefix and are enabled at
// the fork boundary. Enabling an already-enabled pool is a no-op.
func (pool *Pool) EnableVScale() {
	if pool.vscaleTicker != nil {
		return
	}
	period := pool.cfg.VScalePeriod
	if period <= 0 {
		period = 10 * sim.Millisecond
	}
	pool.cfg.VScale = true
	pool.vscaleTicker = sim.NewTicker(pool.eng, "xen/vscale", period, pool.vscaleTick)
	if pool.started {
		pool.vscaleTicker.Start()
	}
}
