package xen

import (
	"fmt"

	"vscale/internal/core"
	"vscale/internal/sim"
	"vscale/internal/trace"
)

// SchedPolicy selects the pool's scheduling policy. The vScale
// extension works with either, as the paper claims for proportional-
// share schedulers in general: extendability is computed purely from
// weights and consumptions.
type SchedPolicy int

// Scheduling policies.
const (
	// PolicyCredit is Xen's credit scheduler (the default).
	PolicyCredit SchedPolicy = iota
	// PolicyVRT is a weighted virtual-runtime scheduler in the style of
	// BVT/CFS: vCPUs are ordered by weighted virtual runtime, waking
	// vCPUs get a bounded sleep bonus, and preemption is granularity-
	// limited. No credits, no BOOST.
	PolicyVRT
)

func (p SchedPolicy) String() string {
	switch p {
	case PolicyCredit:
		return "credit"
	case PolicyVRT:
		return "vrt"
	default:
		return fmt.Sprintf("SchedPolicy(%d)", int(p))
	}
}

// Config holds the scheduler parameters of a CPU pool. The zero value is
// not usable; call DefaultConfig.
type Config struct {
	// Policy selects the scheduling policy (credit by default).
	Policy SchedPolicy

	// PCPUs is the number of physical CPUs in the pool.
	PCPUs int
	// Slice is the scheduling time slice (Xen default 30 ms).
	Slice sim.Time
	// Tick is the credit-burn tick (Xen default 10 ms).
	Tick sim.Time
	// Acct is the credit accounting period (Xen default 30 ms).
	Acct sim.Time

	// VScale enables the vScale scheduler extension: the extendability
	// ticker and the hypercall surface used by the guest daemon.
	VScale bool
	// VScalePeriod is the extendability recalculation period (paper
	// default 10 ms).
	VScalePeriod sim.Time

	// PerVCPUWeight reverts to unpatched Xen 4.5 semantics where weight
	// is effectively per-vCPU: a domain's credit share scales with its
	// number of active vCPUs, so freezing vCPUs forfeits entitlement.
	// vScale's patch (the default, false) makes weight per-VM. Kept for
	// the A4 ablation.
	PerVCPUWeight bool
}

// DefaultConfig returns Xen 4.5 defaults over nPCPUs physical CPUs.
func DefaultConfig(nPCPUs int) Config {
	return Config{
		PCPUs:        nPCPUs,
		Slice:        30 * sim.Millisecond,
		Tick:         10 * sim.Millisecond,
		Acct:         30 * sim.Millisecond,
		VScalePeriod: 10 * sim.Millisecond,
	}
}

// PCPU is one physical CPU of a pool.
type PCPU struct {
	pool *Pool
	id   int

	runq    []*VCPU // ordered: priority class, FIFO within class
	current *VCPU

	sliceTimer *sim.Timer

	idle      bool
	idleSince sim.Time
	IdleTime  sim.Time
	Switches  uint64
}

// ID returns the pCPU index within its pool.
func (p *PCPU) ID() int { return p.id }

// Current returns the running vCPU (nil when idle).
func (p *PCPU) Current() *VCPU { return p.current }

// QueueLen returns the number of queued (runnable) vCPUs.
func (p *PCPU) QueueLen() int { return len(p.runq) }

// Pool is a set of pCPUs under one credit scheduler, plus the domains
// scheduled on them. It corresponds to a Xen CPU pool; the paper runs
// all domUs in a pool separate from dom0.
type Pool struct {
	eng *sim.Engine
	cfg Config

	pcpus   []*PCPU
	domains []*Domain

	tickTicker   *sim.Ticker
	acctTicker   *sim.Ticker
	vscaleTicker *sim.Ticker

	started bool
	// kicking guards kickIdle against recursion through dispatch.
	kicking bool

	// tr is the event tracer; nil means tracing is disabled and every
	// hook below is a single nil check.
	tr *trace.Tracer

	// VScaleTicks counts extendability recalculations (diagnostics).
	VScaleTicks uint64
}

// NewPool creates a pool with the given configuration.
func NewPool(eng *sim.Engine, cfg Config) *Pool {
	if cfg.PCPUs <= 0 {
		panic("xen: pool needs at least one pCPU")
	}
	if cfg.Slice <= 0 || cfg.Tick <= 0 || cfg.Acct <= 0 {
		panic("xen: scheduler periods must be positive")
	}
	pool := &Pool{eng: eng, cfg: cfg}
	for i := 0; i < cfg.PCPUs; i++ {
		p := &PCPU{pool: pool, id: i, idle: true}
		p.sliceTimer = sim.NewTimer(eng, fmt.Sprintf("xen/slice/p%d", i), func() { pool.dispatch(p) })
		pool.pcpus = append(pool.pcpus, p)
	}
	pool.tickTicker = sim.NewTicker(eng, "xen/tick", cfg.Tick, pool.tick)
	pool.acctTicker = sim.NewTicker(eng, "xen/acct", cfg.Acct, pool.acct)
	if cfg.VScale {
		period := cfg.VScalePeriod
		if period <= 0 {
			period = 10 * sim.Millisecond
		}
		pool.vscaleTicker = sim.NewTicker(eng, "xen/vscale", period, pool.vscaleTick)
	}
	return pool
}

// Engine returns the simulation engine.
func (pool *Pool) Engine() *sim.Engine { return pool.eng }

// SetTracer installs (or, with nil, removes) the event tracer. The
// pool topology and all existing domains are registered with it so the
// exporter can emit one track per pCPU and per vCPU.
func (pool *Pool) SetTracer(tr *trace.Tracer) {
	pool.tr = tr
	if tr == nil {
		return
	}
	tr.RegisterPCPUs(len(pool.pcpus))
	for _, d := range pool.domains {
		tr.RegisterDomain(d.id, d.Name, len(d.vcpus), pool.eng.Now())
	}
}

// Tracer returns the installed tracer (nil when tracing is disabled).
func (pool *Pool) Tracer() *trace.Tracer { return pool.tr }

// traceState records a vCPU state transition when tracing is enabled.
func (pool *Pool) traceState(v *VCPU, to trace.VState) {
	if pool.tr != nil {
		pool.tr.VCPUState(pool.eng.Now(), v.dom.id, v.id, v.pcpu.id, to)
	}
}

// Config returns the pool configuration.
func (pool *Pool) Config() Config { return pool.cfg }

// PCPUs returns the pool's physical CPUs.
func (pool *Pool) PCPUs() []*PCPU { return pool.pcpus }

// Domains returns the domains in the pool.
func (pool *Pool) Domains() []*Domain { return pool.domains }

// AddDomain creates a domain with nVCPUs vCPUs, all initially blocked
// (the guest boots by kicking vCPU0). The guest may be nil for
// scheduler-only tests and attached later with AttachGuest.
func (pool *Pool) AddDomain(name string, weight float64, nVCPUs int, guest GuestOS) *Domain {
	if nVCPUs <= 0 {
		panic("xen: domain needs at least one vCPU")
	}
	if weight <= 0 {
		panic("xen: domain weight must be positive")
	}
	d := &Domain{
		pool:   pool,
		id:     len(pool.domains),
		Name:   name,
		Weight: weight,
		guest:  guest,
	}
	for i := 0; i < nVCPUs; i++ {
		v := &VCPU{dom: d, id: i, state: StateBlocked, pri: PriUnder}
		v.pcpu = pool.pcpus[(d.id+i)%len(pool.pcpus)] // initial wake affinity, round-robin
		vv := v
		v.timer = sim.NewTimer(pool.eng, fmt.Sprintf("xen/vtimer/%s.%d", name, i), func() {
			pool.Notify(d.timerPorts[vv.id])
		})
		d.vcpus = append(d.vcpus, v)
		d.ipiPorts = append(d.ipiPorts, &Port{Kind: PortIPI, Name: fmt.Sprintf("ipi%d", i), dom: d, target: i})
		d.timerPorts = append(d.timerPorts, &Port{Kind: PortVIRQTimer, Name: fmt.Sprintf("timer%d", i), dom: d, target: i})
	}
	pool.domains = append(pool.domains, d)
	if pool.tr != nil {
		pool.tr.RegisterDomain(d.id, d.Name, len(d.vcpus), pool.eng.Now())
	}
	return d
}

// AttachGuest sets the guest OS of a domain (must happen before Start).
func (d *Domain) AttachGuest(g GuestOS) { d.guest = g }

// Start arms the scheduler tickers. Guests are booted separately.
func (pool *Pool) Start() {
	if pool.started {
		return
	}
	pool.started = true
	pool.tickTicker.Start()
	pool.acctTicker.Start()
	if pool.vscaleTicker != nil {
		pool.vscaleTicker.Start()
	}
}

// Stop cancels the scheduler tickers (used by tests).
func (pool *Pool) Stop() {
	pool.tickTicker.Stop()
	pool.acctTicker.Stop()
	if pool.vscaleTicker != nil {
		pool.vscaleTicker.Stop()
	}
	pool.started = false
}

// priorityClass maps a vCPU to its runqueue ordering class.
func priorityClass(v *VCPU) Priority { return v.pri }

// beats reports whether a should run before b under the pool's policy.
func (pool *Pool) beats(a, b *VCPU) bool {
	if pool.cfg.Policy == PolicyVRT {
		return a.vruntime < b.vruntime
	}
	return priorityClass(a) < priorityClass(b)
}

// insertRunq places v in p's runqueue: under credit, at the tail of its
// priority class (or at its head when front is set, used for
// reconfiguration boosting); under VRT, in virtual-runtime order (front
// jumps the queue entirely).
func (pool *Pool) insertRunq(p *PCPU, v *VCPU, front bool) {
	idx := 0
	if pool.cfg.Policy == PolicyVRT {
		if !front {
			for idx < len(p.runq) && p.runq[idx].vruntime <= v.vruntime {
				idx++
			}
		}
	} else {
		cls := priorityClass(v)
		if front {
			for idx < len(p.runq) && priorityClass(p.runq[idx]) < cls {
				idx++
			}
		} else {
			for idx < len(p.runq) && priorityClass(p.runq[idx]) <= cls {
				idx++
			}
		}
	}
	p.runq = append(p.runq, nil)
	copy(p.runq[idx+1:], p.runq[idx:])
	p.runq[idx] = v
}

// removeRunq removes v from p's runqueue; it panics if absent (that
// would indicate state corruption).
func (pool *Pool) removeRunq(p *PCPU, v *VCPU) {
	for i, q := range p.runq {
		if q == v {
			p.runq = append(p.runq[:i], p.runq[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("xen: vCPU %s.%d not in runqueue of pCPU %d", v.dom.Name, v.id, p.id))
}

// burnRunning charges the running vCPU for CPU consumed since its last
// checkpoint: credits, domain consumption and statistics.
func (pool *Pool) burnRunning(v *VCPU) {
	now := pool.eng.Now()
	delta := now - v.dispatchedAt
	if delta <= 0 {
		return
	}
	v.dispatchedAt = now
	v.credits -= delta
	if v.credits < -pool.cfg.Acct {
		v.credits = -pool.cfg.Acct
	}
	if pool.cfg.Policy == PolicyVRT {
		// Weighted virtual runtime: a vCPU of a heavy domain ages slower.
		// The per-vCPU weight is the domain weight over its active vCPUs
		// (the per-VM weight semantics vScale patches in).
		w := v.dom.Weight / float64(maxInt(1, v.dom.ActiveVCPUs()))
		const refWeight = 256.0
		v.vruntime += sim.Time(float64(delta) * refWeight / w)
	}
	v.RunTime += delta
	v.dom.TotalRunTime += delta
	v.dom.periodConsumed += delta
	v.dom.acctActive = true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SyncAccounting charges every currently running vCPU for the CPU it
// has consumed since its last checkpoint, bringing per-vCPU credits and
// per-domain consumption counters (Domain.TotalRunTime) up to the
// present instant. The periodic accounting and vScale ticks do this
// before reading consumptions; external observers (a cluster control
// plane sampling per-domain usage between epochs) must call it too, or
// in-flight slices since the last dispatch would be invisible.
func (pool *Pool) SyncAccounting() {
	for _, p := range pool.pcpus {
		if p.current != nil {
			pool.burnRunning(p.current)
		}
	}
}

// dispatch is the scheduler entry point for one pCPU: it charges and
// requeues the current vCPU (if any), picks the best runnable vCPU
// (stealing from peers when locally idle) and runs it.
func (pool *Pool) dispatch(p *PCPU) {
	now := pool.eng.Now()

	if p.current != nil {
		v := p.current
		pool.burnRunning(v)
		p.current = nil
		if v.state == StateRunning {
			// Preempted, still runnable: back to the queue.
			v.state = StateRunnable
			v.queuedAt = now
			v.Preemptions++
			pool.traceState(v, trace.VRunnable)
			pool.insertRunq(p, v, false)
		}
		v.dom.guest.Descheduled(v.id)
	}

	next := pool.pickNext(p)
	if next == nil {
		if !p.idle {
			p.idle = true
			p.idleSince = now
		}
		p.sliceTimer.Stop()
		return
	}
	if p.idle {
		p.IdleTime += now - p.idleSince
		p.idle = false
	}

	wait := now - next.queuedAt
	next.WaitTime += wait
	next.dom.TotalWaitTime += wait

	next.state = StateRunning
	next.pcpu = p
	next.dispatchedAt = now
	next.reconfigBoost = false
	next.Dispatches++
	pool.traceState(next, trace.VRun)
	p.current = next
	p.Switches++
	p.sliceTimer.Reset(pool.cfg.Slice)

	next.dom.guest.Dispatched(next.id)
	pool.flushPending(next)
	pool.kickIdle()
}

// kickIdle puts idle pCPUs to work when runnable vCPUs are queued
// elsewhere (Xen tickles idlers on runqueue insertion, so a preempted
// vCPU never waits while a pCPU idles).
func (pool *Pool) kickIdle() {
	if pool.kicking {
		return
	}
	queued := 0
	for _, q := range pool.pcpus {
		queued += len(q.runq)
	}
	if queued == 0 {
		return
	}
	pool.kicking = true
	for _, q := range pool.pcpus {
		if queued == 0 {
			break
		}
		if q.current == nil {
			pool.dispatch(q)
			if q.current != nil {
				queued--
			}
		}
	}
	pool.kicking = false
}

// pickNext pops the best local vCPU, stealing from peer pCPUs when a
// peer queues a strictly better priority class than anything local
// (Xen's csched_load_balance: UNDER work anywhere beats OVER work here).
func (pool *Pool) pickNext(p *PCPU) *VCPU {
	var local *VCPU
	if len(p.runq) > 0 {
		local = p.runq[0]
	}
	if stolen := pool.steal(p, local); stolen != nil {
		return stolen
	}
	if local != nil {
		p.runq = p.runq[1:]
		return local
	}
	return nil
}

// steal searches peer runqueues for a runnable vCPU with a strictly
// better class than localBest (or any vCPU when localBest is nil,
// preferring the best class and the longest wait) and migrates it to p.
func (pool *Pool) steal(p *PCPU, localBest *VCPU) *VCPU {
	var best *VCPU
	var bestOwner *PCPU
	for _, q := range pool.pcpus {
		if q == p || len(q.runq) == 0 {
			continue
		}
		cand := q.runq[0]
		if localBest != nil && !pool.beats(cand, localBest) {
			continue
		}
		if best == nil || pool.beats(cand, best) ||
			(!pool.beats(best, cand) && cand.queuedAt < best.queuedAt) {
			best = cand
			bestOwner = q
		}
	}
	if best == nil {
		return nil
	}
	pool.removeRunq(bestOwner, best)
	if pool.tr != nil {
		pool.tr.Migrate(pool.eng.Now(), best.dom.id, best.id, bestOwner.id, p.id)
	}
	best.pcpu = p
	return best
}

// flushPending delivers all pending event-channel notifications to a
// just-dispatched vCPU.
func (pool *Pool) flushPending(v *VCPU) {
	// A delivery handler can trigger a nested dispatch that descheduled v
	// (e.g. it woke a higher-priority vCPU onto this pCPU), so re-check
	// the state before every delivery; undelivered ports stay pending.
	for v.state == StateRunning && len(v.pendingPorts) > 0 {
		port := v.pendingPorts[0]
		v.pendingPorts = v.pendingPorts[1:]
		port.pending = false
		pool.observeDelay(port, pool.eng.Now()-port.pendingAt)
		v.dom.guest.DeliverEvent(v.id, port)
	}
}

// Notify fires an event channel: the core delivery primitive. A running
// target gets the upcall immediately; a queued target receives it on
// next dispatch (this is the delayed-virtual-IPI / delayed-I/O problem
// from Figure 1); a blocked target is woken.
func (pool *Pool) Notify(port *Port) {
	v := port.dom.vcpus[port.target]
	if pool.tr != nil {
		pool.tr.EvtchnSend(pool.eng.Now(), port.dom.id, port.target, port.Kind.String())
	}
	switch v.state {
	case StateRunning:
		pool.observeDelay(port, 0)
		v.dom.guest.DeliverEvent(v.id, port)
	case StateRunnable:
		if !port.pending {
			port.pending = true
			port.pendingAt = pool.eng.Now()
			v.pendingPorts = append(v.pendingPorts, port)
		}
		if v.reconfigBoost {
			// vScale: prioritise vCPUs under reconfiguration — pull the
			// vCPU to the front and preempt whoever runs (§4.2).
			pool.expedite(v)
		}
	case StateBlocked:
		if !port.pending {
			port.pending = true
			port.pendingAt = pool.eng.Now()
			v.pendingPorts = append(v.pendingPorts, port)
		}
		pool.wake(v)
	}
}

// observeDelay records event-channel delivery latency per port kind —
// the delays of the paper's Figure 1(b) (virtual IPIs) and 1(c) (I/O
// interrupts).
func (pool *Pool) observeDelay(port *Port, d sim.Time) {
	switch port.Kind {
	case PortIPI:
		port.dom.IPIDelay.Observe(d.Microseconds())
		if pool.tr != nil {
			pool.tr.IPIDelivery(pool.eng.Now(), port.dom.id, port.target, d)
		}
	case PortIRQ:
		port.dom.IRQDelay.Observe(d.Microseconds())
		if pool.tr != nil {
			pool.tr.IRQDelivery(pool.eng.Now(), port.dom.id, port.target, d)
		}
	}
}

// expedite promotes a queued vCPU to the front of its pCPU and forces an
// immediate reschedule there.
func (pool *Pool) expedite(v *VCPU) {
	p := v.pcpu
	pool.removeRunq(p, v)
	v.pri = PriBoost
	if pool.tr != nil {
		pool.tr.Boost(pool.eng.Now(), v.dom.id, v.id)
	}
	pool.insertRunq(p, v, true)
	pool.dispatch(p)
}

// wake makes a blocked vCPU runnable, applying the policy's wake bonus
// (Xen's boost-on-wake under credit, a bounded sleep bonus under VRT)
// and tickling a pCPU so the wakeup is acted upon.
func (pool *Pool) wake(v *VCPU) {
	now := pool.eng.Now()
	v.state = StateRunnable
	v.queuedAt = now
	v.Wakeups++
	switch pool.cfg.Policy {
	case PolicyVRT:
		// Sleep bonus: a waking vCPU may not lag the pack by more than
		// one slice, and never leads it (no hoarding of virtual time).
		if floor := pool.minVruntime() - pool.cfg.Slice; v.vruntime < floor {
			v.vruntime = floor
		}
	default:
		if v.pri == PriUnder {
			v.pri = PriBoost
			if pool.tr != nil {
				pool.tr.Boost(now, v.dom.id, v.id)
			}
		}
	}

	// Placement: prefer the last pCPU if idle, else any idle pCPU, else
	// queue on the last pCPU and preempt if we beat its current.
	target := v.pcpu
	if target.current != nil {
		for _, q := range pool.pcpus {
			if q.current == nil && len(q.runq) == 0 {
				target = q
				break
			}
		}
	}
	v.pcpu = target
	pool.traceState(v, trace.VRunnable)
	pool.insertRunq(target, v, v.reconfigBoost)
	if target.current == nil {
		pool.dispatch(target)
	} else if pool.beats(v, target.current) || v.reconfigBoost {
		pool.dispatch(target)
	}
}

// minVruntime returns the smallest virtual runtime among running and
// runnable vCPUs (the "pack front" for the VRT sleep bonus).
func (pool *Pool) minVruntime() sim.Time {
	min := sim.MaxTime
	found := false
	for _, p := range pool.pcpus {
		if p.current != nil && p.current.vruntime < min {
			min = p.current.vruntime
			found = true
		}
		for _, v := range p.runq {
			if v.vruntime < min {
				min = v.vruntime
				found = true
			}
		}
	}
	if !found {
		return 0
	}
	return min
}

// Block implements SCHED_block: the guest reports the vCPU has no
// runnable work. Called from guest context (never from inside scheduler
// callbacks).
func (pool *Pool) Block(v *VCPU) {
	switch v.state {
	case StateRunning:
		p := v.pcpu
		v.state = StateBlocked
		pool.traceState(v, trace.VBlocked)
		pool.dispatch(p)
	case StateRunnable:
		pool.removeRunq(v.pcpu, v)
		v.state = StateBlocked
		pool.traceState(v, trace.VBlocked)
	case StateBlocked:
		// Already blocked; nothing to do.
	}
}

// Yield implements SCHED_yield: put the running vCPU at the back of its
// priority class (used by pv-spinlocks when a waiter gives up its slice).
func (pool *Pool) Yield(v *VCPU) {
	if v.state != StateRunning {
		return
	}
	// Demote a boosted yielder for the rest of the accounting period so
	// it does not immediately preempt whoever it yielded to.
	if v.pri == PriBoost {
		v.pri = PriUnder
	}
	pool.dispatch(v.pcpu)
}

// tick is the 10 ms scheduler tick. Under credit it charges running
// vCPUs, demotes boosted vCPUs that consumed a full tick, refreshes
// priorities from credit signs and preempts if a better-class vCPU
// waits. Under VRT it preempts when a queued vCPU lags the running one
// by more than the preemption granularity (one tick).
func (pool *Pool) tick() {
	for _, p := range pool.pcpus {
		v := p.current
		if v == nil {
			continue
		}
		pool.burnRunning(v)
		if pool.cfg.Policy == PolicyVRT {
			if len(p.runq) > 0 && p.runq[0].vruntime+pool.cfg.Tick < v.vruntime {
				pool.dispatch(p)
			}
			continue
		}
		if v.pri == PriBoost {
			v.pri = PriUnder
		}
		pool.refreshPriority(v)
		if len(p.runq) > 0 && priorityClass(p.runq[0]) < priorityClass(v) {
			pool.dispatch(p)
		}
	}
}

// refreshPriority recomputes UNDER/OVER from the credit sign (never
// touches BOOST).
func (pool *Pool) refreshPriority(v *VCPU) {
	if v.pri == PriBoost {
		return
	}
	if v.credits >= 0 {
		v.pri = PriUnder
	} else {
		v.pri = PriOver
	}
}

// acct is the 30 ms credit accounting (csched_acct): distribute one
// accounting period of pool CPU time to active domains in proportion to
// their weights, split each domain's share over its active (non-frozen)
// vCPUs, clamp hoarding, and refresh priorities. The VRT policy needs no
// periodic accounting: weighting happens continuously in burnRunning.
func (pool *Pool) acct() {
	pool.SyncAccounting()
	if pool.cfg.Policy == PolicyVRT {
		return
	}

	// A domain is active for accounting if it consumed CPU during the
	// period or still has runnable (possibly starved) vCPUs: a queued
	// vCPU that never got to run must keep earning credits, or it would
	// starve behind freshly credited competitors.
	active := func(d *Domain) bool {
		if d.acctActive {
			return true
		}
		for _, v := range d.vcpus {
			if v.state != StateBlocked {
				return true
			}
		}
		return false
	}

	var totalWeight float64
	for _, d := range pool.domains {
		if active(d) {
			totalWeight += pool.effectiveWeight(d)
		}
	}
	totalCredit := float64(pool.cfg.Acct) * float64(pool.cfg.PCPUs)

	for _, d := range pool.domains {
		if !active(d) {
			// Inactive domains neither earn nor hoard: reset to a clean
			// UNDER state so they wake with boost and fresh credit.
			for _, v := range d.vcpus {
				if v.credits < 0 {
					v.credits = 0
				}
				pool.refreshPriority(v)
			}
			continue
		}
		share := pool.effectiveWeight(d) / totalWeight * totalCredit
		if d.CapPCPUs > 0 {
			if maxShare := d.CapPCPUs * float64(pool.cfg.Acct); share > maxShare {
				share = maxShare
			}
		}
		active := d.ActiveVCPUs()
		if active == 0 {
			continue
		}
		per := sim.Time(share / float64(active))
		for _, v := range d.vcpus {
			if v.frozen {
				continue
			}
			v.credits += per
			if v.credits > pool.cfg.Acct {
				v.credits = pool.cfg.Acct // anti-hoarding clamp
			}
			if v.pri == PriBoost {
				v.pri = PriUnder
			}
			pool.refreshPriority(v)
			if pool.tr != nil {
				pool.tr.CreditTick(pool.eng.Now(), d.id, v.id, v.credits)
			}
		}
		d.acctActive = false
	}

	// Re-sort runqueues: priorities may have changed class.
	for _, p := range pool.pcpus {
		pool.resortRunq(p)
		if p.current != nil && len(p.runq) > 0 &&
			priorityClass(p.runq[0]) < priorityClass(p.current) {
			pool.dispatch(p)
		}
	}
}

// effectiveWeight returns the domain's accounting weight. With the
// vScale patch (default) weight is per-VM. With PerVCPUWeight (unpatched
// Xen) the share scales with the number of active vCPUs.
func (pool *Pool) effectiveWeight(d *Domain) float64 {
	if !pool.cfg.PerVCPUWeight {
		return d.Weight
	}
	return d.Weight * float64(d.ActiveVCPUs()) / float64(len(d.vcpus))
}

// resortRunq stably re-orders a runqueue by priority class (FIFO within
// class is preserved because the sort is stable by construction).
func (pool *Pool) resortRunq(p *PCPU) {
	if len(p.runq) < 2 {
		return
	}
	sorted := make([]*VCPU, 0, len(p.runq))
	for cls := PriBoost; cls <= PriOver; cls++ {
		for _, v := range p.runq {
			if priorityClass(v) == cls {
				sorted = append(sorted, v)
			}
		}
	}
	p.runq = sorted
}

// vscaleTick recomputes every domain's CPU extendability from the last
// period's consumption (Algorithm 1), making it readable through the
// vScale channel.
func (pool *Pool) vscaleTick() {
	pool.SyncAccounting()
	period := pool.vscaleTicker.Period()
	stats := make([]core.VMStat, len(pool.domains))
	for i, d := range pool.domains {
		stats[i] = core.VMStat{
			ID:               d.Name,
			Weight:           d.Weight,
			Consumption:      d.periodConsumed,
			ReservationPCPUs: d.ReservationPCPUs,
			CapPCPUs:         d.CapPCPUs,
			MaxVCPUs:         len(d.vcpus),
			UP:               len(d.vcpus) == 1,
		}
		d.periodConsumed = 0
	}
	res := core.ComputeExtendability(stats, pool.cfg.PCPUs, period)
	for i, d := range pool.domains {
		d.ext = res[i]
	}
	pool.VScaleTicks++
}

// HypercallGetVScaleInfo is SCHEDOP_getvscaleinfo: return the calling
// domain's extendability. The syscall+hypercall cost is charged by the
// guest side (it is guest CPU time).
func (d *Domain) HypercallGetVScaleInfo() core.Extendability { return d.ext }

// HypercallCPUFreeze is SCHEDOP_cpufreeze: the guest marks a vCPU frozen
// (or unfrozen). A frozen vCPU leaves the domain's active list so the
// remaining vCPUs earn more credits; the next IPI to the target is
// expedited so the reconfiguration completes quickly.
func (d *Domain) HypercallCPUFreeze(vcpu int, freeze bool) {
	if vcpu <= 0 && freeze {
		panic("xen: cannot freeze the master vCPU")
	}
	v := d.vcpus[vcpu]
	v.frozen = freeze
	v.reconfigBoost = true
	if tr := d.pool.tr; tr != nil {
		tr.SetFrozen(d.pool.eng.Now(), d.id, vcpu, v.pcpu.id, freeze)
	}
}

// Idle returns the pool's aggregate pCPU idle time (including currently
// idling pCPUs up to now).
func (pool *Pool) Idle() sim.Time {
	var total sim.Time
	now := pool.eng.Now()
	for _, p := range pool.pcpus {
		total += p.IdleTime
		if p.idle {
			total += now - p.idleSince
		}
	}
	return total
}
