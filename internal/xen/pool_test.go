package xen

import (
	"math"
	"testing"

	"vscale/internal/sim"
)

// fakeGuest is a minimal GuestOS for scheduler tests. Each vCPU either
// hogs the CPU forever (work < 0), runs a finite amount of work and then
// blocks (work >= 0), or re-arms work when an event arrives.
type fakeGuest struct {
	eng  *sim.Engine
	pool *Pool
	dom  *Domain

	work      []sim.Time // remaining work; <0 means infinite
	started   []sim.Time // segment start when running
	ev        []sim.EventRef
	delivered []int // count of DeliverEvent per vcpu
	onEvent   func(vcpu int, port *Port)
}

func newFakeGuest(eng *sim.Engine, pool *Pool, n int) *fakeGuest {
	return &fakeGuest{
		eng:       eng,
		pool:      pool,
		work:      make([]sim.Time, n),
		started:   make([]sim.Time, n),
		ev:        make([]sim.EventRef, n),
		delivered: make([]int, n),
	}
}

func (g *fakeGuest) Dispatched(v int) {
	g.started[v] = g.eng.Now()
	if g.work[v] < 0 {
		return // hog: run until preempted
	}
	w := g.work[v]
	g.ev[v] = g.eng.After(w, "fake/done", func() {
		g.ev[v] = sim.EventRef{}
		g.work[v] = 0
		g.pool.Block(g.dom.VCPU(v))
	})
}

func (g *fakeGuest) Descheduled(v int) {
	if g.ev[v].Pending() {
		g.eng.Cancel(g.ev[v])
		g.ev[v] = sim.EventRef{}
		g.work[v] -= g.eng.Now() - g.started[v]
		if g.work[v] < 0 {
			g.work[v] = 0
		}
	}
}

func (g *fakeGuest) DeliverEvent(v int, port *Port) {
	g.delivered[v]++
	if g.onEvent != nil {
		g.onEvent(v, port)
	}
}

// hog marks vcpu as an infinite CPU consumer.
func (g *fakeGuest) hog(vcpu int) { g.work[vcpu] = -1 }

func setup(t *testing.T, pcpus int, vscale bool) (*sim.Engine, *Pool) {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := DefaultConfig(pcpus)
	cfg.VScale = vscale
	pool := NewPool(eng, cfg)
	return eng, pool
}

// addHogDomain creates a domain whose vCPUs all hog the CPU.
func addHogDomain(eng *sim.Engine, pool *Pool, name string, weight float64, nvcpus int) (*Domain, *fakeGuest) {
	g := newFakeGuest(eng, pool, nvcpus)
	d := pool.AddDomain(name, weight, nvcpus, g)
	g.dom = d
	for i := 0; i < nvcpus; i++ {
		g.hog(i)
		d.KickVCPU(i)
	}
	return d, g
}

func TestSingleDomainFullCPU(t *testing.T) {
	eng, pool := setup(t, 1, false)
	d, _ := addHogDomain(eng, pool, "a", 256, 1)
	pool.Start()
	if err := eng.RunUntil(3 * sim.Second); err != nil {
		t.Fatal(err)
	}
	pool.burnRunning(d.VCPU(0))
	got := d.TotalRunTime.Seconds()
	if math.Abs(got-3) > 0.01 {
		t.Fatalf("run time = %fs, want ~3s", got)
	}
	if d.TotalWaitTime > 10*sim.Millisecond {
		t.Fatalf("unexpected waiting: %v", d.TotalWaitTime)
	}
}

func TestTwoDomainsFairSplit(t *testing.T) {
	eng, pool := setup(t, 1, false)
	a, _ := addHogDomain(eng, pool, "a", 256, 1)
	b, _ := addHogDomain(eng, pool, "b", 256, 1)
	pool.Start()
	if err := eng.RunUntil(6 * sim.Second); err != nil {
		t.Fatal(err)
	}
	ra, rb := a.TotalRunTime.Seconds(), b.TotalRunTime.Seconds()
	if math.Abs(ra-rb) > 0.2 {
		t.Fatalf("unfair split: a=%fs b=%fs", ra, rb)
	}
	if ra+rb < 5.9 {
		t.Fatalf("not work conserving: total %fs of 6s", ra+rb)
	}
	// Each vCPU spends roughly half its life waiting in the runqueue.
	if a.TotalWaitTime < 2*sim.Second {
		t.Fatalf("expected substantial scheduling delay, got %v", a.TotalWaitTime)
	}
}

func TestWeightedSharing(t *testing.T) {
	eng, pool := setup(t, 1, false)
	a, _ := addHogDomain(eng, pool, "a", 512, 1)
	b, _ := addHogDomain(eng, pool, "b", 256, 1)
	pool.Start()
	if err := eng.RunUntil(9 * sim.Second); err != nil {
		t.Fatal(err)
	}
	ratio := float64(a.TotalRunTime) / float64(b.TotalRunTime)
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("weight ratio 2:1 not honoured: run ratio = %f", ratio)
	}
}

func TestWorkConservingWithIdleDomain(t *testing.T) {
	eng, pool := setup(t, 1, false)
	busy, _ := addHogDomain(eng, pool, "busy", 256, 1)
	// Idle domain: blocks immediately after boot.
	gIdle := newFakeGuest(eng, pool, 1)
	dIdle := pool.AddDomain("idle", 256, 1, gIdle)
	gIdle.dom = dIdle
	dIdle.KickVCPU(0)
	pool.Start()
	if err := eng.RunUntil(3 * sim.Second); err != nil {
		t.Fatal(err)
	}
	pool.burnRunning(busy.VCPU(0))
	if busy.TotalRunTime.Seconds() < 2.95 {
		t.Fatalf("busy domain got %fs of 3s despite idle competitor", busy.TotalRunTime.Seconds())
	}
}

func TestMultiPCPUStealSpreadsVCPUs(t *testing.T) {
	eng, pool := setup(t, 2, false)
	d, _ := addHogDomain(eng, pool, "smp", 256, 2)
	pool.Start()
	if err := eng.RunUntil(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		pool.burnRunning(d.VCPU(i))
		if got := d.VCPU(i).RunTime.Seconds(); math.Abs(got-2) > 0.1 {
			t.Fatalf("vCPU%d ran %fs, want ~2s (work stealing should spread them)", i, got)
		}
	}
}

func TestBoostLatencyForInteractiveVM(t *testing.T) {
	eng, pool := setup(t, 1, false)
	addHogDomain(eng, pool, "hog", 256, 1)

	gInt := newFakeGuest(eng, pool, 1)
	dInt := pool.AddDomain("interactive", 256, 1, gInt)
	gInt.dom = dInt
	gInt.onEvent = func(v int, port *Port) {
		if port.Kind == PortIPI {
			// 1 ms of work per request, then block again.
			gInt.work[v] = sim.Millisecond
			gInt.Descheduled(v) // reset segment bookkeeping
			gInt.Dispatched(v)
		}
	}
	dInt.KickVCPU(0)

	// Poke the interactive VM every 100 ms.
	tick := sim.NewTicker(eng, "poke", 100*sim.Millisecond, func() { dInt.KickVCPU(0) })
	tick.Start()
	pool.Start()
	if err := eng.RunUntil(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	v := dInt.VCPU(0)
	if v.Wakeups < 40 {
		t.Fatalf("wakeups = %d, want ~50", v.Wakeups)
	}
	avgWait := float64(v.WaitTime) / float64(v.Wakeups)
	// With boost-on-wake, the interactive vCPU preempts the hog almost
	// immediately instead of waiting up to a 30 ms slice.
	if avgWait > float64(2*sim.Millisecond) {
		t.Fatalf("interactive avg wakeup delay = %v, boost should keep it ~0", sim.Time(avgWait))
	}
}

func TestEventDeliveryToRunnableIsDelayed(t *testing.T) {
	eng, pool := setup(t, 1, false)
	_, ga := addHogDomain(eng, pool, "a", 256, 1)
	db, gb := addHogDomain(eng, pool, "b", 256, 1)
	pool.Start()

	var deliveredAt sim.Time
	gb.onEvent = func(v int, port *Port) { deliveredAt = eng.Now() }

	// Find a moment when b is queued (not running) and notify it.
	var sentAt sim.Time
	eng.After(45*sim.Millisecond, "probe", func() {
		vb := db.VCPU(0)
		if vb.State() != StateRunnable {
			t.Errorf("expected b runnable at 45ms, got %v", vb.State())
			return
		}
		sentAt = eng.Now()
		pool.Notify(db.IPIPort(0))
	})
	_ = ga
	if err := eng.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if sentAt == 0 || deliveredAt == 0 {
		t.Fatal("probe did not run")
	}
	delay := deliveredAt - sentAt
	if delay < 5*sim.Millisecond {
		t.Fatalf("delivery to a queued vCPU should wait for dispatch; delay = %v", delay)
	}
	if delay > 35*sim.Millisecond {
		t.Fatalf("delay = %v exceeds one slice", delay)
	}
}

func TestTimerWakesBlockedVCPU(t *testing.T) {
	eng, pool := setup(t, 1, false)
	g := newFakeGuest(eng, pool, 1)
	d := pool.AddDomain("sleepy", 256, 1, g)
	g.dom = d
	var woke sim.Time
	g.onEvent = func(v int, port *Port) {
		if port.Kind == PortVIRQTimer {
			woke = eng.Now()
		}
	}
	d.KickVCPU(0)
	pool.Start()
	eng.After(sim.Millisecond, "arm", func() {
		d.VCPU(0).SetTimer(eng.Now() + 500*sim.Millisecond)
	})
	if err := eng.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if woke < 501*sim.Millisecond-sim.Microsecond || woke > 502*sim.Millisecond {
		t.Fatalf("timer wake at %v, want ~501ms", woke)
	}
}

func TestVScaleTickerComputesExtendability(t *testing.T) {
	eng, pool := setup(t, 4, true)
	busy, _ := addHogDomain(eng, pool, "busy", 256, 4)
	gIdle := newFakeGuest(eng, pool, 2)
	idle := pool.AddDomain("idle", 128, 2, gIdle)
	gIdle.dom = idle
	idle.KickVCPU(0)
	pool.Start()
	if err := eng.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	if pool.VScaleTicks < 90 {
		t.Fatalf("vscale ticks = %d, want ~100", pool.VScaleTicks)
	}
	eb, ei := busy.Extendability(), idle.Extendability()
	if !eb.Competitor {
		t.Fatal("busy domain should be a competitor")
	}
	if ei.Competitor {
		t.Fatal("idle domain should be a releaser")
	}
	// busy should be able to extend to all 4 pCPUs (idle releases
	// nearly all of its fair share).
	if eb.OptimalVCPUs != 4 {
		t.Fatalf("busy optimal vCPUs = %d, want 4", eb.OptimalVCPUs)
	}
	// idle keeps its fair share: 128/384 * 4 = 1.33 pCPUs → 2 vCPUs.
	if ei.OptimalVCPUs != 2 {
		t.Fatalf("idle optimal vCPUs = %d, want 2", ei.OptimalVCPUs)
	}
}

func TestFreezeShiftsCreditsToActiveSiblings(t *testing.T) {
	// One 2-vCPU domain vs one 1-vCPU domain on 1 pCPU, equal weights.
	// After freezing vCPU1 of the SMP domain, its vCPU0 should still
	// receive the domain's full (per-VM) share: ~50% of the pCPU.
	eng, pool := setup(t, 1, false)
	smp, gs := addHogDomain(eng, pool, "smp", 256, 2)
	up, _ := addHogDomain(eng, pool, "up", 256, 1)
	pool.Start()

	eng.After(3*sim.Second, "freeze", func() {
		// Guest-side effect: vCPU1 stops running (blocks) and the guest
		// tells the hypervisor it is frozen.
		smp.HypercallCPUFreeze(1, true)
		gs.work[1] = 0
		if smp.VCPU(1).State() == StateRunning {
			pool.Block(smp.VCPU(1))
		} else if smp.VCPU(1).State() == StateRunnable {
			pool.Block(smp.VCPU(1))
		}
	})
	if err := eng.RunUntil(6 * sim.Second); err != nil {
		t.Fatal(err)
	}
	// Measure the second 3-second window only.
	smpRun := smp.TotalRunTime
	upRun := up.TotalRunTime
	_ = upRun
	// Over the whole 6s: first 3s smp gets 1/2 (two vcpus sharing 50%),
	// second 3s smp vCPU0 alone still gets ~1/2. Total ≈ 3s.
	if got := smpRun.Seconds(); math.Abs(got-3) > 0.3 {
		t.Fatalf("smp domain ran %fs of 6s, want ~3s (per-VM weight must hold after freeze)", got)
	}
	if smp.ActiveVCPUs() != 1 {
		t.Fatalf("active vCPUs = %d, want 1", smp.ActiveVCPUs())
	}
}

func TestPerVCPUWeightAblationLosesShareWhenFrozen(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig(1)
	cfg.PerVCPUWeight = true
	pool := NewPool(eng, cfg)
	smp, gs := addHogDomain(eng, pool, "smp", 256, 2)
	up, _ := addHogDomain(eng, pool, "up", 256, 1)
	pool.Start()
	eng.After(0, "freeze", func() {
		smp.HypercallCPUFreeze(1, true)
		gs.work[1] = 0
		pool.Block(smp.VCPU(1))
	})
	if err := eng.RunUntil(6 * sim.Second); err != nil {
		t.Fatal(err)
	}
	// With per-vCPU weight the frozen domain's share halves: ~1/3 vs 2/3.
	ratio := float64(up.TotalRunTime) / float64(smp.TotalRunTime)
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("per-vCPU-weight ratio = %f, want ~2 (unfairness the paper fixes)", ratio)
	}
}

func TestProportionalFairnessProperty(t *testing.T) {
	// Random weights, all-hog domains: long-run CPU shares track weights.
	for seed := uint64(1); seed <= 5; seed++ {
		r := sim.NewRand(seed)
		eng := sim.NewEngine(seed)
		pool := NewPool(eng, DefaultConfig(2))
		n := 2 + r.Intn(4)
		doms := make([]*Domain, n)
		weights := make([]float64, n)
		for i := 0; i < n; i++ {
			weights[i] = float64(64 * (1 + r.Intn(8)))
			doms[i], _ = addHogDomain(eng, pool, string(rune('a'+i)), weights[i], 1)
		}
		pool.Start()
		if err := eng.RunUntil(10 * sim.Second); err != nil {
			t.Fatal(err)
		}
		var rsum sim.Time
		for i := range doms {
			rsum += doms[i].TotalRunTime
		}
		if rsum.Seconds() < 19.5 {
			t.Fatalf("seed %d: not work conserving (%fs of 20)", seed, rsum.Seconds())
		}
		// Expected shares follow weighted max-min (water-filling): a
		// 1-vCPU domain is structurally capped at one pCPU (half the
		// 2-pCPU pool), and its surplus is redistributed by weight.
		want := waterFill(weights, 0.5)
		for i := range doms {
			got := float64(doms[i].TotalRunTime) / float64(rsum)
			if math.Abs(got-want[i])/want[i] > 0.25 {
				t.Fatalf("seed %d dom %d: share %f, want %f (weights %v)", seed, i, got, want[i], weights)
			}
		}
	}
}

// waterFill computes weighted max-min fair shares where each entity is
// capped at capEach of the total.
func waterFill(weights []float64, capEach float64) []float64 {
	n := len(weights)
	share := make([]float64, n)
	capped := make([]bool, n)
	remaining := 1.0
	for {
		var wsum float64
		for i := range weights {
			if !capped[i] {
				wsum += weights[i]
			}
		}
		if wsum == 0 || remaining <= 1e-12 {
			break
		}
		anyCapped := false
		for i := range weights {
			if capped[i] {
				continue
			}
			s := weights[i] / wsum * remaining
			if share[i]+s >= capEach {
				remaining -= capEach - share[i]
				share[i] = capEach
				capped[i] = true
				anyCapped = true
			}
		}
		if !anyCapped {
			for i := range weights {
				if !capped[i] {
					share[i] += weights[i] / wsum * remaining
				}
			}
			break
		}
	}
	return share
}

func TestDeterminism(t *testing.T) {
	run := func() (sim.Time, sim.Time, uint64) {
		eng, pool := setup(t, 2, true)
		a, _ := addHogDomain(eng, pool, "a", 256, 2)
		b, _ := addHogDomain(eng, pool, "b", 128, 2)
		pool.Start()
		if err := eng.RunUntil(2 * sim.Second); err != nil {
			t.Fatal(err)
		}
		return a.TotalRunTime, b.TotalWaitTime, eng.Processed
	}
	r1a, r1b, n1 := run()
	r2a, r2b, n2 := run()
	if r1a != r2a || r1b != r2b || n1 != n2 {
		t.Fatalf("simulation not deterministic: (%v,%v,%d) vs (%v,%v,%d)", r1a, r1b, n1, r2a, r2b, n2)
	}
}

func TestYieldDemotesAndRotates(t *testing.T) {
	eng, pool := setup(t, 1, false)
	a, _ := addHogDomain(eng, pool, "a", 256, 1)
	b, _ := addHogDomain(eng, pool, "b", 256, 1)
	pool.Start()
	yields := 0
	tk := sim.NewTicker(eng, "yield", 7*sim.Millisecond, func() {
		va := a.VCPU(0)
		if va.State() == StateRunning {
			pool.Yield(va)
			yields++
		}
	})
	tk.Start()
	if err := eng.RunUntil(3 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if yields == 0 {
		t.Fatal("no yields exercised")
	}
	// Yielding must not starve the yielder entirely, nor let it keep
	// full share.
	pool.burnRunning(a.VCPU(0))
	pool.burnRunning(b.VCPU(0))
	if a.TotalRunTime > b.TotalRunTime {
		t.Fatalf("yielder outran non-yielder: %v vs %v", a.TotalRunTime, b.TotalRunTime)
	}
	if a.TotalRunTime < 200*sim.Millisecond {
		t.Fatalf("yielder starved: %v", a.TotalRunTime)
	}
}

func TestRebindIRQ(t *testing.T) {
	eng, pool := setup(t, 1, false)
	d, g := addHogDomain(eng, pool, "a", 256, 2)
	irq := d.AllocIRQ("eth0", 0)
	pool.Start()
	var deliveredTo []int
	g.onEvent = func(v int, port *Port) {
		if port.Kind == PortIRQ {
			deliveredTo = append(deliveredTo, v)
		}
	}
	eng.After(5*sim.Millisecond, "n1", func() { pool.Notify(irq) })
	eng.After(10*sim.Millisecond, "rebind", func() { d.RebindIRQ(irq, 1) })
	eng.After(15*sim.Millisecond, "n2", func() { pool.Notify(irq) })
	if err := eng.RunUntil(200 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(deliveredTo) != 2 || deliveredTo[0] != 0 || deliveredTo[1] != 1 {
		t.Fatalf("IRQ deliveries = %v, want [0 1]", deliveredTo)
	}
}

func TestFreezeMasterVCPUPanics(t *testing.T) {
	eng, pool := setup(t, 1, false)
	d, _ := addHogDomain(eng, pool, "a", 256, 2)
	_ = eng
	defer func() {
		if recover() == nil {
			t.Fatal("freezing vCPU0 must panic")
		}
	}()
	d.HypercallCPUFreeze(0, true)
}

func TestPoolIdleAccounting(t *testing.T) {
	eng, pool := setup(t, 2, false)
	addHogDomain(eng, pool, "a", 256, 1)
	pool.Start()
	if err := eng.RunUntil(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	idle := pool.Idle()
	// One hog on two pCPUs: one pCPU idles the whole time.
	if math.Abs(idle.Seconds()-2) > 0.05 {
		t.Fatalf("idle = %v, want ~2s", idle)
	}
}
