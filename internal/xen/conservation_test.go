package xen

import (
	"fmt"
	"testing"

	"vscale/internal/sim"
)

// TestCPUTimeConservation checks the fundamental accounting identity of
// the hypervisor under random mixes of hog/idle/bursty domains and both
// scheduling policies: total domain runtime plus pool idle time equals
// pCPUs × elapsed time, exactly.
func TestCPUTimeConservation(t *testing.T) {
	for _, policy := range []SchedPolicy{PolicyCredit, PolicyVRT} {
		for seed := uint64(1); seed <= 6; seed++ {
			policy, seed := policy, seed
			t.Run(fmt.Sprintf("%v-seed%d", policy, seed), func(t *testing.T) {
				r := sim.NewRand(seed)
				eng := sim.NewEngine(seed)
				cfg := DefaultConfig(1 + r.Intn(8))
				cfg.Policy = policy
				cfg.VScale = seed%2 == 0
				pool := NewPool(eng, cfg)

				nDoms := 1 + r.Intn(6)
				for i := 0; i < nDoms; i++ {
					nv := 1 + r.Intn(4)
					g := newFakeGuest(eng, pool, nv)
					d := pool.AddDomain(fmt.Sprintf("d%d", i), float64(64*(1+r.Intn(8))), nv, g)
					g.dom = d
					for v := 0; v < nv; v++ {
						switch r.Intn(3) {
						case 0:
							g.hog(v)
							d.KickVCPU(v)
						case 1:
							// Bursty: woken periodically with finite work.
							v := v
							g.onEvent = func(vc int, port *Port) {
								if port.Kind == PortIPI && g.work[vc] == 0 {
									g.work[vc] = sim.Time(1+r.Intn(20)) * sim.Millisecond
									g.Descheduled(vc)
									g.Dispatched(vc)
								}
							}
							tk := sim.NewTicker(eng, "burst",
								sim.Time(50+r.Intn(200))*sim.Millisecond,
								func() { d.KickVCPU(v) })
							tk.Start()
						default:
							// stays blocked
						}
					}
				}
				pool.Start()
				elapsed := sim.Time(2+r.Intn(4)) * sim.Second
				if err := eng.RunUntil(elapsed); err != nil {
					t.Fatal(err)
				}
				var run sim.Time
				for _, d := range pool.Domains() {
					for i := 0; i < d.VCPUCount(); i++ {
						if d.VCPU(i).State() == StateRunning {
							pool.burnRunning(d.VCPU(i))
						}
					}
					run += d.TotalRunTime
				}
				total := run + pool.Idle()
				want := sim.Time(cfg.PCPUs) * elapsed
				if total != want {
					t.Fatalf("conservation violated: run %v + idle %v = %v, want %v",
						run, pool.Idle(), total, want)
				}
			})
		}
	}
}

// TestWaitPlusRunBounded: a vCPU's accounted run+wait time never exceeds
// elapsed wall time.
func TestWaitPlusRunBounded(t *testing.T) {
	eng, pool := setup(t, 2, false)
	doms := make([]*Domain, 3)
	for i := range doms {
		doms[i], _ = addHogDomain(eng, pool, fmt.Sprintf("d%d", i), 256, 2)
	}
	pool.Start()
	const elapsed = 3 * sim.Second
	if err := eng.RunUntil(elapsed); err != nil {
		t.Fatal(err)
	}
	for _, d := range doms {
		for i := 0; i < d.VCPUCount(); i++ {
			v := d.VCPU(i)
			if v.State() == StateRunning {
				pool.burnRunning(v)
			}
			if v.RunTime+v.WaitTime > elapsed+sim.Millisecond {
				t.Fatalf("%s.%d: run %v + wait %v exceeds elapsed %v",
					d.Name, i, v.RunTime, v.WaitTime, elapsed)
			}
			if v.RunTime == 0 {
				t.Fatalf("%s.%d never ran", d.Name, i)
			}
		}
	}
}

// TestRunqueueStateConsistency: after heavy churn, every runnable vCPU
// is in exactly one runqueue and every running vCPU is some pCPU's
// current.
func TestRunqueueStateConsistency(t *testing.T) {
	eng, pool := setup(t, 3, true)
	for i := 0; i < 4; i++ {
		addHogDomain(eng, pool, fmt.Sprintf("d%d", i), 128*float64(i+1), 2)
	}
	pool.Start()
	check := func() {
		placed := make(map[*VCPU]string)
		for _, p := range pool.PCPUs() {
			if cur := p.Current(); cur != nil {
				if prev, ok := placed[cur]; ok {
					t.Fatalf("vCPU placed twice: %s and current@%d", prev, p.ID())
				}
				placed[cur] = fmt.Sprintf("current@%d", p.ID())
				if cur.State() != StateRunning {
					t.Fatalf("current vCPU in state %v", cur.State())
				}
			}
			for _, v := range p.runq {
				if prev, ok := placed[v]; ok {
					t.Fatalf("vCPU placed twice: %s and runq@%d", prev, p.ID())
				}
				placed[v] = fmt.Sprintf("runq@%d", p.ID())
				if v.State() != StateRunnable {
					t.Fatalf("queued vCPU in state %v", v.State())
				}
			}
		}
		for _, d := range pool.Domains() {
			for i := 0; i < d.VCPUCount(); i++ {
				v := d.VCPU(i)
				if _, ok := placed[v]; (v.State() == StateRunning || v.State() == StateRunnable) != ok {
					t.Fatalf("%s.%d state %v placement mismatch", d.Name, i, v.State())
				}
			}
		}
	}
	for step := 0; step < 50; step++ {
		if err := eng.RunUntil(eng.Now() + 37*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		check()
	}
}
