package dom0

import (
	"testing"

	"vscale/internal/costmodel"
	"vscale/internal/sim"
)

func TestReadScalesLinearlyWithVMs(t *testing.T) {
	d := New(DefaultConfig(), sim.NewRand(1))
	avg := func(n int) sim.Time {
		var sum sim.Time
		const reps = 200
		for i := 0; i < reps; i++ {
			sum += d.ReadVMStats(n, Idle)
		}
		return sum / reps
	}
	a1, a10, a50 := avg(1), avg(10), avg(50)
	// ~480µs per VM when idle.
	if a1 < 400*sim.Microsecond || a1 > 560*sim.Microsecond {
		t.Fatalf("1-VM read = %v, want ~480µs", a1)
	}
	r10 := float64(a10) / float64(a1)
	r50 := float64(a50) / float64(a1)
	if r10 < 8 || r10 > 12 || r50 < 42 || r50 > 58 {
		t.Fatalf("not linear: 10VM ratio %.1f, 50VM ratio %.1f", r10, r50)
	}
}

func TestIOLoadInflatesMonitoring(t *testing.T) {
	d := New(DefaultConfig(), sim.NewRand(2))
	avg := func(w Workload) (sim.Time, sim.Time) {
		var sum, max sim.Time
		const reps = 500
		for i := 0; i < reps; i++ {
			v := d.ReadVMStats(50, w)
			sum += v
			if v > max {
				max = v
			}
		}
		return sum / reps, max
	}
	idleAvg, _ := avg(Idle)
	diskAvg, _ := avg(DiskIO)
	netAvg, netMax := avg(NetworkIO)
	if !(idleAvg < diskAvg && diskAvg < netAvg) {
		t.Fatalf("ordering wrong: idle %v disk %v net %v", idleAvg, diskAvg, netAvg)
	}
	// Paper: with network I/O, reading 50 VMs takes >6ms on average with
	// maxima approaching 30ms.
	if netAvg < 6*sim.Millisecond {
		t.Fatalf("net avg = %v, want > 6ms", netAvg)
	}
	if netMax < 15*sim.Millisecond {
		t.Fatalf("net max = %v, want tens of ms", netMax)
	}
}

func TestChannelBeatsDom0ByOrdersOfMagnitude(t *testing.T) {
	// The decentralised vScale channel (0.91µs) vs the cheapest possible
	// dom0 sweep (1 VM, idle): >400x.
	d := New(DefaultConfig(), sim.NewRand(3))
	cheapest := d.ReadVMStats(1, Idle)
	if cheapest < 400*costmodel.ChannelRead {
		t.Fatalf("dom0 %v vs channel %v: expected >400x gap", cheapest, costmodel.ChannelRead)
	}
}

func TestHotplugPathLatency(t *testing.T) {
	d := New(DefaultConfig(), sim.NewRand(4))
	m, _ := costmodel.HotplugModelFor("v-3.14.15")
	var on, off sim.Time
	const n = 200
	for i := 0; i < n; i++ {
		on += d.HotplugVCPU(m, true)
		off += d.HotplugVCPU(m, false)
	}
	on /= n
	off /= n
	if on < costmodel.XenStoreWrite {
		t.Fatal("online path must include the XenStore write")
	}
	// Removing a vCPU through dom0 is milliseconds; the vScale balancer
	// is 2.1µs on the master — the paper's 100x-100,000x headline.
	if off < 2*sim.Millisecond {
		t.Fatalf("offline path = %v, want ms-scale", off)
	}
}

func TestFleetSweepPerHostCosts(t *testing.T) {
	d := New(DefaultConfig(), sim.NewRand(6))
	const reps = 200
	hosts := []int{0, 1, 10, 50}
	sums := make([]sim.Time, len(hosts))
	for r := 0; r < reps; r++ {
		lats := d.FleetSweep(hosts, Idle)
		if len(lats) != len(hosts) {
			t.Fatalf("FleetSweep returned %d entries for %d hosts", len(lats), len(hosts))
		}
		for h, lat := range lats {
			sums[h] += lat
		}
	}
	if sums[0] != 0 {
		t.Fatal("empty host must cost nothing")
	}
	// Each host pays its own linear sweep: ~480µs per VM when idle.
	a1 := sums[1] / reps
	a50 := sums[3] / reps
	if a1 < 400*sim.Microsecond || a1 > 560*sim.Microsecond {
		t.Fatalf("1-VM host sweep = %v, want ~480µs", a1)
	}
	if r := float64(a50) / float64(a1); r < 42 || r > 58 {
		t.Fatalf("50-VM host not linear vs 1-VM host: ratio %.1f", r)
	}
}

func TestDegenerateInputs(t *testing.T) {
	d := New(DefaultConfig(), sim.NewRand(5))
	if d.ReadVMStats(0, NetworkIO) != 0 {
		t.Fatal("0 VMs should cost nothing")
	}
	if d.ReadVMStats(-3, Idle) != 0 {
		t.Fatal("negative VMs should cost nothing")
	}
	if Workload(9).String() == "" {
		t.Fatal("unknown workload format")
	}
}
