// Package dom0 models Xen's control domain and its libxl/XenStore
// toolstack, which the paper's Figure 4 evaluates as the centralised
// alternative to vScale's per-VM channel. dom0 forwards all guest I/O
// through its backend drivers, so toolstack operations (reading VM CPU
// consumptions, writing vCPU availability for hotplug) queue behind I/O
// forwarding work; the busier dom0 is, the slower — and more variable —
// monitoring becomes, and the cost grows linearly with the number of
// VMs. vScale's channel (Table 1) bypasses all of this.
package dom0

import (
	"fmt"

	"vscale/internal/costmodel"
	"vscale/internal/sim"
)

// Workload describes dom0's background I/O forwarding load.
type Workload int

// Background workload kinds for the monitoring experiment (Figure 4).
const (
	// Idle: no guest I/O is being forwarded.
	Idle Workload = iota
	// DiskIO: one VM performs disk I/O through dom0's block backend.
	DiskIO
	// NetworkIO: one VM transmits over the network through dom0's
	// netback (the heaviest case in the paper).
	NetworkIO
)

func (w Workload) String() string {
	switch w {
	case Idle:
		return "w/o workload"
	case DiskIO:
		return "w/ disk I/O"
	case NetworkIO:
		return "w/ network I/O"
	default:
		return fmt.Sprintf("Workload(%d)", int(w))
	}
}

// Config parameterises the dom0 model.
type Config struct {
	// PerVMReadCost is the base libxl cost of reading one VM's CPU
	// consumption when dom0 is idle (paper: ~480 µs).
	PerVMReadCost sim.Time

	// Busy fractions: the probability that a toolstack operation finds
	// dom0's event loop busy forwarding I/O, and the distribution of the
	// resulting queueing delay per VM read. Fitted to Figure 4: network
	// I/O inflates a 50-VM sweep from ~24 ms to >6 ms average with ~30 ms
	// maxima.
	DiskBusyProb, NetBusyProb     float64
	DiskDelayMean, DiskDelaySigma float64 // log-normal, microseconds
	NetDelayMean, NetDelaySigma   float64
}

// DefaultConfig returns parameters fitted to the paper's measurements.
func DefaultConfig() Config {
	return Config{
		PerVMReadCost:  costmodel.LibxlPerVMRead,
		DiskBusyProb:   0.35,
		NetBusyProb:    0.55,
		DiskDelayMean:  160, // µs median extra per read under disk I/O
		DiskDelaySigma: 0.9,
		NetDelayMean:   320, // µs median extra per read under network I/O
		NetDelaySigma:  1.1,
	}
}

// Dom0 models the control domain's toolstack.
type Dom0 struct {
	cfg  Config
	rand *sim.Rand

	// Reads counts completed monitoring sweeps.
	Reads uint64
}

// New creates a dom0 model.
func New(cfg Config, rand *sim.Rand) *Dom0 {
	return &Dom0{cfg: cfg, rand: rand}
}

// ReadVMStats returns the latency of one monitoring sweep over nVMs
// guests under the given background workload. This is the operation
// VCPU-Bal performs centrally, growing linearly with VM count.
//
// The cost model is fitted to the paper's Figure 4 as:
//
//	T(n) = Σ_{i=1..n} [ 480 µs · (1 ± 0.1 uniform) + Q_i(w) ]
//
// where 480 µs (costmodel.LibxlPerVMRead) is the idle per-VM libxl read
// and Q_i(w) is the queueing delay behind dom0's I/O forwarding: zero
// when idle; with probability 0.35 (disk I/O) or 0.55 (network I/O) a
// log-normal delay with median 160 µs (σ=0.9) or 320 µs (σ=1.1)
// respectively. That reproduces Figure 4's linear growth — an idle
// 50-VM sweep averages ~24 ms — and its inflation and variance under
// I/O load, with network I/O the heaviest (≈30 ms maxima at 50 VMs).
func (d *Dom0) ReadVMStats(nVMs int, w Workload) sim.Time {
	if nVMs <= 0 {
		return 0
	}
	d.Reads++
	var total sim.Time
	for i := 0; i < nVMs; i++ {
		// Base cost with mild per-read jitter (±10%).
		base := d.cfg.PerVMReadCost
		jitter := sim.Time(float64(base) * 0.1 * (2*d.rand.Float64() - 1))
		total += base + jitter
		total += d.queueDelay(w)
	}
	return total
}

// queueDelay samples the extra delay one read suffers behind dom0 I/O.
func (d *Dom0) queueDelay(w Workload) sim.Time {
	var prob, mean, sigma float64
	switch w {
	case Idle:
		return 0
	case DiskIO:
		prob, mean, sigma = d.cfg.DiskBusyProb, d.cfg.DiskDelayMean, d.cfg.DiskDelaySigma
	case NetworkIO:
		prob, mean, sigma = d.cfg.NetBusyProb, d.cfg.NetDelayMean, d.cfg.NetDelaySigma
	default:
		return 0
	}
	if d.rand.Float64() >= prob {
		return 0
	}
	return sim.FromMicros(mean * d.rand.LogNormal(0, sigma))
}

// FleetSweep extends the Figure 4 cost model to the multi-host case: a
// central VCPU-Bal-style monitor must sweep every host's dom0 each
// period, and each host's sweep pays that host's own per-VM read costs
// and queueing delays. The returned slice holds one sweep latency per
// host (vmsPerHost[h] VMs under workload w); hosts with no VMs cost
// zero. The monitoring period must cover max (parallel monitors, one
// per host) or sum (one sequential monitor) of the entries — either
// way the fleet cost grows with total VM count, which is the
// scalability argument for vScale's per-host, per-VM channels.
func (d *Dom0) FleetSweep(vmsPerHost []int, w Workload) []sim.Time {
	out := make([]sim.Time, len(vmsPerHost))
	for h, n := range vmsPerHost {
		out[h] = d.ReadVMStats(n, w)
	}
	return out
}

// HotplugVCPU returns the latency of the dom0-driven vCPU reconfiguration
// path used by VCPU-Bal: a XenStore write (dom0→domU via XenBus) plus the
// guest's CPU hotplug operation, sampled from the given kernel model.
// Compare with the vScale balancer's 2.1 µs master cost.
func (d *Dom0) HotplugVCPU(kernel costmodel.HotplugModel, online bool) sim.Time {
	lat := costmodel.XenStoreWrite
	if online {
		lat += kernel.DrawUp(d.rand)
	} else {
		lat += kernel.DrawDown(d.rand)
	}
	return lat
}

// RandState exports the sampler's PRNG state for a checkpoint
// (docs/checkpoint.md); Reads is exported and captured directly.
func (d *Dom0) RandState() sim.RandState { return d.rand.State() }

// RestoreRand overwrites the sampler's PRNG state from a checkpoint.
func (d *Dom0) RestoreRand(st sim.RandState) { d.rand.SetState(st) }
