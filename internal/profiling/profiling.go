// Package profiling wires the standard runtime/pprof collectors into
// the command-line tools (-cpuprofile / -memprofile). Profiles are
// written to files and all diagnostics go to stderr, so experiment
// stdout stays byte-identical whether or not profiling is on. See
// docs/observability.md for how to inspect the output.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins a CPU profile to path and returns the function that
// stops and closes it. With an empty path it is a no-op.
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
		}
	}, nil
}

// WriteHeap dumps a GC-settled heap profile to path. With an empty path
// it is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC() // settle allocations so the profile reflects live heap
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}
