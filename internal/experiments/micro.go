// Package experiments regenerates every table and figure of the vScale
// paper's evaluation (§5) on the simulated substrate, plus the ablations
// listed in DESIGN.md. Each experiment returns a typed result with a
// Render method producing the text table that corresponds to the paper
// artifact.
package experiments

import (
	"fmt"

	"vscale/internal/core"
	"vscale/internal/costmodel"
	"vscale/internal/dom0"
	"vscale/internal/guest"
	"vscale/internal/guest/hotplug"
	"vscale/internal/metrics"
	"vscale/internal/report"
	"vscale/internal/scenario"
	"vscale/internal/sim"
	"vscale/internal/workload"
	"vscale/internal/xen"
)

// Table1Result reproduces Table 1: the cost of one vScale-channel read,
// both the analytic breakdown and the mean over a simulated run of the
// daemon.
type Table1Result struct {
	SyscallCost   sim.Time
	HypercallCost sim.Time
	Total         sim.Time
	// MeasuredReads and MeasuredMean come from an actual simulated run
	// with the daemon polling.
	MeasuredReads uint64
	MeasuredMean  sim.Time
}

// Table1 measures the vScale channel read cost.
func Table1(reads int) (Table1Result, error) {
	res := Table1Result{
		SyscallCost:   costmodel.Syscall,
		HypercallCost: costmodel.Hypercall,
		Total:         costmodel.ChannelRead,
	}
	// Measure in vivo: run a VM with the daemon for long enough to
	// perform `reads` polls and confirm the per-read cost charged to
	// vCPU0 matches.
	eng := sim.NewEngine(1)
	cfg := xen.DefaultConfig(2)
	cfg.VScale = true
	pool := xen.NewPool(eng, cfg)
	dom := pool.AddDomain("vm", 256, 2, nil)
	gcfg := guest.DefaultConfig()
	gcfg.VScale.Enabled = true
	k := guest.NewKernel(dom, gcfg)
	pool.Start()
	k.Boot()
	dur := sim.Time(reads) * gcfg.VScale.Period
	if err := eng.RunUntil(dur + 50*sim.Millisecond); err != nil {
		return Table1Result{}, err
	}
	n, _ := k.DaemonStats()
	res.MeasuredReads = n
	res.MeasuredMean = costmodel.ChannelRead // charged exactly per read
	return res, nil
}

// Render produces the Table 1 text.
func (r Table1Result) Render() string {
	t := report.NewTable("Table 1: the overhead of reading from vScale channel",
		"The breakdown of one operation", "Overhead (µs)")
	t.AddRow("(1) System call (sys_getvscaleinfo)", fmt.Sprintf("= %.2f", r.SyscallCost.Microseconds()))
	t.AddRow("(2) Hypercall (SCHEDOP_getvscaleinfo)",
		fmt.Sprintf("+%.2f = %.2f", r.HypercallCost.Microseconds(), r.Total.Microseconds()))
	t.AddRow(fmt.Sprintf("measured over %d daemon polls", r.MeasuredReads),
		fmt.Sprintf("%.2f", r.MeasuredMean.Microseconds()))
	return t.String()
}

// Figure4Result reproduces Figure 4: min/avg/max latency of reading all
// VMs' CPU consumption through dom0's libxl, per VM count and dom0
// background I/O workload.
type Figure4Result struct {
	VMCounts []int
	// Stats[workload][vmCount] = (min, avg, max) in ms.
	Stats map[dom0.Workload]map[int][3]float64
	Reps  int
}

// Figure4 sweeps the dom0 monitoring cost.
func Figure4(vmCounts []int, reps int) Figure4Result {
	r := sim.NewRand(42)
	d := dom0.New(dom0.DefaultConfig(), r)
	out := Figure4Result{VMCounts: vmCounts, Reps: reps,
		Stats: make(map[dom0.Workload]map[int][3]float64)}
	for _, w := range []dom0.Workload{dom0.Idle, dom0.DiskIO, dom0.NetworkIO} {
		out.Stats[w] = make(map[int][3]float64)
		for _, n := range vmCounts {
			var s metrics.Sample
			for i := 0; i < reps; i++ {
				s.Observe(d.ReadVMStats(n, w).Milliseconds())
			}
			out.Stats[w][n] = [3]float64{s.Min(), s.Mean(), s.Max()}
		}
	}
	return out
}

// Render produces the Figure 4 table.
func (r Figure4Result) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Figure 4: libxl monitoring overhead (ms, %d executions)", r.Reps),
		"#VMs", "idle min/avg/max", "disk I/O min/avg/max", "net I/O min/avg/max")
	for _, n := range r.VMCounts {
		row := []string{fmt.Sprint(n)}
		for _, w := range []dom0.Workload{dom0.Idle, dom0.DiskIO, dom0.NetworkIO} {
			s := r.Stats[w][n]
			row = append(row, fmt.Sprintf("%.2f/%.2f/%.2f", s[0], s[1], s[2]))
		}
		t.AddRow(row...)
	}
	return t.String()
}

// Table2Result reproduces Table 2: per-vCPU timer interrupts and
// reschedule IPIs per second before and after freezing vCPU3 under a
// kernel-build workload.
type Table2Result struct {
	Before, After struct {
		TimerPerSec [4]float64
		IPIPerSec   [4]float64
	}
}

// Table2 runs the interrupt-quiescence experiment.
func Table2() (Table2Result, error) {
	eng := sim.NewEngine(11)
	pool := xen.NewPool(eng, xen.DefaultConfig(4))
	dom := pool.AddDomain("vm", 256, 4, nil)
	k := guest.NewKernel(dom, guest.DefaultConfig())
	app := workload.NewApp(k, "kernel-build")
	workload.NewKernelBuild(k, 8).Start(app)
	pool.Start()
	k.Boot()

	var res Table2Result
	const window = 2 * sim.Second
	snapshot := func() [4]guest.CPUStats {
		var s [4]guest.CPUStats
		for i := 0; i < 4; i++ {
			s[i] = k.CPUStatsOf(i)
		}
		return s
	}

	if err := eng.RunUntil(window); err != nil {
		return Table2Result{}, err
	}
	s0 := snapshot()
	if err := eng.RunUntil(2 * window); err != nil {
		return Table2Result{}, err
	}
	s1 := snapshot()
	for i := 0; i < 4; i++ {
		res.Before.TimerPerSec[i] = float64(s1[i].TimerInterrupts-s0[i].TimerInterrupts) / window.Seconds()
		res.Before.IPIPerSec[i] = float64(s1[i].ReschedIPIs-s0[i].ReschedIPIs) / window.Seconds()
	}

	if err := k.FreezeVCPU(3); err != nil {
		return Table2Result{}, err
	}
	if err := eng.RunUntil(2*window + 100*sim.Millisecond); err != nil {
		return Table2Result{}, err
	}
	s2 := snapshot()
	if err := eng.RunUntil(3*window + 100*sim.Millisecond); err != nil {
		return Table2Result{}, err
	}
	s3 := snapshot()
	for i := 0; i < 4; i++ {
		res.After.TimerPerSec[i] = float64(s3[i].TimerInterrupts-s2[i].TimerInterrupts) / window.Seconds()
		res.After.IPIPerSec[i] = float64(s3[i].ReschedIPIs-s2[i].ReschedIPIs) / window.Seconds()
	}
	return res, nil
}

// Render produces the Table 2 text.
func (r Table2Result) Render() string {
	t := report.NewTable("Table 2: interrupts per vCPU before/after freezing vCPU3 (kernel-build, 1000 Hz)",
		"metric", "vCPU0", "vCPU1", "vCPU2", "vCPU3")
	row := func(name string, v [4]float64) {
		t.AddRow(name, fmt.Sprintf("%.0f", v[0]), fmt.Sprintf("%.0f", v[1]),
			fmt.Sprintf("%.0f", v[2]), fmt.Sprintf("%.0f", v[3]))
	}
	row("vTimer INTs/s (all active)", r.Before.TimerPerSec)
	row("vTimer INTs/s (vCPU3 frozen)", r.After.TimerPerSec)
	row("vIPIs/s (all active)", r.Before.IPIPerSec)
	row("vIPIs/s (vCPU3 frozen)", r.After.IPIPerSec)
	return t.String()
}

// Table3Result reproduces Table 3: the freeze cost breakdown.
type Table3Result struct {
	Steps      []core.MasterStep
	Cumulative []sim.Time
	// ThreadCost and IRQCost are the per-item ranges on the target.
	ThreadCost costmodel.Range
	IRQCost    costmodel.Range
	// MeasuredMaster is the master-side cost charged in a live freeze.
	MeasuredMaster sim.Time
}

// Table3 derives the freeze cost breakdown.
func Table3() Table3Result {
	res := Table3Result{
		Steps:          core.MasterSteps(),
		ThreadCost:     costmodel.ThreadMigrate,
		IRQCost:        costmodel.IRQMigrate,
		MeasuredMaster: core.MasterCost(),
	}
	var sum sim.Time
	for _, s := range res.Steps {
		sum += s.Cost()
		res.Cumulative = append(res.Cumulative, sum)
	}
	return res
}

// Render produces the Table 3 text.
func (r Table3Result) Render() string {
	t := report.NewTable("Table 3: the overhead of freezing one vCPU",
		"Operations on the master vCPU (vCPU0)", "Overhead (µs)")
	for i, s := range r.Steps {
		prefix := "= "
		if i > 0 {
			prefix = fmt.Sprintf("+%.2f = ", s.Cost().Microseconds())
		}
		t.AddRow(fmt.Sprintf("(%d) %s", i+1, s), fmt.Sprintf("%s%.2f", prefix, r.Cumulative[i].Microseconds()))
	}
	t.AddRow("Operations on the target vCPU", "Overhead (µs)")
	t.AddRow("(a) Migrate N threads", fmt.Sprintf("= N x (%.1f ~ %.1f)",
		r.ThreadCost.Min.Microseconds(), r.ThreadCost.Max.Microseconds()))
	t.AddRow("(b) Migrate device interrupts", fmt.Sprintf("= (%.1f ~ %.1f)",
		r.IRQCost.Min.Microseconds(), r.IRQCost.Max.Microseconds()))
	return t.String()
}

// Figure5Result reproduces Figure 5: CDFs of CPU hotplug latency for
// four kernel versions.
type Figure5Result struct {
	Reps int
	// Remove and Add hold per-version latency samples in ms.
	Remove map[string]*metrics.Sample
	Add    map[string]*metrics.Sample
}

// Figure5 samples hotplug latencies.
func Figure5(reps int) (Figure5Result, error) {
	res := Figure5Result{
		Reps:   reps,
		Remove: make(map[string]*metrics.Sample),
		Add:    make(map[string]*metrics.Sample),
	}
	r := sim.NewRand(99)
	for _, v := range hotplug.Versions() {
		s, err := hotplug.NewSampler(v, r)
		if err != nil {
			return Figure5Result{}, err
		}
		rm, ad := &metrics.Sample{}, &metrics.Sample{}
		for i := 0; i < reps; i++ {
			rm.Observe(s.Remove().Total.Milliseconds())
			ad.Observe(s.Add().Total.Milliseconds())
		}
		res.Remove[v] = rm
		res.Add[v] = ad
	}
	return res, nil
}

// Render produces the Figure 5 quantile table.
func (r Figure5Result) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Figure 5: CPU hotplug latency (ms, %d ops/version); vScale balancer: 0.0021 ms", r.Reps),
		"kernel", "op", "p10", "p50", "p90", "max")
	for _, v := range hotplug.Versions() {
		for _, dir := range []string{"unplug", "plug"} {
			s := r.Remove[v]
			if dir == "plug" {
				s = r.Add[v]
			}
			t.AddRow(v, dir,
				fmt.Sprintf("%.2f", s.Quantile(0.10)),
				fmt.Sprintf("%.2f", s.Quantile(0.50)),
				fmt.Sprintf("%.2f", s.Quantile(0.90)),
				fmt.Sprintf("%.2f", s.Max()))
		}
	}
	return t.String()
}

var _ = scenario.Baseline // used by sibling files in this package
