package experiments

import (
	"fmt"
	"strings"
	"sync"

	"vscale/internal/cluster"
	"vscale/internal/runner"
	"vscale/internal/sim"
	"vscale/internal/telemetry"
)

// Config parameterises one pass over the registry: sweep sizes (quick
// vs full), the Apache measurement window, and the runner options every
// experiment fans its jobs out with. A single Config is shared across
// the experiments of one CLI invocation so that figure9/figure10 reuse
// figure6's NPB runs and figure13 reuses figure11's PARSEC runs instead
// of re-simulating them.
type Config struct {
	// Quick shrinks every sweep to its smoke-test size.
	Quick bool
	// Window is the Apache measurement window per load level (default
	// 20 s; the paper uses 1 min).
	Window sim.Time
	// Workers bounds each experiment's worker pool; <= 0 selects
	// GOMAXPROCS.
	Workers int
	// BaseSeed roots the per-run seed derivation (the paper sweeps pin
	// their own seeds; the derived seeds feed repeat-run harnesses).
	BaseSeed uint64
	// Trace hands every simulation run a private tracer; collect them
	// from the Results' Reports and combine with trace.Merge.
	Trace bool
	// TraceCapacity sizes each per-run ring.
	TraceCapacity int
	// Telemetry, when enabled, receives live per-epoch telemetry from
	// the experiments that support it (currently the cluster fleets):
	// scrape snapshots to the sink's server, deterministic JSONL records
	// to its stream. Experiment stdout is unaffected.
	Telemetry *telemetry.Sink
	// Policies selects the scaling policies the cluster experiment
	// competes (registry names, see cluster.ParsePolicies); empty means
	// every registered policy.
	Policies []string
	// Sync selects the cluster fleet executor ("" = bounded-lag; see
	// cluster.ParseSyncMode). Results are byte-identical across modes.
	Sync string
	// LagEpochs bounds cluster placement staleness and host run-ahead
	// (0 = cluster.DefaultLagEpochs).
	LagEpochs int
	// WarmEpochs gives every cluster fleet run a policy-neutral warm
	// prefix of that many epochs (the warmfork experiment uses it to
	// override its default warm length; 0 keeps the defaults).
	WarmEpochs int
	// WarmFork makes the cluster experiment simulate each host count's
	// warm prefix once and fork every policy from the snapshot instead
	// of re-simulating it per policy (requires WarmEpochs > 0).
	WarmFork bool
	// CheckpointPath persists the cluster experiment's warm-prefix
	// snapshot to a file; RestorePath loads one instead of simulating
	// the prefix. See ClusterWarm.
	CheckpointPath string
	RestorePath    string
	// Elastic selects the cluster fleets' elasticity mode (see
	// cluster.ElasticityFor): "" or "none"/"vertical" for the historical
	// vertical-only fleets, "migrate"/"replicas"/"hybrid" to turn on
	// live migration and/or ReplicaSet-style horizontal autoscaling.
	Elastic string

	mu      sync.Mutex
	npb4    *npbMemo
	parsec4 *parsecMemo
}

type npbMemo struct {
	res NPBResult
	err error
}

type parsecMemo struct {
	res ParsecResult
	err error
}

// NewConfig returns a full-scale Config with the default Apache window.
func NewConfig() *Config {
	return &Config{Window: 20 * sim.Second}
}

// opts builds the runner options for one experiment, accumulating into
// rep (which may be nil).
func (c *Config) opts(rep *runner.Report) runner.Options {
	return runner.Options{
		Workers:       c.Workers,
		BaseSeed:      c.BaseSeed,
		Trace:         c.Trace,
		TraceCapacity: c.TraceCapacity,
		Report:        rep,
	}
}

// npbApps returns the NPB app list for the configured scale.
func (c *Config) npbApps() []string {
	if c.Quick {
		return []string{"cg", "ep", "lu"}
	}
	return nil // full suite
}

// parsecApps returns the PARSEC app list for the configured scale.
func (c *Config) parsecApps() []string {
	if c.Quick {
		return []string{"dedup", "streamcluster", "swaptions"}
	}
	return nil // full suite
}

// sharedNPB4 memoizes the 4-vCPU NPB sweep shared by figures 6, 9 and
// 10. The runner accounting lands in rep only for the caller that
// actually runs the sweep; reusers pay (and report) nothing.
func (c *Config) sharedNPB4(rep *runner.Report) (NPBResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.npb4 == nil {
		res, err := NPBSweep(c.opts(rep), 4, c.npbApps(), nil, nil)
		c.npb4 = &npbMemo{res: res, err: err}
	}
	return c.npb4.res, c.npb4.err
}

// sharedParsec4 memoizes the 4-vCPU PARSEC sweep shared by figures 11
// and 13.
func (c *Config) sharedParsec4(rep *runner.Report) (ParsecResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.parsec4 == nil {
		res, err := ParsecSweep(c.opts(rep), 4, c.parsecApps(), nil)
		c.parsec4 = &parsecMemo{res: res, err: err}
	}
	return c.parsec4.res, c.parsec4.err
}

// Result is one experiment's output: the rendered section body plus the
// runner accounting of the simulations it ran (nil for analytic
// experiments and for experiments that only reused another's runs).
type Result struct {
	Name string
	Text string
	// Report carries job wall clocks, derived seeds and per-run tracers
	// in submission order.
	Report *runner.Report
	// Metrics carries scalar results worth benchmarking over time (the
	// CLI folds them into the -benchjson output); nil for experiments
	// that only render text.
	Metrics map[string]float64
}

// Experiment is one registry entry. Name is the -run selector, Title
// the section header, Desc the usage line; QuickParams/FullParams
// document the two sweep scales.
type Experiment struct {
	Name        string
	Title       string
	Desc        string
	QuickParams string
	FullParams  string
	Run         func(c *Config) (Result, error)
}

// wrap builds a Result-producing closure from a render function fed by
// a fresh runner report.
func wrap(name string, f func(c *Config, rep *runner.Report) (string, error)) func(*Config) (Result, error) {
	return func(c *Config) (Result, error) {
		rep := &runner.Report{}
		text, err := f(c, rep)
		if err != nil {
			return Result{}, fmt.Errorf("%s: %w", name, err)
		}
		res := Result{Name: name, Text: text}
		if rep.Jobs > 0 {
			res.Report = rep
		}
		return res, nil
	}
}

// Registry lists every experiment in "all" execution order: the
// paper-motivation and micro pieces first, then the sweeps, then
// ablations and the §7 extension.
func Registry() []Experiment {
	return []Experiment{
		{
			Name:        "figure1",
			Title:       "Figure 1 — the three delay phenomena, quantified",
			Desc:        "spin waste, vIPI delay and I/O delay on dedicated/Xen/vScale hosts",
			QuickParams: "3 s per host",
			FullParams:  "10 s per host",
			Run: wrap("figure1", func(c *Config, rep *runner.Report) (string, error) {
				dur := 10 * sim.Second
				if c.Quick {
					dur = 3 * sim.Second
				}
				r, err := Motivation(c.opts(rep), dur)
				if err != nil {
					return "", err
				}
				return r.Render(), nil
			}),
		},
		{
			Name:        "table1",
			Title:       "Table 1 — vScale channel read overhead",
			Desc:        "analytic + in-vivo cost of one vScale channel read",
			QuickParams: "1000 daemon polls",
			FullParams:  "1000 daemon polls",
			Run: wrap("table1", func(c *Config, rep *runner.Report) (string, error) {
				r, err := Table1(1000)
				if err != nil {
					return "", err
				}
				return r.Render(), nil
			}),
		},
		{
			Name:        "figure4",
			Title:       "Figure 4 — dom0/libxl monitoring overhead",
			Desc:        "libxl VM-stats read latency vs VM count and dom0 I/O load",
			QuickParams: "500 reps",
			FullParams:  "10000 reps",
			Run: wrap("figure4", func(c *Config, rep *runner.Report) (string, error) {
				reps := 10000
				if c.Quick {
					reps = 500
				}
				return Figure4([]int{1, 10, 20, 30, 40, 50}, reps).Render(), nil
			}),
		},
		{
			Name:        "table2",
			Title:       "Table 2 — interrupt quiescence after freezing vCPU3",
			Desc:        "per-vCPU timer/IPI rates before and after a freeze",
			QuickParams: "2 s windows",
			FullParams:  "2 s windows",
			Run: wrap("table2", func(c *Config, rep *runner.Report) (string, error) {
				r, err := Table2()
				if err != nil {
					return "", err
				}
				return r.Render(), nil
			}),
		},
		{
			Name:        "table3",
			Title:       "Table 3 — freeze cost breakdown",
			Desc:        "master/target-side cost of freezing one vCPU (analytic)",
			QuickParams: "analytic",
			FullParams:  "analytic",
			Run: wrap("table3", func(c *Config, rep *runner.Report) (string, error) {
				return Table3().Render(), nil
			}),
		},
		{
			Name:        "figure5",
			Title:       "Figure 5 — Linux CPU hotplug latency",
			Desc:        "hotplug latency CDFs across four kernel versions",
			QuickParams: "30 ops/version",
			FullParams:  "100 ops/version",
			Run: wrap("figure5", func(c *Config, rep *runner.Report) (string, error) {
				reps := 100
				if c.Quick {
					reps = 30
				}
				r, err := Figure5(reps)
				if err != nil {
					return "", err
				}
				return r.Render(), nil
			}),
		},
		{
			Name:        "figure6",
			Title:       "Figure 6 — NPB normalized execution time (4-vCPU VM)",
			Desc:        "NPB apps × 4 modes × 3 spin counts, 4-vCPU VM (shared with figures 9/10)",
			QuickParams: "3 apps",
			FullParams:  "all NPB apps",
			Run: wrap("figure6", func(c *Config, rep *runner.Report) (string, error) {
				npb4, err := c.sharedNPB4(rep)
				if err != nil {
					return "", err
				}
				var sb strings.Builder
				for _, spin := range SpinCounts {
					sb.WriteString(npb4.RenderFigure(spin))
					sb.WriteString("\n")
				}
				return sb.String(), nil
			}),
		},
		{
			Name:        "figure7",
			Title:       "Figure 7 — NPB normalized execution time (8-vCPU VM)",
			Desc:        "NPB apps × 4 modes × 3 spin counts, 8-vCPU VM",
			QuickParams: "3 apps",
			FullParams:  "all NPB apps",
			Run: wrap("figure7", func(c *Config, rep *runner.Report) (string, error) {
				npb8, err := NPBSweep(c.opts(rep), 8, c.npbApps(), nil, nil)
				if err != nil {
					return "", err
				}
				var sb strings.Builder
				for _, spin := range SpinCounts {
					sb.WriteString(npb8.RenderFigure(spin))
					sb.WriteString("\n")
				}
				return sb.String(), nil
			}),
		},
		{
			Name:        "figure8",
			Title:       "Figure 8 — active vCPUs over time (bt under vScale)",
			Desc:        "active-vCPU traces of a 4- and an 8-vCPU VM running bt",
			QuickParams: "10 s trace",
			FullParams:  "10 s trace",
			Run: wrap("figure8", func(c *Config, rep *runner.Report) (string, error) {
				r, err := Figure8(c.opts(rep), 10*sim.Second)
				if err != nil {
					return "", err
				}
				return r.Render(), nil
			}),
		},
		{
			Name:        "figure9",
			Title:       "Figure 9 — VM waiting-time reduction",
			Desc:        "scheduling-delay reduction under vScale (reuses figure6's runs)",
			QuickParams: "3 apps (shared)",
			FullParams:  "all NPB apps (shared)",
			Run: wrap("figure9", func(c *Config, rep *runner.Report) (string, error) {
				npb4, err := c.sharedNPB4(rep)
				if err != nil {
					return "", err
				}
				return npb4.RenderFigure9(30_000_000_000), nil
			}),
		},
		{
			Name:        "figure10",
			Title:       "Figure 10 — NPB virtual-IPI rates",
			Desc:        "reschedule-IPI rates per spin policy (reuses figure6's runs)",
			QuickParams: "3 apps (shared)",
			FullParams:  "all NPB apps (shared)",
			Run: wrap("figure10", func(c *Config, rep *runner.Report) (string, error) {
				npb4, err := c.sharedNPB4(rep)
				if err != nil {
					return "", err
				}
				return npb4.RenderFigure10(), nil
			}),
		},
		{
			Name:        "figure11",
			Title:       "Figure 11 — PARSEC (4-vCPU VM)",
			Desc:        "PARSEC apps × 4 modes, 4-vCPU VM (shared with figure 13)",
			QuickParams: "3 apps",
			FullParams:  "all PARSEC apps",
			Run: wrap("figure11", func(c *Config, rep *runner.Report) (string, error) {
				p4, err := c.sharedParsec4(rep)
				if err != nil {
					return "", err
				}
				return p4.RenderFigure(), nil
			}),
		},
		{
			Name:        "figure12",
			Title:       "Figure 12 — PARSEC (8-vCPU VM)",
			Desc:        "PARSEC apps × 4 modes, 8-vCPU VM",
			QuickParams: "3 apps",
			FullParams:  "all PARSEC apps",
			Run: wrap("figure12", func(c *Config, rep *runner.Report) (string, error) {
				p8, err := ParsecSweep(c.opts(rep), 8, c.parsecApps(), nil)
				if err != nil {
					return "", err
				}
				return p8.RenderFigure(), nil
			}),
		},
		{
			Name:        "figure13",
			Title:       "Figure 13 — PARSEC virtual-IPI rates",
			Desc:        "per-app IPI rates on the baseline (reuses figure11's runs)",
			QuickParams: "3 apps (shared)",
			FullParams:  "all PARSEC apps (shared)",
			Run: wrap("figure13", func(c *Config, rep *runner.Report) (string, error) {
				p4, err := c.sharedParsec4(rep)
				if err != nil {
					return "", err
				}
				return p4.RenderFigure13(), nil
			}),
		},
		{
			Name:        "figure14",
			Title:       "Figure 14 — Apache web server",
			Desc:        "reply rate / connection time / response time vs offered load",
			QuickParams: "5 rates",
			FullParams:  "11 rates",
			Run: wrap("figure14", func(c *Config, rep *runner.Report) (string, error) {
				rates := []float64{0.5, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
				if c.Quick {
					rates = []float64{2, 4, 6, 8, 10}
				}
				window := c.Window
				if window <= 0 {
					window = 20 * sim.Second
				}
				r, err := Apache(c.opts(rep), rates, window, nil)
				if err != nil {
					return "", err
				}
				return r.Render(), nil
			}),
		},
		{
			Name:        "ablations",
			Title:       "Ablations — design-choice benches (DESIGN.md A1-A5)",
			Desc:        "weight-only sizing, hotplug path, daemon period, per-VM weight, ceil margin, scheduler generality",
			QuickParams: "6 ablations on cg",
			FullParams:  "6 ablations on cg",
			Run: wrap("ablations", func(c *Config, rep *runner.Report) (string, error) {
				var sb strings.Builder
				for _, abl := range []func() (AblationResult, error){
					func() (AblationResult, error) { return AblationWeightOnly(c.opts(rep), "cg") },
					func() (AblationResult, error) { return AblationHotplugPath(c.opts(rep), "cg") },
					func() (AblationResult, error) { return AblationDaemonPeriod(c.opts(rep), "cg", nil) },
					func() (AblationResult, error) { return AblationPerVMWeight(c.opts(rep), "cg") },
					func() (AblationResult, error) { return AblationCeilMargin(c.opts(rep), "cg") },
					func() (AblationResult, error) { return AblationSchedulerGenerality(c.opts(rep), "cg") },
				} {
					r, err := abl()
					if err != nil {
						return "", err
					}
					if sb.Len() > 0 {
						sb.WriteString("\n")
					}
					sb.WriteString(r.Render())
				}
				return sb.String(), nil
			}),
		},
		{
			Name:        "cluster",
			Title:       "Cluster — multi-host fleet under VM churn (scaling-policy shoot-out)",
			Desc:        "open-loop web load with VM arrivals/departures; reply-latency quantiles, SLO attainment and provisioned cost per registered scaling policy",
			QuickParams: "2 hosts, 8 s churn",
			FullParams:  "2 and 4 hosts, 16 s churn",
			Run: func(c *Config) (Result, error) {
				rep := &runner.Report{}
				hostCounts := []int{2, 4}
				horizon := 16 * sim.Second
				if c.Quick {
					hostCounts = []int{2}
					horizon = 8 * sim.Second
				}
				syncMode, err := cluster.ParseSyncMode(c.Sync)
				if err != nil {
					return Result{}, fmt.Errorf("cluster: %w", err)
				}
				warm := ClusterWarm{
					Epochs:         c.WarmEpochs,
					Fork:           c.WarmFork,
					CheckpointPath: c.CheckpointPath,
					RestorePath:    c.RestorePath,
				}
				r, err := Cluster(c.opts(rep), c.Telemetry, hostCounts, 4, horizon, 50*sim.Millisecond, c.Policies, syncMode, c.LagEpochs, c.Elastic, warm)
				if err != nil {
					return Result{}, fmt.Errorf("cluster: %w", err)
				}
				res := Result{Name: "cluster", Text: r.Render(), Metrics: r.Metrics()}
				if rep.Jobs > 0 {
					res.Report = rep
				}
				return res, nil
			},
		},
		{
			Name:        "fleetscale",
			Title:       "Fleet scale — bounded-lag executor scaling (hosts × workers)",
			Desc:        "the same fleet run at several worker counts up to a thousand hosts; results must match bit for bit, wall clocks land in the bench JSON as a speedup series",
			QuickParams: "10/100 hosts × 1/2/4/8 workers, 2 s churn",
			FullParams:  "10/100/1000 hosts × 1/2/4/8 workers, 2 s churn",
			Run: func(c *Config) (Result, error) {
				rep := &runner.Report{}
				hostCounts := []int{10, 100, 1000}
				if c.Quick {
					hostCounts = []int{10, 100}
				}
				syncMode, err := cluster.ParseSyncMode(c.Sync)
				if err != nil {
					return Result{}, fmt.Errorf("fleetscale: %w", err)
				}
				r, err := FleetScale(c.opts(rep), hostCounts, []int{1, 2, 4, 8}, 4,
					2*sim.Second, 50*sim.Millisecond, syncMode, c.LagEpochs)
				if err != nil {
					return Result{}, fmt.Errorf("fleetscale: %w", err)
				}
				res := Result{Name: "fleetscale", Text: r.Render(), Metrics: r.Metrics()}
				if rep.Jobs > 0 {
					res.Report = rep
				}
				return res, nil
			},
		},
		{
			Name:        "warmfork",
			Title:       "Warm-fork — simulate the warm prefix once, fork every policy",
			Desc:        "per-policy straight runs vs one shared warm-prefix snapshot forked per policy; results must match bit for bit, wall clocks land in the bench JSON as the amortization series",
			QuickParams: "2 hosts, 20 epochs (16 warm) × all policies",
			FullParams:  "2 hosts, 40 epochs (32 warm) × all policies",
			Run: func(c *Config) (Result, error) {
				rep := &runner.Report{}
				horizon := 20 * sim.Second
				warmEpochs := 32
				if c.Quick {
					horizon = 10 * sim.Second
					warmEpochs = 16
				}
				if c.WarmEpochs > 0 {
					warmEpochs = c.WarmEpochs
				}
				syncMode, err := cluster.ParseSyncMode(c.Sync)
				if err != nil {
					return Result{}, fmt.Errorf("warmfork: %w", err)
				}
				r, err := WarmFork(c.opts(rep), 2, 4, horizon, 50*sim.Millisecond,
					warmEpochs, c.Policies, syncMode, c.LagEpochs)
				if err != nil {
					return Result{}, err
				}
				res := Result{Name: "warmfork", Text: r.Render(), Metrics: r.Metrics()}
				if rep.Jobs > 0 {
					res.Report = rep
				}
				return res, nil
			},
		},
		{
			Name:        "bakeoff",
			Title:       "Bake-off — vertical vs horizontal vs hybrid elasticity",
			Desc:        "vScale vCPU scaling vs live migration + replica autoscaling vs both, forked from one warm snapshot of one service-annotated trace; cost-vs-attainment per arm",
			QuickParams: "4 hosts, 16 s churn (8 warm epochs)",
			FullParams:  "4 hosts, 16 s churn (8 warm epochs)",
			Run: func(c *Config) (Result, error) {
				rep := &runner.Report{}
				// Same size under -quick: the bake-off's verdict needs the
				// full horizon (a shorter trace never reaches the overload
				// that separates the arms).
				horizon := 16 * sim.Second
				warmEpochs := 8
				if c.WarmEpochs > 0 {
					warmEpochs = c.WarmEpochs
				}
				syncMode, err := cluster.ParseSyncMode(c.Sync)
				if err != nil {
					return Result{}, fmt.Errorf("bakeoff: %w", err)
				}
				r, err := Bakeoff(c.opts(rep), c.Telemetry, 4, 4, horizon, 50*sim.Millisecond,
					warmEpochs, syncMode, c.LagEpochs)
				if err != nil {
					return Result{}, err
				}
				res := Result{Name: "bakeoff", Text: r.Render(), Metrics: r.Metrics()}
				if rep.Jobs > 0 {
					res.Report = rep
				}
				return res, nil
			},
		},
		{
			Name:        "extension",
			Title:       "Extension — §7 future work: vScale-aware adaptive OpenMP teams",
			Desc:        "fixed vs active-vCPU-adaptive OpenMP team under vScale",
			QuickParams: "cg, 2 runs",
			FullParams:  "cg, 2 runs",
			Run: wrap("extension", func(c *Config, rep *runner.Report) (string, error) {
				r, err := ExtensionAdaptiveTeam(c.opts(rep), "cg")
				if err != nil {
					return "", err
				}
				return r.Render(), nil
			}),
		},
	}
}

// Names lists the registry selectors in "all" order.
func Names() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.Name)
	}
	return out
}

// Find returns the experiment registered under name.
func Find(name string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}
