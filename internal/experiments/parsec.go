package experiments

import (
	"fmt"

	"vscale/internal/guest"
	"vscale/internal/report"
	"vscale/internal/runner"
	"vscale/internal/scenario"
	"vscale/internal/sim"
	"vscale/internal/trace"
	"vscale/internal/workload"
	"vscale/internal/workload/parsec"
)

// ParsecRun is one (app, mode) measurement.
type ParsecRun struct {
	App      string
	Mode     scenario.Mode
	Exec     sim.Time
	Wait     sim.Time
	IPIRate  float64
	AvgVCPUs float64
}

// ParsecResult holds a PARSEC sweep (Figure 11 for 4 vCPUs, Figure 12
// for 8), with Figure 13 derivable from the baseline runs.
type ParsecResult struct {
	VMVCPUs int
	Apps    []string
	Runs    map[string]map[scenario.Mode]ParsecRun
}

// ParsecSweep runs apps × modes on a VM with the given vCPU count,
// fanning the independent configurations across the runner's worker
// pool. freqmine (the OpenMP member) uses the default 300K spin count.
func ParsecSweep(opts runner.Options, vcpus int, apps []string, modes []scenario.Mode) (ParsecResult, error) {
	if apps == nil {
		apps = parsec.Names()
	}
	if modes == nil {
		modes = scenario.Modes()
	}
	type cell struct {
		app  string
		mode scenario.Mode
	}
	var cells []cell
	for _, app := range apps {
		for _, m := range modes {
			cells = append(cells, cell{app, m})
		}
	}
	runs, err := runner.Run(opts, len(cells), func(ctx runner.Context) (ParsecRun, error) {
		c := cells[ctx.Index]
		return runParsecOnce(c.app, c.mode, vcpus, 1, ctx.Tracer)
	})
	if err != nil {
		return ParsecResult{}, err
	}
	out := ParsecResult{VMVCPUs: vcpus, Apps: apps,
		Runs: make(map[string]map[scenario.Mode]ParsecRun)}
	for i, c := range cells {
		if out.Runs[c.app] == nil {
			out.Runs[c.app] = make(map[scenario.Mode]ParsecRun)
		}
		out.Runs[c.app][c.mode] = runs[i]
	}
	return out, nil
}

func runParsecOnce(app string, mode scenario.Mode, vcpus int, seed uint64, tr *trace.Tracer) (ParsecRun, error) {
	s := scenario.DefaultSetup()
	s.Mode = mode
	s.VMVCPUs = vcpus
	s.Seed = seed
	s.Tracer = tr
	b := scenario.Build(s)
	p, err := parsec.ProfileFor(app)
	if err != nil {
		return ParsecRun{}, err
	}
	res, err := b.RunApp(func(k *guest.Kernel) *workload.App {
		return parsec.Launch(k, p, vcpus, guest.SpinBudgetFromCount(300_000))
	}, 600*sim.Second)
	if err != nil {
		return ParsecRun{}, err
	}
	return ParsecRun{
		App: app, Mode: mode,
		Exec: res.ExecTime, Wait: res.WaitTime,
		IPIRate: res.IPIsPerVCPUSec, AvgVCPUs: res.AvgActiveVCPUs,
	}, nil
}

// Normalized returns exec(app, mode)/exec(app, Baseline).
func (r ParsecResult) Normalized(app string, mode scenario.Mode) float64 {
	base := r.Runs[app][scenario.Baseline].Exec
	if base == 0 {
		return 0
	}
	return float64(r.Runs[app][mode].Exec) / float64(base)
}

// RenderFigure produces the Figure 11/12 table.
func (r ParsecResult) RenderFigure() string {
	fig := "Figure 11"
	if r.VMVCPUs == 8 {
		fig = "Figure 12"
	}
	t := report.NewTable(
		fmt.Sprintf("%s: PARSEC normalized execution time, %d-vCPU VM", fig, r.VMVCPUs),
		"app", "Xen/Linux", "vScale", "Xen/Linux+pvlock", "vScale+pvlock")
	for _, app := range r.Apps {
		t.AddRow(app,
			fmt.Sprintf("%.2f", r.Normalized(app, scenario.Baseline)),
			fmt.Sprintf("%.2f", r.Normalized(app, scenario.VScale)),
			fmt.Sprintf("%.2f", r.Normalized(app, scenario.PVLock)),
			fmt.Sprintf("%.2f", r.Normalized(app, scenario.VScalePVLock)))
	}
	return t.String()
}

// RenderFigure13 produces the per-app IPI-rate table of Figure 13
// (baseline runs).
func (r ParsecResult) RenderFigure13() string {
	t := report.NewTable("Figure 13: vIPIs/sec/vCPU in PARSEC (Xen/Linux)",
		"app", "IPIs/s/vCPU")
	for _, app := range r.Apps {
		t.AddRow(app, fmt.Sprintf("%.1f", r.Runs[app][scenario.Baseline].IPIRate))
	}
	return t.String()
}
