package experiments

import (
	"fmt"

	"vscale/internal/guest"
	"vscale/internal/report"
	"vscale/internal/runner"
	"vscale/internal/scenario"
	"vscale/internal/sim"
	"vscale/internal/workload"
)

// MotivationResult quantifies the three delay phenomena of the paper's
// Figure 1 on the simulated substrate, comparing a dedicated host, the
// consolidated baseline, and vScale:
//
//	(a) CPU time wasted busy-waiting on preempted peers,
//	(b) virtual-IPI delivery latency (blocking synchronisation),
//	(c) I/O-interrupt delivery latency.
type MotivationResult struct {
	// SpinWasteFrac is (a): user-level spin time as a fraction of the
	// VM's consumed CPU, per configuration.
	SpinWasteFrac map[string]float64
	// IPIDelayUs is (b): {p50, p99, max} of IPI delivery latency in µs.
	IPIDelayUs map[string][3]float64
	// IRQDelayUs is (c): {p50, p99, max} of device-interrupt delivery
	// latency in µs.
	IRQDelayUs map[string][3]float64
}

// motivationConfigs names the three hosts compared.
var motivationConfigs = []string{"dedicated", "Xen/Linux", "vScale"}

// Motivation runs one synchronisation+I/O workload under the three
// hosts (as parallel jobs) and extracts the Figure 1 quantities.
func Motivation(opts runner.Options, duration sim.Time) (MotivationResult, error) {
	type row struct {
		spin float64
		ipi  [3]float64
		irq  [3]float64
	}
	rows, err := runner.Run(opts, len(motivationConfigs), func(ctx runner.Context) (row, error) {
		cfgName := motivationConfigs[ctx.Index]
		s := scenario.DefaultSetup()
		switch cfgName {
		case "dedicated":
			s.Mode = scenario.Baseline
			s.NoBackground = true
		case "Xen/Linux":
			s.Mode = scenario.Baseline
		case "vScale":
			s.Mode = scenario.VScale
		}
		s.Tracer = ctx.Tracer
		b := scenario.Build(s)
		k := b.K

		// The probe keeps all four vCPUs busy with a spin-synchronised
		// ring — like a barrier-bound OpenMP team — so that (a) any
		// preemption turns directly into peer spinning, and (b)/(c)
		// wakeup IPIs and device interrupts target vCPUs that are
		// *runnable, not blocked*, which is exactly the delayed-delivery
		// situation of Figure 1. A balanced ring has little intrinsic
		// spin on a dedicated host, so the measured spin is the
		// preemption-induced waste.
		app := workload.NewApp(k, "motivation")
		ring := make([]*guest.SpinVar, 4)
		for i := range ring {
			ring[i] = k.NewSpinVar()
		}
		for th := 0; th < 4; th++ {
			th := th
			pred, own := ring[(th+3)%4], ring[th]
			app.Go(fmt.Sprintf("ring.%d", th), &workload.RandLoop{Forever: true, Body: func(i int) []any {
				acts := []any{workload.RandCompute(900*sim.Microsecond, 1100*sim.Microsecond)}
				if th != 0 {
					acts = append(acts, guest.ActSpinWait{S: pred, Gen: uint64(i + 1)})
				} else if i > 0 {
					acts = append(acts, guest.ActSpinWait{S: pred, Gen: uint64(i)})
				}
				acts = append(acts, guest.ActSpinSet{S: own})
				return acts
			}})
		}
		// Futex ping-pong: the wakeups land on busy vCPUs, so their IPIs
		// pend whenever the hypervisor has the target descheduled.
		pq := k.NewWaitQueue(0)
		app.Go("pong", &workload.RandLoop{Forever: true, Body: func(i int) []any {
			return []any{guest.ActDequeue{Q: pq}, guest.ActCompute{D: 200 * sim.Microsecond}}
		}})
		app.Go("ping", &workload.RandLoop{Forever: true, Body: func(i int) []any {
			return []any{
				guest.ActCompute{D: sim.Millisecond},
				guest.ActEnqueue{Q: pq, Item: i},
			}
		}})
		dev := k.NewDevice("blk", 0, 10*sim.Microsecond)
		app.Go("io", &workload.RandLoop{Forever: true, Body: func(i int) []any {
			return []any{
				guest.ActIO{Dev: dev, Service: 2 * sim.Millisecond},
				guest.ActCompute{D: 200 * sim.Microsecond},
			}
		}})

		if err := b.Eng.RunUntil(duration); err != nil {
			return row{}, err
		}
		b.FinishTrace()

		var out row
		var spin, run sim.Time
		for i := 0; i < k.NCPUs(); i++ {
			spin += k.CPUStatsOf(i).UserSpinTime
		}
		run = b.VM.TotalRunTime
		if run > 0 {
			out.spin = float64(spin) / float64(run)
		}
		out.ipi = [3]float64{
			b.VM.IPIDelay.Quantile(0.5), b.VM.IPIDelay.Quantile(0.99), b.VM.IPIDelay.Max(),
		}
		out.irq = [3]float64{
			b.VM.IRQDelay.Quantile(0.5), b.VM.IRQDelay.Quantile(0.99), b.VM.IRQDelay.Max(),
		}
		return out, nil
	})
	if err != nil {
		return MotivationResult{}, err
	}
	res := MotivationResult{
		SpinWasteFrac: make(map[string]float64),
		IPIDelayUs:    make(map[string][3]float64),
		IRQDelayUs:    make(map[string][3]float64),
	}
	for i, cfgName := range motivationConfigs {
		res.SpinWasteFrac[cfgName] = rows[i].spin
		res.IPIDelayUs[cfgName] = rows[i].ipi
		res.IRQDelayUs[cfgName] = rows[i].irq
	}
	return res, nil
}

// Render produces the Figure 1 quantification table.
func (r MotivationResult) Render() string {
	t := report.NewTable("Figure 1 (quantified): the three scheduling-delay phenomena",
		"host", "(a) spin waste", "(b) vIPI delay p50/p99/max (µs)", "(c) I/O delay p50/p99/max (µs)")
	for _, c := range motivationConfigs {
		ipi := r.IPIDelayUs[c]
		irq := r.IRQDelayUs[c]
		t.AddRow(c,
			fmt.Sprintf("%.1f%%", r.SpinWasteFrac[c]*100),
			fmt.Sprintf("%.0f / %.0f / %.0f", ipi[0], ipi[1], ipi[2]),
			fmt.Sprintf("%.0f / %.0f / %.0f", irq[0], irq[1], irq[2]))
	}
	return t.String()
}
