package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"vscale/internal/cluster"
	"vscale/internal/report"
	"vscale/internal/runner"
	"vscale/internal/sim"
	"vscale/internal/telemetry"
	"vscale/internal/trace"
)

// ClusterPolicies is the reporting order of the cluster experiment:
// the no-scaling baseline first, then the dom0 hotplug path, then
// vScale.
var ClusterPolicies = []cluster.Policy{cluster.PolicyStatic, cluster.PolicyHotplug, cluster.PolicyVScale}

// ClusterResult is the cluster experiment's output: one fleet run per
// (host count, policy), every policy of a host count driven by the
// same churn trace.
type ClusterResult struct {
	HostCounts   []int
	PCPUsPerHost int
	Horizon      sim.Time
	SLO          sim.Time
	// Fleets maps host count → one FleetResult per ClusterPolicies entry.
	Fleets map[int][]cluster.FleetResult
}

// Cluster runs the multi-host churn experiment: for each host count, a
// churn trace is generated once (seeded from opts.BaseSeed and the
// host count) and replayed under every scaling policy, so the policies
// compete on identical VM lifecycles and the tail-latency differences
// are attributable to scaling alone. Fleets run one after another;
// each fleet fans its hosts across opts.Workers.
//
// sink (which may be nil) receives live per-epoch telemetry: each
// fleet gets its own collector labelled policy=<p>,hosts=<n>, appending
// JSONL records in fleet order from the control plane's goroutine, so
// the stream is byte-identical for any worker count.
func Cluster(opts runner.Options, sink *telemetry.Sink, hostCounts []int, pcpus int, horizon, slo sim.Time) (ClusterResult, error) {
	if len(hostCounts) == 0 {
		return ClusterResult{}, fmt.Errorf("cluster: no host counts")
	}
	out := ClusterResult{
		HostCounts:   hostCounts,
		PCPUsPerHost: pcpus,
		Horizon:      horizon,
		SLO:          slo,
		Fleets:       map[int][]cluster.FleetResult{},
	}
	for _, hc := range hostCounts {
		// Churn scaled to the fleet: more hosts host more VMs. Rates are
		// chosen so the fleet runs hot enough that scaling decisions move
		// the latency tail.
		tcfg := cluster.DefaultTraceConfig(horizon)
		tcfg.InitialVMs = 2 * hc
		tcfg.ArrivalEvery = horizon / sim.Time(4*hc)
		tcfg.RateChoices = []float64{1000, 3000, 6000}
		traceSeed := runner.DeriveSeed(opts.BaseSeed, hc)
		events := cluster.GenTrace(tcfg, traceSeed)

		for _, policy := range ClusterPolicies {
			col := telemetry.NewCollector(sink, false,
				"policy", policy.String(), "hosts", strconv.Itoa(hc))
			fcfg := cluster.FleetConfig{
				Hosts:        hc,
				PCPUsPerHost: pcpus,
				Policy:       policy,
				Seed:         traceSeed,
				Horizon:      horizon,
				SLO:          slo,
				Workers:      opts.Workers,
				Report:       opts.Report,
				Telemetry:    col,
			}
			if opts.Trace {
				fcfg.Tracers = make([]*trace.Tracer, hc)
				for i := range fcfg.Tracers {
					fcfg.Tracers[i] = trace.New(trace.Config{RingCapacity: opts.TraceCapacity})
				}
			}
			res, err := cluster.RunFleet(fcfg, events)
			if err != nil {
				return out, fmt.Errorf("cluster: %d hosts, %v: %w", hc, policy, err)
			}
			if err := col.Err(); err != nil {
				return out, fmt.Errorf("cluster: %d hosts, %v: %w", hc, policy, err)
			}
			out.Fleets[hc] = append(out.Fleets[hc], res)
			if opts.Trace && opts.Report != nil {
				// Pre-merge each fleet's host timelines under
				// policy-and-host labels, and hand the combined tracer to
				// the report like any other run's.
				labels := make([]string, hc)
				for i := range labels {
					labels[i] = fmt.Sprintf("%dh-%v-host%d", hc, policy, i)
				}
				opts.Report.Tracers = append(opts.Report.Tracers,
					trace.MergeLabeled(labels, fcfg.Tracers...))
			}
		}
	}
	return out, nil
}

// Render produces one table per host count plus the central-monitoring
// footnote.
func (r ClusterResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d pCPUs/host, %v churn horizon, SLO: reply within %v\n",
		r.PCPUsPerHost, r.Horizon, r.SLO)
	sb.WriteString("p50/p95/p99 are reply latencies in ms; SLO% counts requests answered\n")
	sb.WriteString("within the SLO over all offered requests (in-flight and dropped count\n")
	sb.WriteString("as misses); reconfigs are per-VM scaling actions.\n")
	for _, hc := range r.HostCounts {
		fleets := r.Fleets[hc]
		tbl := report.NewTable(fmt.Sprintf("Cluster: %d host(s)", hc),
			"policy", "VMs", "offered", "replies", "p50", "p95", "p99", "SLO%", "errors", "reconfigs", "util%")
		for _, f := range fleets {
			tbl.AddRow(
				f.Policy.String(),
				fmt.Sprintf("%d", f.Placed),
				fmt.Sprintf("%d", f.Load.Offered),
				fmt.Sprintf("%d", f.Load.Replies),
				fmt.Sprintf("%.2f", f.Hist.Quantile(0.5)),
				fmt.Sprintf("%.2f", f.Hist.Quantile(0.95)),
				fmt.Sprintf("%.2f", f.Hist.Quantile(0.99)),
				fmt.Sprintf("%.1f", 100*f.Attainment),
				fmt.Sprintf("%d", f.Load.Errors),
				fmt.Sprintf("%d", f.Reconfigs),
				fmt.Sprintf("%.1f", 100*f.AvgHostUtil),
			)
		}
		sb.WriteString("\n")
		sb.WriteString(tbl.String())
		if len(fleets) > 0 {
			// The same fleet shape under every policy: quote the central
			// sweep once per host count.
			fmt.Fprintf(&sb, "central dom0 monitoring pass over this fleet: %v per period (Figure 4 model)\n",
				fleets[len(fleets)-1].CentralSweep)
		}
	}
	return sb.String()
}
