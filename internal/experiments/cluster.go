package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"vscale/internal/cluster"
	"vscale/internal/report"
	"vscale/internal/runner"
	"vscale/internal/sim"
	"vscale/internal/telemetry"
	"vscale/internal/trace"
)

// ClusterResult is the cluster experiment's output: one fleet run per
// (host count, policy), every policy of a host count driven by the
// same churn trace.
type ClusterResult struct {
	HostCounts   []int
	PCPUsPerHost int
	Horizon      sim.Time
	SLO          sim.Time
	// Policies is the reporting order (the registry selection the runs
	// were made with).
	Policies []string
	// Fleets maps host count → one FleetResult per Policies entry.
	Fleets map[int][]cluster.FleetResult
}

// ClusterWarm configures the cluster experiment's warm-up and
// checkpoint behaviour (the CLI's -warm-epochs/-warmfork/-checkpoint/
// -restore flags). The zero value means no warm prefix and no files.
type ClusterWarm struct {
	// Epochs gives every fleet run a policy-neutral warm prefix of this
	// many epochs (see cluster.FleetConfig.WarmEpochs).
	Epochs int
	// Fork simulates the warm prefix once per host count and forks
	// every policy from the snapshot instead of re-simulating it per
	// policy. Results are bit-identical either way; only wall clock
	// changes. Requires Epochs > 0.
	Fork bool
	// CheckpointPath persists the warm-prefix snapshot
	// (vscale-checkpoint/v1) to this file. Requires Epochs > 0 and a
	// single host count.
	CheckpointPath string
	// RestorePath loads a previously written snapshot instead of
	// simulating the warm prefix, and forks every policy from it. The
	// snapshot must match the run's config and trace (the digest and
	// config are validated). Implies Fork; requires a single host count.
	RestorePath string
}

// validate rejects flag combinations the run cannot honour.
func (w ClusterWarm) validate(hostCounts []int, tracing bool) error {
	if w.Fork && w.Epochs <= 0 {
		return fmt.Errorf("cluster: -warmfork requires -warm-epochs > 0")
	}
	if w.CheckpointPath != "" && w.Epochs <= 0 {
		return fmt.Errorf("cluster: -checkpoint requires -warm-epochs > 0")
	}
	if (w.CheckpointPath != "" || w.RestorePath != "") && len(hostCounts) != 1 {
		return fmt.Errorf("cluster: -checkpoint/-restore need a single host count (got %d)", len(hostCounts))
	}
	if (w.Fork || w.RestorePath != "" || w.CheckpointPath != "") && tracing {
		return fmt.Errorf("cluster: tracing is not checkpointable; drop -trace/-schedstats")
	}
	return nil
}

// Cluster runs the multi-host churn experiment: for each host count, a
// churn trace is generated once (seeded from opts.BaseSeed and the
// host count) and replayed under every selected scaling policy, so the
// policies compete on identical VM lifecycles and the tail-latency and
// cost differences are attributable to scaling alone. policies names
// registry entries (cluster.PolicyNames order when empty). Fleets run
// one after another; each fleet fans its hosts across opts.Workers.
//
// sink (which may be nil) receives live per-epoch telemetry: each
// fleet gets its own collector labelled policy=<p>,hosts=<n>, appending
// JSONL records in fleet order from the control plane's goroutine, so
// the stream is byte-identical for any worker count.
//
// warm configures the policy-neutral warm prefix and the
// checkpoint/restore handoff; see ClusterWarm.
//
// elastic selects the fleet elasticity mode (cluster.ElasticityFor):
// with migrations or replica scaling on, the churn traces gain service
// groupings and dirty-page hints; the default "" keeps the historical
// traces and stdout byte-identical.
func Cluster(opts runner.Options, sink *telemetry.Sink, hostCounts []int, pcpus int, horizon, slo sim.Time, policies []string, syncMode cluster.SyncMode, lag int, elastic string, warm ClusterWarm) (ClusterResult, error) {
	if len(hostCounts) == 0 {
		return ClusterResult{}, fmt.Errorf("cluster: no host counts")
	}
	migCfg, rsCfg, err := cluster.ElasticityFor(elastic)
	if err != nil {
		return ClusterResult{}, err
	}
	if err := warm.validate(hostCounts, opts.Trace); err != nil {
		return ClusterResult{}, err
	}
	if len(policies) == 0 {
		policies = cluster.PolicyNames()
	}
	out := ClusterResult{
		HostCounts:   hostCounts,
		PCPUsPerHost: pcpus,
		Horizon:      horizon,
		SLO:          slo,
		Policies:     policies,
		Fleets:       map[int][]cluster.FleetResult{},
	}
	for _, hc := range hostCounts {
		// Churn scaled to the fleet: more hosts host more VMs. Rates are
		// chosen so the fleet runs hot enough that scaling decisions move
		// the latency tail.
		tcfg := cluster.DefaultTraceConfig(horizon)
		tcfg.InitialVMs = 2 * hc
		tcfg.ArrivalEvery = horizon / sim.Time(4*hc)
		tcfg.RateChoices = []float64{1000, 3000, 6000}
		if migCfg != nil || rsCfg != nil {
			tcfg.Services = []string{"web", "api", "db", "cache"}
			tcfg.DirtyBpsChoices = []float64{50e6, 200e6, 800e6}
		}
		traceSeed := runner.DeriveSeed(opts.BaseSeed, hc)
		events := cluster.GenTrace(tcfg, traceSeed)

		base := cluster.FleetConfig{
			Hosts:        hc,
			PCPUsPerHost: pcpus,
			Seed:         traceSeed,
			Horizon:      horizon,
			SLO:          slo,
			Workers:      opts.Workers,
			Sync:         syncMode,
			LagEpochs:    lag,
			WarmEpochs:   warm.Epochs,
			Report:       opts.Report,
			Migration:    migCfg,
			ReplicaSet:   rsCfg,
		}

		// The warm-fork handoff: one snapshot per host count — loaded
		// from disk, or simulated once — optionally persisted, then
		// forked into every policy's measured window.
		fork := warm.Fork || warm.RestorePath != ""
		var cp *cluster.FleetCheckpoint
		var err error
		switch {
		case warm.RestorePath != "":
			if cp, err = cluster.LoadCheckpoint(warm.RestorePath); err != nil {
				return out, fmt.Errorf("cluster: %d hosts: %w", hc, err)
			}
		case fork || warm.CheckpointPath != "":
			if cp, err = cluster.CaptureWarmPrefix(base, events); err != nil {
				return out, fmt.Errorf("cluster: %d hosts: %w", hc, err)
			}
		}
		if warm.CheckpointPath != "" && warm.RestorePath == "" {
			if err := cluster.SaveCheckpoint(warm.CheckpointPath, cp); err != nil {
				return out, fmt.Errorf("cluster: %d hosts: %w", hc, err)
			}
		}

		for _, policy := range policies {
			col := telemetry.NewCollector(sink, false,
				"policy", policy, "hosts", strconv.Itoa(hc))
			fcfg := base
			fcfg.Policy = policy
			fcfg.Telemetry = col
			if opts.Trace {
				fcfg.Tracers = make([]*trace.Tracer, hc)
				for i := range fcfg.Tracers {
					fcfg.Tracers[i] = trace.New(trace.Config{RingCapacity: opts.TraceCapacity})
				}
			}
			var res cluster.FleetResult
			if fork {
				res, err = cluster.RunFleetFork(fcfg, events, cp)
			} else {
				res, err = cluster.RunFleet(fcfg, events)
			}
			if err != nil {
				return out, fmt.Errorf("cluster: %d hosts, %s: %w", hc, policy, err)
			}
			if err := col.Err(); err != nil {
				return out, fmt.Errorf("cluster: %d hosts, %s: %w", hc, policy, err)
			}
			out.Fleets[hc] = append(out.Fleets[hc], res)
			if opts.Trace && opts.Report != nil {
				// Pre-merge each fleet's host timelines under
				// policy-and-host labels, and hand the combined tracer to
				// the report like any other run's.
				labels := make([]string, hc)
				for i := range labels {
					labels[i] = fmt.Sprintf("%dh-%s-host%d", hc, policy, i)
				}
				opts.Report.Tracers = append(opts.Report.Tracers,
					trace.MergeLabeled(labels, fcfg.Tracers...))
			}
		}
	}
	return out, nil
}

// paretoEfficient marks, per fleet, whether no other fleet of the same
// set both costs no more and attains no less (with one strict): the
// cost-vs-attainment frontier.
func paretoEfficient(fleets []cluster.FleetResult) []bool {
	eff := make([]bool, len(fleets))
	for i, f := range fleets {
		eff[i] = true
		for j, g := range fleets {
			if j == i {
				continue
			}
			if g.CostVCPUSeconds <= f.CostVCPUSeconds && g.Attainment >= f.Attainment &&
				(g.CostVCPUSeconds < f.CostVCPUSeconds || g.Attainment > f.Attainment) {
				eff[i] = false
				break
			}
		}
	}
	return eff
}

// Metrics flattens the per-fleet cost and attainment into benchmark
// keys ("<hosts>h/<policy>/cost_vcpu_seconds", ".../attainment") for
// BENCH_cluster.json.
func (r ClusterResult) Metrics() map[string]float64 {
	m := map[string]float64{}
	for _, hc := range r.HostCounts {
		for _, f := range r.Fleets[hc] {
			prefix := fmt.Sprintf("%dh/%s/", hc, f.Policy)
			m[prefix+"cost_vcpu_seconds"] = f.CostVCPUSeconds
			m[prefix+"attainment"] = f.Attainment
		}
	}
	return m
}

// Render produces one table per host count, the cost-vs-attainment
// frontier per host count, and the central-monitoring footnote.
func (r ClusterResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d pCPUs/host, %v churn horizon, SLO: reply within %v\n",
		r.PCPUsPerHost, r.Horizon, r.SLO)
	sb.WriteString("p50/p95/p99 are reply latencies in ms; SLO% counts requests answered\n")
	sb.WriteString("within the SLO over all offered requests — requests still in flight at\n")
	sb.WriteString("the end of the run count as misses, not exclusions (they are reported\n")
	sb.WriteString("in the frontier's in-flight column); reconfigs are per-VM scaling\n")
	sb.WriteString("actions; cost is provisioned vCPU-seconds (active vCPUs integrated\n")
	sb.WriteString("over each VM's lifetime within the horizon).\n")
	for _, hc := range r.HostCounts {
		fleets := r.Fleets[hc]
		tbl := report.NewTable(fmt.Sprintf("Cluster: %d host(s)", hc),
			"policy", "VMs", "offered", "replies", "p50", "p95", "p99", "SLO%", "errors", "reconfigs", "util%", "cost")
		for _, f := range fleets {
			tbl.AddRow(
				f.Policy,
				fmt.Sprintf("%d", f.Placed),
				fmt.Sprintf("%d", f.Load.Offered),
				fmt.Sprintf("%d", f.Load.Replies),
				fmt.Sprintf("%.2f", f.Hist.Quantile(0.5)),
				fmt.Sprintf("%.2f", f.Hist.Quantile(0.95)),
				fmt.Sprintf("%.2f", f.Hist.Quantile(0.99)),
				fmt.Sprintf("%.1f", 100*f.Attainment),
				fmt.Sprintf("%d", f.Load.Errors),
				fmt.Sprintf("%d", f.Reconfigs),
				fmt.Sprintf("%.1f", 100*f.AvgHostUtil),
				fmt.Sprintf("%.1f", f.CostVCPUSeconds),
			)
		}
		sb.WriteString("\n")
		sb.WriteString(tbl.String())

		// The frontier: which policies buy their attainment efficiently.
		eff := paretoEfficient(fleets)
		ftbl := report.NewTable(fmt.Sprintf("Cost-vs-attainment frontier: %d host(s)", hc),
			"policy", "cost vCPU·s", "SLO%", "in-flight", "frontier")
		for i, f := range fleets {
			mark := ""
			if eff[i] {
				mark = "*"
			}
			ftbl.AddRow(
				f.Policy,
				fmt.Sprintf("%.1f", f.CostVCPUSeconds),
				fmt.Sprintf("%.1f", 100*f.Attainment),
				fmt.Sprintf("%d", f.Load.InFlight),
				mark,
			)
		}
		sb.WriteString("\n")
		sb.WriteString(ftbl.String())
		sb.WriteString("* = Pareto-efficient: no policy costs less and attains at least as much.\n")
		if len(fleets) > 0 {
			// The same fleet shape under every policy: quote the central
			// sweep once per host count.
			fmt.Fprintf(&sb, "central dom0 monitoring pass over this fleet: %v per period (Figure 4 model)\n",
				fleets[len(fleets)-1].CentralSweep)
		}
	}
	return sb.String()
}
