package experiments

import (
	"testing"

	"vscale/internal/scenario"
)

// Regression test: a pv-parked vCPU woken by an unrelated event (the
// vScale freeze IPI, a timer, a device interrupt) must re-park until the
// lock holder kicks it. Before the fix, the spurious wakeup ran the
// stashed lock continuation without the grant and released a kernel lock
// the CPU never held, crashing the vScale+pvlock PARSEC sweep.
func TestPVParkSurvivesFreezeIPIs(t *testing.T) {
	for _, app := range []string{"canneal", "facesim", "dedup"} {
		r, err := runParsecOnce(app, scenario.VScalePVLock, 4, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if r.Exec == 0 {
			t.Fatalf("%s did not complete under vScale+pvlock", app)
		}
	}
}
