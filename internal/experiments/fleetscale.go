package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"time"

	"vscale/internal/cluster"
	"vscale/internal/report"
	"vscale/internal/runner"
	"vscale/internal/sim"
)

// FleetScaleResult is the executor-scaling experiment's output: for
// each host count, the same fleet run at every worker count, with the
// simulation result asserted identical across them. Wall clocks and
// speedups go into Metrics (the bench JSON) only — never into the
// rendered text, which must be byte-identical run to run.
type FleetScaleResult struct {
	HostCounts   []int
	WorkerSet    []int
	PCPUsPerHost int
	Horizon      sim.Time
	SLO          sim.Time
	Sync         cluster.SyncMode
	// Fleets maps host count → the canonical FleetResult (identical at
	// every worker count; FleetScale fails if not).
	Fleets map[int]cluster.FleetResult
	// Wall maps host count → wall seconds, index-aligned with WorkerSet.
	Wall map[int][]float64
}

// sameFleetResult compares two fleet results exactly (the histogram via
// its rendered moments and sum, since it holds pointers).
func sameFleetResult(a, b cluster.FleetResult) bool {
	if a.Hist.String() != b.Hist.String() || a.Hist.Sum() != b.Hist.Sum() {
		return false
	}
	a.Hist, b.Hist = nil, nil
	return reflect.DeepEqual(a, b)
}

// FleetScale measures how the fleet executor scales: for every host
// count it generates one light churn trace (the load is deliberately
// thin — the subject is executor overhead, not policy quality) and runs
// the same fleet once per worker count, timing each run and requiring
// every result to match the workers=1 run exactly. Placement recording
// is off: at a thousand hosts the per-VM log is dead weight.
func FleetScale(opts runner.Options, hostCounts, workerSet []int, pcpus int, horizon, slo sim.Time, syncMode cluster.SyncMode, lag int) (FleetScaleResult, error) {
	if len(hostCounts) == 0 || len(workerSet) == 0 {
		return FleetScaleResult{}, fmt.Errorf("fleetscale: need host counts and worker counts")
	}
	out := FleetScaleResult{
		HostCounts:   hostCounts,
		WorkerSet:    workerSet,
		PCPUsPerHost: pcpus,
		Horizon:      horizon,
		SLO:          slo,
		Sync:         syncMode,
		Fleets:       map[int]cluster.FleetResult{},
		Wall:         map[int][]float64{},
	}
	recordOff := false
	for _, hc := range hostCounts {
		// One VM per host initially plus steady arrivals, at request
		// rates low enough that a 1000-host fleet stays tractable.
		tcfg := cluster.DefaultTraceConfig(horizon)
		tcfg.InitialVMs = hc
		tcfg.ArrivalEvery = horizon / sim.Time(2*hc)
		tcfg.RateChoices = []float64{50, 100, 200}
		traceSeed := runner.DeriveSeed(opts.BaseSeed, hc)
		events := cluster.GenTrace(tcfg, traceSeed)

		for wi, w := range workerSet {
			fcfg := cluster.FleetConfig{
				Hosts:            hc,
				PCPUsPerHost:     pcpus,
				Policy:           "vscale",
				Seed:             traceSeed,
				Horizon:          horizon,
				SLO:              slo,
				Workers:          w,
				Sync:             syncMode,
				LagEpochs:        lag,
				RecordPlacements: &recordOff,
				Report:           opts.Report,
			}
			start := time.Now()
			res, err := cluster.RunFleet(fcfg, events)
			if err != nil {
				return out, fmt.Errorf("fleetscale: %d hosts, %d workers: %w", hc, w, err)
			}
			out.Wall[hc] = append(out.Wall[hc], time.Since(start).Seconds())
			if wi == 0 {
				out.Fleets[hc] = res
			} else if !sameFleetResult(out.Fleets[hc], res) {
				return out, fmt.Errorf("fleetscale: %d hosts: workers=%d result differs from workers=%d",
					hc, w, workerSet[0])
			}
		}
	}
	return out, nil
}

// Metrics flattens the wall-clock series and speedups into bench keys:
// "<hosts>h/w<workers>/wall_seconds" and "<hosts>h/w<workers>/speedup"
// (relative to the first worker count of the sweep).
func (r FleetScaleResult) Metrics() map[string]float64 {
	m := map[string]float64{}
	for _, hc := range r.HostCounts {
		walls := r.Wall[hc]
		for i, w := range r.WorkerSet {
			prefix := fmt.Sprintf("%dh/w%d/", hc, w)
			m[prefix+"wall_seconds"] = walls[i]
			if walls[i] > 0 {
				m[prefix+"speedup"] = walls[0] / walls[i]
			}
		}
	}
	return m
}

// Render produces the deterministic summary: one row per host count
// (identical across worker counts by construction), plus the identity
// statement. Wall clocks are deliberately absent — see Metrics.
func (r FleetScaleResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d pCPUs/host, %v churn horizon, SLO: reply within %v, sync=%s\n",
		r.PCPUsPerHost, r.Horizon, r.SLO, r.Sync)
	var ws []string
	for _, w := range r.WorkerSet {
		ws = append(ws, fmt.Sprintf("%d", w))
	}
	fmt.Fprintf(&sb, "each fleet ran once per worker count {%s}; every run's result was\n", strings.Join(ws, ","))
	sb.WriteString("required to match the first bit for bit (wall clocks and speedups are\n")
	sb.WriteString("reported via the bench JSON, never here).\n\n")
	tbl := report.NewTable("Fleet scale: identical results at every worker count",
		"hosts", "VMs", "offered", "replies", "SLO%", "reconfigs", "util%", "cost")
	for _, hc := range r.HostCounts {
		f := r.Fleets[hc]
		tbl.AddRow(
			fmt.Sprintf("%d", hc),
			fmt.Sprintf("%d", f.Placed),
			fmt.Sprintf("%d", f.Load.Offered),
			fmt.Sprintf("%d", f.Load.Replies),
			fmt.Sprintf("%.1f", 100*f.Attainment),
			fmt.Sprintf("%d", f.Reconfigs),
			fmt.Sprintf("%.1f", 100*f.AvgHostUtil),
			fmt.Sprintf("%.1f", f.CostVCPUSeconds),
		)
	}
	sb.WriteString(tbl.String())
	return sb.String()
}
