package experiments

import (
	"fmt"

	"vscale/internal/costmodel"
	"vscale/internal/guest"
	"vscale/internal/report"
	"vscale/internal/scenario"
	"vscale/internal/sim"
	"vscale/internal/workload"
	"vscale/internal/workload/npb"
	"vscale/internal/xen"
)

// AblationResult compares execution times of one NPB app across design
// variants of vScale.
type AblationResult struct {
	Name     string
	App      string
	Variants []string
	Exec     []sim.Time
	Wait     []sim.Time
}

// Render produces the ablation table.
func (r AblationResult) Render() string {
	t := report.NewTable(fmt.Sprintf("Ablation %s (%s)", r.Name, r.App),
		"variant", "exec (s)", "VM wait (s)")
	for i, v := range r.Variants {
		t.AddRow(v, fmt.Sprintf("%.2f", r.Exec[i].Seconds()), fmt.Sprintf("%.2f", r.Wait[i].Seconds()))
	}
	return t.String()
}

func runVariant(app string, spin uint64, mod func(*scenario.Setup)) (sim.Time, sim.Time) {
	s := scenario.DefaultSetup()
	s.Mode = scenario.VScale
	if mod != nil {
		mod(&s)
	}
	b := scenario.Build(s)
	p, err := npb.ProfileFor(app)
	if err != nil {
		panic(err)
	}
	res := b.RunApp(func(k *guest.Kernel) *workload.App {
		return npb.Launch(k, p, s.VMVCPUs, guest.SpinBudgetFromCount(spin))
	}, 600*sim.Second)
	return res.ExecTime, res.WaitTime
}

// AblationWeightOnly (A1): vScale's consumption-aware extendability vs
// the VCPU-Bal weight-only sizing. The comparison runs with a light
// background: weight-only sizing pins the VM to its weight-based fair
// share even when the machine is mostly idle, forfeiting the slack that
// work-conserving schedulers would hand out.
func AblationWeightOnly(app string) AblationResult {
	r := AblationResult{Name: "A1: consumption-aware vs weight-only sizing (light background)", App: app,
		Variants: []string{"vScale (consumption-aware)", "VCPU-Bal (weight-only)", "Xen/Linux (fixed vCPUs)"}}
	light := func(s *scenario.Setup) { s.LightBackground = true }
	e, w := runVariant(app, 30_000_000_000, light)
	r.Exec, r.Wait = append(r.Exec, e), append(r.Wait, w)
	e, w = runVariant(app, 30_000_000_000, func(s *scenario.Setup) { light(s); s.WeightOnly = true })
	r.Exec, r.Wait = append(r.Exec, e), append(r.Wait, w)
	e, w = runVariant(app, 30_000_000_000, func(s *scenario.Setup) { light(s); s.Mode = scenario.Baseline })
	r.Exec, r.Wait = append(r.Exec, e), append(r.Wait, w)
	return r
}

// AblationHotplugPath (A2): the vScale balancer (µs) vs dom0-driven CPU
// hotplug (ms to 100+ ms) as the reconfiguration mechanism. The
// comparison uses fast-flickering background VMs (pictures every few
// hundred ms): a reconfiguration knob slower than the load's time
// constant cannot track it, which is exactly why VCPU-Bal could only
// simulate dynamic vCPUs.
func AblationHotplugPath(app string) AblationResult {
	r := AblationResult{Name: "A2: vScale balancer vs CPU-hotplug reconfiguration (fast-changing load)", App: app,
		Variants: []string{"vScale balancer (µs)", "dom0 hotplug path (ms-100ms)"}}
	flicker := &workload.Slideshow{
		BurstMin: 100 * sim.Millisecond, BurstMax: 250 * sim.Millisecond,
		IdleMin: 80 * sim.Millisecond, IdleMax: 200 * sim.Millisecond,
		Threads: 2,
	}
	fast := func(s *scenario.Setup) { s.Background = flicker }
	e, w := runVariant(app, 30_000_000_000, fast)
	r.Exec, r.Wait = append(r.Exec, e), append(r.Wait, w)
	model, _ := costmodel.HotplugModelFor("v-2.6.32")
	e, w = runVariant(app, 30_000_000_000, func(s *scenario.Setup) {
		fast(s)
		s.ReconfigDelay = func(rand *sim.Rand) sim.Time {
			return costmodel.XenStoreWrite + model.DrawDown(rand)
		}
	})
	r.Exec, r.Wait = append(r.Exec, e), append(r.Wait, w)
	return r
}

// AblationDaemonPeriod (A3): sensitivity to the daemon poll period.
func AblationDaemonPeriod(app string, periods []sim.Time) AblationResult {
	if periods == nil {
		periods = []sim.Time{sim.Millisecond, 10 * sim.Millisecond, 100 * sim.Millisecond, sim.Second}
	}
	r := AblationResult{Name: "A3: daemon period sensitivity", App: app}
	for _, p := range periods {
		p := p
		r.Variants = append(r.Variants, fmt.Sprintf("period %v", p))
		e, w := runVariant(app, 30_000_000_000, func(s *scenario.Setup) { s.DaemonPeriod = p })
		r.Exec, r.Wait = append(r.Exec, e), append(r.Wait, w)
	}
	return r
}

// AblationPerVMWeight (A4): the paper's per-VM weight patch vs unpatched
// Xen's per-vCPU weights, which make a VM forfeit share when freezing.
func AblationPerVMWeight(app string) AblationResult {
	r := AblationResult{Name: "A4: per-VM weight (vScale patch) vs per-vCPU weight (unpatched)", App: app,
		Variants: []string{"per-VM weight", "per-vCPU weight"}}
	e, w := runVariant(app, 30_000_000_000, nil)
	r.Exec, r.Wait = append(r.Exec, e), append(r.Wait, w)
	e, w = runVariant(app, 30_000_000_000, func(s *scenario.Setup) { s.PerVCPUWeight = true })
	r.Exec, r.Wait = append(r.Exec, e), append(r.Wait, w)
	return r
}

// AblationSchedulerGenerality (A6): the paper claims Algorithm 1 "can be
// easily integrated into various proportional-share schedulers, such as
// the virtual-runtime based ones". This ablation runs the identical
// vScale stack on the credit scheduler and on the VRT scheduler; the
// speedup over each scheduler's own baseline should hold for both.
func AblationSchedulerGenerality(app string) AblationResult {
	r := AblationResult{Name: "A6: vScale on credit vs virtual-runtime scheduling", App: app,
		Variants: []string{
			"credit: Xen/Linux", "credit: vScale",
			"vrt: Xen/Linux", "vrt: vScale",
		}}
	for _, pol := range []xen.SchedPolicy{xen.PolicyCredit, xen.PolicyVRT} {
		for _, mode := range []scenario.Mode{scenario.Baseline, scenario.VScale} {
			pol, mode := pol, mode
			e, w := runVariant(app, 30_000_000_000, func(s *scenario.Setup) {
				s.Policy = pol
				s.Mode = mode
			})
			r.Exec, r.Wait = append(r.Exec, e), append(r.Wait, w)
		}
	}
	return r
}

// AblationCeilMargin (A5): the governor's fragmentation margin vs the
// paper's pure ceiling.
func AblationCeilMargin(app string) AblationResult {
	r := AblationResult{Name: "A5: sizing ceiling: fragmentation margin vs pure ceil", App: app,
		Variants: []string{"margin 0.55 (default)", "pure ceil (Algorithm 1)"}}
	e, w := runVariant(app, 30_000_000_000, nil)
	r.Exec, r.Wait = append(r.Exec, e), append(r.Wait, w)
	e, w = runVariant(app, 30_000_000_000, func(s *scenario.Setup) { s.PureCeil = true })
	r.Exec, r.Wait = append(r.Exec, e), append(r.Wait, w)
	return r
}
