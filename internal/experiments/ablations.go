package experiments

import (
	"fmt"

	"vscale/internal/costmodel"
	"vscale/internal/guest"
	"vscale/internal/report"
	"vscale/internal/runner"
	"vscale/internal/scenario"
	"vscale/internal/sim"
	"vscale/internal/trace"
	"vscale/internal/workload"
	"vscale/internal/workload/npb"
	"vscale/internal/xen"
)

// AblationResult compares execution times of one NPB app across design
// variants of vScale.
type AblationResult struct {
	Name     string
	App      string
	Variants []string
	Exec     []sim.Time
	Wait     []sim.Time
}

// Render produces the ablation table.
func (r AblationResult) Render() string {
	t := report.NewTable(fmt.Sprintf("Ablation %s (%s)", r.Name, r.App),
		"variant", "exec (s)", "VM wait (s)")
	for i, v := range r.Variants {
		t.AddRow(v, fmt.Sprintf("%.2f", r.Exec[i].Seconds()), fmt.Sprintf("%.2f", r.Wait[i].Seconds()))
	}
	return t.String()
}

func runVariant(app string, spin uint64, mod func(*scenario.Setup), tr *trace.Tracer) (sim.Time, sim.Time, error) {
	s := scenario.DefaultSetup()
	s.Mode = scenario.VScale
	if mod != nil {
		mod(&s)
	}
	s.Tracer = tr
	b := scenario.Build(s)
	p, err := npb.ProfileFor(app)
	if err != nil {
		return 0, 0, err
	}
	res, err := b.RunApp(func(k *guest.Kernel) *workload.App {
		return npb.Launch(k, p, s.VMVCPUs, guest.SpinBudgetFromCount(spin))
	}, 600*sim.Second)
	if err != nil {
		return 0, 0, err
	}
	return res.ExecTime, res.WaitTime, nil
}

// variant is one row of an ablation table.
type variant struct {
	name string
	mod  func(*scenario.Setup)
}

// ablate runs the variants of one ablation as parallel jobs, collecting
// the rows in variant order.
func ablate(opts runner.Options, name, app string, spin uint64, vars []variant) (AblationResult, error) {
	r := AblationResult{Name: name, App: app}
	type row struct{ exec, wait sim.Time }
	rows, err := runner.Run(opts, len(vars), func(ctx runner.Context) (row, error) {
		e, w, err := runVariant(app, spin, vars[ctx.Index].mod, ctx.Tracer)
		return row{e, w}, err
	})
	if err != nil {
		return AblationResult{}, err
	}
	for i, v := range vars {
		r.Variants = append(r.Variants, v.name)
		r.Exec = append(r.Exec, rows[i].exec)
		r.Wait = append(r.Wait, rows[i].wait)
	}
	return r, nil
}

// AblationWeightOnly (A1): vScale's consumption-aware extendability vs
// the VCPU-Bal weight-only sizing. The comparison runs with a light
// background: weight-only sizing pins the VM to its weight-based fair
// share even when the machine is mostly idle, forfeiting the slack that
// work-conserving schedulers would hand out.
func AblationWeightOnly(opts runner.Options, app string) (AblationResult, error) {
	light := func(s *scenario.Setup) { s.LightBackground = true }
	return ablate(opts, "A1: consumption-aware vs weight-only sizing (light background)", app, 30_000_000_000,
		[]variant{
			{"vScale (consumption-aware)", light},
			{"VCPU-Bal (weight-only)", func(s *scenario.Setup) { light(s); s.WeightOnly = true }},
			{"Xen/Linux (fixed vCPUs)", func(s *scenario.Setup) { light(s); s.Mode = scenario.Baseline }},
		})
}

// AblationHotplugPath (A2): the vScale balancer (µs) vs dom0-driven CPU
// hotplug (ms to 100+ ms) as the reconfiguration mechanism. The
// comparison uses fast-flickering background VMs (pictures every few
// hundred ms): a reconfiguration knob slower than the load's time
// constant cannot track it, which is exactly why VCPU-Bal could only
// simulate dynamic vCPUs.
func AblationHotplugPath(opts runner.Options, app string) (AblationResult, error) {
	flicker := &workload.Slideshow{
		BurstMin: 100 * sim.Millisecond, BurstMax: 250 * sim.Millisecond,
		IdleMin: 80 * sim.Millisecond, IdleMax: 200 * sim.Millisecond,
		Threads: 2,
	}
	fast := func(s *scenario.Setup) { s.Background = flicker }
	model, ok := costmodel.HotplugModelFor("v-2.6.32")
	if !ok {
		return AblationResult{}, fmt.Errorf("no hotplug model for v-2.6.32")
	}
	return ablate(opts, "A2: vScale balancer vs CPU-hotplug reconfiguration (fast-changing load)", app, 30_000_000_000,
		[]variant{
			{"vScale balancer (µs)", fast},
			{"dom0 hotplug path (ms-100ms)", func(s *scenario.Setup) {
				fast(s)
				s.ReconfigDelay = func(rand *sim.Rand) sim.Time {
					return costmodel.XenStoreWrite + model.DrawDown(rand)
				}
			}},
		})
}

// AblationDaemonPeriod (A3): sensitivity to the daemon poll period.
func AblationDaemonPeriod(opts runner.Options, app string, periods []sim.Time) (AblationResult, error) {
	if periods == nil {
		periods = []sim.Time{sim.Millisecond, 10 * sim.Millisecond, 100 * sim.Millisecond, sim.Second}
	}
	var vars []variant
	for _, p := range periods {
		p := p
		vars = append(vars, variant{fmt.Sprintf("period %v", p),
			func(s *scenario.Setup) { s.DaemonPeriod = p }})
	}
	return ablate(opts, "A3: daemon period sensitivity", app, 30_000_000_000, vars)
}

// AblationPerVMWeight (A4): the paper's per-VM weight patch vs unpatched
// Xen's per-vCPU weights, which make a VM forfeit share when freezing.
func AblationPerVMWeight(opts runner.Options, app string) (AblationResult, error) {
	return ablate(opts, "A4: per-VM weight (vScale patch) vs per-vCPU weight (unpatched)", app, 30_000_000_000,
		[]variant{
			{"per-VM weight", nil},
			{"per-vCPU weight", func(s *scenario.Setup) { s.PerVCPUWeight = true }},
		})
}

// AblationSchedulerGenerality (A6): the paper claims Algorithm 1 "can be
// easily integrated into various proportional-share schedulers, such as
// the virtual-runtime based ones". This ablation runs the identical
// vScale stack on the credit scheduler and on the VRT scheduler; the
// speedup over each scheduler's own baseline should hold for both.
func AblationSchedulerGenerality(opts runner.Options, app string) (AblationResult, error) {
	var vars []variant
	for _, pol := range []xen.SchedPolicy{xen.PolicyCredit, xen.PolicyVRT} {
		for _, mode := range []scenario.Mode{scenario.Baseline, scenario.VScale} {
			pol, mode := pol, mode
			polName := "credit"
			if pol == xen.PolicyVRT {
				polName = "vrt"
			}
			vars = append(vars, variant{fmt.Sprintf("%s: %s", polName, mode),
				func(s *scenario.Setup) {
					s.Policy = pol
					s.Mode = mode
				}})
		}
	}
	return ablate(opts, "A6: vScale on credit vs virtual-runtime scheduling", app, 30_000_000_000, vars)
}

// AblationCeilMargin (A5): the governor's fragmentation margin vs the
// paper's pure ceiling.
func AblationCeilMargin(opts runner.Options, app string) (AblationResult, error) {
	return ablate(opts, "A5: sizing ceiling: fragmentation margin vs pure ceil", app, 30_000_000_000,
		[]variant{
			{"margin 0.55 (default)", nil},
			{"pure ceil (Algorithm 1)", func(s *scenario.Setup) { s.PureCeil = true }},
		})
}
