package experiments

import (
	"fmt"

	"vscale/internal/guest"
	"vscale/internal/report"
	"vscale/internal/runner"
	"vscale/internal/scenario"
	"vscale/internal/sim"
	"vscale/internal/trace"
	"vscale/internal/workload"
	"vscale/internal/workload/npb"
)

// SpinCounts are the three GOMP_SPINCOUNT settings of Figures 6 and 7:
// OMP_WAIT_POLICY=ACTIVE (30 billion), default (300 K) and PASSIVE (0).
var SpinCounts = []uint64{30_000_000_000, 300_000, 0}

// SpinLabel names a spin count the way the paper does.
func SpinLabel(spin uint64) string {
	switch spin {
	case 30_000_000_000:
		return "30B"
	case 300_000:
		return "300K"
	case 0:
		return "0"
	default:
		return fmt.Sprint(spin)
	}
}

// NPBRun is one (app, mode, spin) measurement.
type NPBRun struct {
	App      string
	Mode     scenario.Mode
	Spin     uint64
	Exec     sim.Time
	Wait     sim.Time
	IPIRate  float64
	AvgVCPUs float64
}

// NPBResult holds a full NPB sweep (Figure 6 for a 4-vCPU VM, Figure 7
// for an 8-vCPU VM), with Figures 9 and 10 derivable from the same runs.
type NPBResult struct {
	VMVCPUs int
	Apps    []string
	Runs    map[string]map[scenario.Mode]map[uint64]NPBRun
}

// runNPBOnce executes one configuration.
func runNPBOnce(app string, mode scenario.Mode, spin uint64, vcpus int, seed uint64, tr *trace.Tracer) (NPBRun, error) {
	s := scenario.DefaultSetup()
	s.Mode = mode
	s.VMVCPUs = vcpus
	s.Seed = seed
	s.Tracer = tr
	b := scenario.Build(s)
	p, err := npb.ProfileFor(app)
	if err != nil {
		return NPBRun{}, err
	}
	res, err := b.RunApp(func(k *guest.Kernel) *workload.App {
		return npb.Launch(k, p, vcpus, guest.SpinBudgetFromCount(spin))
	}, 600*sim.Second)
	if err != nil {
		return NPBRun{}, err
	}
	return NPBRun{
		App: app, Mode: mode, Spin: spin,
		Exec: res.ExecTime, Wait: res.WaitTime,
		IPIRate: res.IPIsPerVCPUSec, AvgVCPUs: res.AvgActiveVCPUs,
	}, nil
}

// NPBSweep runs apps × modes × spin counts on a VM with the given vCPU
// count, fanning the independent configurations across the runner's
// worker pool. Passing nil lists selects the full paper sweep. Every
// configuration keeps the historical fixed seed so the rendered tables
// match the archived EXPERIMENTS.md numbers whatever the worker count.
func NPBSweep(opts runner.Options, vcpus int, apps []string, modes []scenario.Mode, spins []uint64) (NPBResult, error) {
	if apps == nil {
		apps = npb.Names()
	}
	if modes == nil {
		modes = scenario.Modes()
	}
	if spins == nil {
		spins = SpinCounts
	}
	type cell struct {
		app  string
		mode scenario.Mode
		spin uint64
	}
	var cells []cell
	for _, app := range apps {
		for _, m := range modes {
			for _, spin := range spins {
				cells = append(cells, cell{app, m, spin})
			}
		}
	}
	runs, err := runner.Run(opts, len(cells), func(ctx runner.Context) (NPBRun, error) {
		c := cells[ctx.Index]
		return runNPBOnce(c.app, c.mode, c.spin, vcpus, 1, ctx.Tracer)
	})
	if err != nil {
		return NPBResult{}, err
	}
	out := NPBResult{VMVCPUs: vcpus, Apps: apps,
		Runs: make(map[string]map[scenario.Mode]map[uint64]NPBRun)}
	for i, c := range cells {
		if out.Runs[c.app] == nil {
			out.Runs[c.app] = make(map[scenario.Mode]map[uint64]NPBRun)
		}
		if out.Runs[c.app][c.mode] == nil {
			out.Runs[c.app][c.mode] = make(map[uint64]NPBRun)
		}
		out.Runs[c.app][c.mode][c.spin] = runs[i]
	}
	return out, nil
}

// Normalized returns exec(app, mode, spin)/exec(app, Baseline, spin).
func (r NPBResult) Normalized(app string, mode scenario.Mode, spin uint64) float64 {
	base := r.Runs[app][scenario.Baseline][spin].Exec
	if base == 0 {
		return 0
	}
	return float64(r.Runs[app][mode][spin].Exec) / float64(base)
}

// RenderFigure produces the Figure 6/7 table for one spin count:
// normalized execution times for the four configurations.
func (r NPBResult) RenderFigure(spin uint64) string {
	fig := "Figure 6"
	if r.VMVCPUs == 8 {
		fig = "Figure 7"
	}
	t := report.NewTable(
		fmt.Sprintf("%s: NPB normalized execution time, %d-vCPU VM, GOMP_SPINCOUNT=%s",
			fig, r.VMVCPUs, SpinLabel(spin)),
		"app", "Xen/Linux", "vScale", "Xen/Linux+pvlock", "vScale+pvlock")
	for _, app := range r.Apps {
		t.AddRow(app,
			fmt.Sprintf("%.2f", r.Normalized(app, scenario.Baseline, spin)),
			fmt.Sprintf("%.2f", r.Normalized(app, scenario.VScale, spin)),
			fmt.Sprintf("%.2f", r.Normalized(app, scenario.PVLock, spin)),
			fmt.Sprintf("%.2f", r.Normalized(app, scenario.VScalePVLock, spin)))
	}
	return t.String()
}

// RenderFigure9 produces the waiting-time-reduction table (Figure 9):
// percentage reduction of the VM's scheduling delay under vScale,
// normalised per unit of execution time, with and without pv-spinlock.
func (r NPBResult) RenderFigure9(spin uint64) string {
	t := report.NewTable(
		fmt.Sprintf("Figure 9: reduction of VM waiting time with vScale (spin=%s)", SpinLabel(spin)),
		"app", "vScale vs Xen/Linux (%)", "vScale+pvlock vs Xen/Linux+pvlock (%)")
	red := func(base, vs NPBRun) float64 {
		b := float64(base.Wait) / float64(base.Exec)
		v := float64(vs.Wait) / float64(vs.Exec)
		if b == 0 {
			return 0
		}
		return (1 - v/b) * 100
	}
	for _, app := range r.Apps {
		t.AddRow(app,
			fmt.Sprintf("%.1f", red(r.Runs[app][scenario.Baseline][spin], r.Runs[app][scenario.VScale][spin])),
			fmt.Sprintf("%.1f", red(r.Runs[app][scenario.PVLock][spin], r.Runs[app][scenario.VScalePVLock][spin])))
	}
	return t.String()
}

// RenderFigure10 produces the IPI-rate table (Figure 10): reschedule
// IPIs per vCPU per second on vanilla Xen/Linux under the three spin
// policies.
func (r NPBResult) RenderFigure10() string {
	t := report.NewTable(
		"Figure 10: vIPIs/sec/vCPU under different spinning policies (Xen/Linux)",
		"app", "spin=30B", "spin=300K", "spin=0")
	for _, app := range r.Apps {
		row := []string{app}
		for _, spin := range SpinCounts {
			row = append(row, fmt.Sprintf("%.1f", r.Runs[app][scenario.Baseline][spin].IPIRate))
		}
		t.AddRow(row...)
	}
	return t.String()
}

// Figure8Result is the active-vCPU trace for bt (paper Figure 8).
type Figure8Result struct {
	Traces map[int][]guest.TracePoint // keyed by VM vCPU count (4, 8)
}

// Figure8 records the active-vCPU traces of a 4- and an 8-vCPU VM
// running bt under vScale; the two VMs run as parallel jobs.
func Figure8(opts runner.Options, duration sim.Time) (Figure8Result, error) {
	sizes := []int{4, 8}
	traces, err := runner.Run(opts, len(sizes), func(ctx runner.Context) ([]guest.TracePoint, error) {
		vcpus := sizes[ctx.Index]
		s := scenario.DefaultSetup()
		s.Mode = scenario.VScale
		s.VMVCPUs = vcpus
		s.Tracer = ctx.Tracer
		b := scenario.Build(s)
		b.K.StartTrace(100 * sim.Millisecond)
		p, err := npb.ProfileFor("bt")
		if err != nil {
			return nil, err
		}
		if _, err := b.RunApp(func(k *guest.Kernel) *workload.App {
			return npb.Launch(k, p, vcpus, guest.SpinBudgetFromCount(300_000))
		}, duration); err != nil {
			return nil, err
		}
		return b.K.Trace(), nil
	})
	if err != nil {
		return Figure8Result{}, err
	}
	out := Figure8Result{Traces: make(map[int][]guest.TracePoint)}
	for i, vcpus := range sizes {
		out.Traces[vcpus] = traces[i]
	}
	return out, nil
}

// Render produces the Figure 8 trace table.
func (r Figure8Result) Render() string {
	t := report.NewTable("Figure 8: active vCPUs over time, bt under vScale",
		"t (s)", "4-vCPU VM", "8-vCPU VM")
	t4, t8 := r.Traces[4], r.Traces[8]
	n := len(t4)
	if len(t8) < n {
		n = len(t8)
	}
	for i := 0; i < n; i++ {
		t.AddRow(fmt.Sprintf("%.1f", t4[i].At.Seconds()),
			fmt.Sprintf("%d %s", t4[i].Active, report.Bar(float64(t4[i].Active), 8, 8)),
			fmt.Sprintf("%d %s", t8[i].Active, report.Bar(float64(t8[i].Active), 8, 8)))
	}
	return t.String()
}
