package experiments

import (
	"fmt"

	"vscale/internal/guest"
	"vscale/internal/report"
	"vscale/internal/runner"
	"vscale/internal/scenario"
	"vscale/internal/sim"
	"vscale/internal/trace"
	"vscale/internal/workload/httpd"
)

// ApachePoint is one load level of one configuration.
type ApachePoint struct {
	RateK     float64 // offered rate, K requests/s
	ReplyK    float64 // reply rate, K/s
	ConnMs    float64 // average connection time
	RespMs    float64 // average response time
	Errors    uint64
	RxIntPerS float64
}

// ApacheResult holds the Figure 14 sweep.
type ApacheResult struct {
	VMVCPUs int
	Window  sim.Time
	// Points[mode] is ordered by offered rate.
	Points map[scenario.Mode][]ApachePoint
	Rates  []float64 // offered rates in K/s
}

// Apache sweeps the request rate for each configuration (Figure 14),
// fanning the independent (mode, rate) load levels across the runner's
// worker pool. rates are in K requests/s; window is the measurement
// duration (the paper uses 1 minute per point).
func Apache(opts runner.Options, rates []float64, window sim.Time, modes []scenario.Mode) (ApacheResult, error) {
	if rates == nil {
		rates = []float64{0.5, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	}
	if modes == nil {
		modes = scenario.Modes()
	}
	type cell struct {
		mode scenario.Mode
		rate float64
	}
	var cells []cell
	for _, m := range modes {
		for _, rate := range rates {
			cells = append(cells, cell{m, rate})
		}
	}
	points, err := runner.Run(opts, len(cells), func(ctx runner.Context) (ApachePoint, error) {
		c := cells[ctx.Index]
		return apacheOnce(c.mode, c.rate, window, ctx.Tracer)
	})
	if err != nil {
		return ApacheResult{}, err
	}
	out := ApacheResult{VMVCPUs: 4, Window: window, Rates: rates,
		Points: make(map[scenario.Mode][]ApachePoint)}
	for i, c := range cells {
		out.Points[c.mode] = append(out.Points[c.mode], points[i])
	}
	return out, nil
}

func apacheOnce(mode scenario.Mode, rateK float64, window sim.Time, tr *trace.Tracer) (ApachePoint, error) {
	s := scenario.DefaultSetup()
	s.Mode = mode
	s.VMVCPUs = 4
	s.Tracer = tr
	b := scenario.Build(s)

	cfg := httpd.DefaultConfig()
	link := httpd.NewLink(b.Eng, cfg.LinkBps)
	srv, err := httpd.NewServer(b.K, link, cfg)
	if err != nil {
		return ApachePoint{}, err
	}
	client := httpd.NewClient(srv, sim.NewRand(7))

	// Warm up, then measure for the window plus drain time.
	warm := scenario.DefaultWarmup
	if err := b.Eng.RunUntil(warm); err != nil {
		return ApachePoint{}, err
	}
	client.Run(rateK*1000, window)
	if err := b.Eng.RunUntil(warm + window + 2*sim.Second); err != nil {
		return ApachePoint{}, err
	}
	b.FinishTrace()
	res := srv.Result(rateK*1000, window)
	return ApachePoint{
		RateK:     rateK,
		ReplyK:    res.ReplyRate / 1000,
		ConnMs:    res.AvgConnMs,
		RespMs:    res.AvgRespMs,
		Errors:    res.Errors,
		RxIntPerS: float64(res.RxInterrupts) / window.Seconds(),
	}, nil
}

// Render produces the three Figure 14 sub-tables (reply rate,
// connection time, response time).
func (r ApacheResult) Render() string {
	order := []scenario.Mode{scenario.Baseline, scenario.VScale, scenario.PVLock, scenario.VScalePVLock}
	var out string
	for _, metric := range []struct {
		name string
		get  func(ApachePoint) float64
	}{
		{"(a) average reply rate (K/s, higher is better)", func(p ApachePoint) float64 { return p.ReplyK }},
		{"(b) average connection time (ms, lower is better)", func(p ApachePoint) float64 { return p.ConnMs }},
		{"(c) average response time (ms, lower is better)", func(p ApachePoint) float64 { return p.RespMs }},
	} {
		t := report.NewTable("Figure 14"+metric.name,
			"req rate (K/s)", "Xen/Linux", "vScale", "Xen/Linux+pvlock", "vScale+pvlock")
		for i, rate := range r.Rates {
			row := []string{fmt.Sprintf("%g", rate)}
			for _, m := range order {
				pts, ok := r.Points[m]
				if !ok || i >= len(pts) {
					row = append(row, "-")
					continue
				}
				row = append(row, fmt.Sprintf("%.2f", metric.get(pts[i])))
			}
			t.AddRow(row...)
		}
		out += t.String() + "\n"
	}
	return out
}

// PeakReply returns the maximum reply rate (K/s) for a mode.
func (r ApacheResult) PeakReply(mode scenario.Mode) float64 {
	var peak float64
	for _, p := range r.Points[mode] {
		if p.ReplyK > peak {
			peak = p.ReplyK
		}
	}
	return peak
}

var _ = guest.DefaultConfig // sibling-file import symmetry
