package experiments

import (
	"fmt"
	"strings"

	"vscale/internal/cluster"
	"vscale/internal/report"
	"vscale/internal/runner"
	"vscale/internal/sim"
	"vscale/internal/telemetry"
)

// BakeoffArm names one contestant of the elasticity bake-off: a
// scaling-policy name paired with an elasticity mode (see
// cluster.ElasticityFor).
type BakeoffArm struct {
	Name    string
	Policy  string
	Elastic string
}

// BakeoffArms is the fixed contest: vertical-only scaling (vScale's
// per-VM vCPU balancing, no fleet elasticity), horizontal-only scaling
// (static vCPU allocations, live migration + replica autoscaling), and
// the hybrid that runs both layers at once.
func BakeoffArms() []BakeoffArm {
	return []BakeoffArm{
		{Name: "vertical", Policy: "vscale", Elastic: "none"},
		{Name: "horizontal", Policy: "static", Elastic: "hybrid"},
		{Name: "hybrid", Policy: "vscale", Elastic: "hybrid"},
	}
}

// BakeoffResult is the bake-off's output: one fleet run per arm, every
// arm forked from the same warm-prefix snapshot of the same
// service-annotated churn trace.
type BakeoffResult struct {
	Hosts        int
	PCPUsPerHost int
	Horizon      sim.Time
	SLO          sim.Time
	WarmEpochs   int
	Arms         []BakeoffArm
	// Fleets holds one FleetResult per Arms entry, in order.
	Fleets []cluster.FleetResult
}

// Bakeoff runs the vertical-vs-horizontal elasticity bake-off: a
// service-annotated churn trace is generated once, its policy-neutral
// warm prefix is simulated once (with the hybrid elasticity layer
// built, so the snapshot carries the mode-free elasticity bookkeeping
// every arm can restore from — a warm capture's bookkeeping is a pure
// function of the routed trace), and each arm forks from that single
// snapshot into its measured window. All three arms therefore compete
// on identical VM lifecycles, identical warm histories and identical
// request arrivals; the cost and attainment differences are
// attributable to the scaling dimension alone.
//
// The trace is tuned to moderate overload: hot services outgrow what
// vertical scaling can provision on their anchor's host, which is the
// regime where horizontal capacity (replicas on other hosts, reached
// via migration-balanced headroom) pays for itself.
//
// sink (which may be nil) receives live per-epoch telemetry, one
// collector per arm labelled arm=<name>.
func Bakeoff(opts runner.Options, sink *telemetry.Sink, hosts, pcpus int, horizon, slo sim.Time, warmEpochs int, syncMode cluster.SyncMode, lag int) (BakeoffResult, error) {
	if warmEpochs <= 0 {
		return BakeoffResult{}, fmt.Errorf("bakeoff: warmEpochs must be > 0 (the arms fork from the warm snapshot)")
	}
	out := BakeoffResult{
		Hosts:        hosts,
		PCPUsPerHost: pcpus,
		Horizon:      horizon,
		SLO:          slo,
		WarmEpochs:   warmEpochs,
		Arms:         BakeoffArms(),
	}

	// One service-annotated trace for every arm. Eight services spread
	// the anchors thin enough that the replica controller has headroom
	// (a service's replica count is capped relative to its anchors),
	// and the hot 6000-RPS tier overloads an anchor's fair share of one
	// host so vertical-only scaling hits the host ceiling while the
	// fleet as a whole still has slack — the regime where migrating the
	// neighbours away and fanning the hot service out across replicas
	// buys attainment without buying vCPUs.
	tcfg := cluster.DefaultTraceConfig(horizon)
	tcfg.InitialVMs = 2 * hosts
	tcfg.ArrivalEvery = horizon / sim.Time(4*hosts)
	tcfg.RateChoices = []float64{500, 1500, 6000}
	tcfg.Services = []string{"web", "api", "db", "cache", "auth", "queue", "blob", "edge"}
	tcfg.DirtyBpsChoices = []float64{50e6, 200e6, 800e6}
	traceSeed := runner.DeriveSeed(opts.BaseSeed, hosts)
	events := cluster.GenTrace(tcfg, traceSeed)

	base := cluster.FleetConfig{
		Hosts:        hosts,
		PCPUsPerHost: pcpus,
		Seed:         traceSeed,
		Horizon:      horizon,
		SLO:          slo,
		Workers:      opts.Workers,
		Sync:         syncMode,
		LagEpochs:    lag,
		WarmEpochs:   warmEpochs,
		Report:       opts.Report,
	}

	// The shared warm snapshot, captured with the hybrid layer built.
	// Warm captures are disarmed — they carry no elasticity-mode
	// signature — so the same snapshot forks into every arm, including
	// vertical-only (which simply ignores the elasticity state).
	capCfg := base
	capCfg.Migration, capCfg.ReplicaSet, _ = cluster.ElasticityFor("hybrid")
	tuneBakeoffMigration(capCfg.Migration)
	cp, err := cluster.CaptureWarmPrefix(capCfg, events)
	if err != nil {
		return out, fmt.Errorf("bakeoff: warm capture: %w", err)
	}

	for _, arm := range out.Arms {
		migCfg, rsCfg, err := cluster.ElasticityFor(arm.Elastic)
		if err != nil {
			return out, fmt.Errorf("bakeoff: %s: %w", arm.Name, err)
		}
		tuneBakeoffMigration(migCfg)
		fcfg := base
		fcfg.Policy = arm.Policy
		fcfg.Migration = migCfg
		fcfg.ReplicaSet = rsCfg
		fcfg.Telemetry = telemetry.NewCollector(sink, false, "arm", arm.Name)
		res, err := cluster.RunFleetFork(fcfg, events, cp)
		if err != nil {
			return out, fmt.Errorf("bakeoff: %s: %w", arm.Name, err)
		}
		if err := fcfg.Telemetry.Err(); err != nil {
			return out, fmt.Errorf("bakeoff: %s: %w", arm.Name, err)
		}
		out.Fleets = append(out.Fleets, res)
	}
	return out, nil
}

// tuneBakeoffMigration makes the rebalance pass conservative for the
// bake-off: a wide committed-vCPU deadband and every-other-boundary
// pacing, so migrations fire only on real imbalance. The default
// trigger is tuned for responsiveness; here each migration's link
// throttling must visibly pay for itself in the cost column.
func tuneBakeoffMigration(m *cluster.MigrationConfig) {
	if m != nil {
		m.TriggerVCPUs = 6
		m.Every = 2
	}
}

// arm returns the FleetResult for the named arm, or nil.
func (r BakeoffResult) arm(name string) *cluster.FleetResult {
	for i, a := range r.Arms {
		if a.Name == name && i < len(r.Fleets) {
			return &r.Fleets[i]
		}
	}
	return nil
}

// Metrics flattens the per-arm accounting into benchmark keys
// ("bakeoff/<arm>/cost_vcpu_seconds", ".../attainment",
// ".../migrations", ".../replicas_created") for BENCH_cluster.json.
func (r BakeoffResult) Metrics() map[string]float64 {
	m := map[string]float64{}
	for i, arm := range r.Arms {
		if i >= len(r.Fleets) {
			break
		}
		f := r.Fleets[i]
		prefix := "bakeoff/" + arm.Name + "/"
		m[prefix+"cost_vcpu_seconds"] = f.CostVCPUSeconds
		m[prefix+"attainment"] = f.Attainment
		m[prefix+"migrations"] = float64(f.Migrations)
		m[prefix+"replicas_created"] = float64(f.ReplicasCreated)
	}
	return m
}

// Render produces the bake-off table and the head-to-head verdict.
func (r BakeoffResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d host(s) × %d pCPUs, %v churn horizon (%d warm epochs), SLO: reply within %v\n",
		r.Hosts, r.PCPUsPerHost, r.Horizon, r.WarmEpochs, r.SLO)
	sb.WriteString("All arms fork from one warm-prefix snapshot of one service-annotated\n")
	sb.WriteString("trace: identical VM lifecycles, identical arrivals. vertical scales\n")
	sb.WriteString("vCPUs per VM (vScale); horizontal holds vCPUs static and scales VM\n")
	sb.WriteString("replicas across hosts (live migration + ReplicaSet controller); hybrid\n")
	sb.WriteString("runs both. Cost is provisioned vCPU-seconds.\n")

	tbl := report.NewTable("Vertical vs horizontal bake-off",
		"arm", "policy", "elastic", "offered", "p95", "p99", "SLO%", "migs", "downtime", "replicas", "cost")
	for i, arm := range r.Arms {
		if i >= len(r.Fleets) {
			break
		}
		f := r.Fleets[i]
		tbl.AddRow(
			arm.Name,
			arm.Policy,
			arm.Elastic,
			fmt.Sprintf("%d", f.Load.Offered),
			fmt.Sprintf("%.2f", f.Hist.Quantile(0.95)),
			fmt.Sprintf("%.2f", f.Hist.Quantile(0.99)),
			fmt.Sprintf("%.1f", 100*f.Attainment),
			fmt.Sprintf("%d", f.Migrations),
			fmt.Sprintf("%v", f.MigrationDowntime),
			fmt.Sprintf("%d", f.ReplicasCreated),
			fmt.Sprintf("%.1f", f.CostVCPUSeconds),
		)
	}
	sb.WriteString("\n")
	sb.WriteString(tbl.String())

	if v, h := r.arm("vertical"), r.arm("hybrid"); v != nil && h != nil {
		fmt.Fprintf(&sb, "hybrid vs vertical: %+.1f%% attainment at %+.1f%% cost\n",
			100*(h.Attainment-v.Attainment), 100*(h.CostVCPUSeconds/v.CostVCPUSeconds-1))
	}
	return sb.String()
}
