package experiments

import (
	"fmt"
	"strings"
	"time"

	"vscale/internal/cluster"
	"vscale/internal/report"
	"vscale/internal/runner"
	"vscale/internal/sim"
)

// WarmForkResult is the warm-fork amortization experiment's output: the
// same policy scoreboard produced two ways — each policy straight
// through (warm prefix re-simulated per policy) and forked from one
// shared warm-prefix snapshot — with the results asserted identical
// pairwise. Wall clocks and the speedup go into Metrics (the bench
// JSON) only, never into the rendered text, which must be
// byte-identical run to run.
type WarmForkResult struct {
	Hosts        int
	PCPUsPerHost int
	Horizon      sim.Time
	SLO          sim.Time
	Epochs       int
	WarmEpochs   int
	Sync         cluster.SyncMode
	// Policies is the scoreboard order; Fleets is index-aligned with it
	// (the canonical results — straight and forked agree exactly).
	Policies []string
	Fleets   []cluster.FleetResult
	// StraightWall and ForkWall are per-policy wall seconds,
	// index-aligned with Policies; WarmWall is the one shared warm
	// prefix simulation (capture included) the forks amortize.
	StraightWall []float64
	WarmWall     float64
	ForkWall     []float64
}

// WarmFork measures what the checkpoint/restore layer buys: for one
// fleet shape it generates a churn trace, runs every policy straight
// through (each run paying the full policy-neutral warm prefix), then
// simulates the warm prefix exactly once, snapshots the quiesced fleet
// at the warm boundary, and forks every policy from the restored
// snapshot — requiring each forked result to match its straight run
// bit for bit. The warm:measure ratio is deliberately ≥ 1:1 (the
// regime warm-fork exists for); the speedup lands in Metrics.
func WarmFork(opts runner.Options, hosts, pcpus int, horizon, slo sim.Time, warmEpochs int, policies []string, syncMode cluster.SyncMode, lag int) (WarmForkResult, error) {
	if len(policies) == 0 {
		policies = cluster.PolicyNames()
	}
	epochs := int(horizon / cluster.DefaultEpoch)
	if warmEpochs <= 0 || warmEpochs >= epochs {
		return WarmForkResult{}, fmt.Errorf("warmfork: warm epochs %d outside (0, %d)", warmEpochs, epochs)
	}
	out := WarmForkResult{
		Hosts:        hosts,
		PCPUsPerHost: pcpus,
		Horizon:      horizon,
		SLO:          slo,
		Epochs:       epochs,
		WarmEpochs:   warmEpochs,
		Sync:         syncMode,
		Policies:     policies,
	}

	// The same hot churn shape the cluster shoot-out uses, so the
	// amortized scoreboard is the real one.
	tcfg := cluster.DefaultTraceConfig(horizon)
	tcfg.InitialVMs = 2 * hosts
	tcfg.ArrivalEvery = horizon / sim.Time(4*hosts)
	tcfg.RateChoices = []float64{1000, 3000, 6000}
	traceSeed := runner.DeriveSeed(opts.BaseSeed, hosts)
	events := cluster.GenTrace(tcfg, traceSeed)

	base := cluster.FleetConfig{
		Hosts:        hosts,
		PCPUsPerHost: pcpus,
		Seed:         traceSeed,
		Horizon:      horizon,
		SLO:          slo,
		Workers:      opts.Workers,
		Sync:         syncMode,
		LagEpochs:    lag,
		WarmEpochs:   warmEpochs,
		Report:       opts.Report,
	}

	// Arm 1: every policy straight through, each paying the warm prefix.
	for _, p := range policies {
		cfg := base
		cfg.Policy = p
		start := time.Now()
		res, err := cluster.RunFleet(cfg, events)
		if err != nil {
			return out, fmt.Errorf("warmfork: straight %s: %w", p, err)
		}
		out.StraightWall = append(out.StraightWall, time.Since(start).Seconds())
		out.Fleets = append(out.Fleets, res)
	}

	// Arm 2: the warm prefix once, then one fork per policy.
	start := time.Now()
	cp, err := cluster.CaptureWarmPrefix(base, events)
	if err != nil {
		return out, fmt.Errorf("warmfork: capture: %w", err)
	}
	out.WarmWall = time.Since(start).Seconds()
	for i, p := range policies {
		cfg := base
		cfg.Policy = p
		start := time.Now()
		res, err := cluster.RunFleetFork(cfg, events, cp)
		if err != nil {
			return out, fmt.Errorf("warmfork: fork %s: %w", p, err)
		}
		out.ForkWall = append(out.ForkWall, time.Since(start).Seconds())
		if !sameFleetResult(out.Fleets[i], res) {
			return out, fmt.Errorf("warmfork: %s: forked result differs from straight run", p)
		}
	}
	return out, nil
}

// straightTotal and forkTotal are the two arms' wall clocks: the sum
// of the straight runs vs the shared warm prefix plus the forks.
func (r WarmForkResult) straightTotal() float64 {
	var s float64
	for _, w := range r.StraightWall {
		s += w
	}
	return s
}

func (r WarmForkResult) forkTotal() float64 {
	s := r.WarmWall
	for _, w := range r.ForkWall {
		s += w
	}
	return s
}

// Metrics flattens the two arms into bench keys for
// BENCH_cluster.json's "warmfork" series: the per-arm totals, the
// shared warm prefix cost, the amortization speedup, and the
// per-policy wall pairs.
func (r WarmForkResult) Metrics() map[string]float64 {
	m := map[string]float64{
		"policies":              float64(len(r.Policies)),
		"warm_epochs":           float64(r.WarmEpochs),
		"epochs":                float64(r.Epochs),
		"straight_wall_seconds": r.straightTotal(),
		"warm_wall_seconds":     r.WarmWall,
		"fork_wall_seconds":     r.forkTotal(),
	}
	if ft := r.forkTotal(); ft > 0 {
		m["speedup"] = r.straightTotal() / ft
	}
	for i, p := range r.Policies {
		m[p+"/straight_wall_seconds"] = r.StraightWall[i]
		m[p+"/fork_wall_seconds"] = r.ForkWall[i]
	}
	return m
}

// Render produces the deterministic summary: the fleet shape, the
// identity statement, and the scoreboard (identical between arms by
// construction). Wall clocks are deliberately absent — see Metrics.
func (r WarmForkResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d host(s), %d pCPUs/host, %v churn horizon (%d epochs, %d warm), SLO: reply within %v, sync=%s\n",
		r.Hosts, r.PCPUsPerHost, r.Horizon, r.Epochs, r.WarmEpochs, r.SLO, r.Sync)
	fmt.Fprintf(&sb, "each policy ran twice: straight through, and forked from one shared\n")
	fmt.Fprintf(&sb, "%d-epoch warm-prefix snapshot; every forked result was required to\n", r.WarmEpochs)
	sb.WriteString("match its straight run bit for bit (wall clocks and the amortization\n")
	sb.WriteString("speedup are reported via the bench JSON, never here).\n\n")
	tbl := report.NewTable("Warm-fork: identical scoreboard from both arms",
		"policy", "VMs", "offered", "replies", "p95", "SLO%", "reconfigs", "util%", "cost")
	for i, p := range r.Policies {
		f := r.Fleets[i]
		tbl.AddRow(
			p,
			fmt.Sprintf("%d", f.Placed),
			fmt.Sprintf("%d", f.Load.Offered),
			fmt.Sprintf("%d", f.Load.Replies),
			fmt.Sprintf("%.2f", f.Hist.Quantile(0.95)),
			fmt.Sprintf("%.1f", 100*f.Attainment),
			fmt.Sprintf("%d", f.Reconfigs),
			fmt.Sprintf("%.1f", 100*f.AvgHostUtil),
			fmt.Sprintf("%.1f", f.CostVCPUSeconds),
		)
	}
	sb.WriteString(tbl.String())
	return sb.String()
}
