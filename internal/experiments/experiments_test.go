package experiments

import (
	"path/filepath"
	"strings"
	"testing"

	"vscale/internal/cluster"
	"vscale/internal/runner"
	"vscale/internal/scenario"
	"vscale/internal/sim"
)

func TestTable1MatchesPaper(t *testing.T) {
	r, err := Table1(100)
	if err != nil {
		t.Fatal(err)
	}
	if r.Total != 910*sim.Nanosecond {
		t.Fatalf("channel read total = %v, want 0.91µs", r.Total)
	}
	if r.MeasuredReads < 90 {
		t.Fatalf("daemon performed %d reads, want ~100", r.MeasuredReads)
	}
	out := r.Render()
	if !strings.Contains(out, "0.91") {
		t.Fatalf("render missing the 0.91µs total:\n%s", out)
	}
}

func TestFigure4Shape(t *testing.T) {
	r := Figure4([]int{1, 10, 50}, 200)
	idle50 := r.Stats[0][50] // Idle
	net50 := r.Stats[2][50]  // NetworkIO
	idle1 := r.Stats[0][1]
	// Linear in VM count and inflated by I/O.
	if idle50[1] < 40*idle1[1] {
		t.Fatalf("50-VM idle read %.2fms not ~50x the 1-VM read %.2fms", idle50[1], idle1[1])
	}
	if net50[1] < 6 {
		t.Fatalf("50-VM net-I/O average %.2fms, paper reports >6ms", net50[1])
	}
	if net50[2] < 15 {
		t.Fatalf("50-VM net-I/O max %.2fms, paper reports ~30ms", net50[2])
	}
	if !strings.Contains(r.Render(), "#VMs") {
		t.Fatal("render broken")
	}
}

func TestTable2Quiescence(t *testing.T) {
	r, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if r.Before.TimerPerSec[i] < 900 || r.Before.TimerPerSec[i] > 1100 {
			t.Fatalf("vCPU%d before: %.0f ticks/s, want ~1000", i, r.Before.TimerPerSec[i])
		}
		if r.Before.IPIPerSec[i] < 2 {
			t.Fatalf("vCPU%d before: %.1f IPIs/s, want kernel-build-like rate", i, r.Before.IPIPerSec[i])
		}
	}
	// The frozen vCPU3 is quiescent; survivors keep ticking.
	if r.After.TimerPerSec[3] > 1 {
		t.Fatalf("frozen vCPU3 still ticks: %.1f/s", r.After.TimerPerSec[3])
	}
	if r.After.IPIPerSec[3] > 1 {
		t.Fatalf("frozen vCPU3 still gets IPIs: %.1f/s", r.After.IPIPerSec[3])
	}
	for i := 0; i < 3; i++ {
		if r.After.TimerPerSec[i] < 900 {
			t.Fatalf("active vCPU%d ticks dropped to %.0f/s after freeze", i, r.After.TimerPerSec[i])
		}
	}
}

func TestTable3Breakdown(t *testing.T) {
	r := Table3()
	if len(r.Steps) != 6 {
		t.Fatalf("steps = %d", len(r.Steps))
	}
	if r.Cumulative[len(r.Cumulative)-1] != 2100*sim.Nanosecond {
		t.Fatalf("total = %v, want 2.10µs", r.Cumulative[len(r.Cumulative)-1])
	}
	out := r.Render()
	if !strings.Contains(out, "2.10") || !strings.Contains(out, "Migrate N threads") {
		t.Fatalf("render missing pieces:\n%s", out)
	}
}

func TestFigure5Bands(t *testing.T) {
	r, err := Figure5(100)
	if err != nil {
		t.Fatal(err)
	}
	// vScale's 2.1µs vs the best hotplug op (~0.35ms): >100x.
	add := r.Add["v-3.14.15"]
	if add.Quantile(0.5) < 0.3 {
		t.Fatalf("3.14.15 add median %.2fms too low", add.Quantile(0.5))
	}
	rm := r.Remove["v-2.6.32"]
	if rm.Quantile(0.9) < 20 {
		t.Fatalf("2.6.32 remove p90 = %.1fms, want tens of ms", rm.Quantile(0.9))
	}
	if !strings.Contains(r.Render(), "v-3.14.15") {
		t.Fatal("render broken")
	}
}

func TestNPBSweepHeadline(t *testing.T) {
	// Scaled-down sweep: two apps, two modes, one spin count.
	r, err := NPBSweep(runner.Options{}, 4, []string{"cg", "ep"},
		[]scenario.Mode{scenario.Baseline, scenario.VScale},
		[]uint64{30_000_000_000})
	if err != nil {
		t.Fatal(err)
	}
	cg := r.Normalized("cg", scenario.VScale, 30_000_000_000)
	ep := r.Normalized("ep", scenario.VScale, 30_000_000_000)
	if cg > 0.8 {
		t.Fatalf("cg normalized = %.2f, want substantial speedup", cg)
	}
	if ep > 1.25 {
		t.Fatalf("ep normalized = %.2f, want near-neutral", ep)
	}
	out := r.RenderFigure(30_000_000_000)
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "cg") {
		t.Fatalf("render broken:\n%s", out)
	}
	if !strings.Contains(r.RenderFigure10(), "spin=0") {
		t.Fatal("figure 10 render broken")
	}
	if !strings.Contains(r.RenderFigure9(30_000_000_000), "reduction") {
		t.Fatal("figure 9 render broken")
	}
}

// TestNPBSweepParallelDeterminism is the headline determinism check: the
// rendered tables must be byte-identical whatever the worker count.
func TestNPBSweepParallelDeterminism(t *testing.T) {
	render := func(workers int) string {
		r, err := NPBSweep(runner.Options{Workers: workers}, 4, []string{"ep"},
			[]scenario.Mode{scenario.Baseline, scenario.VScale},
			[]uint64{300_000})
		if err != nil {
			t.Fatal(err)
		}
		return r.RenderFigure(300_000) + r.RenderFigure10()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Fatalf("serial vs 8-worker output differs:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

func TestFigure8TraceOscillates(t *testing.T) {
	r, err := Figure8(runner.Options{}, 10*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	tr4 := r.Traces[4]
	if len(tr4) < 50 {
		t.Fatalf("trace too short: %d points", len(tr4))
	}
	min, max := 99, 0
	for _, p := range tr4 {
		if p.Active < min {
			min = p.Active
		}
		if p.Active > max {
			max = p.Active
		}
	}
	if max != 4 {
		t.Fatalf("4-vCPU VM never at 4 active (max %d)", max)
	}
	if min > 3 {
		t.Fatalf("4-vCPU VM never scaled down (min %d)", min)
	}
	tr8 := r.Traces[8]
	max8 := 0
	for _, p := range tr8 {
		if p.Active > max8 {
			max8 = p.Active
		}
	}
	if max8 < 5 {
		t.Fatalf("8-vCPU VM max active = %d", max8)
	}
	if !strings.Contains(r.Render(), "Figure 8") {
		t.Fatal("render broken")
	}
}

func TestParsecSweepShape(t *testing.T) {
	r, err := ParsecSweep(runner.Options{}, 4, []string{"dedup", "swaptions"},
		[]scenario.Mode{scenario.Baseline, scenario.VScale})
	if err != nil {
		t.Fatal(err)
	}
	dedup := r.Normalized("dedup", scenario.VScale)
	swap := r.Normalized("swaptions", scenario.VScale)
	if dedup > 1.0 {
		t.Fatalf("dedup normalized = %.2f, paper shows >20%% gain", dedup)
	}
	if swap > 1.3 {
		t.Fatalf("swaptions normalized = %.2f, should be near-neutral", swap)
	}
	// Figure 13: dedup is the IPI outlier, swaptions has ~none.
	if r.Runs["dedup"][scenario.Baseline].IPIRate < 5*r.Runs["swaptions"][scenario.Baseline].IPIRate {
		t.Fatalf("dedup IPI rate %.0f not dominating swaptions %.0f",
			r.Runs["dedup"][scenario.Baseline].IPIRate, r.Runs["swaptions"][scenario.Baseline].IPIRate)
	}
	if !strings.Contains(r.RenderFigure(), "Figure 11") {
		t.Fatal("render broken")
	}
	if !strings.Contains(r.RenderFigure13(), "dedup") {
		t.Fatal("figure 13 render broken")
	}
}

func TestApacheShape(t *testing.T) {
	r, err := Apache(runner.Options{}, []float64{4, 7, 10}, 8*sim.Second,
		[]scenario.Mode{scenario.Baseline, scenario.VScale})
	if err != nil {
		t.Fatal(err)
	}
	// Linear region identical.
	b4 := r.Points[scenario.Baseline][0]
	v4 := r.Points[scenario.VScale][0]
	if b4.ReplyK < 3.8 || v4.ReplyK < 3.8 {
		t.Fatalf("linear region broken: base %.2f vscale %.2f", b4.ReplyK, v4.ReplyK)
	}
	// vScale peaks higher than the baseline.
	if r.PeakReply(scenario.VScale) < r.PeakReply(scenario.Baseline)+0.8 {
		t.Fatalf("vScale peak %.2fK vs baseline %.2fK: want clear win",
			r.PeakReply(scenario.VScale), r.PeakReply(scenario.Baseline))
	}
	// Connection time at high load: vScale much lower.
	b10 := r.Points[scenario.Baseline][2]
	v10 := r.Points[scenario.VScale][2]
	if v10.ConnMs > 0.7*b10.ConnMs {
		t.Fatalf("connection time not improved: base %.2fms vscale %.2fms", b10.ConnMs, v10.ConnMs)
	}
	if !strings.Contains(r.Render(), "reply rate") {
		t.Fatal("render broken")
	}
}

func TestAblations(t *testing.T) {
	a1, err := AblationWeightOnly(runner.Options{}, "cg")
	if err != nil {
		t.Fatal(err)
	}
	if len(a1.Exec) != 3 {
		t.Fatal("A1 variants missing")
	}
	// Weight-only sizing (VCPU-Bal) must not beat consumption-aware
	// vScale; it under-sizes when slack exists.
	if float64(a1.Exec[1]) < 0.9*float64(a1.Exec[0]) {
		t.Fatalf("weight-only %.2fs unexpectedly beats vScale %.2fs",
			a1.Exec[1].Seconds(), a1.Exec[0].Seconds())
	}
	a2, err := AblationHotplugPath(runner.Options{}, "cg")
	if err != nil {
		t.Fatal(err)
	}
	// The ms-scale reconfiguration path must be no better than the
	// µs-scale balancer.
	if float64(a2.Exec[1]) < 0.95*float64(a2.Exec[0]) {
		t.Fatalf("hotplug path %.2fs beats balancer %.2fs", a2.Exec[1].Seconds(), a2.Exec[0].Seconds())
	}
	a4, err := AblationPerVMWeight(runner.Options{}, "cg")
	if err != nil {
		t.Fatal(err)
	}
	if float64(a4.Exec[1]) < float64(a4.Exec[0]) {
		t.Fatalf("per-vCPU weight %.2fs beats per-VM weight %.2fs (it forfeits share)",
			a4.Exec[1].Seconds(), a4.Exec[0].Seconds())
	}
	a5, err := AblationCeilMargin(runner.Options{}, "cg")
	if err != nil {
		t.Fatal(err)
	}
	if len(a5.Exec) != 2 {
		t.Fatal("A5 variants missing")
	}
	for _, a := range []AblationResult{a1, a2, a4, a5} {
		if !strings.Contains(a.Render(), "Ablation") {
			t.Fatal("ablation render broken")
		}
	}
}

func TestAblationSchedulerGenerality(t *testing.T) {
	r, err := AblationSchedulerGenerality(runner.Options{}, "cg")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Exec) != 4 {
		t.Fatal("A6 variants missing")
	}
	creditSpeedup := float64(r.Exec[0]) / float64(r.Exec[1])
	vrtSpeedup := float64(r.Exec[2]) / float64(r.Exec[3])
	// The paper's generality claim: vScale must deliver a substantial
	// speedup on BOTH proportional-share schedulers.
	if creditSpeedup < 1.25 {
		t.Fatalf("credit speedup = %.2fx", creditSpeedup)
	}
	if vrtSpeedup < 1.25 {
		t.Fatalf("vrt speedup = %.2fx — extendability not scheduler-agnostic?", vrtSpeedup)
	}
}

func TestAblationDaemonPeriod(t *testing.T) {
	r, err := AblationDaemonPeriod(runner.Options{}, "cg", []sim.Time{10 * sim.Millisecond, sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Exec) != 2 {
		t.Fatal("variants missing")
	}
	// A 1-second daemon period reacts far too slowly; 10ms should be at
	// least as good.
	if float64(r.Exec[0]) > 1.1*float64(r.Exec[1]) {
		t.Fatalf("10ms period %.2fs worse than 1s period %.2fs", r.Exec[0].Seconds(), r.Exec[1].Seconds())
	}
}

func TestExtensionAdaptiveTeam(t *testing.T) {
	r, err := ExtensionAdaptiveTeam(runner.Options{}, "cg")
	if err != nil {
		t.Fatal(err)
	}
	if r.Adapted >= r.FixedExec {
		t.Fatalf("adaptive team %.2fs not faster than fixed %.2fs", r.Adapted.Seconds(), r.FixedExec.Seconds())
	}
	// The whole point: surplus spinners disappear when the team tracks
	// the active vCPU count.
	if r.AdaptSpin > r.FixedSpin/4 {
		t.Fatalf("adaptive spin %.2fs vs fixed %.2fs: spinners not eliminated",
			r.AdaptSpin.Seconds(), r.FixedSpin.Seconds())
	}
	if !strings.Contains(r.Render(), "adaptive") {
		t.Fatal("render broken")
	}
}

func TestClusterShape(t *testing.T) {
	r, err := Cluster(runner.Options{BaseSeed: 3}, nil, []int{2}, 4, 4*sim.Second, 50*sim.Millisecond, nil, "", 0, "", ClusterWarm{})
	if err != nil {
		t.Fatal(err)
	}
	fleets := r.Fleets[2]
	if len(fleets) != len(cluster.PolicyNames()) {
		t.Fatalf("ran %d fleets, want one per registered policy", len(fleets))
	}
	for i, f := range fleets {
		if f.Policy != cluster.PolicyNames()[i] {
			t.Fatalf("fleet %d ran policy %v, want %v", i, f.Policy, cluster.PolicyNames()[i])
		}
		// Every policy is driven by the same churn trace.
		if f.Placed != fleets[0].Placed || f.Load.Offered != fleets[0].Load.Offered {
			t.Fatalf("policy %v saw different churn/load than %v", f.Policy, fleets[0].Policy)
		}
		if f.Load.Replies == 0 {
			t.Fatalf("policy %v served nothing", f.Policy)
		}
	}
	out := r.Render()
	for _, want := range []string{"Cluster: 2 host(s)", "static", "hotplug", "vscale", "pid", "predictive",
		"SLO", "central dom0 monitoring", "Cost-vs-attainment frontier", "Pareto-efficient"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	m := r.Metrics()
	for _, p := range cluster.PolicyNames() {
		for _, k := range []string{"2h/" + p + "/cost_vcpu_seconds", "2h/" + p + "/attainment"} {
			if _, ok := m[k]; !ok {
				t.Fatalf("Metrics missing %q: %v", k, m)
			}
		}
		if m["2h/"+p+"/cost_vcpu_seconds"] <= 0 {
			t.Fatalf("policy %s reported non-positive cost", p)
		}
	}
	// Scaling policies must provision less than the static ceiling.
	if m["2h/vscale/cost_vcpu_seconds"] >= m["2h/static/cost_vcpu_seconds"] {
		t.Fatalf("vscale cost %.1f not below static %.1f",
			m["2h/vscale/cost_vcpu_seconds"], m["2h/static/cost_vcpu_seconds"])
	}
}

func TestClusterPolicySelection(t *testing.T) {
	r, err := Cluster(runner.Options{BaseSeed: 3}, nil, []int{1}, 4, 2*sim.Second, 50*sim.Millisecond,
		[]string{"static", "pid"}, "", 0, "", ClusterWarm{})
	if err != nil {
		t.Fatal(err)
	}
	fleets := r.Fleets[1]
	if len(fleets) != 2 || fleets[0].Policy != "static" || fleets[1].Policy != "pid" {
		t.Fatalf("selection not honoured: %+v", fleets)
	}
	out := r.Render()
	if strings.Contains(out, "hotplug") || strings.Contains(out, "predictive") {
		t.Fatalf("unselected policies leaked into the render:\n%s", out)
	}
}

// TestClusterParallelDeterminism: the cluster experiment's rendered
// report must be byte-identical whatever the per-fleet worker count.
func TestClusterParallelDeterminism(t *testing.T) {
	render := func(workers int) string {
		r, err := Cluster(runner.Options{Workers: workers, BaseSeed: 3}, nil,
			[]int{2}, 4, 3*sim.Second, 20*sim.Millisecond, nil, "", 0, "", ClusterWarm{})
		if err != nil {
			t.Fatal(err)
		}
		return r.Render()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Fatalf("serial vs 8-worker cluster output differs:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestWarmForkExperiment: the amortization experiment's two arms agree
// (WarmFork fails internally otherwise), the canonical scoreboard is
// sane, and the bench metrics carry the wall-clock series.
func TestWarmForkExperiment(t *testing.T) {
	pols := []string{"static", "pid"}
	r, err := WarmFork(runner.Options{BaseSeed: 3}, 2, 4, 5*sim.Second, 50*sim.Millisecond,
		6, pols, cluster.SyncBoundedLag, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Fleets) != 2 || r.Fleets[0].Policy != "static" || r.Fleets[1].Policy != "pid" {
		t.Fatalf("scoreboard shape wrong: %+v", r.Fleets)
	}
	if r.Epochs != 10 || r.WarmEpochs != 6 {
		t.Fatalf("epoch accounting wrong: %d epochs, %d warm", r.Epochs, r.WarmEpochs)
	}
	m := r.Metrics()
	for _, k := range []string{"straight_wall_seconds", "warm_wall_seconds", "fork_wall_seconds",
		"speedup", "static/fork_wall_seconds", "pid/straight_wall_seconds"} {
		if m[k] <= 0 {
			t.Fatalf("Metrics[%q] = %v, want > 0 (%v)", k, m[k], m)
		}
	}
	out := r.Render()
	for _, want := range []string{"Warm-fork", "static", "pid", "bit for bit"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "wall_seconds") {
		t.Fatalf("wall clocks leaked into the deterministic render:\n%s", out)
	}
	// A bad warm length must be rejected, not run.
	if _, err := WarmFork(runner.Options{}, 2, 4, 5*sim.Second, 50*sim.Millisecond,
		10, pols, cluster.SyncBoundedLag, 0); err == nil {
		t.Fatal("warm epochs == epochs accepted")
	}
}

// TestClusterWarmForkIdentity: the cluster experiment produces the same
// scoreboard straight, warm-forked, and restored from a checkpoint file
// written by a previous invocation.
func TestClusterWarmForkIdentity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "warm.ckpt")
	run := func(warm ClusterWarm) ClusterResult {
		r, err := Cluster(runner.Options{BaseSeed: 3}, nil, []int{2}, 4, 4*sim.Second,
			50*sim.Millisecond, []string{"static", "vscale"}, "", 0, "", warm)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	straight := run(ClusterWarm{Epochs: 4})
	forked := run(ClusterWarm{Epochs: 4, Fork: true, CheckpointPath: path})
	restored := run(ClusterWarm{Epochs: 4, RestorePath: path})
	if straight.Render() != forked.Render() || forked.Render() != restored.Render() {
		t.Fatalf("scoreboards differ:\n--- straight ---\n%s\n--- forked ---\n%s\n--- restored ---\n%s",
			straight.Render(), forked.Render(), restored.Render())
	}
	for i := range straight.Fleets[2] {
		if !sameFleetResult(straight.Fleets[2][i], forked.Fleets[2][i]) ||
			!sameFleetResult(forked.Fleets[2][i], restored.Fleets[2][i]) {
			t.Fatalf("fleet %d differs across arms", i)
		}
	}
	// Flag validation: fork without a warm prefix, and files with
	// multiple host counts, are rejected.
	if _, err := Cluster(runner.Options{BaseSeed: 3}, nil, []int{2}, 4, 4*sim.Second,
		50*sim.Millisecond, nil, "", 0, "", ClusterWarm{Fork: true}); err == nil {
		t.Fatal("-warmfork without -warm-epochs accepted")
	}
	if _, err := Cluster(runner.Options{BaseSeed: 3}, nil, []int{1, 2}, 4, 4*sim.Second,
		50*sim.Millisecond, nil, "", 0, "", ClusterWarm{Epochs: 4, CheckpointPath: path}); err == nil {
		t.Fatal("-checkpoint with two host counts accepted")
	}
}

func TestMotivationPhenomena(t *testing.T) {
	r, err := Motivation(runner.Options{}, 5*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	ded, base, vs := r.SpinWasteFrac["dedicated"], r.SpinWasteFrac["Xen/Linux"], r.SpinWasteFrac["vScale"]
	// (a) consolidation inflates spin waste; vScale recovers part of it.
	if base < ded+0.1 {
		t.Fatalf("baseline spin %.2f not clearly above dedicated %.2f", base, ded)
	}
	if vs >= base {
		t.Fatalf("vScale spin %.2f not below baseline %.2f", vs, base)
	}
	// (b)+(c): dedicated has no hypervisor delays; the baseline's tails
	// are tens of ms (slice-scale).
	if r.IPIDelayUs["dedicated"][2] != 0 || r.IRQDelayUs["dedicated"][2] != 0 {
		t.Fatal("dedicated host should have zero delivery delay")
	}
	if r.IPIDelayUs["Xen/Linux"][2] < 10000 {
		t.Fatalf("baseline IPI max = %.0fµs, want slice-scale tails", r.IPIDelayUs["Xen/Linux"][2])
	}
	if r.IRQDelayUs["Xen/Linux"][2] < 10000 {
		t.Fatalf("baseline IRQ max = %.0fµs, want slice-scale tails", r.IRQDelayUs["Xen/Linux"][2])
	}
	// vScale shortens the worst-case tails.
	if r.IPIDelayUs["vScale"][2] > 0.8*r.IPIDelayUs["Xen/Linux"][2] {
		t.Fatalf("vScale IPI max %.0f not clearly below baseline %.0f",
			r.IPIDelayUs["vScale"][2], r.IPIDelayUs["Xen/Linux"][2])
	}
	if !strings.Contains(r.Render(), "Figure 1") {
		t.Fatal("render broken")
	}
}

func TestSpinLabels(t *testing.T) {
	if SpinLabel(30_000_000_000) != "30B" || SpinLabel(300_000) != "300K" || SpinLabel(0) != "0" {
		t.Fatal("labels wrong")
	}
	if SpinLabel(7) != "7" {
		t.Fatal("fallback label wrong")
	}
}

func TestRegistryShape(t *testing.T) {
	names := Names()
	if len(names) < 17 {
		t.Fatalf("registry has %d entries, want >= 17", len(names))
	}
	// "all" order starts with the motivation and ends with the §7
	// extension.
	if names[0] != "figure1" || names[len(names)-1] != "extension" {
		t.Fatalf("registry order wrong: %v", names)
	}
	seen := map[string]bool{}
	for _, e := range Registry() {
		if seen[e.Name] {
			t.Fatalf("duplicate registry entry %q", e.Name)
		}
		seen[e.Name] = true
		if e.Title == "" || e.Desc == "" || e.Run == nil {
			t.Fatalf("entry %q incomplete", e.Name)
		}
	}
	if _, ok := Find("figure6"); !ok {
		t.Fatal("Find(figure6) failed")
	}
	if _, ok := Find("nonesuch"); ok {
		t.Fatal("Find(nonesuch) should fail")
	}
}

func TestRegistryRunAnalytic(t *testing.T) {
	e, ok := Find("table3")
	if !ok {
		t.Fatal("table3 missing")
	}
	res, err := e.Run(NewConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "Table 3") {
		t.Fatalf("table3 text broken:\n%s", res.Text)
	}
	if res.Report != nil {
		t.Fatal("analytic experiment should carry no runner report")
	}
}

func TestRegistrySharedSweepMemo(t *testing.T) {
	c := NewConfig()
	c.Quick = true
	c.Workers = 4
	// Shrink the shared sweep by memoizing it ourselves first: a tiny
	// one-app sweep stands in for figure6's full run.
	pre, err := NPBSweep(runner.Options{}, 4, []string{"ep"}, nil, []uint64{30_000_000_000, 300_000, 0})
	if err != nil {
		t.Fatal(err)
	}
	c.npb4 = &npbMemo{res: pre}
	f6, _ := Find("figure6")
	f9, _ := Find("figure9")
	r6, err := f6.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	r9, err := f9.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r6.Text, "Figure 6") || !strings.Contains(r9.Text, "Figure 9") {
		t.Fatal("shared-sweep renders broken")
	}
	// Both reused the memo, so neither ran fresh jobs.
	if r6.Report != nil || r9.Report != nil {
		t.Fatal("memoized sweep should not produce fresh runner reports")
	}
}
