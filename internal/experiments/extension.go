package experiments

import (
	"fmt"

	"vscale/internal/guest"
	"vscale/internal/report"
	"vscale/internal/runner"
	"vscale/internal/scenario"
	"vscale/internal/sim"
	"vscale/internal/workload"
	"vscale/internal/workload/npb"
)

// ExtensionResult compares a fixed OpenMP team with the §7 future-work
// adaptive team that resizes itself to the active vCPU count between
// parallel regions.
type ExtensionResult struct {
	App       string
	FixedExec sim.Time
	Adapted   sim.Time
	FixedSpin sim.Time
	AdaptSpin sim.Time
	FixedWait sim.Time
	AdaptWait sim.Time
}

// ExtensionAdaptiveTeam runs the comparison under vScale with heavy
// user-level spinning — the regime where surplus spinners on a shrunken
// VM hurt the most. The fixed and adaptive runs execute as parallel
// jobs.
func ExtensionAdaptiveTeam(opts runner.Options, app string) (ExtensionResult, error) {
	p, err := npb.ProfileFor(app)
	if err != nil {
		return ExtensionResult{}, err
	}
	type row struct{ exec, spin, wait sim.Time }
	rows, err := runner.Run(opts, 2, func(ctx runner.Context) (row, error) {
		adaptive := ctx.Index == 1
		s := scenario.DefaultSetup()
		s.Mode = scenario.VScale
		s.Tracer = ctx.Tracer
		b := scenario.Build(s)
		r, err := b.RunApp(func(k *guest.Kernel) *workload.App {
			budget := guest.SpinBudgetFromCount(30_000_000_000)
			if adaptive {
				return npb.AdaptiveLaunch(k, p, s.VMVCPUs, budget)
			}
			return npb.Launch(k, p, s.VMVCPUs, budget)
		}, 600*sim.Second)
		if err != nil {
			return row{}, err
		}
		var spin sim.Time
		for i := 0; i < b.K.NCPUs(); i++ {
			spin += b.K.CPUStatsOf(i).UserSpinTime
		}
		return row{r.ExecTime, spin, r.WaitTime}, nil
	})
	if err != nil {
		return ExtensionResult{}, err
	}
	res := ExtensionResult{App: app}
	res.FixedExec, res.FixedSpin, res.FixedWait = rows[0].exec, rows[0].spin, rows[0].wait
	res.Adapted, res.AdaptSpin, res.AdaptWait = rows[1].exec, rows[1].spin, rows[1].wait
	return res, nil
}

// Render produces the comparison table.
func (r ExtensionResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Extension (§7): vScale-aware adaptive OpenMP team (%s, spin=30B, vScale host)", r.App),
		"team", "exec (s)", "user spin (s)", "VM wait (s)")
	t.AddRow("fixed (online vCPUs at start)",
		fmt.Sprintf("%.2f", r.FixedExec.Seconds()),
		fmt.Sprintf("%.2f", r.FixedSpin.Seconds()),
		fmt.Sprintf("%.2f", r.FixedWait.Seconds()))
	t.AddRow("adaptive (active vCPUs per region)",
		fmt.Sprintf("%.2f", r.Adapted.Seconds()),
		fmt.Sprintf("%.2f", r.AdaptSpin.Seconds()),
		fmt.Sprintf("%.2f", r.AdaptWait.Seconds()))
	return t.String()
}
