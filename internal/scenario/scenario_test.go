package scenario

import (
	"testing"

	"vscale/internal/guest"
	"vscale/internal/sim"
	"vscale/internal/workload"
	"vscale/internal/workload/npb"
)

func runNPB(t *testing.T, app string, mode Mode, spin uint64, vcpus int) AppResult {
	t.Helper()
	s := DefaultSetup()
	s.Mode = mode
	s.VMVCPUs = vcpus
	b := Build(s)
	p, err := npb.ProfileFor(app)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.RunApp(func(k *guest.Kernel) *workload.App {
		return npb.Launch(k, p, vcpus, guest.SpinBudgetFromCount(spin))
	}, 600*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestVScaleAcceleratesSpinHeavyNPB(t *testing.T) {
	// The headline result (Figure 6a): with heavy user-level spinning
	// (GOMP_SPINCOUNT=30B) on an oversubscribed host, vScale
	// substantially reduces execution time for barrier-bound apps.
	base := runNPB(t, "cg", Baseline, 30_000_000_000, 4)
	vs := runNPB(t, "cg", VScale, 30_000_000_000, 4)
	if base.TimedOut || vs.TimedOut {
		t.Fatalf("runs timed out: base=%v vscale=%v", base.TimedOut, vs.TimedOut)
	}
	speedup := float64(base.ExecTime) / float64(vs.ExecTime)
	t.Logf("cg: baseline %v, vscale %v (%.2fx)", base.ExecTime, vs.ExecTime, speedup)
	if speedup < 1.25 {
		t.Fatalf("vScale speedup = %.2fx, want >= 1.25x for cg with heavy spinning", speedup)
	}
	// vScale must also slash the VM's scheduling delay (Figure 9: >90%).
	waitPerSec := func(r AppResult) float64 {
		return float64(r.WaitTime) / float64(r.ExecTime)
	}
	if waitPerSec(vs) > 0.5*waitPerSec(base) {
		t.Fatalf("waiting-time fraction not reduced: base %.3f vs vscale %.3f",
			waitPerSec(base), waitPerSec(vs))
	}
	// And it should have actually scaled down below 4 vCPUs on average.
	if vs.AvgActiveVCPUs >= 3.9 {
		t.Fatalf("avg active vCPUs = %.2f; vScale never scaled", vs.AvgActiveVCPUs)
	}
}

func TestVScaleHelpsLittleForEP(t *testing.T) {
	// ep has almost no synchronisation: vScale should neither help much
	// nor hurt much (Figure 6: ep is insensitive).
	base := runNPB(t, "ep", Baseline, 30_000_000_000, 4)
	vs := runNPB(t, "ep", VScale, 30_000_000_000, 4)
	ratio := float64(vs.ExecTime) / float64(base.ExecTime)
	t.Logf("ep: baseline %v, vscale %v (ratio %.2f)", base.ExecTime, vs.ExecTime, ratio)
	if ratio > 1.25 {
		t.Fatalf("vScale slowed ep down by %.0f%%", (ratio-1)*100)
	}
}

func TestLUGainsRegardlessOfPolicy(t *testing.T) {
	// lu's hand-rolled busy-wait pipeline is beyond OpenMP's control:
	// vScale's gain shows up at every spin policy (paper: >60% at all
	// three).
	for _, spin := range []uint64{30_000_000_000, 300_000, 0} {
		base := runNPB(t, "lu", Baseline, spin, 4)
		vs := runNPB(t, "lu", VScale, spin, 4)
		speedup := float64(base.ExecTime) / float64(vs.ExecTime)
		t.Logf("lu spin=%d: baseline %v vscale %v (%.2fx)", spin, base.ExecTime, vs.ExecTime, speedup)
		if speedup < 1.2 {
			t.Fatalf("spin=%d: lu speedup only %.2fx", spin, speedup)
		}
	}
}

func TestIPIRateGrowsAsSpinningShrinks(t *testing.T) {
	// Figure 10: with heavy spinning, almost no IPIs; with passive
	// waiting, futex wakeups drive IPIs up.
	heavy := runNPB(t, "sp", Baseline, 30_000_000_000, 4)
	passive := runNPB(t, "sp", Baseline, 0, 4)
	t.Logf("sp IPIs/vCPU/s: spin=30B %.0f, spin=0 %.0f", heavy.IPIsPerVCPUSec, passive.IPIsPerVCPUSec)
	if passive.IPIsPerVCPUSec < 5*heavy.IPIsPerVCPUSec || passive.IPIsPerVCPUSec < 50 {
		t.Fatalf("IPI profile wrong: heavy %.1f vs passive %.1f", heavy.IPIsPerVCPUSec, passive.IPIsPerVCPUSec)
	}
}

func TestModesEnumerateAndLabel(t *testing.T) {
	if len(Modes()) != 4 {
		t.Fatal("want 4 modes")
	}
	for _, m := range Modes() {
		if m.String() == "" {
			t.Fatal("empty label")
		}
	}
}

func TestBuildConsolidationRatio(t *testing.T) {
	b := Build(DefaultSetup())
	// 8 pCPUs, ratio 2 → 16 vCPUs total: 4 for the VM + 6 bg VMs × 2.
	if len(b.BG) != 6 {
		t.Fatalf("background VMs = %d, want 6", len(b.BG))
	}
	total := b.Setup.VMVCPUs
	for range b.BG {
		total += 2
	}
	if total != 16 {
		t.Fatalf("total vCPUs = %d", total)
	}
	s := DefaultSetup()
	s.NoBackground = true
	if b2 := Build(s); len(b2.BG) != 0 {
		t.Fatal("NoBackground ignored")
	}
}

func TestDeterministicScenario(t *testing.T) {
	r1 := runNPB(t, "mg", VScale, 300_000, 4)
	r2 := runNPB(t, "mg", VScale, 300_000, 4)
	if r1.ExecTime != r2.ExecTime || r1.WaitTime != r2.WaitTime {
		t.Fatalf("scenario not deterministic: %+v vs %+v", r1, r2)
	}
}
