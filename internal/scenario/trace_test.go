package scenario

import (
	"bytes"
	"testing"

	"vscale/internal/guest"
	"vscale/internal/sim"
	"vscale/internal/trace"
	"vscale/internal/workload"
	"vscale/internal/workload/npb"
)

// runTraced builds and runs one cg scenario, optionally traced, and
// returns the Built host plus the run result.
func runTraced(t *testing.T, tr *trace.Tracer) (*Built, AppResult) {
	t.Helper()
	s := DefaultSetup()
	s.Mode = VScale
	s.Tracer = tr
	b := Build(s)
	p, err := npb.ProfileFor("cg")
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.RunApp(func(k *guest.Kernel) *workload.App {
		return npb.Launch(k, p, s.VMVCPUs, guest.SpinBudgetFromCount(300_000))
	}, 120*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("run timed out")
	}
	return b, res
}

// TestTraceExportDeterministic: two runs with the same seed produce
// byte-identical Chrome exports.
func TestTraceExportDeterministic(t *testing.T) {
	var outs [2]bytes.Buffer
	for i := 0; i < 2; i++ {
		tr := trace.New(trace.Config{RingCapacity: 1 << 14})
		b, _ := runTraced(t, tr)
		tr.SetEngineCounters(b.Eng.Scheduled, b.Eng.Cancelled, b.Eng.Processed)
		if err := tr.WriteChrome(&outs[i], b.Eng.Now()); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(outs[0].Bytes(), outs[1].Bytes()) {
		t.Fatalf("same seed produced different exports (%d vs %d bytes)",
			outs[0].Len(), outs[1].Len())
	}
}

// TestTracingHasZeroObserverEffect: enabling the tracer must not change
// the simulation in any way — same results, same event counts.
func TestTracingHasZeroObserverEffect(t *testing.T) {
	bOff, resOff := runTraced(t, nil)
	bOn, resOn := runTraced(t, trace.New(trace.Config{RingCapacity: 1 << 12}))

	if resOff != resOn {
		t.Fatalf("tracing changed the run result:\n  off: %+v\n  on:  %+v", resOff, resOn)
	}
	if bOff.Eng.Processed != bOn.Eng.Processed ||
		bOff.Eng.Scheduled != bOn.Eng.Scheduled ||
		bOff.Eng.Cancelled != bOn.Eng.Cancelled {
		t.Fatalf("tracing changed engine event counts: off=(%d,%d,%d) on=(%d,%d,%d)",
			bOff.Eng.Scheduled, bOff.Eng.Cancelled, bOff.Eng.Processed,
			bOn.Eng.Scheduled, bOn.Eng.Cancelled, bOn.Eng.Processed)
	}
	if bOff.Eng.Now() != bOn.Eng.Now() {
		t.Fatalf("tracing changed the final clock: %v vs %v", bOff.Eng.Now(), bOn.Eng.Now())
	}
	if bOn.Tracer.Total() == 0 {
		t.Fatal("enabled tracer recorded nothing")
	}
}

// TestScheduleDwellSumsToElapsed: every vCPU's dwell times must sum to
// the elapsed virtual time within 0.1% (they are exact by construction;
// the tolerance only covers the integer-ns arithmetic).
func TestScheduleDwellSumsToElapsed(t *testing.T) {
	tr := trace.New(trace.Config{RingCapacity: 1 << 12})
	b, _ := runTraced(t, tr)
	end := b.Eng.Now()
	snap := tr.Snapshot(end)
	if len(snap.VCPUs) == 0 {
		t.Fatal("snapshot has no vCPUs")
	}
	for _, v := range snap.VCPUs {
		diff := v.Total - end
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.001*float64(end) {
			t.Errorf("%s.vcpu%d dwell sum %v != elapsed %v (off by %v)",
				v.DomName, v.VCPU, v.Total, end, diff)
		}
	}
}
