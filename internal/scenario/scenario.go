// Package scenario assembles the paper's experimental setups: a pCPU
// pool, the SMP-VM under test, and enough photo-slideshow background VMs
// to keep the consolidation ratio at 2 vCPUs per pCPU (§5.2.1), under
// one of the four configurations compared throughout §5.2 — vanilla
// Xen/Linux, Xen/Linux with pv-spinlocks, vScale, and vScale with
// pv-spinlocks.
package scenario

import (
	"fmt"

	"vscale/internal/guest"
	"vscale/internal/sim"
	"vscale/internal/trace"
	"vscale/internal/workload"
	"vscale/internal/xen"
)

// Mode selects one of the paper's four configurations.
type Mode int

// The four configurations of Figures 6, 7, 11, 12 and 14.
const (
	// Baseline is vanilla Xen/Linux.
	Baseline Mode = iota
	// PVLock adds paravirtual ticket spinlocks in the guest.
	PVLock
	// VScale enables the vScale daemon/balancer and the hypervisor
	// extension.
	VScale
	// VScalePVLock combines both (they compose, working at different
	// layers).
	VScalePVLock
)

func (m Mode) String() string {
	switch m {
	case Baseline:
		return "Xen/Linux"
	case PVLock:
		return "Xen/Linux + pvlock"
	case VScale:
		return "vScale"
	case VScalePVLock:
		return "vScale + pvlock"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Modes lists all four configurations in figure order.
func Modes() []Mode { return []Mode{Baseline, PVLock, VScale, VScalePVLock} }

// Setup describes one experiment host.
type Setup struct {
	// PCPUs is the domU pool size (the paper's testbed gives domUs a
	// dedicated pool; dom0 runs elsewhere).
	PCPUs int
	// VMVCPUs is the vCPU count of the VM under test.
	VMVCPUs int
	// BackgroundVMs overrides the background-VM count; when 0, enough
	// 2-vCPU slideshow VMs are launched to reach ConsolidationRatio.
	BackgroundVMs int
	// ConsolidationRatio is vCPUs per pCPU (paper: 2).
	ConsolidationRatio float64
	// Mode is the configuration under test.
	Mode Mode
	// Policy selects the hypervisor scheduling policy (credit default;
	// the VRT policy demonstrates that vScale is scheduler-agnostic —
	// ablation A6).
	Policy xen.SchedPolicy
	// Seed drives all randomness.
	Seed uint64

	// WeightOnly makes the daemon size the VM from its weight-based fair
	// share only, ignoring consumption — the VCPU-Bal policy (ablation
	// A1).
	WeightOnly bool
	// ReconfigDelay, when non-nil, delays every freeze/unfreeze by the
	// sampled latency — the dom0/CPU-hotplug reconfiguration path
	// (ablation A2).
	ReconfigDelay func(r *sim.Rand) sim.Time
	// PerVCPUWeight reverts the hypervisor to unpatched per-vCPU weight
	// accounting (ablation A4).
	PerVCPUWeight bool
	// DaemonPeriod overrides the daemon poll period (ablation A3).
	DaemonPeriod sim.Time
	// PureCeil uses Algorithm 1's pure ceiling instead of the default
	// fragmentation margin when sizing the VM (ablation A5).
	PureCeil bool
	// NoBackground disables the slideshow VMs entirely (dedicated host).
	NoBackground bool
	// LightBackground switches the slideshow VMs to a low duty cycle
	// (~20%), the regime where weight-only sizing (VCPU-Bal) leaves most
	// of the machine's slack unclaimed.
	LightBackground bool
	// Background, when non-nil, overrides the slideshow profile of the
	// background VMs entirely.
	Background *workload.Slideshow

	// Tracer, when non-nil, receives trace records from all three layers
	// (sim engine dispatches, hypervisor scheduling, guest kernel). It is
	// the only tracing hook: there is no package-level default, so
	// concurrent scenario runs (internal/runner) can never share a
	// collector by accident. Give each run its own Tracer and combine
	// them afterwards with trace.Merge. Tracing is purely observational:
	// enabling it never changes simulation results.
	Tracer *trace.Tracer
}

// DefaultSetup returns the paper-like configuration: 8 pool pCPUs, a
// 4-vCPU VM, 2:1 consolidation.
func DefaultSetup() Setup {
	return Setup{
		PCPUs:              8,
		VMVCPUs:            4,
		ConsolidationRatio: 2,
		Mode:               Baseline,
		Seed:               1,
	}
}

// Built is an assembled scenario ready to run workloads on.
type Built struct {
	Setup  Setup
	Eng    *sim.Engine
	Pool   *xen.Pool
	VM     *xen.Domain
	K      *guest.Kernel
	BG     []*guest.Kernel
	Tracer *trace.Tracer // nil when tracing is disabled
}

// DefaultWarmup is the warm-up window run before a measured request
// window in the single-host HTTP scenarios: long enough for the guest
// to boot, the scheduler to settle and the server to reach steady
// state, short enough not to dominate a run. Shared by every driver
// that warms an httpd scenario (Figure 14, the vscalesim httpd
// workload) so "warm" means the same thing everywhere.
const DefaultWarmup = 2 * sim.Second

// WeightPerVCPU is the credit-scheduler weight granted per vCPU: a
// domain's weight is proportional to its vCPU count, so the hypervisor
// treats all vCPUs equally (the paper's weight configuration). Shared
// by every scenario builder, including the cluster control plane, so
// placement's extendability probes use the same weight scale the hosts
// schedule with.
const WeightPerVCPU = 128.0

// Build assembles the host, VM under test and background VMs. Guests are
// booted; the scheduler is started.
func Build(s Setup) *Built {
	if s.PCPUs <= 0 || s.VMVCPUs <= 0 {
		panic("scenario: PCPUs and VMVCPUs must be positive")
	}
	if s.ConsolidationRatio == 0 {
		s.ConsolidationRatio = 2
	}
	eng := sim.NewEngine(s.Seed)
	tr := s.Tracer
	if tr != nil {
		eng.SetObserver(tr.SimEvent)
	}
	xcfg := xen.DefaultConfig(s.PCPUs)
	xcfg.Policy = s.Policy
	xcfg.VScale = s.Mode == VScale || s.Mode == VScalePVLock
	xcfg.PerVCPUWeight = s.PerVCPUWeight
	pool := xen.NewPool(eng, xcfg)
	pool.SetTracer(tr)

	vm := pool.AddDomain("vm", WeightPerVCPU*float64(s.VMVCPUs), s.VMVCPUs, nil)

	gcfg := guest.DefaultConfig()
	gcfg.Seed = s.Seed * 7919
	gcfg.PVSpinlock = s.Mode == PVLock || s.Mode == VScalePVLock
	gcfg.VScale.Enabled = xcfg.VScale
	if s.DaemonPeriod > 0 {
		gcfg.VScale.Period = s.DaemonPeriod
	}
	gcfg.VScale.WeightOnly = s.WeightOnly
	gcfg.VScale.ReconfigDelay = s.ReconfigDelay
	gcfg.VScale.UsePureCeil = s.PureCeil
	k := guest.NewKernel(vm, gcfg)
	k.SpawnPerCPUKthreads()

	b := &Built{Setup: s, Eng: eng, Pool: pool, VM: vm, K: k, Tracer: tr}

	nbg := s.BackgroundVMs
	if nbg == 0 && !s.NoBackground {
		want := int(s.ConsolidationRatio*float64(s.PCPUs)) - s.VMVCPUs
		nbg = want / 2
		if nbg < 0 {
			nbg = 0
		}
	}
	if s.NoBackground {
		nbg = 0
	}
	show := workload.DefaultSlideshow()
	if s.LightBackground {
		show.IdleMin, show.IdleMax = 3*show.BurstMin, 5*show.BurstMax
	}
	if s.Background != nil {
		show = *s.Background
	}
	for i := 0; i < nbg; i++ {
		dom := pool.AddDomain(fmt.Sprintf("bg%d", i), WeightPerVCPU*2, 2, nil)
		bcfg := guest.DefaultConfig()
		bcfg.Seed = s.Seed*104729 + uint64(i)*31
		bk := guest.NewKernel(dom, bcfg)
		app := workload.NewApp(bk, "slideshow")
		show.Start(app)
		bk.Boot()
		b.BG = append(b.BG, bk)
	}

	pool.Start()
	k.Boot()
	return b
}

// AppResult captures the per-run metrics the paper reports.
type AppResult struct {
	Mode     Mode
	ExecTime sim.Time
	// WaitTime is the VM's total scheduling delay accumulated during the
	// run (Figure 9's metric).
	WaitTime sim.Time
	// IPIsPerVCPUSec is the mean reschedule-IPI delivery rate per vCPU
	// (Figures 10 and 13).
	IPIsPerVCPUSec float64
	// AvgActiveVCPUs is the time-weighted active-vCPU count (Figure 8's
	// aggregate).
	AvgActiveVCPUs float64
	// TimedOut reports that the run hit the deadline before finishing.
	TimedOut bool
}

// RunApp launches an application via launch and runs the simulation
// until it completes (or deadline passes), returning the metrics. The
// error is non-nil only when the engine aborts (event limit exceeded);
// a deadline overrun is not an error — it is reported via
// AppResult.TimedOut, mirroring how the paper's timed-out runs are
// still data points.
func (b *Built) RunApp(launch func(k *guest.Kernel) *workload.App, deadline sim.Time) (AppResult, error) {
	return b.RunAppObserved(launch, deadline, 0, nil)
}

// RunAppObserved is RunApp with a periodic observation hook: observe is
// called with the engine parked at every epoch boundary (and once at
// the end of the run), so telemetry collectors can sample kernel, pool
// and domain state without scheduling a single engine event. The event
// stream — and therefore every simulation result — is identical to
// RunApp's: the run is merely chunked into epoch-length RunUntil calls,
// and observe must only read. epoch <= 0 or a nil observe degenerates
// to a single RunUntil.
func (b *Built) RunAppObserved(launch func(k *guest.Kernel) *workload.App, deadline, epoch sim.Time, observe func(now sim.Time)) (AppResult, error) {
	startWait := b.VM.TotalWaitTime
	var startIPIs uint64
	for i := 0; i < b.K.NCPUs(); i++ {
		startIPIs += b.K.CPUStatsOf(i).ReschedIPIs
	}
	start := b.Eng.Now()

	app := launch(b.K)
	app.OnDone = func(*workload.App) { b.Eng.Stop() }
	stop := start + deadline
	if observe == nil || epoch <= 0 {
		if err := b.Eng.RunUntil(stop); err != nil {
			return AppResult{}, fmt.Errorf("scenario %q: %w", b.Setup.Mode, err)
		}
	} else {
		for i := 1; ; i++ {
			next := start + sim.Time(i)*epoch
			if next > stop {
				next = stop
			}
			if err := b.Eng.RunUntil(next); err != nil {
				return AppResult{}, fmt.Errorf("scenario %q: %w", b.Setup.Mode, err)
			}
			observe(b.Eng.Now())
			if app.Done() || b.Eng.Now() >= stop {
				break
			}
		}
	}
	end := b.Eng.Now()

	var endIPIs uint64
	for i := 0; i < b.K.NCPUs(); i++ {
		endIPIs += b.K.CPUStatsOf(i).ReschedIPIs
	}
	res := AppResult{
		Mode:           b.Setup.Mode,
		ExecTime:       app.ExecTime(),
		WaitTime:       b.VM.TotalWaitTime - startWait,
		AvgActiveVCPUs: b.K.AverageActiveVCPUs(),
		TimedOut:       !app.Done(),
	}
	if res.TimedOut {
		res.ExecTime = end - start
	}
	if dur := end - start; dur > 0 {
		res.IPIsPerVCPUSec = float64(endIPIs-startIPIs) / float64(b.K.NCPUs()) / sim.Time(dur).Seconds()
	}
	b.FinishTrace()
	return res, nil
}

// FinishTrace copies the engine's event counters into the scenario's
// tracer so exports show the drop accounting. RunApp calls it on every
// completion; callers driving Eng.RunUntil directly (the Apache load
// loop, the motivation experiment) should call it once before
// exporting. No-op without a tracer; safe to call repeatedly.
func (b *Built) FinishTrace() {
	if b.Tracer == nil {
		return
	}
	b.Tracer.SetEngineCounters(b.Eng.Scheduled, b.Eng.Cancelled, b.Eng.Processed)
}
