package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"vscale/internal/sim"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d", c.Value())
	}
	if r := c.Rate(0, 5*sim.Second); r != 1 {
		t.Fatalf("rate = %f", r)
	}
	if r := c.Rate(sim.Second, sim.Second); r != 0 {
		t.Fatal("zero window rate must be 0")
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset")
	}
}

func TestSummaryMoments(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(v)
	}
	if s.Count() != 8 {
		t.Fatal("count")
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %f", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %f/%f", s.Min(), s.Max())
	}
	if math.Abs(s.Variance()-4) > 1e-9 {
		t.Fatalf("variance = %f", s.Variance())
	}
	if math.Abs(s.Stddev()-2) > 1e-9 {
		t.Fatalf("stddev = %f", s.Stddev())
	}
	if math.Abs(s.Sum()-40) > 1e-9 {
		t.Fatalf("sum = %f", s.Sum())
	}
	s.Reset()
	if s.Count() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("reset")
	}
}

// TestSummarySumExact: Sum must be the plain left-to-right accumulation
// of the observations, bit for bit — not the mean*count reconstruction,
// whose per-update Welford rounding drifts on long mixed-sign streams.
func TestSummarySumExact(t *testing.T) {
	r := sim.NewRand(7)
	var s Summary
	var acc float64
	for i := 0; i < 10000; i++ {
		v := r.Float64()*1e6 - 3e5
		s.Observe(v)
		acc += v
	}
	if s.Sum() != acc {
		t.Fatalf("Sum() = %v, want exact accumulation %v", s.Sum(), acc)
	}
	// This stream is one where the old reconstruction demonstrably
	// drifts; the test would not distinguish the implementations
	// otherwise.
	if rec := s.Mean() * float64(s.Count()); rec == acc {
		t.Fatalf("mean*count = %v did not drift; pick a stream that exposes the difference", rec)
	}
}

func TestSummaryMatchesSample(t *testing.T) {
	f := func(vals []float64) bool {
		var su Summary
		var sa Sample
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			su.Observe(v)
			sa.Observe(v)
		}
		if su.Count() == 0 {
			return true
		}
		return math.Abs(su.Mean()-sa.Mean()) < 1e-6*(1+math.Abs(sa.Mean())) &&
			su.Min() == sa.Min() && su.Max() == sa.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	if q := s.Quantile(0); q != 1 {
		t.Fatalf("q0 = %f", q)
	}
	if q := s.Quantile(1); q != 100 {
		t.Fatalf("q1 = %f", q)
	}
	if q := s.Quantile(0.5); math.Abs(q-50.5) > 1e-9 {
		t.Fatalf("median = %f", q)
	}
	if q := s.Quantile(0.99); math.Abs(q-99.01) > 1e-9 {
		t.Fatalf("p99 = %f", q)
	}
}

func TestSampleQuantileMonotone(t *testing.T) {
	r := sim.NewRand(3)
	var s Sample
	for i := 0; i < 1000; i++ {
		s.Observe(r.Float64() * 100)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%f: %f < %f", q, v, prev)
		}
		prev = v
	}
}

func TestSampleCDF(t *testing.T) {
	var s Sample
	for i := 1; i <= 1000; i++ {
		s.Observe(float64(i))
	}
	cdf := s.CDF(10)
	if len(cdf) != 10 {
		t.Fatalf("cdf points = %d", len(cdf))
	}
	if cdf[len(cdf)-1].Fraction != 1 {
		t.Fatalf("last fraction = %f", cdf[len(cdf)-1].Fraction)
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value < cdf[i-1].Value || cdf[i].Fraction <= cdf[i-1].Fraction {
			t.Fatalf("cdf not monotone: %+v", cdf)
		}
	}
	if s.CDF(0) != nil {
		t.Fatal("0-point CDF should be nil")
	}
	var empty Sample
	if empty.CDF(5) != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestSampleValuesSortedCopy(t *testing.T) {
	var s Sample
	s.Observe(3)
	s.Observe(1)
	s.Observe(2)
	vs := s.Values()
	if vs[0] != 1 || vs[1] != 2 || vs[2] != 3 {
		t.Fatalf("values = %v", vs)
	}
	vs[0] = 99 // mutation must not leak back
	if s.Min() != 1 {
		t.Fatal("Values must return a copy")
	}
}

func TestTimeWeightedAverage(t *testing.T) {
	var tw TimeWeighted
	tw.Set(0, 4)
	tw.Set(2*sim.Second, 2) // 4 for 2s
	tw.Set(3*sim.Second, 8) // 2 for 1s
	// then 8 for 1s -> (8+2+8)/4 = 4.5
	if avg := tw.Average(4 * sim.Second); math.Abs(avg-4.5) > 1e-9 {
		t.Fatalf("avg = %f", avg)
	}
	if tw.Value() != 8 {
		t.Fatalf("value = %f", tw.Value())
	}
}

func TestTimeWeightedDegenerate(t *testing.T) {
	var tw TimeWeighted
	if tw.Average(0) != 0 {
		t.Fatal("empty average")
	}
	tw.Set(sim.Second, 5)
	if tw.Average(sim.Second) != 5 {
		t.Fatal("zero-span average should be current value")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Append(1, 10)
	s.Append(2, 30)
	s.Append(3, 20)
	if y, ok := s.YAt(2); !ok || y != 30 {
		t.Fatalf("YAt(2) = %f,%v", y, ok)
	}
	if _, ok := s.YAt(9); ok {
		t.Fatal("YAt(9) should miss")
	}
	if s.MaxY() != 30 {
		t.Fatalf("MaxY = %f", s.MaxY())
	}
	var empty Series
	if empty.MaxY() != 0 {
		t.Fatal("empty MaxY")
	}
}
