// Package metrics provides the measurement primitives used throughout
// the vScale reproduction: counters, rate meters, streaming summaries,
// exact-sample histograms/CDFs, and time-weighted gauges. All of them
// operate on virtual time from internal/sim.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"vscale/internal/sim"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta. The parameter is unsigned, so monotonicity holds by
// construction (a negative delta cannot be expressed). The addition is
// unchecked: a sum past 2^64-1 wraps around, which no simulation gets
// anywhere near (that would be ~584 years of nanosecond-rate events).
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Rate returns events per virtual second over the window [start, end].
func (c *Counter) Rate(start, end sim.Time) float64 {
	if end <= start {
		return 0
	}
	return float64(c.n) / (end - start).Seconds()
}

// Summary accumulates scalar samples and exposes count/sum/mean/min/max
// and variance via Welford's algorithm. It does not retain samples.
type Summary struct {
	n        uint64
	sum      float64
	mean, m2 float64
	min, max float64
}

// Observe records one sample.
func (s *Summary) Observe(v float64) {
	if s.n == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.n++
	s.sum += v
	d := v - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v - s.mean)
}

// Count returns the number of samples.
func (s *Summary) Count() uint64 { return s.n }

// Mean returns the sample mean (0 with no samples).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest sample (0 with no samples).
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest sample (0 with no samples).
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Sum returns the exact running sum of the observations. It is tracked
// directly rather than reconstructed as mean*count: the Welford mean
// carries per-update rounding, so the reconstruction drifts from the
// plain accumulation a scrape consumer would expect of a _sum series.
func (s *Summary) Sum() float64 { return s.sum }

// Variance returns the population variance.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// Stddev returns the population standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// Reset clears the summary.
func (s *Summary) Reset() { *s = Summary{} }

// String renders "n=…, mean=…, min=…, max=…".
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f min=%.3f max=%.3f", s.n, s.Mean(), s.Min(), s.Max())
}

// Sample retains every observation for exact quantiles and CDF export.
// The experiments retain at most a few hundred thousand samples, so the
// memory cost is acceptable and exactness is preferred over sketches.
type Sample struct {
	vs     []float64
	sorted bool
}

// Observe appends one value.
func (s *Sample) Observe(v float64) {
	s.vs = append(s.vs, v)
	s.sorted = false
}

// Count returns the number of retained values.
func (s *Sample) Count() int { return len(s.vs) }

// Mean returns the arithmetic mean.
func (s *Sample) Mean() float64 {
	if len(s.vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.vs {
		sum += v
	}
	return sum / float64(len(s.vs))
}

// Min returns the smallest retained value (0 if empty).
func (s *Sample) Min() float64 {
	s.sort()
	if len(s.vs) == 0 {
		return 0
	}
	return s.vs[0]
}

// Max returns the largest retained value (0 if empty).
func (s *Sample) Max() float64 {
	s.sort()
	if len(s.vs) == 0 {
		return 0
	}
	return s.vs[len(s.vs)-1]
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.vs)
		s.sorted = true
	}
}

// Quantile returns the q-quantile (0<=q<=1) using linear interpolation.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.vs) == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min()
	}
	if q >= 1 {
		return s.Max()
	}
	s.sort()
	pos := q * float64(len(s.vs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.vs[lo]
	}
	frac := pos - float64(lo)
	return s.vs[lo]*(1-frac) + s.vs[hi]*frac
}

// CDF returns (value, cumulative fraction) pairs at up to points evenly
// spaced ranks, suitable for plotting Figure-5-style curves.
func (s *Sample) CDF(points int) []CDFPoint {
	s.sort()
	n := len(s.vs)
	if n == 0 || points <= 0 {
		return nil
	}
	if points > n {
		points = n
	}
	out := make([]CDFPoint, 0, points)
	for i := 1; i <= points; i++ {
		idx := i*n/points - 1
		out = append(out, CDFPoint{Value: s.vs[idx], Fraction: float64(idx+1) / float64(n)})
	}
	return out
}

// Values returns a copy of the retained values in sorted order.
func (s *Sample) Values() []float64 {
	s.sort()
	out := make([]float64, len(s.vs))
	copy(out, s.vs)
	return out
}

// Reset discards retained values.
func (s *Sample) Reset() { s.vs = s.vs[:0]; s.sorted = false }

// Merge appends every value retained by o (which may be nil). It exists
// so aggregators outside this package — trace.Merge combining per-run
// tracers — can pool exact samples without access to the raw slice.
func (s *Sample) Merge(o *Sample) {
	if o == nil || len(o.vs) == 0 {
		return
	}
	s.vs = append(s.vs, o.vs...)
	s.sorted = false
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// TimeWeighted tracks the time-weighted average of a step function, e.g.
// "number of active vCPUs over the run" or utilization.
type TimeWeighted struct {
	last     sim.Time
	value    float64
	weighted float64
	started  bool
	start    sim.Time
}

// Set records that the tracked quantity changed to v at time now.
func (tw *TimeWeighted) Set(now sim.Time, v float64) {
	if !tw.started {
		tw.started = true
		tw.start = now
	} else {
		tw.weighted += tw.value * float64(now-tw.last)
	}
	tw.last = now
	tw.value = v
}

// Value returns the current level.
func (tw *TimeWeighted) Value() float64 { return tw.value }

// Average returns the time-weighted mean over [start, now].
func (tw *TimeWeighted) Average(now sim.Time) float64 {
	if !tw.started || now <= tw.start {
		return tw.value
	}
	total := tw.weighted + tw.value*float64(now-tw.last)
	return total / float64(now-tw.start)
}

// Series is an (x, y) series, used for figures plotted against request
// rate, time, etc.
type Series struct {
	Name   string
	Points []Point
}

// Point is one (x, y) sample of a Series.
type Point struct {
	X, Y float64
}

// Append adds a point.
func (s *Series) Append(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// YAt returns the Y of the first point with the given X, and whether it
// exists.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// MaxY returns the largest Y in the series (0 if empty).
func (s *Series) MaxY() float64 {
	var m float64
	for i, p := range s.Points {
		if i == 0 || p.Y > m {
			m = p.Y
		}
	}
	return m
}
