package metrics

import (
	"math"
	"testing"
)

// unitBounds returns bounds 1,2,...,n so that observing each integer
// 1..n exactly once makes every quantile exactly computable: the value
// k sits alone in bucket (k-1, k], and the interpolated q-quantile is
// exactly q*n.
func unitBounds(n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i + 1)
	}
	return b
}

func TestHistogramExactQuantiles(t *testing.T) {
	h := NewHistogram(unitBounds(100))
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d, want 100", h.Count())
	}
	if h.Sum() != 5050 {
		t.Fatalf("Sum = %g, want 5050", h.Sum())
	}
	if h.Mean() != 50.5 {
		t.Fatalf("Mean = %g, want 50.5", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("Min/Max = %g/%g, want 1/100", h.Min(), h.Max())
	}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {0.01, 1}, {0.25, 25}, {0.5, 50}, {0.75, 75},
		{0.90, 90}, {0.95, 95}, {0.99, 99}, {1, 100},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	// 10 observations all in one bucket (10, 20]: quantiles spread
	// linearly across the bucket.
	h := NewHistogram([]float64{10, 20, 30})
	for i := 0; i < 10; i++ {
		h.Observe(15)
	}
	// All mass in bucket (10,20]; q=0.5 -> 10 + 10*(5/10) = 15.
	if got := h.Quantile(0.5); math.Abs(got-15) > 1e-9 {
		t.Errorf("Quantile(0.5) = %g, want 15", got)
	}
	// Clamping: interpolation would give 12 for q=0.2, but min=15.
	if got := h.Quantile(0.2); got != 15 {
		t.Errorf("Quantile(0.2) = %g, want clamped to min 15", got)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(100)
	h.Observe(200)
	if got := h.Quantile(0.99); got > 200 || got < 100 {
		t.Errorf("Quantile(0.99) = %g, want within overflow [100, 200]", got)
	}
	if got := h.Max(); got != 200 {
		t.Errorf("Max = %g, want 200", got)
	}
	bs := h.Buckets()
	if len(bs) != 3 {
		t.Fatalf("Buckets len = %d, want 3", len(bs))
	}
	if !math.IsInf(bs[2].UpperBound, 1) || bs[2].Count != 2 {
		t.Errorf("overflow bucket = %+v, want +Inf bound with count 2", bs[2])
	}
}

func TestHistogramAttainment(t *testing.T) {
	h := NewHistogram(unitBounds(100))
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	for _, tc := range []struct{ slo, want float64 }{
		{100, 1}, {1000, 1}, {50, 0.5}, {95, 0.95}, {0.5, 0},
	} {
		got := h.AttainmentBelow(tc.slo)
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("AttainmentBelow(%g) = %g, want %g", tc.slo, got, tc.want)
		}
	}
	empty := NewHistogram(unitBounds(4))
	if got := empty.AttainmentBelow(1); got != 1 {
		t.Errorf("empty AttainmentBelow = %g, want 1", got)
	}
}

func TestHistogramMergeAssociative(t *testing.T) {
	bounds := ExpBuckets(0.1, 2, 12)
	fill := func(seed, n int) *Histogram {
		h := NewHistogram(bounds)
		x := uint64(seed)
		for i := 0; i < n; i++ {
			// Tiny deterministic LCG; values spread across buckets
			// and into overflow.
			x = x*6364136223846793005 + 1442695040888963407
			h.Observe(float64(x%5000) / 10)
		}
		return h
	}
	a, b, c := fill(1, 100), fill(2, 57), fill(3, 211)

	// (a ⊕ b) ⊕ c
	left := NewHistogram(bounds)
	for _, h := range []*Histogram{a, b, c} {
		if err := left.Merge(h); err != nil {
			t.Fatal(err)
		}
	}
	// a ⊕ (b ⊕ c)
	bc := NewHistogram(bounds)
	if err := bc.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := bc.Merge(c); err != nil {
		t.Fatal(err)
	}
	right := NewHistogram(bounds)
	if err := right.Merge(a); err != nil {
		t.Fatal(err)
	}
	if err := right.Merge(bc); err != nil {
		t.Fatal(err)
	}

	if left.Count() != right.Count() || left.Count() != 368 {
		t.Fatalf("Count mismatch: %d vs %d (want 368)", left.Count(), right.Count())
	}
	if left.Sum() != right.Sum() || left.Min() != right.Min() || left.Max() != right.Max() {
		t.Fatalf("moment mismatch: sum %g/%g min %g/%g max %g/%g",
			left.Sum(), right.Sum(), left.Min(), right.Min(), left.Max(), right.Max())
	}
	lb, rb := left.Buckets(), right.Buckets()
	for i := range lb {
		if lb[i] != rb[i] {
			t.Errorf("bucket %d: %+v vs %+v", i, lb[i], rb[i])
		}
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if left.Quantile(q) != right.Quantile(q) {
			t.Errorf("Quantile(%g): %g vs %g", q, left.Quantile(q), right.Quantile(q))
		}
	}
}

func TestHistogramMergeMismatch(t *testing.T) {
	a := NewHistogram([]float64{1, 2, 3})
	b := NewHistogram([]float64{1, 2})
	b.Observe(1)
	if err := a.Merge(b); err == nil {
		t.Error("merge with different bucket counts: want error")
	}
	c := NewHistogram([]float64{1, 2, 4})
	c.Observe(1)
	if err := a.Merge(c); err == nil {
		t.Error("merge with different bounds: want error")
	}
	// Empty or nil other histograms merge as no-ops regardless of shape.
	if err := a.Merge(NewHistogram([]float64{9})); err != nil {
		t.Errorf("merge of empty histogram: %v", err)
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("merge of nil histogram: %v", err)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(unitBounds(4))
	h.Observe(2)
	h.Observe(3)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("after Reset: n=%d sum=%g min=%g max=%g", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	for _, b := range h.Buckets() {
		if b.Count != 0 {
			t.Errorf("bucket %g count %d after Reset", b.UpperBound, b.Count)
		}
	}
}

// TestHistogramMergeEmptyIntoNonempty covers both directions of the
// degenerate merge: an empty receiver must adopt the donor's min/max
// wholesale (not fold them against its zero-valued fields), and a
// non-empty receiver absorbing an empty donor must not move at all.
func TestHistogramMergeEmptyIntoNonempty(t *testing.T) {
	bounds := []float64{1, 2, 4, 8}
	donor := NewHistogram(bounds)
	for _, v := range []float64{3, 5, 7} {
		donor.Observe(v)
	}

	empty := NewHistogram(bounds)
	if err := empty.Merge(donor); err != nil {
		t.Fatal(err)
	}
	// min=3 > 0: naive "min(h.min, o.min)" with a zeroed receiver would
	// have reported 0 here.
	if empty.Min() != 3 || empty.Max() != 7 || empty.Count() != 3 || empty.Sum() != 15 {
		t.Fatalf("empty-receiver merge: min=%g max=%g n=%d sum=%g",
			empty.Min(), empty.Max(), empty.Count(), empty.Sum())
	}

	full := NewHistogram(bounds)
	full.Observe(2)
	before := full.String()
	if err := full.Merge(NewHistogram(bounds)); err != nil {
		t.Fatal(err)
	}
	if full.String() != before || full.Count() != 1 || full.Min() != 2 || full.Max() != 2 {
		t.Fatalf("merging an empty donor moved the receiver: %v -> %v", before, full.String())
	}
}

// TestHistogramBoundaryObservations: a value exactly on a bucket bound
// belongs to the bucket it closes (bounds are upper-inclusive), on both
// the Observe path and after a Merge.
func TestHistogramBoundaryObservations(t *testing.T) {
	bounds := []float64{1, 2, 4}
	h := NewHistogram(bounds)
	for _, v := range []float64{1, 2, 4} {
		h.Observe(v)
	}
	o := NewHistogram(bounds)
	o.Observe(2) // doubles the boundary count in bucket (1,2]
	if err := h.Merge(o); err != nil {
		t.Fatal(err)
	}
	got := h.Buckets()
	want := []BucketCount{
		{UpperBound: 1, Count: 1},
		{UpperBound: 2, Count: 2},
		{UpperBound: 4, Count: 1},
		{UpperBound: math.Inf(1), Count: 0},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v (all: %+v)", i, got[i], want[i], got)
		}
	}
	// Just past a bound spills into the next bucket.
	h.Observe(math.Nextafter(2, 3))
	if got := h.Buckets()[2].Count; got != 2 {
		t.Fatalf("observation just above bound landed in bucket 2 count %d, want 2", got)
	}
}

// TestHistogramQuantileExtremes: p0 and p100 are the exact observed
// min and max, on empty, single-sample and merged histograms alike.
func TestHistogramQuantileExtremes(t *testing.T) {
	bounds := ExpBuckets(0.1, 2, 10)
	h := NewHistogram(bounds)
	if h.Quantile(0) != 0 || h.Quantile(1) != 0 {
		t.Fatal("empty histogram extremes must be 0")
	}
	h.Observe(3.7)
	if h.Quantile(0) != 3.7 || h.Quantile(1) != 3.7 {
		t.Fatalf("single sample: p0=%g p100=%g", h.Quantile(0), h.Quantile(1))
	}
	o := NewHistogram(bounds)
	o.Observe(0.04) // below the first bound
	o.Observe(9000) // deep in the overflow bucket
	if err := h.Merge(o); err != nil {
		t.Fatal(err)
	}
	if h.Quantile(0) != 0.04 || h.Quantile(1) != 9000 {
		t.Fatalf("merged: p0=%g p100=%g", h.Quantile(0), h.Quantile(1))
	}
	// Interior quantiles stay clamped inside the observed range.
	for _, q := range []float64{0.001, 0.5, 0.999} {
		if v := h.Quantile(q); v < 0.04 || v > 9000 {
			t.Fatalf("Quantile(%g) = %g escaped [min, max]", q, v)
		}
	}
}
