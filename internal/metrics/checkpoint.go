package metrics

import "fmt"

// Checkpoint state for the accumulators that live inside simulation
// components (docs/checkpoint.md). Only Summary and Histogram need it:
// they are the two shapes embedded in checkpointable component state.
// Sample deliberately has no state export — the cluster checkpoint layer
// treats retained-sample diagnostics as write-only and excludes them.

// SummaryState is the full internal state of a Summary.
type SummaryState struct {
	N    uint64  `json:"n"`
	Sum  float64 `json:"sum"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// State exports the summary for a checkpoint.
func (s *Summary) State() SummaryState {
	return SummaryState{N: s.n, Sum: s.sum, Mean: s.mean, M2: s.m2, Min: s.min, Max: s.max}
}

// Restore overwrites the summary from a checkpointed state.
func (s *Summary) Restore(st SummaryState) {
	s.n, s.sum, s.mean, s.m2, s.min, s.max = st.N, st.Sum, st.Mean, st.M2, st.Min, st.Max
}

// HistogramState is the count state of a Histogram. Bucket bounds are
// configuration, not state: the restoring side rebuilds the histogram
// with the same bounds and Restore verifies the count vector fits.
type HistogramState struct {
	Counts []uint64 `json:"counts"`
	N      uint64   `json:"n"`
	Sum    float64  `json:"sum"`
	Min    float64  `json:"min"`
	Max    float64  `json:"max"`
}

// State exports the histogram's counts for a checkpoint.
func (h *Histogram) State() HistogramState {
	return HistogramState{
		Counts: append([]uint64(nil), h.counts...),
		N:      h.n,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
	}
}

// Restore overwrites the histogram's counts from a checkpointed state.
// The receiver must have been built with the same bounds the state was
// captured under.
func (h *Histogram) Restore(st HistogramState) error {
	if len(st.Counts) != len(h.counts) {
		return fmt.Errorf("metrics: restoring %d bucket counts into a %d-bucket histogram",
			len(st.Counts), len(h.counts))
	}
	copy(h.counts, st.Counts)
	h.n, h.sum, h.min, h.max = st.N, st.Sum, st.Min, st.Max
	return nil
}
