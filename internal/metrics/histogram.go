package metrics

import (
	"fmt"
	"math"
)

// Histogram is a fixed-bucket latency histogram: counts of observations
// falling into [0, bounds[0]], (bounds[0], bounds[1]], ..., plus one
// overflow bucket past the last bound. Unlike Sample it retains no raw
// values, so millions of per-request latencies cost a fixed few hundred
// bytes, and two histograms with the same bounds merge by adding counts
// — which is what lets every VM of a cluster simulation keep a private
// histogram that the fleet report folds together afterwards.
//
// Quantiles are estimated by linear interpolation inside the bucket
// containing the target rank (the standard Prometheus-style estimator):
// exact whenever the distribution is uniform within each bucket, and
// never off by more than one bucket width otherwise.
type Histogram struct {
	bounds []float64 // ascending upper bounds; implicit +Inf overflow
	counts []uint64  // len(bounds)+1
	n      uint64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram creates a histogram over the given ascending upper
// bounds. It panics on empty or non-ascending bounds (a configuration
// error).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending at %d (%g after %g)",
				i, bounds[i], bounds[i-1]))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	return h
}

// ExpBuckets returns n geometrically spaced bounds starting at start
// with the given growth factor — the usual shape for latency buckets,
// where relative (not absolute) resolution matters.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("metrics: ExpBuckets needs start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	v := start
	for i := 0; i < n; i++ {
		out[i] = v
		v *= factor
	}
	return out
}

// DefaultLatencyBuckets returns the bounds used for request-latency
// histograms throughout the experiments: 48 geometric buckets from
// 0.05 ms to ~50 s (factor 1.35, ~9 buckets per decade), bracketing
// everything from an uncontended softirq to a hopeless timeout.
func DefaultLatencyBuckets() []float64 { return ExpBuckets(0.05, 1.35, 48) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h.n == 0 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.n++
	h.sum += v
	h.counts[h.bucketOf(v)]++
}

// bucketOf returns the index of the bucket v falls into (binary search
// over the upper bounds).
func (h *Histogram) bucketOf(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the arithmetic mean (0 with no observations).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest observation (0 with none).
func (h *Histogram) Min() float64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 with none).
func (h *Histogram) Max() float64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the q-quantile (0 <= q <= 1), linearly interpolated
// within the bucket containing the target rank and clamped to the
// observed [min, max].
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := q * float64(h.n)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next < target {
			cum = next
			continue
		}
		// Target rank lands in bucket i: interpolate between its bounds.
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		var hi float64
		if i < len(h.bounds) {
			hi = h.bounds[i]
		} else {
			// Overflow bucket: its only known upper edge is the max.
			hi = h.max
			if lo < h.min {
				lo = h.min
			}
		}
		v := lo + (hi-lo)*(target-cum)/float64(c)
		return math.Min(math.Max(v, h.min), h.max)
	}
	return h.max
}

// AttainmentBelow returns the fraction of observations <= slo. The
// boundary is exact when slo coincides with a bucket bound; otherwise
// the partial bucket is linearly interpolated. With no observations it
// returns 1 (an unused service has not violated anything).
func (h *Histogram) AttainmentBelow(slo float64) float64 {
	if h.n == 0 {
		return 1
	}
	if slo >= h.max {
		return 1
	}
	if slo < h.min {
		return 0
	}
	var cum float64
	for i, c := range h.counts {
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		var hi float64
		if i < len(h.bounds) {
			hi = h.bounds[i]
		} else {
			hi = h.max
		}
		if slo >= hi {
			cum += float64(c)
			continue
		}
		if slo > lo && hi > lo {
			cum += float64(c) * (slo - lo) / (hi - lo)
		}
		break
	}
	return cum / float64(h.n)
}

// Buckets returns (upper bound, count) pairs including the overflow
// bucket (bound +Inf), for export and tests.
func (h *Histogram) Buckets() []BucketCount {
	out := make([]BucketCount, len(h.counts))
	for i, c := range h.counts {
		b := math.Inf(1)
		if i < len(h.bounds) {
			b = h.bounds[i]
		}
		out[i] = BucketCount{UpperBound: b, Count: c}
	}
	return out
}

// BucketCount is one bucket of an exported histogram.
type BucketCount struct {
	UpperBound float64
	Count      uint64
}

// Merge adds o's counts into h. The two histograms must share identical
// bounds; merging is commutative and associative by construction (count
// addition, min/max, sum). A nil or empty o is a no-op.
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil || o.n == 0 {
		return nil
	}
	if len(o.bounds) != len(h.bounds) {
		return fmt.Errorf("metrics: merging histograms with %d vs %d buckets", len(o.bounds), len(h.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != o.bounds[i] {
			return fmt.Errorf("metrics: merging histograms with different bound %d (%g vs %g)",
				i, h.bounds[i], o.bounds[i])
		}
	}
	if h.n == 0 {
		h.min, h.max = o.min, o.max
	} else {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
	h.n += o.n
	h.sum += o.sum
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	return nil
}

// Reset zeroes all counts.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.n, h.sum, h.min, h.max = 0, 0, 0, 0
}

// String renders "n=…, p50=…, p95=…, p99=…".
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d p50=%.3f p95=%.3f p99=%.3f", h.n,
		h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99))
}
