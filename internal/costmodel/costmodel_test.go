package costmodel

import (
	"testing"

	"vscale/internal/sim"
)

func TestChannelReadMatchesPaperTable1(t *testing.T) {
	// Table 1: syscall 0.69 µs, +hypercall = 0.91 µs total.
	if Syscall != 690*sim.Nanosecond {
		t.Fatalf("syscall = %v", Syscall)
	}
	if ChannelRead != 910*sim.Nanosecond {
		t.Fatalf("channel read = %v, want 0.91µs", ChannelRead)
	}
}

func TestFreezeMasterCostMatchesPaperTable3(t *testing.T) {
	// Table 3's running total ends at 2.10 µs on the master vCPU.
	if FreezeMasterCost != 2100*sim.Nanosecond {
		t.Fatalf("freeze master cost = %v, want 2.10µs", FreezeMasterCost)
	}
	// The cumulative breakdown must match the paper's intermediate sums.
	steps := []struct {
		add  sim.Time
		want sim.Time
	}{
		{Syscall, 690 * sim.Nanosecond},
		{FreezeLock, 750 * sim.Nanosecond},
		{FreezeMaskUpdate, 780 * sim.Nanosecond},
		{GroupPowerUpdate, 900 * sim.Nanosecond},
		{Hypercall, 1120 * sim.Nanosecond},
		{RescheduleIPISend, 2100 * sim.Nanosecond},
	}
	var sum sim.Time
	for i, s := range steps {
		sum += s.add
		if sum != s.want {
			t.Fatalf("step %d cumulative = %v, want %v", i+1, sum, s.want)
		}
	}
}

func TestRangeDraw(t *testing.T) {
	r := sim.NewRand(1)
	for i := 0; i < 1000; i++ {
		d := ThreadMigrate.Draw(r)
		if d < ThreadMigrateMin || d > ThreadMigrateMax {
			t.Fatalf("thread migrate draw %v outside [%v,%v]", d, ThreadMigrateMin, ThreadMigrateMax)
		}
		d = IRQMigrate.Draw(r)
		if d < IRQMigrateMin || d > IRQMigrateMax {
			t.Fatalf("irq migrate draw %v out of range", d)
		}
	}
	if ThreadMigrate.Mid() != sim.Microsecond {
		t.Fatalf("thread migrate midpoint = %v", ThreadMigrate.Mid())
	}
}

func TestHotplugModelsOrdersOfMagnitude(t *testing.T) {
	r := sim.NewRand(2)
	for _, m := range HotplugModels {
		var downSum, upSum sim.Time
		const n = 200
		for i := 0; i < n; i++ {
			d := m.DrawDown(r)
			if d < sim.FromMillis(m.DownFloorMs) {
				t.Fatalf("%s: down %v below floor", m.Version, d)
			}
			downSum += d
			upSum += m.DrawUp(r)
		}
		downAvg, upAvg := downSum/n, upSum/n
		// Hotplug must be at least 100x slower than the vScale freeze
		// (2.1 µs): the paper's headline 100x–100,000x comparison.
		if downAvg < 100*FreezeMasterCost {
			t.Fatalf("%s: down avg %v not >100x vScale freeze", m.Version, downAvg)
		}
		if m.Version == "v-3.14.15" {
			// Best case in the paper: adding a vCPU is 350–500 µs.
			if upAvg < 300*sim.Microsecond || upAvg > 700*sim.Microsecond {
				t.Fatalf("3.14.15 up avg = %v, want ~350-500µs", upAvg)
			}
		} else if upAvg < 5*sim.Millisecond {
			t.Fatalf("%s: up avg %v should be tens of ms", m.Version, upAvg)
		}
	}
}

func TestHotplugModelFor(t *testing.T) {
	if _, ok := HotplugModelFor("v-3.14.15"); !ok {
		t.Fatal("missing 3.14.15 model")
	}
	if _, ok := HotplugModelFor("v-9.9"); ok {
		t.Fatal("unexpected model")
	}
}
