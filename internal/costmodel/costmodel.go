// Package costmodel centralises the micro-operation latencies charged by
// the simulation. The constants come from the vScale paper's own
// measurements (Tables 1 and 3, Figure 4, Figure 5 and §5.1 text), so
// the mechanism-level experiments re-derive the paper's breakdowns and
// the application-level experiments charge realistic overheads for every
// syscall, hypercall and migration the mechanisms perform.
package costmodel

import "vscale/internal/sim"

// Costs of the vScale communication and reconfiguration path (paper
// Tables 1 and 3).
const (
	// Syscall is the cost of entering/leaving the guest kernel
	// (sys_getvscaleinfo / sys_freezecpu): 0.69 µs.
	Syscall = 690 * sim.Nanosecond

	// Hypercall is the incremental cost of a hypercall from the guest
	// kernel (SCHEDOP_getvscaleinfo / SCHEDOP_freezecpu): 0.22 µs.
	Hypercall = 220 * sim.Nanosecond

	// FreezeLock covers acquiring/releasing cpu_freeze_lock with
	// interrupt state saved/restored: 0.06 µs.
	FreezeLock = 60 * sim.Nanosecond

	// FreezeMaskUpdate flips the target bit of cpu_freeze_mask: 0.03 µs.
	FreezeMaskUpdate = 30 * sim.Nanosecond

	// GroupPowerUpdate updates scheduling domain/group power under an RCU
	// lock: 0.12 µs.
	GroupPowerUpdate = 120 * sim.Nanosecond

	// RescheduleIPISend is the cost, on the sender, of issuing a
	// reschedule IPI (the dominant term of Table 3's master-side cost):
	// 0.98 µs.
	RescheduleIPISend = 980 * sim.Nanosecond
)

// ChannelRead is the total cost of one vScale-channel read: a system call
// plus a hypercall (Table 1: 0.69 + 0.22 = 0.91 µs).
const ChannelRead = Syscall + Hypercall

// FreezeMasterCost is the total master-vCPU cost of freezing or
// unfreezing one vCPU (Table 3: 2.10 µs).
const FreezeMasterCost = Syscall + FreezeLock + FreezeMaskUpdate +
	GroupPowerUpdate + Hypercall + RescheduleIPISend

// Per-item costs on the target vCPU during freeze (paper Table 3: 0.9–1.1
// µs per migrated thread, 0.8–1.2 µs per migrated device interrupt).
const (
	ThreadMigrateMin = 900 * sim.Nanosecond
	ThreadMigrateMax = 1100 * sim.Nanosecond
	IRQMigrateMin    = 800 * sim.Nanosecond
	IRQMigrateMax    = 1200 * sim.Nanosecond
)

// Guest-kernel scheduling costs. These are typical Linux numbers, used so
// context switches and wakeups are not free in the application runs.
const (
	// ContextSwitch is a thread context switch inside the guest.
	ContextSwitch = 1500 * sim.Nanosecond

	// FutexWakeCost is the kernel-side cost of futex_wake on the waker.
	FutexWakeCost = 800 * sim.Nanosecond

	// FutexWaitCost is the kernel-side cost of futex_wait entry/exit.
	FutexWaitCost = 1000 * sim.Nanosecond

	// IPIDeliver is the interrupt-entry cost on a *running* target vCPU;
	// the real latency of interest (scheduling delay) is added by the
	// hypervisor when the target is not running.
	IPIDeliver = 500 * sim.Nanosecond

	// SpinCheck is one user-level spin iteration (load + compiler
	// barrier), used to convert GOMP_SPINCOUNT counts into virtual time.
	// ~2 ns per iteration on the paper's 2.53 GHz Xeons.
	SpinCheck = 2 * sim.Nanosecond
)

// VM switch cost at the hypervisor (context switch between vCPUs on a
// pCPU, including the cache-pollution tax the paper's §2.1 discusses).
const VMSwitch = 4 * sim.Microsecond

// Dom0 / libxl monitoring costs (Figure 4: ~480 µs per VM when dom0 is
// idle, inflated under I/O load by queueing in dom0).
const (
	// LibxlPerVMRead is the base cost of reading one VM's CPU consumption
	// through libxl/XenStore from dom0.
	LibxlPerVMRead = 480 * sim.Microsecond

	// XenStoreWrite is one XenStore write (dom0-driven hotplug path).
	XenStoreWrite = 120 * sim.Microsecond
)

// Range describes a uniform latency interval used where the paper
// reports a min–max band.
type Range struct {
	Min, Max sim.Time
}

// Draw samples the range uniformly using r.
func (rg Range) Draw(r *sim.Rand) sim.Time {
	return r.Duration(rg.Min, rg.Max)
}

// Mid returns the midpoint of the range.
func (rg Range) Mid() sim.Time { return (rg.Min + rg.Max) / 2 }

// ThreadMigrate is the per-thread migration cost range on the target
// vCPU.
var ThreadMigrate = Range{ThreadMigrateMin, ThreadMigrateMax}

// IRQMigrate is the per-device-interrupt rebind cost range.
var IRQMigrate = Range{IRQMigrateMin, IRQMigrateMax}

// HotplugModel captures the latency distribution of legacy Linux CPU
// hotplug for one kernel version (paper Figure 5). Latencies are drawn
// log-normally between the observed bands, which matches the long-tailed
// CDFs in the figure.
type HotplugModel struct {
	Version string
	// Down (cpu remove) and Up (cpu add) latency shapes: median and
	// sigma of a log-normal in milliseconds, plus a hard floor.
	DownMedianMs float64
	DownSigma    float64
	DownFloorMs  float64
	UpMedianMs   float64
	UpSigma      float64
	UpFloorMs    float64
}

// DrawDown samples one CPU-remove latency.
func (m HotplugModel) DrawDown(r *sim.Rand) sim.Time {
	return drawLogNormalMs(r, m.DownMedianMs, m.DownSigma, m.DownFloorMs)
}

// DrawUp samples one CPU-add latency.
func (m HotplugModel) DrawUp(r *sim.Rand) sim.Time {
	return drawLogNormalMs(r, m.UpMedianMs, m.UpSigma, m.UpFloorMs)
}

func drawLogNormalMs(r *sim.Rand, medianMs, sigma, floorMs float64) sim.Time {
	v := medianMs * r.LogNormal(0, sigma)
	if v < floorMs {
		v = floorMs
	}
	return sim.FromMillis(v)
}

// HotplugModels lists the four kernel versions evaluated in Figure 5.
// Parameters are fitted to the paper's CDFs: removing a vCPU costs a few
// ms to >100 ms; adding is 350–500 µs at best on 3.14.15 and tens of ms
// on the other kernels.
var HotplugModels = []HotplugModel{
	{Version: "v-2.6.32", DownMedianMs: 40, DownSigma: 0.8, DownFloorMs: 5, UpMedianMs: 30, UpSigma: 0.7, UpFloorMs: 8},
	{Version: "v-3.2.60", DownMedianMs: 25, DownSigma: 0.8, DownFloorMs: 4, UpMedianMs: 20, UpSigma: 0.7, UpFloorMs: 5},
	{Version: "v-3.14.15", DownMedianMs: 12, DownSigma: 0.9, DownFloorMs: 2, UpMedianMs: 0.42, UpSigma: 0.12, UpFloorMs: 0.35},
	{Version: "v-4.2", DownMedianMs: 18, DownSigma: 0.9, DownFloorMs: 3, UpMedianMs: 15, UpSigma: 0.8, UpFloorMs: 4},
}

// HotplugModelFor returns the model for a kernel version string and
// whether it exists.
func HotplugModelFor(version string) (HotplugModel, bool) {
	for _, m := range HotplugModels {
		if m.Version == version {
			return m, true
		}
	}
	return HotplugModel{}, false
}
