package vscale

import (
	"testing"
)

func TestFacadeExtendability(t *testing.T) {
	res := ComputeExtendability([]VMStat{
		{ID: "busy", Weight: 2, Consumption: 8 * 10 * Millisecond, MaxVCPUs: 4},
		{ID: "idle", Weight: 2, Consumption: 0, MaxVCPUs: 2},
	}, 8, 10*Millisecond)
	if len(res) != 2 {
		t.Fatal("results missing")
	}
	if !res[0].Competitor || res[0].OptimalVCPUs != 4 {
		t.Fatalf("busy VM: %+v", res[0])
	}
	if res[1].Competitor || res[1].OptimalVCPUs != 2 {
		t.Fatalf("idle VM: %+v", res[1])
	}
}

func TestFacadeGovernor(t *testing.T) {
	g := NewGovernor(1, 8, 8, 1)
	g.Observe(2)
	if got := g.Observe(2); got != 2 {
		t.Fatalf("governor = %d", got)
	}
}

func TestFacadeFreezePlan(t *testing.T) {
	p := FreezePlan{TargetVCPU: 3, MigratableThreads: 5, DeviceIRQs: 1}
	if p.MasterCost() != 2100 {
		t.Fatalf("master cost = %v, want 2.10µs", p.MasterCost())
	}
	if p.TotalExpected() <= p.MasterCost() {
		t.Fatal("target work missing from total")
	}
}

func TestFacadeScenarioQuickRun(t *testing.T) {
	s := DefaultSetup()
	s.Mode = VScale
	b := NewScenario(s)
	if b.K == nil || b.VM == nil || b.Pool == nil {
		t.Fatal("scenario incomplete")
	}
	if err := b.Eng.RunUntil(500 * Millisecond); err != nil {
		t.Fatal(err)
	}
	if b.VM.TotalRunTime != 0 {
		t.Fatal("idle VM should not have consumed CPU yet")
	}
	// Background desktops must be consuming.
	var bg Time
	for _, d := range b.Pool.Domains() {
		if d.Name != "vm" {
			bg += d.TotalRunTime
		}
	}
	if bg == 0 {
		t.Fatal("background VMs idle")
	}
}

func TestFacadeSpinBudget(t *testing.T) {
	if SpinBudgetFromCount(0) != 0 {
		t.Fatal("zero spincount must give zero budget")
	}
	if SpinBudgetFromCount(300_000) != 600*Microsecond {
		t.Fatalf("300K spincount = %v, want 600µs at 2ns/check", SpinBudgetFromCount(300_000))
	}
	if SpinBudgetFromCount(30_000_000_000) <= SpinBudgetFromCount(300_000) {
		t.Fatal("budget not monotone")
	}
}

func TestFacadeModes(t *testing.T) {
	for _, m := range []Mode{Baseline, PVLock, VScale, VScalePVLock} {
		if m.String() == "" {
			t.Fatal("mode label empty")
		}
	}
}
