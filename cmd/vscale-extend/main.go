// Command vscale-extend is a standalone calculator for Algorithm 1 of
// the paper: given a table of VMs (weight, consumption, optional
// reservation/cap/max-vCPUs), it prints each VM's fair share, CPU
// extendability and optimal vCPU count.
//
// Usage:
//
//	vscale-extend -pcpus 8 -period-ms 10 \
//	    -vm "hpc:512:76ms:4" -vm "desktop:256:3ms:2" ...
//
// Each -vm is name:weight:consumption[:maxVCPUs[:capPCPUs]], where
// consumption is the VM's CPU time over the last period (Go duration
// syntax: 35ms, 1.2ms, ...).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"vscale/internal/core"
	"vscale/internal/report"
	"vscale/internal/sim"
)

type vmFlags []string

func (v *vmFlags) String() string     { return strings.Join(*v, ",") }
func (v *vmFlags) Set(s string) error { *v = append(*v, s); return nil }

func main() {
	pcpus := flag.Int("pcpus", 8, "physical CPUs in the pool")
	periodMs := flag.Float64("period-ms", 10, "extendability period (ms)")
	var vms vmFlags
	flag.Var(&vms, "vm", "VM spec name:weight:consumption[:maxVCPUs[:capPCPUs]] (repeatable)")
	flag.Parse()

	if len(vms) == 0 {
		fmt.Fprintln(os.Stderr, "no VMs given; try: -vm hpc:512:76ms:4 -vm desktop:256:3ms:2")
		os.Exit(2)
	}
	period := sim.FromMillis(*periodMs)
	stats := make([]core.VMStat, 0, len(vms))
	for _, spec := range vms {
		st, err := parseVM(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -vm %q: %v\n", spec, err)
			os.Exit(2)
		}
		stats = append(stats, st)
	}

	res := core.ComputeExtendability(stats, *pcpus, period)
	t := report.NewTable(
		fmt.Sprintf("CPU extendability (P=%d, t=%v)", *pcpus, period),
		"VM", "role", "fair share (pCPUs)", "extendability (pCPUs)", "optimal vCPUs")
	for _, r := range res {
		role := "releaser"
		if r.Competitor {
			role = "competitor"
		}
		t.AddRow(r.ID, role,
			fmt.Sprintf("%.2f", float64(r.FairShare)/float64(period)),
			fmt.Sprintf("%.2f", float64(r.Extend)/float64(period)),
			fmt.Sprint(r.OptimalVCPUs))
	}
	fmt.Print(t.String())
	fmt.Printf("pool slack this period: %.2f pCPUs\n",
		float64(core.PoolSlack(stats, res))/float64(period))
}

func parseVM(spec string) (core.VMStat, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 3 {
		return core.VMStat{}, fmt.Errorf("want name:weight:consumption[:maxVCPUs[:capPCPUs]]")
	}
	w, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return core.VMStat{}, fmt.Errorf("weight: %v", err)
	}
	cons, err := time.ParseDuration(parts[2])
	if err != nil {
		return core.VMStat{}, fmt.Errorf("consumption: %v", err)
	}
	st := core.VMStat{ID: parts[0], Weight: w, Consumption: sim.Time(cons)}
	if len(parts) > 3 {
		n, err := strconv.Atoi(parts[3])
		if err != nil {
			return core.VMStat{}, fmt.Errorf("maxVCPUs: %v", err)
		}
		st.MaxVCPUs = n
		st.UP = n == 1
	}
	if len(parts) > 4 {
		c, err := strconv.ParseFloat(parts[4], 64)
		if err != nil {
			return core.VMStat{}, fmt.Errorf("capPCPUs: %v", err)
		}
		st.CapPCPUs = c
	}
	return st, nil
}
