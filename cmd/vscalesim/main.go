// Command vscalesim runs a single consolidation scenario: an SMP-VM
// executing one workload next to bursty slideshow desktops, under one of
// the four configurations of the paper, and prints the run's metrics.
//
// Usage:
//
//	vscalesim -workload npb:cg -mode vscale -vcpus 4 -pcpus 8 \
//	          -spincount 300000 [-runs 5] [-parallel N] \
//	          [-trace out.json] [-schedstats] [-seed 1]
//
// Workloads: npb:<bt|cg|dc|ep|ft|is|lu|mg|sp|ua>,
// parsec:<blackscholes|...|x264>, kernel-build, httpd:<rateK>.
//
// The httpd workload is driven by an open-loop Poisson generator and
// additionally reports reply-latency p50/p95/p99 and the fraction of
// offered requests answered within -slo milliseconds.
//
// -runs repeats the scenario with per-run seeds derived from -seed
// (splitmix64), fanned across -parallel workers; the per-run outputs are
// printed in run order and are independent of the worker count.
//
// -trace writes a Chrome trace-event JSON file loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing; with -runs > 1 the per-run
// timelines are stitched with trace.Merge under run0/, run1/, ...
// track prefixes. -schedstats prints per-vCPU scheduling statistics.
//
// -telemetry-addr serves a Prometheus /metrics endpoint with the latest
// collection epoch while the simulation runs; -telemetry-out writes the
// per-epoch series as deterministic JSONL; -telemetry-epoch sets the
// collection period (virtual time). Telemetry is purely observational:
// stdout and all simulation results are byte-identical with it on or
// off. See docs/observability.md.
//
// -policies switches the command into fleet mode: instead of the
// single-VM consolidation scenario it runs the multi-host cluster fleet
// under VM churn, competing the named scaling policies (resolved
// through the cluster policy registry; 'all' runs every registered
// policy) on identical churn traces and printing the SLO scoreboard
// with its cost-vs-attainment frontier. -hosts and -horizon size the
// fleet; -pcpus, -slo, -seed and -parallel keep their meanings. -sync
// selects the fleet executor (boundedlag by default, lockstep as the
// differential reference) and -lag its staleness/run-ahead bound —
// stdout is byte-identical across both and across -parallel settings.
// See docs/cluster.md.
//
// -warm-epochs gives every fleet run a policy-neutral warm-up prefix;
// -warmfork simulates that prefix once and forks each competed policy
// from the snapshot (bit-identical results, less wall clock);
// -checkpoint persists the warm-prefix snapshot (vscale-checkpoint/v1)
// and -restore forks the policies from a previously written one. See
// docs/checkpoint.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"vscale/internal/cluster"
	"vscale/internal/experiments"
	"vscale/internal/guest"
	"vscale/internal/loadgen"
	"vscale/internal/profiling"
	"vscale/internal/report"
	"vscale/internal/runner"
	"vscale/internal/scenario"
	"vscale/internal/sim"
	"vscale/internal/telemetry"
	"vscale/internal/trace"
	"vscale/internal/workload"
	"vscale/internal/workload/httpd"
	"vscale/internal/workload/npb"
	"vscale/internal/workload/parsec"
)

func main() {
	wl := flag.String("workload", "npb:cg", "workload to run")
	modeStr := flag.String("mode", "baseline", "baseline | pvlock | vscale | vscale+pvlock")
	vcpus := flag.Int("vcpus", 4, "vCPUs of the VM under test")
	pcpus := flag.Int("pcpus", 8, "pCPUs in the domU pool")
	spin := flag.Uint64("spincount", 300_000, "GOMP_SPINCOUNT for OpenMP workloads")
	seed := flag.Uint64("seed", 1, "simulation seed (base seed when -runs > 1)")
	runs := flag.Int("runs", 1, "number of repeats with derived per-run seeds")
	parallel := flag.Int("parallel", 0, "worker pool size for -runs (default GOMAXPROCS)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file to this path")
	schedstats := flag.Bool("schedstats", false, "print per-vCPU scheduling statistics")
	tracecap := flag.Int("tracecap", trace.DefaultRingCapacity, "trace ring capacity (events)")
	activetrace := flag.Bool("activetrace", false, "print the active-vCPU trace")
	sloMs := flag.Float64("slo", 50, "httpd per-request SLO, milliseconds")
	policiesFlag := flag.String("policies", "", "fleet mode: comma-separated scaling policies to compete (or 'all'; registry names)")
	hosts := flag.Int("hosts", 2, "fleet mode: hosts in the fleet")
	horizonSecs := flag.Float64("horizon", 8, "fleet mode: churn horizon, seconds")
	syncFlag := flag.String("sync", "", "fleet mode: executor, lockstep | boundedlag (default boundedlag); results are byte-identical across modes")
	lagFlag := flag.Int("lag", 0, "fleet mode: placement-staleness/run-ahead bound in epochs (0 = default)")
	warmEpochs := flag.Int("warm-epochs", 0, "fleet mode: policy-neutral warm-up prefix, epochs (0 = none)")
	warmFork := flag.Bool("warmfork", false, "fleet mode: simulate the warm prefix once and fork every policy from the snapshot (requires -warm-epochs)")
	checkpointPath := flag.String("checkpoint", "", "fleet mode: write the warm-prefix snapshot (vscale-checkpoint/v1) to this file")
	restorePath := flag.String("restore", "", "fleet mode: fork the policies from a previously written snapshot instead of simulating the warm prefix")
	elasticFlag := flag.String("elastic", "", "fleet mode: elasticity layer, none | migrate | replicas | hybrid (default none)")
	nobg := flag.Bool("dedicated", false, "no background VMs")
	maxSecs := flag.Float64("max", 600, "simulation deadline, seconds")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this path on exit")
	telemetryAddr := flag.String("telemetry-addr", "", "serve a Prometheus /metrics scrape endpoint on this host:port while the simulation runs")
	telemetryOut := flag.String("telemetry-out", "", "write deterministic per-epoch telemetry JSONL (vscale-telemetry/v1) to this path")
	telemetryEpoch := flag.Duration("telemetry-epoch", 500*time.Millisecond, "telemetry collection period, virtual time")
	flag.Parse()

	stopCPU, err := profiling.StartCPU(*cpuProfile)
	fatal(err)
	defer stopCPU()
	defer func() {
		if err := profiling.WriteHeap(*memProfile); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	var mode scenario.Mode
	switch *modeStr {
	case "baseline":
		mode = scenario.Baseline
	case "pvlock":
		mode = scenario.PVLock
	case "vscale":
		mode = scenario.VScale
	case "vscale+pvlock":
		mode = scenario.VScalePVLock
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *modeStr)
		os.Exit(2)
	}
	if *runs < 1 {
		fmt.Fprintln(os.Stderr, "-runs must be >= 1")
		os.Exit(2)
	}

	wantTrace := *traceOut != "" || *schedstats

	// Live telemetry: scrape endpoint and JSONL stream share one sink.
	// Each run gets its own buffered collector (labelled run=<i>), and
	// the buffers are flushed in submission order after the run barrier,
	// so the JSONL stream is byte-identical for every -parallel setting.
	// Diagnostics go to stderr; stdout is identical with telemetry off.
	var telemetryFile *os.File
	if *telemetryOut != "" {
		f, err := os.Create(*telemetryOut)
		fatal(err)
		telemetryFile = f
	}
	var telemetryW io.Writer
	if telemetryFile != nil {
		telemetryW = telemetryFile
	}
	sink, err := telemetry.NewSink(*telemetryAddr, telemetryW)
	fatal(err)
	if srv := sink.Server(); srv != nil {
		fmt.Fprintf(os.Stderr, "telemetry: serving /metrics on http://%s\n", srv.Addr())
	}
	// Fleet mode: -policies hands the whole invocation to the cluster
	// fleet shoot-out. The sink above still serves/streams telemetry;
	// stdout is the scoreboard with its cost-vs-attainment frontier and
	// is byte-identical for every -parallel setting.
	if *policiesFlag == "" && (*warmEpochs != 0 || *warmFork || *checkpointPath != "" || *restorePath != "") {
		fmt.Fprintln(os.Stderr, "-warm-epochs/-warmfork/-checkpoint/-restore are fleet-mode flags; add -policies")
		os.Exit(2)
	}
	if *policiesFlag != "" {
		pols, err := cluster.ParsePolicies(*policiesFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		syncMode, err := cluster.ParseSyncMode(*syncFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		warm := experiments.ClusterWarm{
			Epochs:         *warmEpochs,
			Fork:           *warmFork,
			CheckpointPath: *checkpointPath,
			RestorePath:    *restorePath,
		}
		r, err := experiments.Cluster(runner.Options{Workers: *parallel, BaseSeed: *seed},
			sink, []int{*hosts}, *pcpus, sim.FromSeconds(*horizonSecs), sim.FromMillis(*sloMs), pols, syncMode, *lagFlag, *elasticFlag, warm)
		fatal(err)
		fmt.Print(r.Render())
		if telemetryFile != nil {
			fatal(telemetryFile.Close())
			fmt.Fprintf(os.Stderr, "wrote telemetry JSONL to %s\n", *telemetryOut)
		}
		if err := sink.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		return
	}

	cols := make([]*telemetry.Collector, *runs)
	epoch := sim.FromSeconds(telemetryEpoch.Seconds())

	// runOnce builds, runs and renders one scenario; its text output goes
	// to the returned buffer so repeats can print in run order whatever
	// the worker interleaving.
	runOnce := func(runSeed uint64, runIdx int, tr *trace.Tracer) (string, error) {
		var out strings.Builder
		s := scenario.DefaultSetup()
		s.Mode = mode
		s.VMVCPUs = *vcpus
		s.PCPUs = *pcpus
		s.Seed = runSeed
		s.NoBackground = *nobg
		s.Tracer = tr
		b := scenario.Build(s)
		if *activetrace {
			b.K.StartTrace(100 * sim.Millisecond)
		}

		col := telemetry.NewCollector(sink, true,
			"run", strconv.Itoa(runIdx), "mode", *modeStr, "workload", *wl)
		cols[runIdx] = col
		var telGen *loadgen.Generator // set by the httpd branch
		var observe func(now sim.Time)
		if col != nil {
			observe = func(now sim.Time) { collectScenario(col, b, telGen, *sloMs, now) }
		}

		fmt.Fprintf(&out, "host: %d pCPUs, VM: %d vCPUs, %d background VMs, mode: %v, workload: %s, seed: %d\n",
			s.PCPUs, s.VMVCPUs, len(b.BG), mode, *wl, runSeed)

		printResult := func(r scenario.AppResult) {
			status := "completed"
			if r.TimedOut {
				status = "deadline reached"
			}
			fmt.Fprintf(&out, "%s: exec=%v  vm-wait=%v  ipis/vcpu/s=%.1f  avg-active-vcpus=%.2f\n",
				status, r.ExecTime, r.WaitTime, r.IPIsPerVCPUSec, r.AvgActiveVCPUs)
		}

		switch {
		case strings.HasPrefix(*wl, "npb:"):
			app := strings.TrimPrefix(*wl, "npb:")
			p, err := npb.ProfileFor(app)
			if err != nil {
				return "", err
			}
			res, err := b.RunAppObserved(func(k *guest.Kernel) *workload.App {
				return npb.Launch(k, p, *vcpus, guest.SpinBudgetFromCount(*spin))
			}, sim.FromSeconds(*maxSecs), epoch, observe)
			if err != nil {
				return "", err
			}
			printResult(res)
		case strings.HasPrefix(*wl, "parsec:"):
			app := strings.TrimPrefix(*wl, "parsec:")
			p, err := parsec.ProfileFor(app)
			if err != nil {
				return "", err
			}
			res, err := b.RunAppObserved(func(k *guest.Kernel) *workload.App {
				return parsec.Launch(k, p, *vcpus, guest.SpinBudgetFromCount(*spin))
			}, sim.FromSeconds(*maxSecs), epoch, observe)
			if err != nil {
				return "", err
			}
			printResult(res)
		case *wl == "kernel-build":
			res, err := b.RunAppObserved(func(k *guest.Kernel) *workload.App {
				app := workload.NewApp(k, "kernel-build")
				workload.NewKernelBuild(k, 2**vcpus).Start(app)
				return app
			}, sim.FromSeconds(*maxSecs), epoch, observe)
			if err != nil {
				return "", err
			}
			printResult(res) // forever-workload: reports the deadline window
		case strings.HasPrefix(*wl, "httpd:"):
			rateK, err := strconv.ParseFloat(strings.TrimPrefix(*wl, "httpd:"), 64)
			if err != nil {
				return "", err
			}
			cfg := httpd.DefaultConfig()
			link := httpd.NewLink(b.Eng, cfg.LinkBps)
			srv, err := httpd.NewServer(b.K, link, cfg)
			if err != nil {
				return "", err
			}
			gen := loadgen.New(b.Eng, srv, sim.NewRand(runSeed+7), loadgen.Config{
				SLO: sim.FromMillis(*sloMs),
			})
			telGen = gen
			warm := scenario.DefaultWarmup
			if err := runObserved(b.Eng, warm, epoch, observe); err != nil {
				return "", err
			}
			window := sim.FromSeconds(*maxSecs)
			gen.SetRate(rateK * 1000) // engine parked at warm: load starts now
			if err := runObserved(b.Eng, warm+window, epoch, observe); err != nil {
				return "", err
			}
			gen.Stop()
			if err := runObserved(b.Eng, warm+window+2*sim.Second, epoch, observe); err != nil {
				return "", err
			}
			if err := srv.Err(); err != nil {
				return "", err
			}
			b.FinishTrace()
			r := srv.Result(rateK*1000, window)
			st := gen.Stats()
			h := gen.Hist()
			fmt.Fprintf(&out, "offered: %.1fK/s  replies: %.2fK/s  conn: %.2fms  resp: %.2fms  errors: %d\n",
				r.RateRequested/1000, r.ReplyRate/1000, r.AvgConnMs, r.AvgRespMs, r.Errors)
			fmt.Fprintf(&out, "latency: p50=%.2fms  p95=%.2fms  p99=%.2fms  SLO(%gms)=%.1f%%  (%d offered, %d replies, %d errors)\n",
				h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99),
				*sloMs, 100*st.Attainment(), st.Offered, st.Replies, st.Errors)
		default:
			return "", fmt.Errorf("unknown workload %q", *wl)
		}

		if *activetrace {
			fmt.Fprintln(&out, "\nactive-vCPU trace:")
			for _, p := range b.K.Trace() {
				fmt.Fprintf(&out, "  t=%6.2fs  active=%d %s\n", p.At.Seconds(), p.Active,
					strings.Repeat("#", p.Active))
			}
		}
		return out.String(), nil
	}

	rep := &runner.Report{}
	outs, err := runner.Run(runner.Options{
		Workers:       *parallel,
		BaseSeed:      *seed,
		Trace:         wantTrace,
		TraceCapacity: *tracecap,
		Report:        rep,
	}, *runs, func(ctx runner.Context) (string, error) {
		runSeed := *seed
		if *runs > 1 {
			runSeed = ctx.Seed // splitmix64-derived, stable per index
		}
		return runOnce(runSeed, ctx.Index, ctx.Tracer)
	})
	fatal(err)

	// Post-barrier: drain the per-run telemetry buffers in submission
	// order. The scrape endpoint already saw each epoch live; the JSONL
	// stream is assembled here so its order never depends on worker
	// interleaving.
	for _, col := range cols {
		col.Flush()
		fatal(col.Err())
	}
	if telemetryFile != nil {
		fatal(telemetryFile.Close())
		fmt.Fprintf(os.Stderr, "wrote telemetry JSONL to %s\n", *telemetryOut)
	}
	defer func() {
		if err := sink.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	for i, o := range outs {
		if *runs > 1 {
			fmt.Printf("--- run %d ---\n", i)
		}
		fmt.Print(o)
	}
	if *runs > 1 {
		fmt.Printf("\n%d runs in %v wall (%v cpu, %.2fx speedup, %d workers)\n",
			rep.Jobs, rep.Wall.Round(time.Millisecond), rep.CPU().Round(time.Millisecond),
			rep.Speedup(), rep.Workers)
		fmt.Printf("per-run wall: min=%v mean=%v max=%v\n",
			rep.JobWallMin().Round(time.Millisecond), rep.JobWallMean().Round(time.Millisecond),
			rep.JobWallMax().Round(time.Millisecond))
	}

	if wantTrace {
		tr := trace.Merge(rep.LiveTracers()...)
		if tr == nil {
			tr = trace.New(trace.Config{RingCapacity: 1})
		}
		end := tr.MaxAt()
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			fatal(err)
			fatal(tr.WriteChrome(f, end))
			fatal(f.Close())
			fmt.Printf("\nwrote Chrome trace to %s (%d events recorded, %d dropped)\n",
				*traceOut, tr.Total(), tr.Dropped())
		}
		if *schedstats {
			fmt.Println()
			fmt.Print(report.RenderSchedStats(tr.Snapshot(end)))
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
