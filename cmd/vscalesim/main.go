// Command vscalesim runs a single consolidation scenario: an SMP-VM
// executing one workload next to bursty slideshow desktops, under one of
// the four configurations of the paper, and prints the run's metrics.
//
// Usage:
//
//	vscalesim -workload npb:cg -mode vscale -vcpus 4 -pcpus 8 \
//	          -spincount 300000 [-trace out.json] [-schedstats] [-seed 1]
//
// Workloads: npb:<bt|cg|dc|ep|ft|is|lu|mg|sp|ua>,
// parsec:<blackscholes|...|x264>, kernel-build, httpd:<rateK>.
//
// -trace writes a Chrome trace-event JSON file loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing; -schedstats prints per-vCPU
// scheduling statistics. See docs/observability.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"vscale/internal/guest"
	"vscale/internal/report"
	"vscale/internal/scenario"
	"vscale/internal/sim"
	"vscale/internal/trace"
	"vscale/internal/workload"
	"vscale/internal/workload/httpd"
	"vscale/internal/workload/npb"
	"vscale/internal/workload/parsec"
)

func main() {
	wl := flag.String("workload", "npb:cg", "workload to run")
	modeStr := flag.String("mode", "baseline", "baseline | pvlock | vscale | vscale+pvlock")
	vcpus := flag.Int("vcpus", 4, "vCPUs of the VM under test")
	pcpus := flag.Int("pcpus", 8, "pCPUs in the domU pool")
	spin := flag.Uint64("spincount", 300_000, "GOMP_SPINCOUNT for OpenMP workloads")
	seed := flag.Uint64("seed", 1, "simulation seed")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file to this path")
	schedstats := flag.Bool("schedstats", false, "print per-vCPU scheduling statistics")
	tracecap := flag.Int("tracecap", trace.DefaultRingCapacity, "trace ring capacity (events)")
	activetrace := flag.Bool("activetrace", false, "print the active-vCPU trace")
	nobg := flag.Bool("dedicated", false, "no background VMs")
	maxSecs := flag.Float64("max", 600, "simulation deadline, seconds")
	flag.Parse()

	var mode scenario.Mode
	switch *modeStr {
	case "baseline":
		mode = scenario.Baseline
	case "pvlock":
		mode = scenario.PVLock
	case "vscale":
		mode = scenario.VScale
	case "vscale+pvlock":
		mode = scenario.VScalePVLock
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *modeStr)
		os.Exit(2)
	}

	s := scenario.DefaultSetup()
	s.Mode = mode
	s.VMVCPUs = *vcpus
	s.PCPUs = *pcpus
	s.Seed = *seed
	s.NoBackground = *nobg
	if *traceOut != "" || *schedstats {
		s.Tracer = trace.New(trace.Config{RingCapacity: *tracecap})
	}
	b := scenario.Build(s)
	if *activetrace {
		b.K.StartTrace(100 * sim.Millisecond)
	}

	fmt.Printf("host: %d pCPUs, VM: %d vCPUs, %d background VMs, mode: %v, workload: %s\n",
		s.PCPUs, s.VMVCPUs, len(b.BG), mode, *wl)

	switch {
	case strings.HasPrefix(*wl, "npb:"):
		app := strings.TrimPrefix(*wl, "npb:")
		p, err := npb.ProfileFor(app)
		fatal(err)
		res := b.RunApp(func(k *guest.Kernel) *workload.App {
			return npb.Launch(k, p, *vcpus, guest.SpinBudgetFromCount(*spin))
		}, sim.FromSeconds(*maxSecs))
		printResult(res)
	case strings.HasPrefix(*wl, "parsec:"):
		app := strings.TrimPrefix(*wl, "parsec:")
		p, err := parsec.ProfileFor(app)
		fatal(err)
		res := b.RunApp(func(k *guest.Kernel) *workload.App {
			return parsec.Launch(k, p, *vcpus, guest.SpinBudgetFromCount(*spin))
		}, sim.FromSeconds(*maxSecs))
		printResult(res)
	case *wl == "kernel-build":
		res := b.RunApp(func(k *guest.Kernel) *workload.App {
			app := workload.NewApp(k, "kernel-build")
			workload.NewKernelBuild(k, 2**vcpus).Start(app)
			return app
		}, sim.FromSeconds(*maxSecs))
		printResult(res) // forever-workload: reports the deadline window
	case strings.HasPrefix(*wl, "httpd:"):
		rateK, err := strconv.ParseFloat(strings.TrimPrefix(*wl, "httpd:"), 64)
		fatal(err)
		cfg := httpd.DefaultConfig()
		link := httpd.NewLink(b.Eng, cfg.LinkBps)
		srv := httpd.NewServer(b.K, link, cfg)
		client := httpd.NewClient(srv, sim.NewRand(*seed+7))
		warm := 2 * sim.Second
		fatal(b.Eng.RunUntil(warm))
		window := sim.FromSeconds(*maxSecs)
		client.Run(rateK*1000, window)
		fatal(b.Eng.RunUntil(warm + window + 2*sim.Second))
		r := srv.Result(rateK*1000, window)
		fmt.Printf("offered: %.1fK/s  replies: %.2fK/s  conn: %.2fms  resp: %.2fms  errors: %d\n",
			r.RateRequested/1000, r.ReplyRate/1000, r.AvgConnMs, r.AvgRespMs, r.Errors)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}

	if *activetrace {
		fmt.Println("\nactive-vCPU trace:")
		for _, p := range b.K.Trace() {
			fmt.Printf("  t=%6.2fs  active=%d %s\n", p.At.Seconds(), p.Active,
				strings.Repeat("#", p.Active))
		}
	}

	if tr := b.Tracer; tr != nil {
		end := b.Eng.Now()
		tr.SetEngineCounters(b.Eng.Scheduled, b.Eng.Cancelled, b.Eng.Processed)
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			fatal(err)
			fatal(tr.WriteChrome(f, end))
			fatal(f.Close())
			fmt.Printf("\nwrote Chrome trace to %s (%d events recorded, %d dropped)\n",
				*traceOut, tr.Total(), tr.Dropped())
		}
		if *schedstats {
			fmt.Println()
			fmt.Print(report.RenderSchedStats(tr.Snapshot(end)))
		}
	}
}

func printResult(r scenario.AppResult) {
	status := "completed"
	if r.TimedOut {
		status = "deadline reached"
	}
	fmt.Printf("%s: exec=%v  vm-wait=%v  ipis/vcpu/s=%.1f  avg-active-vcpus=%.2f\n",
		status, r.ExecTime, r.WaitTime, r.IPIsPerVCPUSec, r.AvgActiveVCPUs)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
