package main

import (
	"vscale/internal/loadgen"
	"vscale/internal/scenario"
	"vscale/internal/sim"
	"vscale/internal/telemetry"
)

// runObserved advances eng to stop in epoch-aligned chunks, calling
// observe with the engine parked at every boundary (and at stop).
// Chunking a RunUntil never reorders or drops events, so the simulation
// is byte-identical to a single RunUntil(stop) — observe must only
// read. A nil observe or epoch <= 0 degenerates to one call.
func runObserved(eng *sim.Engine, stop, epoch sim.Time, observe func(now sim.Time)) error {
	if observe == nil || epoch <= 0 {
		return eng.RunUntil(stop)
	}
	for {
		next := (eng.Now()/epoch + 1) * epoch
		if next > stop {
			next = stop
		}
		if err := eng.RunUntil(next); err != nil {
			return err
		}
		observe(eng.Now())
		if eng.Now() >= stop {
			return nil
		}
	}
}

// collectScenario samples one single-host scenario at an epoch boundary
// and closes the collector's epoch. Like the cluster collector it is
// strictly read-only and runs while the engine is parked, so telemetry
// can never perturb the simulation. gen is non-nil only for the httpd
// workload; sloMs accompanies it.
func collectScenario(col *telemetry.Collector, b *scenario.Built, gen *loadgen.Generator, sloMs float64, now sim.Time) {
	if col == nil {
		return
	}
	reg := col.Registry()

	reg.GaugeSeries("vscale_sim_seconds",
		"Virtual time of the simulation at this collection epoch.").Set(now.Seconds())
	reg.GaugeSeries("vscale_telemetry_epoch",
		"Collection epoch index within this run.").Set(float64(col.Epoch()))

	// The scenario is one host; label it host="0" so the families share
	// their label schema with the cluster exporter.
	host := "0"
	pcpus := b.Pool.PCPUs()
	util := 0.0
	if now > 0 && len(pcpus) > 0 {
		util = 1 - float64(b.Pool.Idle())/(float64(now)*float64(len(pcpus)))
	}
	reg.GaugeSeries("vscale_host_util_ratio",
		"pCPU busy fraction of the host since boot.", "host", host).Set(util)
	reg.CounterSeries("vscale_host_idle_seconds_total",
		"Summed pCPU idle time of the host.", "host", host).Set(b.Pool.Idle().Seconds())
	reg.CounterSeries("vscale_host_sched_ticks_total",
		"vScale extendability recalculations on the host.", "host", host).Set(float64(b.Pool.VScaleTicks))
	reg.CounterSeries("vscale_host_engine_events_total",
		"Simulation events processed by the host's engine.", "host", host).Set(float64(b.Eng.Processed))

	var switches uint64
	runq := 0
	for _, p := range pcpus {
		switches += p.Switches
		runq += p.QueueLen()
	}
	reg.CounterSeries("vscale_host_context_switches_total",
		"vCPU context switches across the host's pCPUs.", "host", host).Set(float64(switches))
	reg.GaugeSeries("vscale_host_runq_len",
		"Runnable vCPUs queued across the host's pCPUs.", "host", host).Set(float64(runq))

	if b.Tracer != nil {
		snap := b.Tracer.Snapshot(now)
		var wake, lhp, steals, ipis uint64
		var lhpTime sim.Time
		for _, v := range snap.VCPUs {
			wake += v.WakeCount
			lhp += v.LHPCount
			lhpTime += v.LHPTotal
			steals += v.Steals
			ipis += v.IPICount
		}
		reg.CounterSeries("vscale_host_wakeups_total",
			"RUNNABLE-to-RUN transitions across the host's vCPUs.", "host", host).Set(float64(wake))
		reg.CounterSeries("vscale_host_lhp_total",
			"Lock-holder preemption incidents on the host.", "host", host).Set(float64(lhp))
		reg.CounterSeries("vscale_host_lhp_seconds_total",
			"Total time vCPUs spent descheduled while holding a lock.", "host", host).Set(lhpTime.Seconds())
		reg.CounterSeries("vscale_host_steals_total",
			"Runqueue steals to idle pCPUs on the host.", "host", host).Set(float64(steals))
		reg.CounterSeries("vscale_host_ipis_total",
			"Inter-vCPU IPIs delivered on the host.", "host", host).Set(float64(ipis))
	}

	// The VM under test. Background slideshow VMs stay out of the
	// catalog: they are scenery, and their per-VM series would dwarf the
	// signal at 2:1 consolidation.
	labels := []string{"host", host, "vm", "vm"}
	reg.GaugeSeries("vscale_vm_vcpus",
		"vCPUs provisioned to the VM.", labels...).Set(float64(b.VM.VCPUCount()))
	reg.GaugeSeries("vscale_vm_active_vcpus",
		"vCPUs the guest balancer currently keeps unfrozen.", labels...).Set(float64(b.K.ActiveVCPUs()))
	reg.CounterSeries("vscale_vm_cpu_seconds_total",
		"CPU time consumed by the VM's vCPUs.", labels...).Set(b.VM.TotalRunTime.Seconds())
	reg.CounterSeries("vscale_vm_wait_seconds_total",
		"Scheduling delay accumulated by the VM's vCPUs.", labels...).Set(b.VM.TotalWaitTime.Seconds())

	var credits sim.Time
	for i := 0; i < b.VM.VCPUCount(); i++ {
		credits += b.VM.VCPU(i).Credits()
	}
	reg.GaugeSeries("vscale_vm_credit_ns",
		"Summed credit-scheduler balance of the VM's vCPUs, virtual ns.", labels...).Set(float64(credits))

	_, decisions := b.K.DaemonStats()
	reg.CounterSeries("vscale_vm_reconfigs_total",
		"Scaling actions taken by the VM's daemon.", labels...).Set(float64(decisions))

	if gen != nil {
		reg.GaugeSeries("vscale_fleet_slo_ms",
			"The per-request latency objective, milliseconds.").Set(sloMs)
		reg.GaugeSeries("vscale_vm_offered_rps",
			"Current offered request rate of the VM's load generator.", labels...).Set(gen.Rate())
		st := gen.Stats()
		reg.CounterSeries("vscale_vm_offered_requests_total",
			"Requests injected into the VM by the open-loop generator.", labels...).Set(float64(st.Offered))
		reg.CounterSeries("vscale_vm_replies_total",
			"Replies delivered within the server timeout.", labels...).Set(float64(st.Replies))
		reg.CounterSeries("vscale_vm_errors_total",
			"Request timeouts and backlog drops.", labels...).Set(float64(st.Errors))
		reg.CounterSeries("vscale_vm_slo_ok_total",
			"Replies delivered within the SLO.", labels...).Set(float64(st.SLOOk))
		reg.SummarySeries("vscale_vm_reply_latency_ms",
			"Reply latency of the VM's requests, milliseconds.", labels...).
			SetFromHistogram(gen.Hist(), 0.5, 0.95, 0.99)
	}

	col.EpochDone(now)
}
